package infer

import (
	"sync"

	"repro/internal/data"
	"repro/internal/nids"
)

// Detector scores flow records through a compiled float32 plan — the
// serving-side counterpart of nids.ModelDetector. Methods are safe for
// concurrent use: record encoding runs on pooled caller-owned slabs
// outside any lock, and only the engine pass (whose arena is shared) is
// serialized behind a mutex. Replicas share the immutable Plan; each
// Detector owns its Engine.
type Detector struct {
	name string
	pipe *data.Pipeline

	mu  sync.Mutex // serializes engine passes only
	eng *Engine

	slabs sync.Pool // *encodeSlab, one checked out per call
}

// encodeSlab is one concurrent caller's staging area: a reusable float64
// encode row plus the float32 batch matrix handed to the engine.
type encodeSlab struct {
	row []float64
	x   []float32
}

// NewDetector builds a detector scoring through plan with the given
// preprocessing pipeline. name is reported as the detector name
// (conventionally the model name).
func NewDetector(name string, pipe *data.Pipeline, plan *Plan) *Detector {
	return &Detector{name: name, pipe: pipe, eng: plan.NewEngine()}
}

var _ nids.BatchDetector = (*Detector)(nil)

// Name implements nids.Detector.
func (d *Detector) Name() string { return d.name }

// Detect implements nids.Detector.
func (d *Detector) Detect(rec *data.Record) nids.Verdict {
	var v [1]nids.Verdict
	d.DetectBatch([]*data.Record{rec}, v[:])
	return v[0]
}

// DetectBatch implements nids.BatchDetector: records are encoded and
// narrowed to float32 on a pooled slab before the lock is taken, then the
// whole batch runs through the compiled plan in one pass.
//
//pelican:noalloc
func (d *Detector) DetectBatch(recs []*data.Record, verdicts []nids.Verdict) {
	rows := len(recs)
	if rows == 0 {
		return
	}
	f := d.pipe.Width()
	s, _ := d.slabs.Get().(*encodeSlab)
	if s == nil {
		s = &encodeSlab{row: make([]float64, f)}
	}
	if cap(s.x) < rows*f {
		s.x = make([]float32, rows*f)
	}
	x := s.x[:rows*f]
	for i, rec := range recs {
		d.pipe.ApplyInto(rec, s.row)
		dst := x[i*f : (i+1)*f]
		for j, v := range s.row {
			dst[j] = float32(v)
		}
	}

	d.mu.Lock()
	logits := d.eng.Forward(x, rows)
	// The argmax readout also runs under the lock: logits is the engine's
	// arena, which the next pass overwrites.
	classes := d.eng.Plan().Classes()
	for i := 0; i < rows; i++ {
		row := logits[i*classes : (i+1)*classes]
		cls := 0
		for c := 1; c < len(row); c++ {
			if row[c] > row[cls] {
				cls = c
			}
		}
		verdicts[i] = nids.Verdict{IsAttack: cls != 0, Class: cls, Score: float64(row[cls])}
	}
	d.mu.Unlock()
	d.slabs.Put(s)
}
