package infer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// randomizeBN gives a BatchNorm non-trivial gamma/beta and running moments
// so folding tests exercise real affine constants, not the 1/0 defaults.
func randomizeBN(rng *rand.Rand, bn *nn.BatchNorm) {
	params := bn.Params() // [gamma, beta]
	g, b := params[0].Value.Data(), params[1].Value.Data()
	mean := make([]float64, bn.C)
	variance := make([]float64, bn.C)
	for i := 0; i < bn.C; i++ {
		g[i] = 0.5 + rng.Float64()
		b[i] = rng.NormFloat64()
		mean[i] = rng.NormFloat64()
		variance[i] = 0.1 + rng.Float64()
	}
	bn.SetRunningStats(tensor.FromSlice(mean, bn.C), tensor.FromSlice(variance, bn.C))
}

// TestFoldBNIntoDenseProperty: for random shapes, the float64 fold of a
// BatchNorm into a following Dense must match the unfolded BN→Dense
// evaluation to 1e-6.
func TestFoldBNIntoDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		batch := 1 + rng.Intn(9)
		in := 1 + rng.Intn(40)
		out := 1 + rng.Intn(40)
		bn := nn.NewBatchNorm(in)
		randomizeBN(rng, bn)
		dense := nn.NewDense(rng, in, out)
		x := tensor.RandNormal(rng, 0, 1, batch, in)

		ref := dense.Forward(bn.Forward(x, false), false).Clone()

		scale, shift := bnAffine(bn)
		params := dense.Params()
		w := cloneData(params[0].Value)
		bias := foldAffineIntoGEMM(scale, shift, w, cloneData(params[1].Value), in, out)
		for r := 0; r < batch; r++ {
			for j := 0; j < out; j++ {
				s := bias[j]
				for i := 0; i < in; i++ {
					s += x.At(r, i) * w[i*out+j]
				}
				if d := math.Abs(s - ref.At(r, j)); d > 1e-6 {
					t.Fatalf("trial %d (B=%d %d→%d): [%d,%d] folded %v vs unfolded %v (delta %g)",
						trial, batch, in, out, r, j, s, ref.At(r, j), d)
				}
			}
		}
	}
}

// TestFoldBNIntoConvProperty: the float64 fold of a BatchNorm into a
// following Conv1D must match unfolded evaluation to 1e-6 across random
// channel counts and kernel sizes — the T=1 full-coverage case, where
// exactly one tap contributes.
func TestFoldBNIntoConvProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		batch := 1 + rng.Intn(9)
		in := 1 + rng.Intn(30)
		out := 1 + rng.Intn(30)
		k := 1 + rng.Intn(12)
		bn := nn.NewBatchNorm(in)
		randomizeBN(rng, bn)
		conv := nn.NewConv1D(rng, in, out, k, nn.PaddingSame)
		x := tensor.RandNormal(rng, 0, 1, batch, 1, in)

		ref := conv.Forward(bn.Forward(x, false), false).Clone()

		tap, err := convTapT1(conv)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		scale, shift := bnAffine(bn)
		wd := conv.Params()[0].Value.Data()
		sz := in * out
		w := make([]float64, sz)
		copy(w, wd[tap*sz:(tap+1)*sz])
		bias := foldAffineIntoGEMM(scale, shift, w, cloneData(conv.Params()[1].Value), in, out)
		for r := 0; r < batch; r++ {
			for j := 0; j < out; j++ {
				s := bias[j]
				for i := 0; i < in; i++ {
					s += x.At(r, 0, i) * w[i*out+j]
				}
				if d := math.Abs(s - ref.At(r, 0, j)); d > 1e-6 {
					t.Fatalf("trial %d (B=%d %d→%d K=%d): [%d,%d] folded %v vs unfolded %v (delta %g)",
						trial, batch, in, out, k, r, j, s, ref.At(r, 0, j), d)
				}
			}
		}
	}
}

// TestCompileRejectsUnsupported pins the error paths: valid-padding conv
// with K>1 has no output at T=1.
func TestCompileRejectsUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stack := nn.NewSequential(nn.NewConv1D(rng, 8, 8, 3, nn.PaddingValid))
	if _, err := CompileStack(stack); err == nil {
		t.Fatal("valid-padding K=3 conv compiled; want error")
	}
}

// TestStandaloneReluLowering covers the opRelu path: a ReLU that cannot
// fuse into a GEMM epilogue (here it follows a shortcut-free BatchNorm
// affine) must still match the float64 stack.
func TestStandaloneReluLowering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const features, batch = 12, 7
	bn := nn.NewBatchNorm(features)
	randomizeBN(rng, bn)
	stack := nn.NewSequential(bn, nn.NewReLU(), nn.NewGRU(rng, features, features, true))
	plan, err := CompileStack(stack)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(rng, 0, 1, batch, 1, features)
	want := stack.Forward(x, false)
	eng := plan.NewEngine()
	in := eng.In(batch)
	for i, v := range x.Data() {
		in[i] = float32(v)
	}
	got := eng.Run(batch)
	if d := maxAbsDelta(want.Data(), got); d > 1e-5 {
		t.Fatalf("standalone ReLU path: max |delta| = %g", d)
	}
}

// maxAbsDelta returns max_i |a[i] − float64(b[i])|.
func maxAbsDelta(a []float64, b []float32) float64 {
	m := 0.0
	for i, v := range a {
		if d := math.Abs(v - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

// TestEngineMatchesNetworkAllRegistryModels compiles every registry model
// (random weights, jiggled BN statistics) and checks the float32 engine
// against the float64 Predict on random input.
func TestEngineMatchesNetworkAllRegistryModels(t *testing.T) {
	const features, classes, batch = 24, 5, 13
	cfg := models.BlockConfig{Features: features, Kernel: 5, Pool: 2, Dropout: 0.4}
	for _, name := range models.Names() {
		spec, err := models.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(10))
		stack := spec.Build(rng, rand.New(rand.NewSource(11)), cfg, features, classes)
		net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(0.01, 0))
		// Two training-mode passes move the BatchNorm running moments off
		// their 0/1 defaults so folding is exercised for real.
		warm := tensor.RandNormal(rng, 0, 1, batch, 1, features)
		stack.Forward(warm, true)
		stack.Forward(warm, true)

		plan, err := Compile(net)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		if plan.Features() != features || plan.Classes() != classes {
			t.Fatalf("%s: plan shape %d→%d, want %d→%d", name, plan.Features(), plan.Classes(), features, classes)
		}

		x := tensor.RandNormal(rng, 0, 1, batch, 1, features)
		want := net.Predict(x)
		eng := plan.NewEngine()
		in := eng.In(batch)
		for i, v := range x.Data() {
			in[i] = float32(v)
		}
		got := eng.Run(batch)
		if d := maxAbsDelta(want.Data(), got); d > 1e-4 {
			t.Fatalf("%s: engine vs network max |delta| = %g", name, d)
		}
	}
}

// trainSmallResidualNet trains a 5-block residual net briefly on synthetic
// NSL-KDD traffic and returns the network, its pipeline and the generator.
func trainSmallResidualNet(t testing.TB) (*nn.Network, *data.Pipeline, *synth.Generator) {
	t.Helper()
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(600, 1)
	x, y, pipe := data.Preprocess(ds)
	features := pipe.Width()
	classes := ds.Schema.NumClasses()
	rng := rand.New(rand.NewSource(20))
	stack := models.BuildBlockNet(rng, rand.New(rand.NewSource(21)), 5, true,
		models.PaperBlockConfig(features), classes)
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(0.01))
	rows := x.Dim(0)
	net.Fit(x.Reshape(rows, 1, features), y, nn.FitConfig{
		Epochs: 1, BatchSize: 128, Shuffle: true, RNG: rng,
	})
	return net, pipe, gen
}

// TestF32ParityOnFlowCorpus is the acceptance gate: on a 10k-flow corpus
// scored through a trained residual network, the compiled float32 engine's
// scores must stay within 1e-4 of the float64 path, and the two detectors
// must agree on (virtually) every class.
func TestF32ParityOnFlowCorpus(t *testing.T) {
	net, pipe, gen := trainSmallResidualNet(t)
	plan, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	eng := plan.NewEngine()
	f := pipe.Width()

	corpusSize := 10000
	if testing.Short() {
		corpusSize = 2000
	}
	corpus := gen.Generate(corpusSize, 99)

	const batch = 64
	maxDelta := 0.0      // winner-score delta: the verdict semantic
	maxLogitDelta := 0.0 // elementwise per-class bound (stricter: argmax flips can't hide)
	classMismatch := 0
	x64 := tensor.New(batch, f)
	for lo := 0; lo < corpusSize; lo += batch {
		hi := lo + batch
		if hi > corpusSize {
			hi = corpusSize
		}
		rows := hi - lo
		x64 = x64.Resize(rows, f)
		for i := 0; i < rows; i++ {
			pipe.ApplyInto(&corpus.Records[lo+i], x64.Row(i))
		}
		want := net.Predict(x64.Reshape(rows, 1, f))
		in := eng.In(rows)
		for i, v := range x64.Data() {
			in[i] = float32(v)
		}
		got := eng.Run(rows)
		classes := plan.Classes()
		wd := want.Data()
		for r := 0; r < rows; r++ {
			wRow := wd[r*classes : (r+1)*classes]
			gRow := got[r*classes : (r+1)*classes]
			wCls, gCls := 0, 0
			for c := 0; c < classes; c++ {
				if wRow[c] > wRow[wCls] {
					wCls = c
				}
				if gRow[c] > gRow[gCls] {
					gCls = c
				}
				if d := math.Abs(wRow[c] - float64(gRow[c])); d > maxLogitDelta {
					maxLogitDelta = d
				}
			}
			if wCls != gCls {
				classMismatch++
			}
			// Score parity: the reported score is the winning logit.
			if d := math.Abs(wRow[wCls] - float64(gRow[gCls])); d > maxDelta {
				maxDelta = d
			}
		}
	}
	t.Logf("corpus=%d max|score delta|=%.2e max per-class |logit delta|=%.2e class mismatches=%d",
		corpusSize, maxDelta, maxLogitDelta, classMismatch)
	if maxDelta > 1e-4 {
		t.Fatalf("max |score delta| %.3e exceeds 1e-4 over %d flows", maxDelta, corpusSize)
	}
	if maxLogitDelta > 1e-4 {
		t.Fatalf("max per-class |logit delta| %.3e exceeds 1e-4 over %d flows", maxLogitDelta, corpusSize)
	}
	if limit := corpusSize / 1000; classMismatch > limit {
		t.Fatalf("%d class mismatches over %d flows (limit %d)", classMismatch, corpusSize, limit)
	}
}

// TestDetectorMatchesModelDetector runs the two BatchDetector
// implementations over the same records and requires verdict agreement.
func TestDetectorMatchesModelDetector(t *testing.T) {
	net, pipe, gen := trainSmallResidualNet(t)
	plan, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	f32det := NewDetector("pelican-f32", pipe, plan)
	f64det := &nids.ModelDetector{ModelName: "pelican-f64", Net: net, Pipe: pipe}

	corpus := gen.Generate(512, 123)
	recs := make([]*data.Record, len(corpus.Records))
	for i := range corpus.Records {
		recs[i] = &corpus.Records[i]
	}
	a := make([]nids.Verdict, len(recs))
	b := make([]nids.Verdict, len(recs))
	f32det.DetectBatch(recs, a)
	f64det.DetectBatch(recs, b)
	mismatch := 0
	for i := range a {
		if a[i].Class != b[i].Class || a[i].IsAttack != b[i].IsAttack {
			mismatch++
		}
		if d := math.Abs(a[i].Score - b[i].Score); d > 1e-4 {
			t.Fatalf("record %d: f32 score %v vs f64 %v", i, a[i].Score, b[i].Score)
		}
	}
	if mismatch > 1 {
		t.Fatalf("%d verdict mismatches over %d records", mismatch, len(recs))
	}
}

// TestEngineSteadyStateAllocFree pins the engine's per-call allocation
// budget at zero once warmed.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	const features, classes, batch = 48, 6, 32
	stack := models.BuildBlockNet(rng, rand.New(rand.NewSource(31)), 3, true,
		models.BlockConfig{Features: features, Kernel: 5, Pool: 2, Dropout: 0.4}, classes)
	plan, err := CompileStack(stack)
	if err != nil {
		t.Fatal(err)
	}
	eng := plan.NewEngine()
	in := eng.In(batch)
	for i := range in {
		in[i] = float32(rng.NormFloat64())
	}
	eng.Run(batch) // warm the arena
	allocs := testing.AllocsPerRun(10, func() { eng.Run(batch) })
	if allocs > 0 {
		t.Fatalf("engine Run allocated %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestEngineGrowsForLargerBatch checks arena growth keeps results correct
// when a bigger batch follows a smaller one.
func TestEngineGrowsForLargerBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	const features, classes = 16, 4
	stack := models.BuildBlockNet(rng, rand.New(rand.NewSource(41)), 2, true,
		models.BlockConfig{Features: features, Kernel: 3, Pool: 2, Dropout: 0.3}, classes)
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(0.01, 0))
	plan, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	eng := plan.NewEngine()
	for _, batch := range []int{4, 64, 16} { // grow, then shrink within capacity
		x := tensor.RandNormal(rng, 0, 1, batch, 1, features)
		want := net.Predict(x)
		in := eng.In(batch)
		for i, v := range x.Data() {
			in[i] = float32(v)
		}
		got := eng.Run(batch)
		if d := maxAbsDelta(want.Data(), got); d > 1e-4 {
			t.Fatalf("batch %d after resize: max |delta| = %g", batch, d)
		}
	}
}
