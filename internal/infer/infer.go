// Package infer is a compiled float32 inference engine for trained
// networks: nn layer stacks are lowered once (Compile) into a flat []step
// plan over pre-packed float32 weights, and serving scores through the plan
// thereafter instead of walking the float64 training graph.
//
// Lowering specializes for the serving input shape (batch, 1, features) —
// every flow record is a single timestep, so rank-3 (B, 1, C) activations
// are plain (B, C) matrices throughout. That single fact buys most of the
// plan's compression:
//
//   - BatchNorm (inference mode) is a per-channel affine y = x·scale+shift;
//     when it immediately precedes a layer whose input transform is a GEMM
//     (Dense, Conv1D, GRU, LSTM) it folds into that layer's weights and
//     bias and vanishes from the plan. The only BNs that survive as affine
//     steps are the ones whose output feeds a residual shortcut as well.
//   - Conv1D at T=1 has exactly one contributing kernel tap, so it lowers
//     to a single GEMM over that tap's (inC, outC) slab.
//   - GRU/LSTM at T=1 start from zero state: the recurrent kernel never
//     contributes, the GRU reset gate and the LSTM forget gate are dead,
//     and the input transform packs down to the 2-of-3 / 3-of-4 live gate
//     blocks — one narrowed GEMM plus a fused gate-combine pass.
//   - MaxPool1D, GlobalAvgPool1D, Reshape, Flatten and Dropout are
//     identities at T=1 and emit nothing.
//   - Bias adds and ReLU run in the GEMM epilogue (tensor.GemmBiasActF32),
//     never as separate passes over the activation tensor.
//
// A Plan is immutable and shared; each replica runs it through its own
// Engine, which owns one pre-sized float32 arena and allocates nothing per
// call in steady state.
package infer

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// op is a step opcode.
type op uint8

const (
	// opGemm: buf[dst] = act(buf[src] @ w + bias).
	opGemm op = iota
	// opAffine: buf[dst][r][c] = buf[src][r][c]·scale[c] + shift[c].
	opAffine
	// opAdd: buf[dst] = buf[src] + buf[src2] (equal widths).
	opAdd
	// opGRUGate: buf[src] is (B, 2H) pre-activations [z | h~];
	// buf[dst][r][j] = (1 − hardsig(z_j))·tanh(h~_j).
	opGRUGate
	// opLSTMGate: buf[src] is (B, 3H) pre-activations [i | g | o];
	// buf[dst][r][j] = sig(o_j)·tanh(sig(i_j)·tanh(g_j)).
	opLSTMGate
	// opRelu: buf[dst] = max(0, buf[src]) — a standalone ReLU that could
	// not fuse into a GEMM epilogue.
	opRelu
)

// step is one compiled instruction. src/src2/dst index Plan.widths; the
// weight and bias slices are owned by the Plan and never written after
// Compile.
type step struct {
	op   op
	src  int
	src2 int
	dst  int

	w    []float32 // opGemm: pre-transposed row-major (widths[dst], widths[src])
	bias []float32 // opGemm: length widths[dst], nil for no bias
	act  tensor.Act

	scale, shift []float32 // opAffine
}

// Plan is a compiled, immutable inference program: the step list, the
// per-row width of every intermediate buffer, and all weights pre-packed
// as float32. Plans are safe for concurrent use; run them through
// per-replica Engines.
type Plan struct {
	features int
	classes  int
	widths   []int // per-row width of each buffer; buffer 0 is the input
	steps    []step
}

// Compile lowers a trained network into a float32 inference plan. The plan
// is specialized for single-timestep inputs (batch, 1, features) — the
// serving shape every registry model consumes. Layers or configurations
// the lowering cannot express return an error (nothing is partially
// compiled).
func Compile(net *nn.Network) (*Plan, error) { return CompileStack(net.Stack) }

// CompileStack is Compile for a bare layer stack.
func CompileStack(stack *nn.Sequential) (*Plan, error) {
	features, err := inputWidth(stack)
	if err != nil {
		return nil, err
	}
	c := &compiler{p: &Plan{features: features}}
	c.cur = c.newBuf(features)
	if err := c.lowerSeq(stack.Layers()); err != nil {
		return nil, err
	}
	if len(c.p.steps) == 0 {
		return nil, fmt.Errorf("infer: stack lowered to an empty plan")
	}
	c.p.classes = c.p.widths[c.cur]
	c.p.compactBuffers()
	return c.p, nil
}

// compactBuffers recycles intermediate buffers by liveness: lowering
// emits one fresh buffer per step (SSA-like), but once a value's last
// reader has run its storage can back a later step's output. On
// Residual-41 this shrinks the arena from ~50 buffers to the handful
// live at once (the ping-pong pair plus pinned shortcut values), keeping
// the activation working set cache-resident on this memory-bound
// workload. Buffer 0 (the input) is never recycled — Engine.In callers
// may Run the same fill repeatedly.
func (p *Plan) compactBuffers() {
	n := len(p.widths)
	lastUse := make([]int, n)
	for i := range lastUse {
		lastUse[i] = -1
	}
	for i := range p.steps {
		s := &p.steps[i]
		lastUse[s.src] = i
		if s.op == opAdd {
			lastUse[s.src2] = i
		}
	}
	diesAt := make([][]int, len(p.steps))
	for l := 1; l < n; l++ { // buffer 0 stays pinned
		if i := lastUse[l]; i >= 0 {
			diesAt[i] = append(diesAt[i], l)
		}
	}

	free := map[int][]int{} // width → dead physical buffer ids
	var phys []int          // physical buffer widths
	mapTo := make([]int, n) // logical → physical
	alloc := func(w int) int {
		if lst := free[w]; len(lst) > 0 {
			id := lst[len(lst)-1]
			free[w] = lst[:len(lst)-1]
			return id
		}
		phys = append(phys, w)
		return len(phys) - 1
	}
	mapTo[0] = alloc(p.widths[0])
	for i := range p.steps {
		s := &p.steps[i]
		s.src = mapTo[s.src]
		if s.op == opAdd {
			s.src2 = mapTo[s.src2]
		}
		// The output buffer is allocated before this step's dead values are
		// released, so a step's dst can never alias a buffer it still reads.
		d := alloc(p.widths[s.dst])
		mapTo[s.dst] = d
		s.dst = d
		for _, l := range diesAt[i] {
			free[p.widths[l]] = append(free[p.widths[l]], mapTo[l])
		}
	}
	p.widths = phys
}

// Features returns the input width the plan consumes.
func (p *Plan) Features() int { return p.features }

// Classes returns the output (logit) width the plan produces.
func (p *Plan) Classes() int { return p.classes }

// Steps returns the number of compiled steps.
func (p *Plan) Steps() int { return len(p.steps) }

// WeightBytes returns the total bytes of packed weights, biases and affine
// constants the plan streams per forward pass.
func (p *Plan) WeightBytes() int64 {
	var n int64
	for i := range p.steps {
		s := &p.steps[i]
		n += int64(len(s.w)+len(s.bias)+len(s.scale)+len(s.shift)) * 4
	}
	return n
}

// ArenaBytes returns the arena size an Engine uses for the given batch
// size — the activation *working set*, which buffer recycling keeps far
// smaller than the traffic ActivationBytes reports.
func (p *Plan) ArenaBytes(rows int) int64 {
	var w int64
	for _, wd := range p.widths {
		w += int64(wd)
	}
	return w * int64(rows) * 4
}

// ActivationBytes returns the activation bytes streamed per forward pass
// at the given batch size: every step's operand reads plus output write.
func (p *Plan) ActivationBytes(rows int) int64 {
	var w int64
	for i := range p.steps {
		s := &p.steps[i]
		w += int64(p.widths[s.src]) + int64(p.widths[s.dst])
		if s.op == opAdd {
			w += int64(p.widths[s.src2])
		}
	}
	return w * int64(rows) * 4
}

// compiler accumulates the plan while walking the layer tree.
type compiler struct {
	p   *Plan
	cur int // buffer holding the current value
}

// newBuf registers a buffer of the given per-row width and returns its id.
func (c *compiler) newBuf(width int) int {
	c.p.widths = append(c.p.widths, width)
	return len(c.p.widths) - 1
}

// width returns the current value's per-row width.
func (c *compiler) width() int { return c.p.widths[c.cur] }

// inputWidth infers the model's input feature width from the first
// width-bearing layer in the stack.
func inputWidth(l nn.Layer) (int, error) {
	switch v := l.(type) {
	case *nn.BatchNorm:
		return v.C, nil
	case *nn.Conv1D:
		return v.InC, nil
	case *nn.Dense:
		return v.In, nil
	case *nn.GRU:
		return v.InC, nil
	case *nn.LSTM:
		return v.InC, nil
	case *nn.Sequential:
		for _, ch := range v.Layers() {
			if w, err := inputWidth(ch); err == nil {
				return w, nil
			}
		}
	case *nn.Residual:
		return inputWidth(v.Body)
	case *nn.PreShortcut:
		if w, err := inputWidth(v.Head); err == nil {
			return w, nil
		}
		return inputWidth(v.Res)
	}
	return 0, fmt.Errorf("infer: cannot infer input width from %T", l)
}

// bnAffine extracts a BatchNorm's inference-mode per-channel affine:
// y = x·scale + shift with scale = γ/√(var+ε), shift = β − mean·scale.
// Computed in float64; narrowing happens at pack time.
func bnAffine(l *nn.BatchNorm) (scale, shift []float64) {
	params := l.Params() // [gamma, beta]
	gamma, beta := params[0].Value.Data(), params[1].Value.Data()
	mean, variance := l.RunningStats()
	md, vd := mean.Data(), variance.Data()
	scale = make([]float64, l.C)
	shift = make([]float64, l.C)
	for i := 0; i < l.C; i++ {
		scale[i] = gamma[i] / math.Sqrt(vd[i]+l.Eps)
		shift[i] = beta[i] - md[i]*scale[i]
	}
	return scale, shift
}

// foldAffineIntoGEMM rewrites a GEMM y = xW + b so that it consumes the
// raw input of a preceding per-channel affine x' = x·scale + shift:
// W'[i][j] = scale[i]·W[i][j] and b'[j] = b[j] + Σ_i shift[i]·W[i][j].
// w is row-major (k, n) and is modified in place; the returned bias is a
// fresh slice (b may be nil for a bias-free GEMM). All math is float64 —
// the fold is exact; only the final pack narrows to float32.
func foldAffineIntoGEMM(scale, shift, w, b []float64, k, n int) []float64 {
	bias := make([]float64, n)
	copy(bias, b)
	for i := 0; i < k; i++ {
		row := w[i*n : (i+1)*n]
		s, sh := scale[i], shift[i]
		for j := range row {
			bias[j] += sh * row[j]
			row[j] *= s
		}
	}
	return bias
}

// packF32 narrows a float64 slice to a fresh float32 slice.
func packF32(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

// packF32T narrows a row-major (k, n) float64 matrix to float32 and
// transposes it to (n, k) — one contiguous row per output column, the
// layout tensor.GemmBiasActF32's dot-tile kernel consumes.
func packF32T(src []float64, k, n int) []float32 {
	out := make([]float32, k*n)
	for i := 0; i < k; i++ {
		row := src[i*n : (i+1)*n]
		for j, v := range row {
			out[j*k+i] = float32(v)
		}
	}
	return out
}

// emitGemm appends a GEMM step consuming the current buffer. w and b are
// float64 working copies (w row-major k×n, b may be nil); scale/shift,
// when non-nil, are a preceding BatchNorm's affine folded in first.
func (c *compiler) emitGemm(w, b, scale, shift []float64, k, n int, act tensor.Act) {
	if scale != nil {
		b = foldAffineIntoGEMM(scale, shift, w, b, k, n)
	}
	dst := c.newBuf(n)
	var bias []float32
	if b != nil {
		bias = packF32(b)
	}
	c.p.steps = append(c.p.steps, step{op: opGemm, src: c.cur, dst: dst, w: packF32T(w, k, n), bias: bias, act: act})
	c.cur = dst
}

// lowerSeq lowers a Sequential's child list. It owns the index so it can
// peephole: BatchNorm folds into a directly-following GEMM layer, and a
// ReLU directly after a Conv1D/Dense fuses into that GEMM's epilogue.
func (c *compiler) lowerSeq(layers []nn.Layer) error {
	for i := 0; i < len(layers); i++ {
		switch l := layers[i].(type) {
		case *nn.BatchNorm:
			if err := c.checkWidth("BatchNorm", l.C); err != nil {
				return err
			}
			scale, shift := bnAffine(l)
			if i+1 < len(layers) {
				if consumed, err := c.lowerGemmLayer(layers, i+1, scale, shift); err != nil {
					return err
				} else if consumed > 0 {
					i += consumed
					continue
				}
			}
			dst := c.newBuf(l.C)
			c.p.steps = append(c.p.steps, step{op: opAffine, src: c.cur, dst: dst, scale: packF32(scale), shift: packF32(shift)})
			c.cur = dst

		case *nn.Dense, *nn.Conv1D, *nn.GRU, *nn.LSTM:
			consumed, err := c.lowerGemmLayer(layers, i, nil, nil)
			if err != nil {
				return err
			}
			i += consumed - 1

		case *nn.ReLU:
			// Not directly after a Conv1D/Dense (those fuse the ReLU into
			// their GEMM epilogue): one dedicated clamp pass.
			dst := c.newBuf(c.width())
			c.p.steps = append(c.p.steps, step{op: opRelu, src: c.cur, dst: dst})
			c.cur = dst

		case *nn.MaxPool1D:
			// T=1: ceil(1/pool) = 1 output step over a single input step.
			if l.Pool < 1 {
				return fmt.Errorf("infer: MaxPool1D pool %d", l.Pool)
			}
		case *nn.GlobalAvgPool1D, *nn.Reshape, *nn.Flatten, *nn.Dropout:
			// Identities at T=1 (mean/flatten over one timestep; dropout is
			// inference-off).

		case *nn.Sequential:
			if err := c.lowerSeq(l.Layers()); err != nil {
				return err
			}
		case *nn.Residual:
			if err := c.lowerResidual(l); err != nil {
				return err
			}
		case *nn.PreShortcut:
			// The Head's output feeds both the body and the shortcut add, so
			// it cannot fold into the body's first GEMM; it stays an explicit
			// step whose buffer the add re-reads.
			if err := c.lowerSeq([]nn.Layer{l.Head}); err != nil {
				return err
			}
			if err := c.lowerResidual(l.Res); err != nil {
				return err
			}

		default:
			return fmt.Errorf("infer: unsupported layer %T", layers[i])
		}
	}
	return nil
}

// lowerResidual lowers out = body(cur) + cur.
func (c *compiler) lowerResidual(r *nn.Residual) error {
	short := c.cur
	if err := c.lowerSeq([]nn.Layer{r.Body}); err != nil {
		return err
	}
	if c.width() != c.p.widths[short] {
		return fmt.Errorf("infer: residual body changed width %d → %d", c.p.widths[short], c.width())
	}
	dst := c.newBuf(c.width())
	c.p.steps = append(c.p.steps, step{op: opAdd, src: c.cur, src2: short, dst: dst})
	c.cur = dst
	return nil
}

// checkWidth verifies the current value's width matches what a layer
// expects.
func (c *compiler) checkWidth(name string, want int) error {
	if c.width() != want {
		return fmt.Errorf("infer: %s expects width %d, current value has width %d", name, want, c.width())
	}
	return nil
}

// lowerGemmLayer lowers layers[i] when it is one of the GEMM-backed layers
// (Dense, Conv1D, GRU, LSTM), folding in the optional preceding BatchNorm
// affine and fusing a directly-following ReLU where the layer's output is
// the raw GEMM result (Dense, Conv1D). It returns how many layers it
// consumed starting at i (0 when layers[i] is not GEMM-backed).
func (c *compiler) lowerGemmLayer(layers []nn.Layer, i int, scale, shift []float64) (int, error) {
	reluNext := func() bool {
		if i+1 < len(layers) {
			_, ok := layers[i+1].(*nn.ReLU)
			return ok
		}
		return false
	}
	switch l := layers[i].(type) {
	case *nn.Dense:
		if err := c.checkWidth("Dense", l.In); err != nil {
			return 0, err
		}
		params := l.Params() // [w] or [w, b]
		w := cloneData(params[0].Value)
		var b []float64
		if len(params) > 1 {
			b = cloneData(params[1].Value)
		}
		act, consumed := tensor.ActNone, 1
		if reluNext() {
			act, consumed = tensor.ActReLU, 2
		}
		c.emitGemm(w, b, scale, shift, l.In, l.Out, act)
		return consumed, nil

	case *nn.Conv1D:
		if err := c.checkWidth("Conv1D", l.InC); err != nil {
			return 0, err
		}
		tap, err := convTapT1(l)
		if err != nil {
			return 0, err
		}
		params := l.Params() // [w (K,inC,outC), b]
		wd := params[0].Value.Data()
		sz := l.InC * l.OutC
		w := make([]float64, sz)
		copy(w, wd[tap*sz:(tap+1)*sz])
		b := cloneData(params[1].Value)
		act, consumed := tensor.ActNone, 1
		if reluNext() {
			act, consumed = tensor.ActReLU, 2
		}
		c.emitGemm(w, b, scale, shift, l.InC, l.OutC, act)
		return consumed, nil

	case *nn.GRU:
		if err := c.checkWidth("GRU", l.InC); err != nil {
			return 0, err
		}
		// Zero initial state: the reset gate and the whole recurrent kernel
		// are dead; only the z and candidate blocks of the input kernel
		// survive, packed to (inC, 2H): h = (1 − hardsig(a_z))·tanh(a_h).
		params := l.Params() // [w (inC,3H), u, b (3H)]
		w := packGateCols(params[0].Value.Data(), l.InC, l.H, 3, []int{0, 2})
		b := packGateVec(params[2].Value.Data(), l.H, []int{0, 2})
		c.emitGemm(w, b, scale, shift, l.InC, 2*l.H, tensor.ActNone)
		dst := c.newBuf(l.H)
		c.p.steps = append(c.p.steps, step{op: opGRUGate, src: c.cur, dst: dst})
		c.cur = dst
		return 1, nil

	case *nn.LSTM:
		if err := c.checkWidth("LSTM", l.InC); err != nil {
			return 0, err
		}
		// Zero initial state: the forget gate multiplies cPrev = 0 and the
		// recurrent kernel never fires. Pack [i | g | o] to (inC, 3H):
		// h = sig(a_o)·tanh(sig(a_i)·tanh(a_g)).
		params := l.Params() // [w (inC,4H), u, b (4H)]
		w := packGateCols(params[0].Value.Data(), l.InC, l.H, 4, []int{0, 2, 3})
		b := packGateVec(params[2].Value.Data(), l.H, []int{0, 2, 3})
		c.emitGemm(w, b, scale, shift, l.InC, 3*l.H, tensor.ActNone)
		dst := c.newBuf(l.H)
		c.p.steps = append(c.p.steps, step{op: opLSTMGate, src: c.cur, dst: dst})
		c.cur = dst
		return 1, nil
	}
	return 0, nil
}

// convTapT1 returns the single kernel tap that contributes at sequence
// length 1, or an error when the configuration has no full-coverage tap.
func convTapT1(l *nn.Conv1D) (int, error) {
	switch l.Pad {
	case nn.PaddingSame:
		// Output step 0 reads input step k − (K−1)/2; the only in-range tap
		// is k = (K−1)/2.
		return (l.K - 1) / 2, nil
	case nn.PaddingValid:
		if l.K != 1 {
			return 0, fmt.Errorf("infer: Conv1D valid padding with K=%d has no output at T=1", l.K)
		}
		return 0, nil
	}
	return 0, fmt.Errorf("infer: Conv1D has unknown padding %v", l.Pad)
}

// packGateCols extracts the listed gate-column blocks of a (k, gates·h)
// row-major matrix into a fresh (k, len(sel)·h) float64 matrix.
func packGateCols(src []float64, k, h, gates int, sel []int) []float64 {
	out := make([]float64, k*len(sel)*h)
	w := gates * h
	ow := len(sel) * h
	for i := 0; i < k; i++ {
		for s, g := range sel {
			copy(out[i*ow+s*h:i*ow+(s+1)*h], src[i*w+g*h:i*w+(g+1)*h])
		}
	}
	return out
}

// packGateVec extracts the listed gate blocks of a (gates·h) vector.
func packGateVec(src []float64, h int, sel []int) []float64 {
	out := make([]float64, len(sel)*h)
	for s, g := range sel {
		copy(out[s*h:(s+1)*h], src[g*h:(g+1)*h])
	}
	return out
}

// cloneData copies a tensor's flat data.
func cloneData(t *tensor.Tensor) []float64 {
	out := make([]float64, t.Len())
	copy(out, t.Data())
	return out
}

// Engine executes a Plan with a single pre-sized float32 arena. It is not
// safe for concurrent use; give each replica its own Engine (they share
// the immutable Plan and its weights).
type Engine struct {
	plan    *Plan
	rowsCap int
	inRows  int // rows written by the last In call
	arena   []float32
	bufOff  []int
}

// NewEngine returns an executor for the plan, sized lazily on first use.
func (p *Plan) NewEngine() *Engine {
	return &Engine{plan: p, bufOff: make([]int, len(p.widths))}
}

// Plan returns the engine's compiled plan.
func (e *Engine) Plan() *Plan { return e.plan }

// grow ensures the arena holds every buffer at the given batch capacity.
//
//pelican:noalloc
func (e *Engine) grow(rows int) {
	if rows <= e.rowsCap {
		return
	}
	e.rowsCap = rows
	off := 0
	for i, w := range e.plan.widths {
		e.bufOff[i] = off
		off += w * rows
	}
	if cap(e.arena) < off {
		e.arena = make([]float32, off)
	}
	e.arena = e.arena[:off]
}

// buf returns buffer i's slice for the given row count.
//
//pelican:noalloc
func (e *Engine) buf(i, rows int) []float32 {
	w := e.plan.widths[i]
	return e.arena[e.bufOff[i] : e.bufOff[i]+w*rows]
}

// In returns the input buffer for rows records (rows × Features()
// float32s), growing the arena if needed. Fill it, then call Run with at
// most the same row count. The input buffer is preserved across Run
// calls, so one fill may be scored repeatedly.
//
//pelican:noalloc
func (e *Engine) In(rows int) []float32 {
	e.grow(rows)
	e.inRows = rows
	return e.buf(0, rows)
}

// Run executes the plan over the input written via In and returns the
// logits (rows × Classes()), valid until the next In/Run/Forward call.
// rows must not exceed the preceding In's row count: growing the arena
// inside Run would reallocate it and silently drop the written input, so
// that is a panic instead of a wrong answer.
//
//pelican:noalloc
func (e *Engine) Run(rows int) []float32 {
	if rows > e.inRows {
		panic(fmt.Sprintf("infer: Run(%d) exceeds the %d rows written via In", rows, e.inRows))
	}
	out := 0
	for i := range e.plan.steps {
		s := &e.plan.steps[i]
		src := e.buf(s.src, rows)
		dst := e.buf(s.dst, rows)
		switch s.op {
		case opGemm:
			tensor.GemmBiasActF32(dst, src, s.w, s.bias, rows, e.plan.widths[s.src], e.plan.widths[s.dst], s.act)
		case opAffine:
			runAffine(dst, src, s.scale, s.shift)
		case opRelu:
			for j, v := range src {
				if v > 0 {
					dst[j] = v
				} else {
					dst[j] = 0
				}
			}
		case opAdd:
			src2 := e.buf(s.src2, rows)
			for j, v := range src {
				dst[j] = v + src2[j]
			}
		case opGRUGate:
			runGRUGate(dst, src, e.plan.widths[s.dst])
		case opLSTMGate:
			runLSTMGate(dst, src, e.plan.widths[s.dst])
		}
		out = s.dst
	}
	return e.buf(out, rows)
}

// Forward copies x (rows × Features()) into the input buffer and runs the
// plan — the convenience entry; hot paths write via In and call Run.
func (e *Engine) Forward(x []float32, rows int) []float32 {
	copy(e.In(rows), x[:rows*e.plan.features])
	return e.Run(rows)
}

//pelican:noalloc
func runAffine(dst, src, scale, shift []float32) {
	w := len(scale)
	for r := 0; r*w < len(src); r++ {
		srow := src[r*w : (r+1)*w]
		drow := dst[r*w : (r+1)*w]
		for j, v := range srow {
			drow[j] = v*scale[j] + shift[j]
		}
	}
}

// runGRUGate combines packed (B, 2H) GRU pre-activations [z | h~] into
// (B, H) hidden states for zero initial state: h = (1 − hardsig(z))·tanh(h~).
//
//pelican:noalloc
func runGRUGate(dst, src []float32, h int) {
	for r := 0; r*2*h < len(src); r++ {
		arow := src[r*2*h : (r+1)*2*h]
		drow := dst[r*h : (r+1)*h]
		for j := 0; j < h; j++ {
			drow[j] = (1 - hardSigmoid32(arow[j])) * tanh32(arow[h+j])
		}
	}
}

// runLSTMGate combines packed (B, 3H) LSTM pre-activations [i | g | o]
// into (B, H) hidden states for zero initial state:
// h = sig(o)·tanh(sig(i)·tanh(g)).
//
//pelican:noalloc
func runLSTMGate(dst, src []float32, h int) {
	for r := 0; r*3*h < len(src); r++ {
		arow := src[r*3*h : (r+1)*3*h]
		drow := dst[r*h : (r+1)*h]
		for j := 0; j < h; j++ {
			c := sigmoid32(arow[j]) * tanh32(arow[h+j])
			drow[j] = sigmoid32(arow[2*h+j]) * tanh32(c)
		}
	}
}

// hardSigmoid32 is Keras's piecewise-linear sigmoid max(0, min(1, 0.2x+0.5)).
//
//pelican:noalloc
func hardSigmoid32(v float32) float32 {
	y := 0.2*v + 0.5
	if y < 0 {
		return 0
	}
	if y > 1 {
		return 1
	}
	return y
}

func tanh32(v float32) float32 { return float32(math.Tanh(float64(v))) }

func sigmoid32(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) }
