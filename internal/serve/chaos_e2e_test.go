package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/registry"
)

// copyFile duplicates src at dst (chaos tests corrupt the copy, never the
// original).
func copyFile(dst, src string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

// postRecords sends one single-record scoring request and returns its
// status and latency.
func postRecords(t *testing.T, url string, body []byte) (int, time.Duration) {
	t.Helper()
	start := time.Now()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("scoring request: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, time.Since(start)
}

func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[(len(lat)*99)/100]
}

// TestChaosOverloadShedsAndStaysHealthy is the chaos e2e acceptance test
// for overload: with an injected 20ms replica stall and concurrent clients
// driving the server past capacity, the excess is shed with 429/503 (never
// an error, never a hang), the accepted requests' p99 stays within a small
// multiple of the unloaded p99, and /healthz answers 200 the whole time —
// zero restarts, and the server serves normally once the storm passes.
func TestChaosOverloadShedsAndStaysHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and hammers it")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 23, 1)
	// MaxBatch 1 makes the injected 20ms a per-record service time, so the
	// slot's capacity is ~100 records/s — 8 closed-loop clients exceed it.
	inj := &chaos.Injector{}
	_, ts := newTestServer(t, a, Config{
		Replicas: 2, MaxBatch: 1, MaxWait: time.Millisecond,
		QueueDepth: 16, AdmitWatermark: 2, Chaos: inj,
	})
	body, _ := json.Marshal(detectBatchRequest{Records: recordsJSON(recs[:1])})

	// Baseline: unloaded p99 with the chaos fault already active — the
	// comparison the overload bound is defined against.
	inj.SetScoreDelay(20 * time.Millisecond)
	var baseline []time.Duration
	for i := 0; i < 25; i++ {
		code, lat := postRecords(t, ts.URL+"/v1/detect-batch", body)
		if code != http.StatusOK {
			t.Fatalf("unloaded request %d got %d", i, code)
		}
		baseline = append(baseline, lat)
	}
	baseP99 := p99(baseline)

	// Health watchdog: /healthz must stay green through the whole storm.
	healthStop := make(chan struct{})
	var healthFails atomic.Int64
	var healthWG sync.WaitGroup
	healthWG.Add(1)
	go func() {
		defer healthWG.Done()
		for {
			select {
			case <-healthStop:
				return
			case <-time.After(10 * time.Millisecond):
				resp, err := http.Get(ts.URL + "/healthz")
				if err != nil {
					healthFails.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					healthFails.Add(1)
				}
			}
		}
	}()

	// The storm: 16 closed-loop clients against 2 replicas of 20ms batches.
	const clients, perClient = 16, 15
	var mu sync.Mutex
	var accepted []time.Duration
	var shed, other int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				code, lat := postRecords(t, ts.URL+"/v1/detect-batch", body)
				mu.Lock()
				switch code {
				case http.StatusOK:
					accepted = append(accepted, lat)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed++
				default:
					other++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(healthStop)
	healthWG.Wait()

	if other > 0 {
		t.Fatalf("%d requests answered something other than 200/429/503", other)
	}
	if shed == 0 {
		t.Fatalf("no requests shed with %d closed-loop clients over a stalled 2-replica slot", clients)
	}
	if len(accepted) == 0 {
		t.Fatal("every request shed: admission control must still serve what fits")
	}
	if fails := healthFails.Load(); fails > 0 {
		t.Fatalf("/healthz failed %d times during overload", fails)
	}
	bound := 5 * baseP99
	if bound < 500*time.Millisecond {
		bound = 500 * time.Millisecond // CI-jitter floor
	}
	if got := p99(accepted); got > bound {
		t.Fatalf("accepted p99 %v exceeds %v (5x unloaded p99 %v)", got, bound, baseP99)
	}

	// Storm over, fault released: normal service, no restart.
	inj.SetScoreDelay(0)
	if code, _ := postRecords(t, ts.URL+"/v1/detect-batch", body); code != http.StatusOK {
		t.Fatalf("post-storm request got %d", code)
	}
}

// TestChaosCorruptArtifactNeverDisturbsLive proves the artifact integrity
// chain end to end: a bit-flipped .plcn is rejected by /v2/load (422), the
// live slot keeps serving the same version, no shadow slot appears, and
// /healthz never wavers. The intact copy of the same artifact then loads
// fine — the rejection was the corruption, not the candidate.
func TestChaosCorruptArtifactNeverDisturbsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 29, 1)
	a2, _, _ := trainTestArtifact(t, "mlp", 31, 1)
	srv, ts := newTestServer(t, a, Config{Replicas: 1, MaxBatch: 8, MaxWait: time.Millisecond})
	liveVersion := srv.Info().Version

	good := saveArtifact(t, a2)
	bad := good + ".corrupt"
	if err := copyFile(bad, good); err != nil {
		t.Fatal(err)
	}
	if err := chaos.CorruptFile(bad); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v2/load", loadRequest{Path: bad})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt artifact load got %d (%s), want 422", resp.StatusCode, body)
	}
	if got := srv.Info().Version; got != liveVersion {
		t.Fatalf("live version changed to %s after a corrupt load", got)
	}
	if _, ok := srv.slot(registry.Shadow); ok {
		t.Fatal("corrupt artifact landed in the shadow slot")
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d after corrupt load", code)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs[:4])}); resp.StatusCode != http.StatusOK {
		t.Fatalf("scoring after corrupt load got %d (%s)", resp.StatusCode, body)
	}

	// The intact file is accepted, pinning the failure to the corruption.
	if resp, body := postJSON(t, ts.URL+"/v2/load", loadRequest{Path: good}); resp.StatusCode != http.StatusOK {
		t.Fatalf("intact artifact load got %d (%s)", resp.StatusCode, body)
	}
	if _, ok := srv.slot(registry.Shadow); !ok {
		t.Fatal("intact artifact did not land in the shadow slot")
	}
}
