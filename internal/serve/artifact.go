// Package serve turns a trained detector into a network service: a
// self-contained model artifact format (weights + architecture spec +
// fitted preprocessing, one file), an HTTP/JSON scoring server whose
// request path funnels into a dynamic micro-batcher feeding sharded
// detector replicas, Prometheus-style metrics, graceful drain, and atomic
// hot-reload of a new artifact with no dropped requests.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"sync"

	"repro/internal/data"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
)

// artifactMagic prefixes every artifact file so foreign files fail fast
// with a clear error instead of a gob decode panic deep in the stack.
const artifactMagic = "PELICANv1\n"

// artifactFormatVersion is bumped on incompatible wire changes.
const artifactFormatVersion = 1

// artifactWire is the gob payload that follows the magic header.
type artifactWire struct {
	FormatVersion int
	ModelName     string
	Block         models.BlockConfig
	Schema        data.Schema
	ScalerMean    []float64
	ScalerStd     []float64
	// Checkpoint holds nn.Network.Save bytes (weights + BatchNorm stats).
	Checkpoint []byte
	// Checksum is CRC-32 (IEEE) over Checkpoint, a cheap integrity check
	// against torn writes and bit rot.
	Checksum uint32
}

// Artifact is a self-contained trained detector: everything needed to
// reconstruct a ready-to-score nids.ModelDetector — registered model name,
// block configuration, dataset schema (which fully determines the one-hot
// encoder), fitted scaler moments, and network weights.
type Artifact struct {
	ModelName string
	Block     models.BlockConfig
	Schema    data.Schema

	scaler     *data.Scaler
	checkpoint []byte
	// fileBytes is the canonical serialized form — the exact bytes written
	// by SaveArtifact and stored in the CAS, captured at creation or load.
	// version is defined over these bytes, so they must never be
	// regenerated: gob assigns type ids process-globally in first-use
	// order, which makes a re-encode byte-stable within a process but NOT
	// across processes with different gob histories.
	fileBytes []byte
	version   string

	// Compiled float32 inference plan, lowered from the checkpoint once on
	// first use and shared by every replica (the weights stay stored once,
	// in float64, in the artifact file; lowering happens at load).
	planOnce sync.Once
	plan     *infer.Plan
	planErr  error
}

// NewArtifact captures a trained network and its fitted pipeline into an
// artifact. modelName must be a registered models.Spec name; the artifact
// rebuilds the architecture from it at load time.
func NewArtifact(modelName string, block models.BlockConfig, schema data.Schema, pipe *data.Pipeline, net *nn.Network) (*Artifact, error) {
	if _, err := models.Lookup(modelName); err != nil {
		return nil, err
	}
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid schema: %w", err)
	}
	if w := schema.EncodedWidth(); len(pipe.Scaler.Mean) != w {
		return nil, fmt.Errorf("serve: scaler fitted on %d columns, schema encodes %d", len(pipe.Scaler.Mean), w)
	}
	var ck bytes.Buffer
	if err := net.Save(&ck); err != nil {
		return nil, fmt.Errorf("serve: capture checkpoint: %w", err)
	}
	a := &Artifact{
		ModelName:  modelName,
		Block:      block,
		Schema:     schema,
		scaler:     pipe.Scaler,
		checkpoint: ck.Bytes(),
	}
	enc, err := a.encode()
	if err != nil {
		return nil, err
	}
	a.fileBytes = enc
	a.version = versionOf(enc)
	return a, nil
}

// Version returns the artifact's content-addressed version id: the first
// 12 hex digits of the SHA-256 of the serialized file. Two artifacts with
// the same version are byte-identical.
func (a *Artifact) Version() string { return a.version }

// Features returns the encoded input width the model consumes.
func (a *Artifact) Features() int { return a.Schema.EncodedWidth() }

// Classes returns the number of output classes.
func (a *Artifact) Classes() int { return a.Schema.NumClasses() }

// Bytes returns the artifact's canonical file bytes — the form whose
// SHA-256 defines Version(). Callers must not mutate the result.
func (a *Artifact) Bytes() []byte { return a.fileBytes }

// encode serializes the artifact to its file bytes (magic + gob payload).
// Only NewArtifact may call it: everywhere else must use the captured
// canonical Bytes, because gob output is not byte-stable across processes.
func (a *Artifact) encode() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(artifactMagic)
	wire := artifactWire{
		FormatVersion: artifactFormatVersion,
		ModelName:     a.ModelName,
		Block:         a.Block,
		Schema:        a.Schema,
		ScalerMean:    a.scaler.Mean,
		ScalerStd:     a.scaler.Std,
		Checkpoint:    a.checkpoint,
		Checksum:      crc32.ChecksumIEEE(a.checkpoint),
	}
	if err := gob.NewEncoder(&buf).Encode(&wire); err != nil {
		return nil, fmt.Errorf("serve: encode artifact: %w", err)
	}
	return buf.Bytes(), nil
}

func versionOf(fileBytes []byte) string {
	sum := sha256.Sum256(fileBytes)
	return hex.EncodeToString(sum[:6])
}

// SaveArtifact writes the artifact to w in the single-file format that
// LoadArtifact reads. It writes the canonical bytes version is defined
// over, so save → load round-trips the version exactly.
func SaveArtifact(w io.Writer, a *Artifact) error {
	_, err := w.Write(a.fileBytes)
	return err
}

// SaveArtifactFile writes the artifact to path (0644).
func SaveArtifactFile(path string, a *Artifact) error {
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, a); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadArtifact reads and validates an artifact written by SaveArtifact:
// magic header, format version, checkpoint checksum, registered model
// name, and schema consistency all have to check out before any network
// is built.
func LoadArtifact(r io.Reader) (*Artifact, error) {
	fileBytes, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("serve: read artifact: %w", err)
	}
	if !bytes.HasPrefix(fileBytes, []byte(artifactMagic)) {
		return nil, fmt.Errorf("serve: not a Pelican model artifact (bad magic)")
	}
	var wire artifactWire
	dec := gob.NewDecoder(bytes.NewReader(fileBytes[len(artifactMagic):]))
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("serve: decode artifact (corrupt or truncated): %w", err)
	}
	if wire.FormatVersion != artifactFormatVersion {
		return nil, fmt.Errorf("serve: artifact format version %d, this build reads %d", wire.FormatVersion, artifactFormatVersion)
	}
	if got := crc32.ChecksumIEEE(wire.Checkpoint); got != wire.Checksum {
		return nil, fmt.Errorf("serve: checkpoint checksum mismatch (artifact corrupt): got %08x, want %08x", got, wire.Checksum)
	}
	if _, err := models.Lookup(wire.ModelName); err != nil {
		return nil, fmt.Errorf("serve: artifact references unknown model: %w", err)
	}
	if err := wire.Schema.Validate(); err != nil {
		return nil, fmt.Errorf("serve: artifact schema invalid: %w", err)
	}
	if w := wire.Schema.EncodedWidth(); len(wire.ScalerMean) != w || len(wire.ScalerStd) != w {
		return nil, fmt.Errorf("serve: artifact scaler has %d/%d columns, schema encodes %d",
			len(wire.ScalerMean), len(wire.ScalerStd), w)
	}
	return &Artifact{
		ModelName:  wire.ModelName,
		Block:      wire.Block,
		Schema:     wire.Schema,
		scaler:     &data.Scaler{Mean: wire.ScalerMean, Std: wire.ScalerStd},
		checkpoint: wire.Checkpoint,
		fileBytes:  fileBytes,
		version:    versionOf(fileBytes),
	}, nil
}

// LoadArtifactFile reads an artifact from path.
func LoadArtifactFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := LoadArtifact(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// NewNetwork reconstructs the artifact's trained network with the given
// loss and optimizer, alongside its fitted preprocessing pipeline — the
// warm-start entry point for online retraining: the returned network's
// parameters are the artifact's weights, so nn.Network.PartialFit resumes
// training from the deployed model instead of a fresh initialization.
// Weight initialization seeds are irrelevant (the checkpoint overwrites
// every parameter); dropout masks draw from a fixed-seed stream, so a
// retraining run is deterministic given the caller's FitConfig RNG.
func (a *Artifact) NewNetwork(loss nn.Loss, opt nn.Optimizer) (*nn.Network, *data.Pipeline, error) {
	spec, err := models.Lookup(a.ModelName)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(1))
	dropRNG := rand.New(rand.NewSource(1))
	stack := spec.Build(rng, dropRNG, a.Block, a.Features(), a.Classes())
	net := nn.NewNetwork(stack, loss, opt)
	if err := net.Load(bytes.NewReader(a.checkpoint)); err != nil {
		return nil, nil, fmt.Errorf("serve: restore %s weights: %w", a.ModelName, err)
	}
	return net, &data.Pipeline{Enc: data.NewEncoder(a.Schema), Scaler: a.scaler}, nil
}

// Plan returns the artifact's compiled float32 inference plan, lowering
// the float64 checkpoint through infer.Compile on first call. The plan is
// cached and shared: replicas each run it through their own engine, and a
// hot-reload path that pre-validates an artifact (adapt's retrain loop)
// warms the same cache the serving side reads.
func (a *Artifact) Plan() (*infer.Plan, error) {
	a.planOnce.Do(func() {
		net, _, err := a.NewNetwork(nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(0.01))
		if err != nil {
			a.planErr = err
			return
		}
		a.plan, a.planErr = infer.Compile(net)
	})
	return a.plan, a.planErr
}

// NewInferDetector builds a float32-engine scoring replica: the shared
// compiled plan plus a private engine arena and lock. The float64
// counterpart is NewDetector.
func (a *Artifact) NewInferDetector() (*infer.Detector, error) {
	plan, err := a.Plan()
	if err != nil {
		return nil, fmt.Errorf("serve: lower %s for f32 inference: %w", a.ModelName, err)
	}
	pipe := &data.Pipeline{Enc: data.NewEncoder(a.Schema), Scaler: a.scaler}
	return infer.NewDetector(a.ModelName, pipe, plan), nil
}

// NewDetector builds a fresh, ready-to-score replica from the artifact.
// Each call returns an independent detector (own network buffers, own
// lock), so callers can shard load across several replicas; the read-only
// scaler and schema are shared.
func (a *Artifact) NewDetector() (*nids.ModelDetector, error) {
	net, pipe, err := a.NewNetwork(nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(0.01))
	if err != nil {
		return nil, err
	}
	return &nids.ModelDetector{ModelName: a.ModelName, Net: net, Pipe: pipe}, nil
}
