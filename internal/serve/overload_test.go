package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/nids"
	"repro/internal/registry"
)

// getBody GETs url and returns the status and body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// waitQueueLen polls the live slot's queue until it holds at least n
// records or the deadline passes.
func waitQueueLen(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		si, ok := srv.slot(registry.Live)
		if ok && si.scorer.queueLen() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d records", n)
}

// TestAdmissionControlFastFails429 is the admission-controller tentpole
// test: once a slot's queue crosses the watermark, new scoring requests
// are answered 429 + Retry-After immediately — no handler goroutine ever
// parks behind a saturated batcher — the sheds are counted per slot and
// server-wide, and /healthz stays green throughout.
func TestAdmissionControlFastFails429(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 11, 1)
	inj := &chaos.Injector{}
	srv, ts := newTestServer(t, a, Config{
		Replicas: 1, MaxBatch: 1, MaxWait: time.Millisecond,
		QueueDepth: 8, AdmitWatermark: 2, Chaos: inj,
	})

	// Stall the only replica so queued records stay queued.
	inj.SetScoreDelay(300 * time.Millisecond)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// 8 single-record batches: one in service, one parked in the
		// hand-off, the rest queued (>= watermark 2).
		postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs[:8])})
	}()
	waitQueueLen(t, srv, 2)

	b, _ := json.Marshal(detectBatchRequest{Records: recordsJSON(recs[:1])})
	resp, err := http.Post(ts.URL+"/v1/detect-batch", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-watermark request got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	// Overload must be invisible to liveness.
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d during overload, want 200", code)
	}

	inj.SetScoreDelay(0)
	wg.Wait()

	m := srv.Models()
	var live SlotStatsJSON
	for _, s := range m.Slots {
		if s.Tag == registry.Live {
			live = s.Stats
		}
	}
	if live.Shed < 1 {
		t.Fatalf("live slot Shed = %d, want >= 1", live.Shed)
	}
	code, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"pelican_serve_shed_total 1", `pelican_serve_slot_shed_total{slot="live"`} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestDeadlineExpiredSheds503 is the deadline-propagation tentpole test: a
// request whose X-Timeout-Ms budget runs out while its record waits behind
// a slow replica is shed — never scored — and answered 503 + Retry-After,
// with the shed counted on the slot; the server then recovers on its own
// once the fault clears.
func TestDeadlineExpiredSheds503(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 13, 1)
	inj := &chaos.Injector{}
	srv, ts := newTestServer(t, a, Config{
		Replicas: 1, MaxBatch: 1, MaxWait: time.Millisecond,
		QueueDepth: 8, Chaos: inj,
	})

	// Occupy the only replica for 400ms.
	inj.SetScoreDelay(400 * time.Millisecond)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs[:1])})
	}()
	// Give the first record time to be cut and picked up by the (stalled)
	// replica before the timed request arrives behind it.
	time.Sleep(50 * time.Millisecond)

	// 50ms of budget cannot survive a 400ms replica stall.
	b, _ := json.Marshal(detectBatchRequest{Records: recordsJSON(recs[:1])})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect-batch", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Timeout-Ms", "50")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired request got %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}
	// The answer must come at deadline speed, not replica speed... but the
	// shed happens when a worker sees the record, so allow one stall.
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("expired request answered after %v", waited)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d during deadline sheds, want 200", code)
	}

	inj.SetScoreDelay(0)
	wg.Wait()

	st := srv.Registry().StatsFor(registry.Live)
	if got := st.DeadlineExpired.Load(); got != 1 {
		t.Fatalf("DeadlineExpired = %d, want 1", got)
	}
	// Recovery: the same request with default budget now scores fine.
	resp2, body2 := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs[:1])})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request got %d (%s)", resp2.StatusCode, body2)
	}
	code, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(string(metrics), "pelican_serve_deadline_expired_total 1") {
		t.Fatalf("/metrics missing the deadline-expired counter:\n%s", metrics)
	}
}

// TestMirrorDropAccountingExact is the satellite coverage for the
// mirror-drop path: under concurrent live traffic with MirrorConcurrency=1
// and slowed replicas, mirrors are dropped rather than blocking live — and
// the per-slot counters account every record exactly:
// mirrored + mirror_dropped == live records, with the shadow slot's own
// records/agreement counters consistent. Run under -race in CI, this also
// proves the mirror goroutines' memory discipline.
func TestMirrorDropAccountingExact(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 17, 1)
	a2, _, _ := trainTestArtifact(t, "mlp", 19, 1)
	inj := &chaos.Injector{}
	srv, ts := newTestServer(t, a, Config{
		Replicas: 2, MaxBatch: 8, MaxWait: time.Millisecond,
		QueueDepth: 64, MirrorConcurrency: 1, Chaos: inj,
	})
	if err := srv.LoadSlot(registry.Shadow, a2); err != nil {
		t.Fatal(err)
	}
	// A little injected service time holds the single mirror token long
	// enough that concurrent live requests must drop mirrors.
	inj.SetScoreDelay(5 * time.Millisecond)

	const clients, reqs = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reqs; r++ {
				b, _ := json.Marshal(detectBatchRequest{Records: recordsJSON(recs[:8])})
				resp, err := http.Post(ts.URL+"/v1/detect-batch", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("live request got %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Close waits for in-flight mirror goroutines, so the counters are
	// final — and exact, not approximate.
	ts.Close()
	srv.Close()

	liveSt := srv.Registry().StatsFor(registry.Live)
	shSt := srv.Registry().StatsFor(registry.Shadow)
	liveRecords := liveSt.Records.Load()
	mirrored, dropped := shSt.Mirrored.Load(), shSt.MirrorDropped.Load()
	if want := int64(clients * reqs * 8); liveRecords != want {
		t.Fatalf("live records = %d, want %d", liveRecords, want)
	}
	if mirrored+dropped != liveRecords {
		t.Fatalf("mirrored(%d) + dropped(%d) = %d, want exactly live records %d",
			mirrored, dropped, mirrored+dropped, liveRecords)
	}
	if dropped == 0 {
		t.Fatalf("no mirrors dropped with MirrorConcurrency=1 under %d concurrent clients", clients)
	}
	if got := shSt.Records.Load(); got != mirrored {
		t.Fatalf("shadow records = %d, want mirrored %d", got, mirrored)
	}
	if agree := shSt.Agreements.Load() + shSt.Disagreements.Load(); agree != mirrored {
		t.Fatalf("agreements+disagreements = %d, want mirrored %d", agree, mirrored)
	}
}

// TestBatcherMaxWaitUnderSlowConsumer is the satellite coverage for flush
// timing: MaxWait bounds when a batch is cut, independent of how slowly
// the replica services batches. A record enqueued during a replica's
// 100ms service pause is cut into its own batch at MaxWait and delivered
// the moment the replica frees up — it never waits for a co-traveler and
// never joins the earlier batch.
func TestBatcherMaxWaitUnderSlowConsumer(t *testing.T) {
	b := newBatcher(batcherConfig{MaxBatch: 1024, MaxWait: 5 * time.Millisecond, QueueDepth: 64})
	defer b.close()

	type delivery struct {
		at   time.Time
		size int
	}
	deliveries := make(chan delivery, 4)
	go func() {
		for fb := range b.batches {
			batch := fb.items
			deliveries <- delivery{at: time.Now(), size: len(batch)}
			time.Sleep(100 * time.Millisecond) // slow replica
			for i := range batch {
				batch[i].wg.Done()
			}
			b.putSlab(batch)
		}
		close(deliveries)
	}()

	var wg sync.WaitGroup
	var v1, v2 nids.Verdict
	wg.Add(2)
	start := time.Now()
	b.enqueue(item{rec: &data.Record{}, out: &v1, wg: &wg}, true)

	first := <-deliveries
	if first.size != 1 {
		t.Fatalf("first batch holds %d records, want the lone first record", first.size)
	}
	if waited := first.at.Sub(start); waited > time.Second {
		t.Fatalf("first batch cut after %v; MaxWait is 5ms", waited)
	}

	// The replica is now mid-service. A record arriving here must be cut
	// at MaxWait — bounded by flush policy, not by the 100ms service time
	// plus another wait.
	enq := time.Now()
	b.enqueue(item{rec: &data.Record{}, out: &v2, wg: &wg}, true)
	second := <-deliveries
	if second.size != 1 {
		t.Fatalf("second batch holds %d records, want 1", second.size)
	}
	// Delivered as soon as the replica frees up (~100ms after the first
	// delivery): the cut happened at MaxWait and the batch sat ready in the
	// hand-off channel. What it must NOT cost is service time on top of a
	// fresh MaxBatch wait — bound it well under 2 service periods.
	if waited := second.at.Sub(enq); waited > 150*time.Millisecond {
		t.Fatalf("second record delivered %v after enqueue; MaxWait=5ms + one 100ms service pause should bound it", waited)
	}
	wg.Wait()
}
