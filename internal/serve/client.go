package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/nids"
	"repro/internal/obs"
)

// DefaultClientTimeout bounds every request made through a Client that
// did not supply its own *http.Client. A scoring client must never hang
// forever on a stalled server: a bounded failure is recoverable (retry,
// breaker, drop the flow), an unbounded wait wedges the whole pipeline.
const DefaultClientTimeout = 10 * time.Second

// defaultHTTPClient is shared by every Client whose HTTP field is nil.
// Its transport is tuned for a scoring client's traffic shape — many
// concurrent requests to one or two hosts: http.DefaultTransport keeps
// only 2 idle connections per host, so a load generator churns through
// ephemeral connections (handshakes, TIME_WAIT) instead of reusing
// keep-alive ones. That would also handicap the HTTP side of any
// HTTP-vs-wire comparison with connection-setup cost the binary plane
// (persistent connections) never pays.
var defaultHTTPClient = &http.Client{
	Timeout: DefaultClientTimeout,
	Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 128,
		IdleConnTimeout:     90 * time.Second,
		// Keep-alives stay enabled (the zero value): every scoring
		// request after the first reuses a warm connection.
		DisableKeepAlives: false,
	},
}

// Client is a typed HTTP client for the scoring server: the consumer side
// of the /v1 and /v2 APIs for Go callers (load generators, adaptation
// sidecars, tests). It is safe for concurrent use.
//
// Resilience: requests time out after DefaultClientTimeout (override by
// supplying HTTP — set Timeout: 0 there to opt out entirely); idempotent
// calls (scoring and every GET) are retried with jittered exponential
// backoff on transport errors and retryable statuses (429, 500, 502,
// 503, 504), honoring Retry-After; and an optional circuit Breaker
// fast-fails calls while the server is down so a wedged scoring plane
// degrades to counted errors instead of piled-up goroutines. Mutating
// control-plane calls (reload, load, promote, rollback) are never
// retried — promote twice is not promote once.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; nil uses a shared client with
	// DefaultClientTimeout. Supply your own to change the timeout, the
	// transport (e.g. chaos.Transport), or connection pooling.
	HTTP *http.Client
	// MaxAttempts caps total tries per idempotent call (first try +
	// retries). 0 means 3; 1 disables retries.
	MaxAttempts int
	// RetryBase is the first backoff delay; each retry doubles it (±50%
	// jitter, capped at 2s, floored at a server-sent Retry-After). 0 means
	// 50ms.
	RetryBase time.Duration
	// Breaker, when non-nil, guards every call: while open, calls fail
	// immediately with ErrBreakerOpen. Transport errors and hard 5xx
	// statuses (500/502/504) count as breaker failures; 429 and 503 are
	// overload shedding — the server is alive and asking for backoff, so
	// they are retried but never trip the breaker.
	Breaker *Breaker

	// lastRequestID holds the X-Request-Id echoed by the most recent
	// response (string). Every logical call sends one generated ID, shared
	// across its retries, so all attempts correlate to one trace lineage.
	lastRequestID atomic.Value
}

// LastRequestID returns the X-Request-Id the server echoed on the most
// recent response ("" before the first) — the handle for joining a
// client-observed outcome against the server's /debug/traces and logs.
func (c *Client) LastRequestID() string {
	id, _ := c.lastRequestID.Load().(string)
	return id
}

// NewClient builds a client for the server at base.
func NewClient(base string) *Client { return &Client{BaseURL: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 50 * time.Millisecond
}

// statusError is a non-2xx response, carrying what the retry policy
// needs: the status and any server-requested backoff.
type statusError struct {
	path       string
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("serve: %s: %d: %s", e.path, e.status, e.msg)
	}
	return fmt.Sprintf("serve: %s: status %d", e.path, e.status)
}

// retryable reports whether err may be retried on an idempotent call:
// transport errors (the request may never have arrived) and the
// overload/transient statuses.
func retryable(err error) bool {
	if errors.Is(err, ErrBreakerOpen) {
		return false // the breaker's cool-down outlives any backoff here
	}
	var se *statusError
	if errors.As(err, &se) {
		switch se.status {
		case http.StatusTooManyRequests, http.StatusInternalServerError,
			http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return true // transport-level failure
}

// breakerFailure reports whether err is evidence the server is down (as
// opposed to deliberately shedding load).
func breakerFailure(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		switch se.status {
		case http.StatusInternalServerError, http.StatusBadGateway, http.StatusGatewayTimeout:
			return true
		}
		return false // 4xx and 503 are deliberate answers from a live server
	}
	return true // transport-level failure
}

// maxBackoff caps the exponential retry delay.
const maxBackoff = 2 * time.Second

// backoffFor computes the sleep before retry attempt i (1-based): base
// doubled per attempt with ±50% jitter, capped, and floored at the
// server's Retry-After when the last error carried one.
func (c *Client) backoffFor(i int, last error) time.Duration {
	d := c.retryBase() << (i - 1)
	if d > maxBackoff {
		d = maxBackoff
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d))) // [d/2, 3d/2)
	var se *statusError
	if errors.As(last, &se) && se.retryAfter > d {
		d = se.retryAfter
	}
	return d
}

// once performs one HTTP exchange with breaker accounting. A nil out
// discards the response body.
func (c *Client) once(method, path string, body []byte, out any, requestID string) error {
	b := c.Breaker
	if b != nil && !b.Allow() {
		// Not Recorded: the call never happened, so it is not evidence.
		return fmt.Errorf("%w (state %s): %s", ErrBreakerOpen, b.State(), path)
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, reader)
	if err != nil {
		if b != nil {
			b.Record(true) // a malformed URL is the caller's bug, not the server's health
		}
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if requestID != "" {
		req.Header.Set(obs.RequestIDHeader, requestID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		if b != nil {
			b.Record(false)
		}
		return fmt.Errorf("serve: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if id := resp.Header.Get(obs.RequestIDHeader); id != "" {
		c.lastRequestID.Store(id)
	}
	if resp.StatusCode/100 != 2 {
		se := &statusError{path: path, status: resp.StatusCode}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.retryAfter = time.Duration(secs) * time.Second
		}
		var e errorResponse
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			se.msg = e.Error
		}
		if b != nil {
			b.Record(!breakerFailure(se))
		}
		return se
	}
	if b != nil {
		b.Record(true)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// call performs the request, retrying idempotent calls on retryable
// failures with jittered exponential backoff.
func (c *Client) call(method, path string, body []byte, out any, idempotent bool) error {
	attempts := 1
	if idempotent {
		attempts = c.attempts()
	}
	// One ID per logical call: retried attempts reuse it, so however many
	// times the request lands, the server's traces share one request ID.
	requestID := obs.NewID()
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(c.backoffFor(i, last))
		}
		err := c.once(method, path, body, out, requestID)
		if err == nil {
			return nil
		}
		last = err
		if !retryable(err) {
			return err
		}
	}
	return last
}

// postJSON posts body as JSON exactly once (the mutating control-plane
// path) and decodes the response into out, translating non-2xx statuses
// into errors carrying the server's message.
func (c *Client) postJSON(path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.call(http.MethodPost, path, b, out, false)
}

// postJSONIdempotent is postJSON with retries — for scoring calls, which
// are pure functions of their payload.
func (c *Client) postJSONIdempotent(path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.call(http.MethodPost, path, b, out, true)
}

// getJSON fetches path (with retries; GETs are idempotent) and decodes
// the response into out.
func (c *Client) getJSON(path string, out any) error {
	return c.call(http.MethodGet, path, nil, out, true)
}

// Model fetches the currently served (live) model's description.
func (c *Client) Model() (ModelInfo, error) {
	var info ModelInfo
	err := c.getJSON("/v1/model", &info)
	return info, err
}

// tagQuery renders the ?tag= suffix ("" means the server default, live).
func tagQuery(tag string) string {
	if tag == "" {
		return ""
	}
	return "?tag=" + url.QueryEscape(tag)
}

// Models fetches the full /v2 registry listing: every occupied slot with
// its per-slot counters, the retained rollback generation, and the
// lifecycle history.
func (c *Client) Models() (ModelsResponse, error) {
	var resp ModelsResponse
	err := c.getJSON("/v2/models", &resp)
	return resp, err
}

// ModelTag fetches the description of the model under tag.
func (c *Client) ModelTag(tag string) (ModelInfo, error) {
	var info ModelInfo
	err := c.getJSON("/v2/models/"+url.PathEscape(tag), &info)
	return info, err
}

// Score sends the records to /v1/detect-batch (the live slot) and returns
// the verdicts plus the version of the model generation that answered.
func (c *Client) Score(recs []*data.Record) ([]nids.Verdict, string, error) {
	return c.scoreAt("/v1/detect-batch", recs)
}

// ScoreTag scores the records against the model under tag via
// /v2/detect-batch ("" means live).
func (c *Client) ScoreTag(tag string, recs []*data.Record) ([]nids.Verdict, string, error) {
	return c.scoreAt("/v2/detect-batch"+tagQuery(tag), recs)
}

func (c *Client) scoreAt(path string, recs []*data.Record) ([]nids.Verdict, string, error) {
	req := detectBatchRequest{Records: make([]RecordJSON, len(recs))}
	for i, r := range recs {
		req.Records[i] = RecordJSON{Numeric: r.Numeric, Categorical: r.Categorical}
	}
	var resp detectBatchResponse
	if err := c.postJSONIdempotent(path, req, &resp); err != nil {
		return nil, "", err
	}
	if len(resp.Verdicts) != len(recs) {
		return nil, resp.ModelVersion, fmt.Errorf("serve: %d verdicts for %d records", len(resp.Verdicts), len(recs))
	}
	out := make([]nids.Verdict, len(recs))
	for i, v := range resp.Verdicts {
		out[i] = nids.Verdict{IsAttack: v.IsAttack, Class: v.Class, Score: v.Score}
	}
	return out, resp.ModelVersion, nil
}

// Reload asks the server to hot-load the artifact at path (a path on the
// server's filesystem) into the live slot and returns the newly served
// model info. The registry-aware form is LoadTag.
func (c *Client) Reload(path string) (ModelInfo, error) {
	var info ModelInfo
	err := c.postJSON("/v1/reload", reloadRequest{Path: path}, &info)
	return info, err
}

// LoadTag asks the server to load the artifact at path (a path on the
// server's filesystem) into the slot named tag ("" means shadow, the
// staging slot) and returns the slot's new model info.
func (c *Client) LoadTag(path, tag string) (ModelInfo, error) {
	var info ModelInfo
	err := c.postJSON("/v2/load"+tagQuery(tag), loadRequest{Path: path, Tag: tag}, &info)
	return info, err
}

// Promote asks the server to atomically make the shadow generation live
// (retaining the displaced live for Rollback) and returns the new live
// model info.
func (c *Client) Promote() (ModelInfo, error) {
	var info ModelInfo
	err := c.postJSON("/v2/promote", struct{}{}, &info)
	return info, err
}

// Rollback asks the server to restore the generation displaced by the last
// promotion or live load and returns the restored live model info.
func (c *Client) Rollback() (ModelInfo, error) {
	var info ModelInfo
	err := c.postJSON("/v2/rollback", struct{}{}, &info)
	return info, err
}

// RemoteDetector adapts a Client to nids.BatchDetector, so a live pipeline
// can score flows against a remote scoring server instead of an in-process
// network — the deployment shape where an adaptation sidecar watches
// exactly the model generation production traffic is scored by. Failed
// requests — including calls fast-failed by the client's circuit breaker —
// yield verdicts marked Failed (excluded from pipeline detection counters
// and ignored by the adaptation loop's monitors, so a server hiccup can
// neither skew DR/FAR nor spuriously trip a retrain) and are tallied in
// Errors: a dead or overloaded server degrades the pipeline to dropped
// flows with a counter, never to a hang.
type RemoteDetector struct {
	Client *Client
	// Tag pins scoring to one registry slot via /v2 ("shadow", a canary
	// tag, ...). Empty means the live slot via /v1 — a pipeline per slot is
	// how competing detectors run side by side over the same traffic.
	Tag string

	errs    atomic.Int64
	version atomic.Value // string: last model version that answered
}

var _ nids.BatchDetector = (*RemoteDetector)(nil)

// Name implements nids.Detector.
func (d *RemoteDetector) Name() string {
	if d.Tag != "" {
		return "remote:" + d.Client.BaseURL + "#" + d.Tag
	}
	return "remote:" + d.Client.BaseURL
}

// Detect implements nids.Detector.
func (d *RemoteDetector) Detect(rec *data.Record) nids.Verdict {
	var v [1]nids.Verdict
	d.DetectBatch([]*data.Record{rec}, v[:])
	return v[0]
}

// DetectBatch implements nids.BatchDetector over one detect-batch call
// (/v1 for the live default, /v2 when Tag pins a slot).
func (d *RemoteDetector) DetectBatch(recs []*data.Record, verdicts []nids.Verdict) {
	var (
		got     []nids.Verdict
		version string
		err     error
	)
	if d.Tag != "" {
		got, version, err = d.Client.ScoreTag(d.Tag, recs)
	} else {
		got, version, err = d.Client.Score(recs)
	}
	if err != nil {
		d.errs.Add(1)
		for i := range verdicts[:len(recs)] {
			verdicts[i] = nids.Verdict{Failed: true}
		}
		return
	}
	d.version.Store(version)
	copy(verdicts, got)
}

// Errors returns how many scoring requests have failed.
func (d *RemoteDetector) Errors() int64 { return d.errs.Load() }

// ModelVersion returns the version of the model generation that answered
// the most recent successful request ("" before the first).
func (d *RemoteDetector) ModelVersion() string {
	v, _ := d.version.Load().(string)
	return v
}
