package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/nids"
)

// Client is a typed HTTP client for the scoring server: the consumer side
// of the /v1 API for Go callers (load generators, adaptation sidecars,
// tests). It is safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewClient builds a client for the server at base.
func NewClient(base string) *Client { return &Client{BaseURL: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// postJSON posts body as JSON and decodes the response into out,
// translating non-2xx statuses into errors carrying the server's message.
func (c *Client) postJSON(path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http().Post(c.BaseURL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s: %d: %s", path, resp.StatusCode, e.Error)
		}
		return fmt.Errorf("serve: %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// getJSON fetches path and decodes the response into out, translating
// non-2xx statuses into errors carrying the server's message.
func (c *Client) getJSON(path string, out any) error {
	resp, err := c.http().Get(c.BaseURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s: %d: %s", path, resp.StatusCode, e.Error)
		}
		return fmt.Errorf("serve: %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Model fetches the currently served (live) model's description.
func (c *Client) Model() (ModelInfo, error) {
	var info ModelInfo
	err := c.getJSON("/v1/model", &info)
	return info, err
}

// tagQuery renders the ?tag= suffix ("" means the server default, live).
func tagQuery(tag string) string {
	if tag == "" {
		return ""
	}
	return "?tag=" + url.QueryEscape(tag)
}

// Models fetches the full /v2 registry listing: every occupied slot with
// its per-slot counters, the retained rollback generation, and the
// lifecycle history.
func (c *Client) Models() (ModelsResponse, error) {
	var resp ModelsResponse
	err := c.getJSON("/v2/models", &resp)
	return resp, err
}

// ModelTag fetches the description of the model under tag.
func (c *Client) ModelTag(tag string) (ModelInfo, error) {
	var info ModelInfo
	err := c.getJSON("/v2/models/"+url.PathEscape(tag), &info)
	return info, err
}

// Score sends the records to /v1/detect-batch (the live slot) and returns
// the verdicts plus the version of the model generation that answered.
func (c *Client) Score(recs []*data.Record) ([]nids.Verdict, string, error) {
	return c.scoreAt("/v1/detect-batch", recs)
}

// ScoreTag scores the records against the model under tag via
// /v2/detect-batch ("" means live).
func (c *Client) ScoreTag(tag string, recs []*data.Record) ([]nids.Verdict, string, error) {
	return c.scoreAt("/v2/detect-batch"+tagQuery(tag), recs)
}

func (c *Client) scoreAt(path string, recs []*data.Record) ([]nids.Verdict, string, error) {
	req := detectBatchRequest{Records: make([]RecordJSON, len(recs))}
	for i, r := range recs {
		req.Records[i] = RecordJSON{Numeric: r.Numeric, Categorical: r.Categorical}
	}
	var resp detectBatchResponse
	if err := c.postJSON(path, req, &resp); err != nil {
		return nil, "", err
	}
	if len(resp.Verdicts) != len(recs) {
		return nil, resp.ModelVersion, fmt.Errorf("serve: %d verdicts for %d records", len(resp.Verdicts), len(recs))
	}
	out := make([]nids.Verdict, len(recs))
	for i, v := range resp.Verdicts {
		out[i] = nids.Verdict{IsAttack: v.IsAttack, Class: v.Class, Score: v.Score}
	}
	return out, resp.ModelVersion, nil
}

// Reload asks the server to hot-load the artifact at path (a path on the
// server's filesystem) into the live slot and returns the newly served
// model info. The registry-aware form is LoadTag.
func (c *Client) Reload(path string) (ModelInfo, error) {
	var info ModelInfo
	err := c.postJSON("/v1/reload", reloadRequest{Path: path}, &info)
	return info, err
}

// LoadTag asks the server to load the artifact at path (a path on the
// server's filesystem) into the slot named tag ("" means shadow, the
// staging slot) and returns the slot's new model info.
func (c *Client) LoadTag(path, tag string) (ModelInfo, error) {
	var info ModelInfo
	err := c.postJSON("/v2/load"+tagQuery(tag), loadRequest{Path: path, Tag: tag}, &info)
	return info, err
}

// Promote asks the server to atomically make the shadow generation live
// (retaining the displaced live for Rollback) and returns the new live
// model info.
func (c *Client) Promote() (ModelInfo, error) {
	var info ModelInfo
	err := c.postJSON("/v2/promote", struct{}{}, &info)
	return info, err
}

// Rollback asks the server to restore the generation displaced by the last
// promotion or live load and returns the restored live model info.
func (c *Client) Rollback() (ModelInfo, error) {
	var info ModelInfo
	err := c.postJSON("/v2/rollback", struct{}{}, &info)
	return info, err
}

// RemoteDetector adapts a Client to nids.BatchDetector, so a live pipeline
// can score flows against a remote scoring server instead of an in-process
// network — the deployment shape where an adaptation sidecar watches
// exactly the model generation production traffic is scored by. Failed
// requests yield verdicts marked Failed (excluded from pipeline detection
// counters and ignored by the adaptation loop's monitors, so a server
// hiccup can neither skew DR/FAR nor spuriously trip a retrain) and are
// tallied in Errors.
type RemoteDetector struct {
	Client *Client
	// Tag pins scoring to one registry slot via /v2 ("shadow", a canary
	// tag, ...). Empty means the live slot via /v1 — a pipeline per slot is
	// how competing detectors run side by side over the same traffic.
	Tag string

	errs    atomic.Int64
	version atomic.Value // string: last model version that answered
}

var _ nids.BatchDetector = (*RemoteDetector)(nil)

// Name implements nids.Detector.
func (d *RemoteDetector) Name() string {
	if d.Tag != "" {
		return "remote:" + d.Client.BaseURL + "#" + d.Tag
	}
	return "remote:" + d.Client.BaseURL
}

// Detect implements nids.Detector.
func (d *RemoteDetector) Detect(rec *data.Record) nids.Verdict {
	var v [1]nids.Verdict
	d.DetectBatch([]*data.Record{rec}, v[:])
	return v[0]
}

// DetectBatch implements nids.BatchDetector over one detect-batch call
// (/v1 for the live default, /v2 when Tag pins a slot).
func (d *RemoteDetector) DetectBatch(recs []*data.Record, verdicts []nids.Verdict) {
	var (
		got     []nids.Verdict
		version string
		err     error
	)
	if d.Tag != "" {
		got, version, err = d.Client.ScoreTag(d.Tag, recs)
	} else {
		got, version, err = d.Client.Score(recs)
	}
	if err != nil {
		d.errs.Add(1)
		for i := range verdicts[:len(recs)] {
			verdicts[i] = nids.Verdict{Failed: true}
		}
		return
	}
	d.version.Store(version)
	copy(verdicts, got)
}

// Errors returns how many scoring requests have failed.
func (d *RemoteDetector) Errors() int64 { return d.errs.Load() }

// ModelVersion returns the version of the model generation that answered
// the most recent successful request ("" before the first).
func (d *RemoteDetector) ModelVersion() string {
	v, _ := d.version.Load().(string)
	return v
}
