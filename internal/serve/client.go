package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/nids"
)

// Client is a typed HTTP client for the scoring server: the consumer side
// of the /v1 API for Go callers (load generators, adaptation sidecars,
// tests). It is safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewClient builds a client for the server at base.
func NewClient(base string) *Client { return &Client{BaseURL: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// postJSON posts body as JSON and decodes the response into out,
// translating non-2xx statuses into errors carrying the server's message.
func (c *Client) postJSON(path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http().Post(c.BaseURL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s: %d: %s", path, resp.StatusCode, e.Error)
		}
		return fmt.Errorf("serve: %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Model fetches the currently served model's description.
func (c *Client) Model() (ModelInfo, error) {
	var info ModelInfo
	resp, err := c.http().Get(c.BaseURL + "/v1/model")
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("serve: /v1/model: status %d", resp.StatusCode)
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// Score sends the records to /v1/detect-batch and returns the verdicts
// plus the version of the model generation that answered.
func (c *Client) Score(recs []*data.Record) ([]nids.Verdict, string, error) {
	req := detectBatchRequest{Records: make([]RecordJSON, len(recs))}
	for i, r := range recs {
		req.Records[i] = RecordJSON{Numeric: r.Numeric, Categorical: r.Categorical}
	}
	var resp detectBatchResponse
	if err := c.postJSON("/v1/detect-batch", req, &resp); err != nil {
		return nil, "", err
	}
	if len(resp.Verdicts) != len(recs) {
		return nil, resp.ModelVersion, fmt.Errorf("serve: %d verdicts for %d records", len(resp.Verdicts), len(recs))
	}
	out := make([]nids.Verdict, len(recs))
	for i, v := range resp.Verdicts {
		out[i] = nids.Verdict{IsAttack: v.IsAttack, Class: v.Class, Score: v.Score}
	}
	return out, resp.ModelVersion, nil
}

// Reload asks the server to hot-load the artifact at path (a path on the
// server's filesystem) and returns the newly served model info.
func (c *Client) Reload(path string) (ModelInfo, error) {
	var info ModelInfo
	err := c.postJSON("/v1/reload", reloadRequest{Path: path}, &info)
	return info, err
}

// RemoteDetector adapts a Client to nids.BatchDetector, so a live pipeline
// can score flows against a remote scoring server instead of an in-process
// network — the deployment shape where an adaptation sidecar watches
// exactly the model generation production traffic is scored by. Failed
// requests yield verdicts marked Failed (excluded from pipeline detection
// counters and ignored by the adaptation loop's monitors, so a server
// hiccup can neither skew DR/FAR nor spuriously trip a retrain) and are
// tallied in Errors.
type RemoteDetector struct {
	Client *Client

	errs    atomic.Int64
	version atomic.Value // string: last model version that answered
}

var _ nids.BatchDetector = (*RemoteDetector)(nil)

// Name implements nids.Detector.
func (d *RemoteDetector) Name() string { return "remote:" + d.Client.BaseURL }

// Detect implements nids.Detector.
func (d *RemoteDetector) Detect(rec *data.Record) nids.Verdict {
	var v [1]nids.Verdict
	d.DetectBatch([]*data.Record{rec}, v[:])
	return v[0]
}

// DetectBatch implements nids.BatchDetector over one /v1/detect-batch call.
func (d *RemoteDetector) DetectBatch(recs []*data.Record, verdicts []nids.Verdict) {
	got, version, err := d.Client.Score(recs)
	if err != nil {
		d.errs.Add(1)
		for i := range verdicts[:len(recs)] {
			verdicts[i] = nids.Verdict{Failed: true}
		}
		return
	}
	d.version.Store(version)
	copy(verdicts, got)
}

// Errors returns how many scoring requests have failed.
func (d *RemoteDetector) Errors() int64 { return d.errs.Load() }

// ModelVersion returns the version of the model generation that answered
// the most recent successful request ("" before the first).
func (d *RemoteDetector) ModelVersion() string {
	v, _ := d.version.Load().(string)
	return v
}
