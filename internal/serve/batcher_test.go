package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/nids"
)

func collectBatches(b *batcher, out chan<- int) {
	for fb := range b.batches {
		batch := fb.items
		n := len(batch)
		for i := range batch {
			batch[i].wg.Done()
		}
		b.putSlab(batch)
		out <- n
	}
	close(out)
}

// TestBatcherFlushesOnMaxBatch checks that a full queue cuts batches at
// exactly MaxBatch without waiting for the deadline.
func TestBatcherFlushesOnMaxBatch(t *testing.T) {
	b := newBatcher(batcherConfig{MaxBatch: 4, MaxWait: time.Hour, QueueDepth: 64})
	sizes := make(chan int, 16)
	go collectBatches(b, sizes)

	var wg sync.WaitGroup
	rec := &data.Record{}
	var v nids.Verdict
	wg.Add(8)
	for i := 0; i < 8; i++ {
		b.enqueue(item{rec: rec, out: &v, wg: &wg}, true)
	}
	// With MaxWait effectively infinite, completion proves MaxBatch flushes.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("8 records never flushed with MaxBatch=4 (MaxWait=1h)")
	}
	b.close()
	total := 0
	for n := range sizes {
		if n > 4 {
			t.Fatalf("batch of %d exceeds MaxBatch=4", n)
		}
		total += n
	}
	if total != 8 {
		t.Fatalf("flushed %d records, enqueued 8", total)
	}
}

// TestBatcherFlushesOnMaxWait checks that a lone record is flushed by the
// deadline rather than waiting for co-travelers forever.
func TestBatcherFlushesOnMaxWait(t *testing.T) {
	b := newBatcher(batcherConfig{MaxBatch: 1024, MaxWait: 2 * time.Millisecond, QueueDepth: 64})
	defer b.close()
	sizes := make(chan int, 4)
	go collectBatches(b, sizes)

	var wg sync.WaitGroup
	var v nids.Verdict
	wg.Add(1)
	start := time.Now()
	b.enqueue(item{rec: &data.Record{}, out: &v, wg: &wg}, true)
	wg.Wait()
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lone record waited %s, MaxWait is 2ms", waited)
	}
	if n := <-sizes; n != 1 {
		t.Fatalf("lone record flushed in a batch of %d", n)
	}
}

// TestPutSlabDropsOversized checks the free-list cap: a slab whose backing
// array outgrew MaxBatch must not re-enter the pool, while a right-sized
// slab must.
func TestPutSlabDropsOversized(t *testing.T) {
	b := newBatcher(batcherConfig{MaxBatch: 4, MaxWait: time.Hour, QueueDepth: 4})
	defer b.close()

	// A right-sized slab round-trips (cap preserved through put/get).
	b.putSlab(make([]item, 0, 4))
	if got := b.getSlab(); cap(got) > 4 {
		t.Fatalf("right-sized slab came back with cap %d", cap(got))
	}

	// An oversized slab (e.g. from a burst) is dropped, so the next getSlab
	// hands out a fresh MaxBatch-capacity array, never the big one.
	b.putSlab(make([]item, 0, 1024))
	for i := 0; i < 4; i++ {
		if got := b.getSlab(); cap(got) > b.cfg.MaxBatch {
			t.Fatalf("oversized slab (cap %d) re-entered the free list", cap(got))
		}
	}
}

// TestBatcherEnqueueAfterCloseRefuses pins the close protocol the
// registry's slot swaps rely on: an enqueue racing (or following) close
// returns false instead of panicking on the closed channel, in both
// blocking and non-blocking modes, and close is idempotent.
func TestBatcherEnqueueAfterCloseRefuses(t *testing.T) {
	b := newBatcher(batcherConfig{MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 4})
	sizes := make(chan int, 4)
	go collectBatches(b, sizes)
	b.close()
	b.close() // idempotent
	var wg sync.WaitGroup
	var v nids.Verdict
	for _, block := range []bool{true, false} {
		if b.enqueue(item{rec: &data.Record{}, out: &v, wg: &wg}, block) {
			t.Fatalf("enqueue(block=%v) accepted a record after close", block)
		}
	}
	for range sizes {
	}
}

// TestBatcherCloseFlushesQueued checks the drain path: records enqueued
// before close are all delivered.
func TestBatcherCloseFlushesQueued(t *testing.T) {
	b := newBatcher(batcherConfig{MaxBatch: 8, MaxWait: time.Hour, QueueDepth: 64})
	sizes := make(chan int, 16)
	var wg sync.WaitGroup
	var v nids.Verdict
	wg.Add(5)
	for i := 0; i < 5; i++ {
		b.enqueue(item{rec: &data.Record{}, out: &v, wg: &wg}, true)
	}
	go collectBatches(b, sizes)
	b.close()
	wg.Wait()
	total := 0
	for n := range sizes {
		total += n
	}
	if total != 5 {
		t.Fatalf("drain delivered %d of 5 queued records", total)
	}
}
