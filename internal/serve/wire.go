package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/nids"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/wire"
)

// This file is the binary scoring plane: a wire.Frame listener whose
// decoded score requests feed the exact same per-slot batcher/scorer
// path as the HTTP handlers — one admission controller, one deadline
// policy, one set of stage histograms, one drain sequence. The wire
// plane is a second front door, never a second scoring path.
//
// Connection lifecycle: accept → Hello/Schema handshake → pipelined
// Score frames fanned over a fixed per-connection worker pool →
// out-of-order Result frames serialized by one writer goroutine. On
// drain (ShutdownWire) every connection gets a GoAway; in-flight
// requests are still answered, post-GoAway requests answer Error 503
// (shed, same as the HTTP plane's drain answer), and the connection
// closes when the client, having collected its last response, closes
// its end — so no in-flight frame is ever dropped.

// ServeWire accepts wire-protocol connections on ln and serves them
// until ln is closed (by ShutdownWire, Close, or ctx cancellation).
// Each connection gets its own goroutines; ctx bounds the scoring work
// of every request on every connection. Blocks; run it in a goroutine
// beside http.Server.Serve.
func (s *Server) ServeWire(ctx context.Context, ln net.Listener) error {
	s.trackWireListener(ln, true)
	defer s.trackWireListener(ln, false)
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-watchDone:
		}
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.wireWG.Add(1)
		go func(conn net.Conn) {
			defer s.wireWG.Done()
			s.serveWireConn(ctx, conn)
		}(nc)
	}
}

// ShutdownWire gracefully drains the wire plane: stops accepting, sends
// every connection a GoAway, answers everything already in flight, and
// waits for clients to collect their responses and close. Connections
// still open when ctx expires are force-closed. Call it after the HTTP
// listener has shut down and before Close (the scorers must outlive the
// in-flight wire requests).
func (s *Server) ShutdownWire(ctx context.Context) error {
	s.wireMu.Lock()
	lns := make([]net.Listener, 0, len(s.wireLns))
	for ln := range s.wireLns {
		lns = append(lns, ln)
	}
	conns := make([]*wireServerConn, 0, len(s.wireConns))
	for cn := range s.wireConns {
		conns = append(conns, cn)
	}
	s.wireMu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, cn := range conns {
		cn.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.wireWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceCloseWire()
		<-done
		return ctx.Err()
	}
}

// forceCloseWire abandons graceful drain: every wire socket is closed
// outright. In-flight requests finish scoring (the scorers drain them)
// but their responses may be lost — the crash-shaped path, used by
// Close for embedded/test servers that never called ShutdownWire.
func (s *Server) forceCloseWire() {
	s.wireMu.Lock()
	lns := make([]net.Listener, 0, len(s.wireLns))
	for ln := range s.wireLns {
		lns = append(lns, ln)
	}
	conns := make([]*wireServerConn, 0, len(s.wireConns))
	for cn := range s.wireConns {
		conns = append(conns, cn)
	}
	s.wireMu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, cn := range conns {
		cn.closeSocket()
	}
}

func (s *Server) trackWireListener(ln net.Listener, add bool) {
	s.wireMu.Lock()
	if add {
		if s.wireLns == nil {
			s.wireLns = make(map[net.Listener]struct{})
		}
		s.wireLns[ln] = struct{}{}
	} else {
		delete(s.wireLns, ln)
	}
	s.wireMu.Unlock()
}

func (s *Server) trackWireConn(cn *wireServerConn, add bool) {
	s.wireMu.Lock()
	if add {
		if s.wireConns == nil {
			s.wireConns = make(map[*wireServerConn]struct{})
		}
		s.wireConns[cn] = struct{}{}
	} else {
		delete(s.wireConns, cn)
	}
	s.wireMu.Unlock()
}

// wireReply is one outbound frame: the payload buffer returns to the
// reply pool after the writer sends it.
type wireReply struct {
	ft      wire.FrameType
	payload []byte
}

// wireServerConn is one accepted wire connection.
type wireServerConn struct {
	s  *Server
	nc net.Conn
	bw *bufio.Writer
	fr *wire.FrameReader
	fw *wire.FrameWriter

	writeq     chan wireReply
	noMoreSend chan struct{} // closed when nothing further will be enqueued
	down       chan struct{} // closed when the socket is being torn down
	writerDone chan struct{}
	noMoreOnce sync.Once
	downOnce   sync.Once

	draining atomic.Bool
	// active counts accepted Score frames whose reply is not yet
	// enqueued; the connection teardown waits it out so every read
	// request gets its answer written.
	active   sync.WaitGroup
	reqq     chan *wireRequest
	workerWG sync.WaitGroup
}

const wireConnBufSize = 64 << 10

// serveWireConn runs one connection to completion.
func (s *Server) serveWireConn(ctx context.Context, nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	bw := bufio.NewWriterSize(nc, wireConnBufSize)
	cn := &wireServerConn{
		s:          s,
		nc:         nc,
		bw:         bw,
		fr:         wire.NewFrameReader(bufio.NewReaderSize(nc, wireConnBufSize)),
		fw:         wire.NewFrameWriter(bw),
		writeq:     make(chan wireReply, 4*s.cfg.WirePipeline),
		noMoreSend: make(chan struct{}),
		down:       make(chan struct{}),
		writerDone: make(chan struct{}),
		reqq:       make(chan *wireRequest, s.cfg.WirePipeline),
	}
	s.m.wireConnections.Add(1)
	s.trackWireConn(cn, true)
	go cn.writeLoop()
	for i := 0; i < s.cfg.WirePipeline; i++ {
		cn.workerWG.Add(1)
		go cn.worker(ctx)
	}
	cn.readLoop()
	// The reader is done: no further requests will be dispatched. Let the
	// workers finish, wait until every accepted request's reply has been
	// enqueued, let the writer drain and flush, then release the socket.
	close(cn.reqq)
	cn.workerWG.Wait()
	cn.active.Wait()
	cn.noMoreOnce.Do(func() { close(cn.noMoreSend) })
	<-cn.writerDone
	cn.closeSocket()
	s.trackWireConn(cn, false)
	s.m.wireConnections.Add(-1)
}

// beginDrain marks the connection draining and queues the GoAway notice.
// The connection then closes on the client's initiative (or a force
// close): the client collects its in-flight responses, sees its pending
// set empty, and closes its end.
func (cn *wireServerConn) beginDrain() {
	cn.draining.Store(true)
	cn.enqueueReply(wire.FrameGoAway, nil)
}

// closeSocket tears the transport down, unblocking the reader and writer.
func (cn *wireServerConn) closeSocket() {
	cn.downOnce.Do(func() {
		close(cn.down)
		cn.nc.Close()
	})
}

// readLoop is the connection's single reader: handshake, then dispatch.
func (cn *wireServerConn) readLoop() {
	s := cn.s
	handshaken := false
	for {
		ft, p, err := cn.fr.Read()
		if err != nil {
			if err != io.EOF && wire.IsProtocolError(err) {
				cn.protoError(err)
			}
			return
		}
		s.m.wireFramesIn.Add(1)
		s.m.wireBytesIn.Add(int64(wire.HeaderSize + len(p)))
		switch ft {
		case wire.FrameHello:
			if !cn.sendSchema() {
				return
			}
			handshaken = true
		case wire.FrameScore:
			if !handshaken {
				cn.protoError(fmt.Errorf("wire: score frame before handshake"))
				return
			}
			wr := getWireRequest()
			req, perr := wr.rb.SetPayload(p)
			if perr != nil {
				putWireRequest(wr)
				cn.protoError(perr)
				return
			}
			wr.req = req
			cn.active.Add(1)
			if cn.draining.Load() || s.draining.Load() {
				// Same answer the HTTP plane gives during drain; the reply
				// is still delivered, so the client can account it as shed.
				s.m.requestErrors5xx.Add(1)
				cn.sendError(req.ID, http.StatusServiceUnavailable, "server is draining")
				cn.active.Done()
				putWireRequest(wr)
				continue
			}
			cn.reqq <- wr
		default:
			// Clients send only Hello and Score.
			cn.protoError(wire.ErrUnknownFrame)
			return
		}
	}
}

// protoError counts a protocol violation, best-effort notifies the peer
// with a connection-level Error frame, and lets the caller close.
func (cn *wireServerConn) protoError(err error) {
	cn.s.m.wireProtoErrors.Add(1)
	cn.s.log.Warn("wire protocol error", "remote", cn.nc.RemoteAddr().String(), "error", err.Error())
	cn.sendError(0, http.StatusBadRequest, err.Error())
}

// sendSchema answers a Hello with the live slot's schema. The handshake
// always describes the live schema; a client pinned to a slot with a
// different feature layout learns that via the per-request fingerprint
// check (409).
func (cn *wireServerConn) sendSchema() bool {
	si, ok := cn.s.slot(registry.Live)
	if !ok {
		cn.s.m.requestErrors5xx.Add(1)
		cn.sendError(0, http.StatusServiceUnavailable, "no model loaded under tag \"live\"")
		return false
	}
	payload, err := wire.EncodeSchemaInfo(wire.SchemaInfo{
		ModelVersion: si.artifact.Version(),
		Fingerprint:  si.wireFP,
		Schema:       si.artifact.Schema,
	})
	if err != nil {
		cn.s.m.requestErrors5xx.Add(1)
		cn.sendError(0, http.StatusInternalServerError, "encode schema: "+err.Error())
		return false
	}
	buf := append(getReplyBuf(), payload...)
	cn.enqueueReply(wire.FrameSchema, buf)
	return true
}

// sendError queues an Error frame (id 0 = connection-level).
func (cn *wireServerConn) sendError(id uint64, status int, msg string) {
	buf := wire.AppendError(getReplyBuf(), id, status, msg)
	cn.enqueueReply(wire.FrameError, buf)
}

// enqueueReply hands one outbound frame to the writer; if the connection
// is going down the buffer is recycled and the frame dropped.
func (cn *wireServerConn) enqueueReply(ft wire.FrameType, payload []byte) {
	select {
	case cn.writeq <- wireReply{ft: ft, payload: payload}:
	case <-cn.down:
		putReplyBuf(payload)
	}
}

// writeLoop is the connection's single writer: it serializes the
// pipelined replies, flushing once per burst (drain the queue, then
// flush) so pipelined responses share syscalls without adding latency.
func (cn *wireServerConn) writeLoop() {
	defer close(cn.writerDone)
	for {
		select {
		case rep := <-cn.writeq:
			if !cn.writeBurst(rep) {
				return
			}
		case <-cn.noMoreSend:
			// Nothing further will be enqueued; drain what's there, flush,
			// and exit.
			for {
				select {
				case rep := <-cn.writeq:
					if !cn.writeReply(rep) {
						return
					}
				default:
					cn.bw.Flush()
					return
				}
			}
		case <-cn.down:
			return
		}
	}
}

// writeBurst writes rep plus everything else already queued, then
// flushes once.
func (cn *wireServerConn) writeBurst(rep wireReply) bool {
	if !cn.writeReply(rep) {
		return false
	}
	for {
		select {
		case next := <-cn.writeq:
			if !cn.writeReply(next) {
				return false
			}
		default:
			if err := cn.bw.Flush(); err != nil {
				cn.closeSocket()
				return false
			}
			return true
		}
	}
}

func (cn *wireServerConn) writeReply(rep wireReply) bool {
	err := cn.fw.Write(rep.ft, rep.payload)
	cn.s.m.wireFramesOut.Add(1)
	cn.s.m.wireBytesOut.Add(int64(wire.HeaderSize + len(rep.payload)))
	putReplyBuf(rep.payload)
	if err != nil {
		cn.closeSocket()
		return false
	}
	return true
}

// worker scores dispatched requests. The pool is fixed at connection
// setup (WirePipeline workers), so pipelining costs no per-frame
// goroutine.
func (cn *wireServerConn) worker(ctx context.Context) {
	defer cn.workerWG.Done()
	for wr := range cn.reqq {
		cn.handleScore(ctx, wr)
	}
}

// handleScore runs one score request end to end: trace, deadline,
// shared scoring path, packed response. By return, the reply (result or
// error) is enqueued — that pairs the active.Done with the reader's Add.
func (cn *wireServerConn) handleScore(ctx context.Context, wr *wireRequest) {
	defer cn.active.Done()
	defer putWireRequest(wr)
	s := cn.s
	start := time.Now()
	id := wr.req.ID
	var tr *obs.Trace
	if s.traces != nil {
		tr = obs.NewTrace(fmt.Sprintf("%016x", id), "/wire/score")
		tr.Records = wr.req.Count
	}
	tag := internWireTag(wr.req.Tag)
	rctx, cancel := s.wireScoreCtx(ctx, wr.req.DeadlineMS)
	verdicts, si, status, err := s.scoreWire(rctx, wr, tag, tr)
	cancel()
	if err != nil {
		if status >= 500 {
			s.m.requestErrors5xx.Add(1)
			s.log.Warn("wire request error", "status", status, "request_id", fmt.Sprintf("%016x", id), "error", err.Error())
		} else {
			s.m.requestErrors4xx.Add(1)
			s.log.Debug("wire request rejected", "status", status, "request_id", fmt.Sprintf("%016x", id), "error", err.Error())
		}
		cn.sendError(id, status, err.Error())
		s.putTrace(tr, status, err.Error())
		return
	}
	s.m.records.Add(int64(len(verdicts)))
	encStart := time.Now()
	buf, aerr := wire.AppendScoreResponse(getReplyBuf(), id, si.artifact.Version(), verdicts)
	if aerr != nil {
		putReplyBuf(buf)
		s.m.requestErrors5xx.Add(1)
		cn.sendError(id, http.StatusInternalServerError, "encode response: "+aerr.Error())
		s.putTrace(tr, http.StatusInternalServerError, aerr.Error())
		return
	}
	cn.enqueueReply(wire.FrameResult, buf)
	s.finishScored(tr, si, encStart, len(verdicts))
	s.m.observeLatency(time.Since(start))
}

// wireScoreCtx derives the scoring deadline for one wire request: the
// connection's context bounded by RequestTimeout, shortened — never
// extended — by the request frame's deadline field. The exact twin of
// scoreCtx's X-Timeout-Ms handling.
func (s *Server) wireScoreCtx(ctx context.Context, deadlineMS uint32) (context.Context, context.CancelFunc) {
	budget := s.cfg.RequestTimeout
	if deadlineMS > 0 {
		if d := time.Duration(deadlineMS) * time.Millisecond; budget < 0 || d < budget {
			budget = d
		}
	}
	if budget < 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, budget)
}

// scoreWire is scoreSlot for packed-binary requests: resolve the slot,
// check the schema fingerprint, materialize the packed records against
// that slot's own schema, and score on its replicas — with the same
// admission watermark, deadline shedding, swap retry, stats, and
// mirroring as the HTTP path. Records and verdicts live in wr's pooled
// slabs, valid until wr is recycled.
func (s *Server) scoreWire(ctx context.Context, wr *wireRequest, tag string, tr *obs.Trace) ([]nids.Verdict, *slotInstance, int, error) {
	const maxAttempts = 4
	for attempt := 0; attempt < maxAttempts; attempt++ {
		admitStart := time.Now()
		si, ok := s.slot(tag)
		if !ok {
			return nil, nil, http.StatusNotFound, fmt.Errorf("no model loaded under tag %q", tag)
		}
		if wr.req.Fingerprint != si.wireFP {
			// The request was encoded against a schema this slot no longer
			// serves (a promote changed the vocabulary). Decoding its
			// indices would score garbage; the client re-handshakes.
			return nil, nil, http.StatusConflict,
				fmt.Errorf("schema fingerprint mismatch for slot %q (client %016x, server %016x); re-handshake", tag, wr.req.Fingerprint, si.wireFP)
		}
		recs, err := wr.rb.Decode(&wr.req, si.artifact.Schema)
		if err != nil {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("decode records: %w", err)
		}
		tr.SetSlot(tag, si.artifact.Version())
		st := s.reg.StatsFor(tag)
		if wm := s.cfg.AdmitWatermark; wm > 0 && si.scorer.queueLen() >= wm {
			st.Shed.Add(int64(len(recs)))
			s.m.shed.Add(int64(len(recs)))
			return nil, nil, http.StatusTooManyRequests,
				fmt.Errorf("slot %q queue is over the admission watermark (%d queued, watermark %d); retry later", tag, si.scorer.queueLen(), wm)
		}
		if attempt == 0 {
			tr.Span("admit", admitStart, time.Since(admitStart))
		}
		if cap(wr.verdicts) < len(recs) {
			wr.verdicts = make([]nids.Verdict, len(recs))
		}
		verdicts := wr.verdicts[:len(recs)]
		for i := range verdicts {
			verdicts[i] = nids.Verdict{}
		}
		var expired atomic.Int64
		switch si.scorer.score(ctx, recs, verdicts, &expired, tr) {
		case submitClosed:
			continue
		case submitExpired:
			n := expired.Load()
			st.DeadlineExpired.Add(n)
			s.m.deadlineExpired.Add(n)
			return nil, nil, http.StatusServiceUnavailable,
				fmt.Errorf("deadline expired while queued: %d of %d records shed; retry with more budget", n, len(recs))
		}
		st.Records.Add(int64(len(recs)))
		attacks := int64(0)
		for i := range verdicts {
			if verdicts[i].IsAttack {
				attacks++
			}
		}
		st.Attacks.Add(attacks)
		if tag == registry.Live && !s.cfg.MirrorOff {
			if _, ok := s.slot(registry.Shadow); ok {
				// The mirror consumes recs/verdicts asynchronously, but
				// these live in pooled slabs recycled when this request's
				// reply goes out — hand the mirror its own copy.
				s.mirror(si, cloneRecords(recs), cloneVerdicts(verdicts), tr)
			}
		}
		return verdicts, si, 0, nil
	}
	return nil, nil, http.StatusServiceUnavailable,
		fmt.Errorf("slot %q was replaced %d times mid-request; retry", tag, maxAttempts)
}

// internWireTag maps a request's tag bytes to the registry tag without
// allocating for the overwhelmingly common cases.
func internWireTag(b []byte) string {
	if len(b) == 0 || string(b) == registry.Live {
		return registry.Live
	}
	if string(b) == registry.Shadow {
		return registry.Shadow
	}
	return string(b)
}

// cloneRecords deep-copies pooled records into fresh backing storage
// (the categorical strings themselves are immutable and shared).
func cloneRecords(recs []data.Record) []data.Record {
	out := make([]data.Record, len(recs))
	nn, nc := 0, 0
	for i := range recs {
		nn += len(recs[i].Numeric)
		nc += len(recs[i].Categorical)
	}
	nums := make([]float64, 0, nn)
	cats := make([]string, 0, nc)
	for i := range recs {
		n0 := len(nums)
		nums = append(nums, recs[i].Numeric...)
		c0 := len(cats)
		cats = append(cats, recs[i].Categorical...)
		out[i] = data.Record{
			Numeric:     nums[n0:len(nums):len(nums)],
			Categorical: cats[c0:len(cats):len(cats)],
			Label:       recs[i].Label,
		}
	}
	return out
}

func cloneVerdicts(vs []nids.Verdict) []nids.Verdict {
	out := make([]nids.Verdict, len(vs))
	copy(out, vs)
	return out
}

// wireRequest is the pooled per-request decode state: the copied frame
// payload, the record slabs, and the verdict slab.
type wireRequest struct {
	req      wire.ScoreRequest
	rb       wire.RecordBuffer
	verdicts []nids.Verdict
}

var wireRequestPool = sync.Pool{New: func() any { return new(wireRequest) }}

func getWireRequest() *wireRequest   { return wireRequestPool.Get().(*wireRequest) }
func putWireRequest(wr *wireRequest) { wireRequestPool.Put(wr) }

// replyBufPool recycles outbound frame payload buffers.
var replyBufPool = sync.Pool{New: func() any { return []byte(nil) }}

func getReplyBuf() []byte { return replyBufPool.Get().([]byte)[:0] }
func putReplyBuf(p []byte) {
	if p != nil {
		replyBufPool.Put(p) //nolint:staticcheck // slice header boxing is fine here
	}
}
