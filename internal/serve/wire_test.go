package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/nids"
	"repro/internal/wire"
)

// startWireListener opens a loopback wire listener on srv and returns its
// address. The listener is shut down via cancel at cleanup; tests that
// exercise drain call ShutdownWire themselves first.
func startWireListener(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeWire(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String()
}

// wireTestConn is a hand-driven protocol peer: tests that need exact
// frame-level control (hostile fingerprints, drain ordering, garbage)
// drive the connection themselves instead of going through wire.Client.
type wireTestConn struct {
	nc  net.Conn
	bw  *bufio.Writer
	fr  *wire.FrameReader
	fw  *wire.FrameWriter
	enc *wire.RecordEncoder
}

// dialWire connects and completes the Hello/Schema handshake.
func dialWire(t *testing.T, addr string) *wireTestConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	c := &wireTestConn{
		nc: nc,
		bw: bufio.NewWriter(nc),
		fr: wire.NewFrameReader(bufio.NewReader(nc)),
	}
	c.fw = wire.NewFrameWriter(c.bw)
	if err := c.fw.Write(wire.FrameHello, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	ft, p, err := c.fr.Read()
	if err != nil || ft != wire.FrameSchema {
		t.Fatalf("handshake answer: frame %d, err %v (want Schema)", ft, err)
	}
	info, err := wire.DecodeSchemaInfo(p)
	if err != nil {
		t.Fatal(err)
	}
	c.enc = wire.NewRecordEncoder(info.Schema)
	if c.enc.Fingerprint() != info.Fingerprint {
		t.Fatalf("client fingerprint %016x != server %016x", c.enc.Fingerprint(), info.Fingerprint)
	}
	return c
}

// sendScore frames one score request (mutate, when non-nil, edits the
// payload before framing — hostile-input tests use it).
func (c *wireTestConn) sendScore(t *testing.T, id uint64, deadlineMS uint32, tag string, recs []*data.Record, mutate func([]byte)) {
	t.Helper()
	p, err := c.enc.AppendScoreRequest(nil, id, deadlineMS, tag, recs)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(p)
	}
	if err := c.fw.Write(wire.FrameScore, p); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// readFrame reads one frame with a test-failure deadline.
func (c *wireTestConn) readFrame(t *testing.T) (wire.FrameType, []byte) {
	t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	ft, p, err := c.fr.Read()
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return ft, p
}

// expectError reads one frame and asserts it is an Error with the given
// id and status.
func (c *wireTestConn) expectError(t *testing.T, id uint64, status int) wire.WireError {
	t.Helper()
	ft, p := c.readFrame(t)
	if ft != wire.FrameError {
		t.Fatalf("frame type %d, want Error", ft)
	}
	we, err := wire.ParseError(p)
	if err != nil {
		t.Fatal(err)
	}
	if we.ID != id || we.Status != status {
		t.Fatalf("error frame id=%d status=%d (%s), want id=%d status=%d", we.ID, we.Status, we.Msg, id, status)
	}
	return we
}

// TestWireMatchesHTTPPlane pins the tentpole acceptance: verdicts served
// over the binary transport equal the HTTP plane's on the same records
// (scores within f32 narrowing, which the wire format applies by design),
// requests are traced through the same ring, and the wire metrics move.
func TestWireMatchesHTTPPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 11, 2)
	srv, ts := newTestServer(t, a, Config{Replicas: 2, MaxBatch: 8, MaxWait: time.Millisecond})
	addr := startWireListener(t, srv)

	wc := wire.NewClient(addr)
	defer wc.Close()
	got, version, err := wc.Score(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d verdicts for %d records", len(got), len(recs))
	}

	resp, body := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/detect-batch = %d (%s)", resp.StatusCode, body)
	}
	var httpResp detectBatchResponse
	if err := json.Unmarshal(body, &httpResp); err != nil {
		t.Fatal(err)
	}
	if version != httpResp.ModelVersion {
		t.Fatalf("wire version %q != HTTP version %q", version, httpResp.ModelVersion)
	}
	if wc.ModelVersion() != version {
		t.Fatalf("ModelVersion() = %q, want %q", wc.ModelVersion(), version)
	}
	for i, hv := range httpResp.Verdicts {
		wv := got[i]
		if wv.IsAttack != hv.IsAttack || wv.Class != hv.Class {
			t.Fatalf("record %d: wire %+v vs http %+v", i, wv, hv)
		}
		// Scores agree to f32 precision; batch composition differs between
		// the two calls, so allow a few ulps on top of the f32 narrowing.
		if diff := math.Abs(wv.Score - hv.Score); diff > 1e-4*math.Max(1, math.Abs(hv.Score)) {
			t.Fatalf("record %d score: wire %v vs http %v", i, wv.Score, hv.Score)
		}
		if wv.Failed {
			t.Fatalf("record %d: wire verdict marked Failed on a successful call", i)
		}
	}

	// Tracing: the wire request went through the same ring, tagged with
	// the wire endpoint and its hex request id.
	var wireTrace bool
	for _, tr := range srv.traces.Snapshot() {
		if tr.Endpoint == "/wire/score" {
			wireTrace = true
			if len(tr.ID) != 16 {
				t.Fatalf("wire trace id %q, want 16 hex digits", tr.ID)
			}
			if tr.Records != len(recs) {
				t.Fatalf("wire trace records = %d, want %d", tr.Records, len(recs))
			}
		}
	}
	if !wireTrace {
		t.Fatal("no /wire/score trace captured")
	}

	// Metrics: the four wire families render and move.
	code, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"pelican_wire_connections 1",
		`pelican_wire_frames_total{dir="in"}`,
		`pelican_wire_frames_total{dir="out"}`,
		`pelican_wire_bytes_total{dir="in"}`,
		`pelican_wire_bytes_total{dir="out"}`,
		"pelican_wire_protocol_errors_total 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if srv.m.wireFramesIn.Load() < 2 || srv.m.wireFramesOut.Load() < 2 {
		t.Fatalf("wire frame counters in=%d out=%d, want >= 2 each",
			srv.m.wireFramesIn.Load(), srv.m.wireFramesOut.Load())
	}
}

// TestWirePipelinedOutOfOrder pins the multiplexing contract: many
// concurrent calls over one client share its pooled connections and every
// caller gets its own answer back.
func TestWirePipelinedOutOfOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, orig, recs := trainTestArtifact(t, "mlp", 11, 2)
	srv, _ := newTestServer(t, a, Config{Replicas: 2, MaxBatch: 8, MaxWait: time.Millisecond})
	addr := startWireListener(t, srv)

	want := make([]nids.Verdict, len(recs))
	orig.DetectBatch(recs, want)

	wc := wire.NewClient(addr)
	defer wc.Close()
	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each caller scores a distinct rotation so a cross-wired
			// response (wrong id → wrong caller) cannot go unnoticed.
			sub := []*data.Record{recs[g%len(recs)], recs[(g+1)%len(recs)]}
			for i := 0; i < 8; i++ {
				got, _, err := wc.Score(sub)
				if err != nil {
					errs <- err
					return
				}
				for j := range sub {
					w := want[(g+j)%len(recs)]
					if got[j].IsAttack != w.IsAttack || got[j].Class != w.Class {
						t.Errorf("caller %d call %d rec %d: %+v, want %+v", g, i, j, got[j], w)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWireDeadlineExpiredSheds mirrors TestDeadlineExpiredSheds503 over
// the binary plane: a request whose frame deadline runs out behind a
// stalled replica is shed with an Error 503 — the deadline field maps to
// X-Timeout-Ms exactly.
func TestWireDeadlineExpiredSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 13, 1)
	inj := &chaos.Injector{}
	srv, _ := newTestServer(t, a, Config{
		Replicas: 1, MaxBatch: 1, MaxWait: time.Millisecond,
		QueueDepth: 8, Chaos: inj,
	})
	addr := startWireListener(t, srv)
	c := dialWire(t, addr)

	// Occupy the only replica, then send a request that cannot survive
	// the stall on a 50ms budget.
	inj.SetScoreDelay(400 * time.Millisecond)
	c.sendScore(t, 1, 0, "", recs[:1], nil)
	time.Sleep(50 * time.Millisecond)
	c.sendScore(t, 2, 50, "", recs[:1], nil)

	deadline := time.Now().Add(10 * time.Second)
	var got503 bool
	for time.Now().Before(deadline) {
		ft, p := c.readFrame(t)
		if ft == wire.FrameError {
			we, err := wire.ParseError(p)
			if err != nil {
				t.Fatal(err)
			}
			if we.ID != 2 || we.Status != http.StatusServiceUnavailable {
				t.Fatalf("error frame id=%d status=%d (%s), want id=2 status=503", we.ID, we.Status, we.Msg)
			}
			got503 = true
			break
		}
	}
	if !got503 {
		t.Fatal("no 503 Error frame for the expired request")
	}
	inj.SetScoreDelay(0)
	if n := srv.Registry().StatsFor("live").DeadlineExpired.Load(); n != 1 {
		t.Fatalf("DeadlineExpired = %d, want 1", n)
	}
}

// TestWireFingerprintMismatch409 pins the schema-skew guard: a request
// stamped with a foreign fingerprint is refused with 409 before any
// record is decoded, telling the client to re-handshake.
func TestWireFingerprintMismatch409(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 11, 1)
	srv, _ := newTestServer(t, a, Config{Replicas: 1, MaxBatch: 4, MaxWait: time.Millisecond})
	addr := startWireListener(t, srv)
	c := dialWire(t, addr)

	c.sendScore(t, 7, 0, "", recs[:2], func(p []byte) {
		p[12] ^= 0xFF // corrupt the fingerprint field
	})
	c.expectError(t, 7, http.StatusConflict)
	if n := srv.m.wireProtoErrors.Load(); n != 0 {
		t.Fatalf("fingerprint mismatch counted as protocol error (%d); it is a deliberate 409", n)
	}
	// The connection survives: a correct request still scores.
	c.sendScore(t, 8, 0, "", recs[:2], nil)
	ft, p := c.readFrame(t)
	if ft != wire.FrameResult {
		t.Fatalf("post-409 frame type %d, want Result", ft)
	}
	resp, err := wire.ParseScoreResponse(p)
	if err != nil || resp.ID != 8 || resp.Count != 2 {
		t.Fatalf("post-409 response %+v, %v", resp, err)
	}
}

// TestWireUnknownTag404 pins slot resolution parity with ?tag=.
func TestWireUnknownTag404(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 11, 1)
	srv, _ := newTestServer(t, a, Config{Replicas: 1, MaxBatch: 4, MaxWait: time.Millisecond})
	addr := startWireListener(t, srv)
	c := dialWire(t, addr)
	c.sendScore(t, 3, 0, "nonesuch", recs[:1], nil)
	c.expectError(t, 3, http.StatusNotFound)
}

// TestWireProtocolErrorAnswersAndCloses pins the hostile-peer contract:
// garbage on the wire is counted, answered with a connection-level Error
// 400, and the connection is closed — it never hangs and never panics
// the server.
func TestWireProtocolErrorAnswersAndCloses(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, _ := trainTestArtifact(t, "mlp", 11, 1)
	srv, _ := newTestServer(t, a, Config{Replicas: 1, MaxBatch: 4, MaxWait: time.Millisecond})
	addr := startWireListener(t, srv)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("this is not a PLWF frame at all, not even close")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	fr := wire.NewFrameReader(bufio.NewReader(nc))
	ft, p, err := fr.Read()
	if err != nil || ft != wire.FrameError {
		t.Fatalf("garbage answer: frame %d, err %v, want Error", ft, err)
	}
	we, err := wire.ParseError(p)
	if err != nil || we.ID != 0 || we.Status != http.StatusBadRequest {
		t.Fatalf("garbage answer %+v, %v; want connection-level 400", we, err)
	}
	// The server closes after the notice.
	if _, _, err := fr.Read(); err == nil {
		t.Fatal("connection still open after protocol error")
	}
	waitFor(t, time.Second, func() bool { return srv.m.wireProtoErrors.Load() >= 1 })
	waitFor(t, time.Second, func() bool { return srv.m.wireConnections.Load() == 0 })
}

// TestWireGracefulDrain pins the zero-dropped-frames drain: ShutdownWire
// sends GoAway, the in-flight request is still answered, a post-GoAway
// request is answered 503 (delivered, so the client accounts it as shed),
// and the server waits for the client to collect everything and close
// before ShutdownWire returns — gracefully, not by force.
func TestWireGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 13, 1)
	inj := &chaos.Injector{}
	srv, err := New(a, Config{
		Replicas: 1, MaxBatch: 1, MaxWait: time.Millisecond,
		QueueDepth: 8, Chaos: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := startWireListener(t, srv)
	c := dialWire(t, addr)

	// Put one request in flight behind a 300ms stall, then drain.
	inj.SetScoreDelay(300 * time.Millisecond)
	c.sendScore(t, 1, 0, "", recs[:1], nil)
	time.Sleep(50 * time.Millisecond)

	shutdownDone := make(chan error, 1)
	shCtx, shCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer shCancel()
	go func() { shutdownDone <- srv.ShutdownWire(shCtx) }()

	// GoAway arrives while request 1 is still scoring.
	ft, _ := c.readFrame(t)
	if ft != wire.FrameGoAway {
		t.Fatalf("first post-drain frame %d, want GoAway", ft)
	}
	// A post-GoAway request is answered 503 — delivered, not dropped.
	c.sendScore(t, 2, 0, "", recs[:1], nil)
	c.expectError(t, 2, http.StatusServiceUnavailable)
	// The in-flight request's answer still lands.
	ft, p := c.readFrame(t)
	if ft != wire.FrameResult {
		t.Fatalf("in-flight answer frame %d, want Result", ft)
	}
	resp, perr := wire.ParseScoreResponse(p)
	if perr != nil || resp.ID != 1 || resp.Count != 1 {
		t.Fatalf("in-flight answer %+v, %v", resp, perr)
	}

	// The server is still waiting on us: ShutdownWire must not have
	// returned. Closing our end releases it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("ShutdownWire returned %v before the client closed", err)
	case <-time.After(100 * time.Millisecond):
	}
	c.nc.Close()
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("ShutdownWire = %v, want nil (graceful, not forced)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ShutdownWire did not return after the client closed")
	}
	if n := srv.m.wireConnections.Load(); n != 0 {
		t.Fatalf("wire connections gauge = %d after drain, want 0", n)
	}
}

// TestWireClientDrainsToShed pins the wire.Client side of drain: after
// GoAway the client reports Draining and surfaces no phantom successes.
func TestWireClientDrainsToShed(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 11, 1)
	srv, err := New(a, Config{Replicas: 1, MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := startWireListener(t, srv)

	wc := &wire.Client{Addr: addr, Conns: 1, MaxAttempts: 1, RetryBase: time.Millisecond}
	defer wc.Close()
	if _, _, err := wc.Score(recs[:2]); err != nil {
		t.Fatal(err)
	}

	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shCancel()
	if err := srv.ShutdownWire(shCtx); err != nil {
		t.Fatalf("ShutdownWire = %v (the idle client must close on GoAway)", err)
	}
	waitFor(t, 5*time.Second, wc.Draining)
	// Post-drain calls fail (the listener is gone) but are classifiable
	// as drain, never as phantom verdicts.
	if _, _, err := wc.Score(recs[:2]); err == nil {
		t.Fatal("Score succeeded against a drained server")
	} else if _, shed := wire.ShedStatus(err); !shed && !wc.Draining() {
		t.Fatalf("post-drain error %v not classifiable as drain/shed", err)
	}
}

// TestWireClientFallsBackToHTTP pins the fallback satellite: with the
// wire listener unreachable, calls are answered by the HTTP plane and
// counted as fallbacks.
func TestWireClientFallsBackToHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, orig, recs := trainTestArtifact(t, "mlp", 11, 2)
	_, ts := newTestServer(t, a, Config{Replicas: 1, MaxBatch: 8, MaxWait: time.Millisecond})

	httpClient := NewClient(ts.URL)
	wc := &wire.Client{
		Addr:        "127.0.0.1:1", // nothing listens here
		MaxAttempts: 1,
		RetryBase:   time.Millisecond,
		Fallback:    httpClient,
	}
	defer wc.Close()

	got, version, err := wc.Score(recs[:4])
	if err != nil {
		t.Fatalf("fallback call: %v", err)
	}
	if version == "" {
		t.Fatal("fallback answered with an empty model version")
	}
	if wc.Fallbacks() != 1 {
		t.Fatalf("Fallbacks() = %d, want 1", wc.Fallbacks())
	}
	want := make([]nids.Verdict, 4)
	orig.DetectBatch(recs[:4], want)
	for i := range got {
		if got[i].IsAttack != want[i].IsAttack || got[i].Class != want[i].Class {
			t.Fatalf("fallback verdict %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", d)
}
