package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states. Closed passes traffic; Open fast-fails everything until
// the cool-down elapses; HalfOpen admits a bounded number of probes whose
// outcomes decide between re-closing and re-opening.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for logs and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// ErrBreakerOpen is returned (wrapped) by clients that fast-fail a call
// because their circuit breaker is open.
var ErrBreakerOpen = fmt.Errorf("serve: circuit breaker open")

// Breaker is a classic closed/open/half-open circuit breaker for the
// scoring client: FailureThreshold consecutive failures open it, opened
// circuits fast-fail every call for OpenFor, then a half-open phase lets
// one probe through at a time — HalfOpenSuccesses consecutive probe
// successes re-close the circuit, any probe failure re-opens it. Safe for
// concurrent use; the zero value is usable and gets the documented
// defaults on first use.
type Breaker struct {
	// FailureThreshold is how many consecutive failures trip the breaker.
	// Default 5.
	FailureThreshold int
	// OpenFor is how long an opened breaker fast-fails before admitting
	// half-open probes. Default 2s.
	OpenFor time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close a
	// half-open breaker. Default 1.
	HalfOpenSuccesses int
	// now is the test seam for time.
	now func() time.Time

	mu         sync.Mutex
	state      BreakerState
	fails      int       // consecutive failures while closed
	successes  int       // consecutive probe successes while half-open
	probing    bool      // a half-open probe is in flight
	openedAt   time.Time // when the breaker last opened
	opens      atomic.Int64
	shortCircs atomic.Int64
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.FailureThreshold > 0 {
		return b.FailureThreshold
	}
	return 5
}

func (b *Breaker) openFor() time.Duration {
	if b.OpenFor > 0 {
		return b.OpenFor
	}
	return 2 * time.Second
}

func (b *Breaker) needSuccesses() int {
	if b.HalfOpenSuccesses > 0 {
		return b.HalfOpenSuccesses
	}
	return 1
}

// Allow reports whether a call may proceed. Every true MUST be paired
// with exactly one Record call with the call's outcome — half-open
// admission tracks the probe in flight. A false means the caller should
// fast-fail with ErrBreakerOpen.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.openFor() {
			b.shortCircs.Add(1)
			return false
		}
		// Cool-down over: move to half-open and admit this call as the
		// first probe.
		b.state = BreakerHalfOpen
		b.successes = 0
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			// One probe at a time: a half-open breaker must not let a
			// thundering herd through on the strength of zero evidence.
			b.shortCircs.Add(1)
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of an allowed call. Failures while closed
// count toward the threshold; a probe failure while half-open re-opens
// the breaker, a probe success counts toward re-closing it.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold() {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probing = false
		if !ok {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.needSuccesses() {
			b.state = BreakerClosed
			b.fails = 0
			b.successes = 0
		}
	case BreakerOpen:
		// A straggler from before the trip; its outcome is stale evidence.
	}
}

// trip opens the breaker. Caller holds the lock.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.clock()
	b.fails = 0
	b.successes = 0
	b.probing = false
	b.opens.Add(1)
}

// State returns the breaker's current position, advancing an expired
// cool-down to half-open so the reported state matches what the next
// Allow would see.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.clock().Sub(b.openedAt) >= b.openFor() {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens reports how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 { return b.opens.Load() }

// ShortCircuits reports how many calls were fast-failed without reaching
// the server.
func (b *Breaker) ShortCircuits() int64 { return b.shortCircs.Load() }
