package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/registry"
	"repro/internal/synth"
)

// trainArtifactOn trains a small MLP over an arbitrary synth config —
// the schema-evolution tests need artifacts whose feature layouts differ
// from the stock NSL-KDD shape in controlled ways.
func trainArtifactOn(t *testing.T, cfg synth.Config, seed int64, epochs int) (*Artifact, []*data.Record) {
	t.Helper()
	gen, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(400, seed)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	rng := rand.New(rand.NewSource(seed))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(seed+1)), features, gen.Schema().NumClasses())
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	net.Fit(x.Reshape(x.Dim(0), 1, features), y, nn.FitConfig{Epochs: epochs, BatchSize: 128, Shuffle: true, RNG: rng})
	a, err := NewArtifact("mlp", models.PaperBlockConfig(features), gen.Schema(), pipe, net)
	if err != nil {
		t.Fatal(err)
	}
	probe := gen.Generate(32, seed+1000)
	recs := make([]*data.Record, len(probe.Records))
	for i := range probe.Records {
		recs[i] = &probe.Records[i]
	}
	return a, recs
}

func saveArtifact(t *testing.T, a *Artifact) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), a.Version()+".plcn")
	if err := SaveArtifactFile(path, a); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestV2RegistryLifecycle walks the whole slot lifecycle over the wire:
// load into shadow, list, per-tag info and scoring, promote (with the
// prior live retained), rollback (exact prior version restored), canary
// tags, and unload.
func TestV2RegistryLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	a1, _, recs := trainTestArtifact(t, "mlp", 61, 2)
	a2, _, _ := trainTestArtifact(t, "mlp", 67, 3)
	p2 := saveArtifact(t, a2)

	srv, ts := newTestServer(t, a1, Config{Replicas: 2, MaxBatch: 8, MaxWait: time.Millisecond})
	c := NewClient(ts.URL)

	// Load the second generation into shadow.
	info, err := c.LoadTag(p2, "")
	if err != nil {
		t.Fatal(err)
	}
	if info.Tag != registry.Shadow || info.Version != a2.Version() {
		t.Fatalf("LoadTag default: tag=%q version=%s, want shadow/%s", info.Tag, info.Version, a2.Version())
	}

	// The listing shows both slots, live first.
	ms, err := c.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Slots) != 2 || ms.Slots[0].Tag != registry.Live || ms.Slots[1].Tag != registry.Shadow {
		t.Fatalf("listing = %+v", ms.Slots)
	}
	if ms.Slots[0].Version != a1.Version() || ms.Slots[1].Version != a2.Version() {
		t.Fatalf("listing versions %s/%s, want %s/%s", ms.Slots[0].Version, ms.Slots[1].Version, a1.Version(), a2.Version())
	}

	// Per-tag info and scoring.
	if info, err = c.ModelTag("shadow"); err != nil || info.Version != a2.Version() {
		t.Fatalf("ModelTag(shadow) = %+v, %v", info, err)
	}
	if _, err := c.ModelTag("ghost"); err == nil {
		t.Fatal("ModelTag on an empty tag succeeded")
	}
	if _, version, err := c.ScoreTag("shadow", recs[:4]); err != nil || version != a2.Version() {
		t.Fatalf("ScoreTag(shadow) version=%s err=%v, want %s", version, err, a2.Version())
	}
	if _, version, err := c.ScoreTag("", recs[:4]); err != nil || version != a1.Version() {
		t.Fatalf("ScoreTag(live default) version=%s err=%v, want %s", version, err, a1.Version())
	}
	if _, _, err := c.ScoreTag("ghost", recs[:1]); err == nil {
		t.Fatal("scoring an empty tag succeeded")
	}

	// Promote: shadow becomes live, prior live retained, shadow empties.
	info, err = c.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != a2.Version() || info.PreviousVersion != a1.Version() {
		t.Fatalf("promote: live=%s previous=%s, want %s/%s", info.Version, info.PreviousVersion, a2.Version(), a1.Version())
	}
	if _, err := c.ModelTag("shadow"); err == nil {
		t.Fatal("shadow still occupied after promote")
	}
	if _, err := c.Promote(); err == nil {
		t.Fatal("promote with empty shadow succeeded")
	}

	// Rollback: the exact prior version hash returns.
	info, err = c.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != a1.Version() || info.PreviousVersion != a2.Version() {
		t.Fatalf("rollback: live=%s previous=%s, want %s/%s", info.Version, info.PreviousVersion, a1.Version(), a2.Version())
	}
	if got := srv.Info().Version; got != a1.Version() {
		t.Fatalf("server live version %s after rollback, want %s", got, a1.Version())
	}

	// Canary tags are first-class slots; unload removes them.
	if _, err := c.LoadTag(p2, "canary-7"); err != nil {
		t.Fatal(err)
	}
	if _, version, err := c.ScoreTag("canary-7", recs[:2]); err != nil || version != a2.Version() {
		t.Fatalf("canary scoring version=%s err=%v", version, err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/models/canary-7", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE canary: status %d", resp.StatusCode)
	}
	if _, err := c.ModelTag("canary-7"); err == nil {
		t.Fatal("canary still loaded after DELETE")
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v2/models/live", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE live: status %d, want 409", resp.StatusCode)
	}

	// The history records the walk.
	ms, err = c.Models()
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tr := range ms.History {
		ops = append(ops, tr.Op)
	}
	want := []string{"load", "load", "promote", "rollback", "load", "unload"}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("history ops %v, want %v", ops, want)
	}
	if ms.Promotes != 1 || ms.Rollbacks != 1 {
		t.Fatalf("lifecycle counters %d/%d, want 1/1", ms.Promotes, ms.Rollbacks)
	}
}

// TestLiveLoadRejectsFeatureSetChange pins the strengthened live-slot
// guard: an artifact whose schema matches the live model's feature
// *counts* but not its feature *layout* (renamed column, reordered
// vocabulary) must be rejected by /v1/reload and /v2/load?tag=live —
// before this guard, such a swap silently produced garbage scores because
// in-flight and future records one-hot encode differently under the two
// schemas. The same artifact is legal in the shadow slot, which is the
// sanctioned path for schema changes.
func TestLiveLoadRejectsFeatureSetChange(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	base := synth.NSLKDDConfig()
	a1, _ := trainArtifactOn(t, base, 71, 1)

	renamed := synth.NSLKDDConfig()
	renamed.NumericName = append([]string(nil), renamed.NumericName...)
	renamed.NumericName[0] = "definitely_not_" + renamed.NumericName[0]
	a2, _ := trainArtifactOn(t, renamed, 73, 1)
	if a1.Schema.NumNumeric() != a2.Schema.NumNumeric() || len(a1.Schema.Categorical) != len(a2.Schema.Categorical) {
		t.Fatal("test setup: schemas must agree on feature counts")
	}
	p2 := saveArtifact(t, a2)

	srv, ts := newTestServer(t, a1, Config{})
	c := NewClient(ts.URL)

	// /v1/reload: rejected, live untouched.
	resp, body := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Path: p2})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("/v1/reload layout change: status %d, want 409: %s", resp.StatusCode, body)
	}
	if srv.Info().Version != a1.Version() {
		t.Fatal("rejected reload disturbed the live model")
	}

	// /v2/load?tag=live: same guard.
	if _, err := c.LoadTag(p2, "live"); err == nil {
		t.Fatal("/v2/load?tag=live accepted a layout-changing artifact")
	}

	// Shadow is the sanctioned path, and promotion carries the schema over.
	if _, err := c.LoadTag(p2, "shadow"); err != nil {
		t.Fatalf("layout-changing artifact rejected from shadow: %v", err)
	}
	info, err := c.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != a2.Version() {
		t.Fatalf("promoted version %s, want %s", info.Version, a2.Version())
	}
}

// TestShadowMirroring pins the mirroring path: live traffic is duplicated
// onto a loaded shadow, both slots' counters move, and the agreement
// split covers every mirrored record. A schema-evolving shadow is not
// mirrored (the drop counter moves instead).
func TestShadowMirroring(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	a1, _, recs := trainTestArtifact(t, "mlp", 79, 2)
	a2, _, _ := trainTestArtifact(t, "mlp", 83, 1)
	srv, ts := newTestServer(t, a1, Config{Replicas: 2, MaxBatch: 8, MaxWait: time.Millisecond})
	c := NewClient(ts.URL)

	if _, err := c.LoadTag(saveArtifact(t, a2), "shadow"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := c.Score(recs); err != nil {
			t.Fatal(err)
		}
	}

	// Mirrors are asynchronous; wait for them to land.
	deadline := time.Now().Add(10 * time.Second)
	var shadow *SlotInfo
	for {
		ms, err := c.Models()
		if err != nil {
			t.Fatal(err)
		}
		for i := range ms.Slots {
			if ms.Slots[i].Tag == registry.Shadow {
				shadow = &ms.Slots[i]
			}
		}
		if shadow != nil && shadow.Stats.Mirrored+shadow.Stats.MirrorDropped >= int64(4*len(recs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirrors never landed: %+v", shadow)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if shadow.Stats.Mirrored == 0 {
		t.Fatalf("every mirror was dropped: %+v", shadow.Stats)
	}
	if got := shadow.Stats.Agreements + shadow.Stats.Disagreements; got != shadow.Stats.Mirrored {
		t.Fatalf("agreement split %d covers %d mirrored records", got, shadow.Stats.Mirrored)
	}
	if shadow.Stats.Records < shadow.Stats.Mirrored {
		t.Fatalf("shadow records %d < mirrored %d", shadow.Stats.Records, shadow.Stats.Mirrored)
	}

	// A layout-changing shadow must not be mirrored onto.
	renamed := synth.NSLKDDConfig()
	renamed.NumericName = append([]string(nil), renamed.NumericName...)
	renamed.NumericName[0] = "x_" + renamed.NumericName[0]
	a3, _ := trainArtifactOn(t, renamed, 89, 1)
	if err := srv.LoadSlot("shadow", a3); err != nil {
		t.Fatal(err)
	}
	before := srv.Registry().StatsFor(registry.Shadow).MirrorDropped.Load()
	if _, _, err := c.Score(recs[:8]); err != nil {
		t.Fatal(err)
	}
	if got := srv.Registry().StatsFor(registry.Shadow).MirrorDropped.Load(); got != before+8 {
		t.Fatalf("layout-mismatched mirror: dropped %d -> %d, want +8", before, got)
	}
}

// TestClientBackwardCompat pins satellite 1: the pre-registry client
// surface (Score, Reload, Model) keeps its exact behavior against a /v2
// server — Score answers from the live slot, Reload swaps the live slot
// and retains the rollback generation the /v2 methods can restore.
func TestClientBackwardCompat(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	a1, orig, recs := trainTestArtifact(t, "mlp", 97, 2)
	a2, _, _ := trainTestArtifact(t, "mlp", 101, 3)
	p2 := saveArtifact(t, a2)

	_, ts := newTestServer(t, a1, Config{Replicas: 2, MaxBatch: 8, MaxWait: time.Millisecond})
	c := NewClient(ts.URL)

	want := make([]nids.Verdict, len(recs))
	orig.DetectBatch(recs, want)

	// Old Score: live verdicts, live version.
	got, version, err := c.Score(recs)
	if err != nil {
		t.Fatal(err)
	}
	if version != a1.Version() {
		t.Fatalf("Score answered version %s, want live %s", version, a1.Version())
	}
	for i := range got {
		if got[i].Class != want[i].Class || got[i].IsAttack != want[i].IsAttack {
			t.Fatalf("record %d: old-client verdict %+v != in-process %+v", i, got[i], want[i])
		}
	}

	// Old Model: live description, no /v2 fields leaking.
	info, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != a1.Version() || info.Tag != "" {
		t.Fatalf("Model() = %+v, want live version %s with no tag", info, a1.Version())
	}

	// Old Reload: swaps live...
	info, err = c.Reload(p2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != a2.Version() {
		t.Fatalf("Reload served %s, want %s", info.Version, a2.Version())
	}
	if _, version, err = c.Score(recs[:4]); err != nil || version != a2.Version() {
		t.Fatalf("post-reload Score version %s err=%v", version, err)
	}
	// ...and the displaced generation is now reachable by the new surface.
	if info, err = c.Rollback(); err != nil || info.Version != a1.Version() {
		t.Fatalf("rollback after /v1 reload: %+v, %v — want %s", info, err, a1.Version())
	}

	// RemoteDetector: default hits live, Tag pins a slot.
	if _, err := c.LoadTag(p2, "shadow"); err != nil {
		t.Fatal(err)
	}
	liveDet := &RemoteDetector{Client: c}
	shadowDet := &RemoteDetector{Client: c, Tag: "shadow"}
	verdicts := make([]nids.Verdict, 4)
	liveDet.DetectBatch(recs[:4], verdicts)
	if liveDet.ModelVersion() != a1.Version() {
		t.Fatalf("live detector hit %s, want %s", liveDet.ModelVersion(), a1.Version())
	}
	shadowDet.DetectBatch(recs[:4], verdicts)
	if shadowDet.ModelVersion() != a2.Version() {
		t.Fatalf("shadow detector hit %s, want %s", shadowDet.ModelVersion(), a2.Version())
	}
	if liveDet.Errors() != 0 || shadowDet.Errors() != 0 {
		t.Fatalf("unexpected errors: %d/%d", liveDet.Errors(), shadowDet.Errors())
	}
}

// TestPromoteRollbackUnderConcurrentScoring is the acceptance-criterion
// test: clients hammer the live slot while shadow loads, promotions, and
// rollbacks cycle underneath them. Every request must complete (no drops),
// every verdict must match one of the two generations' precomputed
// verdicts for that exact record (in-flight batches finish on their
// generation, never torn), and the final rollback must restore the exact
// prior version hash. Run under -race in CI.
func TestPromoteRollbackUnderConcurrentScoring(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	a1, orig1, recs := trainTestArtifact(t, "mlp", 103, 2)
	a2, orig2, _ := trainTestArtifact(t, "mlp", 107, 3)
	p2 := saveArtifact(t, a2)

	want1 := make([]nids.Verdict, len(recs))
	want2 := make([]nids.Verdict, len(recs))
	orig1.DetectBatch(recs, want1)
	orig2.DetectBatch(recs, want2)

	srv, ts := newTestServer(t, a1, Config{Replicas: 2, MaxBatch: 8, MaxWait: 500 * time.Microsecond, QueueDepth: 128})
	c := NewClient(ts.URL)

	stop := make(chan struct{})
	var clientWG sync.WaitGroup
	errCh := make(chan error, 4)
	requests := make([]int, 4)
	for w := 0; w < 4; w++ {
		clientWG.Add(1)
		go func(w int) {
			defer clientWG.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 1 + rng.Intn(8)
				idx := make([]int, n)
				sub := make([]*data.Record, n)
				for i := range idx {
					idx[i] = rng.Intn(len(recs))
					sub[i] = recs[idx[i]]
				}
				got, _, err := c.ScoreTag("", sub)
				if err != nil {
					errCh <- fmt.Errorf("client %d: %v", w, err)
					return
				}
				if len(got) != n {
					errCh <- fmt.Errorf("client %d: dropped verdicts: %d of %d", w, len(got), n)
					return
				}
				for i, v := range got {
					w1, w2 := want1[idx[i]], want2[idx[i]]
					if (v.Class != w1.Class || v.IsAttack != w1.IsAttack) &&
						(v.Class != w2.Class || v.IsAttack != w2.IsAttack) {
						errCh <- fmt.Errorf("record %d verdict class %d matches neither generation (%d / %d)",
							idx[i], v.Class, w1.Class, w2.Class)
						return
					}
				}
				requests[w]++
			}
		}(w)
	}

	// Cycle load→promote→rollback while the clients hammer away.
	for cycle := 0; cycle < 6; cycle++ {
		if _, err := c.LoadTag(p2, "shadow"); err != nil {
			t.Fatalf("cycle %d load: %v", cycle, err)
		}
		before, err := c.Model()
		if err != nil {
			t.Fatalf("cycle %d model: %v", cycle, err)
		}
		if before.Version != a1.Version() {
			t.Fatalf("cycle %d: live is %s before promote, want %s", cycle, before.Version, a1.Version())
		}
		info, err := c.Promote()
		if err != nil {
			t.Fatalf("cycle %d promote: %v", cycle, err)
		}
		if info.Version != a2.Version() {
			t.Fatalf("cycle %d: promoted to %s, want %s", cycle, info.Version, a2.Version())
		}
		time.Sleep(2 * time.Millisecond)
		info, err = c.Rollback()
		if err != nil {
			t.Fatalf("cycle %d rollback: %v", cycle, err)
		}
		if info.Version != before.Version {
			t.Fatalf("cycle %d: rollback restored %s, want the exact prior version %s", cycle, info.Version, before.Version)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	clientWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	total := 0
	for _, n := range requests {
		total += n
	}
	if total == 0 {
		t.Fatal("no client requests completed during the cycles")
	}
	if got := srv.Info().Version; got != a1.Version() {
		t.Fatalf("final live version %s, want %s", got, a1.Version())
	}
	if srv.Registry().Promotes() != 6 || srv.Registry().Rollbacks() != 6 {
		t.Fatalf("lifecycle counters %d/%d, want 6/6", srv.Registry().Promotes(), srv.Registry().Rollbacks())
	}
}

// decodeDetect pins the /v2 single-record wire shape (tag echoed back).
func TestV2DetectEchoesTag(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 109, 1)
	_, ts := newTestServer(t, a, Config{})
	resp, body := postJSON(t, ts.URL+"/v2/detect", RecordJSON{Numeric: recs[0].Numeric, Categorical: recs[0].Categorical})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var dr struct {
		ModelVersion string `json:"model_version"`
		Tag          string `json:"tag"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Tag != registry.Live || dr.ModelVersion != a.Version() {
		t.Fatalf("v2 detect echoed tag=%q version=%s", dr.Tag, dr.ModelVersion)
	}
}
