package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/registry"
	"repro/internal/store"
)

// openStore opens an artifact store rooted at dir, failing the test on
// error. Recovery tests open a second store over the same dir to model
// the restarted process (fresh refcounts, same disk).
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// durableConfig is the store-backed test config. The stats flusher is
// off (negative interval): crash tests abandon servers without Close,
// and a leaked flusher must not keep appending to a journal a recovered
// server has since taken over.
func durableConfig(st *store.Store) Config {
	return Config{Replicas: 1, MaxBatch: 8, MaxWait: time.Millisecond, Store: st, StatsInterval: -1}
}

// crashServer builds a store-backed server whose cleanup closes only the
// HTTP listener. The Server itself is deliberately abandoned — never
// Closed — so its state is exactly what a kill -9 leaves behind: whatever
// the journal and CAS already fsynced. Leaked worker goroutines are the
// price of the simulation and die with the test binary.
func crashServer(t *testing.T, a *Artifact, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// recoverServer restarts from the journal and registers a full cleanup.
func recoverServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// getStatus GETs url and returns the status code and body.
func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// slotVersion returns the artifact version loaded under tag, or "".
func slotVersion(s *Server, tag string) string {
	si, ok := s.slot(tag)
	if !ok {
		return ""
	}
	return si.artifact.Version()
}

// TestRecoverExactTopologyAfterCrash is the tentpole proof: a server
// crashes (abandoned, never Closed) right after a promote, and the
// restarted process replays the journal back to the exact slot→version
// topology — promoted live, rollback generation, emptied shadow — with
// per-slot counters no lower than the last checkpoint, ready to serve.
func TestRecoverExactTopologyAfterCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	dir := t.TempDir()
	a1, _, recs := trainTestArtifact(t, "mlp", 21, 2)
	a2, _, _ := trainTestArtifact(t, "mlp", 22, 2)

	srv, ts := crashServer(t, a1, durableConfig(openStore(t, dir)))
	if err := srv.LoadSlot(registry.Shadow, a2); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-crash scoring: %d", resp.StatusCode)
	}
	if err := srv.Promote(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no drain, no final checkpoint.
	ts.Close()

	srv2, ts2 := recoverServer(t, durableConfig(openStore(t, dir)))
	if got := slotVersion(srv2, registry.Live); got != a2.Version() {
		t.Fatalf("recovered live = %s, want the promoted %s", got, a2.Version())
	}
	if got := slotVersion(srv2, registry.Previous); got != a1.Version() {
		t.Fatalf("recovered rollback generation = %s, want %s", got, a1.Version())
	}
	if got := slotVersion(srv2, registry.Shadow); got != "" {
		t.Fatalf("shadow occupied (%s) after recovering a promote", got)
	}
	rep := srv2.Recovery()
	if rep == nil {
		t.Fatal("recovered server has no recovery report")
	}
	if rep.Restored[registry.Live] != a2.Version() || rep.Restored[registry.Previous] != a1.Version() {
		t.Fatalf("report restored %v", rep.Restored)
	}
	if len(rep.Degraded) != 0 {
		t.Fatalf("unexpected degraded slots: %+v", rep.Degraded)
	}
	// The promote's piggybacked checkpoint preserved the pre-crash counters.
	if got := srv2.Registry().StatsFor(registry.Live).Records.Load(); got < int64(len(recs)) {
		t.Fatalf("recovered live records counter = %d, want >= %d", got, len(recs))
	}
	if code, _ := getStatus(t, ts2.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d", code)
	}
	// And it scores: recovery re-lowered the plan from the CAS bytes.
	resp, _ = postJSON(t, ts2.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery scoring: %d", resp.StatusCode)
	}
}

// TestRecoverDegradedShadowQuarantined corrupts the shadow artifact's
// CAS file between crash and restart: recovery must quarantine it,
// degrade only that slot, and bring live up untouched.
func TestRecoverDegradedShadowQuarantined(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	dir := t.TempDir()
	a1, _, recs := trainTestArtifact(t, "mlp", 23, 2)
	a2, _, _ := trainTestArtifact(t, "mlp", 24, 2)

	srv, ts := crashServer(t, a1, durableConfig(openStore(t, dir)))
	if err := srv.LoadSlot(registry.Shadow, a2); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := chaos.CorruptFile(filepath.Join(dir, "cas", a2.Version()+".plcn")); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	srv2, ts2 := recoverServer(t, durableConfig(st2))
	if got := slotVersion(srv2, registry.Live); got != a1.Version() {
		t.Fatalf("live = %s after shadow corruption, want %s", got, a1.Version())
	}
	if _, ok := srv2.slot(registry.Shadow); ok {
		t.Fatal("corrupt shadow was restored")
	}
	rep := srv2.Recovery()
	if len(rep.Degraded) != 1 || rep.Degraded[0].Tag != registry.Shadow || rep.Degraded[0].Version != a2.Version() {
		t.Fatalf("degraded = %+v, want the shadow slot", rep.Degraded)
	}
	quarantined := st2.QuarantinedVersions()
	if len(quarantined) != 1 || quarantined[0] != a2.Version() {
		t.Fatalf("quarantined = %v, want [%s]", quarantined, a2.Version())
	}
	if st := st2.Stats(); st.Quarantined < 1 {
		t.Fatalf("quarantined counter = %d, want >= 1", st.Quarantined)
	}
	if code, _ := getStatus(t, ts2.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz with degraded shadow: %d, want 200", code)
	}
	resp, _ := postJSON(t, ts2.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live scoring with degraded shadow: %d", resp.StatusCode)
	}
	if _, body := getStatus(t, ts2.URL+"/metrics"); !strings.Contains(body, "pelican_store_quarantined_total 1") {
		t.Fatal("/metrics does not report the quarantine")
	}
}

// TestRecoverMissingLiveNotReady deletes the live artifact before the
// restart: the server must still come up — answering /readyz 503, not
// crashing — and flip ready once an operator loads a live model.
func TestRecoverMissingLiveNotReady(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	a1, _, recs := trainTestArtifact(t, "mlp", 25, 2)

	_, ts := crashServer(t, a1, durableConfig(openStore(t, dir)))
	ts.Close()
	if err := os.Remove(filepath.Join(dir, "cas", a1.Version()+".plcn")); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := recoverServer(t, durableConfig(openStore(t, dir)))
	if code, body := getStatus(t, ts2.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no live slot") {
		t.Fatalf("/readyz with no live slot: %d %q", code, body)
	}
	rep := srv2.Recovery()
	if len(rep.Degraded) != 1 || rep.Degraded[0].Tag != registry.Live {
		t.Fatalf("degraded = %+v, want the live slot", rep.Degraded)
	}
	resp, _ := postJSON(t, ts2.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs)})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("scoring succeeded with no live slot")
	}
	// Operator reloads: the in-memory a1 still exists, so this re-persists
	// the artifact into the CAS and readiness flips.
	if err := srv2.LoadSlot(registry.Live, a1); err != nil {
		t.Fatal(err)
	}
	if code, _ := getStatus(t, ts2.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after operator reload: %d", code)
	}
}

// TestPlanDedupeAcrossTags loads byte-identical artifact files into two
// slots and asserts the server deduplicates them to one *Artifact — so
// the lazily lowered inference plan is compiled once and shared, pointer
// identical, across tags.
func TestPlanDedupeAcrossTags(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a1, _, _ := trainTestArtifact(t, "mlp", 26, 2)
	path := saveArtifact(t, a1)
	srv, _ := newTestServer(t, a1, Config{Replicas: 1, MaxBatch: 8, MaxWait: time.Millisecond})

	// A fresh decode of the same bytes: same version, different pointer.
	dup, err := LoadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dup == a1 {
		t.Fatal("test setup: LoadArtifactFile returned the original pointer")
	}
	if err := srv.LoadSlot("canary", dup); err != nil {
		t.Fatal(err)
	}
	live, _ := srv.slot(registry.Live)
	canary, ok := srv.slot("canary")
	if !ok {
		t.Fatal("canary slot empty")
	}
	if live.artifact != canary.artifact {
		t.Fatalf("artifacts not deduped: live %p vs canary %p for version %s", live.artifact, canary.artifact, a1.Version())
	}
	lp, err := live.artifact.Plan()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := canary.artifact.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if lp != cp {
		t.Fatalf("plans not shared: %p vs %p", lp, cp)
	}
}

// TestRollbackTwiceAcrossRestart pins the rollback-is-a-swap invariant
// across a process boundary: rollback, crash, recover, rollback again —
// and the second rollback rolls forward to the promoted version, exactly
// as it would have in one process lifetime.
func TestRollbackTwiceAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	dir := t.TempDir()
	a1, _, _ := trainTestArtifact(t, "mlp", 27, 2)
	a2, _, _ := trainTestArtifact(t, "mlp", 28, 2)

	srv, ts := crashServer(t, a1, durableConfig(openStore(t, dir)))
	if err := srv.LoadSlot(registry.Shadow, a2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := slotVersion(srv, registry.Live); got != a1.Version() {
		t.Fatalf("pre-crash rollback left live = %s, want %s", got, a1.Version())
	}
	ts.Close()

	srv2, _ := recoverServer(t, durableConfig(openStore(t, dir)))
	if got := slotVersion(srv2, registry.Live); got != a1.Version() {
		t.Fatalf("recovered live = %s, want the rolled-back %s", got, a1.Version())
	}
	if got := slotVersion(srv2, registry.Previous); got != a2.Version() {
		t.Fatalf("recovered rollback target = %s, want %s", got, a2.Version())
	}
	if err := srv2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := slotVersion(srv2, registry.Live); got != a2.Version() {
		t.Fatalf("rollback-twice across restart: live = %s, want roll-forward to %s", got, a2.Version())
	}
}

// TestTornJournalTailRecovers cuts bytes off the journal mid-record — a
// crash during an append — and asserts recovery lands on the last fully
// durable topology, reports the truncation, and GC sweeps the version
// the torn record would have referenced.
func TestTornJournalTailRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	dir := t.TempDir()
	a1, _, _ := trainTestArtifact(t, "mlp", 29, 2)
	a2, _, _ := trainTestArtifact(t, "mlp", 30, 2)

	srv, ts := crashServer(t, a1, durableConfig(openStore(t, dir)))
	if err := srv.LoadSlot(registry.Shadow, a2); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	// Tear the tail of the shadow-load record: the append never fully
	// landed, so the durable truth is "live only".
	if err := chaos.TruncateTail(filepath.Join(dir, "journal", "wal.jsonl"), 5); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := recoverServer(t, durableConfig(openStore(t, dir)))
	if got := slotVersion(srv2, registry.Live); got != a1.Version() {
		t.Fatalf("recovered live = %s, want %s", got, a1.Version())
	}
	if _, ok := srv2.slot(registry.Shadow); ok {
		t.Fatal("shadow restored from a torn record")
	}
	rep := srv2.Recovery()
	if rep.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", rep.Truncated)
	}
	found := false
	for _, v := range rep.GCRemoved {
		if v == a2.Version() {
			found = true
		}
	}
	if !found {
		t.Fatalf("orphaned shadow artifact not swept: gc=%v, want %s", rep.GCRemoved, a2.Version())
	}
	if _, body := getStatus(t, ts2.URL+"/metrics"); !strings.Contains(body, "pelican_recovery_truncated_records_total 1") {
		t.Fatal("/metrics does not report the truncation")
	}
}

// TestReadyzDrain: /readyz flips to 503 the moment a drain begins, and
// distinguishes "draining" from "no live slot" in its body.
func TestReadyzDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, _ := trainTestArtifact(t, "mlp", 31, 2)
	srv, ts := newTestServer(t, a, Config{Replicas: 1, MaxBatch: 8, MaxWait: time.Millisecond})

	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz = %d %q, want 200 ready", code, body)
	}
	srv.BeginDrain()
	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz while draining = %d %q, want 503 draining", code, body)
	}
}
