package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
)

// serverMetrics holds the server-wide counters exported at /metrics.
// Per-slot counters live in the model registry (registry.Stats), per-slot
// stage histograms on each slot's scorer; both are rendered with
// {slot=...} labels.
type serverMetrics struct {
	detectRequests atomic.Int64
	batchRequests  atomic.Int64
	records        atomic.Int64
	batches        atomic.Int64
	batchRecords   atomic.Int64
	attacks        atomic.Int64
	// requestErrors4xx counts client-side rejections (malformed bodies,
	// schema mismatches, unknown tags, deliberate 429 shedding);
	// requestErrors5xx counts server-side failures and overload 503s.
	// Split so dashboards never conflate deliberate shedding with broken
	// clients or broken servers.
	requestErrors4xx atomic.Int64
	requestErrors5xx atomic.Int64
	reloads          atomic.Int64
	// shed counts records fast-failed by the admission controller (429);
	// deadlineExpired counts records shed after their request deadline ran
	// out while queued (503). Server-wide aggregates of the per-slot
	// registry.Stats counters.
	shed            atomic.Int64
	deadlineExpired atomic.Int64
	latency         *obs.Histogram
	// Binary transport plane (wire.go): open connections, frames and
	// bytes by direction, and framing/payload protocol violations.
	wireConnections atomic.Int64
	wireFramesIn    atomic.Int64
	wireFramesOut   atomic.Int64
	wireBytesIn     atomic.Int64
	wireBytesOut    atomic.Int64
	wireProtoErrors atomic.Int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{latency: obs.NewHistogram(obs.LatencyBuckets)}
}

// observeLatency records one accepted request's end-to-end latency.
func (m *serverMetrics) observeLatency(d time.Duration) {
	if m != nil && m.latency != nil {
		m.latency.ObserveDuration(d)
	}
}

// stageMetrics are one slot's per-stage latency decomposition: fixed-bucket
// histograms for each stage of the request path plus the realized batch
// size distribution. They live on the slot's scorer, so — like the queue
// gauge — they travel with the generation through promotions and are
// rendered under whichever tag currently serves it. Nil when the server
// runs with ObsOff.
type stageMetrics struct {
	queueWait *obs.Histogram // enqueue → worker pickup (includes assembly + worker wait)
	assembly  *obs.Histogram // batch open (first record at dispatcher) → flush
	infer     *obs.Histogram // replica engine run, per batch (includes injected chaos delay)
	encode    *obs.Histogram // response JSON encode, per request
	batchSize *obs.Histogram // records per flushed batch
}

func newStageMetrics() *stageMetrics {
	return &stageMetrics{
		queueWait: obs.NewHistogram(obs.StageBuckets),
		assembly:  obs.NewHistogram(obs.StageBuckets),
		infer:     obs.NewHistogram(obs.StageBuckets),
		encode:    obs.NewHistogram(obs.StageBuckets),
		batchSize: obs.NewHistogram(obs.BatchSizeBuckets),
	}
}

// slotMetrics is one registry slot's exposition snapshot.
type slotMetrics struct {
	tag     string
	model   string
	version string
	queue   int
	stats   *registry.Stats
	stages  *stageMetrics
}

// promSnapshot carries the registry-side state /metrics renders alongside
// the server-wide counters.
type promSnapshot struct {
	queueDepth      int
	slots           []slotMetrics
	promotes        int64
	rollbacks       int64
	previousVersion string
	started         time.Time
	// store holds the artifact-store counters (nil without Config.Store —
	// the families are then absent, not zero); recovery is non-nil only
	// on a server built by Recover.
	store    *store.Stats
	recovery *RecoveryReport
}

// writeProm renders the metrics in the Prometheus text exposition format.
func (m *serverMetrics) writeProm(w io.Writer, snap promSnapshot) {
	counter := func(name, help string, v int64) {
		obs.WritePromHeader(w, name, "counter", help)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	counter("pelican_serve_detect_requests_total", "Requests to /v1/detect and /v2/detect.", m.detectRequests.Load())
	counter("pelican_serve_detect_batch_requests_total", "Requests to /v1/detect-batch and /v2/detect-batch.", m.batchRequests.Load())
	counter("pelican_serve_records_total", "Flow records scored for requests (mirrored copies excluded).", m.records.Load())
	counter("pelican_serve_batches_total", "Dynamic batches flushed to a replica (all slots).", m.batches.Load())
	counter("pelican_serve_batch_records_total", "Records carried by flushed batches (all slots).", m.batchRecords.Load())
	counter("pelican_serve_attack_verdicts_total", "Verdicts flagged as attacks (all slots).", m.attacks.Load())

	obs.WritePromHeader(w, "pelican_serve_request_errors_total", "counter",
		"Requests rejected, by status class: 4xx covers client errors and deliberate 429 shedding, 5xx server failures and overload 503s.")
	fmt.Fprintf(w, "pelican_serve_request_errors_total{code=\"4xx\"} %d\n", m.requestErrors4xx.Load())
	fmt.Fprintf(w, "pelican_serve_request_errors_total{code=\"5xx\"} %d\n", m.requestErrors5xx.Load())

	counter("pelican_serve_reloads_total", "Successful model loads into any slot after startup.", m.reloads.Load())
	counter("pelican_serve_promotes_total", "Shadow-to-live promotions.", snap.promotes)
	counter("pelican_serve_rollbacks_total", "Live rollbacks to the retained previous generation.", snap.rollbacks)
	counter("pelican_serve_shed_total", "Records fast-failed (429) by the admission controller, all slots.", m.shed.Load())
	counter("pelican_serve_deadline_expired_total", "Records shed (503) after their deadline expired while queued, all slots.", m.deadlineExpired.Load())

	obs.WritePromHeader(w, "pelican_serve_queue_depth", "gauge", "Records waiting across all slot batcher queues.")
	fmt.Fprintf(w, "pelican_serve_queue_depth %d\n", snap.queueDepth)

	obs.WritePromHeader(w, "pelican_wire_connections", "gauge", "Open binary-transport connections.")
	fmt.Fprintf(w, "pelican_wire_connections %d\n", m.wireConnections.Load())
	obs.WritePromHeader(w, "pelican_wire_frames_total", "counter", "Wire frames by direction (in = read from clients, out = written to clients).")
	fmt.Fprintf(w, "pelican_wire_frames_total{dir=\"in\"} %d\n", m.wireFramesIn.Load())
	fmt.Fprintf(w, "pelican_wire_frames_total{dir=\"out\"} %d\n", m.wireFramesOut.Load())
	obs.WritePromHeader(w, "pelican_wire_bytes_total", "counter", "Wire frame bytes (headers + payloads) by direction.")
	fmt.Fprintf(w, "pelican_wire_bytes_total{dir=\"in\"} %d\n", m.wireBytesIn.Load())
	fmt.Fprintf(w, "pelican_wire_bytes_total{dir=\"out\"} %d\n", m.wireBytesOut.Load())
	counter("pelican_wire_protocol_errors_total", "Framing/payload protocol violations; each closes its connection.", m.wireProtoErrors.Load())

	obs.WritePromHeader(w, "pelican_serve_model_info", "gauge", "Loaded model per registry slot (value is always 1).")
	for _, sl := range snap.slots {
		fmt.Fprintf(w, "pelican_serve_model_info{slot=%q,model=%q,version=%q} 1\n", sl.tag, sl.model, sl.version)
	}
	if snap.previousVersion != "" {
		fmt.Fprintf(w, "pelican_serve_model_info{slot=\"previous\",model=\"\",version=%q} 1\n", snap.previousVersion)
	}

	slotCounter := func(name, help string, load func(*registry.Stats) int64) {
		obs.WritePromHeader(w, name, "counter", help)
		for _, sl := range snap.slots {
			fmt.Fprintf(w, "%s{slot=%q,version=%q} %d\n", name, sl.tag, sl.version, load(sl.stats))
		}
	}
	slotCounter("pelican_serve_slot_records_total", "Flow records scored by the slot (requests plus mirrors).",
		func(st *registry.Stats) int64 { return st.Records.Load() })
	slotCounter("pelican_serve_slot_attack_verdicts_total", "Attack verdicts by the slot — the per-slot detection-rate proxy.",
		func(st *registry.Stats) int64 { return st.Attacks.Load() })
	slotCounter("pelican_serve_slot_mirrored_total", "Live records mirrored onto the slot.",
		func(st *registry.Stats) int64 { return st.Mirrored.Load() })
	slotCounter("pelican_serve_slot_mirror_dropped_total", "Mirrors dropped (backpressure, layout mismatch, or mid-swap).",
		func(st *registry.Stats) int64 { return st.MirrorDropped.Load() })
	slotCounter("pelican_serve_slot_agreements_total", "Mirrored verdicts agreeing with live.",
		func(st *registry.Stats) int64 { return st.Agreements.Load() })
	slotCounter("pelican_serve_slot_disagreements_total", "Mirrored verdicts disagreeing with live.",
		func(st *registry.Stats) int64 { return st.Disagreements.Load() })
	slotCounter("pelican_serve_slot_shed_total", "Records fast-failed (429) by the slot's admission watermark.",
		func(st *registry.Stats) int64 { return st.Shed.Load() })
	slotCounter("pelican_serve_slot_deadline_expired_total", "Records shed (503) after their deadline expired in the slot's queue.",
		func(st *registry.Stats) int64 { return st.DeadlineExpired.Load() })

	obs.WritePromHeader(w, "pelican_serve_slot_queue_depth", "gauge", "Records waiting in the slot's batcher queue.")
	for _, sl := range snap.slots {
		fmt.Fprintf(w, "pelican_serve_slot_queue_depth{slot=%q} %d\n", sl.tag, sl.queue)
	}

	obs.WritePromHeader(w, "pelican_serve_request_seconds", "histogram", "Scoring request latency.")
	m.latency.WriteProm(w, "pelican_serve_request_seconds", "")

	// Stage-level latency decomposition, per slot. Absent entirely under
	// ObsOff (the stage timers are off, not silently zero).
	writeStages := false
	for _, sl := range snap.slots {
		if sl.stages != nil {
			writeStages = true
		}
	}
	if writeStages {
		stageHist := func(name, help string, pick func(*stageMetrics) *obs.Histogram) {
			obs.WritePromHeader(w, name, "histogram", help)
			for _, sl := range snap.slots {
				if sl.stages == nil {
					continue
				}
				pick(sl.stages).WriteProm(w, name, fmt.Sprintf("slot=%q", sl.tag))
			}
		}
		stageHist("pelican_serve_queue_wait_seconds",
			"Stage: record enqueue to worker pickup (queueing, co-traveler wait, and replica wait).",
			func(st *stageMetrics) *obs.Histogram { return st.queueWait })
		stageHist("pelican_serve_batch_assembly_seconds",
			"Stage: batch open (first record at the dispatcher) to flush.",
			func(st *stageMetrics) *obs.Histogram { return st.assembly })
		stageHist("pelican_serve_infer_seconds",
			"Stage: replica engine run per flushed batch (includes any injected chaos delay).",
			func(st *stageMetrics) *obs.Histogram { return st.infer })
		stageHist("pelican_serve_encode_seconds",
			"Stage: response JSON encode per request.",
			func(st *stageMetrics) *obs.Histogram { return st.encode })
		stageHist("pelican_serve_batch_size",
			"Records per flushed batch.",
			func(st *stageMetrics) *obs.Histogram { return st.batchSize })
	}

	// Durable-control-plane families: present only when the server runs
	// with an artifact store (and, for the recovery set, only after a
	// journal recovery actually happened).
	if snap.store != nil {
		obs.WritePromHeader(w, "pelican_store_artifacts", "gauge", "Verified artifacts resident in the content-addressed store.")
		fmt.Fprintf(w, "pelican_store_artifacts %d\n", snap.store.Artifacts)
		obs.WritePromHeader(w, "pelican_store_bytes", "gauge", "Total bytes of resident artifacts in the content-addressed store.")
		fmt.Fprintf(w, "pelican_store_bytes %d\n", snap.store.Bytes)
		counter("pelican_store_gc_total", "Unreferenced artifacts deleted by store GC since process start.", snap.store.GCTotal)
		counter("pelican_store_quarantined_total", "Artifacts quarantined after failing verification since process start.", snap.store.Quarantined)
	}
	if snap.recovery != nil {
		counter("pelican_recovery_journal_replayed_total", "Journal records replayed during startup recovery.", int64(snap.recovery.Replayed))
		counter("pelican_recovery_truncated_records_total", "Torn or corrupt trailing journal records truncated during recovery.", int64(snap.recovery.Truncated))
		obs.WritePromHeader(w, "pelican_recovery_duration_seconds", "gauge", "Wall time of the startup journal replay and artifact re-lowering.")
		fmt.Fprintf(w, "pelican_recovery_duration_seconds %.6f\n", snap.recovery.Duration.Seconds())
	}

	obs.WriteRuntimeProm(w, snap.started)
}
