package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/registry"
)

// latencyBuckets are the request-latency histogram upper bounds in
// seconds, spanning sub-millisecond in-process scoring to multi-second
// overload tails. It is an array so numLatencyBuckets is a compile-time
// constant that cannot drift from the bound list.
var latencyBuckets = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

const numLatencyBuckets = len(latencyBuckets)

// histogram is a fixed-bucket Prometheus-style latency histogram with
// lock-free observation.
type histogram struct {
	counts   [numLatencyBuckets + 1]atomic.Int64 // +1 for +Inf
	sumNanos atomic.Int64
	total    atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
	h.total.Add(1)
}

// serverMetrics holds the server-wide counters exported at /metrics.
// Per-slot counters live in the model registry (registry.Stats) and are
// rendered with {slot=...} labels.
type serverMetrics struct {
	detectRequests atomic.Int64
	batchRequests  atomic.Int64
	records        atomic.Int64
	batches        atomic.Int64
	batchRecords   atomic.Int64
	attacks        atomic.Int64
	requestErrors  atomic.Int64
	reloads        atomic.Int64
	// shed counts records fast-failed by the admission controller (429);
	// deadlineExpired counts records shed after their request deadline ran
	// out while queued (503). Server-wide aggregates of the per-slot
	// registry.Stats counters.
	shed            atomic.Int64
	deadlineExpired atomic.Int64
	latency         histogram
}

// slotMetrics is one registry slot's exposition snapshot.
type slotMetrics struct {
	tag     string
	model   string
	version string
	queue   int
	stats   *registry.Stats
}

// promSnapshot carries the registry-side state /metrics renders alongside
// the server-wide counters.
type promSnapshot struct {
	queueDepth      int
	slots           []slotMetrics
	promotes        int64
	rollbacks       int64
	previousVersion string
}

// writeProm renders the metrics in the Prometheus text exposition format.
func (m *serverMetrics) writeProm(w io.Writer, snap promSnapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("pelican_serve_detect_requests_total", "Requests to /v1/detect and /v2/detect.", m.detectRequests.Load())
	counter("pelican_serve_detect_batch_requests_total", "Requests to /v1/detect-batch and /v2/detect-batch.", m.batchRequests.Load())
	counter("pelican_serve_records_total", "Flow records scored for requests (mirrored copies excluded).", m.records.Load())
	counter("pelican_serve_batches_total", "Dynamic batches flushed to a replica (all slots).", m.batches.Load())
	counter("pelican_serve_batch_records_total", "Records carried by flushed batches (all slots).", m.batchRecords.Load())
	counter("pelican_serve_attack_verdicts_total", "Verdicts flagged as attacks (all slots).", m.attacks.Load())
	counter("pelican_serve_request_errors_total", "Requests rejected with a 4xx/5xx status.", m.requestErrors.Load())
	counter("pelican_serve_reloads_total", "Successful model loads into any slot after startup.", m.reloads.Load())
	counter("pelican_serve_promotes_total", "Shadow-to-live promotions.", snap.promotes)
	counter("pelican_serve_rollbacks_total", "Live rollbacks to the retained previous generation.", snap.rollbacks)
	counter("pelican_serve_shed_total", "Records fast-failed (429) by the admission controller, all slots.", m.shed.Load())
	counter("pelican_serve_deadline_expired_total", "Records shed (503) after their deadline expired while queued, all slots.", m.deadlineExpired.Load())

	fmt.Fprintf(w, "# HELP pelican_serve_queue_depth Records waiting across all slot batcher queues.\n")
	fmt.Fprintf(w, "# TYPE pelican_serve_queue_depth gauge\npelican_serve_queue_depth %d\n", snap.queueDepth)

	fmt.Fprintf(w, "# HELP pelican_serve_model_info Loaded model per registry slot (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE pelican_serve_model_info gauge\n")
	for _, sl := range snap.slots {
		fmt.Fprintf(w, "pelican_serve_model_info{slot=%q,model=%q,version=%q} 1\n", sl.tag, sl.model, sl.version)
	}
	if snap.previousVersion != "" {
		fmt.Fprintf(w, "pelican_serve_model_info{slot=\"previous\",model=\"\",version=%q} 1\n", snap.previousVersion)
	}

	slotCounter := func(name, help string, load func(*registry.Stats) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, sl := range snap.slots {
			fmt.Fprintf(w, "%s{slot=%q,version=%q} %d\n", name, sl.tag, sl.version, load(sl.stats))
		}
	}
	slotCounter("pelican_serve_slot_records_total", "Flow records scored by the slot (requests plus mirrors).",
		func(st *registry.Stats) int64 { return st.Records.Load() })
	slotCounter("pelican_serve_slot_attack_verdicts_total", "Attack verdicts by the slot — the per-slot detection-rate proxy.",
		func(st *registry.Stats) int64 { return st.Attacks.Load() })
	slotCounter("pelican_serve_slot_mirrored_total", "Live records mirrored onto the slot.",
		func(st *registry.Stats) int64 { return st.Mirrored.Load() })
	slotCounter("pelican_serve_slot_mirror_dropped_total", "Mirrors dropped (backpressure, layout mismatch, or mid-swap).",
		func(st *registry.Stats) int64 { return st.MirrorDropped.Load() })
	slotCounter("pelican_serve_slot_agreements_total", "Mirrored verdicts agreeing with live.",
		func(st *registry.Stats) int64 { return st.Agreements.Load() })
	slotCounter("pelican_serve_slot_disagreements_total", "Mirrored verdicts disagreeing with live.",
		func(st *registry.Stats) int64 { return st.Disagreements.Load() })
	slotCounter("pelican_serve_slot_shed_total", "Records fast-failed (429) by the slot's admission watermark.",
		func(st *registry.Stats) int64 { return st.Shed.Load() })
	slotCounter("pelican_serve_slot_deadline_expired_total", "Records shed (503) after their deadline expired in the slot's queue.",
		func(st *registry.Stats) int64 { return st.DeadlineExpired.Load() })

	fmt.Fprintf(w, "# HELP pelican_serve_slot_queue_depth Records waiting in the slot's batcher queue.\n")
	fmt.Fprintf(w, "# TYPE pelican_serve_slot_queue_depth gauge\n")
	for _, sl := range snap.slots {
		fmt.Fprintf(w, "pelican_serve_slot_queue_depth{slot=%q} %d\n", sl.tag, sl.queue)
	}

	fmt.Fprintf(w, "# HELP pelican_serve_request_seconds Scoring request latency.\n")
	fmt.Fprintf(w, "# TYPE pelican_serve_request_seconds histogram\n")
	cum := int64(0)
	for i, ub := range &latencyBuckets {
		cum += m.latency.counts[i].Load()
		fmt.Fprintf(w, "pelican_serve_request_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.latency.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "pelican_serve_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "pelican_serve_request_seconds_sum %g\n", float64(m.latency.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "pelican_serve_request_seconds_count %d\n", m.latency.total.Load())
}

// trimFloat renders a bucket bound without trailing zeros (0.0005, 0.01, 1).
func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }
