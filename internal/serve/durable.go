package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/registry"
	"repro/internal/store"
)

// This file is the serve side of the durable control plane: persisting
// artifacts into the content-addressed store, journaling every slot
// lifecycle op, and rebuilding the exact slot→version topology (plus
// per-tag counters) after a restart. Everything here is a no-op when
// the server runs without a Config.Store.

// DegradedSlot reports one slot recovery could not restore. The rest of
// the topology is unaffected: a broken shadow or canary never blocks
// startup, and a broken live slot leaves the server up but not ready.
type DegradedSlot struct {
	Tag     string `json:"tag"`
	Version string `json:"version"`
	Reason  string `json:"reason"`
}

// RecoveryReport is what a Recover startup found and did.
type RecoveryReport struct {
	// SnapshotSeq, Replayed, and Truncated describe the journal replay:
	// the compacted snapshot's sequence number, how many journal records
	// were applied on top of it, and how many torn/corrupt trailing
	// records were cut.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	Replayed    int    `json:"replayed"`
	Truncated   int    `json:"truncated"`
	// Restored maps each recovered slot (plus "previous" for the
	// rollback generation) to its artifact version.
	Restored map[string]string `json:"restored"`
	// Degraded lists slots whose artifacts were missing or quarantined.
	Degraded []DegradedSlot `json:"degraded,omitempty"`
	// GCRemoved lists artifact versions swept after recovery (resident
	// in the CAS but referenced by no recovered slot).
	GCRemoved []string `json:"gc_removed,omitempty"`
	// Duration is the whole recovery: replay plus artifact re-lowering.
	Duration time.Duration `json:"-"`
}

// Recovery returns the report from a Recover startup, or nil if the
// server was constructed with New.
func (s *Server) Recovery() *RecoveryReport { return s.recovery }

// Recover rebuilds a server from cfg.Store's journal instead of an
// explicit artifact: the snapshot+journal replay yields the pre-crash
// slot→version topology, every slot's artifact is fetched (verified)
// from the CAS and re-lowered, per-tag counters are restored from the
// last stats checkpoint, and the rollback generation is reinstated.
//
// Failures degrade, never abort: a slot whose artifact is missing or
// corrupt (corrupt ones are quarantined by the fetch) is dropped from
// the topology and reported, while every other slot recovers. If the
// live slot itself cannot be restored the server still starts — it
// answers /readyz with 503 until an operator loads a live model.
func Recover(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("serve: Recover requires Config.Store (a -state-dir to recover from)")
	}
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	topo := s.journal.Topology()
	rep := &RecoveryReport{
		SnapshotSeq: s.replayInfo.SnapshotSeq,
		Replayed:    s.replayInfo.Replayed,
		Truncated:   s.replayInfo.Truncated,
		Restored:    map[string]string{},
	}
	if rep.Truncated > 0 {
		s.log.Warn("journal had torn trailing records; truncated to last valid prefix",
			"truncated", rep.Truncated, "replayed", rep.Replayed)
	}
	// Counters first, so the slots never take traffic with rewound stats.
	for tag, sr := range topo.Stats {
		s.reg.StatsFor(tag).Restore(registry.StatsSnapshot(sr))
	}
	restored := store.NewTopology()
	restored.Stats = topo.Stats
	for _, tag := range recoveryOrder(topo.Slots) {
		version := topo.Slots[tag]
		si, err := s.recoverInstance(version)
		if err != nil {
			rep.Degraded = append(rep.Degraded, DegradedSlot{Tag: tag, Version: version, Reason: err.Error()})
			s.log.Error("slot not recovered; degrading it", "slot", tag, "version", version, "error", err)
			continue
		}
		if err := s.reg.Load(tag, si); err != nil {
			rep.Degraded = append(rep.Degraded, DegradedSlot{Tag: tag, Version: version, Reason: err.Error()})
			continue
		}
		s.cfg.Store.Retain(version)
		restored.Slots[tag] = version
		rep.Restored[tag] = version
		if tag == registry.Live {
			s.ready.Store(true)
		}
		s.log.Info("slot recovered", "slot", tag, "version", version)
	}
	if topo.Prev != "" {
		si, err := s.recoverInstance(topo.Prev)
		if err != nil {
			rep.Degraded = append(rep.Degraded, DegradedSlot{Tag: registry.Previous, Version: topo.Prev, Reason: err.Error()})
			s.log.Error("rollback generation not recovered", "version", topo.Prev, "error", err)
		} else {
			s.reg.RestorePrevious(si)
			s.cfg.Store.Retain(topo.Prev)
			restored.Prev = topo.Prev
			rep.Restored[registry.Previous] = topo.Prev
		}
	}
	// The journal now reflects what actually recovered — degraded slots
	// are pruned so the next restart replays a clean topology — and the
	// CAS drops versions nothing references anymore.
	if err := s.journal.Reset(restored); err != nil {
		s.closeDurability()
		return nil, err
	}
	if removed, err := s.store.GC(); err == nil {
		rep.GCRemoved = removed
	}
	rep.Duration = time.Since(start) + s.replayInfo.Duration
	s.recovery = rep
	s.log.Info("recovery complete",
		"slots", len(rep.Restored), "degraded", len(rep.Degraded),
		"replayed", rep.Replayed, "truncated", rep.Truncated,
		"ready", s.ready.Load(), "dur", rep.Duration)
	return s, nil
}

// recoveryOrder lists the topology's tags live-first (a degraded canary
// must never delay live), then shadow, then canaries alphabetically.
func recoveryOrder(slots map[string]string) []string {
	var canaries []string
	var out []string
	for tag := range slots {
		switch tag {
		case registry.Live, registry.Shadow:
		default:
			canaries = append(canaries, tag)
		}
	}
	sort.Strings(canaries)
	if _, ok := slots[registry.Live]; ok {
		out = append(out, registry.Live)
	}
	if _, ok := slots[registry.Shadow]; ok {
		out = append(out, registry.Shadow)
	}
	return append(out, canaries...)
}

// recoverInstance fetches version from the CAS (verification and
// quarantine included) and builds a ready slot instance, reusing an
// already-loaded artifact of the same version so the lowered plan is
// shared rather than recompiled.
func (s *Server) recoverInstance(version string) (*slotInstance, error) {
	if a := s.loadedArtifact(version); a != nil {
		return s.newInstance(a)
	}
	b, err := s.store.Fetch(version)
	if err != nil {
		return nil, err
	}
	a, err := LoadArtifact(bytes.NewReader(b))
	if err != nil {
		// The bytes hash correctly but do not decode: they were bad at Put
		// time. Quarantine so the journal never resurrects them.
		s.store.Quarantine(version, err.Error())
		return nil, err
	}
	return s.newInstance(a)
}

// loadedArtifact returns the already-resident artifact with the given
// version (searching every slot and the rollback generation), or nil.
// Sharing the *Artifact shares its lazily lowered f32 plan: loading one
// version into a second slot must not pay a second lowering.
func (s *Server) loadedArtifact(version string) *Artifact {
	for _, tag := range s.reg.Tags() {
		if si, ok := s.slot(tag); ok && si.artifact.Version() == version {
			return si.artifact
		}
	}
	if si, ok := s.slot(registry.Previous); ok && si.artifact.Version() == version {
		return si.artifact
	}
	return nil
}

// dedupeArtifact swaps a for the resident artifact of the same version
// when one exists, so a re-load of a deployed version reuses the
// compiled plan (pointer-identical) instead of lowering it again.
func (s *Server) dedupeArtifact(a *Artifact) *Artifact {
	if shared := s.loadedArtifact(a.Version()); shared != nil {
		return shared
	}
	return a
}

// persistArtifact makes a durable in the CAS before any registry op may
// reference it — the write-ahead ordering a crash-safe load depends on.
// No-op without a store.
func (s *Server) persistArtifact(a *Artifact) error {
	if s.store == nil {
		return nil
	}
	// Canonical bytes, never a re-encode: version is the SHA of these.
	v, err := s.store.Put(a.Bytes())
	if err != nil {
		return err
	}
	if v != a.Version() {
		return fmt.Errorf("serve: artifact hashed to %s in the store but carries version %s", v, a.Version())
	}
	return nil
}

// journalAppend records one lifecycle op, piggybacking a stats
// checkpoint on the same fsync. Called with adminMu held, after the
// registry op succeeded: the op is durable before its HTTP response,
// and a crash between registry and journal loses only an op nobody was
// told succeeded. No-op without a store.
func (s *Server) journalAppend(op, tag, version string) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(op, tag, version, s.statsCheckpoint()); err != nil {
		s.log.Error("journal append failed; topology change will not survive a restart",
			"op", op, "slot", tag, "version", version, "error", err)
	}
}

// releaseArtifact drops a retired instance's CAS reference and sweeps
// newly unreferenced versions. Called from the registry retire callback
// (outside the registry lock). No-op without a store.
func (s *Server) releaseArtifact(si *slotInstance) {
	if s.store == nil {
		return
	}
	s.store.Release(si.artifact.Version())
	if removed, err := s.store.GC(); err == nil && len(removed) > 0 {
		s.log.Info("artifact store gc", "removed", len(removed))
	}
}

// statsCheckpoint snapshots every occupied slot's counters for a
// journal record.
func (s *Server) statsCheckpoint() map[string]store.StatsRecord {
	out := map[string]store.StatsRecord{}
	for _, tag := range s.reg.Tags() {
		out[tag] = store.StatsRecord(s.reg.StatsFor(tag).Snapshot())
	}
	return out
}

// statsFlusher periodically checkpoints per-slot counters into the
// journal so a crash rewinds them at most StatsInterval, preserving
// monotonicity for scrapers across the restart.
func (s *Server) statsFlusher() {
	defer s.statsWG.Done()
	t := time.NewTicker(s.cfg.StatsInterval)
	defer t.Stop()
	for {
		select {
		case <-s.statsStop:
			return
		case <-t.C:
			if err := s.journal.Append(store.OpStats, "", "", s.statsCheckpoint()); err != nil {
				s.log.Warn("stats checkpoint failed", "error", err)
			}
		}
	}
}

// closeDurability stops the stats flusher and closes the journal. Safe
// without a store, and safe to call more than once.
func (s *Server) closeDurability() {
	if s.statsStop != nil {
		close(s.statsStop)
		s.statsWG.Wait()
		s.statsStop = nil
	}
	if s.journal != nil {
		s.journal.Append(store.OpStats, "", "", s.statsCheckpoint())
		s.journal.Compact()
		s.journal.Close()
		s.journal = nil
	}
}

// handleReadyz is GET /readyz: 200 once a servable live slot exists,
// 503 while recovery is still replaying, the live slot is degraded, or
// the server is draining. Distinct from /healthz (process liveness) so
// rolling restarts hold traffic until the journal replay has finished.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, code := "ready", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case !s.ready.Load():
		status, code = "no live slot", http.StatusServiceUnavailable
	}
	version := ""
	if si, ok := s.slot(registry.Live); ok {
		version = si.artifact.Version()
	}
	body := struct {
		Status   string          `json:"status"`
		Version  string          `json:"version,omitempty"`
		Recovery *RecoveryReport `json:"recovery,omitempty"`
	}{status, version, s.recovery}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}
