package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/nids"
)

// fakeClock is the breaker's time seam for deterministic cool-down tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBreakerLifecycle walks the full state machine on a fake clock:
// closed absorbs sub-threshold failures, the threshold trips it open, open
// fast-fails until the cool-down, half-open admits exactly one probe at a
// time, a probe failure re-opens, and enough probe successes re-close.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := &Breaker{FailureThreshold: 3, OpenFor: time.Second, HalfOpenSuccesses: 2, now: clk.now}

	// Sub-threshold failures with a success in between never trip.
	for _, ok := range []bool{false, false, true, false, false} {
		if !b.Allow() {
			t.Fatal("closed breaker refused a call")
		}
		b.Record(ok)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %s after interleaved failures, want closed", st)
	}

	// A third consecutive failure trips it.
	if !b.Allow() {
		t.Fatal("closed breaker refused the tripping call")
	}
	b.Record(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state %s after threshold failures, want open", st)
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens() = %d, want 1", got)
	}

	// Open: everything fast-fails until the cool-down elapses.
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the cool-down")
	}
	if got := b.ShortCircuits(); got != 1 {
		t.Fatalf("ShortCircuits() = %d, want 1", got)
	}

	// Cool-down over: exactly one probe at a time.
	clk.advance(time.Second)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state %s after cool-down, want half-open", st)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the first probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe failure re-opens (and re-arms the cool-down).
	b.Record(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state %s after failed probe, want open", st)
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens() = %d after re-open, want 2", got)
	}

	// Recover: two successful probes (HalfOpenSuccesses) re-close.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("half-open breaker refused probe %d", i)
		}
		b.Record(true)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %s after successful probes, want closed", st)
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused a call")
	}
	b.Record(true)
}

// TestBreakerZeroValueDefaults checks a zero-value breaker works with the
// documented defaults (threshold 5) rather than tripping instantly.
func TestBreakerZeroValueDefaults(t *testing.T) {
	b := &Breaker{}
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("call %d refused", i)
		}
		b.Record(false)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %s after 4 failures, default threshold is 5", st)
	}
	b.Allow()
	b.Record(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state %s after 5 failures, want open", st)
	}
}

// TestClientDefaultTimeout pins the satellite fix: a Client without its
// own *http.Client gets DefaultClientTimeout, never an unbounded wait.
func TestClientDefaultTimeout(t *testing.T) {
	c := NewClient("http://127.0.0.1:0")
	if got := c.http().Timeout; got != DefaultClientTimeout {
		t.Fatalf("default client timeout = %v, want %v", got, DefaultClientTimeout)
	}
	own := &http.Client{Timeout: time.Second}
	c.HTTP = own
	if c.http() != own {
		t.Fatal("supplied *http.Client was not used")
	}
}

// scriptedServer is a minimal scoring endpoint whose health is a switch:
// unhealthy answers `status`, healthy answers well-formed verdicts (and
// model info), counting every request that reaches it.
type scriptedServer struct {
	hits    atomic.Int64
	failing atomic.Bool
	status  int
}

func (ss *scriptedServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ss.hits.Add(1)
		if ss.failing.Load() {
			http.Error(w, "injected failure", ss.status)
			return
		}
		switch r.URL.Path {
		case "/v1/model":
			json.NewEncoder(w).Encode(ModelInfo{Model: "scripted", Version: "v1"})
		case "/v1/detect-batch", "/v2/detect-batch":
			var req detectBatchRequest
			json.NewDecoder(r.Body).Decode(&req)
			resp := detectBatchResponse{ModelVersion: "v1", Verdicts: make([]VerdictJSON, len(req.Records))}
			json.NewEncoder(w).Encode(resp)
		default:
			json.NewEncoder(w).Encode(struct{}{})
		}
	})
}

// TestClientRetriesIdempotentCalls checks the retry loop: transient 503s
// on a scoring call are retried with backoff until the server recovers,
// within MaxAttempts.
func TestClientRetriesIdempotentCalls(t *testing.T) {
	ss := &scriptedServer{status: http.StatusServiceUnavailable}
	var failLeft atomic.Int64
	failLeft.Store(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failLeft.Add(-1) >= 0 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		ss.handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxAttempts: 3, RetryBase: time.Millisecond}
	recs := []*data.Record{{Numeric: []float64{1}}}
	verdicts, version, err := c.Score(recs)
	if err != nil {
		t.Fatalf("scoring did not survive 2 transient 503s: %v", err)
	}
	if version != "v1" || len(verdicts) != 1 {
		t.Fatalf("got version %q, %d verdicts", version, len(verdicts))
	}
}

// TestClientRetriesTransportErrors checks a dead-network fault (injected
// via chaos.Transport) is retried and the call recovers once the fault
// clears.
func TestClientRetriesTransportErrors(t *testing.T) {
	ss := &scriptedServer{}
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	fp := &chaos.FailPoint{}
	fp.FailNext(2)
	c := &Client{
		BaseURL:     ts.URL,
		HTTP:        &http.Client{Transport: &chaos.Transport{Fail: fp}},
		MaxAttempts: 3,
		RetryBase:   time.Millisecond,
	}
	info, err := c.Model()
	if err != nil {
		t.Fatalf("GET did not survive 2 injected transport faults: %v", err)
	}
	if info.Model != "scripted" {
		t.Fatalf("got model %q", info.Model)
	}
	if n := ss.hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 (faults never arrive)", n)
	}
}

// TestClientNeverRetriesMutatingCalls pins the idempotency split: promote
// (and every control-plane mutation) is attempted exactly once even when
// it fails with a retryable-looking status — promote twice is not promote
// once.
func TestClientNeverRetriesMutatingCalls(t *testing.T) {
	ss := &scriptedServer{status: http.StatusInternalServerError}
	ss.failing.Store(true)
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxAttempts: 5, RetryBase: time.Millisecond}
	if _, err := c.Promote(); err == nil {
		t.Fatal("promote against a failing server succeeded")
	}
	if n := ss.hits.Load(); n != 1 {
		t.Fatalf("failing promote was sent %d times, want exactly 1", n)
	}
}

// TestClientBreakerFastFailsAndRecovers is the client-resilience e2e: hard
// failures trip the breaker, further calls fast-fail with ErrBreakerOpen
// without touching the server, and once the server heals a half-open probe
// restores service.
func TestClientBreakerFastFailsAndRecovers(t *testing.T) {
	ss := &scriptedServer{status: http.StatusInternalServerError}
	ss.failing.Store(true)
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	br := &Breaker{FailureThreshold: 3, OpenFor: 50 * time.Millisecond}
	c := &Client{BaseURL: ts.URL, MaxAttempts: 1, RetryBase: time.Millisecond, Breaker: br}

	for i := 0; i < 3; i++ {
		if _, err := c.Model(); err == nil {
			t.Fatalf("call %d against a failing server succeeded", i)
		}
	}
	if st := br.State(); st != BreakerOpen {
		t.Fatalf("breaker %s after %d hard failures, want open", st, 3)
	}
	sent := ss.hits.Load()
	if _, err := c.Model(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker call error = %v, want ErrBreakerOpen", err)
	}
	if n := ss.hits.Load(); n != sent {
		t.Fatalf("open breaker let %d requests through", n-sent)
	}
	if br.ShortCircuits() == 0 {
		t.Fatal("no short-circuits counted")
	}

	// Heal the server, wait out the cool-down: the next call is the probe
	// and must both succeed and re-close the breaker.
	ss.failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Model(); err != nil {
		t.Fatalf("half-open probe failed against a healthy server: %v", err)
	}
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}
}

// TestBreakerIgnoresSheddingStatuses pins the status classification: 429
// and 503 are a live server shedding load — retryable, but never breaker
// evidence. Only hard 5xx and transport faults may trip it.
func TestBreakerIgnoresSheddingStatuses(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		ss := &scriptedServer{status: status}
		ss.failing.Store(true)
		ts := httptest.NewServer(ss.handler())
		br := &Breaker{FailureThreshold: 2, OpenFor: time.Hour}
		c := &Client{BaseURL: ts.URL, MaxAttempts: 1, RetryBase: time.Millisecond, Breaker: br}
		for i := 0; i < 5; i++ {
			if _, err := c.Model(); err == nil {
				t.Fatalf("status %d: call %d succeeded", status, i)
			}
		}
		if st := br.State(); st != BreakerClosed {
			t.Fatalf("status %d tripped the breaker to %s", status, st)
		}
		ts.Close()
	}
}

// TestRemoteDetectorDegradesUnderBreaker proves the pipeline-facing
// guarantee: with the server down and the breaker open, DetectBatch
// returns promptly with Failed verdicts and a counted error — dropped
// flows, never a hang and never a panic.
func TestRemoteDetectorDegradesUnderBreaker(t *testing.T) {
	ss := &scriptedServer{status: http.StatusBadGateway}
	ss.failing.Store(true)
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	br := &Breaker{FailureThreshold: 1, OpenFor: time.Hour}
	det := &RemoteDetector{Client: &Client{BaseURL: ts.URL, MaxAttempts: 1, RetryBase: time.Millisecond, Breaker: br}}

	recs := []*data.Record{{Numeric: []float64{1}}, {Numeric: []float64{2}}}
	verdicts := make([]nids.Verdict, len(recs))
	start := time.Now()
	for i := 0; i < 4; i++ {
		det.DetectBatch(recs, verdicts)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("4 failed batches took %v — the breaker should fast-fail", waited)
	}
	for i, v := range verdicts {
		if !v.Failed {
			t.Fatalf("verdict %d not marked Failed", i)
		}
	}
	if got := det.Errors(); got != 4 {
		t.Fatalf("Errors() = %d, want 4", got)
	}
	if br.ShortCircuits() == 0 {
		t.Fatal("breaker never short-circuited: every batch hit the dead server")
	}
}

// TestRetryableClassification pins the status partition the retry loop
// runs on.
func TestRetryableClassification(t *testing.T) {
	for status, want := range map[int]bool{
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: true,
		http.StatusBadGateway:          true,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
		http.StatusBadRequest:          false,
		http.StatusNotFound:            false,
		http.StatusConflict:            false,
		http.StatusUnprocessableEntity: false,
	} {
		if got := retryable(&statusError{status: status}); got != want {
			t.Errorf("retryable(%d) = %v, want %v", status, got, want)
		}
	}
	if !retryable(errors.New("connection refused")) {
		t.Error("transport error not retryable")
	}
	if retryable(ErrBreakerOpen) {
		t.Error("ErrBreakerOpen retryable: the cool-down outlives any backoff")
	}
}

// TestBackoffHonorsRetryAfter checks a server-sent Retry-After floors the
// computed backoff.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	c := &Client{RetryBase: time.Millisecond}
	last := &statusError{status: http.StatusServiceUnavailable, retryAfter: time.Second}
	for i := 1; i <= 3; i++ {
		if d := c.backoffFor(i, last); d < time.Second {
			t.Fatalf("attempt %d backoff %v under the server's Retry-After of 1s", i, d)
		}
	}
	// Without Retry-After the jittered exponential stays near its base.
	if d := c.backoffFor(1, errors.New("x")); d > 100*time.Millisecond {
		t.Fatalf("first backoff %v with a 1ms base", d)
	}
}
