package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/nids"
)

// Config tunes the scoring server.
type Config struct {
	// Replicas is the number of independent detector replicas (and scoring
	// workers). Each replica owns its network buffers and lock, so
	// concurrent batches never contend on one mutex. Default 2.
	Replicas int
	// MaxBatch is the dynamic batcher's flush size. Default 32.
	MaxBatch int
	// MaxWait is the dynamic batcher's flush deadline: a batch never waits
	// longer than this for co-travelers. Default 2ms.
	MaxWait time.Duration
	// QueueDepth bounds the record queue; requests block (backpressure)
	// when it fills. Default 1024.
	QueueDepth int
	// MaxBodyBytes caps every POST request body; larger bodies get 413
	// before the decoder buffers them, so one oversized request cannot
	// exhaust server memory. Default 4 MiB (~2000 NSL-KDD-shaped records
	// per batch).
	MaxBodyBytes int64
	// Engine selects the scoring implementation: "f32" (default) runs the
	// compiled float32 inference plan (internal/infer) lowered from the
	// artifact at load time; "f64" runs the float64 training graph through
	// nids.ModelDetector — the A/B escape hatch.
	Engine string
}

// Engine values accepted by Config.Engine.
const (
	EngineF32 = "f32"
	EngineF64 = "f64"
)

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Engine == "" {
		c.Engine = EngineF32
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	return c
}

// modelState is one immutable loaded-model generation: the artifact plus
// its replica shard. Hot-reload builds a whole new state and swaps the
// pointer; batches already dispatched keep scoring on the generation they
// grabbed, so in-flight work finishes on the old model.
type modelState struct {
	artifact  *Artifact
	detectors []nids.BatchDetector
	loadedAt  time.Time
}

func newModelState(a *Artifact, replicas int, engine string) (*modelState, error) {
	st := &modelState{artifact: a, loadedAt: time.Now()}
	for i := 0; i < replicas; i++ {
		var det nids.BatchDetector
		var err error
		switch engine {
		case EngineF32:
			// The first replica triggers the one-time lowering; the rest (and
			// any pre-validation done before publish) share the cached plan.
			det, err = a.NewInferDetector()
		case EngineF64:
			det, err = a.NewDetector()
		default:
			return nil, fmt.Errorf("serve: unknown engine %q (want %q or %q)", engine, EngineF32, EngineF64)
		}
		if err != nil {
			return nil, err
		}
		st.detectors = append(st.detectors, det)
	}
	return st, nil
}

// Server is the HTTP scoring service. Construct with New, mount Handler
// on an http.Server, and shut down in order: stop the listener first
// (http.Server.Shutdown / httptest.Server.Close, which wait for in-flight
// handlers), then Close to drain the batcher and workers.
type Server struct {
	cfg      Config
	state    atomic.Pointer[modelState]
	b        *batcher
	m        serverMetrics
	mux      *http.ServeMux
	workerWG sync.WaitGroup
	draining atomic.Bool
	reloadMu sync.Mutex
	closed   sync.Once
}

// New builds a server around a loaded artifact and starts its scoring
// workers.
func New(a *Artifact, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	st, err := newModelState(a, cfg.Replicas, cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.state.Store(st)
	s.b = newBatcher(batcherConfig{MaxBatch: cfg.MaxBatch, MaxWait: cfg.MaxWait, QueueDepth: cfg.QueueDepth})
	for i := 0; i < cfg.Replicas; i++ {
		s.workerWG.Add(1)
		go s.worker(i)
	}
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/detect-batch", s.handleDetectBatch)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Artifact returns the currently loaded artifact.
func (s *Server) Artifact() *Artifact { return s.state.Load().artifact }

// Reload atomically swaps in a new artifact: fresh replicas are built
// first (so a bad artifact never disturbs serving), then the state pointer
// flips. Requests dispatched before the flip finish on the old model;
// requests after it score on the new one. No request is ever dropped.
//
// The new artifact must have the running model's feature shape (same
// numeric and categorical feature counts): records are validated at
// accept time but may be scored by a generation loaded later, and a
// shape-changed encoder would mis-encode or panic on such in-flight
// records. Shape-changing upgrades need a fresh server (blue/green).
func (s *Server) Reload(a *Artifact) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.state.Load().artifact.Schema
	if a.Schema.NumNumeric() != old.NumNumeric() || len(a.Schema.Categorical) != len(old.Categorical) {
		return fmt.Errorf("serve: reload artifact has %d numeric + %d categorical features, running model has %d + %d — shape-changing reloads are not supported",
			a.Schema.NumNumeric(), len(a.Schema.Categorical), old.NumNumeric(), len(old.Categorical))
	}
	st, err := newModelState(a, s.cfg.Replicas, s.cfg.Engine)
	if err != nil {
		return err
	}
	s.state.Store(st)
	s.m.reloads.Add(1)
	return nil
}

// BeginDrain makes the server answer new scoring requests with 503 while
// in-flight ones complete — the first step of a graceful shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close drains and stops the scoring workers. Call it only after the HTTP
// listener has stopped accepting (so no handler can still enqueue);
// queued records are all scored before Close returns.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.draining.Store(true)
		s.b.close()
		s.workerWG.Wait()
	})
}

// worker is one replica's scoring loop: it pulls flushed batches, scores
// them on its shard of the current model generation, and fans verdicts
// back out to the originating requests.
func (s *Server) worker(i int) {
	defer s.workerWG.Done()
	recs := make([]*data.Record, 0, s.cfg.MaxBatch)
	verdicts := make([]nids.Verdict, s.cfg.MaxBatch)
	for batch := range s.b.batches {
		st := s.state.Load()
		det := st.detectors[i%len(st.detectors)]
		recs = recs[:0]
		for j := range batch {
			recs = append(recs, batch[j].rec)
		}
		if len(batch) > len(verdicts) {
			verdicts = make([]nids.Verdict, len(batch))
		}
		out := verdicts[:len(batch)]
		det.DetectBatch(recs, out)
		attacks := int64(0)
		for j := range batch {
			*batch[j].out = out[j]
			if out[j].IsAttack {
				attacks++
			}
			batch[j].wg.Done()
		}
		s.m.batches.Add(1)
		s.m.batchRecords.Add(int64(len(batch)))
		s.m.attacks.Add(attacks)
		s.b.putSlab(batch)
	}
}

// score funnels a request's records through the batcher and blocks until
// every verdict is written. Pairing is positional: item i carries a
// pointer to verdicts[i], so however the dispatcher cuts batches — even
// splitting one request across model generations mid-reload — each record
// gets its own verdict.
func (s *Server) score(recs []data.Record) []nids.Verdict {
	verdicts := make([]nids.Verdict, len(recs))
	var wg sync.WaitGroup
	wg.Add(len(recs))
	for i := range recs {
		s.b.enqueue(item{rec: &recs[i], out: &verdicts[i], wg: &wg})
	}
	wg.Wait()
	return verdicts
}

// RecordJSON is the wire form of one flow record.
type RecordJSON struct {
	Numeric     []float64 `json:"numeric"`
	Categorical []string  `json:"categorical"`
}

// VerdictJSON is the wire form of one detector verdict.
type VerdictJSON struct {
	IsAttack  bool    `json:"is_attack"`
	Class     int     `json:"class"`
	ClassName string  `json:"class_name,omitempty"`
	Score     float64 `json:"score"`
}

type detectBatchRequest struct {
	Records []RecordJSON `json:"records"`
}

type detectBatchResponse struct {
	ModelVersion string        `json:"model_version"`
	Verdicts     []VerdictJSON `json:"verdicts"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) httpError(w http.ResponseWriter, status int, format string, args ...any) {
	s.m.requestErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody reads exactly one JSON value from the request body into v,
// capped at cfg.MaxBodyBytes. Oversized bodies answer 413 and malformed or
// trailing-garbage bodies 400 — in both cases the response has been written
// and the caller must return. The cap is installed via http.MaxBytesReader,
// which also closes the connection on overflow so a huge body is not
// drained.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return false
	}
	// Reject trailing content after the JSON value: a concatenated second
	// payload silently ignored is a smuggling/confusion hazard. Only a
	// clean EOF is acceptable here.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.httpError(w, http.StatusBadRequest, "unexpected data after JSON body")
		return false
	}
	return true
}

// toRecords validates the wire records against the schema and converts
// them. Validation uses the generation current at accept time; scoring may
// land on a newer generation mid-reload, which is safe because Reload
// rejects artifacts that change the feature shape, and within a fixed
// shape the encoder zero-fills unknown categorical values.
func toRecords(schema data.Schema, in []RecordJSON) ([]data.Record, error) {
	nNum, nCat := schema.NumNumeric(), len(schema.Categorical)
	out := make([]data.Record, len(in))
	for i, r := range in {
		if len(r.Numeric) != nNum {
			return nil, fmt.Errorf("record %d: %d numeric values, model expects %d", i, len(r.Numeric), nNum)
		}
		if len(r.Categorical) != nCat {
			return nil, fmt.Errorf("record %d: %d categorical values, model expects %d", i, len(r.Categorical), nCat)
		}
		out[i] = data.Record{Numeric: r.Numeric, Categorical: r.Categorical}
	}
	return out, nil
}

func toVerdictsJSON(schema data.Schema, vs []nids.Verdict) []VerdictJSON {
	out := make([]VerdictJSON, len(vs))
	for i, v := range vs {
		vj := VerdictJSON{IsAttack: v.IsAttack, Class: v.Class, Score: v.Score}
		if v.Class >= 0 && v.Class < len(schema.ClassNames) {
			vj.ClassName = schema.ClassNames[v.Class]
		}
		out[i] = vj
	}
	return out
}

// acceptScoring centralizes method/drain gating for the scoring endpoints.
func (s *Server) acceptScoring(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	if s.draining.Load() {
		s.httpError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	return true
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if !s.acceptScoring(w, r) {
		return
	}
	s.m.detectRequests.Add(1)
	start := time.Now()
	var rec RecordJSON
	if !s.decodeBody(w, r, &rec) {
		return
	}
	st := s.state.Load()
	recs, err := toRecords(st.artifact.Schema, []RecordJSON{rec})
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	verdicts := s.score(recs)
	s.m.records.Add(1)
	s.m.latency.observe(time.Since(start))
	writeJSON(w, struct {
		ModelVersion string      `json:"model_version"`
		Verdict      VerdictJSON `json:"verdict"`
	}{st.artifact.Version(), toVerdictsJSON(st.artifact.Schema, verdicts)[0]})
}

func (s *Server) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	if !s.acceptScoring(w, r) {
		return
	}
	s.m.batchRequests.Add(1)
	start := time.Now()
	var req detectBatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		s.httpError(w, http.StatusBadRequest, "empty records")
		return
	}
	st := s.state.Load()
	recs, err := toRecords(st.artifact.Schema, req.Records)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	verdicts := s.score(recs)
	s.m.records.Add(int64(len(recs)))
	s.m.latency.observe(time.Since(start))
	writeJSON(w, detectBatchResponse{
		ModelVersion: st.artifact.Version(),
		Verdicts:     toVerdictsJSON(st.artifact.Schema, verdicts),
	})
}

// ModelInfo describes the loaded model for /v1/model.
type ModelInfo struct {
	Model      string   `json:"model"`
	Version    string   `json:"version"`
	Engine     string   `json:"engine"`
	Features   int      `json:"features"`
	Classes    int      `json:"classes"`
	ClassNames []string `json:"class_names"`
	Replicas   int      `json:"replicas"`
	MaxBatch   int      `json:"max_batch"`
	MaxWaitMS  float64  `json:"max_wait_ms"`
	LoadedAt   string   `json:"loaded_at"`
}

// Info returns the current model's description.
func (s *Server) Info() ModelInfo {
	st := s.state.Load()
	return ModelInfo{
		Model:      st.artifact.ModelName,
		Version:    st.artifact.Version(),
		Engine:     s.cfg.Engine,
		Features:   st.artifact.Features(),
		Classes:    st.artifact.Classes(),
		ClassNames: st.artifact.Schema.ClassNames,
		Replicas:   s.cfg.Replicas,
		MaxBatch:   s.cfg.MaxBatch,
		MaxWaitMS:  float64(s.cfg.MaxWait) / float64(time.Millisecond),
		LoadedAt:   st.loadedAt.UTC().Format(time.RFC3339),
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Info())
}

type reloadRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req reloadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		s.httpError(w, http.StatusBadRequest, "body must be {\"path\": \"artifact file\"}")
		return
	}
	a, err := LoadArtifactFile(req.Path)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, "load artifact: %v", err)
		return
	}
	if err := s.Reload(a); err != nil {
		s.httpError(w, http.StatusConflict, "reload: %v", err)
		return
	}
	writeJSON(w, s.Info())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Status  string `json:"status"`
		Model   string `json:"model"`
		Version string `json:"version"`
	}{status, st.artifact.ModelName, st.artifact.Version()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.m.writeProm(w, s.b.queueLen(), st.artifact.ModelName, st.artifact.Version())
}
