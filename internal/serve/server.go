package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/nids"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/wire"
)

// Config tunes the scoring server.
type Config struct {
	// Replicas is the number of independent detector replicas (and scoring
	// workers) per model slot. Each replica owns its network buffers and
	// lock, so concurrent batches never contend on one mutex. Default 2.
	Replicas int
	// MaxBatch is the dynamic batcher's flush size. Default 32.
	MaxBatch int
	// MaxWait is the dynamic batcher's flush deadline: a batch never waits
	// longer than this for co-travelers. Default 2ms.
	MaxWait time.Duration
	// QueueDepth bounds each slot's record queue; requests block
	// (backpressure) when it fills. Default 1024.
	QueueDepth int
	// MaxBodyBytes caps every POST request body; larger bodies get 413
	// before the decoder buffers them, so one oversized request cannot
	// exhaust server memory. Default 4 MiB (~2000 NSL-KDD-shaped records
	// per batch).
	MaxBodyBytes int64
	// Engine selects the scoring implementation: "f32" (default) runs the
	// compiled float32 inference plan (internal/infer) lowered from the
	// artifact at load time; "f64" runs the float64 training graph through
	// nids.ModelDetector — the A/B escape hatch.
	Engine string
	// MirrorOff disables shadow mirroring: by default, every record scored
	// against the live slot is also (asynchronously, best-effort)
	// duplicated onto the shadow slot when one is loaded with a matching
	// feature layout, accumulating per-slot agreement counters.
	MirrorOff bool
	// MirrorConcurrency bounds how many mirrored requests may be in flight
	// at once; beyond it mirrors are dropped (and counted), never queued —
	// shadow evaluation must not be able to stall live serving. Default 16.
	MirrorConcurrency int
	// RequestTimeout is the scoring deadline budget: each scoring request
	// runs under a context that expires this long after the handler
	// accepts it (clients may shorten — never extend — it per request via
	// the X-Timeout-Ms header). Records whose deadline expires while they
	// wait for queue space or a replica are shed, never scored, and the
	// request answers 503 with Retry-After. Default 5s; negative disables
	// the server-side deadline (requests are then bounded only by client
	// disconnect).
	RequestTimeout time.Duration
	// AdmitWatermark is the admission controller's queue-depth threshold:
	// a scoring request whose slot already has this many records queued is
	// fast-failed with 429 and Retry-After instead of parking the handler
	// goroutine behind a saturated batcher. Default QueueDepth (admit
	// until the queue is actually full); lower it to start shedding before
	// the queue saturates. Negative disables admission control.
	AdmitWatermark int
	// Chaos, when non-nil, injects scoring faults (per-replica added
	// latency) into every slot's workers — the fault-injection seam the
	// chaos e2e suite and -chaos-score-delay drive. Leave nil in
	// production.
	Chaos *chaos.Injector
	// TraceCap bounds the in-memory ring of completed request traces served
	// at /debug/traces (oldest overwritten once full; rounded up to a power
	// of two). Default 512.
	TraceCap int
	// ObsOff disables per-request tracing and per-stage latency timing —
	// the A/B switch for measuring observability overhead. Aggregate
	// counters, the request-latency histogram, and runtime telemetry stay
	// on; /debug/traces answers 404 and the stage histogram families are
	// absent from /metrics.
	ObsOff bool
	// Logger receives structured serving-plane logs (slot lifecycle,
	// request errors); nil silences them.
	Logger *obs.Logger
	// Store, when non-nil, makes the control plane durable: every loaded
	// artifact is persisted to the content-addressed store and every slot
	// lifecycle op is journaled before its caller is answered, so a
	// restarted process recovers the exact slot→version topology (via
	// Recover). Nil disables all persistence — the pre-durability
	// behavior, and the default for tests and embedded use.
	Store *store.Store
	// StatsInterval is how often per-slot counters are checkpointed into
	// the journal (so a crash rewinds them by at most this much). Only
	// meaningful with Store set. Default 5s; negative disables periodic
	// checkpoints (lifecycle ops still carry them).
	StatsInterval time.Duration
	// WirePipeline is the binary transport's per-connection worker count:
	// how many pipelined score frames one wire connection may have in
	// flight through the scoring path at once. Default 8.
	WirePipeline int
}

// Engine values accepted by Config.Engine.
const (
	EngineF32 = "f32"
	EngineF64 = "f64"
)

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Engine == "" {
		c.Engine = EngineF32
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.MirrorConcurrency <= 0 {
		c.MirrorConcurrency = 16
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.AdmitWatermark == 0 {
		c.AdmitWatermark = c.QueueDepth
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 512
	}
	if c.StatsInterval == 0 {
		c.StatsInterval = 5 * time.Second
	}
	if c.WirePipeline <= 0 {
		c.WirePipeline = 8
	}
	return c
}

// Server is the HTTP scoring service, a multi-model registry of named
// slots (live, shadow, canary tags) each serving one independently loaded
// artifact through its own batcher and replica shard. The /v2 surface is
// the registry API (list, per-tag load/score, shadow→live promotion,
// rollback); the /v1 endpoints are thin delegates onto the live slot, kept
// for existing clients.
//
// Construct with New, mount Handler on an http.Server, and shut down in
// order: stop the listener first (http.Server.Shutdown /
// httptest.Server.Close, which wait for in-flight handlers), then Close to
// drain the batchers and workers.
type Server struct {
	cfg       Config
	reg       *registry.Registry
	m         *serverMetrics
	mux       *http.ServeMux
	traces    *obs.TraceRing // nil under Config.ObsOff
	log       *obs.Logger
	started   time.Time
	draining  atomic.Bool
	adminMu   sync.Mutex // serializes load/reload/promote/rollback/unload
	retireWG  sync.WaitGroup
	mirrorWG  sync.WaitGroup
	mirrorSem chan struct{}
	closed    sync.Once

	// Binary transport plane (see wire.go): the open wire listeners and
	// connections, and the WaitGroup ShutdownWire drains.
	wireMu    sync.Mutex
	wireLns   map[net.Listener]struct{}
	wireConns map[*wireServerConn]struct{}
	wireWG    sync.WaitGroup

	// Durable control plane (nil/zero without Config.Store): the CAS the
	// artifacts persist into, the lifecycle journal, what its replay
	// found, readiness (a servable live slot exists), and the recovery
	// report when the server was built by Recover.
	store      *store.Store
	journal    *store.Log
	replayInfo store.RecoverInfo
	ready      atomic.Bool
	recovery   *RecoveryReport
	statsStop  chan struct{}
	statsWG    sync.WaitGroup
}

// New builds a server with a in its live slot and starts the scoring
// workers. With Config.Store set, New means "start fresh with this
// artifact": any prior journaled topology is discarded (use Recover to
// restore one) and the initial live load is journaled like any other op.
func New(a *Artifact, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	if s.journal != nil {
		if err := s.journal.Reset(store.NewTopology()); err != nil {
			s.closeDurability()
			return nil, err
		}
	}
	if err := s.persistArtifact(a); err != nil {
		s.closeDurability()
		return nil, err
	}
	si, err := s.newInstance(a)
	if err != nil {
		s.closeDurability()
		return nil, err
	}
	if s.store != nil {
		s.store.Retain(a.Version())
	}
	if err := s.reg.Load(registry.Live, si); err != nil {
		s.closeDurability()
		return nil, err
	}
	s.journalAppend(store.OpLoad, registry.Live, a.Version())
	s.ready.Store(true)
	s.log.Info("model loaded", "slot", registry.Live, "version", a.Version(), "model", a.ModelName)
	return s, nil
}

// newServer builds everything but the model slots: metrics, routes, the
// registry with its retire hook, and — with Config.Store — the opened
// (and replayed) journal plus the periodic stats checkpointer. Both New
// and Recover start here.
func newServer(cfg Config) (*Server, error) {
	s := &Server{
		cfg:       cfg,
		m:         newServerMetrics(),
		mux:       http.NewServeMux(),
		log:       cfg.Logger,
		started:   time.Now(),
		mirrorSem: make(chan struct{}, cfg.MirrorConcurrency),
		store:     cfg.Store,
	}
	if !cfg.ObsOff {
		s.traces = obs.NewTraceRing(cfg.TraceCap)
	}
	s.reg = registry.New(func(inst registry.Instance) {
		// A displaced generation drains in the background: requests that
		// already enqueued onto it still get their verdicts (close flushes
		// the queue), and Close waits for these drains before returning.
		// Its CAS reference drops first (synchronously, so a load that
		// displaces a slot can GC the old artifact before returning).
		si := inst.(*slotInstance)
		s.releaseArtifact(si)
		s.retireWG.Add(1)
		go func() {
			defer s.retireWG.Done()
			si.scorer.close()
		}()
	})
	if s.store != nil {
		l, info, err := store.OpenLog(s.store.JournalDir())
		if err != nil {
			return nil, err
		}
		s.journal = l
		s.replayInfo = info
		if cfg.StatsInterval > 0 {
			s.statsStop = make(chan struct{})
			s.statsWG.Add(1)
			go s.statsFlusher()
		}
	}

	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/detect-batch", s.handleDetectBatch)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/v2/models", s.handleModels)
	s.mux.HandleFunc("/v2/models/", s.handleModelTag)
	s.mux.HandleFunc("/v2/load", s.handleLoad)
	s.mux.HandleFunc("/v2/detect", s.handleDetectV2)
	s.mux.HandleFunc("/v2/detect-batch", s.handleDetectBatchV2)
	s.mux.HandleFunc("/v2/promote", s.handlePromote)
	s.mux.HandleFunc("/v2/rollback", s.handleRollback)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/traces", s.handleTraces)
	return s, nil
}

// newInstance builds a ready slot instance (replicas + private batcher)
// for a. Nothing is registered: a failing artifact never disturbs serving.
func (s *Server) newInstance(a *Artifact) (*slotInstance, error) {
	sc, err := newScorer(a, s.cfg, s.m)
	if err != nil {
		return nil, err
	}
	return &slotInstance{
		artifact: a,
		scorer:   sc,
		loadedAt: time.Now(),
		wireFP:   wire.Fingerprint(a.Schema),
	}, nil
}

// slot resolves a tag to its loaded instance.
func (s *Server) slot(tag string) (*slotInstance, bool) {
	inst, _, ok := s.reg.Get(tag)
	if !ok {
		return nil, false
	}
	return inst.(*slotInstance), true
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model registry (read-side: tags, stats, history).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Artifact returns the live slot's artifact.
func (s *Server) Artifact() *Artifact {
	si, ok := s.slot(registry.Live)
	if !ok {
		return nil
	}
	return si.artifact
}

// LoadSlot builds fresh replicas for a and installs them under tag — the
// programmatic form of POST /v2/load. Loading into the live slot requires
// the identical feature layout as the running live model (use the shadow
// slot and Promote for schema evolution); any other tag accepts any valid
// artifact. The displaced generation, if any, finishes its in-flight work
// on its own replicas.
func (s *Server) LoadSlot(tag string, a *Artifact) error {
	if err := registry.ValidateTag(tag); err != nil {
		return err
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	// A version already deployed in some slot shares its artifact (and
	// thus its once-lowered plan) instead of lowering a second copy.
	a = s.dedupeArtifact(a)
	if tag == registry.Live {
		if live, ok := s.slot(registry.Live); ok && !a.Schema.SameFeatures(live.artifact.Schema) {
			return fmt.Errorf("serve: artifact's feature layout differs from the live model's (same-shaped swaps only; load into %q and promote for schema changes)", registry.Shadow)
		}
	}
	// Durability ordering: the artifact must be in the CAS (and retained,
	// so a concurrent retire's GC cannot sweep it) before the registry op
	// that references it.
	if err := s.persistArtifact(a); err != nil {
		return err
	}
	si, err := s.newInstance(a)
	if err != nil {
		return err
	}
	if s.store != nil {
		s.store.Retain(a.Version())
	}
	if err := s.reg.Load(tag, si); err != nil {
		if s.store != nil {
			s.store.Release(a.Version())
		}
		return err
	}
	s.journalAppend(store.OpLoad, tag, a.Version())
	if tag == registry.Live {
		s.ready.Store(true)
	}
	s.m.reloads.Add(1)
	s.log.Info("model loaded", "slot", tag, "version", a.Version(), "model", a.ModelName)
	return nil
}

// Reload atomically swaps a into the live slot — the /v1 compatibility
// form of LoadSlot("live", a). The previous live generation is retained
// for Rollback. In-flight requests finish on the generation they enqueued
// onto; no request is ever dropped.
func (s *Server) Reload(a *Artifact) error { return s.LoadSlot(registry.Live, a) }

// Promote atomically makes the shadow generation live (retaining the
// displaced live for Rollback) and empties the shadow slot. The promoted
// instance keeps its warm replicas and batcher — no rebuild, no lowering,
// no cold start.
func (s *Server) Promote() error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	inst, err := s.reg.Promote()
	if err == nil {
		s.journalAppend(store.OpPromote, registry.Live, inst.Version())
		s.ready.Store(true)
		s.log.Info("model promoted", "slot", registry.Live, "version", inst.Version())
	}
	return err
}

// Rollback restores the exact generation (and version) that was live
// before the last promotion or live load. The displaced live becomes the
// new rollback target, so Rollback twice rolls forward again.
func (s *Server) Rollback() error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	inst, err := s.reg.Rollback()
	if err == nil {
		s.journalAppend(store.OpRollback, registry.Live, inst.Version())
		s.log.Warn("model rolled back", "slot", registry.Live, "version", inst.Version())
	}
	return err
}

// Unload removes the model under tag (not live) and drains its replicas.
func (s *Server) Unload(tag string) error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	si, ok := s.slot(tag)
	if err := s.reg.Unload(tag); err != nil {
		return err
	}
	if ok {
		s.journalAppend(store.OpUnload, tag, si.artifact.Version())
	}
	return nil
}

// BeginDrain makes the server answer new scoring requests with 503 while
// in-flight ones complete — the first step of a graceful shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close drains and stops every slot's scoring workers. Call it only after
// the HTTP listener has stopped accepting (so no handler can still
// enqueue); queued records — including mirrored ones — are all scored
// before Close returns. With a store configured, a final stats
// checkpoint and a journal compaction land first, so a clean shutdown
// restarts from a one-line snapshot.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.draining.Store(true)
		s.ready.Store(false)
		// Wire connections still open (servers that never called
		// ShutdownWire) are force-closed: their in-flight requests must
		// finish before the scorers tear down.
		s.forceCloseWire()
		s.wireWG.Wait()
		s.closeDurability()
		// Mirror goroutines enqueue onto the shadow scorer; wait for them
		// before tearing the scorers down.
		s.mirrorWG.Wait()
		for _, inst := range s.reg.Drain() {
			inst.(*slotInstance).scorer.close()
		}
		s.retireWG.Wait()
	})
}

// scoreSlot resolves tag, validates the wire records against that slot's
// schema, and scores them on that slot's replicas — one generation end to
// end, under ctx's deadline. The overload path answers before any work
// queues: a slot whose queue is over the admission watermark fast-fails
// the whole request with 429 (records counted as shed), and a deadline
// that expires while records wait for queue space or a replica sheds
// them and answers 503 — both with Retry-After, both leaving /healthz
// untouched. If the slot is swapped mid-request (its scorer closed
// before every record was accepted), the request retries on the
// successor generation; records accepted before a swap are still scored
// by it, so nothing is dropped. On error the returned status is the HTTP
// code to answer.
func (s *Server) scoreSlot(ctx context.Context, tag string, wire []RecordJSON, tr *obs.Trace) ([]nids.Verdict, *slotInstance, int, error) {
	const maxAttempts = 4
	for attempt := 0; attempt < maxAttempts; attempt++ {
		admitStart := time.Now()
		si, ok := s.slot(tag)
		if !ok {
			return nil, nil, http.StatusNotFound, fmt.Errorf("no model loaded under tag %q", tag)
		}
		recs, err := toRecords(si.artifact.Schema, wire)
		if err != nil {
			return nil, nil, http.StatusBadRequest, err
		}
		tr.SetSlot(tag, si.artifact.Version())
		st := s.reg.StatsFor(tag)
		if wm := s.cfg.AdmitWatermark; wm > 0 && si.scorer.queueLen() >= wm {
			st.Shed.Add(int64(len(recs)))
			s.m.shed.Add(int64(len(recs)))
			return nil, nil, http.StatusTooManyRequests,
				fmt.Errorf("slot %q queue is over the admission watermark (%d queued, watermark %d); retry later", tag, si.scorer.queueLen(), wm)
		}
		if attempt == 0 {
			// Resolve + validate + watermark check; later attempts (slot
			// swapped mid-request, rare) are folded into queue_wait.
			tr.Span("admit", admitStart, time.Since(admitStart))
		}
		verdicts := make([]nids.Verdict, len(recs))
		// The expired tally is per attempt: a swap-aborted attempt's sheds
		// are retried wholesale on the successor, so only the attempt that
		// actually answers may account them.
		var expired atomic.Int64
		switch si.scorer.score(ctx, recs, verdicts, &expired, tr) {
		case submitClosed:
			continue // slot swapped mid-request: resolve again
		case submitExpired:
			n := expired.Load()
			st.DeadlineExpired.Add(n)
			s.m.deadlineExpired.Add(n)
			return nil, nil, http.StatusServiceUnavailable,
				fmt.Errorf("deadline expired while queued: %d of %d records shed; retry with more budget", n, len(recs))
		}
		st.Records.Add(int64(len(recs)))
		attacks := int64(0)
		for i := range verdicts {
			if verdicts[i].IsAttack {
				attacks++
			}
		}
		st.Attacks.Add(attacks)
		if tag == registry.Live {
			s.mirror(si, recs, verdicts, tr)
		}
		return verdicts, si, 0, nil
	}
	return nil, nil, http.StatusServiceUnavailable,
		fmt.Errorf("slot %q was replaced %d times mid-request; retry", tag, maxAttempts)
}

// scoreCtx derives the scoring deadline for one request: the handler's
// context (cancelled on client disconnect) bounded by RequestTimeout,
// further shortened — never extended — by an X-Timeout-Ms request header.
// The returned cancel must be called when scoring completes.
func (s *Server) scoreCtx(r *http.Request) (context.Context, context.CancelFunc) {
	budget := s.cfg.RequestTimeout
	if h := r.Header.Get("X-Timeout-Ms"); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; budget < 0 || d < budget {
				budget = d
			}
		}
	}
	if budget < 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), budget)
}

// traceFor assigns the request its ID — honoring an incoming
// X-Request-Id, generating one otherwise — echoes it on the response, and
// (when tracing is enabled) opens the request's trace. Returns nil under
// ObsOff; every consumer of the trace is nil-safe.
func (s *Server) traceFor(w http.ResponseWriter, r *http.Request) *obs.Trace {
	id := r.Header.Get(obs.RequestIDHeader)
	if id == "" {
		id = obs.NewID()
	}
	w.Header().Set(obs.RequestIDHeader, id)
	if s.traces == nil {
		return nil
	}
	return obs.NewTrace(id, r.URL.Path)
}

// putTrace seals tr with the request's outcome and publishes it to the
// /debug/traces ring. Nil traces (ObsOff) are ignored.
func (s *Server) putTrace(tr *obs.Trace, status int, errMsg string) {
	if tr == nil {
		return
	}
	tr.Finish(status, errMsg)
	s.traces.Put(tr)
}

// retryAfter marks an overload rejection as retryable: 429 (admission
// shed) and 503 (deadline shed, drain, swap churn) tell well-behaved
// clients when to come back.
func retryAfter(w http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
}

// mirror duplicates a live request onto the shadow slot, asynchronously
// and best-effort: a missing shadow, a different feature layout, a full
// shadow queue, or more than MirrorConcurrency mirrors already in flight
// all drop the mirror (counted) rather than delay anything. Completed
// mirrors accumulate the shadow slot's records/attacks counters and the
// per-record agreement split against live's verdicts — the side-by-side
// evidence a promotion decision reads. With tracing on, each mirror gets
// its own trace child-linked (ParentID) to the live request that spawned
// it: the mirror outlives the parent's response, so it cannot share the
// parent's sealed trace.
func (s *Server) mirror(live *slotInstance, recs []data.Record, liveVerdicts []nids.Verdict, parent *obs.Trace) {
	if s.cfg.MirrorOff {
		return
	}
	sh, ok := s.slot(registry.Shadow)
	if !ok {
		return
	}
	stats := s.reg.StatsFor(registry.Shadow)
	if !sh.artifact.Schema.SameFeatures(live.artifact.Schema) {
		// A schema-evolving shadow cannot score live-shaped records; it is
		// staged for promotion, not comparison.
		stats.MirrorDropped.Add(int64(len(recs)))
		return
	}
	select {
	case s.mirrorSem <- struct{}{}:
	default:
		stats.MirrorDropped.Add(int64(len(recs)))
		return
	}
	// SameFeatures deliberately ignores class names, so the two models may
	// label incompatible class spaces; comparing raw class indices across
	// them would count two "dos" verdicts as disagreement. Fall back to
	// attack/normal agreement — always comparable — unless the class lists
	// match exactly.
	classComparable := sameClasses(live.artifact.Schema.ClassNames, sh.artifact.Schema.ClassNames)
	var child *obs.Trace
	if s.traces != nil {
		child = obs.NewTrace(obs.NewID(), "mirror")
		if parent != nil {
			child.ParentID = parent.ID
		}
		child.Records = len(recs)
		child.SetSlot(registry.Shadow, sh.artifact.Version())
	}
	s.mirrorWG.Add(1)
	go func() {
		defer func() {
			<-s.mirrorSem
			s.mirrorWG.Done()
		}()
		verdicts := make([]nids.Verdict, len(recs))
		if !sh.scorer.tryScore(recs, verdicts, child) {
			stats.MirrorDropped.Add(int64(len(recs)))
			s.putTrace(child, http.StatusServiceUnavailable, "mirror dropped: shadow queue full or slot swapped")
			return
		}
		s.putTrace(child, http.StatusOK, "")
		stats.Mirrored.Add(int64(len(recs)))
		stats.Records.Add(int64(len(recs)))
		var attacks, agree int64
		for i := range verdicts {
			if verdicts[i].IsAttack {
				attacks++
			}
			if verdicts[i].IsAttack == liveVerdicts[i].IsAttack &&
				(!classComparable || verdicts[i].Class == liveVerdicts[i].Class) {
				agree++
			}
		}
		stats.Attacks.Add(attacks)
		stats.Agreements.Add(agree)
		stats.Disagreements.Add(int64(len(recs)) - agree)
	}()
}

// sameClasses reports whether two class-name lists are identical (same
// labels, same order — i.e. class indices mean the same thing).
func sameClasses(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RecordJSON is the wire form of one flow record.
type RecordJSON struct {
	Numeric     []float64 `json:"numeric"`
	Categorical []string  `json:"categorical"`
}

// VerdictJSON is the wire form of one detector verdict.
type VerdictJSON struct {
	IsAttack  bool    `json:"is_attack"`
	Class     int     `json:"class"`
	ClassName string  `json:"class_name,omitempty"`
	Score     float64 `json:"score"`
}

type detectBatchRequest struct {
	Records []RecordJSON `json:"records"`
}

type detectBatchResponse struct {
	ModelVersion string        `json:"model_version"`
	Tag          string        `json:"tag,omitempty"`
	Verdicts     []VerdictJSON `json:"verdicts"`
}

type detectResponse struct {
	ModelVersion string      `json:"model_version"`
	Tag          string      `json:"tag,omitempty"`
	Verdict      VerdictJSON `json:"verdict"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RequestID echoes the request's trace ID so a client error report can
	// be joined against /debug/traces and the server logs.
	RequestID string `json:"request_id,omitempty"`
}

func (s *Server) httpError(w http.ResponseWriter, status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	id := w.Header().Get(obs.RequestIDHeader)
	if status >= 500 {
		s.m.requestErrors5xx.Add(1)
		s.log.Warn("request error", "status", status, "request_id", id, "error", msg)
	} else {
		s.m.requestErrors4xx.Add(1)
		s.log.Debug("request rejected", "status", status, "request_id", id, "error", msg)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg, RequestID: id})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody reads exactly one JSON value from the request body into v,
// capped at cfg.MaxBodyBytes. Oversized bodies answer 413 and malformed or
// trailing-garbage bodies 400 — in both cases the response has been written
// and the caller must return. The cap is installed via http.MaxBytesReader,
// which also closes the connection on overflow so a huge body is not
// drained.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return false
	}
	// Reject trailing content after the JSON value: a concatenated second
	// payload silently ignored is a smuggling/confusion hazard. Only a
	// clean EOF is acceptable here.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.httpError(w, http.StatusBadRequest, "unexpected data after JSON body")
		return false
	}
	return true
}

// toRecords validates the wire records against the schema and converts
// them. The schema is the resolved slot's own — validation and scoring
// always use the same generation, so a concurrent swap can never mis-pair
// a record with a different encoder.
func toRecords(schema data.Schema, in []RecordJSON) ([]data.Record, error) {
	nNum, nCat := schema.NumNumeric(), len(schema.Categorical)
	out := make([]data.Record, len(in))
	for i, r := range in {
		if len(r.Numeric) != nNum {
			return nil, fmt.Errorf("record %d: %d numeric values, model expects %d", i, len(r.Numeric), nNum)
		}
		if len(r.Categorical) != nCat {
			return nil, fmt.Errorf("record %d: %d categorical values, model expects %d", i, len(r.Categorical), nCat)
		}
		out[i] = data.Record{Numeric: r.Numeric, Categorical: r.Categorical}
	}
	return out, nil
}

func toVerdictsJSON(schema data.Schema, vs []nids.Verdict) []VerdictJSON {
	out := make([]VerdictJSON, len(vs))
	for i, v := range vs {
		vj := VerdictJSON{IsAttack: v.IsAttack, Class: v.Class, Score: v.Score}
		if v.Class >= 0 && v.Class < len(schema.ClassNames) {
			vj.ClassName = schema.ClassNames[v.Class]
		}
		out[i] = vj
	}
	return out
}

// acceptScoring centralizes method/drain gating for the scoring endpoints.
func (s *Server) acceptScoring(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	if s.draining.Load() {
		retryAfter(w, http.StatusServiceUnavailable)
		s.httpError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	return true
}

// scoreTag reads ?tag= (default live).
func scoreTag(r *http.Request) string {
	if tag := r.URL.Query().Get("tag"); tag != "" {
		return tag
	}
	return registry.Live
}

// handleDetect is POST /v1/detect: score one record on the live slot.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	s.detectOn(w, r, registry.Live, "")
}

// handleDetectV2 is POST /v2/detect?tag=: score one record on any slot.
func (s *Server) handleDetectV2(w http.ResponseWriter, r *http.Request) {
	tag := scoreTag(r)
	s.detectOn(w, r, tag, tag)
}

// detectOn scores one record on tag. echoTag, when non-empty, is included
// in the response (the /v2 shape; /v1 responses stay byte-compatible).
func (s *Server) detectOn(w http.ResponseWriter, r *http.Request, tag, echoTag string) {
	if !s.acceptScoring(w, r) {
		return
	}
	s.m.detectRequests.Add(1)
	start := time.Now()
	tr := s.traceFor(w, r)
	var rec RecordJSON
	if !s.decodeBody(w, r, &rec) {
		s.putTrace(tr, http.StatusBadRequest, "bad request body")
		return
	}
	if tr != nil {
		tr.Records = 1
	}
	ctx, cancel := s.scoreCtx(r)
	defer cancel()
	verdicts, si, status, err := s.scoreSlot(ctx, tag, []RecordJSON{rec}, tr)
	if err != nil {
		retryAfter(w, status)
		s.httpError(w, status, "%v", err)
		s.putTrace(tr, status, err.Error())
		return
	}
	s.m.records.Add(1)
	encStart := time.Now()
	writeJSON(w, detectResponse{
		ModelVersion: si.artifact.Version(),
		Tag:          echoTag,
		Verdict:      toVerdictsJSON(si.artifact.Schema, verdicts)[0],
	})
	s.finishScored(tr, si, encStart, 1)
	s.m.observeLatency(time.Since(start))
}

// handleDetectBatch is POST /v1/detect-batch: score records on the live slot.
func (s *Server) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	s.detectBatchOn(w, r, registry.Live, "")
}

// handleDetectBatchV2 is POST /v2/detect-batch?tag=.
func (s *Server) handleDetectBatchV2(w http.ResponseWriter, r *http.Request) {
	tag := scoreTag(r)
	s.detectBatchOn(w, r, tag, tag)
}

func (s *Server) detectBatchOn(w http.ResponseWriter, r *http.Request, tag, echoTag string) {
	if !s.acceptScoring(w, r) {
		return
	}
	s.m.batchRequests.Add(1)
	start := time.Now()
	tr := s.traceFor(w, r)
	var req detectBatchRequest
	if !s.decodeBody(w, r, &req) {
		s.putTrace(tr, http.StatusBadRequest, "bad request body")
		return
	}
	if len(req.Records) == 0 {
		s.httpError(w, http.StatusBadRequest, "empty records")
		s.putTrace(tr, http.StatusBadRequest, "empty records")
		return
	}
	if tr != nil {
		tr.Records = len(req.Records)
	}
	ctx, cancel := s.scoreCtx(r)
	defer cancel()
	verdicts, si, status, err := s.scoreSlot(ctx, tag, req.Records, tr)
	if err != nil {
		retryAfter(w, status)
		s.httpError(w, status, "%v", err)
		s.putTrace(tr, status, err.Error())
		return
	}
	s.m.records.Add(int64(len(verdicts)))
	encStart := time.Now()
	writeJSON(w, detectBatchResponse{
		ModelVersion: si.artifact.Version(),
		Tag:          echoTag,
		Verdicts:     toVerdictsJSON(si.artifact.Schema, verdicts),
	})
	s.finishScored(tr, si, encStart, len(verdicts))
	s.m.observeLatency(time.Since(start))
}

// finishScored closes out one successfully scored request: the encode
// stage observation on the answering slot's histograms, the encode span,
// and publication of the sealed trace.
func (s *Server) finishScored(tr *obs.Trace, si *slotInstance, encStart time.Time, records int) {
	encDur := time.Since(encStart)
	if st := si.scorer.stages; st != nil {
		st.encode.ObserveDuration(encDur)
	}
	if tr == nil {
		return
	}
	tr.Span("encode", encStart, encDur)
	s.putTrace(tr, http.StatusOK, "")
	if s.log.Enabled(obs.LevelDebug) {
		s.log.Debug("request scored", "request_id", tr.ID, "endpoint", tr.Endpoint,
			"slot", tr.Slot, "version", tr.Version, "records", records,
			"dur", time.Since(tr.Start))
	}
}

// ModelInfo describes one loaded model slot.
type ModelInfo struct {
	Model   string `json:"model"`
	Version string `json:"version"`
	Engine  string `json:"engine"`
	// Tag is the slot this description refers to (on /v2 responses).
	Tag string `json:"tag,omitempty"`
	// PreviousVersion is the retained rollback generation (live slot only).
	PreviousVersion string   `json:"previous_version,omitempty"`
	Features        int      `json:"features"`
	Classes         int      `json:"classes"`
	ClassNames      []string `json:"class_names"`
	Replicas        int      `json:"replicas"`
	MaxBatch        int      `json:"max_batch"`
	MaxWaitMS       float64  `json:"max_wait_ms"`
	LoadedAt        string   `json:"loaded_at"`
}

// SlotStatsJSON is the wire form of a slot's scoring counters.
type SlotStatsJSON struct {
	Records         int64 `json:"records"`
	Attacks         int64 `json:"attacks"`
	Mirrored        int64 `json:"mirrored"`
	MirrorDropped   int64 `json:"mirror_dropped"`
	Agreements      int64 `json:"agreements"`
	Disagreements   int64 `json:"disagreements"`
	Shed            int64 `json:"shed"`
	DeadlineExpired int64 `json:"deadline_expired"`
}

// SlotInfo is one /v2/models entry: the slot's model plus its counters.
type SlotInfo struct {
	ModelInfo
	Stats SlotStatsJSON `json:"stats"`
}

// TransitionJSON is one lifecycle history entry.
type TransitionJSON struct {
	Op      string `json:"op"`
	Tag     string `json:"tag"`
	Version string `json:"version"`
	At      string `json:"at"`
}

// ModelsResponse is the /v2/models body: every occupied slot, the retained
// rollback generation, lifecycle counters, and recent history.
type ModelsResponse struct {
	Slots     []SlotInfo       `json:"slots"`
	Previous  *ModelInfo       `json:"previous,omitempty"`
	Promotes  int64            `json:"promotes"`
	Rollbacks int64            `json:"rollbacks"`
	History   []TransitionJSON `json:"history"`
}

// infoFor renders si as it is mounted under tag.
func (s *Server) infoFor(tag string, si *slotInstance) ModelInfo {
	info := ModelInfo{
		Model:      si.artifact.ModelName,
		Version:    si.artifact.Version(),
		Engine:     s.cfg.Engine,
		Tag:        tag,
		Features:   si.artifact.Features(),
		Classes:    si.artifact.Classes(),
		ClassNames: si.artifact.Schema.ClassNames,
		Replicas:   s.cfg.Replicas,
		MaxBatch:   s.cfg.MaxBatch,
		MaxWaitMS:  float64(s.cfg.MaxWait) / float64(time.Millisecond),
		LoadedAt:   si.loadedAt.UTC().Format(time.RFC3339),
	}
	if tag == registry.Live {
		info.PreviousVersion = s.reg.PreviousVersion()
	}
	return info
}

// Info returns the live model's description (the /v1 shape: no tag).
func (s *Server) Info() ModelInfo {
	info, _ := s.InfoTag(registry.Live)
	info.Tag = ""
	return info
}

// InfoTag returns the description of the model under tag.
func (s *Server) InfoTag(tag string) (ModelInfo, error) {
	si, ok := s.slot(tag)
	if !ok {
		return ModelInfo{}, fmt.Errorf("no model loaded under tag %q", tag)
	}
	return s.infoFor(tag, si), nil
}

// Models returns the full registry listing (the /v2/models body).
func (s *Server) Models() ModelsResponse {
	resp := ModelsResponse{
		Promotes:  s.reg.Promotes(),
		Rollbacks: s.reg.Rollbacks(),
	}
	for _, tag := range s.reg.Tags() {
		si, ok := s.slot(tag)
		if !ok {
			continue // unloaded between Tags() and here
		}
		st := s.reg.StatsFor(tag)
		resp.Slots = append(resp.Slots, SlotInfo{
			ModelInfo: s.infoFor(tag, si),
			Stats: SlotStatsJSON{
				Records:         st.Records.Load(),
				Attacks:         st.Attacks.Load(),
				Mirrored:        st.Mirrored.Load(),
				MirrorDropped:   st.MirrorDropped.Load(),
				Agreements:      st.Agreements.Load(),
				Disagreements:   st.Disagreements.Load(),
				Shed:            st.Shed.Load(),
				DeadlineExpired: st.DeadlineExpired.Load(),
			},
		})
	}
	if si, ok := s.slot(registry.Previous); ok {
		info := s.infoFor(registry.Previous, si)
		resp.Previous = &info
	}
	for _, tr := range s.reg.History() {
		resp.History = append(resp.History, TransitionJSON{
			Op: string(tr.Op), Tag: tr.Tag, Version: tr.Version,
			At: tr.At.UTC().Format(time.RFC3339),
		})
	}
	return resp
}

// handleModel is GET /v1/model: the live slot's description.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Info())
}

// handleModels is GET /v2/models: the registry listing.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, s.Models())
}

// handleModelTag is /v2/models/{tag}: GET describes the slot, DELETE
// unloads it (live cannot be unloaded).
func (s *Server) handleModelTag(w http.ResponseWriter, r *http.Request) {
	tag := strings.TrimPrefix(r.URL.Path, "/v2/models/")
	if tag == "" || strings.Contains(tag, "/") {
		s.httpError(w, http.StatusNotFound, "want /v2/models/{tag}")
		return
	}
	switch r.Method {
	case http.MethodGet:
		info, err := s.InfoTag(tag)
		if err != nil {
			s.httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, info)
	case http.MethodDelete:
		if tag == registry.Live {
			s.httpError(w, http.StatusConflict, "cannot unload the live slot")
			return
		}
		if err := s.Unload(tag); err != nil {
			s.httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, s.Models())
	default:
		s.httpError(w, http.StatusMethodNotAllowed, "GET or DELETE required")
	}
}

type loadRequest struct {
	Path string `json:"path"`
	Tag  string `json:"tag"`
}

// handleLoad is POST /v2/load?tag= (or {"path": ..., "tag": ...}): load an
// artifact file into a slot. The tag defaults to shadow — the staging slot
// gated promotion operates on.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req loadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		s.httpError(w, http.StatusBadRequest, "body must be {\"path\": \"artifact file\", \"tag\": \"slot\"}")
		return
	}
	tag := req.Tag
	if qt := r.URL.Query().Get("tag"); qt != "" {
		tag = qt
	}
	if tag == "" {
		tag = registry.Shadow
	}
	if err := registry.ValidateTag(tag); err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a, err := LoadArtifactFile(req.Path)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, "load artifact: %v", err)
		return
	}
	if err := s.LoadSlot(tag, a); err != nil {
		s.httpError(w, http.StatusConflict, "load %q: %v", tag, err)
		return
	}
	info, err := s.InfoTag(tag)
	if err != nil {
		// The slot was displaced between load and read-back; report the
		// registry state rather than failing the successful load.
		writeJSON(w, s.Models())
		return
	}
	writeJSON(w, info)
}

type reloadRequest struct {
	Path string `json:"path"`
}

// handleReload is POST /v1/reload: load an artifact file into the live
// slot. Kept as a thin delegate for existing clients; /v2/load is the
// registry-aware form.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req reloadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		s.httpError(w, http.StatusBadRequest, "body must be {\"path\": \"artifact file\"}")
		return
	}
	a, err := LoadArtifactFile(req.Path)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, "load artifact: %v", err)
		return
	}
	if err := s.Reload(a); err != nil {
		s.httpError(w, http.StatusConflict, "reload: %v", err)
		return
	}
	writeJSON(w, s.Info())
}

// handlePromote is POST /v2/promote: shadow becomes live atomically; the
// displaced live is retained for rollback.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if err := s.Promote(); err != nil {
		s.httpError(w, http.StatusConflict, "%v", err)
		return
	}
	info, _ := s.InfoTag(registry.Live)
	writeJSON(w, info)
}

// handleRollback is POST /v2/rollback: restore the generation displaced by
// the last promotion or live load.
func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if err := s.Rollback(); err != nil {
		s.httpError(w, http.StatusConflict, "%v", err)
		return
	}
	info, _ := s.InfoTag(registry.Live)
	writeJSON(w, info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	model, version := "", ""
	if si, ok := s.slot(registry.Live); ok {
		model, version = si.artifact.ModelName, si.artifact.Version()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Status  string `json:"status"`
		Model   string `json:"model"`
		Version string `json:"version"`
	}{status, model, version})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var slots []slotMetrics
	queueDepth := 0
	for _, tag := range s.reg.Tags() {
		si, ok := s.slot(tag)
		if !ok {
			continue
		}
		q := si.scorer.queueLen()
		queueDepth += q
		slots = append(slots, slotMetrics{
			tag:     tag,
			model:   si.artifact.ModelName,
			version: si.artifact.Version(),
			queue:   q,
			stats:   s.reg.StatsFor(tag),
			stages:  si.scorer.stages,
		})
	}
	var storeStats *store.Stats
	if s.store != nil {
		st := s.store.Stats()
		storeStats = &st
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.m.writeProm(w, promSnapshot{
		queueDepth:      queueDepth,
		slots:           slots,
		promotes:        s.reg.Promotes(),
		rollbacks:       s.reg.Rollbacks(),
		previousVersion: s.reg.PreviousVersion(),
		started:         s.started,
		store:           storeStats,
		recovery:        s.recovery,
	})
}

// tracesResponse is the /debug/traces body.
type tracesResponse struct {
	Count  int          `json:"count"`
	Traces []*obs.Trace `json:"traces"`
}

// handleTraces is GET /debug/traces: the ring of completed request traces
// as JSON, newest first. Query parameters: ?slowest=N returns the N
// slowest held traces instead of the newest; ?errors=1 keeps only failed
// requests (status >= 400); ?slot= filters by the serving slot;
// ?limit=N caps the response size (default 64).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.traces == nil {
		s.httpError(w, http.StatusNotFound, "tracing is disabled (server started with observability off)")
		return
	}
	traces := s.traces.Snapshot()
	q := r.URL.Query()
	if slot := q.Get("slot"); slot != "" {
		traces = filterTraces(traces, func(t *obs.Trace) bool { return t.Slot == slot })
	}
	if e := q.Get("errors"); e == "1" || e == "true" {
		traces = filterTraces(traces, func(t *obs.Trace) bool { return t.Status >= 400 || t.Error != "" })
	}
	limit := 64
	if n, err := strconv.Atoi(q.Get("limit")); err == nil && n > 0 {
		limit = n
	}
	if n, err := strconv.Atoi(q.Get("slowest")); err == nil && n > 0 {
		sort.SliceStable(traces, func(i, j int) bool { return traces[i].DurUS > traces[j].DurUS })
		limit = n
	}
	if len(traces) > limit {
		traces = traces[:limit]
	}
	writeJSON(w, tracesResponse{Count: len(traces), Traces: traces})
}

func filterTraces(in []*obs.Trace, keep func(*obs.Trace) bool) []*obs.Trace {
	out := in[:0:0]
	for _, t := range in {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}
