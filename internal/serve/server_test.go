package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// newTestServer wraps a Server in an httptest.Server with the documented
// shutdown order registered as cleanup.
func newTestServer(t *testing.T, a *Artifact, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close() // waits for in-flight handlers
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func recordsJSON(recs []*data.Record) []RecordJSON {
	out := make([]RecordJSON, len(recs))
	for i, r := range recs {
		out[i] = RecordJSON{Numeric: r.Numeric, Categorical: r.Categorical}
	}
	return out
}

// TestServerMatchesInProcessDetector pins the acceptance criterion: the
// served verdicts equal in-process ModelDetector.DetectBatch on the same
// records.
func TestServerMatchesInProcessDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, orig, recs := trainTestArtifact(t, "mlp", 11, 2)
	_, ts := newTestServer(t, a, Config{Replicas: 2, MaxBatch: 8, MaxWait: time.Millisecond})

	want := make([]nids.Verdict, len(recs))
	orig.DetectBatch(recs, want)

	resp, body := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br detectBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Verdicts) != len(recs) {
		t.Fatalf("%d verdicts for %d records", len(br.Verdicts), len(recs))
	}
	for i, v := range br.Verdicts {
		if v.Class != want[i].Class || v.IsAttack != want[i].IsAttack {
			t.Fatalf("record %d: served verdict {class=%d attack=%v}, in-process {class=%d attack=%v}",
				i, v.Class, v.IsAttack, want[i].Class, want[i].IsAttack)
		}
	}
}

// TestEngineSelection pins the A/B config: both engines serve the same
// verdicts on the same records, /v1/model reports which one is loaded, and
// an unknown engine name is rejected at construction.
func TestEngineSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 17, 2)

	verdicts := map[string][]VerdictJSON{}
	for _, engine := range []string{EngineF32, EngineF64} {
		srv, ts := newTestServer(t, a, Config{Replicas: 1, MaxBatch: 8, MaxWait: time.Millisecond, Engine: engine})
		if got := srv.Info().Engine; got != engine {
			t.Fatalf("Info().Engine = %q, configured %q", got, engine)
		}
		resp, body := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine %s: status %d: %s", engine, resp.StatusCode, body)
		}
		var br detectBatchResponse
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatal(err)
		}
		verdicts[engine] = br.Verdicts
	}
	for i := range recs {
		f32, f64 := verdicts[EngineF32][i], verdicts[EngineF64][i]
		if f32.Class != f64.Class || f32.IsAttack != f64.IsAttack {
			t.Fatalf("record %d: f32 engine {class=%d attack=%v}, f64 {class=%d attack=%v}",
				i, f32.Class, f32.IsAttack, f64.Class, f64.IsAttack)
		}
	}

	if _, err := New(a, Config{Engine: "f16"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestConcurrentClientsPreservePairing hammers the dynamic batcher with
// many concurrent clients sending overlapping subsets of a known record
// pool and verifies every response pairs each record with its own
// precomputed verdict — under -race in CI, this also proves the batcher's
// memory discipline.
func TestConcurrentClientsPreservePairing(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, orig, recs := trainTestArtifact(t, "mlp", 13, 2)
	_, ts := newTestServer(t, a, Config{Replicas: 3, MaxBatch: 16, MaxWait: 500 * time.Microsecond, QueueDepth: 64})

	want := make([]nids.Verdict, len(recs))
	orig.DetectBatch(recs, want)

	const clients = 8
	const requestsPerClient = 20
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for q := 0; q < requestsPerClient; q++ {
				// Random subset with random size: batch boundaries land
				// everywhere, including splitting a request across batches.
				n := 1 + rng.Intn(12)
				idx := make([]int, n)
				sub := make([]*data.Record, n)
				for i := range idx {
					idx[i] = rng.Intn(len(recs))
					sub[i] = recs[idx[i]]
				}
				b, _ := json.Marshal(detectBatchRequest{Records: recordsJSON(sub)})
				resp, err := http.Post(ts.URL+"/v1/detect-batch", "application/json", bytes.NewReader(b))
				if err != nil {
					errCh <- err
					return
				}
				var br detectBatchResponse
				err = json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if len(br.Verdicts) != n {
					errCh <- fmt.Errorf("client %d: %d verdicts for %d records", c, len(br.Verdicts), n)
					return
				}
				for i, v := range br.Verdicts {
					w := want[idx[i]]
					if v.Class != w.Class || v.IsAttack != w.IsAttack {
						errCh <- fmt.Errorf("client %d: record %d misrouted: got class %d, want %d", c, idx[i], v.Class, w.Class)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestHotReloadNeverDropsRequests fires continuous traffic while the model
// is hot-reloaded back and forth between two generations. Every response
// must be complete and every verdict must match one of the two
// generations' precomputed verdicts for that exact record — no drops, no
// misroutes, no torn models.
func TestHotReloadNeverDropsRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	a1, orig1, recs := trainTestArtifact(t, "mlp", 17, 2)
	a2, orig2, _ := trainTestArtifact(t, "mlp", 23, 3)

	want1 := make([]nids.Verdict, len(recs))
	want2 := make([]nids.Verdict, len(recs))
	orig1.DetectBatch(recs, want1)
	orig2.DetectBatch(recs, want2)

	dir := t.TempDir()
	p1 := filepath.Join(dir, "gen1.plcn")
	p2 := filepath.Join(dir, "gen2.plcn")
	if err := SaveArtifactFile(p1, a1); err != nil {
		t.Fatal(err)
	}
	if err := SaveArtifactFile(p2, a2); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, a1, Config{Replicas: 2, MaxBatch: 8, MaxWait: 500 * time.Microsecond})

	stop := make(chan struct{})
	var clientWG sync.WaitGroup
	errCh := make(chan error, 4)
	for c := 0; c < 4; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 1 + rng.Intn(8)
				idx := make([]int, n)
				sub := make([]*data.Record, n)
				for i := range idx {
					idx[i] = rng.Intn(len(recs))
					sub[i] = recs[idx[i]]
				}
				b, _ := json.Marshal(detectBatchRequest{Records: recordsJSON(sub)})
				resp, err := http.Post(ts.URL+"/v1/detect-batch", "application/json", bytes.NewReader(b))
				if err != nil {
					errCh <- err
					return
				}
				var br detectBatchResponse
				err = json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d: status %d err %v", c, resp.StatusCode, err)
					return
				}
				if len(br.Verdicts) != n {
					errCh <- fmt.Errorf("client %d: dropped verdicts: %d of %d", c, len(br.Verdicts), n)
					return
				}
				for i, v := range br.Verdicts {
					w1, w2 := want1[idx[i]], want2[idx[i]]
					if (v.Class != w1.Class || v.IsAttack != w1.IsAttack) &&
						(v.Class != w2.Class || v.IsAttack != w2.IsAttack) {
						errCh <- fmt.Errorf("client %d: record %d verdict class %d matches neither generation (%d / %d)",
							c, idx[i], v.Class, w1.Class, w2.Class)
						return
					}
				}
			}
		}(c)
	}

	// Flip between the two generations via the admin endpoint while the
	// clients hammer away.
	for flip := 0; flip < 10; flip++ {
		path := p2
		if flip%2 == 1 {
			path = p1
		}
		resp, body := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Path: path})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", flip, resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	clientWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := srv.Info().Version; got != a1.Version() && got != a2.Version() {
		t.Fatalf("final version %s is neither generation", got)
	}
}

func TestServerRejectsMalformedRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 29, 1)
	_, ts := newTestServer(t, a, Config{})

	// Wrong numeric arity.
	bad := RecordJSON{Numeric: []float64{1, 2}, Categorical: recs[0].Categorical}
	resp, _ := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: []RecordJSON{bad}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-arity record: status %d, want 400", resp.StatusCode)
	}
	// Empty batch.
	resp, _ = postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	// Garbage body.
	r, err := http.Post(ts.URL+"/v1/detect", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", r.StatusCode)
	}
	// Unknown categorical values must not error — get_dummies semantics
	// encode them as all-zeros.
	odd := RecordJSON{Numeric: recs[0].Numeric, Categorical: make([]string, len(recs[0].Categorical))}
	for i := range odd.Categorical {
		odd.Categorical[i] = "never-seen-in-training"
	}
	resp, body := postJSON(t, ts.URL+"/v1/detect", odd)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unseen categorical: status %d: %s", resp.StatusCode, body)
	}
}

// TestBodyLimits pins the request-hardening fixes: every POST endpoint
// caps its body (413 beyond MaxBodyBytes) and rejects trailing data after
// the JSON value (400), so one oversized or smuggled request can neither
// exhaust memory nor slip a second payload past the decoder.
func TestBodyLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 43, 1)
	_, ts := newTestServer(t, a, Config{MaxBodyBytes: 2048})

	rawPost := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Oversized bodies: a few records of padding blows the 2 KiB cap.
	huge := `{"records": [` + strings.Repeat(`{"numeric": [`+strings.Repeat("1,", 400)+`1], "categorical": []},`, 4)
	huge += `]}`
	for _, path := range []string{"/v1/detect", "/v1/detect-batch", "/v1/reload"} {
		if code := rawPost(path, huge); code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status %d, want 413", path, code)
		}
	}

	// Trailing garbage after a syntactically complete JSON value.
	rec, err := json.Marshal(RecordJSON{Numeric: recs[0].Numeric, Categorical: recs[0].Categorical})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := json.Marshal(detectBatchRequest{Records: recordsJSON(recs[:1])})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ path, body string }{
		{"/v1/detect", string(rec) + `{"second": "payload"}`},
		{"/v1/detect", string(rec) + `}`},
		{"/v1/detect-batch", string(batch) + `[1,2]`},
		{"/v1/reload", `{"path": "x.plcn"} "extra"`},
	} {
		if code := rawPost(tc.path, tc.body); code != http.StatusBadRequest {
			t.Fatalf("%s trailing garbage: status %d, want 400", tc.path, code)
		}
	}

	// Sanity: a clean request still works under the small cap.
	resp, body := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs[:1])})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean request under cap: status %d: %s", resp.StatusCode, body)
	}
}

// TestClientScoreAndRemoteDetector pins the Go client: Score matches the
// in-process detector, RemoteDetector satisfies the nids contract, and
// request failures are tallied instead of fabricating verdicts.
func TestClientScoreAndRemoteDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, orig, recs := trainTestArtifact(t, "mlp", 47, 2)
	_, ts := newTestServer(t, a, Config{Replicas: 2, MaxBatch: 8, MaxWait: time.Millisecond})

	want := make([]nids.Verdict, len(recs))
	orig.DetectBatch(recs, want)

	c := NewClient(ts.URL)
	got, version, err := c.Score(recs)
	if err != nil {
		t.Fatal(err)
	}
	if version != a.Version() {
		t.Fatalf("answered version %s, want %s", version, a.Version())
	}
	for i := range got {
		if got[i].Class != want[i].Class || got[i].IsAttack != want[i].IsAttack {
			t.Fatalf("record %d: client verdict %+v != in-process %+v", i, got[i], want[i])
		}
	}

	det := &RemoteDetector{Client: c}
	verdicts := make([]nids.Verdict, len(recs))
	det.DetectBatch(recs, verdicts)
	for i := range verdicts {
		if verdicts[i].Class != want[i].Class {
			t.Fatalf("remote detector verdict %d mismatched", i)
		}
	}
	if det.ModelVersion() != a.Version() {
		t.Fatalf("remote detector tracked version %q", det.ModelVersion())
	}
	if det.Errors() != 0 {
		t.Fatalf("unexpected errors: %d", det.Errors())
	}

	// A dead endpoint yields Failed verdicts and a tallied error, not junk.
	deadVerdicts := []nids.Verdict{{IsAttack: true, Class: 3, Score: 9}}
	dead := &RemoteDetector{Client: NewClient("http://127.0.0.1:1")}
	dead.DetectBatch(recs[:1], deadVerdicts)
	if dead.Errors() != 1 {
		t.Fatalf("dead endpoint errors = %d, want 1", dead.Errors())
	}
	if deadVerdicts[0] != (nids.Verdict{Failed: true}) {
		t.Fatalf("dead endpoint fabricated verdict %+v", deadVerdicts[0])
	}
}

// TestArtifactNewNetworkWarmStart pins the warm-start constructor: the
// reconstructed network scores identically to the artifact's detector and
// is genuinely trainable in place.
func TestArtifactNewNetworkWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, orig, recs := trainTestArtifact(t, "mlp", 53, 2)

	net, pipe, err := a.NewNetwork(nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(0.002))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]nids.Verdict, len(recs))
	orig.DetectBatch(recs, want)
	warm := &nids.ModelDetector{ModelName: a.ModelName, Net: net, Pipe: pipe}
	got := make([]nids.Verdict, len(recs))
	warm.DetectBatch(recs, got)
	for i := range got {
		if got[i].Class != want[i].Class {
			t.Fatalf("record %d: warm network class %d != artifact detector %d", i, got[i].Class, want[i].Class)
		}
	}

	// PartialFit on fresh labeled data must move the weights.
	x := tensor.New(len(recs), pipe.Width())
	y := make([]int, len(recs))
	for i, r := range recs {
		pipe.ApplyInto(r, x.Row(i))
		y[i] = r.Label
	}
	before := net.EvalLoss(x.Reshape(len(recs), 1, pipe.Width()), y)
	net.PartialFit(x.Reshape(len(recs), 1, pipe.Width()), y, nn.FitConfig{
		Epochs: 3, BatchSize: 32, Shuffle: true, RNG: rand.New(rand.NewSource(1)),
	})
	after := net.EvalLoss(x.Reshape(len(recs), 1, pipe.Width()), y)
	if after >= before {
		t.Fatalf("PartialFit did not reduce loss: %.4f -> %.4f", before, after)
	}
}

// TestReloadRejectsShapeChange pins the reload guard: an artifact whose
// feature shape differs from the running model's must be rejected (409),
// because in-flight records validated under the old shape could be
// mis-encoded — or panic the worker — under the new one.
func TestReloadRejectsShapeChange(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	a, _, _ := trainTestArtifact(t, "mlp", 41, 1)
	srv, ts := newTestServer(t, a, Config{})
	before := srv.Info().Version

	// Build a valid artifact over the other dataset's schema (different
	// numeric/categorical feature counts).
	gen, err := synth.New(synth.UNSWNB15Config())
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(300, 1)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	rng := rand.New(rand.NewSource(1))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(2)), features, gen.Schema().NumClasses())
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(0.01))
	net.Fit(x.Reshape(x.Dim(0), 1, x.Dim(1)), y, nn.FitConfig{Epochs: 1, BatchSize: 128})
	other, err := NewArtifact("mlp", models.PaperBlockConfig(features), gen.Schema(), pipe, net)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "other.plcn")
	if err := SaveArtifactFile(path, other); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Path: path})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("shape-changing reload: status %d, want 409: %s", resp.StatusCode, body)
	}
	if srv.Info().Version != before {
		t.Fatal("rejected reload disturbed the serving model")
	}
}

func TestServerReloadRejectsBadArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, _ := trainTestArtifact(t, "mlp", 31, 1)
	srv, ts := newTestServer(t, a, Config{})
	before := srv.Info().Version

	junk := filepath.Join(t.TempDir(), "junk.plcn")
	if err := os.WriteFile(junk, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Path: junk})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("junk reload: status %d, want 422", resp.StatusCode)
	}
	if srv.Info().Version != before {
		t.Fatal("failed reload disturbed the serving model")
	}
}

func TestHealthModelAndMetricsEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 37, 1)
	srv, ts := newTestServer(t, a, Config{Replicas: 2, MaxBatch: 4})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	var info ModelInfo
	resp, err = http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Model != "mlp" || info.Version != a.Version() || info.Features != a.Features() {
		t.Fatalf("model info mismatch: %+v", info)
	}

	// Score something so the counters move.
	postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs[:8])})

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	prom := buf.String()
	for _, w := range []string{
		"pelican_serve_records_total 8",
		"pelican_serve_batches_total",
		"pelican_serve_request_seconds_count 1",
		`pelican_serve_model_info{slot="live",model="mlp"`,
		`pelican_serve_slot_records_total{slot="live"`,
		"pelican_serve_promotes_total 0",
		"pelican_serve_rollbacks_total 0",
	} {
		if !strings.Contains(prom, w) {
			t.Fatalf("metrics output missing %q:\n%s", w, prom)
		}
	}

	// Drain: scoring 503s, health reports draining.
	srv.BeginDrain()
	resp, _ = postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs[:1])})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered scoring with %d, want 503", resp.StatusCode)
	}
}
