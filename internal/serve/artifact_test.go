package serve

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// trainTestArtifact trains a small detector of the given registered model
// and returns its artifact, the original in-process detector, and a batch
// of held-back records for verdict comparison.
func trainTestArtifact(t *testing.T, modelName string, seed int64, epochs int) (*Artifact, *nids.ModelDetector, []*data.Record) {
	t.Helper()
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(500, seed)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(seed))
	spec, err := models.Lookup(modelName)
	if err != nil {
		t.Fatal(err)
	}
	block := models.BlockConfig{Features: features, Kernel: 10, Pool: 2, Dropout: 0.6}
	stack := spec.Build(rng, rand.New(rand.NewSource(seed+1)), block, features, classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	x3 := x.Reshape(x.Dim(0), 1, x.Dim(1))
	net.Fit(x3, y, nn.FitConfig{Epochs: epochs, BatchSize: 128, Shuffle: true, RNG: rng})

	a, err := NewArtifact(modelName, block, gen.Schema(), pipe, net)
	if err != nil {
		t.Fatal(err)
	}
	orig := &nids.ModelDetector{ModelName: modelName, Net: net, Pipe: pipe}
	probe := gen.Generate(64, seed+1000)
	recs := make([]*data.Record, len(probe.Records))
	for i := range probe.Records {
		recs[i] = &probe.Records[i]
	}
	return a, orig, recs
}

// encodeProbe converts records to the (N, 1, F) tensor PredictClasses
// consumes.
func encodeProbe(pipe *data.Pipeline, recs []*data.Record) *tensor.Tensor {
	x := tensor.New(len(recs), pipe.Width())
	for i, r := range recs {
		pipe.ApplyInto(r, x.Row(i))
	}
	return x.Reshape(len(recs), 1, pipe.Width())
}

// TestArtifactPlanCachedAndInferDetectorAgrees pins the plan-aware load
// path: lowering happens once (Plan() returns the same compiled plan to
// every caller — the artifact's weights stay stored once, in float64), and
// a float32 replica built from it produces the float64 replica's verdicts
// on a held-back batch.
func TestArtifactPlanCachedAndInferDetectorAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "lunet", 31, 2)
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}

	p1, err := loaded.Plan()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loaded.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("Plan() compiled twice; replicas must share one lowering")
	}
	if p1.Features() != loaded.Features() || p1.Classes() != loaded.Classes() {
		t.Fatalf("plan shape %d→%d, artifact %d→%d",
			p1.Features(), p1.Classes(), loaded.Features(), loaded.Classes())
	}

	f64det, err := loaded.NewDetector()
	if err != nil {
		t.Fatal(err)
	}
	f32det, err := loaded.NewInferDetector()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]nids.Verdict, len(recs))
	got := make([]nids.Verdict, len(recs))
	f64det.DetectBatch(recs, want)
	f32det.DetectBatch(recs, got)
	for i := range recs {
		if got[i].Class != want[i].Class || got[i].IsAttack != want[i].IsAttack {
			t.Fatalf("record %d: f32 verdict {class=%d attack=%v}, f64 {class=%d attack=%v}",
				i, got[i].Class, got[i].IsAttack, want[i].Class, want[i].IsAttack)
		}
	}
}

// TestArtifactRoundTripLuNet pins the headline contract: save → load of a
// trained block network yields byte-identical PredictClasses output and
// identical DetectBatch verdicts on a fixed-seed batch.
func TestArtifactRoundTripLuNet(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, orig, recs := trainTestArtifact(t, "lunet", 1, 2)

	var buf bytes.Buffer
	if err := SaveArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version() != a.Version() {
		t.Fatalf("version changed across round trip: %s -> %s", a.Version(), loaded.Version())
	}
	det, err := loaded.NewDetector()
	if err != nil {
		t.Fatal(err)
	}

	wantClasses := orig.Net.PredictClasses(encodeProbe(orig.Pipe, recs), 16)
	gotClasses := det.Net.PredictClasses(encodeProbe(det.Pipe, recs), 16)
	for i := range wantClasses {
		if gotClasses[i] != wantClasses[i] {
			t.Fatalf("record %d: loaded model predicts class %d, original %d", i, gotClasses[i], wantClasses[i])
		}
	}

	want := make([]nids.Verdict, len(recs))
	got := make([]nids.Verdict, len(recs))
	orig.DetectBatch(recs, want)
	det.DetectBatch(recs, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: loaded verdict %+v, original %+v", i, got[i], want[i])
		}
	}
}

// TestArtifactRoundTripResidual runs the same contract on a residual
// (Pelican-style) network so BatchNorm running stats and shortcut layers
// are covered; a 2-block net keeps it fast.
func TestArtifactRoundTripResidual(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, orig, recs := trainTestArtifact(t, "residual-21", 3, 1)
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	det, err := loaded.NewDetector()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]nids.Verdict, len(recs))
	got := make([]nids.Verdict, len(recs))
	orig.DetectBatch(recs, want)
	det.DetectBatch(recs, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: loaded verdict %+v, original %+v", i, got[i], want[i])
		}
	}
}

// mlpArtifactBytes builds a minimal valid artifact file for the error-path
// tests (MLP trains in milliseconds).
func mlpArtifactBytes(t *testing.T) []byte {
	t.Helper()
	a, _, _ := trainTestArtifact(t, "mlp", 7, 1)
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestArtifactBytesCanonical pins the CAS identity contract: an
// artifact's Bytes() are exactly what SaveArtifact writes and what a
// loader read, byte for byte — never a re-encode. Gob assigns type ids
// process-globally in first-use order, so a re-encode in a process with
// a different gob history (pelican-train encodes the nn checkpoint
// first) produces different bytes for identical content, and a version
// derived from them would not match the artifact's. Bytes() must be the
// captured canonical form so version == sha(Bytes()) in every process.
func TestArtifactBytesCanonical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, _ := trainTestArtifact(t, "mlp", 5, 1)
	if got := versionOf(a.Bytes()); got != a.Version() {
		t.Fatalf("version %s is not the hash of Bytes() (%s)", a.Version(), got)
	}
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), a.Bytes()) {
		t.Fatal("SaveArtifact wrote something other than the canonical bytes")
	}
	loaded, err := LoadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded.Bytes(), a.Bytes()) {
		t.Fatal("loaded artifact does not carry the bytes it was read from")
	}
}

func TestArtifactRejectsBadMagic(t *testing.T) {
	if _, err := LoadArtifact(bytes.NewReader([]byte("definitely not an artifact"))); err == nil {
		t.Fatal("foreign bytes accepted")
	}
}

func TestArtifactRejectsTruncated(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	raw := mlpArtifactBytes(t)
	for _, frac := range []int{2, 4, 10} {
		if _, err := LoadArtifact(bytes.NewReader(raw[:len(raw)/frac])); err == nil {
			t.Fatalf("truncated artifact (1/%d) accepted", frac)
		}
	}
}

func TestArtifactRejectsCorrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	raw := mlpArtifactBytes(t)
	// Flip bytes at several depths; every corruption must surface as an
	// error (gob decode failure or checkpoint checksum mismatch), never as
	// a silently-wrong model.
	for _, pos := range []int{len(raw) / 2, len(raw) - 100, len(raw) - 10} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0xff
		if _, err := LoadArtifact(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupt artifact (byte %d flipped) accepted", pos)
		}
	}
}

func TestArtifactRejectsUnknownModel(t *testing.T) {
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		t.Fatal(err)
	}
	schema := gen.Schema()
	w := schema.EncodedWidth()
	pipe := &data.Pipeline{
		Enc:    data.NewEncoder(schema),
		Scaler: &data.Scaler{Mean: make([]float64, w), Std: make([]float64, w)},
	}
	net := nn.NewNetwork(nn.NewSequential(), nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(0.01))
	if _, err := NewArtifact("transformer-9000", models.BlockConfig{}, schema, pipe, net); err == nil {
		t.Fatal("unregistered model name accepted")
	}
}
