package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// scrapeProm fetches /metrics and parses it; ParseProm failing (malformed
// lines, duplicate HELP/TYPE) is itself a test failure, so every caller
// doubles as an exposition-format check.
func scrapeProm(t *testing.T, baseURL string) map[string]*obs.PromFamily {
	t.Helper()
	code, body := getBody(t, baseURL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", code, body)
	}
	fams, err := obs.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v", err)
	}
	return fams
}

// TestMetricsExpositionFormat is the format-contract test: after real
// traffic, /metrics must parse cleanly (which enforces unique HELP/TYPE
// per family), every histogram family must have monotone non-decreasing
// cumulative buckets ending in +Inf == _count, and _sum must be
// consistent with the bucketed distribution.
func TestMetricsExpositionFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 11, 1)
	_, ts := newTestServer(t, a, Config{Replicas: 1, MaxBatch: 8, MaxWait: time.Millisecond})

	for i := 0; i < 4; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scoring round %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	fams := scrapeProm(t, ts.URL)

	// Families the serving plane promises.
	for _, name := range []string{
		"pelican_serve_records_total",
		"pelican_serve_request_errors_total",
		"pelican_serve_request_seconds",
		"pelican_serve_queue_wait_seconds",
		"pelican_serve_batch_assembly_seconds",
		"pelican_serve_infer_seconds",
		"pelican_serve_encode_seconds",
		"pelican_serve_batch_size",
		"pelican_runtime_goroutines",
		"pelican_runtime_uptime_seconds",
	} {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing from /metrics", name)
		}
		if f.Help == "" || f.Type == "" {
			t.Fatalf("family %s missing HELP or TYPE metadata", name)
		}
	}

	// Error counters must be split by class, not collapsed.
	var codes []string
	for _, s := range fams["pelican_serve_request_errors_total"].Samples {
		codes = append(codes, s.Label("code"))
	}
	for _, want := range []string{"4xx", "5xx"} {
		found := false
		for _, c := range codes {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("pelican_serve_request_errors_total has no code=%q series (got %v)", want, codes)
		}
	}

	// Every histogram family: group samples by label set and check the
	// cumulative-bucket invariants series by series.
	checked := 0
	for name, f := range fams {
		if f.Type != "histogram" {
			continue
		}
		for _, series := range promSeriesKeys(f) {
			h := f.Histogram(series)
			if h == nil {
				t.Fatalf("%s: series %v disappeared on extraction", name, series)
			}
			prev := int64(0)
			for i, n := range h.Counts {
				if n < prev {
					t.Fatalf("%s%v: bucket le=%g count %d < previous %d (not cumulative)",
						name, series, h.Bounds[i], n, prev)
				}
				prev = n
			}
			if h.Inf < prev {
				t.Fatalf("%s%v: +Inf bucket %d < last finite bucket %d", name, series, h.Inf, prev)
			}
			if h.Inf != h.Count {
				t.Fatalf("%s%v: +Inf bucket %d != _count %d", name, series, h.Inf, h.Count)
			}
			if h.Count == 0 {
				if h.Sum != 0 {
					t.Fatalf("%s%v: empty histogram with _sum %g", name, series, h.Sum)
				}
				continue
			}
			// The mean must be non-negative and, when every observation
			// landed in a finite bucket, no larger than the top bound.
			mean := h.Sum / float64(h.Count)
			if mean < 0 || math.IsNaN(mean) {
				t.Fatalf("%s%v: impossible mean %g", name, series, mean)
			}
			if len(h.Counts) > 0 && h.Counts[len(h.Counts)-1] == h.Count && len(h.Bounds) > 0 {
				if top := h.Bounds[len(h.Bounds)-1]; mean > top {
					t.Fatalf("%s%v: mean %g exceeds top bound %g though no observation overflowed",
						name, series, mean, top)
				}
			}
			checked++
		}
	}
	if checked < 6 {
		t.Fatalf("only %d histogram series checked — stage histograms missing?", checked)
	}

	// The stage histograms must be per-slot.
	if h := fams["pelican_serve_infer_seconds"].Histogram(map[string]string{"slot": "live"}); h == nil || h.Count == 0 {
		t.Fatal("pelican_serve_infer_seconds{slot=\"live\"} empty after traffic")
	}
}

// promSeriesKeys returns the distinct non-le label sets of a family's
// samples, so each histogram series can be checked independently.
func promSeriesKeys(f *obs.PromFamily) []map[string]string {
	seen := map[string]map[string]string{}
	for _, s := range f.Samples {
		key := ""
		labels := map[string]string{}
		for k, v := range s.Labels {
			if k == "le" {
				continue
			}
			labels[k] = v
		}
		for _, k := range []string{"slot", "code", "model", "version", "engine"} {
			if v, ok := labels[k]; ok {
				key += k + "=" + v + ";"
			}
		}
		if _, ok := seen[key]; !ok {
			seen[key] = labels
		}
	}
	out := make([]map[string]string, 0, len(seen))
	for _, labels := range seen {
		out = append(out, labels)
	}
	return out
}

// TestTracingEndToEnd is the tentpole acceptance test: under an injected
// engine stall, /debug/traces?slowest= returns complete traces whose
// spans decompose the latency and attribute the stall to the infer stage
// with the chaos delay called out.
func TestTracingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 11, 1)
	inj := &chaos.Injector{}
	_, ts := newTestServer(t, a, Config{
		Replicas: 1, MaxBatch: 8, MaxWait: time.Millisecond, Chaos: inj,
	})

	// One batch's worth of records: the stall then lands in a single infer
	// span instead of rippling into queue_wait for follow-on batches.
	inj.SetScoreDelay(30 * time.Millisecond)
	const wantID = "deadbeefcafef00d"
	batchRecs := recs[:8]
	b, err := json.Marshal(detectBatchRequest{Records: recordsJSON(batchRecs)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect-batch", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, wantID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	inj.SetScoreDelay(0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scoring status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != wantID {
		t.Fatalf("response %s = %q, want the caller-supplied %q", obs.RequestIDHeader, got, wantID)
	}

	code, body := getBody(t, ts.URL+"/debug/traces?slowest=5")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces = %d: %s", code, body)
	}
	var tr tracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("/debug/traces body: %v", err)
	}
	if tr.Count == 0 {
		t.Fatal("/debug/traces holds no traces after a scored request")
	}
	var got *obs.Trace
	for _, cand := range tr.Traces {
		if cand.ID == wantID {
			got = cand
		}
	}
	if got == nil {
		t.Fatalf("trace %s not in the %d slowest", wantID, tr.Count)
	}
	if got.Status != http.StatusOK || got.Slot != "live" || got.Records != len(batchRecs) {
		t.Fatalf("trace fields: status=%d slot=%q records=%d, want 200/live/%d",
			got.Status, got.Slot, got.Records, len(batchRecs))
	}
	stages := map[string]bool{}
	var inferAttrs map[string]string
	for _, sp := range got.Spans {
		stages[sp.Name] = true
		if sp.Name == "infer" && sp.Attrs["chaos_delay_ms"] != "" {
			inferAttrs = sp.Attrs
		}
	}
	for _, want := range []string{"admit", "queue_wait", "batch_assembly", "infer", "encode"} {
		if !stages[want] {
			t.Fatalf("trace %s is missing the %s span (has %v)", wantID, want, stages)
		}
	}
	if inferAttrs == nil {
		t.Fatalf("no infer span carries chaos_delay_ms despite the injected stall: %+v", got.Spans)
	}
	// The stall must be attributed to the engine stage: infer dominates.
	infer, queue := got.StageDur("infer"), got.StageDur("queue_wait")
	if infer < 25*time.Millisecond {
		t.Fatalf("infer stage %v does not reflect the 30ms injected stall", infer)
	}
	if infer <= queue {
		t.Fatalf("stall attributed to queue_wait (%v) not infer (%v)", queue, infer)
	}

	// Error path: a bad body must answer 400 with the request ID echoed in
	// the JSON error, and the failed trace must be filterable.
	req, err = http.NewRequest(http.MethodPost, ts.URL+"/v1/detect-batch", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "badbadbadbadbad0")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	errBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body answered %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.Unmarshal(errBody, &er); err != nil {
		t.Fatalf("error body is not JSON: %s", errBody)
	}
	if er.RequestID != "badbadbadbadbad0" {
		t.Fatalf("error body request_id = %q, want the caller's ID", er.RequestID)
	}
	code, body = getBody(t, ts.URL+"/debug/traces?errors=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces?errors=1 = %d", code)
	}
	var errTraces tracesResponse
	if err := json.Unmarshal(body, &errTraces); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cand := range errTraces.Traces {
		if cand.ID == "badbadbadbadbad0" {
			found = true
			if cand.Status != http.StatusBadRequest || cand.Error == "" {
				t.Fatalf("failed trace recorded as status=%d error=%q", cand.Status, cand.Error)
			}
		}
	}
	if !found {
		t.Fatal("the 400 request's trace is missing from /debug/traces?errors=1")
	}
}

// TestObsOff pins the kill switch: with observability off the server
// still scores, /debug/traces is 404, and no stage histogram families
// appear in /metrics — the hot path carries no per-request telemetry.
func TestObsOff(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	a, _, recs := trainTestArtifact(t, "mlp", 11, 1)
	_, ts := newTestServer(t, a, Config{
		Replicas: 1, MaxBatch: 8, MaxWait: time.Millisecond, ObsOff: true,
	})

	resp, body := postJSON(t, ts.URL+"/v1/detect-batch", detectBatchRequest{Records: recordsJSON(recs)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scoring with -obs-off: status %d: %s", resp.StatusCode, body)
	}
	// The request ID still flows: correlation survives the kill switch.
	if resp.Header.Get(obs.RequestIDHeader) == "" {
		t.Fatal("no X-Request-Id echoed with observability off")
	}

	code, _ := getBody(t, ts.URL+"/debug/traces")
	if code != http.StatusNotFound {
		t.Fatalf("/debug/traces = %d with observability off, want 404", code)
	}

	fams := scrapeProm(t, ts.URL)
	for _, name := range []string{
		"pelican_serve_queue_wait_seconds",
		"pelican_serve_batch_assembly_seconds",
		"pelican_serve_infer_seconds",
		"pelican_serve_encode_seconds",
		"pelican_serve_batch_size",
	} {
		if fams[name] != nil {
			t.Fatalf("stage family %s exported despite -obs-off", name)
		}
	}
	// Core counters survive the kill switch.
	if fams["pelican_serve_records_total"] == nil {
		t.Fatal("pelican_serve_records_total missing with observability off")
	}
}
