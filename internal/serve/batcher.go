package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/nids"
	"repro/internal/obs"
)

// item is one record awaiting a verdict. out points into the originating
// request's verdict slice, so request↔verdict pairing is positional and
// survives any batch boundary the dispatcher cuts; wg is the request's
// completion barrier. ctx, when non-nil, carries the request's deadline:
// a worker sheds (never scores) a record whose ctx expired while it was
// queued, counting it on expired — the per-request tally the caller
// inspects to answer 503. Mirrored records carry a nil ctx (no deadline,
// no shedding). enqueuedAt and trace are the observability carriers: the
// worker turns enqueuedAt into the queue_wait stage observation and
// appends stage spans to trace; both are zero when the server runs with
// stage timing and tracing off.
type item struct {
	rec        *data.Record
	out        *nids.Verdict
	wg         *sync.WaitGroup
	ctx        context.Context
	expired    *atomic.Int64
	enqueuedAt time.Time
	trace      *obs.Trace
}

// flushedBatch is one cut batch plus its assembly timing: openedAt is when
// the dispatcher received the batch's first record, flushedAt when the
// batch was cut (MaxBatch reached or MaxWait expired). The difference is
// the batch_assembly stage.
type flushedBatch struct {
	items     []item
	openedAt  time.Time
	flushedAt time.Time
}

// shed reports whether this record's deadline ran out (or its request was
// abandoned) and it must not be scored.
func (it *item) shed() bool {
	return it.ctx != nil && it.ctx.Err() != nil
}

// batcherConfig tunes the dynamic batcher.
type batcherConfig struct {
	// MaxBatch flushes a batch as soon as it holds this many records.
	MaxBatch int
	// MaxWait flushes a non-empty batch this long after its first record
	// arrived, bounding the latency cost of waiting for co-travelers.
	MaxWait time.Duration
	// QueueDepth bounds the record queue; enqueues block when it is full
	// (deliberate backpressure, mirroring nids.Config.QueueDepth).
	QueueDepth int
}

// batcher groups individually-enqueued records into batches: a batch is
// flushed when it reaches MaxBatch records or MaxWait after its first
// record, whichever comes first. The first record of a batch is never
// delayed beyond MaxWait, and records already queued never wait at all.
type batcher struct {
	cfg     batcherConfig
	in      chan item
	batches chan flushedBatch
	slabs   sync.Pool // [] item backing arrays recycled across batches
	done    chan struct{}

	// closeMu guards the closed flag against concurrent enqueues: each
	// scorer's batcher can now be closed while requests race to enqueue
	// (slot replaced mid-request), so enqueue must observe the close
	// instead of panicking on a closed channel. Enqueues take the read
	// side — cheap and shared — and close takes the write side exactly
	// once.
	closeMu sync.RWMutex
	closed  bool
}

func newBatcher(cfg batcherConfig) *batcher {
	b := &batcher{
		cfg:     cfg,
		in:      make(chan item, cfg.QueueDepth),
		batches: make(chan flushedBatch, 1),
		done:    make(chan struct{}),
	}
	go b.dispatch()
	return b
}

// enqueue submits one record for scoring. With block, a full queue
// applies backpressure (the request path) — bounded by the item's ctx,
// whose expiry abandons the wait (the caller sheds the request rather
// than parking a handler goroutine forever behind a saturated batcher).
// Without block, a full queue returns false immediately (the
// shadow-mirroring path, where dropping a mirror beats slowing live
// traffic). It also returns false — without enqueuing — once the batcher
// is closed: the caller's slot was replaced and it must retry on the
// successor generation. Callers distinguish the two false cases by the
// item's ctx error. A true return guarantees the record will be scored
// or shed-with-accounting (close drains the queue before stopping).
func (b *batcher) enqueue(it item, block bool) bool {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return false
	}
	if block {
		if it.ctx != nil {
			select {
			case b.in <- it:
				return true
			case <-it.ctx.Done():
				return false
			}
		}
		b.in <- it
		return true
	}
	select {
	case b.in <- it:
		return true
	default:
		return false
	}
}

// queueLen reports the current queue depth (for the /metrics gauge).
func (b *batcher) queueLen() int { return len(b.in) }

// close stops intake, flushes whatever is queued, and waits for the
// dispatcher to exit. The batches channel is closed afterwards, which is
// the workers' signal to drain and stop. Safe to call more than once.
// Acquiring the write lock cannot deadlock against a blocked enqueue: the
// dispatcher keeps draining the queue until the channel closes, so every
// in-flight send completes and releases its read lock.
func (b *batcher) close() {
	b.closeMu.Lock()
	if !b.closed {
		b.closed = true
		close(b.in)
	}
	b.closeMu.Unlock()
	<-b.done
}

func (b *batcher) getSlab() []item {
	if s, ok := b.slabs.Get().(*[]item); ok {
		return (*s)[:0]
	}
	return make([]item, 0, b.cfg.MaxBatch)
}

// putSlab returns a delivered batch's backing array for reuse. Workers
// call it after the batch's verdicts are written. Slabs whose capacity
// exceeds MaxBatch are dropped instead of pooled — a defensive cap:
// today's dispatcher never grows a slab past MaxBatch, but a future
// change that over-appends would otherwise keep recycling the oversized
// array between GC cycles, inflating every pooled batch to burst size.
func (b *batcher) putSlab(s []item) {
	if cap(s) > b.cfg.MaxBatch {
		return // oversized: let the GC take it
	}
	for i := range s {
		s[i] = item{} // drop record/waitgroup references for the GC
	}
	s = s[:0]
	b.slabs.Put(&s)
}

// dispatch is the single goroutine that cuts batches.
func (b *batcher) dispatch() {
	defer close(b.batches)
	defer close(b.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-b.in
		if !ok {
			return
		}
		opened := time.Now()
		batch := append(b.getSlab(), first)
		timer.Reset(b.cfg.MaxWait)
		timerFired := false
	fill:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case it, ok := <-b.in:
				if !ok {
					b.batches <- flushedBatch{items: batch, openedAt: opened, flushedAt: time.Now()}
					return
				}
				batch = append(batch, it)
			case <-timer.C:
				timerFired = true
				break fill
			}
		}
		if !timerFired && !timer.Stop() {
			<-timer.C
		}
		b.batches <- flushedBatch{items: batch, openedAt: opened, flushedAt: time.Now()}
	}
}
