package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/nids"
	"repro/internal/registry"
)

// scorer is one slot's scoring machinery: sharded detector replicas fed by
// a private dynamic batcher. Every slot in the model registry owns its
// own scorer, so a request is validated, batched, and scored entirely
// within one model generation — promotions and rollbacks re-point tags at
// instances, they never tear a request across generations. A scorer is
// immutable after construction; retiring a slot closes its scorer, which
// drains the queue (every accepted record is scored) and stops the
// workers.
type scorer struct {
	b         *batcher
	detectors []nids.BatchDetector
	maxBatch  int
	gm        *serverMetrics
	workerWG  sync.WaitGroup
	closeOnce sync.Once
}

// newScorer builds the replicas for a (engine-selected) and starts the
// scoring workers. gm (may be nil in tests) receives the server-wide batch
// aggregates; per-slot counters are the handlers' business — they know
// which tag a request resolved to, the scorer deliberately does not (a
// promotion re-tags this scorer without touching it).
func newScorer(a *Artifact, cfg Config, gm *serverMetrics) (*scorer, error) {
	sc := &scorer{maxBatch: cfg.MaxBatch, gm: gm}
	for i := 0; i < cfg.Replicas; i++ {
		var det nids.BatchDetector
		var err error
		switch cfg.Engine {
		case EngineF32:
			// The first replica triggers the one-time lowering; the rest (and
			// any pre-validation done before publish) share the cached plan.
			det, err = a.NewInferDetector()
		case EngineF64:
			det, err = a.NewDetector()
		default:
			return nil, fmt.Errorf("serve: unknown engine %q (want %q or %q)", cfg.Engine, EngineF32, EngineF64)
		}
		if err != nil {
			return nil, err
		}
		sc.detectors = append(sc.detectors, det)
	}
	sc.b = newBatcher(batcherConfig{MaxBatch: cfg.MaxBatch, MaxWait: cfg.MaxWait, QueueDepth: cfg.QueueDepth})
	for i := 0; i < cfg.Replicas; i++ {
		sc.workerWG.Add(1)
		go sc.worker(i)
	}
	return sc, nil
}

// worker is one replica's scoring loop: it pulls flushed batches, scores
// them on its own replica, and fans verdicts back out to the originating
// requests.
func (sc *scorer) worker(i int) {
	defer sc.workerWG.Done()
	det := sc.detectors[i]
	recs := make([]*data.Record, 0, sc.maxBatch)
	verdicts := make([]nids.Verdict, sc.maxBatch)
	for batch := range sc.b.batches {
		recs = recs[:0]
		for j := range batch {
			recs = append(recs, batch[j].rec)
		}
		if len(batch) > len(verdicts) {
			verdicts = make([]nids.Verdict, len(batch))
		}
		out := verdicts[:len(batch)]
		det.DetectBatch(recs, out)
		attacks := int64(0)
		for j := range batch {
			*batch[j].out = out[j]
			if out[j].IsAttack {
				attacks++
			}
			batch[j].wg.Done()
		}
		if sc.gm != nil {
			sc.gm.batches.Add(1)
			sc.gm.batchRecords.Add(int64(len(batch)))
			sc.gm.attacks.Add(attacks)
		}
		sc.b.putSlab(batch)
	}
}

// score funnels a request's records through the batcher and blocks until
// every verdict is written. Pairing is positional: item i carries a
// pointer to verdicts[i], so however the dispatcher cuts batches, each
// record gets its own verdict. It returns false — with no verdicts
// guaranteed — when the scorer was closed before every record could be
// enqueued (the slot was replaced mid-request); the caller re-resolves the
// slot and retries on the successor. Records accepted before the close are
// still scored (close drains), so the wait below never hangs.
func (sc *scorer) score(recs []data.Record, verdicts []nids.Verdict) bool {
	return sc.submit(recs, verdicts, true)
}

// tryScore is score for the mirroring path: enqueues never block (a full
// shadow queue drops the mirror rather than slowing anything), and a
// partial enqueue counts as a drop — the caller must not compare verdicts
// from a half-scored mirror.
func (sc *scorer) tryScore(recs []data.Record, verdicts []nids.Verdict) bool {
	return sc.submit(recs, verdicts, false)
}

func (sc *scorer) submit(recs []data.Record, verdicts []nids.Verdict, block bool) bool {
	var wg sync.WaitGroup
	wg.Add(len(recs))
	enqueued := len(recs)
	ok := true
	for i := range recs {
		if !sc.b.enqueue(item{rec: &recs[i], out: &verdicts[i], wg: &wg}, block) {
			// The unenqueued tail must release its WaitGroup slots, and the
			// already-enqueued head must be waited out (its verdict writers
			// hold pointers into verdicts) before the caller may retry.
			enqueued, ok = i, false
			break
		}
	}
	for i := enqueued; i < len(recs); i++ {
		wg.Done()
	}
	wg.Wait()
	return ok
}

// queueLen reports the batcher queue depth (for the /metrics gauge).
func (sc *scorer) queueLen() int { return sc.b.queueLen() }

// close drains the batcher (queued records are all scored) and stops the
// workers. Safe to call more than once.
func (sc *scorer) close() {
	sc.closeOnce.Do(func() {
		sc.b.close()
		sc.workerWG.Wait()
	})
}

// slotInstance is what the serve layer loads into a registry slot: the
// artifact plus its ready scoring machinery and load metadata. It is the
// registry.Instance the /v2 control plane shuffles between tags.
type slotInstance struct {
	artifact *Artifact
	scorer   *scorer
	loadedAt time.Time
}

var _ registry.Instance = (*slotInstance)(nil)

// Version implements registry.Instance.
func (si *slotInstance) Version() string { return si.artifact.Version() }
