package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/nids"
	"repro/internal/obs"
	"repro/internal/registry"
)

// scorer is one slot's scoring machinery: sharded detector replicas fed by
// a private dynamic batcher. Every slot in the model registry owns its
// own scorer, so a request is validated, batched, and scored entirely
// within one model generation — promotions and rollbacks re-point tags at
// instances, they never tear a request across generations. A scorer is
// immutable after construction; retiring a slot closes its scorer, which
// drains the queue (every accepted record is scored or, past its
// deadline, shed with accounting) and stops the workers.
type scorer struct {
	b         *batcher
	detectors []nids.BatchDetector
	maxBatch  int
	gm        *serverMetrics
	// stages holds this slot's per-stage latency histograms and drives the
	// per-record timestamping; nil disables all stage timing and span
	// recording (Config.ObsOff).
	stages    *stageMetrics
	chaos     chaosDelayer
	workerWG  sync.WaitGroup
	closeOnce sync.Once
}

// chaosDelayer is the slice of chaos.Injector the scorer consumes: the
// injected extra service time for one replica's next batch. Declared as a
// local interface so the scorer stays testable without the chaos package.
type chaosDelayer interface {
	DelayFor(replica int) time.Duration
}

// submitResult is the outcome of funneling one request through a slot's
// batcher.
type submitResult int

const (
	// submitOK: every record was scored and its verdict written.
	submitOK submitResult = iota
	// submitClosed: the slot was swapped mid-request; the caller must
	// re-resolve the tag and retry on the successor generation.
	submitClosed
	// submitExpired: the request's deadline ran out before every record
	// could be scored; at least one record was shed (tallied on the
	// caller's expired counter) and the verdicts must be discarded.
	submitExpired
)

// newScorer builds the replicas for a (engine-selected) and starts the
// scoring workers. gm (may be nil in tests) receives the server-wide batch
// aggregates; per-slot counters are the handlers' business — they know
// which tag a request resolved to, the scorer deliberately does not (a
// promotion re-tags this scorer without touching it).
func newScorer(a *Artifact, cfg Config, gm *serverMetrics) (*scorer, error) {
	sc := &scorer{maxBatch: cfg.MaxBatch, gm: gm, chaos: cfg.Chaos}
	if !cfg.ObsOff {
		sc.stages = newStageMetrics()
	}
	for i := 0; i < cfg.Replicas; i++ {
		var det nids.BatchDetector
		var err error
		switch cfg.Engine {
		case EngineF32:
			// The first replica triggers the one-time lowering; the rest (and
			// any pre-validation done before publish) share the cached plan.
			det, err = a.NewInferDetector()
		case EngineF64:
			det, err = a.NewDetector()
		default:
			return nil, fmt.Errorf("serve: unknown engine %q (want %q or %q)", cfg.Engine, EngineF32, EngineF64)
		}
		if err != nil {
			return nil, err
		}
		sc.detectors = append(sc.detectors, det)
	}
	sc.b = newBatcher(batcherConfig{MaxBatch: cfg.MaxBatch, MaxWait: cfg.MaxWait, QueueDepth: cfg.QueueDepth})
	for i := 0; i < cfg.Replicas; i++ {
		sc.workerWG.Add(1)
		go sc.worker(i)
	}
	return sc, nil
}

// traceAgg accumulates one request's slice of a batch so the worker can
// append one span set per (trace, batch) instead of one per record.
type traceAgg struct {
	tr       *obs.Trace
	firstEnq time.Time
}

// worker is one replica's scoring loop: it pulls flushed batches, sheds
// the records whose deadline expired while they queued, scores the rest
// on its own replica, and fans verdicts back out to the originating
// requests. Shedding happens here — at the last moment before the
// network pass — because that is when queueing delay has actually been
// paid: a record that waited out its budget gets a shed tally instead of
// a stale verdict nobody is waiting for. With stage metrics enabled the
// worker also feeds the queue_wait/batch_assembly/infer histograms and
// appends the matching spans to each request's trace — before releasing
// the request's WaitGroup, so a trace is complete by the time its handler
// can finish it.
//
//pelican:noalloc
func (sc *scorer) worker(i int) {
	defer sc.workerWG.Done()
	replica := strconv.Itoa(i)
	recs := make([]*data.Record, 0, sc.maxBatch)
	live := make([]*item, 0, sc.maxBatch)
	verdicts := make([]nids.Verdict, sc.maxBatch)
	aggs := make([]traceAgg, 0, 8)
	// attrs is the infer span's attribute list, identical for every trace
	// in a batch: built once per batch into this recycled buffer instead
	// of a fresh slice literal per trace.
	attrs := make([]string, 0, 6)
	for fb := range sc.b.batches {
		batch := fb.items
		st := sc.stages
		var pickup time.Time
		if st != nil {
			pickup = time.Now()
			st.assembly.ObserveDuration(fb.flushedAt.Sub(fb.openedAt))
			st.batchSize.Observe(float64(len(batch)))
		}
		recs, live, aggs = recs[:0], live[:0], aggs[:0]
		for j := range batch {
			it := &batch[j]
			if it.shed() {
				it.expired.Add(1)
				it.wg.Done()
				continue
			}
			recs = append(recs, it.rec)
			live = append(live, it)
			if st != nil {
				st.queueWait.ObserveDuration(pickup.Sub(it.enqueuedAt))
				if it.trace != nil {
					found := false
					for k := range aggs {
						if aggs[k].tr == it.trace {
							if it.enqueuedAt.Before(aggs[k].firstEnq) {
								aggs[k].firstEnq = it.enqueuedAt
							}
							found = true
							break
						}
					}
					if !found {
						aggs = append(aggs, traceAgg{tr: it.trace, firstEnq: it.enqueuedAt})
					}
				}
			}
		}
		if len(recs) > 0 {
			var chaosDelay time.Duration
			inferStart := pickup
			if st != nil && inferStart.IsZero() {
				inferStart = time.Now()
			}
			if sc.chaos != nil {
				// The injected stall is charged to the infer stage: chaos
				// models a slow replica, and stage attribution is exactly what
				// the chaos e2e asserts on.
				if d := sc.chaos.DelayFor(i); d > 0 {
					chaosDelay = d
					time.Sleep(d)
				}
			}
			if len(recs) > len(verdicts) {
				verdicts = make([]nids.Verdict, len(recs))
			}
			out := verdicts[:len(recs)]
			sc.detectors[i].DetectBatch(recs, out)
			var inferDur time.Duration
			if st != nil {
				inferDur = time.Since(inferStart)
				st.infer.ObserveDuration(inferDur)
			}
			attacks := int64(0)
			for j, it := range live {
				*it.out = out[j]
				if out[j].IsAttack {
					attacks++
				}
			}
			// Spans must land before the WaitGroup releases: once every
			// record is Done the handler may Finish (seal) the trace.
			batchSize := strconv.Itoa(len(recs))
			attrs = append(attrs[:0], "replica", replica, "batch", batchSize)
			if chaosDelay > 0 {
				attrs = append(attrs, "chaos_delay_ms", strconv.FormatInt(chaosDelay.Milliseconds(), 10))
			}
			for k := range aggs {
				a := &aggs[k]
				a.tr.Span("queue_wait", a.firstEnq, pickup.Sub(a.firstEnq))
				a.tr.Span("batch_assembly", fb.openedAt, fb.flushedAt.Sub(fb.openedAt), "batch", batchSize)
				a.tr.Span("infer", inferStart, inferDur, attrs...)
			}
			for _, it := range live {
				it.wg.Done()
			}
			if sc.gm != nil {
				sc.gm.batches.Add(1)
				sc.gm.batchRecords.Add(int64(len(recs)))
				sc.gm.attacks.Add(attacks)
			}
		}
		sc.b.putSlab(batch)
	}
}

// score funnels a request's records through the batcher and blocks until
// every verdict is written (or the record is shed). Pairing is
// positional: item i carries a pointer to verdicts[i], so however the
// dispatcher cuts batches, each record gets its own verdict. ctx bounds
// the whole interaction: a deadline that expires while records wait —
// for queue space or, once queued, for a replica — sheds them (tallied
// on expired) and returns submitExpired. submitClosed means the scorer
// was closed before every record could be enqueued (the slot was
// replaced mid-request); the caller re-resolves the slot and retries on
// the successor. Records accepted before a close are still scored or
// shed (close drains), so the wait below never hangs. tr, when non-nil,
// receives the stage spans the workers record for this request.
func (sc *scorer) score(ctx context.Context, recs []data.Record, verdicts []nids.Verdict, expired *atomic.Int64, tr *obs.Trace) submitResult {
	return sc.submit(ctx, recs, verdicts, expired, true, tr)
}

// tryScore is score for the mirroring path: enqueues never block (a full
// shadow queue drops the mirror rather than slowing anything), records
// carry no deadline, and a partial enqueue counts as a drop — the caller
// must not compare verdicts from a half-scored mirror.
func (sc *scorer) tryScore(recs []data.Record, verdicts []nids.Verdict, tr *obs.Trace) bool {
	return sc.submit(nil, recs, verdicts, nil, false, tr) == submitOK
}

func (sc *scorer) submit(ctx context.Context, recs []data.Record, verdicts []nids.Verdict, expired *atomic.Int64, block bool, tr *obs.Trace) submitResult {
	var wg sync.WaitGroup
	wg.Add(len(recs))
	enqueued := len(recs)
	res := submitOK
	var enqAt time.Time
	if sc.stages != nil {
		enqAt = time.Now()
	}
	for i := range recs {
		if !sc.b.enqueue(item{rec: &recs[i], out: &verdicts[i], wg: &wg, ctx: ctx, expired: expired, enqueuedAt: enqAt, trace: tr}, block) {
			// The unenqueued tail must release its WaitGroup slots, and the
			// already-enqueued head must be waited out (its verdict writers
			// hold pointers into verdicts) before the caller may retry or
			// answer. An expired ctx takes precedence over a concurrent
			// close: the request is out of budget either way, and shedding
			// is the deterministic answer.
			enqueued = i
			if ctx != nil && ctx.Err() != nil {
				res = submitExpired
				expired.Add(int64(len(recs) - i))
			} else {
				res = submitClosed
			}
			break
		}
	}
	for i := enqueued; i < len(recs); i++ {
		wg.Done()
	}
	wg.Wait()
	if res == submitOK && expired != nil && expired.Load() > 0 {
		// Some queued records were shed by a worker: the request missed its
		// deadline even though every record was accepted.
		res = submitExpired
	}
	return res
}

// queueLen reports the batcher queue depth (for the /metrics gauge and
// the admission controller's watermark check).
func (sc *scorer) queueLen() int { return sc.b.queueLen() }

// close drains the batcher (queued records are all scored or shed) and
// stops the workers. Safe to call more than once.
func (sc *scorer) close() {
	sc.closeOnce.Do(func() {
		sc.b.close()
		sc.workerWG.Wait()
	})
}

// slotInstance is what the serve layer loads into a registry slot: the
// artifact plus its ready scoring machinery and load metadata. It is the
// registry.Instance the /v2 control plane shuffles between tags.
type slotInstance struct {
	artifact *Artifact
	scorer   *scorer
	loadedAt time.Time
	// wireFP is the artifact schema's wire fingerprint, precomputed at
	// load so the binary transport's per-request check is a compare.
	wireFP uint64
}

var _ registry.Instance = (*slotInstance)(nil)

// Version implements registry.Instance.
func (si *slotInstance) Version() string { return si.artifact.Version() }
