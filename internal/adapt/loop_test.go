package adapt

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/flow"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/synth"
)

// tinyCfg is a small NSL-KDD-shaped dataset so training stays fast.
func tinyCfg() synth.Config {
	cfg := synth.NSLKDDConfig()
	cfg.Name = "nsl-tiny"
	cfg.NumericName = cfg.NumericName[:10]
	cfg.Cats = []synth.CatSpec{{Name: "proto", Card: 3}, {Name: "service", Card: 6}}
	cfg.Classes = []synth.ClassSpec{
		{Name: "normal", Weight: 0.6},
		{Name: "dos", Weight: 0.25},
		{Name: "probe", Weight: 0.15},
	}
	cfg.LatentDim = 6
	cfg.QuadTerms = 4
	return cfg
}

// trainTinyArtifact fits an MLP on the generator and packs the artifact.
func trainTinyArtifact(t *testing.T, gen *synth.Generator, records, epochs int, seed int64) *serve.Artifact {
	t.Helper()
	ds := gen.Generate(records, seed)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(seed))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(seed+1)), features, classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	net.Fit(x.Reshape(x.Dim(0), 1, features), y, nn.FitConfig{
		Epochs: epochs, BatchSize: 128, Shuffle: true, RNG: rng,
	})
	a, err := serve.NewArtifact("mlp", models.PaperBlockConfig(features), gen.Schema(), pipe, net)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// runPhase streams n flows from src through a fresh pipeline wired to the
// loop's tap and returns the phase's realized stats.
func runPhase(t *testing.T, src *flow.Source, det nids.Detector, l *Loop, n int) nids.StatsSnapshot {
	t.Helper()
	p := nids.New(det, nids.Config{Workers: 2, MicroBatch: 8, Tap: l.Observe})
	flows := make(chan flow.Flow, 32)
	go func() {
		defer close(flows)
		for i := 0; i < n; i++ {
			flows <- src.Next()
		}
	}()
	if err := p.Run(context.Background(), flows, nil); err != nil {
		t.Fatal(err)
	}
	return p.Stats()
}

// TestClosedLoopDriftRetrainHotReload is the end-to-end acceptance test:
// an injected distribution shift degrades the served model's detection
// rate, the drift monitor trips, the loop warm-start retrains on the
// sliding buffer, publishes a new content-addressed artifact through
// /v1/reload, and detection quality on the shifted traffic recovers — all
// while the scoring server keeps answering.
func TestClosedLoopDriftRetrainHotReload(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and streams thousands of flows")
	}
	cfg := tinyCfg()
	baseGen, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The drifted domain: attack classes mutate into new variants while
	// normal traffic keeps its distribution — the shift that lowers DR
	// without torching FAR.
	driftGen, err := synth.NewVariant(cfg, cfg.ProfileSeed+202, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}

	art := trainTinyArtifact(t, baseGen, 1500, 8, 21)

	srv, err := serve.New(art, serve.Config{Replicas: 2, MaxBatch: 16, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	client := serve.NewClient(ts.URL)

	var events []Event
	var evMu sync.Mutex
	loop, err := NewLoop(art, Config{
		// Windows big enough to hold several campaign cycles, so bursty
		// stationary traffic does not false-trip (threshold at default).
		Monitor:       MonitorConfig{RefWindow: 1024, Window: 512},
		BufferCap:     2048,
		MinRetrain:    256,
		RetrainEpochs: 3,
		ArtifactDir:   t.TempDir(),
		Publisher:     HTTPPublisher{Client: client},
		OnEvent: func(e Event) {
			evMu.Lock()
			events = append(events, e)
			evMu.Unlock()
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		loop.Run(ctx)
	}()

	det := &serve.RemoteDetector{Client: client}
	srcCfg := flow.SourceConfig{
		AttackRate:        0.15,
		EpisodeEvery:      200,
		EpisodeLen:        40,
		EpisodeAttackRate: 0.8,
		Seed:              9,
	}
	src, err := flow.NewSource(baseGen, srcCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Phase A: stationary traffic on the training distribution.
	baseline := runPhase(t, src, det, loop, 2800)
	if baseline.DR() < 0.5 {
		t.Fatalf("baseline DR %.2f too weak for the drift comparison to mean anything", baseline.DR())
	}
	if sig, z := loop.Stat(); loop.Retrains() != 0 {
		t.Fatalf("loop retrained on stationary traffic (stat %s z=%.1f)", sig, z)
	}

	// Inject the distribution shift and stream until the loop publishes.
	if err := src.SetGenerator(driftGen); err != nil {
		t.Fatal(err)
	}
	var drifted nids.StatsSnapshot
	deadline := time.Now().Add(2 * time.Minute)
	for loop.Retrains() == 0 {
		if time.Now().After(deadline) {
			sig, z := loop.Stat()
			t.Fatalf("loop never retrained under drift (max stat %s z=%.1f, events %v)", sig, z, events)
		}
		st := runPhase(t, src, det, loop, 512)
		drifted.TruePos += st.TruePos
		drifted.Missed += st.Missed
		drifted.FalseAlarms += st.FalseAlarms
		drifted.TrueNeg += st.TrueNeg
		drifted.Processed += st.Processed
	}
	t.Logf("baseline DR=%.3f FAR=%.3f; drifted DR=%.3f FAR=%.3f over %d flows",
		baseline.DR(), baseline.FAR(), drifted.DR(), drifted.FAR(), drifted.Processed)
	if drifted.DR() >= baseline.DR()-0.05 {
		t.Fatalf("injected drift did not measurably drop DR: %.3f -> %.3f", baseline.DR(), drifted.DR())
	}

	// The published generation must actually be served now.
	info, err := client.Model()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version == art.Version() {
		t.Fatalf("server still serves the original version %s after publish", info.Version)
	}
	if info.Version != loop.Version() {
		t.Fatalf("served version %s != loop's current generation %s", info.Version, loop.Version())
	}
	evMu.Lock()
	published := 0
	for _, e := range events {
		if e.Err != nil {
			t.Fatalf("adaptation event failed: %v", e)
		}
		if !e.Skipped {
			published++
			if e.Version == "" || e.TrainFlows < 256 {
				t.Fatalf("published event incomplete: %+v", e)
			}
		}
	}
	evMu.Unlock()
	if published == 0 {
		t.Fatal("no published adaptation event recorded")
	}

	// Phase C: the adaptation loop must recover detection quality on the
	// drifted distribution. A partial first retrain is legitimate — the
	// buffer at the first trip still holds pre-drift flows, and the
	// monitors re-trip on the residual mismatch and retrain again on a
	// fully-drifted buffer — so stream re-baselining traffic until the
	// measured window converges (or a deadline says it never does).
	recovered := runPhase(t, src, det, loop, 1500)
	deadline = time.Now().Add(2 * time.Minute)
	for recovered.DR() < baseline.DR()-0.15 {
		if time.Now().After(deadline) {
			t.Fatalf("recovered DR %.3f never came within 0.15 of baseline %.3f (%d retrains)",
				recovered.DR(), baseline.DR(), loop.Retrains())
		}
		recovered = runPhase(t, src, det, loop, 512)
	}
	t.Logf("recovered DR=%.3f FAR=%.3f after %d retrains (serving %s)",
		recovered.DR(), recovered.FAR(), loop.Retrains(), loop.Version())
	if recovered.DR() < drifted.DR() {
		t.Fatalf("retraining did not improve DR on drifted traffic: %.3f -> %.3f", drifted.DR(), recovered.DR())
	}
	if det.Errors() != 0 {
		t.Fatalf("remote detector saw %d request errors during the loop", det.Errors())
	}

	cancel()
	<-loopDone
}

// observeFlows streams n generated flows into the loop's tap with their
// ground-truth labels and oracle verdicts, filling the retraining buffer
// without a serving round-trip.
func observeFlows(t *testing.T, loop *Loop, gen *synth.Generator, n int, seed int64) {
	t.Helper()
	ds := gen.Generate(n, seed)
	for i := range ds.Records {
		f := flow.Flow{Record: ds.Records[i], TrueClass: ds.Records[i].Label}
		v := nids.Verdict{Class: f.TrueClass, IsAttack: f.TrueClass != 0, Score: 1}
		loop.Observe(&f, v)
	}
}

// TestGatedPromotionRejectsWorseRetrain pins the acceptance criterion: a
// retrain whose held-out detection quality is worse than the deployed
// model's is auto-rejected — it lands in the shadow slot but never becomes
// live — while a sane retrain over the same buffer passes the gate,
// promotes through shadow, and leaves the displaced generation available
// for rollback.
func TestGatedPromotionRejectsWorseRetrain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	gen, err := synth.New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	art := trainTinyArtifact(t, gen, 1200, 8, 41)
	srv, err := serve.New(art, serve.Config{Replicas: 1, MaxBatch: 16, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	// A deliberately destructive retrain: a warm-start learning rate of 3
	// torches the deployed weights, so the candidate must score worse than
	// live on the holdout (or alert on everything and trip the FAR guard).
	bad, err := NewLoop(art, Config{
		MinRetrain:    256,
		RetrainEpochs: 4,
		LR:            3,
		ArtifactDir:   t.TempDir(),
		Publisher:     ServerPublisher{Srv: srv},
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	observeFlows(t, bad, gen, 900, 51)
	ev := bad.adapt(Trigger{Signal: "normal-score", Z: 9})
	if ev.Err != nil {
		t.Fatalf("adapt failed outright: %v", ev)
	}
	if !ev.Rejected {
		t.Fatalf("destructive retrain was promoted: %+v", ev)
	}
	if ev.HoldoutFlows < minHoldout || ev.Version == "" {
		t.Fatalf("rejection event incomplete: %+v", ev)
	}
	if got := srv.Info().Version; got != art.Version() {
		t.Fatalf("rejected retrain became live: serving %s, want %s", got, art.Version())
	}
	if bad.Version() != art.Version() || bad.Retrains() != 0 {
		t.Fatalf("rejection advanced the loop generation: %s / %d retrains", bad.Version(), bad.Retrains())
	}
	// The rejected candidate is parked in shadow for inspection.
	shadowInfo, err := srv.InfoTag("shadow")
	if err != nil || shadowInfo.Version != ev.Version {
		t.Fatalf("rejected candidate not staged in shadow: %+v, %v", shadowInfo, err)
	}
	if s := ev.String(); !strings.Contains(s, "REJECTED") {
		t.Fatalf("rejection event renders as %q", s)
	}

	// After a rejection the warm-start base must be the deployed weights,
	// not the torched ones: a sane retrain from the same loop passes.
	bad.cfg.LR = 0.003
	if err := bad.resetNet(); err != nil {
		t.Fatal(err)
	}
	observeFlows(t, bad, gen, 900, 53)
	ev = bad.adapt(Trigger{Signal: "normal-score", Z: 9})
	if ev.Err != nil || ev.Rejected {
		t.Fatalf("sane retrain did not promote: %+v", ev)
	}
	if ev.HoldoutFlows < minHoldout {
		t.Fatalf("gate did not run on the sane retrain: %+v", ev)
	}
	if got := srv.Info().Version; got != ev.Version || bad.Retrains() != 1 {
		t.Fatalf("promotion did not land: serving %s, event %s, retrains %d", got, ev.Version, bad.Retrains())
	}
	// The promotion went through the registry: the displaced generation is
	// one rollback away.
	if err := srv.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Info().Version; got != art.Version() {
		t.Fatalf("rollback after gated promotion restored %s, want %s", got, art.Version())
	}
}

// TestGateOffRestoresUnconditionalPublish pins the escape hatch: with
// GateOff even a destructive retrain publishes (the pre-registry
// behavior), so deployments that cannot afford a holdout keep working.
func TestGateOffRestoresUnconditionalPublish(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	gen, err := synth.New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	art := trainTinyArtifact(t, gen, 600, 3, 43)
	srv, err := serve.New(art, serve.Config{Replicas: 1, MaxBatch: 16, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	loop, err := NewLoop(art, Config{
		MinRetrain:  256,
		LR:          3,
		GateOff:     true,
		ArtifactDir: t.TempDir(),
		Publisher:   ServerPublisher{Srv: srv},
	})
	if err != nil {
		t.Fatal(err)
	}
	observeFlows(t, loop, gen, 600, 61)
	ev := loop.adapt(Trigger{Signal: "normal-score", Z: 9})
	if ev.Err != nil || ev.Rejected || ev.HoldoutFlows != 0 {
		t.Fatalf("GateOff adapt = %+v, want ungated publish", ev)
	}
	if got := srv.Info().Version; got != ev.Version {
		t.Fatalf("ungated publish did not land: serving %s, want %s", got, ev.Version)
	}
}

// TestLoopSkipsWithThinBuffer pins the MinRetrain guard: a trip with too
// few buffered flows is reported as skipped, keeps the current generation,
// and publishes nothing.
func TestLoopSkipsWithThinBuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	gen, err := synth.New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	art := trainTinyArtifact(t, gen, 400, 2, 31)
	var events []Event
	loop, err := NewLoop(art, Config{
		MinRetrain:  1 << 30, // never enough
		ArtifactDir: t.TempDir(),
		OnEvent:     func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := loop.adapt(Trigger{Signal: "score", Z: 42})
	if !ev.Skipped {
		t.Fatalf("thin-buffer adapt was not skipped: %+v", ev)
	}
	if loop.Retrains() != 0 || loop.Version() != art.Version() {
		t.Fatal("skipped adapt changed the generation")
	}
	if ev.String() == "" {
		t.Fatal("empty event string")
	}
}

// TestLoopIgnoresFailedVerdicts pins that scorer outages feed neither the
// retraining buffer nor the drift monitors.
func TestLoopIgnoresFailedVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	gen, err := synth.New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	art := trainTinyArtifact(t, gen, 400, 2, 37)
	loop, err := NewLoop(art, Config{ArtifactDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	f := flow.Flow{Record: gen.SampleClass(rand.New(rand.NewSource(1)), 0), TrueClass: 0}
	for i := 0; i < 100; i++ {
		loop.Observe(&f, nids.Verdict{Failed: true})
	}
	if n := loop.Buffer().Len(); n != 0 {
		t.Fatalf("failed verdicts reached the retraining buffer: %d", n)
	}
	if sig, z := loop.Stat(); z != 0 {
		t.Fatalf("failed verdicts moved the %s monitor to z=%.2f", sig, z)
	}
}
