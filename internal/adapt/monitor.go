// Package adapt closes the loop between a running detection pipeline and
// the model it scores with: streaming drift monitors watch the score,
// alert-rate, and feature distributions a pipeline's feedback tap emits;
// when a monitored statistic drifts past threshold, the current model is
// warm-start retrained on a sliding buffer of recent labeled flows and the
// result is published as a new content-addressed artifact that hot-reloads
// into the scoring server — turning "train once, serve forever" into a
// self-healing deployment (the mitigation the paper's §VI "reason two"
// calls for when a fixed notion of normal stops being representative).
package adapt

import (
	"fmt"
	"math"
	"sync"
)

// DefaultThreshold is the |z| a monitor trips at unless configured
// otherwise.
const DefaultThreshold = 6

// MonitorConfig tunes one streaming drift monitor.
type MonitorConfig struct {
	// RefWindow is how many observations are frozen as the reference
	// distribution after construction or Reset. Default 512.
	RefWindow int
	// Window is the length of the sliding current window compared against
	// the reference. Default 512.
	Window int
	// Threshold is the |z| statistic that trips the monitor. The statistic
	// is a two-sample z-test on window means, so the threshold is in units
	// of combined standard errors. Default 6. The z-test assumes i.i.d.
	// observations; bursty signals (attack campaigns autocorrelate, so a
	// window is not an i.i.d. sample) run hotter than the ideal and need a
	// raised threshold — or better, feed the monitor a conditioned stream
	// whose mixture weights campaigns cannot move, as the adaptation Loop
	// does by monitoring scores separately per verdict.
	Threshold float64
	// Cooldown is how many observations the monitor stays quiet after a
	// trip before it may trip again, bounding the retrain rate when drift
	// persists. Default Window.
	Cooldown int
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.RefWindow <= 0 {
		c.RefWindow = 512
	}
	if c.Window <= 0 {
		c.Window = 512
	}
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Window
	}
	return c
}

// Monitor is a streaming drift detector over one scalar signal — the
// promotion of the offline drift study (experiments.RunDriftStudy) into a
// form a live pipeline can consume observation by observation. The first
// RefWindow observations after construction or Reset are frozen as the
// reference distribution; after that, a sliding window of the most recent
// Window observations is compared against the reference with a two-sample
// z-test on means, and the monitor trips when |z| exceeds Threshold.
//
// All methods are safe for concurrent use; Observe is cheap enough for a
// scoring hot path (a ring-buffer update and a handful of floats).
type Monitor struct {
	cfg MonitorConfig

	mu sync.Mutex
	// Reference accumulation (Welford).
	refN    int
	refMean float64
	refM2   float64
	// Sliding current window.
	ring       []float64
	head, n    int
	sum, sumsq float64
	// Trip bookkeeping.
	quiet int
	trips int64
}

// NewMonitor builds a monitor; zero-valued config fields get defaults.
func NewMonitor(cfg MonitorConfig) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{cfg: cfg, ring: make([]float64, cfg.Window)}
}

// Observe feeds one value and reports the current drift statistic plus
// whether this observation tripped the monitor. The statistic is 0 until
// both the reference and the current window are full.
func (m *Monitor) Observe(v float64) (z float64, tripped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	if m.refN < m.cfg.RefWindow {
		// Still collecting the reference distribution.
		m.refN++
		d := v - m.refMean
		m.refMean += d / float64(m.refN)
		m.refM2 += d * (v - m.refMean)
		return 0, false
	}

	// Slide the current window.
	if m.n == len(m.ring) {
		old := m.ring[m.head]
		m.sum -= old
		m.sumsq -= old * old
	} else {
		m.n++
	}
	m.ring[m.head] = v
	m.sum += v
	m.sumsq += v * v
	m.head = (m.head + 1) % len(m.ring)

	if m.n < len(m.ring) {
		return 0, false
	}
	z = m.stat()
	if m.quiet > 0 {
		m.quiet--
		return z, false
	}
	if math.Abs(z) > m.cfg.Threshold {
		m.trips++
		m.quiet = m.cfg.Cooldown
		return z, true
	}
	return z, false
}

// stat computes the two-sample z statistic; callers hold m.mu.
func (m *Monitor) stat() float64 {
	refVar := 0.0
	if m.refN > 1 {
		refVar = m.refM2 / float64(m.refN-1)
	}
	curN := float64(m.n)
	curMean := m.sum / curN
	curVar := (m.sumsq - m.sum*m.sum/curN) / math.Max(curN-1, 1)
	if curVar < 0 {
		curVar = 0 // float cancellation on near-constant signals
	}
	denom := math.Sqrt(refVar/float64(m.refN) + curVar/curN)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return (curMean - m.refMean) / denom
}

// Stat returns the current drift statistic (0 while windows are filling).
func (m *Monitor) Stat() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.refN < m.cfg.RefWindow || m.n < len(m.ring) {
		return 0
	}
	return m.stat()
}

// Ready reports whether both windows are full, i.e. the statistic is live.
func (m *Monitor) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.refN >= m.cfg.RefWindow && m.n >= len(m.ring)
}

// Trips returns how many times the monitor has tripped since construction.
func (m *Monitor) Trips() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trips
}

// Reset discards the reference and current windows so the monitor
// re-baselines on whatever it observes next — called after a retrained
// model is published, because the new model's score distribution is the
// new normal.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.refN, m.refMean, m.refM2 = 0, 0, 0
	m.head, m.n, m.sum, m.sumsq = 0, 0, 0, 0
	m.quiet = 0
}

// MonitorState is a Monitor's complete streaming state, exportable for
// checkpointing and restorable into a monitor with the same window
// geometry. All fields are plain values so the state gob-encodes.
type MonitorState struct {
	RefN    int
	RefMean float64
	RefM2   float64
	Ring    []float64
	Head    int
	N       int
	Sum     float64
	SumSq   float64
	Quiet   int
	Trips   int64
}

// State snapshots the monitor for a checkpoint. The ring is copied, so
// the snapshot stays stable while the monitor keeps observing.
func (m *Monitor) State() MonitorState {
	m.mu.Lock()
	defer m.mu.Unlock()
	ring := make([]float64, len(m.ring))
	copy(ring, m.ring)
	return MonitorState{
		RefN: m.refN, RefMean: m.refMean, RefM2: m.refM2,
		Ring: ring, Head: m.head, N: m.n, Sum: m.sum, SumSq: m.sumsq,
		Quiet: m.quiet, Trips: m.trips,
	}
}

// RestoreState replaces the monitor's streaming state with a checkpoint,
// so a restarted sidecar resumes its drift window instead of re-warming
// reference and current windows from scratch. A state whose ring length
// differs from the configured window (the config changed across the
// restart) or whose indices are out of range is rejected, leaving the
// monitor untouched.
func (m *Monitor) RestoreState(st MonitorState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(st.Ring) != len(m.ring) {
		return fmt.Errorf("adapt: checkpoint window %d does not match configured window %d", len(st.Ring), len(m.ring))
	}
	if st.Head < 0 || st.Head >= len(m.ring) || st.N < 0 || st.N > len(m.ring) || st.RefN < 0 {
		return fmt.Errorf("adapt: checkpoint monitor state out of range (head=%d n=%d refN=%d)", st.Head, st.N, st.RefN)
	}
	copy(m.ring, st.Ring)
	m.refN, m.refMean, m.refM2 = st.RefN, st.RefMean, st.RefM2
	m.head, m.n, m.sum, m.sumsq = st.Head, st.N, st.Sum, st.SumSq
	m.quiet, m.trips = st.Quiet, st.Trips
	return nil
}

// String summarizes monitor state for logs.
func (m *Monitor) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	state := "ready"
	if m.refN < m.cfg.RefWindow {
		state = "referencing"
	} else if m.n < len(m.ring) {
		state = "filling"
	}
	return fmt.Sprintf("monitor(%s ref=%d win=%d trips=%d)", state, m.refN, m.n, m.trips)
}
