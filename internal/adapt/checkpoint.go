package adapt

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"repro/internal/data"
	"repro/internal/store"
)

// Checkpointing persists the adaptation loop's streaming state — the
// four drift monitors' windows, the sliding flow buffer, and the retrain
// counter — so a restarted sidecar resumes its drift window exactly
// where the dead process left it, with no re-warming gap during which
// real drift would go unnoticed. The retraining network itself is NOT
// checkpointed: it warm-starts from the deployed artifact, which is the
// durable truth for weights.
//
// File format: a magic line, an 8-hex CRC32 of the payload, a newline,
// then the gob-encoded payload. Writes go through store.WriteAtomic, so
// a crash mid-save leaves the previous checkpoint intact; any torn or
// tampered file fails the CRC and is discarded, never half-applied.

// checkpointMagic begins every checkpoint file; bump the version suffix
// on incompatible payload changes.
const checkpointMagic = "PELICANCKPTv1\n"

// checkpointFormat is the payload schema version inside the gob.
const checkpointFormat = 1

// ErrCheckpointStale marks a structurally valid checkpoint that belongs
// to a different artifact generation than the loop's: its monitor
// windows describe another model's score distribution, so restoring it
// would alias two normals. Callers start fresh instead.
var ErrCheckpointStale = errors.New("adapt: checkpoint belongs to a different artifact generation")

// checkpointWire is the gob payload.
type checkpointWire struct {
	FormatVersion int
	Version       string // artifact generation the state describes
	SavedAt       time.Time
	Monitors      map[string]MonitorState
	Recs          []data.Record
	Labels        []int
	Seen          int64
	Retrains      int64
}

// monitorsByName keys the loop's monitors by their stable signal names —
// the checkpoint's join key across restarts.
func (l *Loop) monitorsByName() map[string]*Monitor {
	return map[string]*Monitor{
		"normal-score": l.normalScoreMon,
		"attack-score": l.attackScoreMon,
		"alert-rate":   l.alertMon,
		"feature-mean": l.featMon,
	}
}

// SaveCheckpoint atomically writes the loop's streaming state to path.
// Safe to call concurrently with Observe and Run: each component is
// snapshotted under its own lock.
func (l *Loop) SaveCheckpoint(path string) error {
	w := checkpointWire{
		FormatVersion: checkpointFormat,
		Version:       l.Version(),
		SavedAt:       time.Now().UTC(),
		Monitors:      map[string]MonitorState{},
		Retrains:      l.retrains.Load(),
	}
	for name, m := range l.monitorsByName() {
		w.Monitors[name] = m.State()
	}
	w.Recs, w.Labels, w.Seen = l.buf.State()

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(w); err != nil {
		return fmt.Errorf("adapt: encode checkpoint: %w", err)
	}
	out := make([]byte, 0, len(checkpointMagic)+9+payload.Len())
	out = append(out, checkpointMagic...)
	out = append(out, fmt.Sprintf("%08x\n", crc32.ChecksumIEEE(payload.Bytes()))...)
	out = append(out, payload.Bytes()...)
	return store.WriteAtomic(path, out)
}

// RestoreCheckpoint loads the state saved at path into the loop. It is
// all-or-nothing per component: a bad magic, CRC, format version, or
// artifact-version mismatch rejects the whole file (the loop keeps its
// fresh state), while per-monitor geometry mismatches skip only that
// monitor. Returns ErrCheckpointStale for a version mismatch and wraps
// os.ErrNotExist when no checkpoint exists, so callers can distinguish
// "first boot" from "corrupt state".
func (l *Loop) RestoreCheckpoint(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("adapt: read checkpoint: %w", err)
	}
	if !bytes.HasPrefix(b, []byte(checkpointMagic)) {
		return errors.New("adapt: checkpoint magic mismatch")
	}
	b = b[len(checkpointMagic):]
	if len(b) < 9 || b[8] != '\n' {
		return errors.New("adapt: checkpoint CRC header malformed")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(b[:8]), "%08x", &want); err != nil {
		return errors.New("adapt: checkpoint CRC header malformed")
	}
	payload := b[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return errors.New("adapt: checkpoint CRC mismatch (torn or corrupt file)")
	}
	var w checkpointWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return fmt.Errorf("adapt: decode checkpoint: %w", err)
	}
	if w.FormatVersion != checkpointFormat {
		return fmt.Errorf("adapt: checkpoint format %d, want %d", w.FormatVersion, checkpointFormat)
	}
	if w.Version != l.Version() {
		return fmt.Errorf("%w (checkpoint %s, deployed %s)", ErrCheckpointStale, w.Version, l.Version())
	}
	if err := l.buf.Restore(w.Recs, w.Labels, w.Seen); err != nil {
		return err
	}
	for name, m := range l.monitorsByName() {
		st, ok := w.Monitors[name]
		if !ok {
			continue
		}
		if err := m.RestoreState(st); err != nil {
			// Window geometry changed across the restart: this monitor
			// re-warms from scratch, the others resume.
			l.cfg.Logger.Warn("checkpoint monitor skipped", "signal", name, "error", err)
		}
	}
	l.retrains.Store(w.Retrains)
	return nil
}
