package adapt

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

func feed(m *Monitor, rng *rand.Rand, n int, mean, std float64) (tripped bool, lastZ float64) {
	for i := 0; i < n; i++ {
		z, t := m.Observe(mean + rng.NormFloat64()*std)
		lastZ = z
		if t {
			tripped = true
		}
	}
	return tripped, lastZ
}

func TestMonitorNoTripOnStationaryTraffic(t *testing.T) {
	m := NewMonitor(MonitorConfig{RefWindow: 256, Window: 256, Threshold: 8})
	rng := rand.New(rand.NewSource(1))
	if tripped, _ := feed(m, rng, 20000, 1.0, 0.5); tripped {
		t.Fatal("monitor tripped on a stationary stream")
	}
	if m.Trips() != 0 {
		t.Fatalf("trips = %d, want 0", m.Trips())
	}
}

func TestMonitorTripsOnMeanShift(t *testing.T) {
	m := NewMonitor(MonitorConfig{RefWindow: 256, Window: 256, Threshold: 8})
	rng := rand.New(rand.NewSource(2))
	feed(m, rng, 2000, 1.0, 0.5) // establish reference + window
	if !m.Ready() {
		t.Fatal("monitor not ready after 2000 stationary observations")
	}
	// A one-sigma mean shift must trip within one window of drifted data.
	tripped, z := feed(m, rng, 256, 1.5, 0.5)
	if !tripped {
		t.Fatalf("monitor did not trip on a 1σ mean shift (z=%.1f)", z)
	}
}

func TestMonitorTripsOnRateShift(t *testing.T) {
	// Binary signal: alert rate 3% -> 30% (an attack campaign of variants
	// the model half-misses would move it the other way; either direction
	// must trip on |z|).
	m := NewMonitor(MonitorConfig{RefWindow: 512, Window: 512, Threshold: 8})
	rng := rand.New(rand.NewSource(3))
	bin := func(p float64) float64 {
		if rng.Float64() < p {
			return 1
		}
		return 0
	}
	for i := 0; i < 4000; i++ {
		if _, tripped := m.Observe(bin(0.03)); tripped {
			t.Fatalf("tripped on stationary 3%% rate at %d", i)
		}
	}
	trippedAt := -1
	for i := 0; i < 512; i++ {
		if _, tripped := m.Observe(bin(0.30)); tripped {
			trippedAt = i
			break
		}
	}
	if trippedAt < 0 {
		t.Fatal("monitor did not trip on a 3%->30% rate shift within one window")
	}
}

func TestMonitorCooldownBoundsTripRate(t *testing.T) {
	m := NewMonitor(MonitorConfig{RefWindow: 128, Window: 128, Threshold: 6, Cooldown: 1000})
	rng := rand.New(rand.NewSource(4))
	feed(m, rng, 1000, 0, 0.3)
	// Persistent hard drift: without cooldown this would trip constantly.
	tripped, _ := feed(m, rng, 1000, 5, 0.3)
	if !tripped {
		t.Fatal("no trip on hard drift")
	}
	if got := m.Trips(); got != 1 {
		t.Fatalf("trips = %d during cooldown window, want exactly 1", got)
	}
	// After the cooldown elapses the still-drifted stream trips again.
	tripped, _ = feed(m, rng, 1500, 5, 0.3)
	if !tripped {
		t.Fatal("no re-trip after cooldown elapsed")
	}
}

func TestMonitorResetRebaselines(t *testing.T) {
	m := NewMonitor(MonitorConfig{RefWindow: 128, Window: 128, Threshold: 8})
	rng := rand.New(rand.NewSource(5))
	feed(m, rng, 1000, 0, 0.3)
	tripped, _ := feed(m, rng, 300, 4, 0.3)
	if !tripped {
		t.Fatal("no trip on drift")
	}
	// Re-baseline: the drifted distribution becomes the new normal and
	// must no longer trip.
	m.Reset()
	if m.Ready() {
		t.Fatal("monitor still ready after Reset")
	}
	if tripped, _ := feed(m, rng, 5000, 4, 0.3); tripped {
		t.Fatal("re-baselined monitor tripped on its own reference distribution")
	}
}

func TestMonitorStatDirection(t *testing.T) {
	m := NewMonitor(MonitorConfig{RefWindow: 256, Window: 256, Threshold: 1e9}) // never trips
	rng := rand.New(rand.NewSource(6))
	feed(m, rng, 2000, 1, 0.5)
	feed(m, rng, 256, 0.2, 0.5)
	if z := m.Stat(); z >= 0 {
		t.Fatalf("downward shift produced z=%.2f, want negative", z)
	}
}

func TestFlowBufferSlidesAndSnapshots(t *testing.T) {
	b := NewFlowBuffer(4)
	for i := 0; i < 7; i++ {
		b.Add(dataRecord(i), i)
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d, want 4", b.Len())
	}
	if b.Seen() != 7 {
		t.Fatalf("seen = %d, want 7", b.Seen())
	}
	recs, labels := b.Snapshot()
	for i, want := range []int{3, 4, 5, 6} {
		if labels[i] != want {
			t.Fatalf("snapshot labels = %v, want [3 4 5 6]", labels)
		}
		if recs[i].Numeric[0] != float64(want) {
			t.Fatalf("snapshot record %d carries %v", i, recs[i].Numeric)
		}
	}
}

func TestBalancedIndicesOversamplesMinority(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 900 normal, 90 dos, 10 probe.
	labels := make([]int, 0, 1000)
	for i := 0; i < 900; i++ {
		labels = append(labels, 0)
	}
	for i := 0; i < 90; i++ {
		labels = append(labels, 1)
	}
	for i := 0; i < 10; i++ {
		labels = append(labels, 2)
	}
	idx := balancedIndices(rng, labels, 3)
	counts := make([]int, 3)
	for _, i := range idx {
		counts[labels[i]]++
	}
	// sqrt-balancing: 900 stays 900, 90 -> ~285, 10 -> ~95.
	if counts[0] != 900 {
		t.Fatalf("majority count %d, want 900", counts[0])
	}
	if counts[1] < 250 || counts[1] > 320 {
		t.Fatalf("dos count %d, want ~285", counts[1])
	}
	if counts[2] < 80 || counts[2] > 110 {
		t.Fatalf("probe count %d, want ~95", counts[2])
	}
}

func dataRecord(i int) data.Record { return data.Record{Numeric: []float64{float64(i)}} }
