package adapt

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/flow"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// Publisher ships a retrained artifact into serving. Publish receives the
// artifact and the path of its saved .plcn file; implementations reload it
// into a scoring server (in-process or over HTTP).
type Publisher interface {
	Publish(path string, a *serve.Artifact) error
}

// StagedPublisher is a Publisher that can route a retrain through the
// serving registry's staged deployment: Stage loads the candidate into the
// shadow slot, Promote atomically makes it live (retaining the displaced
// generation for /v2/rollback). The loop prefers this flow when available
// — the candidate is visible (and mirrored against) in shadow before it
// ever takes live traffic, and a gate rejection leaves it parked there for
// inspection instead of publishing it.
type StagedPublisher interface {
	Publisher
	Stage(path string, a *serve.Artifact) error
	Promote() error
}

// ServerPublisher deploys retrained artifacts into an in-process scoring
// server through its model registry.
type ServerPublisher struct{ Srv *serve.Server }

var _ StagedPublisher = ServerPublisher{}

// Publish implements Publisher: a direct live-slot swap.
func (p ServerPublisher) Publish(_ string, a *serve.Artifact) error { return p.Srv.Reload(a) }

// Stage implements StagedPublisher: load the candidate into shadow.
func (p ServerPublisher) Stage(_ string, a *serve.Artifact) error {
	return p.Srv.LoadSlot(registry.Shadow, a)
}

// Promote implements StagedPublisher: shadow becomes live atomically.
func (p ServerPublisher) Promote() error { return p.Srv.Promote() }

// HTTPPublisher deploys retrained artifacts into a remote pelican-serve
// via the /v2 registry API (staged) or POST /v1/reload (direct). The
// artifact path must be readable by the server (same host or shared
// filesystem).
type HTTPPublisher struct{ Client *serve.Client }

var _ StagedPublisher = HTTPPublisher{}

// Publish implements Publisher: a direct live-slot swap via /v1/reload.
func (p HTTPPublisher) Publish(path string, _ *serve.Artifact) error {
	_, err := p.Client.Reload(path)
	return err
}

// Stage implements StagedPublisher via POST /v2/load?tag=shadow.
func (p HTTPPublisher) Stage(path string, _ *serve.Artifact) error {
	_, err := p.Client.LoadTag(path, registry.Shadow)
	return err
}

// Promote implements StagedPublisher via POST /v2/promote.
func (p HTTPPublisher) Promote() error {
	_, err := p.Client.Promote()
	return err
}

// Config tunes the adaptation loop.
type Config struct {
	// Monitor is the base configuration for the drift signals
	// (normal-score, attack-score, alert-rate, feature-mean); zero-valued
	// fields get MonitorConfig defaults. The attack-score monitor runs
	// half windows and a 1.5x threshold (attack verdicts are a minority of
	// flows, and campaigns sway their class mixture); the alert-rate
	// monitor runs a doubled threshold (campaigns legitimately swing it).
	Monitor MonitorConfig
	// BufferCap bounds the sliding retraining buffer. Default 4096.
	BufferCap int
	// MinRetrain is the fewest buffered flows worth retraining on; a trip
	// with less data is skipped (the monitor's cooldown schedules a later
	// retry). Default 256.
	MinRetrain int
	// RetrainEpochs is how many warm-start epochs each retrain runs over
	// the buffer. Default 3.
	RetrainEpochs int
	// BatchSize is the retraining minibatch size. Default 128.
	BatchSize int
	// LR is the warm-start learning rate — deliberately below a cold
	// start's, since retraining refines deployed weights. Default 0.003.
	LR float64
	// BalanceOff disables the default sqrt-oversampling of minority
	// classes in the retraining set (the compensation for the heavy
	// normal-traffic skew of a live buffer).
	BalanceOff bool
	// UseVerdictLabels trains on the detector's own predicted classes
	// (pseudo-labels) instead of ground-truth flow labels — the
	// self-training fallback for deployments without a labeling oracle.
	// Risky under heavy drift (the mislabeled flows are exactly the
	// drifted ones); off by default.
	UseVerdictLabels bool
	// ArtifactDir is where retrained artifacts are written, one
	// content-addressed file per generation. Default os.TempDir().
	ArtifactDir string
	// Publisher ships each retrained artifact; nil means save-only. A
	// StagedPublisher routes candidates through the serving registry's
	// shadow slot (stage → gate → promote).
	Publisher Publisher
	// HoldoutFrac is the fraction of the snapshot — its most recent flows,
	// the ones that best reflect post-drift traffic — excluded from
	// retraining and used to gate promotion: the candidate must score a
	// held-out detection rate no worse than the currently deployed model
	// (and not raise the held-out false-alarm rate by more than
	// GateFARSlack), or the retrain is rejected and never becomes live.
	// Default 0.2.
	HoldoutFrac float64
	// GateFARSlack is how much absolute held-out false-alarm-rate increase
	// a candidate may show and still promote — the guard against a
	// degenerate retrain "winning" on detection rate by alerting on
	// everything. Default 0.05.
	GateFARSlack float64
	// GateOff disables held-out gating, restoring the pre-registry
	// behavior: every successful retrain publishes unconditionally.
	GateOff bool
	// PublishAttempts caps total tries per publisher call (stage, promote,
	// or direct publish): transient failures — a mid-reload server, a
	// network blip between sidecar and scoring plane — are retried with
	// jittered exponential backoff before the retrain is abandoned (and
	// the drift monitors left primed to re-trip). Default 3; 1 disables
	// retries.
	PublishAttempts int
	// PublishBackoff is the first retry delay; each retry doubles it with
	// ±50% jitter. Default 200ms.
	PublishBackoff time.Duration
	// OnEvent, when non-nil, observes every adaptation attempt (from the
	// Run goroutine).
	OnEvent func(Event)
	// Logger receives structured lifecycle records (drift trips, retrains,
	// gate verdicts, publish retries); nil silences them.
	Logger *obs.Logger
	// TraceIDFn, when non-nil, is sampled at each monitor trip to stamp
	// the Trigger with the trace ID of the scoring request whose verdict
	// closed the drift window — typically a serve.Client's LastRequestID.
	// It joins an adaptation event back to the /debug/traces entry (and
	// server logs) of the flow that tripped it.
	TraceIDFn func() string
	// Seed drives retraining shuffles and balancing draws. Default 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.BufferCap <= 0 {
		c.BufferCap = 4096
	}
	if c.MinRetrain <= 0 {
		c.MinRetrain = 256
	}
	if c.RetrainEpochs <= 0 {
		c.RetrainEpochs = 3
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.LR <= 0 {
		c.LR = 0.003
	}
	if c.ArtifactDir == "" {
		c.ArtifactDir = os.TempDir()
	}
	if c.HoldoutFrac <= 0 {
		c.HoldoutFrac = 0.2
	}
	if c.HoldoutFrac > 0.5 {
		c.HoldoutFrac = 0.5
	}
	if c.GateFARSlack <= 0 {
		c.GateFARSlack = 0.05
	}
	if c.PublishAttempts <= 0 {
		c.PublishAttempts = 3
	}
	if c.PublishBackoff <= 0 {
		c.PublishBackoff = 200 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Trigger identifies which drift signal tripped and how hard.
type Trigger struct {
	// Signal is "normal-score", "attack-score", "alert-rate", or
	// "feature-mean".
	Signal string
	// Z is the drift statistic at the trip.
	Z float64
	// TraceID is the request trace that closed the drift window (from
	// Config.TraceIDFn); "" when unknown.
	TraceID string
}

// Event is one adaptation attempt: a monitor trip and what came of it.
type Event struct {
	Trigger  Trigger
	Buffered int
	// Skipped is set when the trip was not acted on (too few buffered
	// flows); Err carries failures of acted-on attempts.
	Skipped bool
	Err     error
	// TrainFlows/TrainLoss/Duration describe the retraining run.
	TrainFlows int
	TrainLoss  float64
	Duration   time.Duration
	// HoldoutFlows is how many buffered flows were held out of retraining
	// for the promotion gate (0 when the gate did not run: GateOff, no
	// publisher, or a buffer too thin to spare a meaningful holdout).
	HoldoutFlows int
	// CandidateDR/LiveDR are the gate's held-out detection rates (or, for
	// an attack-free holdout, accuracies) for the retrained candidate and
	// the deployed model; CandidateFAR/LiveFAR the matching false-alarm
	// rates.
	CandidateDR  float64
	LiveDR       float64
	CandidateFAR float64
	LiveFAR      float64
	// PublishTries is how many publisher calls the deployment took in
	// total (stage + promote or direct publish, including retried ones);
	// anything above the minimum means transient publish failures were
	// absorbed by backoff.
	PublishTries int
	// Rejected is set when the gate refused to promote the candidate: it
	// stays staged in the shadow slot (under a StagedPublisher) and the
	// live model is untouched. The next retrain warm-starts from the live
	// weights again, not the rejected ones.
	Rejected bool
	// LowerErr records a float32-lowering failure for the retrained
	// artifact. It is non-fatal — f64-engine servers serve the artifact
	// regardless, and an f32 server's reload re-validates and rejects it —
	// but a set LowerErr means f32 deployments will refuse this
	// generation.
	LowerErr error
	// Version/Path identify the published artifact.
	Version string
	Path    string
}

// String renders the event for logs.
func (e Event) String() string {
	switch {
	case e.Skipped:
		return fmt.Sprintf("adapt: drift on %s (z=%.1f) skipped: only %d flows buffered",
			e.Trigger.Signal, e.Trigger.Z, e.Buffered)
	case e.Err != nil:
		return fmt.Sprintf("adapt: drift on %s (z=%.1f) failed: %v", e.Trigger.Signal, e.Trigger.Z, e.Err)
	case e.Rejected:
		return fmt.Sprintf("adapt: drift on %s (z=%.1f) -> retrained on %d flows, REJECTED by gate: candidate DR %.3f / FAR %.3f vs live %.3f / %.3f on %d held-out flows (candidate %s stays in shadow)",
			e.Trigger.Signal, e.Trigger.Z, e.TrainFlows, e.CandidateDR, e.CandidateFAR, e.LiveDR, e.LiveFAR, e.HoldoutFlows, e.Version)
	default:
		s := fmt.Sprintf("adapt: drift on %s (z=%.1f) -> retrained on %d flows (loss %.4f) -> published %s in %s",
			e.Trigger.Signal, e.Trigger.Z, e.TrainFlows, e.TrainLoss, e.Version, e.Duration.Round(time.Millisecond))
		if e.HoldoutFlows > 0 {
			s += fmt.Sprintf(" (gate: DR %.3f vs live %.3f on %d held-out)", e.CandidateDR, e.LiveDR, e.HoldoutFlows)
		}
		if e.LowerErr != nil {
			s += fmt.Sprintf(" (f32 lowering failed: %v)", e.LowerErr)
		}
		return s
	}
}

// Loop is the closed adaptation loop. Wire Observe as the pipeline's
// feedback tap (nids.Config.Tap) and run Run in its own goroutine; when
// drift trips, Run warm-start retrains the artifact's network on the
// buffered flows, saves a new artifact, publishes it, and re-baselines the
// monitors on the new model's output distribution.
type Loop struct {
	cfg Config

	// Four drift signals. The score monitors are conditioned on the
	// verdict: a campaign changes how many flows land on each side of the
	// verdict but barely moves either side's score distribution, so the
	// conditioned streams stay quiet under bursty-but-stationary traffic
	// while a model-vs-traffic mismatch (new attack variants scored with
	// unfamiliar logits) shifts them hard and persistently. The alert-rate
	// monitor is the mixture signal campaigns do swing, so it runs at a
	// doubled threshold as a backstop for catastrophic shifts (e.g. the
	// whole background distribution moving).
	normalScoreMon *Monitor
	attackScoreMon *Monitor
	alertMon       *Monitor
	featMon        *Monitor
	buf            *FlowBuffer

	// Retraining lineage. net/pipe/rng are touched only by Run's
	// goroutine; art is read from anywhere (reports, publishers), so it
	// swaps atomically and readers never wait out a retrain.
	art  atomic.Pointer[serve.Artifact]
	net  *nn.Network
	pipe *data.Pipeline
	rng  *rand.Rand

	trips    chan Trigger
	retrains atomic.Int64
}

// NewLoop builds an adaptation loop seeded with the currently deployed
// artifact: retraining warm-starts from its weights, and every published
// generation becomes the warm-start base for the next.
func NewLoop(a *serve.Artifact, cfg Config) (*Loop, error) {
	cfg = cfg.withDefaults()
	opt := nn.NewRMSprop(cfg.LR)
	opt.MaxNorm = 5
	net, pipe, err := a.NewNetwork(nn.NewSoftmaxCrossEntropy(), opt)
	if err != nil {
		return nil, fmt.Errorf("adapt: reconstruct %s for warm start: %w", a.ModelName, err)
	}
	mc := cfg.Monitor.withDefaults()
	// Attack verdicts are a minority of traffic, so that monitor runs half
	// windows to keep its fill time comparable — but campaigns concentrate
	// a single attack class, which legitimately sways the attack-score
	// mixture, so it also runs a raised threshold.
	attackMC := mc
	attackMC.RefWindow = max(mc.RefWindow/2, 64)
	attackMC.Window = max(mc.Window/2, 64)
	attackMC.Threshold = mc.Threshold * 1.5
	alertMC := mc
	alertMC.Threshold = mc.Threshold * 2
	l := &Loop{
		cfg:            cfg,
		normalScoreMon: NewMonitor(mc),
		attackScoreMon: NewMonitor(attackMC),
		alertMon:       NewMonitor(alertMC),
		featMon:        NewMonitor(mc),
		buf:            NewFlowBuffer(cfg.BufferCap),
		net:            net,
		pipe:           pipe,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		trips:          make(chan Trigger, 1),
	}
	l.art.Store(a)
	return l, nil
}

// Observe is the pipeline feedback tap: it buffers the labeled flow,
// updates the drift monitors, and wakes the Run goroutine on a trip. It is
// safe for concurrent use and cheap enough for the scoring hot path. The
// *flow.Flow is not retained; its Record (per-flow storage) is.
func (l *Loop) Observe(f *flow.Flow, v nids.Verdict) {
	if v.Failed {
		// The detector could not score this flow; there is nothing here
		// about the model-vs-traffic fit, and letting the zero verdict
		// into the monitors would read a scorer outage as drift.
		return
	}
	label := f.TrueClass
	if l.cfg.UseVerdictLabels {
		if v.Class < 0 {
			return // class-blind detector: nothing to train on
		}
		label = v.Class
	}
	l.buf.Add(f.Record, label)

	isAttack := 0.0
	if v.IsAttack {
		isAttack = 1
	}
	feat := 0.0
	if len(f.Record.Numeric) > 0 {
		for _, x := range f.Record.Numeric {
			feat += x
		}
		feat /= float64(len(f.Record.Numeric))
	}

	if v.IsAttack {
		if z, tripped := l.attackScoreMon.Observe(v.Score); tripped {
			l.trip(Trigger{Signal: "attack-score", Z: z})
		}
	} else {
		if z, tripped := l.normalScoreMon.Observe(v.Score); tripped {
			l.trip(Trigger{Signal: "normal-score", Z: z})
		}
	}
	if z, tripped := l.alertMon.Observe(isAttack); tripped {
		l.trip(Trigger{Signal: "alert-rate", Z: z})
	}
	if z, tripped := l.featMon.Observe(feat); tripped {
		l.trip(Trigger{Signal: "feature-mean", Z: z})
	}
}

// trip wakes Run without ever blocking the scoring path: if a retrain is
// already pending, the extra trigger is dropped (the pending retrain will
// see the same buffered flows).
func (l *Loop) trip(t Trigger) {
	if l.cfg.TraceIDFn != nil {
		t.TraceID = l.cfg.TraceIDFn()
	}
	l.cfg.Logger.Info("drift tripped", "signal", t.Signal, "z", t.Z, "trace_id", t.TraceID)
	select {
	case l.trips <- t:
	default:
	}
}

// Run executes adaptation attempts until ctx is cancelled. It owns the
// retraining network; call it from exactly one goroutine.
func (l *Loop) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case trig := <-l.trips:
			ev := l.adapt(trig)
			l.logEvent(ev)
			if l.cfg.OnEvent != nil {
				l.cfg.OnEvent(ev)
			}
		}
	}
}

// logEvent emits one structured record per adaptation attempt, carrying
// the trace ID of the request that closed the drift window so the whole
// retrain lineage joins back to /debug/traces on the serving side.
func (l *Loop) logEvent(ev Event) {
	log := l.cfg.Logger
	if log == nil {
		return
	}
	kv := []any{
		"signal", ev.Trigger.Signal, "z", ev.Trigger.Z,
		"trace_id", ev.Trigger.TraceID, "buffered", ev.Buffered,
	}
	switch {
	case ev.Skipped:
		log.Info("retrain skipped", kv...)
	case ev.Err != nil:
		log.Error("adaptation failed", append(kv, "error", ev.Err, "publish_tries", ev.PublishTries)...)
	case ev.Rejected:
		log.Warn("candidate rejected by gate", append(kv,
			"version", ev.Version, "train_flows", ev.TrainFlows,
			"candidate_dr", ev.CandidateDR, "candidate_far", ev.CandidateFAR,
			"live_dr", ev.LiveDR, "live_far", ev.LiveFAR,
			"holdout_flows", ev.HoldoutFlows)...)
	default:
		kv = append(kv, "version", ev.Version, "train_flows", ev.TrainFlows,
			"train_loss", ev.TrainLoss, "publish_tries", ev.PublishTries,
			"dur", ev.Duration)
		if ev.HoldoutFlows > 0 {
			kv = append(kv, "candidate_dr", ev.CandidateDR, "live_dr", ev.LiveDR,
				"holdout_flows", ev.HoldoutFlows)
		}
		if ev.LowerErr != nil {
			kv = append(kv, "lower_error", ev.LowerErr)
		}
		log.Info("model published", kv...)
	}
}

// minHoldout is the fewest held-out flows a promotion gate is allowed to
// judge on; a thinner holdout skips the gate rather than gamble the live
// model on a noisy estimate.
const minHoldout = 32

// adapt services one monitor trip: warm-start retrain on the older part of
// the buffer, gate on the held-out recent part (candidate vs deployed),
// stage into shadow, and promote — or reject — accordingly.
func (l *Loop) adapt(trig Trigger) Event {
	ev := Event{Trigger: trig, Buffered: l.buf.Len()}
	if ev.Buffered < l.cfg.MinRetrain {
		// Not enough evidence to retrain on; the monitor cooldown will
		// re-trip later if the drift persists.
		ev.Skipped = true
		return ev
	}
	start := time.Now()

	recs, labels := l.buf.Snapshot()
	art := l.art.Load()

	// Carve the holdout off the recent end of the snapshot: the newest
	// flows are the best proxy for the post-drift traffic the promoted
	// model would face, and excluding them from retraining keeps the gate
	// honest (the candidate never trains on its own exam).
	n := len(recs)
	holdN := 0
	if !l.cfg.GateOff && l.cfg.Publisher != nil {
		holdN = int(float64(n) * l.cfg.HoldoutFrac)
		if n-holdN < l.cfg.MinRetrain {
			holdN = n - l.cfg.MinRetrain
		}
		if holdN < minHoldout {
			holdN = 0
		}
	}
	trainRecs, trainLabels := recs[:n-holdN], labels[:n-holdN]

	idx := allIndices(len(trainRecs))
	if !l.cfg.BalanceOff {
		idx = balancedIndices(l.rng, trainLabels, art.Classes())
	}
	f := l.pipe.Width()
	x := tensor.New(len(idx), f)
	y := make([]int, len(idx))
	for i, j := range idx {
		l.pipe.ApplyInto(&trainRecs[j], x.Row(i))
		y[i] = trainLabels[j]
	}

	stats := l.net.PartialFit(x.Reshape(len(idx), 1, f), y, nn.FitConfig{
		Epochs: l.cfg.RetrainEpochs, BatchSize: l.cfg.BatchSize,
		Shuffle: true, RNG: l.rng,
	})
	ev.TrainFlows = len(idx)
	ev.TrainLoss = stats[len(stats)-1].TrainLoss

	next, err := serve.NewArtifact(art.ModelName, art.Block, art.Schema, l.pipe, l.net)
	if err != nil {
		ev.Err = fmt.Errorf("capture artifact: %w", err)
		l.discardRetrain(&ev)
		return ev
	}
	// Recompile the float32 inference plan before publication: for
	// in-process publishers this warms the exact plan cache the swapped-in
	// f32 replicas will read (the reload never pays the lowering inline),
	// and a lowering failure surfaces here, on the event, before the
	// server sees the artifact. It is deliberately non-fatal: an
	// f64-engine deployment can serve — and must still be able to adapt
	// with — an artifact the f32 compiler cannot express, and an f32
	// server's reload re-validates and rejects such an artifact itself.
	if _, err := next.Plan(); err != nil {
		ev.LowerErr = err
	}
	path := filepath.Join(l.cfg.ArtifactDir, fmt.Sprintf("%s-%s.plcn", next.ModelName, next.Version()))
	if err := serve.SaveArtifactFile(path, next); err != nil {
		ev.Err = fmt.Errorf("save artifact: %w", err)
		l.discardRetrain(&ev)
		return ev
	}
	ev.Version = next.Version()
	ev.Path = path

	// Gate: the candidate must be no worse than the deployed model on the
	// held-out slice — detection rate first, with a false-alarm-rate guard
	// so a retrain cannot "win" by alerting on everything.
	pass := true
	if holdN > 0 {
		holdRecs, holdLabels := recs[n-holdN:], labels[n-holdN:]
		liveDet, err := art.NewDetector()
		if err != nil {
			ev.Err = fmt.Errorf("rebuild live detector for gate: %w", err)
			l.discardRetrain(&ev)
			return ev
		}
		candDet := &nids.ModelDetector{ModelName: art.ModelName, Net: l.net, Pipe: l.pipe}
		cand := gateScore(candDet, holdRecs, holdLabels)
		live := gateScore(liveDet, holdRecs, holdLabels)
		ev.HoldoutFlows = holdN
		ev.CandidateDR, ev.CandidateFAR = cand.dr, cand.far
		ev.LiveDR, ev.LiveFAR = live.dr, live.far
		pass = cand.dr >= live.dr && cand.far <= live.far+l.cfg.GateFARSlack
		l.cfg.Logger.Info("gate verdict", "pass", pass, "version", ev.Version,
			"trace_id", trig.TraceID, "candidate_dr", cand.dr, "candidate_far", cand.far,
			"live_dr", live.dr, "live_far", live.far, "holdout_flows", holdN)
	}

	staged, isStaged := l.cfg.Publisher.(StagedPublisher)
	if isStaged {
		// Stage first: pass or fail, the candidate lands in the shadow
		// slot, where mirroring accumulates live-vs-candidate agreement
		// counters and operators can inspect (or manually promote) it.
		if err := l.retryPublish(&ev, func() error { return staged.Stage(path, next) }); err != nil {
			ev.Err = fmt.Errorf("stage artifact: %w", err)
			l.discardRetrain(&ev)
			return ev
		}
	}
	if !pass {
		// Rejected: the live model is untouched, and the next retrain must
		// warm-start from the deployed weights, not the rejected ones. The
		// monitors keep their reference too — persisting drift re-trips
		// after cooldown and retries on a fresher buffer.
		ev.Rejected = true
		l.discardRetrain(&ev)
		ev.Duration = time.Since(start)
		return ev
	}
	if l.cfg.Publisher != nil {
		var err error
		if isStaged {
			err = l.retryPublish(&ev, staged.Promote)
		} else {
			err = l.retryPublish(&ev, func() error { return l.cfg.Publisher.Publish(path, next) })
		}
		if err != nil {
			// Publication failed: keep the old monitors' reference so a
			// persisting drift re-trips after cooldown and retries.
			ev.Err = fmt.Errorf("publish artifact: %w", err)
			l.discardRetrain(&ev)
			return ev
		}
	}
	l.art.Store(next)
	l.retrains.Add(1)
	// The retrained model's outputs are the new normal: re-baseline every
	// monitor on post-publish traffic.
	l.normalScoreMon.Reset()
	l.attackScoreMon.Reset()
	l.alertMon.Reset()
	l.featMon.Reset()

	ev.Duration = time.Since(start)
	return ev
}

// retryPublish runs one publisher call with up to PublishAttempts tries,
// sleeping a jittered exponential backoff between them, and accumulates
// the tries on ev. It runs on Run's goroutine (l.rng is safe) and blocks
// the loop, deliberately: a retrain is worthless if it cannot ship, and
// the monitors stay quiet until this attempt resolves either way.
func (l *Loop) retryPublish(ev *Event, fn func() error) error {
	var err error
	for i := 0; i < l.cfg.PublishAttempts; i++ {
		if i > 0 {
			d := l.cfg.PublishBackoff << (i - 1)
			d = d/2 + time.Duration(l.rng.Int63n(int64(d))) // ±50% jitter
			time.Sleep(d)
		}
		ev.PublishTries++
		if err = fn(); err == nil {
			return nil
		}
		l.cfg.Logger.Warn("publish attempt failed", "attempt", i+1,
			"of", l.cfg.PublishAttempts, "version", ev.Version,
			"trace_id", ev.Trigger.TraceID, "error", err)
	}
	return err
}

// gateVerdicts summarizes a detector's held-out performance. When the
// holdout contains attacks, dr is the detection rate and far the
// false-alarm rate over its normal flows; an attack-free holdout falls
// back to dr = accuracy, far = alert rate.
type gateVerdicts struct {
	dr, far float64
}

// gateScore evaluates det on the held-out flows.
func gateScore(det nids.BatchDetector, recs []data.Record, labels []int) gateVerdicts {
	ptrs := make([]*data.Record, len(recs))
	for i := range recs {
		ptrs[i] = &recs[i]
	}
	verdicts := make([]nids.Verdict, len(recs))
	det.DetectBatch(ptrs, verdicts)
	var attacks, caught, normals, alarms, correct int
	for i, v := range verdicts {
		if labels[i] != 0 {
			attacks++
			if v.IsAttack {
				caught++
			}
		} else {
			normals++
			if v.IsAttack {
				alarms++
			}
		}
		if v.Class == labels[i] {
			correct++
		}
	}
	if attacks == 0 {
		return gateVerdicts{dr: ratio(correct, len(recs)), far: ratio(alarms, normals)}
	}
	return gateVerdicts{dr: ratio(caught, attacks), far: ratio(alarms, normals)}
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// discardRetrain drops the just-trained weights on every path that does
// not deploy them — gate rejection or any failure after PartialFit — so
// the next attempt warm-starts from the deployed generation, never from
// an unvetted (possibly torched) retrain. A reset failure is recorded on
// the event unless a primary error already is.
func (l *Loop) discardRetrain(ev *Event) {
	if err := l.resetNet(); err != nil && ev.Err == nil {
		ev.Err = fmt.Errorf("reset warm-start network: %w", err)
	}
}

// resetNet rebuilds the warm-start network from the deployed artifact.
func (l *Loop) resetNet() error {
	opt := nn.NewRMSprop(l.cfg.LR)
	opt.MaxNorm = 5
	net, pipe, err := l.art.Load().NewNetwork(nn.NewSoftmaxCrossEntropy(), opt)
	if err != nil {
		return err
	}
	l.net, l.pipe = net, pipe
	return nil
}

// Artifact returns the most recently published generation (the seed
// artifact before any retrain).
func (l *Loop) Artifact() *serve.Artifact { return l.art.Load() }

// Version returns the current generation's content-addressed version.
func (l *Loop) Version() string { return l.Artifact().Version() }

// Retrains returns how many generations have been published.
func (l *Loop) Retrains() int64 { return l.retrains.Load() }

// Buffer exposes the sliding flow buffer (for reporting).
func (l *Loop) Buffer() *FlowBuffer { return l.buf }

// Stat returns the maximum-magnitude current drift statistic across the
// monitored signals and that signal's name.
func (l *Loop) Stat() (signal string, z float64) {
	signal, z = "normal-score", l.normalScoreMon.Stat()
	for _, s := range []struct {
		name string
		m    *Monitor
	}{
		{"attack-score", l.attackScoreMon},
		{"alert-rate", l.alertMon},
		{"feature-mean", l.featMon},
	} {
		if v := s.m.Stat(); math.Abs(v) > math.Abs(z) {
			signal, z = s.name, v
		}
	}
	return signal, z
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// balancedIndices sqrt-oversamples minority classes: each class present in
// the buffer contributes round(sqrt(count * maxCount)) samples — the
// geometric mean of its own count and the majority count — drawn with
// replacement. Majority classes keep their natural weight, rare attack
// classes get enough repetition for the gradient to see them, and absent
// classes are never fabricated.
func balancedIndices(rng *rand.Rand, labels []int, classes int) []int {
	byClass := make([][]int, classes)
	for i, c := range labels {
		if c >= 0 && c < classes {
			byClass[c] = append(byClass[c], i)
		}
	}
	maxCount := 0
	for _, members := range byClass {
		if len(members) > maxCount {
			maxCount = len(members)
		}
	}
	var idx []int
	for _, members := range byClass {
		if len(members) == 0 {
			continue
		}
		want := int(math.Round(math.Sqrt(float64(len(members)) * float64(maxCount))))
		for k := 0; k < want; k++ {
			idx = append(idx, members[rng.Intn(len(members))])
		}
	}
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}
