package adapt

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
	"repro/internal/synth"
)

// flakyPublisher is a Publisher whose Publish consults a chaos.FailPoint
// before shipping, counting the publishes that actually land.
type flakyPublisher struct {
	fail      *chaos.FailPoint
	published atomic.Int64
}

func (p *flakyPublisher) Publish(path string, a *serve.Artifact) error {
	if err := p.fail.Check(); err != nil {
		return err
	}
	p.published.Add(1)
	return nil
}

// TestRetryPublishBackoffConverges pins the retry helper in isolation: a
// publisher failing its first two calls converges on the third inside
// PublishAttempts, the tries are accounted on the event, and a publisher
// failing every call exhausts the budget and reports the last error.
func TestRetryPublishBackoffConverges(t *testing.T) {
	l := &Loop{
		cfg: Config{PublishAttempts: 3, PublishBackoff: time.Millisecond}.withDefaults(),
		rng: rand.New(rand.NewSource(1)),
	}

	p := &flakyPublisher{fail: &chaos.FailPoint{}}
	p.fail.FailNext(2)
	var ev Event
	if err := l.retryPublish(&ev, func() error { return p.Publish("", nil) }); err != nil {
		t.Fatalf("publish did not converge past 2 injected failures: %v", err)
	}
	if ev.PublishTries != 3 {
		t.Fatalf("PublishTries = %d, want 3 (2 failures + 1 success)", ev.PublishTries)
	}
	if got := p.published.Load(); got != 1 {
		t.Fatalf("published %d times, want exactly 1", got)
	}

	// Exhaustion: more scripted failures than attempts.
	p2 := &flakyPublisher{fail: &chaos.FailPoint{}}
	p2.fail.FailNext(10)
	var ev2 Event
	if err := l.retryPublish(&ev2, func() error { return p2.Publish("", nil) }); err == nil {
		t.Fatal("publish against a dead publisher reported success")
	}
	if ev2.PublishTries != 3 {
		t.Fatalf("PublishTries = %d after exhaustion, want 3", ev2.PublishTries)
	}
	if got := p2.published.Load(); got != 0 {
		t.Fatalf("published %d times through a dead publisher", got)
	}
}

// TestAdaptPublishRetryConverges is the chaos e2e for the adaptation loop:
// a drift-triggered retrain whose publisher fails transiently (first two
// calls) is retried with backoff and converges — the retrain counts, the
// artifact ships exactly once, and the event records the absorbed tries.
func TestAdaptPublishRetryConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	gen, err := synth.New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	art := trainTinyArtifact(t, gen, 400, 2, 41)

	pub := &flakyPublisher{fail: &chaos.FailPoint{}}
	pub.fail.FailNext(2)
	loop, err := NewLoop(art, Config{
		BufferCap: 256, MinRetrain: 64, RetrainEpochs: 1,
		GateOff: true, ArtifactDir: t.TempDir(),
		Publisher:       pub,
		PublishAttempts: 3, PublishBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(256, 43)
	for i := range ds.Records {
		loop.buf.Add(ds.Records[i], ds.Records[i].Label)
	}

	ev := loop.adapt(Trigger{Signal: "test", Z: 9})
	if ev.Err != nil {
		t.Fatalf("adapt failed: %v", ev.Err)
	}
	if ev.PublishTries != 3 {
		t.Fatalf("PublishTries = %d, want 3 (2 transient failures absorbed)", ev.PublishTries)
	}
	if got := pub.published.Load(); got != 1 {
		t.Fatalf("published %d times, want exactly 1", got)
	}
	if got := loop.Retrains(); got != 1 {
		t.Fatalf("Retrains() = %d, want 1", got)
	}
	if loop.Version() == art.Version() {
		t.Fatal("published generation has the seed version")
	}

	// A publisher that stays dead fails the attempt — and leaves the
	// published generation untouched.
	pub.fail.FailNext(10)
	for i := range ds.Records {
		loop.buf.Add(ds.Records[i], ds.Records[i].Label)
	}
	prev := loop.Version()
	ev2 := loop.adapt(Trigger{Signal: "test", Z: 9})
	if ev2.Err == nil {
		t.Fatal("adapt through a dead publisher reported success")
	}
	if got := loop.Retrains(); got != 1 {
		t.Fatalf("Retrains() = %d after failed publish, want still 1", got)
	}
	if loop.Version() != prev {
		t.Fatal("failed publish advanced the deployed generation")
	}
}
