package adapt

import (
	"fmt"
	"sync"

	"repro/internal/data"
)

// FlowBuffer is a fixed-capacity sliding window over the most recent
// labeled flows a pipeline has scored — the retraining corpus. When full,
// new flows evict the oldest, so the buffer always reflects current
// traffic. Safe for concurrent use.
type FlowBuffer struct {
	mu     sync.Mutex
	recs   []data.Record
	labels []int
	head   int
	n      int
	seen   int64
}

// NewFlowBuffer builds a buffer holding at most capacity flows.
func NewFlowBuffer(capacity int) *FlowBuffer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &FlowBuffer{
		recs:   make([]data.Record, capacity),
		labels: make([]int, capacity),
	}
}

// Add appends one labeled flow record, evicting the oldest when full. The
// record's slices are referenced, not copied — callers must hand over
// per-flow storage (flow.Source allocates fresh records per flow).
func (b *FlowBuffer) Add(rec data.Record, label int) {
	b.mu.Lock()
	b.recs[b.head] = rec
	b.labels[b.head] = label
	b.head = (b.head + 1) % len(b.recs)
	if b.n < len(b.recs) {
		b.n++
	}
	b.seen++
	b.mu.Unlock()
}

// Len returns how many flows are currently buffered.
func (b *FlowBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Seen returns how many flows have ever been added.
func (b *FlowBuffer) Seen() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seen
}

// State exports the buffer for a checkpoint: the buffered flows oldest
// first (same view as Snapshot) plus the lifetime counter.
func (b *FlowBuffer) State() (recs []data.Record, labels []int, seen int64) {
	recs, labels = b.Snapshot()
	return recs, labels, b.Seen()
}

// Restore refills the buffer from a checkpoint. Flows arrive oldest
// first; when the checkpoint holds more than the buffer's capacity
// (it was written by a larger-capacity run) only the newest flows are
// kept, matching what sliding eviction would have left. The lifetime
// counter resumes at seen, so monotonic reporting survives the restart.
func (b *FlowBuffer) Restore(recs []data.Record, labels []int, seen int64) error {
	if len(recs) != len(labels) {
		return fmt.Errorf("adapt: checkpoint buffer has %d records but %d labels", len(recs), len(labels))
	}
	if drop := len(recs) - len(b.recs); drop > 0 {
		recs, labels = recs[drop:], labels[drop:]
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.head, b.n = 0, 0
	for i := range recs {
		b.recs[b.head] = recs[i]
		b.labels[b.head] = labels[i]
		b.head = (b.head + 1) % len(b.recs)
		b.n++
	}
	if seen < int64(b.n) {
		seen = int64(b.n)
	}
	b.seen = seen
	return nil
}

// Snapshot copies the buffered flows out in arrival order (oldest first),
// so retraining works on a stable view while the pipeline keeps writing.
func (b *FlowBuffer) Snapshot() ([]data.Record, []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recs := make([]data.Record, b.n)
	labels := make([]int, b.n)
	start := (b.head - b.n + len(b.recs)) % len(b.recs)
	for i := 0; i < b.n; i++ {
		j := (start + i) % len(b.recs)
		recs[i] = b.recs[j]
		labels[i] = b.labels[j]
	}
	return recs, labels
}
