package adapt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/flow"
	"repro/internal/nids"
	"repro/internal/synth"
)

// ckptConfig keeps monitor windows small so a test can fill them with a
// few hundred observations.
func ckptConfig(dir string) Config {
	return Config{
		Monitor:     MonitorConfig{RefWindow: 64, Window: 32},
		BufferCap:   128,
		ArtifactDir: dir,
	}
}

// feedLoop pushes n normal-verdict observations through the loop's tap,
// with deterministic score variation so the monitors accumulate real
// state.
func feedLoop(l *Loop, recs []data.Record, n int) {
	for i := 0; i < n; i++ {
		f := &flow.Flow{Record: recs[i%len(recs)], TrueClass: 0}
		v := nids.Verdict{Score: float64(i%10) / 10, Class: 0}
		l.Observe(f, v)
	}
}

// TestCheckpointRoundTrip is the resume proof: a loop with warm drift
// windows checkpoints, a fresh loop restores, and the restored monitors
// are Ready immediately — no re-warming gap during which drift would go
// unwatched — with the buffer, lifetime counters, and drift statistics
// carried over exactly.
func TestCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	gen, err := synth.New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	art := trainTinyArtifact(t, gen, 400, 2, 31)
	recs := gen.Generate(128, 99).Records

	l1, err := NewLoop(art, ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	feedLoop(l1, recs, 120) // 64 reference + 32 window, with margin
	if !l1.monitorsByName()["normal-score"].Ready() {
		t.Fatal("test setup: monitor not warm after 120 observations")
	}
	path := filepath.Join(t.TempDir(), "adapt.ckpt")
	if err := l1.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	l2, err := NewLoop(art, ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if l2.monitorsByName()["normal-score"].Ready() {
		t.Fatal("fresh loop already warm")
	}
	if err := l2.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if !l2.monitorsByName()["normal-score"].Ready() {
		t.Fatal("restored monitor not Ready: the drift window did not resume")
	}
	if got, want := l2.monitorsByName()["normal-score"].Stat(), l1.monitorsByName()["normal-score"].Stat(); got != want {
		t.Fatalf("restored drift statistic %v, want %v", got, want)
	}
	if got, want := l2.Buffer().Len(), l1.Buffer().Len(); got != want {
		t.Fatalf("restored buffer holds %d flows, want %d", got, want)
	}
	if got, want := l2.Buffer().Seen(), l1.Buffer().Seen(); got != want {
		t.Fatalf("restored lifetime counter %d, want %d", got, want)
	}
	r1, lab1 := l1.Buffer().Snapshot()
	r2, lab2 := l2.Buffer().Snapshot()
	for i := range r1 {
		if lab1[i] != lab2[i] || len(r1[i].Numeric) != len(r2[i].Numeric) {
			t.Fatalf("restored buffer diverges at flow %d", i)
		}
	}
	// And the restored loop keeps observing without incident.
	feedLoop(l2, recs, 10)
}

// TestCheckpointCorruptRejected covers the failure modes: a flipped
// byte, a torn tail, and a missing file must all reject cleanly, leaving
// the loop's fresh state untouched.
func TestCheckpointCorruptRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	gen, err := synth.New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	art := trainTinyArtifact(t, gen, 400, 2, 32)
	recs := gen.Generate(64, 99).Records

	l1, err := NewLoop(art, ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	feedLoop(l1, recs, 120)
	dir := t.TempDir()
	path := filepath.Join(dir, "adapt.ckpt")
	if err := l1.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	fresh := func() *Loop {
		l, err := NewLoop(art, ckptConfig(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	flipped := filepath.Join(dir, "flipped.ckpt")
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(flipped, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := chaos.CorruptFile(flipped); err != nil {
		t.Fatal(err)
	}
	l2 := fresh()
	if err := l2.RestoreCheckpoint(flipped); err == nil {
		t.Fatal("corrupt checkpoint restored")
	}
	if l2.monitorsByName()["normal-score"].Ready() || l2.Buffer().Len() != 0 {
		t.Fatal("failed restore mutated the loop")
	}

	torn := filepath.Join(dir, "torn.ckpt")
	if err := os.WriteFile(torn, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := chaos.TruncateTail(torn, 40); err != nil {
		t.Fatal(err)
	}
	if err := fresh().RestoreCheckpoint(torn); err == nil {
		t.Fatal("torn checkpoint restored")
	}

	err = fresh().RestoreCheckpoint(filepath.Join(dir, "missing.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint: %v, want os.ErrNotExist (first boot must be distinguishable)", err)
	}
}

// TestCheckpointStaleVersionRejected: state saved against one artifact
// generation must not restore into a loop running another — the monitor
// windows describe the old model's score distribution.
func TestCheckpointStaleVersionRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	gen, err := synth.New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	a1 := trainTinyArtifact(t, gen, 400, 2, 33)
	a2 := trainTinyArtifact(t, gen, 400, 2, 34)
	recs := gen.Generate(64, 99).Records

	l1, err := NewLoop(a1, ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	feedLoop(l1, recs, 120)
	path := filepath.Join(t.TempDir(), "adapt.ckpt")
	if err := l1.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	l2, err := NewLoop(a2, ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.RestoreCheckpoint(path); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("cross-generation restore: %v, want ErrCheckpointStale", err)
	}
	if l2.Buffer().Len() != 0 {
		t.Fatal("stale restore mutated the buffer")
	}
}

// TestMonitorRestoreGeometryMismatch: a checkpoint from a different
// window configuration is rejected per monitor, monitor untouched.
func TestMonitorRestoreGeometryMismatch(t *testing.T) {
	m := NewMonitor(MonitorConfig{RefWindow: 8, Window: 32})
	other := NewMonitor(MonitorConfig{RefWindow: 8, Window: 16})
	for i := 0; i < 30; i++ {
		other.Observe(float64(i))
	}
	if err := m.RestoreState(other.State()); err == nil {
		t.Fatal("window-mismatched state restored")
	}
	if m.Ready() {
		t.Fatal("rejected restore mutated the monitor")
	}
	bad := other.State()
	bad.Ring = make([]float64, 32)
	bad.Head = 99
	if err := m.RestoreState(bad); err == nil {
		t.Fatal("out-of-range head restored")
	}
}

// TestBufferRestoreCapBounded: a checkpoint larger than the buffer's
// capacity keeps only the newest flows — what sliding eviction would
// have left — and the lifetime counter never undercounts the contents.
func TestBufferRestoreCapBounded(t *testing.T) {
	big := NewFlowBuffer(10)
	for i := 0; i < 10; i++ {
		big.Add(data.Record{Label: i}, i)
	}
	recs, labels, seen := big.State()

	small := NewFlowBuffer(4)
	if err := small.Restore(recs, labels, seen); err != nil {
		t.Fatal(err)
	}
	if small.Len() != 4 {
		t.Fatalf("restored %d flows into a cap-4 buffer", small.Len())
	}
	_, gotLabels := small.Snapshot()
	for i, want := range []int{6, 7, 8, 9} {
		if gotLabels[i] != want {
			t.Fatalf("kept labels %v, want the newest [6 7 8 9]", gotLabels)
		}
	}
	if small.Seen() != 10 {
		t.Fatalf("seen = %d, want the checkpointed 10", small.Seen())
	}

	// Eviction resumes correctly at the restored head.
	small.Add(data.Record{Label: 10}, 10)
	_, gotLabels = small.Snapshot()
	for i, want := range []int{7, 8, 9, 10} {
		if gotLabels[i] != want {
			t.Fatalf("post-restore eviction order %v, want [7 8 9 10]", gotLabels)
		}
	}

	if err := small.Restore(recs, labels[:3], seen); err == nil {
		t.Fatal("mismatched records/labels restored")
	}
}
