package registry

import (
	"fmt"
	"sync"
	"testing"
)

// fakeInstance is a minimal Instance for control-plane tests.
type fakeInstance struct{ v string }

func (f *fakeInstance) Version() string { return f.v }

func inst(v string) *fakeInstance { return &fakeInstance{v: v} }

func mustLoad(t *testing.T, r *Registry, tag string, i Instance) {
	t.Helper()
	if err := r.Load(tag, i); err != nil {
		t.Fatalf("Load(%q): %v", tag, err)
	}
}

func liveVersion(t *testing.T, r *Registry) string {
	t.Helper()
	i := r.LiveInstance()
	if i == nil {
		t.Fatal("no live instance")
	}
	return i.Version()
}

func TestLoadGetAndTagsOrdering(t *testing.T) {
	r := New(nil)
	mustLoad(t, r, "canary-b", inst("b1"))
	mustLoad(t, r, Live, inst("v1"))
	mustLoad(t, r, "canary-a", inst("a1"))
	mustLoad(t, r, Shadow, inst("s1"))

	got := r.Tags()
	want := []string{Live, Shadow, "canary-a", "canary-b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Tags() = %v, want %v", got, want)
	}
	for tag, v := range map[string]string{Live: "v1", Shadow: "s1", "canary-a": "a1", "canary-b": "b1"} {
		i, loadedAt, ok := r.Get(tag)
		if !ok || i.Version() != v || loadedAt.IsZero() {
			t.Fatalf("Get(%q) = %v/%v/%v, want version %s", tag, i, loadedAt, ok, v)
		}
	}
	if _, _, ok := r.Get("unknown"); ok {
		t.Fatal("Get on an empty tag reported ok")
	}
	if r.StatsFor(Live) != r.StatsFor(Live) {
		t.Fatal("StatsFor does not return a stable per-tag object")
	}
}

func TestTagValidation(t *testing.T) {
	r := New(nil)
	for _, bad := range []string{"", Previous, "Live", "a b", "-x", "x/y", "héllo"} {
		if err := r.Load(bad, inst("v")); err == nil {
			t.Fatalf("tag %q accepted", bad)
		}
	}
	for _, good := range []string{"live", "shadow", "canary-2", "exp_1", "a.b"} {
		if err := r.Load(good, inst("v")); err != nil {
			t.Fatalf("tag %q rejected: %v", good, err)
		}
	}
}

// TestPromoteRollbackCycle pins the core lifecycle: promote swaps shadow
// into live retaining the displaced generation, rollback restores the
// exact prior version, and a second rollback rolls forward again.
func TestPromoteRollbackCycle(t *testing.T) {
	r := New(nil)
	mustLoad(t, r, Live, inst("v1"))
	mustLoad(t, r, Shadow, inst("v2"))

	promoted, err := r.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if promoted.Version() != "v2" || liveVersion(t, r) != "v2" {
		t.Fatalf("promoted %s, live %s; want v2", promoted.Version(), liveVersion(t, r))
	}
	if _, _, ok := r.Get(Shadow); ok {
		t.Fatal("shadow slot still occupied after promote")
	}
	if pi, _, ok := r.Get(Previous); !ok || pi.Version() != "v1" {
		t.Fatalf("Get(%q) = %v/%v, want v1", Previous, pi, ok)
	}
	if pv := r.PreviousVersion(); pv != "v1" {
		t.Fatalf("previous = %q, want v1", pv)
	}

	restored, err := r.Rollback()
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if restored.Version() != "v1" || liveVersion(t, r) != "v1" {
		t.Fatalf("rollback restored %s, live %s; want v1", restored.Version(), liveVersion(t, r))
	}
	if pv := r.PreviousVersion(); pv != "v2" {
		t.Fatalf("previous after rollback = %q, want v2 (roll-forward target)", pv)
	}
	if _, err := r.Rollback(); err != nil {
		t.Fatalf("roll-forward: %v", err)
	}
	if liveVersion(t, r) != "v2" {
		t.Fatalf("roll-forward left live at %s", liveVersion(t, r))
	}
	if r.Promotes() != 1 || r.Rollbacks() != 2 {
		t.Fatalf("counters promotes=%d rollbacks=%d, want 1/2", r.Promotes(), r.Rollbacks())
	}
}

func TestPromoteWithoutShadowAndRollbackWithoutPrevious(t *testing.T) {
	r := New(nil)
	mustLoad(t, r, Live, inst("v1"))
	if _, err := r.Promote(); err == nil {
		t.Fatal("promote with empty shadow succeeded")
	}
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback with no retained generation succeeded")
	}
}

// TestRetirement pins exactly which instances the registry discards: a
// displaced non-live generation immediately, a displaced live generation
// only when a later displacement replaces it as the rollback target, and
// unloaded tags outright. Drain returns everything without retiring.
func TestRetirement(t *testing.T) {
	var retired []string
	r := New(func(i Instance) { retired = append(retired, i.Version()) })

	mustLoad(t, r, Live, inst("v1"))
	mustLoad(t, r, Shadow, inst("s1"))
	mustLoad(t, r, Shadow, inst("s2")) // displaces s1 -> retired
	if fmt.Sprint(retired) != "[s1]" {
		t.Fatalf("after shadow reload retired=%v, want [s1]", retired)
	}

	if _, err := r.Promote(); err != nil { // v1 parked as previous, not retired
		t.Fatal(err)
	}
	if fmt.Sprint(retired) != "[s1]" {
		t.Fatalf("promote retired %v, want [s1] only", retired)
	}

	mustLoad(t, r, Live, inst("v3")) // s2 parked as previous; v1 (old previous) retired
	if fmt.Sprint(retired) != "[s1 v1]" {
		t.Fatalf("after live load retired=%v, want [s1 v1]", retired)
	}

	mustLoad(t, r, "canary", inst("c1"))
	if err := r.Unload("canary"); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(retired) != "[s1 v1 c1]" {
		t.Fatalf("after unload retired=%v, want [s1 v1 c1]", retired)
	}
	if err := r.Unload(Live); err == nil {
		t.Fatal("unloading live succeeded")
	}
	if err := r.Unload("ghost"); err == nil {
		t.Fatal("unloading an empty tag succeeded")
	}

	drained := r.Drain()
	if len(drained) != 2 { // live v3 + previous s2
		t.Fatalf("Drain returned %d instances, want 2", len(drained))
	}
	if len(retired) != 3 {
		t.Fatalf("Drain invoked the retire callback: %v", retired)
	}
	if len(r.Tags()) != 0 || r.PreviousVersion() != "" {
		t.Fatal("Drain left slots behind")
	}
}

func TestHistoryRecordsTransitions(t *testing.T) {
	r := New(nil)
	mustLoad(t, r, Live, inst("v1"))
	mustLoad(t, r, Shadow, inst("v2"))
	r.Promote()
	r.Rollback()
	r.Load(Shadow, inst("v3"))
	r.Unload(Shadow)

	h := r.History()
	var ops []Op
	for _, tr := range h {
		ops = append(ops, tr.Op)
	}
	want := []Op{OpLoad, OpLoad, OpPromote, OpRollback, OpLoad, OpUnload}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("history ops = %v, want %v", ops, want)
	}
	if h[2].Version != "v2" || h[3].Version != "v1" {
		t.Fatalf("promote/rollback history versions = %s/%s, want v2/v1", h[2].Version, h[3].Version)
	}
}

func TestHistoryBounded(t *testing.T) {
	r := New(nil)
	for i := 0; i < historyCap*2; i++ {
		mustLoad(t, r, Shadow, inst(fmt.Sprintf("v%d", i)))
	}
	if n := len(r.History()); n != historyCap {
		t.Fatalf("history holds %d entries, cap is %d", n, historyCap)
	}
}

// TestConcurrentLifecycle hammers the control plane from many goroutines
// under -race: loads, promotes, rollbacks, and lookups interleave, and the
// registry must never expose a nil live instance once one is loaded.
func TestConcurrentLifecycle(t *testing.T) {
	r := New(func(Instance) {})
	mustLoad(t, r, Live, inst("v0"))

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					r.Load(Shadow, inst(fmt.Sprintf("w%d-%d", w, i)))
				case 1:
					r.Promote()
				case 2:
					r.Rollback()
				default:
					if r.LiveInstance() == nil {
						errCh <- fmt.Errorf("live went nil mid-lifecycle")
						return
					}
					r.Tags()
					r.History()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if r.LiveInstance() == nil {
		t.Fatal("no live instance after concurrent lifecycle")
	}
}
