// Package registry is the multi-model control plane for the serving
// stack: a set of named slots (the reserved "live" and "shadow" slots plus
// arbitrary canary tags), each holding one independently loaded model
// generation, with atomic shadow→live promotion, a retained previous-live
// generation for rollback, per-slot scoring counters, and a bounded
// lifecycle history.
//
// The registry is deliberately generic over what a "loaded model" is (the
// Instance interface): the serve package loads artifacts into instances
// that bundle compiled inference plans, replica shards, and a private
// batcher, while tests can use stubs. The registry owns only the control
// plane — which generation answers which tag, and what happens to a
// generation when it is displaced.
package registry

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Reserved slot tags. Live is the generation production traffic scores
// against by default; Shadow is the staging slot that mirroring and gated
// promotion operate on. Previous is not a loadable tag: it names the
// retained generation Rollback restores.
const (
	Live     = "live"
	Shadow   = "shadow"
	Previous = "previous"
)

// Instance is one loaded, ready-to-score model generation. The registry
// never inspects it beyond its content-addressed version; everything else
// (replicas, batchers, schemas) belongs to the loader.
type Instance interface {
	Version() string
}

// Stats are the per-slot scoring counters. The registry keeps one Stats
// per tag, persistent across the generations the tag serves (Prometheus
// counters must never run backwards, and dashboards want slot continuity
// through a promotion). Counters accumulate per slot, which is what makes
// live-vs-shadow divergence readable — under mirroring the two slots see
// the same traffic, so their attack counters diverge exactly when the
// models disagree.
type Stats struct {
	// Records counts what the slot scored.
	Records atomic.Int64
	// Attacks counts attack verdicts — the per-slot detection-rate proxy
	// (serving has no ground truth; under mirroring both slots see the
	// same flows, so the ratio of the two Attacks counters is directly
	// comparable).
	Attacks atomic.Int64
	// Mirrored counts live records duplicated onto this slot; Agreements
	// and Disagreements split the mirrored verdict comparisons against
	// live's; MirrorDropped counts mirrors skipped under backpressure or
	// mid-swap.
	Mirrored      atomic.Int64
	MirrorDropped atomic.Int64
	Agreements    atomic.Int64
	Disagreements atomic.Int64
	// Shed counts records fast-failed (429) by the admission controller
	// because the slot's queue was over its watermark; DeadlineExpired
	// counts records shed (503) because their request deadline ran out
	// before a replica could score them. Both are overload-protection
	// outcomes: the record was never scored.
	Shed            atomic.Int64
	DeadlineExpired atomic.Int64
}

// StatsSnapshot is a plain-value copy of a Stats, used by the durable
// control plane to checkpoint counters into the registry journal and
// restore them after a restart.
type StatsSnapshot struct {
	Records         int64
	Attacks         int64
	Mirrored        int64
	MirrorDropped   int64
	Agreements      int64
	Disagreements   int64
	Shed            int64
	DeadlineExpired int64
}

// Snapshot copies the counters. The copy is not atomic across fields —
// counters written concurrently may be one scrape apart — which is fine
// for checkpointing: restore only needs each counter to be a value the
// slot actually reached.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Records:         s.Records.Load(),
		Attacks:         s.Attacks.Load(),
		Mirrored:        s.Mirrored.Load(),
		MirrorDropped:   s.MirrorDropped.Load(),
		Agreements:      s.Agreements.Load(),
		Disagreements:   s.Disagreements.Load(),
		Shed:            s.Shed.Load(),
		DeadlineExpired: s.DeadlineExpired.Load(),
	}
}

// Restore sets the counters to a checkpointed snapshot. Called once at
// recovery, before the slot takes traffic, so the monotonicity contract
// (counters never run backwards within a process) holds.
func (s *Stats) Restore(snap StatsSnapshot) {
	s.Records.Store(snap.Records)
	s.Attacks.Store(snap.Attacks)
	s.Mirrored.Store(snap.Mirrored)
	s.MirrorDropped.Store(snap.MirrorDropped)
	s.Agreements.Store(snap.Agreements)
	s.Disagreements.Store(snap.Disagreements)
	s.Shed.Store(snap.Shed)
	s.DeadlineExpired.Store(snap.DeadlineExpired)
}

// slot is one named registry entry.
type slot struct {
	inst     Instance
	loadedAt time.Time
}

// Op names a lifecycle transition in the registry history.
type Op string

// Lifecycle operations recorded in the history.
const (
	OpLoad     Op = "load"
	OpPromote  Op = "promote"
	OpRollback Op = "rollback"
	OpUnload   Op = "unload"
)

// Transition is one recorded lifecycle event.
type Transition struct {
	Op      Op
	Tag     string
	Version string
	At      time.Time
}

// historyCap bounds the retained lifecycle history.
const historyCap = 64

// validTag constrains slot tags to names that survive URLs, metric labels,
// and log lines unquoted.
var validTag = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// Registry maps tags to loaded model generations. All methods are safe for
// concurrent use. Lookup methods (Get, Live, Tags, ...) take a read lock
// only, so the scoring hot path never contends with itself; lifecycle
// methods (Load, Promote, Rollback, Unload) serialize on the write lock
// and are individually atomic — a reader sees every tag resolve to exactly
// one generation before and one after, never a torn intermediate state.
type Registry struct {
	mu    sync.RWMutex
	slots map[string]*slot
	// stats maps tags to their persistent counters. Entries are created on
	// first use and deliberately never deleted: a tag's counters survive
	// both generation swaps and empty spells, so re-loading a shadow does
	// not rewind its Prometheus counters.
	stats map[string]*Stats
	// prev is the generation most recently displaced from live, retained
	// (still loaded, still running) so Rollback is instant and exact.
	prev *slot
	// onRetire observes every instance the registry permanently discards
	// (displaced from a non-live slot, displaced from prev, or unloaded).
	// It is called without the registry lock held; the serve layer uses it
	// to drain and stop the instance's scoring machinery.
	onRetire func(Instance)

	history   []Transition
	promotes  atomic.Int64
	rollbacks atomic.Int64
}

// New builds an empty registry. onRetire (may be nil) observes every
// instance the registry permanently discards.
func New(onRetire func(Instance)) *Registry {
	return &Registry{
		slots:    make(map[string]*slot),
		stats:    make(map[string]*Stats),
		onRetire: onRetire,
	}
}

// StatsFor returns the persistent counters for tag, creating them on first
// use. The returned Stats is shared by every caller asking for the same
// tag and stays valid across generation swaps. It is called on every
// scoring request, so the existing-entry path (all but the first call per
// tag) takes only the read lock.
func (r *Registry) StatsFor(tag string) *Stats {
	r.mu.RLock()
	s := r.stats[tag]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.stats[tag]; s != nil {
		return s
	}
	s = &Stats{}
	r.stats[tag] = s
	return s
}

// ValidateTag reports whether tag is a loadable slot name.
func ValidateTag(tag string) error {
	if tag == Previous {
		return fmt.Errorf("registry: %q is reserved for the rollback generation and cannot be loaded directly", Previous)
	}
	if !validTag.MatchString(tag) {
		return fmt.Errorf("registry: invalid tag %q (want lowercase letters, digits, '.', '_', '-'; max 64 chars)", tag)
	}
	return nil
}

// Load installs inst under tag, displacing whatever the tag held. A
// displaced live generation is retained as the rollback target (replacing
// — and retiring — any earlier one); a displaced generation under any
// other tag is retired outright.
func (r *Registry) Load(tag string, inst Instance) error {
	if err := ValidateTag(tag); err != nil {
		return err
	}
	var retired []Instance
	r.mu.Lock()
	old := r.slots[tag]
	r.slots[tag] = &slot{inst: inst, loadedAt: time.Now()}
	if old != nil {
		if tag == Live {
			retired = r.setPrev(old)
		} else {
			retired = append(retired, old.inst)
		}
	}
	r.record(OpLoad, tag, inst.Version())
	r.mu.Unlock()
	r.retire(retired)
	return nil
}

// Promote atomically makes the shadow generation live: live ↔ tag swap in
// one critical section, with the displaced live retained for Rollback and
// the shadow slot left empty. Returns the promoted instance.
func (r *Registry) Promote() (Instance, error) {
	var retired []Instance
	r.mu.Lock()
	sh := r.slots[Shadow]
	if sh == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: nothing to promote: the %q slot is empty", Shadow)
	}
	delete(r.slots, Shadow)
	live := r.slots[Live]
	if live != nil {
		retired = r.setPrev(live)
	}
	r.slots[Live] = &slot{inst: sh.inst, loadedAt: time.Now()}
	r.promotes.Add(1)
	r.record(OpPromote, Live, sh.inst.Version())
	r.mu.Unlock()
	r.retire(retired)
	return sh.inst, nil
}

// Rollback swaps live with the retained previous generation — the exact
// instance (and version) that was serving before the last promotion or
// live load. The displaced live becomes the new previous, so a second
// Rollback rolls forward again. Returns the restored instance.
func (r *Registry) Rollback() (Instance, error) {
	r.mu.Lock()
	if r.prev == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: nothing to roll back to (no generation has been displaced from %q)", Live)
	}
	live := r.slots[Live]
	restored := r.prev
	r.slots[Live] = &slot{inst: restored.inst, loadedAt: time.Now()}
	if live != nil {
		r.prev = &slot{inst: live.inst, loadedAt: live.loadedAt}
	} else {
		r.prev = nil
	}
	r.rollbacks.Add(1)
	r.record(OpRollback, Live, restored.inst.Version())
	r.mu.Unlock()
	return restored.inst, nil
}

// Unload removes tag and retires its instance. The live slot cannot be
// unloaded (promote or load over it instead).
func (r *Registry) Unload(tag string) error {
	if tag == Live {
		return fmt.Errorf("registry: cannot unload %q (load or promote a replacement instead)", Live)
	}
	if err := ValidateTag(tag); err != nil {
		return err
	}
	r.mu.Lock()
	s := r.slots[tag]
	if s == nil {
		r.mu.Unlock()
		return fmt.Errorf("registry: no model loaded under tag %q", tag)
	}
	delete(r.slots, tag)
	r.record(OpUnload, tag, s.inst.Version())
	r.mu.Unlock()
	r.retire([]Instance{s.inst})
	return nil
}

// RestorePrevious installs inst as the retained rollback generation
// without recording a transition. It exists for crash recovery: the
// journal replay rebuilds the slot topology through Load, but the
// rollback target is not a loadable tag, so recovery hands it back
// directly. Any previously retained generation is retired.
func (r *Registry) RestorePrevious(inst Instance) {
	var retired []Instance
	r.mu.Lock()
	if r.prev != nil {
		retired = append(retired, r.prev.inst)
	}
	r.prev = &slot{inst: inst, loadedAt: time.Now()}
	r.mu.Unlock()
	r.retire(retired)
}

// Get returns the instance and load time under tag. Previous resolves to
// the retained rollback generation.
func (r *Registry) Get(tag string) (Instance, time.Time, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s *slot
	if tag == Previous {
		s = r.prev
	} else {
		s = r.slots[tag]
	}
	if s == nil {
		return nil, time.Time{}, false
	}
	return s.inst, s.loadedAt, true
}

// LiveInstance returns the live generation, or nil if none is loaded.
func (r *Registry) LiveInstance() Instance {
	inst, _, _ := r.Get(Live)
	return inst
}

// PreviousVersion returns the retained rollback generation's version ("" if
// none).
func (r *Registry) PreviousVersion() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.prev == nil {
		return ""
	}
	return r.prev.inst.Version()
}

// Tags lists the occupied slots: live first, shadow second, then canary
// tags alphabetically.
func (r *Registry) Tags() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	canaries := make([]string, 0, len(r.slots))
	var out []string
	for tag := range r.slots {
		switch tag {
		case Live, Shadow:
		default:
			canaries = append(canaries, tag)
		}
	}
	sort.Strings(canaries)
	if _, ok := r.slots[Live]; ok {
		out = append(out, Live)
	}
	if _, ok := r.slots[Shadow]; ok {
		out = append(out, Shadow)
	}
	return append(out, canaries...)
}

// Drain empties the registry — every slot and the retained previous — and
// returns the removed instances for the caller to shut down. Unlike
// Unload, Drain does not invoke the retire callback: it exists for
// serve.Server.Close, which tears the instances down synchronously.
func (r *Registry) Drain() []Instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Instance
	for tag, s := range r.slots {
		out = append(out, s.inst)
		delete(r.slots, tag)
	}
	if r.prev != nil {
		out = append(out, r.prev.inst)
		r.prev = nil
	}
	return out
}

// Promotes returns how many promotions have been performed.
func (r *Registry) Promotes() int64 { return r.promotes.Load() }

// Rollbacks returns how many rollbacks have been performed.
func (r *Registry) Rollbacks() int64 { return r.rollbacks.Load() }

// History returns the recorded lifecycle transitions, oldest first, capped
// at the most recent historyCap entries.
func (r *Registry) History() []Transition {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Transition, len(r.history))
	copy(out, r.history)
	return out
}

// setPrev retains a displaced live generation as the rollback target and
// returns the instances this permanently discards (the previously retained
// generation, if any). Caller holds the write lock.
func (r *Registry) setPrev(displaced *slot) []Instance {
	var retired []Instance
	if r.prev != nil {
		retired = append(retired, r.prev.inst)
	}
	r.prev = &slot{inst: displaced.inst, loadedAt: displaced.loadedAt}
	return retired
}

// record appends to the bounded history. Caller holds the write lock.
func (r *Registry) record(op Op, tag, version string) {
	r.history = append(r.history, Transition{Op: op, Tag: tag, Version: version, At: time.Now()})
	if len(r.history) > historyCap {
		r.history = r.history[len(r.history)-historyCap:]
	}
}

// retire invokes the retire callback outside the registry lock.
func (r *Registry) retire(insts []Instance) {
	if r.onRetire == nil {
		return
	}
	for _, inst := range insts {
		r.onRetire(inst)
	}
}
