package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// informativeData builds a dataset where only feature 0 carries label
// signal; the rest is noise.
func informativeData(rng *rand.Rand, n, d int) (*tensor.Tensor, []int) {
	x := tensor.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if row[0] > 0 {
			y[i] = 1
		}
	}
	return x, y
}

func TestTreeImportanceFindsInformativeFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := informativeData(rng, 500, 6)
	tr := NewTree(TreeConfig{Classes: 2, MaxDepth: 4})
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance(6)
	if imp[0] < 0.8 {
		t.Fatalf("informative feature importance %v, want > 0.8 (all: %v)", imp[0], imp)
	}
	total := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance: %v", imp)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importances sum to %v, want 1", total)
	}
}

func TestForestImportanceFindsInformativeFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := informativeData(rng, 600, 8)
	fo := NewForest(ForestConfig{Trees: 20, MaxDepth: 5, Classes: 2, Seed: 3})
	if err := fo.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	imp := fo.FeatureImportance(8)
	best := 0
	for i, v := range imp {
		if v > imp[best] {
			best = i
		}
	}
	if best != 0 {
		t.Fatalf("forest ranked feature %d most important, want 0 (all: %v)", best, imp)
	}
}

func TestImportanceOnLeafOnlyTree(t *testing.T) {
	// A pure dataset yields a single leaf; importance must be all zeros
	// without NaNs.
	x := tensor.New(10, 3)
	y := make([]int, 10) // all class 0
	tr := NewTree(TreeConfig{Classes: 2})
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.FeatureImportance(3) {
		if v != 0 {
			t.Fatalf("leaf-only tree has nonzero importance: %v", v)
		}
	}
}
