// Package ml implements the classical machine-learning baselines of the
// paper's comparative study (§V-H) from scratch: a CART decision tree,
// Random Forest, AdaBoost (SAMME), and an RBF-kernel SVM trained with SMO.
// All classifiers share the Classifier interface and operate on the same
// encoded matrices the neural networks consume.
package ml

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// Classifier is a multi-class learner over dense feature matrices.
type Classifier interface {
	// Fit trains on x (n×d) with labels y in [0, classes).
	Fit(x *tensor.Tensor, y []int) error
	// Predict returns one class per row of x.
	Predict(x *tensor.Tensor) []int
}

// TreeConfig controls CART induction.
type TreeConfig struct {
	// MaxDepth bounds tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// MaxFeatures restricts how many features are examined per split;
	// 0 means all. Random Forest sets this to √d.
	MaxFeatures int
	// Classes is the number of classes; required.
	Classes int
	// Seed drives feature subsampling.
	Seed int64
}

// treeNode is one CART node; leaves have feature == -1.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	class     int
	// dist is the (weighted) class distribution at this node, used for
	// probability estimates.
	dist []float64
}

// Tree is a CART decision tree with gini impurity, supporting sample
// weights (needed by AdaBoost).
type Tree struct {
	Cfg  TreeConfig
	root *treeNode
	rng  *rand.Rand
}

// NewTree constructs an unfitted tree.
func NewTree(cfg TreeConfig) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	return &Tree{Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

var _ Classifier = (*Tree)(nil)

// Fit implements Classifier with uniform sample weights.
func (t *Tree) Fit(x *tensor.Tensor, y []int) error {
	return t.FitWeighted(x, y, nil)
}

// FitWeighted trains with per-sample weights (nil = uniform).
func (t *Tree) FitWeighted(x *tensor.Tensor, y []int, w []float64) error {
	n := x.Dim(0)
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(y) != n {
		return fmt.Errorf("ml: %d rows but %d labels", n, len(y))
	}
	if t.Cfg.Classes < 2 {
		return fmt.Errorf("ml: TreeConfig.Classes = %d, need >= 2", t.Cfg.Classes)
	}
	for i, yi := range y {
		if yi < 0 || yi >= t.Cfg.Classes {
			return fmt.Errorf("ml: label %d at row %d out of range", yi, i)
		}
	}
	if w == nil {
		w = make([]float64, n)
		uniform := 1.0 / float64(n)
		for i := range w {
			w[i] = uniform
		}
	} else if len(w) != n {
		return fmt.Errorf("ml: %d rows but %d weights", n, len(w))
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(x, y, w, idx, 0)
	return nil
}

// grow recursively builds the subtree over the samples in idx.
func (t *Tree) grow(x *tensor.Tensor, y []int, w []float64, idx []int, depth int) *treeNode {
	dist := make([]float64, t.Cfg.Classes)
	total := 0.0
	for _, i := range idx {
		dist[y[i]] += w[i]
		total += w[i]
	}
	node := &treeNode{feature: -1, dist: dist, class: argmaxF(dist)}

	if len(idx) < 2*t.Cfg.MinLeaf || (t.Cfg.MaxDepth > 0 && depth >= t.Cfg.MaxDepth) || isPure(dist) {
		return node
	}

	f, thr, gain := t.bestSplit(x, y, w, idx, dist, total)
	if f < 0 || gain <= 1e-12 {
		return node
	}

	var left, right []int
	for _, i := range idx {
		if x.At(i, f) <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.Cfg.MinLeaf || len(right) < t.Cfg.MinLeaf {
		return node
	}
	node.feature = f
	node.threshold = thr
	node.left = t.grow(x, y, w, left, depth+1)
	node.right = t.grow(x, y, w, right, depth+1)
	return node
}

// bestSplit scans (a subsample of) features for the weighted-gini-optimal
// threshold. Returns feature -1 when no split improves impurity.
func (t *Tree) bestSplit(x *tensor.Tensor, y []int, w []float64, idx []int, dist []float64, total float64) (feature int, threshold, gain float64) {
	d := x.Dim(1)
	features := t.featureCandidates(d)
	parentGini := giniOf(dist, total)

	bestF, bestThr, bestGain := -1, 0.0, 0.0

	type sample struct {
		v float64
		y int
		w float64
	}
	samples := make([]sample, len(idx))
	leftDist := make([]float64, t.Cfg.Classes)

	for _, f := range features {
		for si, i := range idx {
			samples[si] = sample{v: x.At(i, f), y: y[i], w: w[i]}
		}
		sort.Slice(samples, func(a, b int) bool { return samples[a].v < samples[b].v })

		for c := range leftDist {
			leftDist[c] = 0
		}
		leftTotal := 0.0
		for si := 0; si < len(samples)-1; si++ {
			s := samples[si]
			leftDist[s.y] += s.w
			leftTotal += s.w
			if samples[si+1].v <= s.v {
				continue // can't split between equal values
			}
			rightTotal := total - leftTotal
			if leftTotal <= 0 || rightTotal <= 0 {
				continue
			}
			gl := giniLeftRight(leftDist, dist, leftTotal, rightTotal)
			g := parentGini - gl
			if g > bestGain {
				bestGain = g
				bestF = f
				bestThr = (s.v + samples[si+1].v) / 2
			}
		}
	}
	return bestF, bestThr, bestGain
}

// featureCandidates returns the feature indices to consider at a node.
func (t *Tree) featureCandidates(d int) []int {
	if t.Cfg.MaxFeatures <= 0 || t.Cfg.MaxFeatures >= d {
		out := make([]int, d)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := t.rng.Perm(d)
	return perm[:t.Cfg.MaxFeatures]
}

// giniOf computes the gini impurity of a weighted class distribution.
func giniOf(dist []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	s := 1.0
	for _, c := range dist {
		p := c / total
		s -= p * p
	}
	return s
}

// giniLeftRight computes the weighted child impurity given the left
// distribution and the parent distribution.
func giniLeftRight(left, parent []float64, leftTotal, rightTotal float64) float64 {
	total := leftTotal + rightTotal
	gl, gr := 1.0, 1.0
	for c, lv := range left {
		pl := lv / leftTotal
		gl -= pl * pl
		pr := (parent[c] - lv) / rightTotal
		gr -= pr * pr
	}
	return (leftTotal*gl + rightTotal*gr) / total
}

func isPure(dist []float64) bool {
	nonzero := 0
	for _, v := range dist {
		if v > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

func argmaxF(v []float64) int {
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// Predict implements Classifier.
func (t *Tree) Predict(x *tensor.Tensor) []int {
	n := x.Dim(0)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = t.predictRow(x.Row(i))
	}
	return out
}

func (t *Tree) predictRow(row []float64) int {
	node := t.root
	for node.feature >= 0 {
		if row[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.class
}

// Depth returns the fitted tree's depth (0 for a single leaf).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NodeCount returns the number of nodes in the fitted tree.
func (t *Tree) NodeCount() int { return countNodes(t.root) }

func countNodes(n *treeNode) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}
