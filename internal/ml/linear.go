package ml

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LogisticConfig controls multinomial logistic regression.
type LogisticConfig struct {
	// LR is the gradient-descent step size (default 0.1).
	LR float64
	// Epochs is the number of passes (default 100).
	Epochs int
	// Batch is the minibatch size (default 128).
	Batch int
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// Classes is the number of classes; required.
	Classes int
	// Seed drives shuffling.
	Seed int64
}

// Logistic is multinomial logistic regression (softmax regression) trained
// by minibatch gradient descent — the simplest supervised reference point
// for the comparative study.
type Logistic struct {
	Cfg LogisticConfig
	w   *tensor.Tensor // (d, k)
	b   []float64
}

// NewLogistic constructs an unfitted logistic-regression classifier.
func NewLogistic(cfg LogisticConfig) *Logistic {
	if cfg.LR <= 0 {
		cfg.LR = 0.1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 128
	}
	if cfg.L2 < 0 {
		cfg.L2 = 0
	}
	return &Logistic{Cfg: cfg}
}

var _ Classifier = (*Logistic)(nil)

// Fit implements Classifier.
func (l *Logistic) Fit(x *tensor.Tensor, y []int) error {
	n, d := x.Dim(0), x.Dim(1)
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	k := l.Cfg.Classes
	if k < 2 {
		return fmt.Errorf("ml: LogisticConfig.Classes = %d, need >= 2", k)
	}
	l.w = tensor.New(d, k)
	l.b = make([]float64, k)
	rng := rand.New(rand.NewSource(l.Cfg.Seed))

	order := rng.Perm(n)
	probs := make([]float64, k)
	for ep := 0; ep < l.Cfg.Epochs; ep++ {
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		for lo := 0; lo < n; lo += l.Cfg.Batch {
			hi := lo + l.Cfg.Batch
			if hi > n {
				hi = n
			}
			gw := tensor.New(d, k)
			gb := make([]float64, k)
			for _, i := range order[lo:hi] {
				row := x.Row(i)
				l.scores(row, probs)
				softmaxInPlace(probs)
				probs[y[i]] -= 1
				for j, xv := range row {
					if xv == 0 {
						continue
					}
					grow := gw.Row(j)
					for c, p := range probs {
						grow[c] += xv * p
					}
				}
				for c, p := range probs {
					gb[c] += p
				}
			}
			scale := l.Cfg.LR / float64(hi-lo)
			wd, gd := l.w.Data(), gw.Data()
			for i := range wd {
				wd[i] -= scale*gd[i] + l.Cfg.LR*l.Cfg.L2*wd[i]
			}
			for c := range l.b {
				l.b[c] -= scale * gb[c]
			}
		}
	}
	return nil
}

// scores writes xᵀW + b into out.
func (l *Logistic) scores(row []float64, out []float64) {
	copy(out, l.b)
	for j, xv := range row {
		if xv == 0 {
			continue
		}
		wrow := l.w.Row(j)
		for c, wv := range wrow {
			out[c] += xv * wv
		}
	}
}

func softmaxInPlace(v []float64) {
	maxV := math.Inf(-1)
	for _, x := range v {
		if x > maxV {
			maxV = x
		}
	}
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - maxV)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}

// Predict implements Classifier.
func (l *Logistic) Predict(x *tensor.Tensor) []int {
	n := x.Dim(0)
	out := make([]int, n)
	probs := make([]float64, l.Cfg.Classes)
	for i := 0; i < n; i++ {
		l.scores(x.Row(i), probs)
		out[i] = argmaxF(probs)
	}
	return out
}

// NaiveBayes is Gaussian naive Bayes: per-class independent feature
// Gaussians with log-prior class weights. A fast, surprisingly strong
// baseline on standardized tabular data.
type NaiveBayes struct {
	Classes int

	prior []float64   // log P(class)
	mean  [][]float64 // per class, per feature
	vari  [][]float64
}

// NewNaiveBayes constructs an unfitted classifier.
func NewNaiveBayes(classes int) *NaiveBayes { return &NaiveBayes{Classes: classes} }

var _ Classifier = (*NaiveBayes)(nil)

// Fit implements Classifier.
func (nb *NaiveBayes) Fit(x *tensor.Tensor, y []int) error {
	n, d := x.Dim(0), x.Dim(1)
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if nb.Classes < 2 {
		return fmt.Errorf("ml: NaiveBayes classes %d, need >= 2", nb.Classes)
	}
	counts := make([]int, nb.Classes)
	nb.mean = make([][]float64, nb.Classes)
	nb.vari = make([][]float64, nb.Classes)
	for c := range nb.mean {
		nb.mean[c] = make([]float64, d)
		nb.vari[c] = make([]float64, d)
	}
	for i := 0; i < n; i++ {
		c := y[i]
		if c < 0 || c >= nb.Classes {
			return fmt.Errorf("ml: label %d out of range", c)
		}
		counts[c]++
		row := x.Row(i)
		for j, v := range row {
			nb.mean[c][j] += v
		}
	}
	for c := range nb.mean {
		if counts[c] == 0 {
			continue
		}
		inv := 1.0 / float64(counts[c])
		for j := range nb.mean[c] {
			nb.mean[c][j] *= inv
		}
	}
	for i := 0; i < n; i++ {
		c := y[i]
		row := x.Row(i)
		for j, v := range row {
			dv := v - nb.mean[c][j]
			nb.vari[c][j] += dv * dv
		}
	}
	nb.prior = make([]float64, nb.Classes)
	for c := range nb.vari {
		if counts[c] == 0 {
			nb.prior[c] = math.Inf(-1)
			continue
		}
		inv := 1.0 / float64(counts[c])
		for j := range nb.vari[c] {
			nb.vari[c][j] = nb.vari[c][j]*inv + 1e-6 // variance smoothing
		}
		nb.prior[c] = math.Log(float64(counts[c]) / float64(n))
	}
	return nil
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(x *tensor.Tensor) []int {
	n := x.Dim(0)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		best, bi := math.Inf(-1), 0
		for c := 0; c < nb.Classes; c++ {
			if math.IsInf(nb.prior[c], -1) {
				continue
			}
			ll := nb.prior[c]
			for j, v := range row {
				dv := v - nb.mean[c][j]
				ll -= 0.5*dv*dv/nb.vari[c][j] + 0.5*math.Log(2*math.Pi*nb.vari[c][j])
			}
			if ll > best {
				best, bi = ll, c
			}
		}
		out[i] = bi
	}
	return out
}

// KNNClassifier is a k-nearest-neighbour majority-vote classifier,
// completing the classical-baseline family. Training is storage; the work
// happens at prediction time.
type KNNClassifier struct {
	K       int
	Classes int
	// MaxRef caps the retained training sample (0 = keep all).
	MaxRef int
	x      *tensor.Tensor
	y      []int
}

// NewKNNClassifier constructs a k-NN classifier (k defaults to 5).
func NewKNNClassifier(k, classes int) *KNNClassifier {
	if k < 1 {
		k = 5
	}
	return &KNNClassifier{K: k, Classes: classes}
}

var _ Classifier = (*KNNClassifier)(nil)

// Fit implements Classifier.
func (kc *KNNClassifier) Fit(x *tensor.Tensor, y []int) error {
	n := x.Dim(0)
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if kc.Classes < 2 {
		return fmt.Errorf("ml: KNNClassifier classes %d, need >= 2", kc.Classes)
	}
	if kc.MaxRef > 0 && n > kc.MaxRef {
		d := x.Dim(1)
		stride := n / kc.MaxRef
		xs := tensor.New(kc.MaxRef, d)
		ys := make([]int, kc.MaxRef)
		for i := 0; i < kc.MaxRef; i++ {
			copy(xs.Row(i), x.Row(i*stride))
			ys[i] = y[i*stride]
		}
		kc.x, kc.y = xs, ys
		return nil
	}
	kc.x = x.Clone()
	kc.y = append([]int(nil), y...)
	return nil
}

// Predict implements Classifier.
func (kc *KNNClassifier) Predict(x *tensor.Tensor) []int {
	n := x.Dim(0)
	m := kc.x.Dim(0)
	k := kc.K
	if k > m {
		k = m
	}
	out := make([]int, n)
	type nb struct {
		d float64
		y int
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		best := make([]nb, k)
		for j := range best {
			best[j] = nb{d: math.Inf(1)}
		}
		for j := 0; j < m; j++ {
			ref := kc.x.Row(j)
			d := 0.0
			for f, v := range row {
				diff := v - ref[f]
				d += diff * diff
				if d >= best[k-1].d {
					break
				}
			}
			if d < best[k-1].d {
				pos := k - 1
				for pos > 0 && best[pos-1].d > d {
					best[pos] = best[pos-1]
					pos--
				}
				best[pos] = nb{d: d, y: kc.y[j]}
			}
		}
		votes := make([]int, kc.Classes)
		for _, b := range best {
			if !math.IsInf(b.d, 1) {
				votes[b.y]++
			}
		}
		bi, bv := 0, -1
		for c, v := range votes {
			if v > bv {
				bv, bi = v, c
			}
		}
		out[i] = bi
	}
	return out
}
