package ml

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/tensor"
)

// ForestConfig controls Random Forest training.
type ForestConfig struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth bounds each tree (0 = unlimited).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// MaxFeatures per split; 0 selects √d automatically.
	MaxFeatures int
	// Classes is the number of classes; required.
	Classes int
	// Seed drives bootstrap sampling and per-tree feature subsampling.
	Seed int64
}

// Forest is a Random Forest: bagged CART trees with per-split feature
// subsampling, majority-voted (§V-H: "RF ... uses a different strategy of
// weight allocation" vs boosting).
type Forest struct {
	Cfg   ForestConfig
	trees []*Tree
}

// NewForest constructs an unfitted Random Forest.
func NewForest(cfg ForestConfig) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	return &Forest{Cfg: cfg}
}

var _ Classifier = (*Forest)(nil)

// Fit implements Classifier. Trees are trained in parallel.
func (f *Forest) Fit(x *tensor.Tensor, y []int) error {
	n, d := x.Dim(0), x.Dim(1)
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	maxFeat := f.Cfg.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = int(math.Sqrt(float64(d)))
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	f.trees = make([]*Tree, f.Cfg.Trees)
	errs := make([]error, f.Cfg.Trees)

	workers := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ti := 0; ti < f.Cfg.Trees; ti++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(ti int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(f.Cfg.Seed + int64(ti)*7919))
			// Bootstrap sample with replacement.
			bx := tensor.New(n, d)
			by := make([]int, n)
			for i := 0; i < n; i++ {
				j := rng.Intn(n)
				copy(bx.Row(i), x.Row(j))
				by[i] = y[j]
			}
			tree := NewTree(TreeConfig{
				MaxDepth:    f.Cfg.MaxDepth,
				MinLeaf:     f.Cfg.MinLeaf,
				MaxFeatures: maxFeat,
				Classes:     f.Cfg.Classes,
				Seed:        f.Cfg.Seed + int64(ti)*104729,
			})
			errs[ti] = tree.Fit(bx, by)
			f.trees[ti] = tree
		}(ti)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Predict implements Classifier by majority vote.
func (f *Forest) Predict(x *tensor.Tensor) []int {
	n := x.Dim(0)
	votes := make([][]int, n)
	for i := range votes {
		votes[i] = make([]int, f.Cfg.Classes)
	}
	for _, tree := range f.trees {
		pred := tree.Predict(x)
		for i, p := range pred {
			votes[i][p]++
		}
	}
	out := make([]int, n)
	for i, v := range votes {
		best, bi := -1, 0
		for c, cnt := range v {
			if cnt > best {
				best, bi = cnt, c
			}
		}
		out[i] = bi
	}
	return out
}

// TreeCount returns the number of fitted trees.
func (f *Forest) TreeCount() int { return len(f.trees) }
