package ml

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// AdaBoostConfig controls SAMME boosting.
type AdaBoostConfig struct {
	// Rounds is the number of weak learners (default 50).
	Rounds int
	// StumpDepth is the weak tree depth (default 1: decision stumps —
	// "many cascaded weak classifiers", §V-H).
	StumpDepth int
	// Classes is the number of classes; required.
	Classes int
	// Seed drives the weak learners' feature subsampling.
	Seed int64
}

// AdaBoost is the multi-class SAMME algorithm over depth-limited CART
// weak learners.
type AdaBoost struct {
	Cfg    AdaBoostConfig
	stumps []*Tree
	alphas []float64
}

// NewAdaBoost constructs an unfitted booster.
func NewAdaBoost(cfg AdaBoostConfig) *AdaBoost {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 50
	}
	if cfg.StumpDepth <= 0 {
		cfg.StumpDepth = 1
	}
	return &AdaBoost{Cfg: cfg}
}

var _ Classifier = (*AdaBoost)(nil)

// Fit implements Classifier using SAMME: each round fits a weighted weak
// learner, weighs it by log((1−err)/err) + log(K−1), and upweights the
// samples it misclassified.
func (a *AdaBoost) Fit(x *tensor.Tensor, y []int) error {
	n := x.Dim(0)
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	k := float64(a.Cfg.Classes)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / float64(n)
	}
	a.stumps = a.stumps[:0]
	a.alphas = a.alphas[:0]

	for round := 0; round < a.Cfg.Rounds; round++ {
		stump := NewTree(TreeConfig{
			MaxDepth: a.Cfg.StumpDepth,
			MinLeaf:  1,
			Classes:  a.Cfg.Classes,
			Seed:     a.Cfg.Seed + int64(round)*6271,
		})
		if err := stump.FitWeighted(x, y, w); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		pred := stump.Predict(x)
		errW := 0.0
		for i, p := range pred {
			if p != y[i] {
				errW += w[i]
			}
		}
		if errW >= 1-1/k {
			// Worse than random guessing: stop (SAMME requirement).
			break
		}
		if errW < 1e-10 {
			// Perfect learner: give it a large finite weight and stop.
			a.stumps = append(a.stumps, stump)
			a.alphas = append(a.alphas, 10+math.Log(k-1))
			break
		}
		alpha := math.Log((1-errW)/errW) + math.Log(k-1)
		a.stumps = append(a.stumps, stump)
		a.alphas = append(a.alphas, alpha)

		// Reweight and renormalize.
		sum := 0.0
		for i, p := range pred {
			if p != y[i] {
				w[i] *= math.Exp(alpha)
			}
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	if len(a.stumps) == 0 {
		return fmt.Errorf("ml: AdaBoost found no weak learner better than chance")
	}
	return nil
}

// Predict implements Classifier: argmax over alpha-weighted votes.
func (a *AdaBoost) Predict(x *tensor.Tensor) []int {
	n := x.Dim(0)
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = make([]float64, a.Cfg.Classes)
	}
	for m, stump := range a.stumps {
		pred := stump.Predict(x)
		for i, p := range pred {
			scores[i][p] += a.alphas[m]
		}
	}
	out := make([]int, n)
	for i, s := range scores {
		out[i] = argmaxF(s)
	}
	return out
}

// Rounds returns the number of weak learners actually kept.
func (a *AdaBoost) Rounds() int { return len(a.stumps) }
