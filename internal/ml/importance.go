package ml

// Feature importance lets a NIDS operator see which flow statistics a
// fitted tree ensemble actually keys on — the interpretability hook the
// deep models lack.

// FeatureImportance returns the gini-importance of every feature in a
// fitted tree: the total weighted impurity decrease contributed by splits
// on that feature, normalized to sum to 1.
func (t *Tree) FeatureImportance(numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	accumulateImportance(t.root, imp)
	normalizeImportance(imp)
	return imp
}

// accumulateImportance walks the tree adding each split's impurity
// decrease (weighted by the node's sample mass) to its feature.
func accumulateImportance(n *treeNode, imp []float64) {
	if n == nil || n.feature < 0 {
		return
	}
	total := sumF(n.dist)
	leftTotal := sumF(n.left.dist)
	rightTotal := sumF(n.right.dist)
	if total > 0 && n.feature < len(imp) {
		parent := giniOf(n.dist, total)
		child := 0.0
		if leftTotal > 0 {
			child += leftTotal / total * giniOf(n.left.dist, leftTotal)
		}
		if rightTotal > 0 {
			child += rightTotal / total * giniOf(n.right.dist, rightTotal)
		}
		if dec := parent - child; dec > 0 {
			imp[n.feature] += total * dec
		}
	}
	accumulateImportance(n.left, imp)
	accumulateImportance(n.right, imp)
}

// FeatureImportance returns the forest-averaged gini importance.
func (f *Forest) FeatureImportance(numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	for _, tree := range f.trees {
		ti := tree.FeatureImportance(numFeatures)
		for i, v := range ti {
			imp[i] += v
		}
	}
	normalizeImportance(imp)
	return imp
}

func sumF(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func normalizeImportance(imp []float64) {
	s := sumF(imp)
	if s <= 0 {
		return
	}
	for i := range imp {
		imp[i] /= s
	}
}
