package ml

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestLogisticLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x, y := blobs(rng, 600, 5, 3, 1.0)
	xt, yt := blobs(rand.New(rand.NewSource(20)), 600, 5, 3, 1.0)
	lr := NewLogistic(LogisticConfig{Classes: 3, Epochs: 60, Seed: 1})
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accOf(lr.Predict(xt), yt); acc < 0.9 {
		t.Fatalf("logistic blob accuracy %v < 0.9", acc)
	}
}

func TestLogisticCannotSolveXOR(t *testing.T) {
	// Sanity that it is genuinely linear: XOR accuracy must hover near
	// chance, unlike the RBF SVM.
	rng := rand.New(rand.NewSource(21))
	x, y := xorData(rng, 400)
	lr := NewLogistic(LogisticConfig{Classes: 2, Epochs: 80, Seed: 2})
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accOf(lr.Predict(x), y); acc > 0.75 {
		t.Fatalf("linear model 'solved' XOR (%.3f): not actually linear?", acc)
	}
}

func TestLogisticRejectsBadConfig(t *testing.T) {
	lr := NewLogistic(LogisticConfig{Classes: 1})
	if err := lr.Fit(tensor.New(2, 2), []int{0, 0}); err == nil {
		t.Fatal("classes=1 accepted")
	}
	lr2 := NewLogistic(LogisticConfig{Classes: 2})
	if err := lr2.Fit(tensor.New(0, 2), nil); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestNaiveBayesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x, y := blobs(rng, 500, 6, 4, 1.0)
	xt, yt := blobs(rand.New(rand.NewSource(22)), 500, 6, 4, 1.0)
	nb := NewNaiveBayes(4)
	if err := nb.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accOf(nb.Predict(xt), yt); acc < 0.9 {
		t.Fatalf("naive Bayes blob accuracy %v < 0.9", acc)
	}
}

func TestNaiveBayesHandlesAbsentClass(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x, y := blobs(rng, 200, 3, 2, 1.0) // only labels 0, 1
	nb := NewNaiveBayes(4)
	if err := nb.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, p := range nb.Predict(x) {
		if p > 1 {
			t.Fatal("absent class predicted")
		}
	}
}

func TestNaiveBayesUsesPriors(t *testing.T) {
	// Identical likelihoods: the prior must decide.
	x := tensor.New(100, 1)
	y := make([]int, 100)
	for i := range y {
		if i < 90 {
			y[i] = 0
		} else {
			y[i] = 1
		}
		x.Set(0, i, 0)
	}
	nb := NewNaiveBayes(2)
	if err := nb.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := nb.Predict(tensor.New(1, 1)); p[0] != 0 {
		t.Fatalf("prior-dominant prediction %d, want 0", p[0])
	}
}

func TestKNNClassifierBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x, y := blobs(rng, 500, 4, 3, 1.0)
	xt, yt := blobs(rand.New(rand.NewSource(24)), 500, 4, 3, 1.0)
	kc := NewKNNClassifier(5, 3)
	if err := kc.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accOf(kc.Predict(xt), yt); acc < 0.9 {
		t.Fatalf("kNN blob accuracy %v < 0.9", acc)
	}
}

func TestKNNClassifierSolvesXOR(t *testing.T) {
	// Local method: must handle the nonlinear boundary logistic cannot.
	rng := rand.New(rand.NewSource(25))
	x, y := xorData(rng, 500)
	xt, yt := xorData(rand.New(rand.NewSource(26)), 300)
	kc := NewKNNClassifier(7, 2)
	if err := kc.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accOf(kc.Predict(xt), yt); acc < 0.8 {
		t.Fatalf("kNN XOR accuracy %v < 0.8", acc)
	}
}

func TestKNNClassifierMaxRef(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	x, y := blobs(rng, 400, 3, 2, 1.0)
	kc := NewKNNClassifier(3, 2)
	kc.MaxRef = 80
	if err := kc.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if kc.x.Dim(0) != 80 {
		t.Fatalf("retained %d rows, want 80", kc.x.Dim(0))
	}
}

func TestKNNClassifierKLargerThanTrainingSet(t *testing.T) {
	x := tensor.FromSlice([]float64{0, 0, 1, 1}, 2, 2)
	y := []int{0, 1}
	kc := NewKNNClassifier(10, 2)
	if err := kc.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := kc.Predict(x) // must not panic
	if len(pred) != 2 {
		t.Fatalf("got %d predictions", len(pred))
	}
}
