package ml

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/tensor"
)

// SVMConfig controls the RBF-kernel SVM (§V-H: "SVM (RBF)").
type SVMConfig struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// Gamma is the RBF width; 0 selects 1/d ("scale"-free default).
	Gamma float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is how many consecutive passes without alpha changes end
	// training (default 3).
	MaxPasses int
	// MaxIter caps total optimization sweeps (default 200).
	MaxIter int
	// Subsample caps the training-set size; kernel methods scale O(n²)
	// ("a low generation capability on learning large scale data", §V-H).
	// 0 means no cap.
	Subsample int
	// Classes is the number of classes; required.
	Classes int
	// Seed drives subsampling and SMO's random second-index choice.
	Seed int64
}

// SVM is a one-vs-rest multi-class RBF SVM trained with simplified SMO.
// The kernel matrix is computed once and shared by all binary problems.
type SVM struct {
	Cfg SVMConfig

	x     *tensor.Tensor // retained training rows (possibly subsampled)
	gamma float64
	// per-class dual coefficients y_i·α_i and bias.
	coef [][]float64
	bias []float64
}

// NewSVM constructs an unfitted SVM.
func NewSVM(cfg SVMConfig) *SVM {
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-3
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = 3
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}
	return &SVM{Cfg: cfg}
}

var _ Classifier = (*SVM)(nil)

// Fit implements Classifier.
func (s *SVM) Fit(x *tensor.Tensor, y []int) error {
	n, d := x.Dim(0), x.Dim(1)
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if s.Cfg.Classes < 2 {
		return fmt.Errorf("ml: SVMConfig.Classes = %d, need >= 2", s.Cfg.Classes)
	}
	rng := rand.New(rand.NewSource(s.Cfg.Seed))

	// Subsample if configured (stratified-ish: plain random is fine for
	// the sizes involved, but keep at least one per present class).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if s.Cfg.Subsample > 0 && n > s.Cfg.Subsample {
		rng.Shuffle(n, func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		idx = idx[:s.Cfg.Subsample]
	}
	m := len(idx)
	xs := tensor.New(m, d)
	ys := make([]int, m)
	for i, j := range idx {
		copy(xs.Row(i), x.Row(j))
		ys[i] = y[j]
	}
	s.x = xs
	s.gamma = s.Cfg.Gamma
	if s.gamma <= 0 {
		s.gamma = 1.0 / float64(d)
	}

	// Precompute the kernel matrix once (parallel rows); shared across the
	// one-vs-rest binary problems.
	kmat := s.kernelMatrix(xs)

	s.coef = make([][]float64, s.Cfg.Classes)
	s.bias = make([]float64, s.Cfg.Classes)
	for c := 0; c < s.Cfg.Classes; c++ {
		yy := make([]float64, m)
		pos := 0
		for i, yi := range ys {
			if yi == c {
				yy[i] = 1
				pos++
			} else {
				yy[i] = -1
			}
		}
		if pos == 0 || pos == m {
			// Class absent (or exclusive) in the subsample: decision is the
			// constant majority sign.
			s.coef[c] = make([]float64, m)
			if pos == m {
				s.bias[c] = 1
			} else {
				s.bias[c] = -1
			}
			continue
		}
		alpha, b := smo(kmat, yy, s.Cfg.C, s.Cfg.Tol, s.Cfg.MaxPasses, s.Cfg.MaxIter, rand.New(rand.NewSource(s.Cfg.Seed+int64(c)+1)))
		coef := make([]float64, m)
		for i := range coef {
			coef[i] = alpha[i] * yy[i]
		}
		s.coef[c] = coef
		s.bias[c] = b
	}
	return nil
}

// kernelMatrix computes the m×m RBF Gram matrix in parallel.
func (s *SVM) kernelMatrix(x *tensor.Tensor) []float64 {
	m := x.Dim(0)
	k := make([]float64, m*m)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	band := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += band {
		hi := lo + band
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				ri := x.Row(i)
				for j := 0; j <= i; j++ {
					v := rbf(ri, x.Row(j), s.gamma)
					k[i*m+j] = v
					k[j*m+i] = v
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return k
}

// rbf computes exp(−γ‖a−b‖²).
func rbf(a, b []float64, gamma float64) float64 {
	d := 0.0
	for i, av := range a {
		diff := av - b[i]
		d += diff * diff
	}
	return math.Exp(-gamma * d)
}

// smo runs simplified SMO (Platt) over a precomputed kernel matrix for a
// binary problem with labels y ∈ {−1, +1}, returning the dual variables
// and bias.
func smo(kmat []float64, y []float64, c, tol float64, maxPasses, maxIter int, rng *rand.Rand) (alpha []float64, b float64) {
	m := len(y)
	alpha = make([]float64, m)
	// f(i) = Σ_j α_j y_j K(i,j) + b; maintain incrementally via errs.
	fOf := func(i int) float64 {
		s := b
		row := kmat[i*m : (i+1)*m]
		for j, aj := range alpha {
			if aj != 0 {
				s += aj * y[j] * row[j]
			}
		}
		return s
	}

	passes, iter := 0, 0
	for passes < maxPasses && iter < maxIter {
		changed := 0
		for i := 0; i < m; i++ {
			ei := fOf(i) - y[i]
			if (y[i]*ei < -tol && alpha[i] < c) || (y[i]*ei > tol && alpha[i] > 0) {
				j := rng.Intn(m - 1)
				if j >= i {
					j++
				}
				ej := fOf(j) - y[j]
				aiOld, ajOld := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, ajOld-aiOld)
					hi = math.Min(c, c+ajOld-aiOld)
				} else {
					lo = math.Max(0, aiOld+ajOld-c)
					hi = math.Min(c, aiOld+ajOld)
				}
				if lo == hi {
					continue
				}
				eta := 2*kmat[i*m+j] - kmat[i*m+i] - kmat[j*m+j]
				if eta >= 0 {
					continue
				}
				aj := ajOld - y[j]*(ei-ej)/eta
				if aj > hi {
					aj = hi
				} else if aj < lo {
					aj = lo
				}
				if math.Abs(aj-ajOld) < 1e-5 {
					continue
				}
				ai := aiOld + y[i]*y[j]*(ajOld-aj)
				alpha[i], alpha[j] = ai, aj

				b1 := b - ei - y[i]*(ai-aiOld)*kmat[i*m+i] - y[j]*(aj-ajOld)*kmat[i*m+j]
				b2 := b - ej - y[i]*(ai-aiOld)*kmat[i*m+j] - y[j]*(aj-ajOld)*kmat[j*m+j]
				switch {
				case ai > 0 && ai < c:
					b = b1
				case aj > 0 && aj < c:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				changed++
			}
		}
		iter++
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	return alpha, b
}

// Predict implements Classifier: argmax over the one-vs-rest decision
// values. Rows are scored in parallel.
func (s *SVM) Predict(x *tensor.Tensor) []int {
	n := x.Dim(0)
	m := s.x.Dim(0)
	out := make([]int, n)

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	band := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += band {
		hi := lo + band
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			krow := make([]float64, m)
			for i := lo; i < hi; i++ {
				ri := x.Row(i)
				for j := 0; j < m; j++ {
					krow[j] = rbf(ri, s.x.Row(j), s.gamma)
				}
				best, bi := math.Inf(-1), 0
				for c := range s.coef {
					score := s.bias[c]
					for j, cj := range s.coef[c] {
						if cj != 0 {
							score += cj * krow[j]
						}
					}
					if score > best {
						best, bi = score, c
					}
				}
				out[i] = bi
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// SupportVectorCount returns, per class, how many training points carry
// non-zero dual coefficients.
func (s *SVM) SupportVectorCount() []int {
	out := make([]int, len(s.coef))
	for c, coef := range s.coef {
		for _, v := range coef {
			if v != 0 {
				out[c]++
			}
		}
	}
	return out
}
