package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// blobs generates k Gaussian clusters in d dims with the given spread.
func blobs(rng *rand.Rand, n, d, k int, spread float64) (*tensor.Tensor, []int) {
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 4
		}
	}
	x := tensor.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		y[i] = c
		row := x.Row(i)
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()*spread
		}
	}
	return x, y
}

// xorData is the classic nonlinear two-class problem: class = sign(x0·x1).
func xorData(rng *rand.Rand, n int) (*tensor.Tensor, []int) {
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(a, i, 0)
		x.Set(b, i, 1)
		if a*b > 0 {
			y[i] = 1
		}
	}
	return x, y
}

func accOf(pred, y []int) float64 {
	c := 0
	for i, p := range pred {
		if p == y[i] {
			c++
		}
	}
	return float64(c) / float64(len(y))
}

func TestTreeLearnsAxisAlignedSplit(t *testing.T) {
	x := tensor.FromSlice([]float64{
		0, 0, 1, 0, 2, 0, 10, 0, 11, 0, 12, 0,
	}, 6, 2)
	y := []int{0, 0, 0, 1, 1, 1}
	tr := NewTree(TreeConfig{Classes: 2, MaxDepth: 2})
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accOf(tr.Predict(x), y); acc != 1 {
		t.Fatalf("tree failed trivial split: acc %v", acc)
	}
	if tr.Depth() != 1 {
		t.Fatalf("expected a single split, depth %d", tr.Depth())
	}
}

func TestTreeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := blobs(rng, 600, 5, 3, 1.0)
	xt, yt := blobs(rand.New(rand.NewSource(1)), 600, 5, 3, 1.0)
	tr := NewTree(TreeConfig{Classes: 3, MaxDepth: 8})
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accOf(tr.Predict(xt), yt); acc < 0.9 {
		t.Fatalf("tree blob accuracy %v < 0.9", acc)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := blobs(rng, 400, 4, 4, 2.0)
	tr := NewTree(TreeConfig{Classes: 4, MaxDepth: 3})
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if d := tr.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds MaxDepth 3", d)
	}
}

func TestTreeWeightedFitBiasesTowardHeavySamples(t *testing.T) {
	// Two overlapping points; weight decides the majority class.
	x := tensor.FromSlice([]float64{0, 0, 0, 0}, 4, 1)
	y := []int{0, 0, 1, 1}
	w := []float64{0.05, 0.05, 0.45, 0.45}
	tr := NewTree(TreeConfig{Classes: 2})
	if err := tr.FitWeighted(x, y, w); err != nil {
		t.Fatalf("FitWeighted: %v", err)
	}
	if p := tr.Predict(x); p[0] != 1 {
		t.Fatalf("weighted majority should be class 1, got %d", p[0])
	}
}

func TestTreeErrorCases(t *testing.T) {
	tr := NewTree(TreeConfig{Classes: 2})
	if err := tr.Fit(tensor.New(0, 2), nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if err := tr.Fit(tensor.New(2, 2), []int{0}); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if err := tr.Fit(tensor.New(2, 2), []int{0, 5}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	tr2 := NewTree(TreeConfig{Classes: 1})
	if err := tr2.Fit(tensor.New(2, 2), []int{0, 0}); err == nil {
		t.Fatal("single-class config accepted")
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := blobs(rng, 800, 8, 3, 2.5)
	xt, yt := blobs(rand.New(rand.NewSource(3)), 800, 8, 3, 2.5)

	tr := NewTree(TreeConfig{Classes: 3, MaxDepth: 12})
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("tree Fit: %v", err)
	}
	fo := NewForest(ForestConfig{Trees: 30, MaxDepth: 12, Classes: 3, Seed: 9})
	if err := fo.Fit(x, y); err != nil {
		t.Fatalf("forest Fit: %v", err)
	}
	treeAcc := accOf(tr.Predict(xt), yt)
	forestAcc := accOf(fo.Predict(xt), yt)
	if forestAcc < treeAcc-0.02 {
		t.Fatalf("forest (%.3f) should not be worse than tree (%.3f)", forestAcc, treeAcc)
	}
	if fo.TreeCount() != 30 {
		t.Fatalf("TreeCount = %d, want 30", fo.TreeCount())
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := blobs(rng, 300, 4, 2, 1.5)
	f1 := NewForest(ForestConfig{Trees: 10, MaxDepth: 6, Classes: 2, Seed: 5})
	f2 := NewForest(ForestConfig{Trees: 10, MaxDepth: 6, Classes: 2, Seed: 5})
	if err := f1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p1, p2 := f1.Predict(x), f2.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestAdaBoostImprovesOverSingleStump(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := blobs(rng, 500, 6, 2, 3.0)
	xt, yt := blobs(rand.New(rand.NewSource(5)), 500, 6, 2, 3.0)

	stump := NewTree(TreeConfig{Classes: 2, MaxDepth: 1})
	if err := stump.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	boost := NewAdaBoost(AdaBoostConfig{Rounds: 40, StumpDepth: 1, Classes: 2, Seed: 6})
	if err := boost.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sAcc := accOf(stump.Predict(xt), yt)
	bAcc := accOf(boost.Predict(xt), yt)
	if bAcc <= sAcc {
		t.Fatalf("AdaBoost (%.3f) did not improve over stump (%.3f)", bAcc, sAcc)
	}
}

func TestAdaBoostMulticlassSAMME(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := blobs(rng, 600, 5, 4, 1.2)
	boost := NewAdaBoost(AdaBoostConfig{Rounds: 60, StumpDepth: 2, Classes: 4, Seed: 7})
	if err := boost.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accOf(boost.Predict(x), y); acc < 0.8 {
		t.Fatalf("SAMME 4-class training accuracy %v < 0.8", acc)
	}
	if boost.Rounds() == 0 {
		t.Fatal("no weak learners kept")
	}
}

func TestSVMLearnsLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(a, i, 0)
		x.Set(b, i, 1)
		if a+b > 0.0 {
			y[i] = 1
		}
		// Margin: push points away from the boundary.
		if math.Abs(a+b) < 0.3 {
			x.Set(a+math.Copysign(0.3, a+b), i, 0)
		}
	}
	svm := NewSVM(SVMConfig{C: 1, Classes: 2, Seed: 8})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accOf(svm.Predict(x), y); acc < 0.95 {
		t.Fatalf("SVM linear accuracy %v < 0.95", acc)
	}
}

func TestSVMRBFLearnsXOR(t *testing.T) {
	// RBF kernel must solve a problem no linear separator can.
	rng := rand.New(rand.NewSource(9))
	x, y := xorData(rng, 300)
	xt, yt := xorData(rand.New(rand.NewSource(10)), 300)
	svm := NewSVM(SVMConfig{C: 5, Gamma: 1, Classes: 2, Seed: 11})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accOf(svm.Predict(xt), yt); acc < 0.85 {
		t.Fatalf("RBF SVM XOR accuracy %v < 0.85", acc)
	}
}

func TestSVMMulticlassBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y := blobs(rng, 400, 4, 3, 1.0)
	svm := NewSVM(SVMConfig{C: 1, Classes: 3, Seed: 13})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accOf(svm.Predict(x), y); acc < 0.9 {
		t.Fatalf("multiclass SVM accuracy %v < 0.9", acc)
	}
	sv := svm.SupportVectorCount()
	if len(sv) != 3 {
		t.Fatalf("SupportVectorCount classes = %d", len(sv))
	}
}

func TestSVMSubsampleCapsTrainingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x, y := blobs(rng, 500, 3, 2, 1.0)
	svm := NewSVM(SVMConfig{C: 1, Classes: 2, Subsample: 100, Seed: 15})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := svm.x.Dim(0); got != 100 {
		t.Fatalf("subsampled training size %d, want 100", got)
	}
	// Still usable.
	if acc := accOf(svm.Predict(x), y); acc < 0.85 {
		t.Fatalf("subsampled SVM accuracy %v < 0.85", acc)
	}
}

func TestSVMHandlesAbsentClass(t *testing.T) {
	// A class never observed must not break fit/predict.
	rng := rand.New(rand.NewSource(16))
	x, y := blobs(rng, 100, 3, 2, 1.0) // labels 0/1 only
	svm := NewSVM(SVMConfig{C: 1, Classes: 3, Seed: 17})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := svm.Predict(x)
	for _, p := range pred {
		if p == 2 {
			t.Fatal("absent class predicted")
		}
	}
}

func TestRBFKernelProperties(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{1, 2}
	if v := rbf(a, b, 0.5); v != 1 {
		t.Fatalf("K(x,x) = %v, want 1", v)
	}
	c := []float64{100, -100}
	if v := rbf(a, c, 0.5); v > 1e-10 {
		t.Fatalf("distant kernel %v, want ≈0", v)
	}
}
