package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionAddAndTotal(t *testing.T) {
	c := NewConfusion(3)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(2, 2)
	if c.Total() != 3 {
		t.Fatalf("Total = %d, want 3", c.Total())
	}
	if c.Counts[0][1] != 1 {
		t.Fatalf("Counts[0][1] = %d, want 1", c.Counts[0][1])
	}
}

func TestAddAllMismatchedPanics(t *testing.T) {
	c := NewConfusion(2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched AddAll did not panic")
		}
	}()
	c.AddAll([]int{0, 1}, []int{0})
}

func TestMulticlassAccuracy(t *testing.T) {
	c := NewConfusion(2)
	c.AddAll([]int{0, 0, 1, 1}, []int{0, 1, 1, 1})
	if got := c.MulticlassAccuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
}

func TestBinaryCollapse(t *testing.T) {
	// Classes: 0 = normal, 1 = dos, 2 = probe.
	c := NewConfusion(3)
	c.Add(1, 1) // attack detected → TP
	c.Add(1, 2) // dos predicted probe: still an attack prediction → TP
	c.Add(2, 0) // attack missed → FN
	c.Add(0, 0) // normal passed → TN
	c.Add(0, 2) // false alarm → FP
	b := c.Binary(0)
	if b.TP != 2 || b.FN != 1 || b.TN != 1 || b.FP != 1 {
		t.Fatalf("binary = %+v, want TP=2 FN=1 TN=1 FP=1", b)
	}
}

func TestPaperMetricFormulas(t *testing.T) {
	b := BinaryCounts{TP: 80, FN: 20, FP: 5, TN: 95}
	if got := b.DR(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("DR = %v, want 0.8", got)
	}
	if got := b.FAR(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("FAR = %v, want 0.05", got)
	}
	if got := b.ACC(); math.Abs(got-0.875) > 1e-12 {
		t.Fatalf("ACC = %v, want 0.875", got)
	}
}

func TestMetricsEmptyDenominators(t *testing.T) {
	var b BinaryCounts
	if b.ACC() != 0 || b.DR() != 0 || b.FAR() != 0 {
		t.Fatal("empty counts should yield zero metrics, not NaN")
	}
}

func TestMerge(t *testing.T) {
	a := NewConfusion(2)
	a.Add(0, 0)
	b := NewConfusion(2)
	b.Add(0, 0)
	b.Add(1, 0)
	a.Merge(b)
	if a.Counts[0][0] != 2 || a.Counts[1][0] != 1 {
		t.Fatalf("merge wrong: %v", a.Counts)
	}
}

func TestMergeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Merge did not panic")
		}
	}()
	NewConfusion(2).Merge(NewConfusion(3))
}

func TestPerClassReport(t *testing.T) {
	c := NewConfusion(2)
	// class 0: 3 correct, 1 predicted as 1; class 1: 2 correct, 2 as 0.
	c.AddAll(
		[]int{0, 0, 0, 0, 1, 1, 1, 1},
		[]int{0, 0, 0, 1, 1, 1, 0, 0},
	)
	rep := c.PerClass()
	// class 0: precision 3/5, recall 3/4.
	if math.Abs(rep[0].Precision-0.6) > 1e-12 || math.Abs(rep[0].Recall-0.75) > 1e-12 {
		t.Fatalf("class 0 report %+v", rep[0])
	}
	if rep[0].Support != 4 || rep[1].Support != 4 {
		t.Fatalf("supports %d/%d, want 4/4", rep[0].Support, rep[1].Support)
	}
	// F1 harmonic mean check for class 0: 2·0.6·0.75/1.35.
	wantF1 := 2 * 0.6 * 0.75 / 1.35
	if math.Abs(rep[0].F1-wantF1) > 1e-12 {
		t.Fatalf("class 0 F1 = %v, want %v", rep[0].F1, wantF1)
	}
}

func TestSummarizePercentScale(t *testing.T) {
	c := NewConfusion(2)
	c.AddAll([]int{1, 1, 1, 1, 0, 0, 0, 0}, []int{1, 1, 1, 0, 0, 0, 0, 1})
	s := Summarize("test", c, 0)
	if math.Abs(s.DR-75) > 1e-9 {
		t.Fatalf("DR%% = %v, want 75", s.DR)
	}
	if math.Abs(s.FAR-25) > 1e-9 {
		t.Fatalf("FAR%% = %v, want 25", s.FAR)
	}
	if s.TP != 3 || s.FP != 1 {
		t.Fatalf("TP/FP = %d/%d, want 3/1", s.TP, s.FP)
	}
}

func TestFormatTableContainsRows(t *testing.T) {
	rows := []Summary{{Design: "Pelican", DR: 97.75, ACC: 86.64, FAR: 1.30}}
	out := FormatTable("TABLE V", rows)
	if !strings.Contains(out, "Pelican") || !strings.Contains(out, "86.64") {
		t.Fatalf("table missing content:\n%s", out)
	}
}

// TestPropBinaryCountsConsistent: collapsing preserves totals and metric
// bounds for any confusion matrix.
func TestPropBinaryCountsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(5)
		c := NewConfusion(k)
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			c.Add(rng.Intn(k), rng.Intn(k))
		}
		b := c.Binary(rng.Intn(k))
		if b.TP+b.FP+b.TN+b.FN != n {
			return false
		}
		for _, m := range []float64{b.ACC(), b.DR(), b.FAR()} {
			if m < 0 || m > 1 || math.IsNaN(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropPerClassRecallMatchesDiagonal: recall·support == diagonal count.
func TestPropPerClassRecallMatchesDiagonal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		c := NewConfusion(k)
		for i := 0; i < 200; i++ {
			c.Add(rng.Intn(k), rng.Intn(k))
		}
		for _, r := range c.PerClass() {
			got := r.Recall * float64(r.Support)
			if math.Abs(got-float64(c.Counts[r.Class][r.Class])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
