// Package metrics implements the paper's evaluation metrics (§V-B):
// validation accuracy (ACC), detection rate (DR) and false-alarm rate
// (FAR), computed from a multi-class confusion matrix collapsed into the
// binary attack-vs-normal view the paper's Eqs. (3)–(5) use, plus per-class
// precision/recall and k-fold aggregation helpers.
package metrics

import (
	"fmt"
	"strings"
)

// Confusion is a multi-class confusion matrix: Counts[actual][predicted].
type Confusion struct {
	K      int
	Counts [][]int
}

// NewConfusion allocates a k-class confusion matrix.
func NewConfusion(k int) *Confusion {
	c := &Confusion{K: k, Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	return c
}

// Add records one observation.
func (c *Confusion) Add(actual, predicted int) {
	c.Counts[actual][predicted]++
}

// AddAll records a batch of observations; the slices must be equal length.
func (c *Confusion) AddAll(actual, predicted []int) {
	if len(actual) != len(predicted) {
		panic(fmt.Sprintf("metrics: %d actual vs %d predicted labels", len(actual), len(predicted)))
	}
	for i, a := range actual {
		c.Add(a, predicted[i])
	}
}

// Merge accumulates another confusion matrix (e.g., across CV folds).
func (c *Confusion) Merge(o *Confusion) {
	if c.K != o.K {
		panic(fmt.Sprintf("metrics: merging %d-class into %d-class confusion", o.K, c.K))
	}
	for i := range c.Counts {
		for j := range c.Counts[i] {
			c.Counts[i][j] += o.Counts[i][j]
		}
	}
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// MulticlassAccuracy is the trace over the total.
func (c *Confusion) MulticlassAccuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	d := 0
	for i := 0; i < c.K; i++ {
		d += c.Counts[i][i]
	}
	return float64(d) / float64(n)
}

// BinaryCounts is the attack-vs-normal collapse of a confusion matrix:
// an attack is any class other than the normal class. TP = attacks
// classified as (any) attack; per the paper, a DoS record predicted as
// Probe still counts as a detected attack.
type BinaryCounts struct {
	TP, FP, TN, FN int
}

// Binary collapses the matrix treating class normalClass as "normal" and
// everything else as "attack".
func (c *Confusion) Binary(normalClass int) BinaryCounts {
	var b BinaryCounts
	for a := 0; a < c.K; a++ {
		for p := 0; p < c.K; p++ {
			n := c.Counts[a][p]
			actualAttack := a != normalClass
			predAttack := p != normalClass
			switch {
			case actualAttack && predAttack:
				b.TP += n
			case actualAttack && !predAttack:
				b.FN += n
			case !actualAttack && predAttack:
				b.FP += n
			default:
				b.TN += n
			}
		}
	}
	return b
}

// ACC is Eq. (3): (TP+TN) / (TP+TN+FP+FN).
func (b BinaryCounts) ACC() float64 {
	n := b.TP + b.TN + b.FP + b.FN
	if n == 0 {
		return 0
	}
	return float64(b.TP+b.TN) / float64(n)
}

// DR is Eq. (4), the detection rate (recall on attacks): TP / (TP+FN).
func (b BinaryCounts) DR() float64 {
	n := b.TP + b.FN
	if n == 0 {
		return 0
	}
	return float64(b.TP) / float64(n)
}

// FAR is Eq. (5), the false-alarm rate: FP / (FP+TN).
func (b BinaryCounts) FAR() float64 {
	n := b.FP + b.TN
	if n == 0 {
		return 0
	}
	return float64(b.FP) / float64(n)
}

// ClassReport is per-class precision/recall/F1 with support.
type ClassReport struct {
	Class     int
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// PerClass computes a report for every class.
func (c *Confusion) PerClass() []ClassReport {
	out := make([]ClassReport, c.K)
	for k := 0; k < c.K; k++ {
		tp := c.Counts[k][k]
		fp, fn, support := 0, 0, 0
		for a := 0; a < c.K; a++ {
			if a != k {
				fp += c.Counts[a][k]
				fn += c.Counts[k][a]
			}
		}
		for _, v := range c.Counts[k] {
			support += v
		}
		r := ClassReport{Class: k, Support: support}
		if tp+fp > 0 {
			r.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			r.Recall = float64(tp) / float64(tp+fn)
		}
		if r.Precision+r.Recall > 0 {
			r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
		}
		out[k] = r
	}
	return out
}

// String renders the matrix with optional class names.
func (c *Confusion) String() string {
	var b strings.Builder
	for i, row := range c.Counts {
		fmt.Fprintf(&b, "%3d |", i)
		for _, v := range row {
			fmt.Fprintf(&b, " %7d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary bundles the three paper metrics for one evaluated design.
type Summary struct {
	Design string
	TP     int
	FP     int
	DR     float64 // percent
	ACC    float64 // percent
	FAR    float64 // percent
}

// Summarize produces a Summary row from a confusion matrix, with metrics
// expressed in percent as the paper's tables report them.
func Summarize(design string, c *Confusion, normalClass int) Summary {
	b := c.Binary(normalClass)
	return Summary{
		Design: design,
		TP:     b.TP,
		FP:     b.FP,
		DR:     b.DR() * 100,
		ACC:    b.ACC() * 100,
		FAR:    b.FAR() * 100,
	}
}

// FormatTable renders summaries in the paper's table layout
// (Design | DR% | ACC% | FAR%).
func FormatTable(title string, rows []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-26s %8s %8s %8s\n", "Design", "DR%", "ACC%", "FAR%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %8.2f %8.2f %8.2f\n", r.Design, r.DR, r.ACC, r.FAR)
	}
	return b.String()
}
