package signature

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/data"
)

// randomRule builds a syntactically valid random rule against testSchema.
func randomRule(rng *rand.Rand, id int) Rule {
	schema := testSchema()
	r := Rule{ID: id, Msg: "fuzz rule", Class: 1 + rng.Intn(2)}
	// Random subset of categorical conditions.
	if rng.Float64() < 0.5 {
		cf := schema.Categorical[0]
		r.Cats = append(r.Cats, CatCondition{
			Feature: cf.Name,
			Value:   cf.Values[rng.Intn(len(cf.Values))],
		})
	}
	// 1..3 numeric conditions with random ops and round-trippable values.
	ops := []CmpOp{OpGT, OpLT, OpGE, OpLE}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		r.Nums = append(r.Nums, Condition{
			Feature: schema.NumericNames[rng.Intn(len(schema.NumericNames))],
			Op:      ops[rng.Intn(len(ops))],
			Value:   math.Round(rng.NormFloat64()*100) / 4, // exact in float64
		})
	}
	return r
}

// TestPropFormatParseRoundTrip: any generated rule survives
// FormatRule → ParseRules unchanged.
func TestPropFormatParseRoundTrip(t *testing.T) {
	schema := testSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rule := randomRule(rng, 1+rng.Intn(9999))
		text := FormatRule(rule, schema)
		parsed, err := ParseRules(strings.NewReader(text), schema)
		if err != nil || len(parsed) != 1 {
			return false
		}
		got := parsed[0]
		if got.ID != rule.ID || got.Class != rule.Class {
			return false
		}
		if len(got.Cats) != len(rule.Cats) || len(got.Nums) != len(rule.Nums) {
			return false
		}
		for i, c := range rule.Cats {
			if got.Cats[i] != c {
				return false
			}
		}
		for i, c := range rule.Nums {
			if got.Nums[i].Feature != c.Feature || got.Nums[i].Op != c.Op ||
				math.Abs(got.Nums[i].Value-c.Value) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropParsedRulesAlwaysCompile: anything ParseRules accepts must
// compile into an engine.
func TestPropParsedRulesAlwaysCompile(t *testing.T) {
	schema := testSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			b.WriteString(FormatRule(randomRule(rng, i+1), schema))
			b.WriteByte('\n')
		}
		rules, err := ParseRules(strings.NewReader(b.String()), schema)
		if err != nil {
			return false
		}
		_, err = NewEngine(schema, rules)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropEngineDeterministic: matching is a pure function of the record.
func TestPropEngineDeterministic(t *testing.T) {
	schema := testSchema()
	rng := rand.New(rand.NewSource(99))
	rules := []Rule{randomRule(rng, 1), randomRule(rng, 2), randomRule(rng, 3)}
	eng, err := NewEngine(schema, rules)
	if err != nil {
		t.Fatal(err)
	}
	vals := []string{"tcp", "udp"}
	f := func(a, b, c float64, catIdx uint8) bool {
		rec := data.Record{
			Numeric:     []float64{a, b, c},
			Categorical: []string{vals[int(catIdx)%2]},
		}
		r1, ok1 := eng.Match(&rec)
		r2, ok2 := eng.Match(&rec)
		return ok1 == ok2 && r1.ID == r2.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
