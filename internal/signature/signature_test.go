package signature

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/synth"
)

func testSchema() data.Schema {
	return data.Schema{
		NumericNames: []string{"count", "serror_rate", "duration"},
		Categorical: []data.CategoricalFeature{
			{Name: "proto", Values: []string{"tcp", "udp"}},
		},
		ClassNames: []string{"normal", "dos", "probe"},
	}
}

func TestEngineMatchesConjunction(t *testing.T) {
	rules := []Rule{{
		ID: 1, Msg: "syn flood", Class: 1,
		Cats: []CatCondition{{Feature: "proto", Value: "tcp"}},
		Nums: []Condition{
			{Feature: "count", Op: OpGT, Value: 40},
			{Feature: "serror_rate", Op: OpGE, Value: 0.5},
		},
	}}
	e, err := NewEngine(testSchema(), rules)
	if err != nil {
		t.Fatal(err)
	}
	hit := data.Record{Numeric: []float64{50, 0.9, 1}, Categorical: []string{"tcp"}}
	if _, ok := e.Match(&hit); !ok {
		t.Fatal("matching record not detected")
	}
	missProto := data.Record{Numeric: []float64{50, 0.9, 1}, Categorical: []string{"udp"}}
	if _, ok := e.Match(&missProto); ok {
		t.Fatal("wrong protocol matched")
	}
	missNum := data.Record{Numeric: []float64{10, 0.9, 1}, Categorical: []string{"tcp"}}
	if _, ok := e.Match(&missNum); ok {
		t.Fatal("below-threshold count matched")
	}
	boundary := data.Record{Numeric: []float64{41, 0.5, 0}, Categorical: []string{"tcp"}}
	if _, ok := e.Match(&boundary); !ok {
		t.Fatal("boundary >= condition failed")
	}
}

func TestEngineFirstMatchWins(t *testing.T) {
	rules := []Rule{
		{ID: 1, Msg: "a", Class: 1, Nums: []Condition{{Feature: "count", Op: OpGT, Value: 10}}},
		{ID: 2, Msg: "b", Class: 2, Nums: []Condition{{Feature: "count", Op: OpGT, Value: 5}}},
	}
	e, err := NewEngine(testSchema(), rules)
	if err != nil {
		t.Fatal(err)
	}
	r := data.Record{Numeric: []float64{20, 0, 0}, Categorical: []string{"tcp"}}
	got, ok := e.Match(&r)
	if !ok || got.ID != 1 {
		t.Fatalf("want rule 1 first, got %+v ok=%v", got, ok)
	}
}

func TestEngineRejectsUnknownFeature(t *testing.T) {
	rules := []Rule{{ID: 1, Class: 1, Nums: []Condition{{Feature: "nonexistent", Op: OpGT, Value: 1}}}}
	if _, err := NewEngine(testSchema(), rules); err == nil {
		t.Fatal("unknown feature accepted")
	}
	rules = []Rule{{ID: 1, Class: 1, Cats: []CatCondition{{Feature: "ghost", Value: "x"}}}}
	if _, err := NewEngine(testSchema(), rules); err == nil {
		t.Fatal("unknown categorical accepted")
	}
}

func TestEngineRejectsNormalClassRule(t *testing.T) {
	rules := []Rule{{ID: 1, Class: 0}}
	if _, err := NewEngine(testSchema(), rules); err == nil {
		t.Fatal("rule alerting on the normal class accepted")
	}
}

func TestParseRulesDSL(t *testing.T) {
	text := `
# comment line
alert 1001 "tcp flood" proto=tcp count>40 serror_rate>=0.5 class=dos

alert 1002 "slow scan" duration<=2 count<100 class=probe
`
	rules, err := ParseRules(strings.NewReader(text), testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	r := rules[0]
	if r.ID != 1001 || r.Msg != "tcp flood" || r.Class != 1 {
		t.Fatalf("rule 1 header wrong: %+v", r)
	}
	if len(r.Cats) != 1 || r.Cats[0].Value != "tcp" {
		t.Fatalf("rule 1 cats wrong: %+v", r.Cats)
	}
	if len(r.Nums) != 2 || r.Nums[0].Op != OpGT || r.Nums[1].Op != OpGE {
		t.Fatalf("rule 1 nums wrong: %+v", r.Nums)
	}
	if rules[1].Nums[0].Op != OpLE || rules[1].Nums[1].Op != OpLT {
		t.Fatalf("rule 2 ops wrong: %+v", rules[1].Nums)
	}
	// Round trip through the engine.
	if _, err := NewEngine(testSchema(), rules); err != nil {
		t.Fatalf("parsed rules did not compile: %v", err)
	}
}

func TestParseRulesErrors(t *testing.T) {
	bad := []string{
		`notanalert 1 "x" class=dos`,
		`alert xyz "x" class=dos`,
		`alert 1 unquoted class=dos`,
		`alert 1 "x" count>40`,            // missing class
		`alert 1 "x" class=unknowncls`,    // unknown class
		`alert 1 "x" count>nan class=dos`, // bad number... "nan" parses! use letters
	}
	for _, text := range bad[:5] {
		if _, err := ParseRules(strings.NewReader(text), testSchema()); err == nil {
			t.Errorf("accepted bad rule: %s", text)
		}
	}
}

func TestFormatRuleRoundTrip(t *testing.T) {
	rule := Rule{
		ID: 7, Msg: "probe sweep", Class: 2,
		Cats: []CatCondition{{Feature: "proto", Value: "udp"}},
		Nums: []Condition{{Feature: "count", Op: OpGT, Value: 9}},
	}
	text := FormatRule(rule, testSchema())
	parsed, err := ParseRules(strings.NewReader(text), testSchema())
	if err != nil {
		t.Fatalf("formatted rule does not parse: %v\n%s", err, text)
	}
	if len(parsed) != 1 || parsed[0].ID != 7 || parsed[0].Class != 2 {
		t.Fatalf("round trip lost fields: %+v", parsed)
	}
}

func TestMineRulesDetectsKnownAttacks(t *testing.T) {
	g := synth.MustNew(synth.NSLKDDConfig())
	train := g.Generate(4000, 51)
	rules, err := MineRules(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	e, err := NewEngine(train.Schema, rules)
	if err != nil {
		t.Fatalf("mined rules do not compile: %v", err)
	}

	// On held-out traffic from the same distribution the signatures must
	// catch a sensible share of attacks while not flooding on normals.
	test := g.Generate(2000, 52)
	var tp, fn, fp, tn int
	for i := range test.Records {
		r := &test.Records[i]
		_, matched := e.Match(r)
		attack := r.Label != 0
		switch {
		case attack && matched:
			tp++
		case attack && !matched:
			fn++
		case !attack && matched:
			fp++
		default:
			tn++
		}
	}
	dr := float64(tp) / float64(tp+fn)
	far := float64(fp) / float64(fp+tn)
	if dr < 0.3 {
		t.Fatalf("mined signatures detect only %.1f%% of known attacks", dr*100)
	}
	if far > 0.6 {
		t.Fatalf("mined signatures false-alarm rate %.1f%% is absurd", far*100)
	}
}

func TestMineRulesRequiresNormalTraffic(t *testing.T) {
	ds := &data.Dataset{Schema: testSchema()}
	ds.Records = append(ds.Records, data.Record{
		Numeric: []float64{1, 2, 3}, Categorical: []string{"tcp"}, Label: 1,
	})
	if _, err := MineRules(ds, 2); err == nil {
		t.Fatal("mining without normal traffic accepted")
	}
}
