// Package signature implements a Snort-style signature-based NIDS — the
// previous-generation detector the paper's Background section (§VI)
// contrasts with ML detection ("the signature-based solution lacks of
// intelligence to discover advanced variants of previously known attacks").
//
// Rules match flow records on categorical equality and numeric threshold
// conditions. A small rule language is provided:
//
//	alert 1001 "tcp flood" proto=tcp count>40 serror_rate>0.5 class=dos
//
// The engine also supports mining rules from labeled traffic, so the
// baseline can be stood up on any synthetic dataset — and its blindness to
// attack variants measured (see the ext-signature experiment).
package signature

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/data"
)

// CmpOp is a numeric comparison operator.
type CmpOp int

// Comparison operators understood by rule conditions.
const (
	OpGT CmpOp = iota + 1
	OpLT
	OpGE
	OpLE
	OpEQ
)

func (o CmpOp) String() string {
	switch o {
	case OpGT:
		return ">"
	case OpLT:
		return "<"
	case OpGE:
		return ">="
	case OpLE:
		return "<="
	case OpEQ:
		return "=="
	}
	return "?"
}

// Condition is one numeric predicate on a named feature.
type Condition struct {
	Feature string
	Op      CmpOp
	Value   float64
}

// CatCondition is an equality predicate on a categorical feature.
type CatCondition struct {
	Feature string
	Value   string
}

// Rule is one signature: all conditions must hold for a match.
type Rule struct {
	ID    int
	Msg   string
	Cats  []CatCondition
	Nums  []Condition
	Class int // the attack class this signature identifies
}

// Engine matches records against a compiled rule set.
type Engine struct {
	schema data.Schema
	rules  []compiledRule
}

type compiledRule struct {
	rule Rule
	cats []compiledCat
	nums []compiledNum
}

type compiledCat struct {
	idx   int
	value string
}

type compiledNum struct {
	idx int
	op  CmpOp
	val float64
}

// NewEngine compiles rules against a schema, resolving feature names to
// indices. Unknown features are an error — a rule that can never fire is a
// deployment bug worth catching.
func NewEngine(schema data.Schema, rules []Rule) (*Engine, error) {
	numIdx := make(map[string]int, len(schema.NumericNames))
	for i, n := range schema.NumericNames {
		numIdx[n] = i
	}
	catIdx := make(map[string]int, len(schema.Categorical))
	for i, c := range schema.Categorical {
		catIdx[c.Name] = i
	}
	e := &Engine{schema: schema}
	for _, r := range rules {
		cr := compiledRule{rule: r}
		if r.Class <= 0 || r.Class >= schema.NumClasses() {
			return nil, fmt.Errorf("signature: rule %d: class %d is not an attack class", r.ID, r.Class)
		}
		for _, c := range r.Cats {
			idx, ok := catIdx[c.Feature]
			if !ok {
				return nil, fmt.Errorf("signature: rule %d: unknown categorical feature %q", r.ID, c.Feature)
			}
			cr.cats = append(cr.cats, compiledCat{idx: idx, value: c.Value})
		}
		for _, c := range r.Nums {
			idx, ok := numIdx[c.Feature]
			if !ok {
				return nil, fmt.Errorf("signature: rule %d: unknown numeric feature %q", r.ID, c.Feature)
			}
			cr.nums = append(cr.nums, compiledNum{idx: idx, op: c.Op, val: c.Value})
		}
		e.rules = append(e.rules, cr)
	}
	return e, nil
}

// RuleCount returns the number of compiled rules.
func (e *Engine) RuleCount() int { return len(e.rules) }

// Match returns the first matching rule, or ok=false if none fires.
func (e *Engine) Match(rec *data.Record) (Rule, bool) {
	for i := range e.rules {
		if e.matches(&e.rules[i], rec) {
			return e.rules[i].rule, true
		}
	}
	return Rule{}, false
}

func (e *Engine) matches(cr *compiledRule, rec *data.Record) bool {
	for _, c := range cr.cats {
		if rec.Categorical[c.idx] != c.value {
			return false
		}
	}
	for _, c := range cr.nums {
		v := rec.Numeric[c.idx]
		switch c.op {
		case OpGT:
			if !(v > c.val) {
				return false
			}
		case OpLT:
			if !(v < c.val) {
				return false
			}
		case OpGE:
			if !(v >= c.val) {
				return false
			}
		case OpLE:
			if !(v <= c.val) {
				return false
			}
		case OpEQ:
			if v != c.val {
				return false
			}
		}
	}
	return true
}

// ParseRules reads the rule DSL, one rule per line:
//
//	alert <id> "<msg>" [feature=value]... [feature><=value]... class=<name>
//
// Blank lines and lines starting with '#' are ignored. Class names resolve
// against the schema.
func ParseRules(r io.Reader, schema data.Schema) ([]Rule, error) {
	classIdx := make(map[string]int, len(schema.ClassNames))
	for i, c := range schema.ClassNames {
		classIdx[c] = i
	}
	catSet := make(map[string]bool, len(schema.Categorical))
	for _, c := range schema.Categorical {
		catSet[c.Name] = true
	}

	var rules []Rule
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rule, err := parseRuleLine(text, classIdx, catSet)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rules, nil
}

func parseRuleLine(text string, classIdx map[string]int, catSet map[string]bool) (Rule, error) {
	rest, msg, err := splitAlertHeader(text)
	if err != nil {
		return Rule{}, err
	}
	fields := strings.Fields(rest.tail)
	rule := Rule{ID: rest.id, Msg: msg, Class: -1}
	for _, f := range fields {
		switch {
		case strings.HasPrefix(f, "class="):
			name := strings.TrimPrefix(f, "class=")
			idx, ok := classIdx[name]
			if !ok {
				return Rule{}, fmt.Errorf("unknown class %q", name)
			}
			rule.Class = idx
		case strings.Contains(f, ">="):
			c, err := parseNum(f, ">=", OpGE)
			if err != nil {
				return Rule{}, err
			}
			rule.Nums = append(rule.Nums, c)
		case strings.Contains(f, "<="):
			c, err := parseNum(f, "<=", OpLE)
			if err != nil {
				return Rule{}, err
			}
			rule.Nums = append(rule.Nums, c)
		case strings.Contains(f, ">"):
			c, err := parseNum(f, ">", OpGT)
			if err != nil {
				return Rule{}, err
			}
			rule.Nums = append(rule.Nums, c)
		case strings.Contains(f, "<"):
			c, err := parseNum(f, "<", OpLT)
			if err != nil {
				return Rule{}, err
			}
			rule.Nums = append(rule.Nums, c)
		case strings.Contains(f, "="):
			parts := strings.SplitN(f, "=", 2)
			if catSet[parts[0]] {
				rule.Cats = append(rule.Cats, CatCondition{Feature: parts[0], Value: parts[1]})
			} else {
				v, err := strconv.ParseFloat(parts[1], 64)
				if err != nil {
					return Rule{}, fmt.Errorf("condition %q: %w", f, err)
				}
				rule.Nums = append(rule.Nums, Condition{Feature: parts[0], Op: OpEQ, Value: v})
			}
		default:
			return Rule{}, fmt.Errorf("unparseable condition %q", f)
		}
	}
	if rule.Class < 0 {
		return Rule{}, fmt.Errorf("rule %d: missing class=", rule.ID)
	}
	return rule, nil
}

type alertHeader struct {
	id   int
	tail string
}

func splitAlertHeader(text string) (alertHeader, string, error) {
	if !strings.HasPrefix(text, "alert ") {
		return alertHeader{}, "", fmt.Errorf("rule must start with \"alert\"")
	}
	text = strings.TrimPrefix(text, "alert ")
	sp := strings.IndexByte(text, ' ')
	if sp < 0 {
		return alertHeader{}, "", fmt.Errorf("missing rule id")
	}
	id, err := strconv.Atoi(text[:sp])
	if err != nil {
		return alertHeader{}, "", fmt.Errorf("rule id: %w", err)
	}
	text = strings.TrimSpace(text[sp:])
	if !strings.HasPrefix(text, `"`) {
		return alertHeader{}, "", fmt.Errorf("missing quoted message")
	}
	end := strings.IndexByte(text[1:], '"')
	if end < 0 {
		return alertHeader{}, "", fmt.Errorf("unterminated message")
	}
	msg := text[1 : 1+end]
	return alertHeader{id: id, tail: text[end+2:]}, msg, nil
}

func parseNum(f, sep string, op CmpOp) (Condition, error) {
	parts := strings.SplitN(f, sep, 2)
	v, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return Condition{}, fmt.Errorf("condition %q: %w", f, err)
	}
	return Condition{Feature: parts[0], Op: op, Value: v}, nil
}

// MineRules derives signatures from labeled traffic: for each attack
// class, it finds the numeric features that best separate the class from
// normal traffic and emits a rule with thresholds at the class's quantile
// band. This models how signature databases encode *known* attacks — and
// why they miss variants that shift outside the band.
func MineRules(ds *data.Dataset, perClass int) ([]Rule, error) {
	k := ds.Schema.NumClasses()
	nn := ds.Schema.NumNumeric()
	if perClass < 1 {
		perClass = 2
	}

	// Collect per-class numeric samples.
	byClass := make([][][]float64, k)
	for i := range ds.Records {
		r := &ds.Records[i]
		byClass[r.Label] = append(byClass[r.Label], r.Numeric)
	}
	if len(byClass[0]) == 0 {
		return nil, fmt.Errorf("signature: no normal traffic to mine against")
	}
	normalMean, normalStd := columnStats(byClass[0], nn)

	var rules []Rule
	id := 1000
	for c := 1; c < k; c++ {
		if len(byClass[c]) < 5 {
			continue // too rare to characterize
		}
		mean, _ := columnStats(byClass[c], nn)
		// Rank features by standardized mean shift from normal.
		type shift struct {
			idx int
			z   float64
		}
		shifts := make([]shift, nn)
		for j := 0; j < nn; j++ {
			z := (mean[j] - normalMean[j]) / (normalStd[j] + 1e-9)
			shifts[j] = shift{idx: j, z: z}
		}
		sort.Slice(shifts, func(a, b int) bool {
			return math.Abs(shifts[a].z) > math.Abs(shifts[b].z)
		})
		rule := Rule{ID: id, Msg: "mined signature: " + ds.Schema.ClassNames[c], Class: c}
		id++
		for _, s := range shifts[:minInt(perClass, len(shifts))] {
			vals := column(byClass[c], s.idx)
			sort.Float64s(vals)
			if s.z > 0 {
				// Class sits above normal: threshold at its 25th pct.
				rule.Nums = append(rule.Nums, Condition{
					Feature: ds.Schema.NumericNames[s.idx], Op: OpGE, Value: quantile(vals, 0.25),
				})
			} else {
				rule.Nums = append(rule.Nums, Condition{
					Feature: ds.Schema.NumericNames[s.idx], Op: OpLE, Value: quantile(vals, 0.75),
				})
			}
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("signature: no attack class had enough samples to mine")
	}
	return rules, nil
}

func columnStats(rows [][]float64, n int) (mean, std []float64) {
	mean = make([]float64, n)
	std = make([]float64, n)
	if len(rows) == 0 {
		for j := range std {
			std[j] = 1
		}
		return mean, std
	}
	for _, r := range rows {
		for j := 0; j < n; j++ {
			mean[j] += r[j]
		}
	}
	inv := 1.0 / float64(len(rows))
	for j := range mean {
		mean[j] *= inv
	}
	for _, r := range rows {
		for j := 0; j < n; j++ {
			d := r[j] - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] * inv)
	}
	return mean, std
}

func column(rows [][]float64, j int) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r[j]
	}
	return out
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FormatRule renders a rule back into the DSL.
func FormatRule(r Rule, schema data.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "alert %d %q", r.ID, r.Msg)
	for _, c := range r.Cats {
		fmt.Fprintf(&b, " %s=%s", c.Feature, c.Value)
	}
	for _, c := range r.Nums {
		op := c.Op.String()
		if c.Op == OpEQ {
			op = "="
		}
		fmt.Fprintf(&b, " %s%s%g", c.Feature, op, c.Value)
	}
	fmt.Fprintf(&b, " class=%s", schema.ClassNames[r.Class])
	return b.String()
}
