// Package models builds every network evaluated in the paper: the plain
// and residual CNN+GRU block networks of §IV/§V-C (Plain-21/41,
// Residual-21/41 — Residual-41 being Pelican), LuNet, and the deep-learning
// baselines of §V-H (MLP, CNN, LSTM, HAST-IDS).
//
// Every model consumes rank-3 input (batch, 1, F): one timestep with F
// channels, exactly the paper's input shape (§V-C: "(1, 196)" and
// "(1, 121)"). Models whose first layer is dense start with a Flatten.
package models

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nn"
)

// BlockConfig parameterizes one CNN+GRU block (paper Table I).
type BlockConfig struct {
	// Features is F: the conv filter count and GRU unit count, which must
	// equal the input width so residual adds are shape-compatible (§V-C).
	Features int
	// Kernel is the conv kernel size (paper: 10).
	Kernel int
	// Pool is the max-pool window (identity when the sequence length is 1).
	Pool int
	// Dropout is the block's dropout rate (paper: 0.6).
	Dropout float64
}

// PaperBlockConfig returns the paper's Table I block setting for a dataset
// with the given encoded feature count.
func PaperBlockConfig(features int) BlockConfig {
	return BlockConfig{Features: features, Kernel: 10, Pool: 2, Dropout: 0.6}
}

// NewPlainBlock builds the plain block of Fig. 4(a):
// BN → Conv1D+ReLU → MaxPool → BN → GRU(tanh, hard-sigmoid) → Reshape →
// Dropout. rng initializes weights; dropRNG drives dropout masks.
func NewPlainBlock(rng, dropRNG *rand.Rand, cfg BlockConfig) nn.Layer {
	f := cfg.Features
	return nn.NewSequential(
		nn.NewBatchNorm(f),
		nn.NewConv1D(rng, f, f, cfg.Kernel, nn.PaddingSame),
		nn.NewReLU(),
		nn.NewMaxPool1D(cfg.Pool),
		nn.NewBatchNorm(f),
		nn.NewGRU(rng, f, f, true),
		nn.NewReshape(-1, f),
		nn.NewDropout(dropRNG, cfg.Dropout),
	)
}

// NewResidualBlock builds the ResBlk of Fig. 4(b): the same stack with a
// shortcut from the first BatchNorm's output to the block output
// ("the short cut is connected from the BN output", §IV).
func NewResidualBlock(rng, dropRNG *rand.Rand, cfg BlockConfig) nn.Layer {
	f := cfg.Features
	body := nn.NewSequential(
		nn.NewConv1D(rng, f, f, cfg.Kernel, nn.PaddingSame),
		nn.NewReLU(),
		nn.NewMaxPool1D(cfg.Pool),
		nn.NewBatchNorm(f),
		nn.NewGRU(rng, f, f, true),
		nn.NewReshape(-1, f),
		nn.NewDropout(dropRNG, cfg.Dropout),
	)
	return nn.NewPreShortcut(nn.NewBatchNorm(f), body)
}

// ParamLayersForBlocks converts a block count to the paper's
// "parameter layer" count: each block contributes 4 parameter layers (BN,
// Conv, BN, GRU) and the classification head contributes one Dense.
// 5 blocks → 21, 10 blocks → 41, matching §V-C.
func ParamLayersForBlocks(blocks int) int { return 4*blocks + 1 }

// BlocksForParamLayers inverts ParamLayersForBlocks (rounding down).
func BlocksForParamLayers(layers int) int { return (layers - 1) / 4 }

// BuildBlockNet assembles blocks + GlobalAvgPool + Dense(classes), the
// paper's network skeleton. residual selects ResBlk vs plain blocks.
func BuildBlockNet(rng, dropRNG *rand.Rand, blocks int, residual bool, cfg BlockConfig, classes int) *nn.Sequential {
	if blocks < 1 {
		panic(fmt.Sprintf("models: block count %d < 1", blocks))
	}
	s := nn.NewSequential()
	for i := 0; i < blocks; i++ {
		if residual {
			s.Add(NewResidualBlock(rng, dropRNG, cfg))
		} else {
			s.Add(NewPlainBlock(rng, dropRNG, cfg))
		}
	}
	s.Add(nn.NewGlobalAvgPool1D())
	s.Add(nn.NewDense(rng, cfg.Features, classes))
	return s
}

// BuildPlain21 is the 21-parameter-layer plain network (5 plain blocks).
func BuildPlain21(rng, dropRNG *rand.Rand, cfg BlockConfig, classes int) *nn.Sequential {
	return BuildBlockNet(rng, dropRNG, 5, false, cfg, classes)
}

// BuildPlain41 is the 41-parameter-layer plain network (10 plain blocks).
func BuildPlain41(rng, dropRNG *rand.Rand, cfg BlockConfig, classes int) *nn.Sequential {
	return BuildBlockNet(rng, dropRNG, 10, false, cfg, classes)
}

// BuildResidual21 is the 21-parameter-layer residual network (5 ResBlks).
func BuildResidual21(rng, dropRNG *rand.Rand, cfg BlockConfig, classes int) *nn.Sequential {
	return BuildBlockNet(rng, dropRNG, 5, true, cfg, classes)
}

// BuildPelican is Residual-41: 10 ResBlks + GAP + Dense — the paper's
// proposed network.
func BuildPelican(rng, dropRNG *rand.Rand, cfg BlockConfig, classes int) *nn.Sequential {
	return BuildBlockNet(rng, dropRNG, 10, true, cfg, classes)
}

// BuildLuNet is the authors' earlier plain CNN+GRU design [1], whose block
// this paper adopts as its plain block; depth is configurable for the
// Fig. 2 degradation sweep. The published LuNet uses 3 levels.
func BuildLuNet(rng, dropRNG *rand.Rand, blocks int, cfg BlockConfig, classes int) *nn.Sequential {
	return BuildBlockNet(rng, dropRNG, blocks, false, cfg, classes)
}

// BuildMLP is the multilayer-perceptron baseline (§V-H): two hidden ReLU
// layers with dropout.
func BuildMLP(rng, dropRNG *rand.Rand, features, classes int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewFlatten(),
		nn.NewDense(rng, features, 256),
		nn.NewReLU(),
		nn.NewDropout(dropRNG, 0.3),
		nn.NewDense(rng, 256, 128),
		nn.NewReLU(),
		nn.NewDense(rng, 128, classes),
	)
}

// BuildCNN is the convolutional baseline (§V-H): two conv stages over the
// (1, F) input followed by global pooling.
func BuildCNN(rng, dropRNG *rand.Rand, features, classes int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewConv1D(rng, features, 64, 3, nn.PaddingSame),
		nn.NewReLU(),
		nn.NewMaxPool1D(2),
		nn.NewConv1D(rng, 64, 128, 3, nn.PaddingSame),
		nn.NewReLU(),
		nn.NewDropout(dropRNG, 0.3),
		nn.NewGlobalAvgPool1D(),
		nn.NewDense(rng, 128, classes),
	)
}

// BuildLSTMNet is the recurrent baseline (§V-H): one LSTM layer over the
// (1, F) input.
func BuildLSTMNet(rng, dropRNG *rand.Rand, features, classes int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewLSTM(rng, features, 128, false),
		nn.NewDropout(dropRNG, 0.3),
		nn.NewDense(rng, 128, classes),
	)
}

// BuildHASTIDS is the HAST-IDS baseline (§V-H): a tandem CNN→LSTM — first
// spatial representations by CNN, then temporal by LSTM.
func BuildHASTIDS(rng, dropRNG *rand.Rand, features, classes int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewConv1D(rng, features, 64, 3, nn.PaddingSame),
		nn.NewReLU(),
		nn.NewMaxPool1D(2),
		nn.NewConv1D(rng, 64, 128, 3, nn.PaddingSame),
		nn.NewReLU(),
		nn.NewLSTM(rng, 128, 100, false),
		nn.NewDropout(dropRNG, 0.3),
		nn.NewDense(rng, 100, classes),
	)
}

// Spec describes one registered model and how to build it.
type Spec struct {
	Name        string
	Description string
	// Build constructs the stack for the given encoded feature count and
	// class count. cfg carries the block parameters for block-based nets;
	// baselines ignore most of it.
	Build func(rng, dropRNG *rand.Rand, cfg BlockConfig, features, classes int) *nn.Sequential
}

// registry of all model names used by cmd/ tools and the experiment
// harness.
var registry = map[string]Spec{
	"plain-21": {
		Name: "plain-21", Description: "5 plain CNN+GRU blocks + GAP + dense (21 parameter layers)",
		Build: func(rng, dropRNG *rand.Rand, cfg BlockConfig, _, classes int) *nn.Sequential {
			return BuildPlain21(rng, dropRNG, cfg, classes)
		},
	},
	"plain-41": {
		Name: "plain-41", Description: "10 plain CNN+GRU blocks + GAP + dense (41 parameter layers)",
		Build: func(rng, dropRNG *rand.Rand, cfg BlockConfig, _, classes int) *nn.Sequential {
			return BuildPlain41(rng, dropRNG, cfg, classes)
		},
	},
	"residual-21": {
		Name: "residual-21", Description: "5 residual blocks + GAP + dense (21 parameter layers)",
		Build: func(rng, dropRNG *rand.Rand, cfg BlockConfig, _, classes int) *nn.Sequential {
			return BuildResidual21(rng, dropRNG, cfg, classes)
		},
	},
	"pelican": {
		Name: "pelican", Description: "Residual-41: 10 residual blocks + GAP + dense — the paper's design",
		Build: func(rng, dropRNG *rand.Rand, cfg BlockConfig, _, classes int) *nn.Sequential {
			return BuildPelican(rng, dropRNG, cfg, classes)
		},
	},
	"lunet": {
		Name: "lunet", Description: "LuNet: 3 plain CNN+GRU blocks + GAP + dense",
		Build: func(rng, dropRNG *rand.Rand, cfg BlockConfig, _, classes int) *nn.Sequential {
			return BuildLuNet(rng, dropRNG, 3, cfg, classes)
		},
	},
	"mlp": {
		Name: "mlp", Description: "2-hidden-layer perceptron baseline",
		Build: func(rng, dropRNG *rand.Rand, _ BlockConfig, features, classes int) *nn.Sequential {
			return BuildMLP(rng, dropRNG, features, classes)
		},
	},
	"cnn": {
		Name: "cnn", Description: "2-stage Conv1D baseline",
		Build: func(rng, dropRNG *rand.Rand, _ BlockConfig, features, classes int) *nn.Sequential {
			return BuildCNN(rng, dropRNG, features, classes)
		},
	},
	"lstm": {
		Name: "lstm", Description: "single-layer LSTM baseline",
		Build: func(rng, dropRNG *rand.Rand, _ BlockConfig, features, classes int) *nn.Sequential {
			return BuildLSTMNet(rng, dropRNG, features, classes)
		},
	},
	"hast-ids": {
		Name: "hast-ids", Description: "HAST-IDS: tandem CNN→LSTM baseline",
		Build: func(rng, dropRNG *rand.Rand, _ BlockConfig, features, classes int) *nn.Sequential {
			return BuildHASTIDS(rng, dropRNG, features, classes)
		},
	},
}

// Lookup returns the spec for a registered model name.
func Lookup(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists all registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
