package models

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func rngs() (*rand.Rand, *rand.Rand) {
	return rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2))
}

func smallCfg() BlockConfig {
	return BlockConfig{Features: 8, Kernel: 3, Pool: 2, Dropout: 0.5}
}

func TestParamLayerArithmetic(t *testing.T) {
	if got := ParamLayersForBlocks(5); got != 21 {
		t.Fatalf("5 blocks → %d parameter layers, want 21", got)
	}
	if got := ParamLayersForBlocks(10); got != 41 {
		t.Fatalf("10 blocks → %d parameter layers, want 41", got)
	}
	if got := BlocksForParamLayers(21); got != 5 {
		t.Fatalf("21 layers → %d blocks, want 5", got)
	}
	if got := BlocksForParamLayers(41); got != 10 {
		t.Fatalf("41 layers → %d blocks, want 10", got)
	}
}

func TestAllModelsForwardShape(t *testing.T) {
	const classes = 5
	cfg := smallCfg()
	x := tensor.RandNormal(rand.New(rand.NewSource(3)), 0, 1, 4, 1, cfg.Features)
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		rng, dropRNG := rngs()
		stack := spec.Build(rng, dropRNG, cfg, cfg.Features, classes)
		out := stack.Forward(x, false)
		if out.Rank() != 2 || out.Dim(0) != 4 || out.Dim(1) != classes {
			t.Errorf("%s: output shape %v, want [4 %d]", name, out.Shape(), classes)
		}
	}
}

func TestAllModelsTrainOneStep(t *testing.T) {
	// Every registered model must run a full train step without panicking
	// and produce finite loss and parameters.
	const classes = 3
	cfg := smallCfg()
	x := tensor.RandNormal(rand.New(rand.NewSource(4)), 0, 1, 6, 1, cfg.Features)
	y := []int{0, 1, 2, 0, 1, 2}
	for _, name := range Names() {
		spec, _ := Lookup(name)
		rng, dropRNG := rngs()
		stack := spec.Build(rng, dropRNG, cfg, cfg.Features, classes)
		net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(0.01))
		loss := net.TrainBatch(x, y)
		if loss <= 0 || loss != loss {
			t.Errorf("%s: bad loss %v", name, loss)
		}
		for _, p := range stack.Params() {
			if !p.Value.AllFinite() {
				t.Errorf("%s: non-finite parameter %s after one step", name, p.Name)
			}
		}
	}
}

func TestResidualBlockPreservesShape(t *testing.T) {
	rng, dropRNG := rngs()
	cfg := smallCfg()
	blk := NewResidualBlock(rng, dropRNG, cfg)
	x := tensor.RandNormal(rng, 0, 1, 3, 1, cfg.Features)
	out := blk.Forward(x, true)
	if !sameShape(out.Shape(), []int{3, 1, cfg.Features}) {
		t.Fatalf("ResBlk output shape %v, want [3 1 %d]", out.Shape(), cfg.Features)
	}
}

func TestPlainBlockPreservesShapeAtT1(t *testing.T) {
	rng, dropRNG := rngs()
	cfg := smallCfg()
	blk := NewPlainBlock(rng, dropRNG, cfg)
	x := tensor.RandNormal(rng, 0, 1, 3, 1, cfg.Features)
	out := blk.Forward(x, true)
	if !sameShape(out.Shape(), []int{3, 1, cfg.Features}) {
		t.Fatalf("plain block output shape %v, want [3 1 %d]", out.Shape(), cfg.Features)
	}
}

func TestBlockNetDepths(t *testing.T) {
	rng, dropRNG := rngs()
	cfg := smallCfg()
	p21 := BuildPlain21(rng, dropRNG, cfg, 5)
	// 5 blocks + GAP + Dense = 7 top-level layers.
	if got := len(p21.Layers()); got != 7 {
		t.Fatalf("Plain-21 has %d top-level layers, want 7", got)
	}
	pel := BuildPelican(rng, dropRNG, cfg, 5)
	if got := len(pel.Layers()); got != 12 {
		t.Fatalf("Pelican has %d top-level layers, want 12", got)
	}
}

func TestResidualNetHasSameParamCountAsPlain(t *testing.T) {
	// The shortcut adds no parameters: Residual-21 and Plain-21 must have
	// identical parameter counts (the paper's comparison is depth-matched).
	cfg := smallCfg()
	r1, d1 := rngs()
	plain := BuildPlain21(r1, d1, cfg, 5)
	r2, d2 := rngs()
	res := BuildResidual21(r2, d2, cfg, 5)
	if pc, rc := nn.ParamCount(plain.Params()), nn.ParamCount(res.Params()); pc != rc {
		t.Fatalf("param counts differ: plain=%d residual=%d", pc, rc)
	}
}

func TestPelicanGradientFlowsToFirstBlock(t *testing.T) {
	// Residual learning's whole point (§III): gradient reaching the first
	// block must be healthy in the deep residual net.
	cfg := BlockConfig{Features: 6, Kernel: 3, Pool: 2, Dropout: 0}
	rng, dropRNG := rngs()
	stack := BuildPelican(rng, dropRNG, cfg, 3)
	x := tensor.RandNormal(rng, 0, 1, 8, 1, cfg.Features)
	y := []int{0, 1, 2, 0, 1, 2, 0, 1}
	loss := nn.NewSoftmaxCrossEntropy()
	out := stack.Forward(x, true)
	loss.Forward(out, y)
	stack.Backward(loss.Backward())
	// First block, first parameter (BN gamma of block 0).
	first := stack.Params()[0]
	if first.Grad.MaxAbs() == 0 {
		t.Fatal("no gradient reached the first block of Pelican")
	}
	if !first.Grad.AllFinite() {
		t.Fatal("non-finite gradient in first block")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("alexnet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	want := []string{"cnn", "hast-ids", "lstm", "lunet", "mlp", "pelican", "plain-21", "plain-41", "residual-21"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
