package models

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// TestPelicanParamCountAtPaperWidths pins the exact trainable-parameter
// counts of the paper's networks at the real dataset widths, guarding the
// architecture against accidental drift. Derivation per block at width F:
//
//	BN(head)  2F
//	Conv1D    10·F·F + F     (kernel 10, same padding)
//	BN        2F
//	GRU       F·3F + F·3F + 3F
//	           = 6F² + 3F
//
// block = 16F² + 8F; network = blocks·block + dense (F·K + K).
func TestPelicanParamCountAtPaperWidths(t *testing.T) {
	cases := []struct {
		name     string
		features int
		classes  int
		blocks   int
	}{
		{"unsw-pelican", 196, 10, 10},
		{"nsl-pelican", 121, 5, 10},
		{"unsw-residual-21", 196, 10, 5},
		{"nsl-residual-21", 121, 5, 5},
	}
	for _, c := range cases {
		f := c.features
		wantBlock := 16*f*f + 8*f
		want := c.blocks*wantBlock + f*c.classes + c.classes

		rng := rand.New(rand.NewSource(1))
		stack := BuildBlockNet(rng, rand.New(rand.NewSource(2)), c.blocks, true,
			PaperBlockConfig(f), c.classes)
		got := nn.ParamCount(stack.Params())
		if got != want {
			t.Errorf("%s: %d parameters, want %d", c.name, got, want)
		}
	}
}

// TestPlainAndResidualAlwaysParamIdentical: at any width, the shortcut
// adds zero parameters.
func TestPlainAndResidualAlwaysParamIdentical(t *testing.T) {
	for _, f := range []int{8, 33, 121, 196} {
		r1 := rand.New(rand.NewSource(1))
		d1 := rand.New(rand.NewSource(2))
		plain := BuildBlockNet(r1, d1, 3, false, PaperBlockConfig(f), 5)
		r2 := rand.New(rand.NewSource(1))
		d2 := rand.New(rand.NewSource(2))
		res := BuildBlockNet(r2, d2, 3, true, PaperBlockConfig(f), 5)
		if p, q := nn.ParamCount(plain.Params()), nn.ParamCount(res.Params()); p != q {
			t.Errorf("width %d: plain %d != residual %d", f, p, q)
		}
	}
}

// TestDeterministicInitGivenSeed: same seeds, same initial weights.
func TestDeterministicInitGivenSeed(t *testing.T) {
	build := func() []float64 {
		rng := rand.New(rand.NewSource(42))
		stack := BuildPelican(rng, rand.New(rand.NewSource(43)), PaperBlockConfig(16), 3)
		var out []float64
		for _, p := range stack.Params() {
			out = append(out, p.Value.Data()...)
		}
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("different parameter counts across identical builds")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight %d differs across identical seeds", i)
		}
	}
}

// TestModelsAreIndependentInstances: two builds share no parameter
// storage (mutating one must not affect the other).
func TestModelsAreIndependentInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := BuildResidual21(rng, rand.New(rand.NewSource(2)), PaperBlockConfig(8), 3)
	b := BuildResidual21(rng, rand.New(rand.NewSource(3)), PaperBlockConfig(8), 3)
	a.Params()[0].Value.Fill(123)
	if b.Params()[0].Value.At(0) == 123 {
		t.Fatal("two model instances share parameter storage")
	}
}
