package flow

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Capture records flow streams to an io.Writer and replays them later —
// the repository's pcap analogue. Captures make incidents reproducible:
// a stream that triggered alerts can be stored, attached to an incident,
// and re-run against a new detector build.

// captureHeader identifies the stream format.
type captureHeader struct {
	Magic   string
	Version int
	Count   int // number of flows, -1 if unknown (streamed)
}

const (
	captureMagic   = "pelican-flowlog"
	captureVersion = 1
)

// Writer serializes flows to a capture stream.
type Writer struct {
	enc   *gob.Encoder
	count int
}

// NewWriter starts a capture on w.
func NewWriter(w io.Writer) (*Writer, error) {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(captureHeader{Magic: captureMagic, Version: captureVersion, Count: -1}); err != nil {
		return nil, fmt.Errorf("flow: write capture header: %w", err)
	}
	return &Writer{enc: enc}, nil
}

// Write appends one flow to the capture.
func (w *Writer) Write(f Flow) error {
	if err := w.enc.Encode(f); err != nil {
		return fmt.Errorf("flow: write flow %d: %w", f.ID, err)
	}
	w.count++
	return nil
}

// Count returns the number of flows written so far.
func (w *Writer) Count() int { return w.count }

// Reader replays a capture stream.
type Reader struct {
	dec *gob.Decoder
}

// NewReader opens a capture on r, validating the header.
func NewReader(r io.Reader) (*Reader, error) {
	dec := gob.NewDecoder(r)
	var h captureHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("flow: read capture header: %w", err)
	}
	if h.Magic != captureMagic {
		return nil, fmt.Errorf("flow: not a capture stream (magic %q)", h.Magic)
	}
	if h.Version != captureVersion {
		return nil, fmt.Errorf("flow: unsupported capture version %d", h.Version)
	}
	return &Reader{dec: dec}, nil
}

// Next returns the next flow, or io.EOF at end of capture.
func (r *Reader) Next() (Flow, error) {
	var f Flow
	if err := r.dec.Decode(&f); err != nil {
		if err == io.EOF {
			return Flow{}, io.EOF
		}
		return Flow{}, fmt.Errorf("flow: read flow: %w", err)
	}
	return f, nil
}

// ReadAll drains the capture into a slice.
func (r *Reader) ReadAll() ([]Flow, error) {
	var out []Flow
	for {
		f, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
}

// CaptureN records exactly n flows from src into w.
func CaptureN(w io.Writer, src *Source, n int) error {
	cw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := cw.Write(src.Next()); err != nil {
			return err
		}
	}
	return nil
}
