package flow

import (
	"bytes"
	"io"
	"testing"
)

func TestCaptureRoundTrip(t *testing.T) {
	g := testGen(t)
	src, err := NewSource(g, DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := CaptureN(&buf, src, 50); err != nil {
		t.Fatalf("CaptureN: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	flows, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(flows) != 50 {
		t.Fatalf("replayed %d flows, want 50", len(flows))
	}
	// Replay must match a fresh identical source exactly.
	src2, err := NewSource(g, DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range flows {
		want := src2.Next()
		if f.ID != want.ID || f.TrueClass != want.TrueClass || f.SrcIP != want.SrcIP {
			t.Fatalf("flow %d metadata differs after replay", i)
		}
		for j := range f.Record.Numeric {
			if f.Record.Numeric[j] != want.Record.Numeric[j] {
				t.Fatalf("flow %d feature %d differs after replay", i, j)
			}
		}
		if !f.Timestamp.Equal(want.Timestamp) {
			t.Fatalf("flow %d timestamp differs after replay", i)
		}
	}
}

func TestCaptureNextEOF(t *testing.T) {
	g := testGen(t)
	src, err := NewSource(g, DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := CaptureN(&buf, src, 2); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF past end, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("not a capture")); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

func TestWriterCounts(t *testing.T) {
	g := testGen(t)
	src, err := NewSource(g, DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := w.Write(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Fatalf("Count = %d, want 7", w.Count())
	}
}
