package flow

import (
	"context"
	"testing"

	"repro/internal/synth"
)

func testGen(t *testing.T) *synth.Generator {
	t.Helper()
	cfg := synth.NSLKDDConfig()
	g, err := synth.New(cfg)
	if err != nil {
		t.Fatalf("synth.New: %v", err)
	}
	return g
}

func TestSourceDeterministic(t *testing.T) {
	g := testGen(t)
	cfg := DefaultSourceConfig()
	s1, err := NewSource(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSource(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a, b := s1.Next(), s2.Next()
		if a.ID != b.ID || a.TrueClass != b.TrueClass || a.SrcIP != b.SrcIP {
			t.Fatalf("flow %d diverged between identical sources", i)
		}
	}
}

func TestSourceFlowFieldsPlausible(t *testing.T) {
	g := testGen(t)
	s, err := NewSource(g, DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Next()
	for i := 0; i < 500; i++ {
		f := s.Next()
		if f.ID != prev.ID+1 {
			t.Fatalf("IDs not monotonic: %d after %d", f.ID, prev.ID)
		}
		if !f.Timestamp.After(prev.Timestamp) {
			t.Fatal("timestamps not increasing")
		}
		if f.SrcPort < 1024 || f.SrcPort >= 65024 {
			t.Fatalf("implausible source port %d", f.SrcPort)
		}
		if len(f.Record.Numeric) != g.Schema().NumNumeric() {
			t.Fatalf("record has %d numeric features", len(f.Record.Numeric))
		}
		if f.TrueClass != f.Record.Label {
			t.Fatalf("TrueClass %d != record label %d", f.TrueClass, f.Record.Label)
		}
		prev = f
	}
}

func TestSourceProducesEpisodes(t *testing.T) {
	g := testGen(t)
	cfg := DefaultSourceConfig()
	cfg.EpisodeEvery = 100
	cfg.EpisodeLen = 40
	cfg.EpisodeAttackRate = 0.9
	s, err := NewSource(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	attacks := 0
	const n = 5000
	// Count attack flows and look for at least one dense burst.
	window := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		f := s.Next()
		isAttack := f.TrueClass != 0
		if isAttack {
			attacks++
		}
		window = append(window, isAttack)
	}
	if attacks == 0 {
		t.Fatal("no attacks generated")
	}
	// Find a 30-flow window with >= 60% attacks: evidence of an episode.
	found := false
	for i := 0; i+30 <= len(window); i++ {
		c := 0
		for _, a := range window[i : i+30] {
			if a {
				c++
			}
		}
		if c >= 18 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no attack episode burst observed in 5000 flows")
	}
	// Overall rate should still be far from 100%.
	if frac := float64(attacks) / n; frac > 0.6 {
		t.Fatalf("attack fraction %v implausibly high", frac)
	}
}

// TestEpisodeStartTickHasEpisodeMix pins the episode-boundary fix: the
// tick that starts a campaign already samples with the episode mix. With
// EpisodeEvery=1 every non-episode tick starts a campaign immediately, so
// with a zero background rate and a certain episode rate every single flow
// must be an attack — under the old off-by-one, each campaign's first flow
// was drawn with the background AttackRate (0) and came out normal.
func TestEpisodeStartTickHasEpisodeMix(t *testing.T) {
	g := testGen(t)
	cfg := SourceConfig{
		AttackRate:        0,
		EpisodeEvery:      1,
		EpisodeLen:        5,
		EpisodeAttackRate: 1,
		Seed:              7,
	}
	s, err := NewSource(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if f := s.Next(); f.TrueClass == 0 {
			t.Fatalf("flow %d is normal: episode-start tick was sampled with the background mix", i)
		}
	}
}

// TestEpisodeRunLengthAccounting checks campaigns have exactly their drawn
// length: with EpisodeAttackRate=1 and zero background attacks, every
// attack run is one whole episode, and the mean run length over many
// episodes must match E[1 + Intn(2L)] = L + 0.5.
func TestEpisodeRunLengthAccounting(t *testing.T) {
	g := testGen(t)
	cfg := SourceConfig{
		AttackRate:        0,
		EpisodeEvery:      50,
		EpisodeLen:        20,
		EpisodeAttackRate: 1,
		Seed:              3,
	}
	s, err := NewSource(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runs := []int{}
	cur := 0
	for i := 0; i < 60000; i++ {
		if s.Next().TrueClass != 0 {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if len(runs) < 100 {
		t.Fatalf("only %d complete episodes observed", len(runs))
	}
	total := 0
	for _, r := range runs {
		total += r
	}
	mean := float64(total) / float64(len(runs))
	want := float64(cfg.EpisodeLen) + 0.5
	if mean < want-1.5 || mean > want+1.5 {
		t.Fatalf("mean episode length %.2f, want %.1f±1.5 (off-by-one in episode accounting?)", mean, want)
	}
}

func TestSetGeneratorSwapsDistribution(t *testing.T) {
	cfg := synth.NSLKDDConfig()
	g1, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.ProfileSeed = cfg.ProfileSeed + 999
	g2, err := synth.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSource(g1, DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Next()
	if err := s.SetGenerator(g2); err != nil {
		t.Fatal(err)
	}
	f := s.Next()
	if f.ID != prev.ID+1 {
		t.Fatalf("IDs broke across swap: %d after %d", f.ID, prev.ID)
	}
	if len(f.Record.Numeric) != g2.Schema().NumNumeric() {
		t.Fatal("post-swap record does not match the new generator's schema")
	}

	// Class-count mismatch is rejected.
	cfg3 := cfg
	cfg3.Classes = cfg.Classes[:2]
	g3, err := synth.New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetGenerator(g3); err == nil {
		t.Fatal("class-count-changing generator swap was accepted")
	}

	// Feature-shape mismatch is rejected: downstream encoders were fitted
	// on the original shape.
	cfg4 := cfg
	cfg4.NumericName = cfg.NumericName[:5]
	g4, err := synth.New(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetGenerator(g4); err == nil {
		t.Fatal("shape-changing generator swap was accepted")
	}
}

func TestSourceRunStreamsAndStops(t *testing.T) {
	g := testGen(t)
	s, err := NewSource(g, DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := make(chan Flow, 1)
	go s.Run(context.Background(), out, 50)
	count := 0
	for range out {
		count++
	}
	if count != 50 {
		t.Fatalf("received %d flows, want 50", count)
	}
}

func TestSourceRunHonoursCancel(t *testing.T) {
	g := testGen(t)
	s, err := NewSource(g, DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan Flow) // unbuffered: Run blocks on send
	done := make(chan struct{})
	go func() {
		s.Run(ctx, out, 0) // unbounded
		close(done)
	}()
	<-out // take one flow
	cancel()
	<-done // Run must return promptly after cancellation
}

func TestNewSourceRejectsTooFewClasses(t *testing.T) {
	cfg := synth.NSLKDDConfig()
	cfg.Classes = cfg.Classes[:2] // normal + 1 attack is fine...
	g, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSource(g, DefaultSourceConfig()); err != nil {
		t.Fatalf("2-class source should be accepted: %v", err)
	}
}
