// Package flow is the network-traffic substrate for the live NIDS pipeline
// (paper Fig. 1): flow records with five-tuple metadata, and a simulated
// traffic source that replays class-conditional synthetic traffic as a
// stream of flows — normal background traffic punctuated by attack
// episodes, the workload a deployed NIDS monitors.
package flow

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/data"
	"repro/internal/synth"
)

// Flow is one observed network flow: metadata plus the feature record the
// detector consumes. TrueClass carries ground truth for evaluation; a
// production deployment would not have it.
type Flow struct {
	ID        uint64
	Timestamp time.Time
	SrcIP     string
	DstIP     string
	SrcPort   int
	DstPort   int
	Record    data.Record
	TrueClass int
}

// SourceConfig controls the simulated traffic mix.
type SourceConfig struct {
	// AttackRate is the steady-state fraction of attack flows outside
	// episodes (background noise level).
	AttackRate float64
	// EpisodeEvery is the mean number of flows between attack episodes.
	EpisodeEvery int
	// EpisodeLen is the mean episode length in flows; during an episode a
	// single attack class dominates (a campaign).
	EpisodeLen int
	// EpisodeAttackRate is the attack fraction inside an episode.
	EpisodeAttackRate float64
	// Seed drives all sampling.
	Seed int64
}

// DefaultSourceConfig is a plausible mix: 2% background attacks with
// concentrated campaigns every ~500 flows.
func DefaultSourceConfig() SourceConfig {
	return SourceConfig{
		AttackRate:        0.02,
		EpisodeEvery:      500,
		EpisodeLen:        60,
		EpisodeAttackRate: 0.7,
		Seed:              1,
	}
}

// Source generates a deterministic flow stream from a synth generator.
type Source struct {
	gen *synth.Generator
	cfg SourceConfig
	rng *rand.Rand

	nextID       uint64
	inEpisode    int // remaining flows of the current episode
	episodeClass int
	sinceEpisode int
	attackSet    []int // class indices that are attacks (≠ 0)
	now          time.Time
}

// NewSource constructs a traffic source over the generator's class model.
func NewSource(gen *synth.Generator, cfg SourceConfig) (*Source, error) {
	k := gen.Schema().NumClasses()
	if k < 2 {
		return nil, fmt.Errorf("flow: generator has %d classes, need >= 2", k)
	}
	attacks := make([]int, 0, k-1)
	for c := 1; c < k; c++ {
		attacks = append(attacks, c)
	}
	if cfg.EpisodeEvery <= 0 {
		cfg.EpisodeEvery = 500
	}
	if cfg.EpisodeLen <= 0 {
		cfg.EpisodeLen = 50
	}
	return &Source{
		gen: gen, cfg: cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		attackSet: attacks,
		now:       time.Unix(1700000000, 0), // fixed epoch: deterministic streams
	}, nil
}

// Next produces the next flow in the stream.
func (s *Source) Next() Flow {
	class := 0
	if s.inEpisode == 0 {
		s.sinceEpisode++
		if s.rng.Float64() < 1.0/float64(s.cfg.EpisodeEvery) {
			// Start a campaign with a random attack class. The starting
			// tick is itself part of the episode: the flow emitted below
			// is drawn with the episode mix and consumes one episode slot,
			// so campaigns have exactly their drawn length.
			s.episodeClass = s.attackSet[s.rng.Intn(len(s.attackSet))]
			s.inEpisode = 1 + s.rng.Intn(2*s.cfg.EpisodeLen)
			s.sinceEpisode = 0
		}
	}
	if s.inEpisode > 0 {
		s.inEpisode--
		if s.rng.Float64() < s.cfg.EpisodeAttackRate {
			class = s.episodeClass
		}
	} else if s.rng.Float64() < s.cfg.AttackRate {
		class = s.attackSet[s.rng.Intn(len(s.attackSet))]
	}
	rec := s.gen.SampleClass(s.rng, class)
	s.nextID++
	s.now = s.now.Add(time.Duration(1+s.rng.Intn(20)) * time.Millisecond)
	f := Flow{
		ID:        s.nextID,
		Timestamp: s.now,
		SrcIP:     s.randIP(class != 0),
		DstIP:     s.randIP(false),
		SrcPort:   1024 + s.rng.Intn(64000),
		DstPort:   wellKnownPort(s.rng),
		Record:    rec,
		TrueClass: class,
	}
	return f
}

// SetGenerator swaps the class-conditional generator driving the stream —
// an injected distribution shift (new attack variants, evolved background
// traffic) while IDs, timestamps, and episode state continue seamlessly.
// The replacement must have the same class count (campaign classes stay
// valid) and the same feature shape (downstream encoders were fitted on
// it; a shape change would mis-encode or panic far from the swap site).
// Not safe to call concurrently with Next: callers driving Next from
// their own producer loop may swap between calls.
func (s *Source) SetGenerator(gen *synth.Generator) error {
	old, next := s.gen.Schema(), gen.Schema()
	if got, want := next.NumClasses(), old.NumClasses(); got != want {
		return fmt.Errorf("flow: replacement generator has %d classes, stream has %d", got, want)
	}
	if next.NumNumeric() != old.NumNumeric() || len(next.Categorical) != len(old.Categorical) {
		return fmt.Errorf("flow: replacement generator has %d numeric + %d categorical features, stream has %d + %d",
			next.NumNumeric(), len(next.Categorical), old.NumNumeric(), len(old.Categorical))
	}
	// Vocabularies matter too: encoders fitted on the old schema map
	// categorical values positionally, and unseen values encode as
	// all-zeros — a changed vocabulary would mis-encode silently.
	for k, oc := range old.Categorical {
		nc := next.Categorical[k]
		if nc.Name != oc.Name || len(nc.Values) != len(oc.Values) {
			return fmt.Errorf("flow: replacement generator changes categorical feature %d (%s/%d values vs %s/%d)",
				k, nc.Name, len(nc.Values), oc.Name, len(oc.Values))
		}
		for i, v := range oc.Values {
			if nc.Values[i] != v {
				return fmt.Errorf("flow: replacement generator changes vocabulary of %s (value %d: %q vs %q)",
					oc.Name, i, nc.Values[i], v)
			}
		}
	}
	s.gen = gen
	return nil
}

// randIP fabricates an address; attack sources skew to "outside" ranges.
func (s *Source) randIP(outside bool) string {
	if outside {
		return fmt.Sprintf("203.0.%d.%d", s.rng.Intn(256), 1+s.rng.Intn(254))
	}
	return fmt.Sprintf("10.%d.%d.%d", s.rng.Intn(256), s.rng.Intn(256), 1+s.rng.Intn(254))
}

func wellKnownPort(rng *rand.Rand) int {
	ports := []int{80, 443, 22, 53, 25, 3306, 8080, 21}
	return ports[rng.Intn(len(ports))]
}

// Run streams flows into out until ctx is cancelled or n flows have been
// produced (n <= 0 streams forever). It closes out on return.
func (s *Source) Run(ctx context.Context, out chan<- Flow, n int) {
	defer close(out)
	for i := 0; n <= 0 || i < n; i++ {
		f := s.Next()
		select {
		case out <- f:
		case <-ctx.Done():
			return
		}
	}
}
