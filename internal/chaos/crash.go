package chaos

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Crash-injection primitives: faults that model a process death or a
// write cut short by one. The durability layer's recovery tests drive
// these — truncating a journal tail reproduces a mid-append crash
// byte-for-byte, and Proc lets an e2e kill a real serving process with
// SIGKILL (no handlers, no drains, no goodbyes) and assert what the
// restart recovers.

// TruncateTail cuts the last n bytes off the file at path, simulating a
// torn write: a record that was partially flushed when the process (or
// the machine) died. n larger than the file truncates to empty.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// CorruptFileAt flips one byte at the given offset, a targeted variant
// of CorruptFile for tests that must corrupt a specific record.
func CorruptFileAt(path string, offset int64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if offset < 0 || offset >= int64(len(b)) {
		return fmt.Errorf("chaos: offset %d out of range for %s (%d bytes)", offset, path, len(b))
	}
	b[offset] ^= 0xFF
	return os.WriteFile(path, b, 0o644)
}

// Proc is a child process under chaos control: started normally, killed
// abruptly. The kill-9 harness for crash-recovery e2e tests — SIGKILL
// gives the victim no chance to flush, drain, or checkpoint, which is
// exactly the contract a write-ahead design must survive.
type Proc struct {
	Cmd *exec.Cmd

	// mu serializes reaping: exec.Cmd.Wait may be called once, but
	// tests reach it from Kill9, Wait, and WaitExit's goroutine.
	mu      sync.Mutex
	waited  bool
	waitErr error
}

// StartProc launches name with args, inheriting stdout/stderr, and
// returns the handle the test kills or waits through.
func StartProc(name string, args ...string) (*Proc, error) {
	cmd := exec.Command(name, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: start %s: %w", name, err)
	}
	return &Proc{Cmd: cmd}, nil
}

// Kill9 delivers SIGKILL and reaps the child. The process gets no
// signal handler, no deferred function, no final fsync — anything it
// wanted durable had better already be on disk.
func (p *Proc) Kill9() error {
	if err := p.Cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("chaos: kill -9: %w", err)
	}
	p.Wait()
	return nil
}

// Signal forwards sig to the child (e.g. SIGTERM for the graceful half
// of a crash-vs-drain comparison).
func (p *Proc) Signal(sig os.Signal) error {
	return p.Cmd.Process.Signal(sig)
}

// Wait reaps the child if nothing has already, returning the exit
// error (nil on clean exit). Idempotent and safe to race.
func (p *Proc) Wait() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.waited {
		p.waitErr = p.Cmd.Wait()
		p.waited = true
	}
	return p.waitErr
}

// Alive reports whether the child is still running (signal 0 probe).
func (p *Proc) Alive() bool {
	p.mu.Lock()
	waited := p.waited
	p.mu.Unlock()
	if waited {
		return false
	}
	return p.Cmd.Process.Signal(syscall.Signal(0)) == nil
}

// WaitExit polls until the child has exited or timeout elapses,
// reporting whether it exited. For children expected to die on their
// own (e.g. after their server socket vanishes).
func (p *Proc) WaitExit(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		p.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}
