package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestTruncateTail pins the torn-write fault: exactly n bytes come off
// the end, over-truncation clamps to empty, and a missing file errors.
func TestTruncateTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.jsonl")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateTail(path, 4); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("012345")) {
		t.Fatalf("after TruncateTail(4): %q, want %q", got, "012345")
	}
	if err := TruncateTail(path, 100); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); len(got) != 0 {
		t.Fatalf("over-truncation left %d bytes, want 0", len(got))
	}
	if err := TruncateTail(filepath.Join(dir, "missing"), 1); err == nil {
		t.Fatal("truncating a missing file did not error")
	}
}

// TestCorruptFileAt checks the flip lands on the requested byte and
// out-of-range offsets are rejected.
func TestCorruptFileAt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.bin")
	orig := []byte("abcdef")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFileAt(path, 2); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	for i := range got {
		if (got[i] != orig[i]) != (i == 2) {
			t.Fatalf("byte %d: got %#x, orig %#x", i, got[i], orig[i])
		}
	}
	if err := CorruptFileAt(path, int64(len(orig))); err == nil {
		t.Fatal("out-of-range offset did not error")
	}
	if err := CorruptFileAt(path, -1); err == nil {
		t.Fatal("negative offset did not error")
	}
}

// TestProcKill9 runs a real child and kills it without ceremony: Alive
// flips, Wait reports the signal death, and repeated Wait is stable.
func TestProcKill9(t *testing.T) {
	p, err := StartProc("sleep", "30")
	if err != nil {
		t.Skipf("cannot start sleep: %v", err)
	}
	if !p.Alive() {
		t.Fatal("child not alive after start")
	}
	if err := p.Kill9(); err != nil {
		t.Fatalf("Kill9: %v", err)
	}
	if p.Alive() {
		t.Fatal("child still alive after kill -9")
	}
	if err := p.Wait(); err == nil {
		t.Fatal("Wait returned nil for a SIGKILLed child")
	}
	if err1, err2 := p.Wait(), p.Wait(); err1 != err2 {
		t.Fatalf("repeated Wait disagrees: %v vs %v", err1, err2)
	}
}

// TestProcWaitExit covers the clean-exit path and the timeout path.
func TestProcWaitExit(t *testing.T) {
	p, err := StartProc("true")
	if err != nil {
		t.Skipf("cannot start true: %v", err)
	}
	if !p.WaitExit(5 * time.Second) {
		t.Fatal("child did not exit within 5s")
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("clean exit reported error: %v", err)
	}

	slow, err := StartProc("sleep", "30")
	if err != nil {
		t.Skipf("cannot start sleep: %v", err)
	}
	if slow.WaitExit(50 * time.Millisecond) {
		t.Fatal("WaitExit returned before the child could have exited")
	}
	if err := slow.Kill9(); err != nil {
		t.Fatalf("Kill9 cleanup: %v", err)
	}
}
