package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestInjectorDelayPrecedence pins the delay resolution order: nil and
// zero-value injectors impose nothing, a global delay applies to every
// replica, a per-replica override wins over the global, and clearing an
// override falls back to the global.
func TestInjectorDelayPrecedence(t *testing.T) {
	var nilIn *Injector
	if d := nilIn.DelayFor(0); d != 0 {
		t.Fatalf("nil injector delays %v", d)
	}
	nilIn.SetScoreDelay(time.Second) // must not panic
	nilIn.SetReplicaDelay(1, time.Second)

	in := &Injector{}
	if d := in.DelayFor(3); d != 0 {
		t.Fatalf("zero-value injector delays %v", d)
	}
	in.SetScoreDelay(10 * time.Millisecond)
	if d := in.DelayFor(0); d != 10*time.Millisecond {
		t.Fatalf("global delay: got %v, want 10ms", d)
	}
	in.SetReplicaDelay(0, 50*time.Millisecond)
	if d := in.DelayFor(0); d != 50*time.Millisecond {
		t.Fatalf("per-replica override: got %v, want 50ms", d)
	}
	if d := in.DelayFor(1); d != 10*time.Millisecond {
		t.Fatalf("uninvolved replica: got %v, want the global 10ms", d)
	}
	in.SetReplicaDelay(0, 0) // clear the override
	if d := in.DelayFor(0); d != 10*time.Millisecond {
		t.Fatalf("cleared override: got %v, want the global 10ms", d)
	}
	in.SetScoreDelay(0)
	if d := in.DelayFor(0); d != 0 {
		t.Fatalf("cleared global: got %v, want 0", d)
	}
}

// TestFailPointScriptedAndRate pins Check's decision order: scripted
// failures are consumed first (exactly n of them), the injected error is
// overridable, rate 1 fails every call, rate 0 never does, and the
// counters account calls and trips exactly.
func TestFailPointScriptedAndRate(t *testing.T) {
	var nilFP *FailPoint
	if err := nilFP.Check(); err != nil {
		t.Fatalf("nil fail point failed: %v", err)
	}

	f := &FailPoint{}
	for i := 0; i < 3; i++ {
		if err := f.Check(); err != nil {
			t.Fatalf("zero-value fail point failed call %d: %v", i, err)
		}
	}

	boom := errors.New("boom")
	f.SetErr(boom)
	f.FailNext(2)
	for i := 0; i < 2; i++ {
		if err := f.Check(); !errors.Is(err, boom) {
			t.Fatalf("scripted call %d: got %v, want boom", i, err)
		}
	}
	if err := f.Check(); err != nil {
		t.Fatalf("script exhausted but call still failed: %v", err)
	}
	if got := f.Trips(); got != 2 {
		t.Fatalf("Trips() = %d, want 2", got)
	}
	if got := f.Calls(); got != 6 {
		t.Fatalf("Calls() = %d, want 6", got)
	}

	f.SetRate(1)
	for i := 0; i < 3; i++ {
		if err := f.Check(); err == nil {
			t.Fatalf("rate-1 call %d did not fail", i)
		}
	}
	f.SetRate(0)
	if err := f.Check(); err != nil {
		t.Fatalf("rate-0 call failed: %v", err)
	}
}

// TestFailPointDefaultError checks the generic fault is returned when no
// error was scripted.
func TestFailPointDefaultError(t *testing.T) {
	f := &FailPoint{}
	f.FailNext(1)
	if err := f.Check(); err == nil {
		t.Fatal("scripted failure returned nil")
	}
}

// TestTransportInjectsErrors proves a failing Transport never lets the
// request reach the server — the shape of a network partition — and that
// releasing the fault restores real round trips.
func TestTransportInjectsErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	fp := &FailPoint{}
	client := &http.Client{Transport: &Transport{Fail: fp}}

	fp.FailNext(2)
	for i := 0; i < 2; i++ {
		if _, err := client.Get(ts.URL); err == nil {
			t.Fatalf("injected call %d succeeded", i)
		}
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("server saw %d requests through a failing transport", n)
	}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("post-fault request failed: %v", err)
	}
	resp.Body.Close()
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests after the fault cleared, want 1", n)
	}
}

// TestTransportLatencyHonorsContext checks injected latency is bounded by
// the request's own deadline: a cancelled request returns promptly instead
// of sleeping out the full injected delay.
func TestTransportLatencyHonorsContext(t *testing.T) {
	tr := &Transport{}
	tr.SetLatency(10 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://127.0.0.1:0/", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = tr.RoundTrip(req)
	if err == nil {
		t.Fatal("cancelled round trip succeeded")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("round trip slept %v past its 20ms deadline", waited)
	}
}

// TestCorruptFile checks exactly one byte changes (so a checksum must
// catch it) and that empty or missing files are reported, not "corrupted"
// silently.
func TestCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	orig := []byte("pelican artifact payload")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("file unchanged after CorruptFile")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if len(got) != len(orig) || diff != 1 {
		t.Fatalf("CorruptFile changed %d bytes (len %d -> %d), want exactly 1", diff, len(orig), len(got))
	}

	empty := filepath.Join(dir, "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(empty); err == nil {
		t.Fatal("corrupting an empty file did not error")
	}
	if err := CorruptFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("corrupting a missing file did not error")
	}
}
