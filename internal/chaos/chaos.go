// Package chaos is the fault-injection toolkit for the serving plane.
// Every knob defaults to "no fault", is safe for concurrent use, and can
// be retuned while the system under test is running — a chaos test
// tightens and releases faults mid-flight to prove the plane degrades and
// recovers without restarts.
//
// The package deliberately knows nothing about serving: it exposes
// primitive fault sources (added latency, scripted errors, corrupted
// bytes) that the serve, adapt, and cmd layers thread into their own
// seams — a scorer worker sleeps Injector.DelayFor before each batch, a
// client wraps its transport in Transport, a publisher consults a
// FailPoint before shipping an artifact.
package chaos

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Injector imposes server-side scoring faults. The zero value injects
// nothing; a nil *Injector is always safe to query. Scorer workers consult
// DelayFor once per flushed batch, so a delay models a slow replica (GC
// pause, noisy neighbor, cold cache) rather than slow records.
type Injector struct {
	delayNanos atomic.Int64 // added to every replica's batch service time
	mu         sync.Mutex
	perReplica map[int]time.Duration // overrides for individual replicas
}

// SetScoreDelay imposes d of extra latency on every scoring batch of every
// replica. Zero removes the fault.
func (in *Injector) SetScoreDelay(d time.Duration) {
	if in == nil {
		return
	}
	in.delayNanos.Store(int64(d))
}

// SetReplicaDelay imposes d of extra latency on one replica's batches
// (replicas are indexed 0..Replicas-1 within every slot), overriding the
// global delay for that replica. Zero removes the override.
func (in *Injector) SetReplicaDelay(replica int, d time.Duration) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.perReplica == nil {
		in.perReplica = make(map[int]time.Duration)
	}
	if d == 0 {
		delete(in.perReplica, replica)
		return
	}
	in.perReplica[replica] = d
}

// DelayFor reports the injected latency for one replica's next batch: the
// per-replica override when set, else the global delay. Nil receivers and
// the zero value report zero.
func (in *Injector) DelayFor(replica int) time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	d, ok := in.perReplica[replica]
	in.mu.Unlock()
	if ok {
		return d
	}
	return time.Duration(in.delayNanos.Load())
}

// FailPoint is a scripted error source: it can fail the next N calls, fail
// a fraction of calls, or both (scripted failures are consumed first). The
// zero value never fails. Check is the single decision point callers wire
// into their seam.
type FailPoint struct {
	mu        sync.Mutex
	remaining int64   // fail this many more calls unconditionally
	rate      float64 // then fail this fraction of calls
	rng       *rand.Rand
	err       error
	trips     atomic.Int64
	calls     atomic.Int64
}

// FailNext scripts the next n calls to Check to fail.
func (f *FailPoint) FailNext(n int) {
	f.mu.Lock()
	f.remaining = int64(n)
	f.mu.Unlock()
}

// SetRate makes Check fail with probability p (after any scripted
// failures are consumed). Deterministic per-FailPoint seed, so tests are
// reproducible.
func (f *FailPoint) SetRate(p float64) {
	f.mu.Lock()
	f.rate = p
	f.mu.Unlock()
}

// SetErr overrides the error Check returns (default: a generic injected
// fault).
func (f *FailPoint) SetErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

// Check returns the injected error when this call is scripted or sampled
// to fail, nil otherwise. Nil receivers never fail.
func (f *FailPoint) Check() error {
	if f == nil {
		return nil
	}
	f.calls.Add(1)
	f.mu.Lock()
	fail := false
	if f.remaining > 0 {
		f.remaining--
		fail = true
	} else if f.rate > 0 {
		if f.rng == nil {
			f.rng = rand.New(rand.NewSource(1))
		}
		fail = f.rng.Float64() < f.rate
	}
	err := f.err
	f.mu.Unlock()
	if !fail {
		return nil
	}
	f.trips.Add(1)
	if err == nil {
		err = fmt.Errorf("chaos: injected fault")
	}
	return err
}

// Trips reports how many calls Check has failed.
func (f *FailPoint) Trips() int64 { return f.trips.Load() }

// Calls reports how many times Check has been consulted.
func (f *FailPoint) Calls() int64 { return f.calls.Load() }

// Transport is an http.RoundTripper that injects client-visible faults in
// front of a real transport: per-request added latency and scripted or
// sampled request errors (the request never reaches the server — the
// shape of a network partition or a dead peer). Wire it into an
// http.Client.Transport (serve.Client accepts any *http.Client).
type Transport struct {
	// Base performs real round trips; nil uses http.DefaultTransport.
	Base http.RoundTripper
	// Fail, when non-nil, decides which requests error out.
	Fail *FailPoint

	latencyNanos atomic.Int64
}

// SetLatency imposes d of extra latency on every round trip.
func (t *Transport) SetLatency(d time.Duration) { t.latencyNanos.Store(int64(d)) }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.Fail.Check(); err != nil {
		return nil, err
	}
	if d := time.Duration(t.latencyNanos.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// CorruptFile flips one byte in the middle of the file at path — the
// minimal on-disk artifact corruption. Loaders with integrity checks
// (the .plcn CRC) must reject the result; chaos tests use it to prove a
// corrupt artifact can never reach a serving slot.
func CorruptFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("chaos: %s is empty, nothing to corrupt", path)
	}
	b[len(b)/2] ^= 0xFF
	return os.WriteFile(path, b, 0o644)
}
