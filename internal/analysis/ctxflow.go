package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow returns the analyzer enforcing context discipline on the request
// path:
//
//   - no context.Background()/context.TODO() — the request path receives
//     its context from the transport; minting a fresh root silently
//     detaches work from the caller's deadline and cancellation;
//   - no dropped ctx parameters — a function that accepts a
//     context.Context must actually use it (plumb it onward, check Done,
//     or derive from it); accepting and ignoring one advertises deadline
//     support it does not deliver;
//   - goroutine-leak heuristic — every `go` statement must show some
//     cancellation or completion discipline: the spawned work references
//     a context, a WaitGroup, or a channel (or is handed one as an
//     argument). A goroutine with none of those can outlive the request
//     and the process's shutdown sequence unobserved.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name:  "ctxflow",
		Doc:   "request-path code must thread context and give goroutines cancellation/completion discipline",
		Scope: []string{"internal/serve", "internal/nids", "internal/wire"},
		Run:   runCtxFlow,
	}
}

func runCtxFlow(p *Pass) {
	info := p.Pkg.Info
	// Index this package's function bodies so `go f()` / `go s.m()` can be
	// checked through the named callee.
	bodies := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Pkg.Syntax {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := info.Defs[fd.Name]; obj != nil {
					bodies[obj] = fd
				}
			}
		}
	}
	for _, f := range p.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFreshContext(p, fd)
			checkDroppedCtx(p, fd)
			checkGoroutines(p, fd, bodies)
		}
	}
}

// checkFreshContext flags context.Background()/TODO() calls.
func checkFreshContext(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range []string{"Background", "TODO"} {
			if isPkgCall(p.Pkg.Info, call, "context", name) {
				p.Reportf(call.Pos(), "context.%s() mints a fresh root on the request path; thread the caller's ctx instead", name)
			}
		}
		return true
	})
}

// checkDroppedCtx flags context.Context parameters the function never uses.
func checkDroppedCtx(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	if fd.Type.Params == nil {
		return
	}
	var ctxParams []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				ctxParams = append(ctxParams, obj)
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	used := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	for _, obj := range ctxParams {
		if !used[obj] {
			p.Reportf(obj.Pos(), "ctx parameter is never used; thread it onward or drop it from the signature")
		}
	}
}

// checkGoroutines applies the leak heuristic to each go statement.
func checkGoroutines(p *Pass, fd *ast.FuncDecl, bodies map[types.Object]*ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		// Arguments handed to the goroutine count as discipline when they
		// carry a context or channel.
		for _, arg := range gs.Call.Args {
			if tv, ok := info.Types[arg]; ok && (isContextType(tv.Type) || isChanType(tv.Type)) {
				return true
			}
		}
		var body *ast.BlockStmt
		switch fun := unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			body = fun.Body
		default:
			obj := calleeObject(info, gs.Call)
			if decl, ok := bodies[obj]; ok {
				body = decl.Body
			} else {
				return true // cross-package callee: give it the benefit of the doubt
			}
		}
		if !hasCompletionDiscipline(info, body) {
			p.Reportf(gs.Pos(), "goroutine has no cancellation or completion discipline (no ctx, WaitGroup, or channel operation); it can leak past shutdown")
		}
		return true
	})
}

// hasCompletionDiscipline scans a goroutine body for any sign the
// goroutine can be cancelled, joined, or observed.
func hasCompletionDiscipline(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				found = true
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "close") {
				found = true
			}
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && isSyncType(tv.Type, "WaitGroup") {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}
