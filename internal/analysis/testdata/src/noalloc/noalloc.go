// Package noalloc exercises the //pelican:noalloc contract: one clean
// function per permitted idiom, one violation per forbidden construct.
package noalloc

import "fmt"

type scratch struct {
	buf []float64
}

type val struct{ n int }

func (v val) Sum() int { return v.n }

type summer interface{ Sum() int }

func takeIface(s summer) int { return s.Sum() }

// cleanGuardedGrow allocates only under a capacity guard.
//
//pelican:noalloc
func cleanGuardedGrow(s *scratch, n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	s.buf = s.buf[:n]
	return s.buf
}

// cleanRecycledAppend appends into storage recycled with x = x[:0].
//
//pelican:noalloc
func cleanRecycledAppend(s *scratch, vs []float64) {
	s.buf = s.buf[:0]
	for _, v := range vs {
		s.buf = append(s.buf, v)
	}
}

// cleanTruncateAppend uses the one-step append(x[:0], ...) recycle.
//
//pelican:noalloc
func cleanTruncateAppend(s *scratch, a, b float64) {
	s.buf = append(s.buf[:0], a, b)
}

// cleanAppendHelper appends into a caller-owned slice parameter.
//
//pelican:noalloc
func cleanAppendHelper(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// cleanPanicPath may allocate freely on the crash path.
//
//pelican:noalloc
func cleanPanicPath(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
}

// cleanPoolMiss allocates only behind a nil check.
//
//pelican:noalloc
func cleanPoolMiss(s *scratch) *scratch {
	if s == nil {
		s = &scratch{}
	}
	return s
}

// cleanWorkerPrologue allocates before its service loop only.
//
//pelican:noalloc
func cleanWorkerPrologue(ch chan int) int {
	tmp := make([]int, 8)
	total := 0
	for v := range ch {
		tmp[0] = v
		total += tmp[0]
	}
	return total
}

// cleanPointerIface passes a pointer to an interface parameter (no box).
//
//pelican:noalloc
func cleanPointerIface(v *val) int {
	return takeIface(v)
}

// unannotated is not subject to the contract.
func unannotated() []int {
	return []int{1, 2, 3}
}

//pelican:noalloc
func badMake(n int) []int {
	return make([]int, n) // want "unguarded make"
}

//pelican:noalloc
func badNew() *scratch {
	return new(scratch) // want "unguarded new"
}

//pelican:noalloc
func badAppend(s *scratch, v float64) {
	s.buf = append(s.buf, v) // want "append may grow its backing array"
}

//pelican:noalloc
func badSliceLit() []int {
	return []int{1, 2, 3} // want "slice literal allocates"
}

//pelican:noalloc
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want "map literal allocates"
}

//pelican:noalloc
func badAddrComposite() *scratch {
	return &scratch{} // want "escapes to the heap"
}

//pelican:noalloc
func badClosure(n int) func() int {
	return func() int { return n } // want "closure allocates"
}

//pelican:noalloc
func badGo(f func()) {
	go f() // want "go statement launches a goroutine"
}

//pelican:noalloc
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//pelican:noalloc
func badFmt(v int) {
	fmt.Println(v) // want "fmt.Println allocates"
}

//pelican:noalloc
func badStringConv(bs []byte) string {
	return string(bs) // want "conversion copies and allocates"
}

//pelican:noalloc
func badBoxing(v val) int {
	return takeIface(v) // want "boxes the value"
}

//pelican:noalloc
func badMethodValue(v *val) func() int {
	return v.Sum // want "method value Sum allocates"
}
