// Package metricreg exercises the pelican_* metric registry rules. The
// exposition primitives are modeled locally — the analyzer recognizes
// WritePromHeader, writeSample, and (*T).WriteProm by shape and name, so
// this package mirrors internal/obs with stdlib imports only.
package metricreg

import (
	"fmt"
	"io"
)

// WritePromHeader mirrors obs.WritePromHeader (a recognized primitive).
func WritePromHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeSample mirrors obs.writeSample (a recognized primitive).
func writeSample(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "%s %g\n", name, v)
}

// hist mirrors obs.Histogram; WriteProm emits the derived series.
type hist struct{ count uint64 }

// WriteProm mirrors obs.Histogram.WriteProm (a recognized primitive).
func (h *hist) WriteProm(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count)
}

var latency hist

func emitAll(w io.Writer) {
	counter := func(name, help string, v int64) {
		WritePromHeader(w, name, "counter", help)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}

	// Clean counter through the wrapper: declared once, emitted once.
	counter("pelican_test_requests_total", "Requests handled.", 1)

	// Clean gauge: explicit declaration plus one sample.
	WritePromHeader(w, "pelican_test_queue_depth", "gauge", "Queue depth.")
	writeSample(w, "pelican_test_queue_depth", 2)

	WritePromHeader(w, "pelican_test_queue_depth", "gauge", "Again.") // want "declared more than once"

	counter("pelican_test_hits", "Cache hits.", 3) // want "must end in _total"

	fmt.Fprintf(w, "pelican_test_orphan 1\n") // want "emitted but never declared"

	WritePromHeader(w, "pelican_test_ghost_total", "counter", "Never emitted.") // want "declared but never emitted"

	WritePromHeader(w, "pelican_test_errors_total", "counter", "Errors by code.")
	fmt.Fprintf(w, "pelican_test_errors_total{code=%q} %d\n", "4xx", 1)
	fmt.Fprintf(w, "pelican_test_errors_total{kind=%q} %d\n", "5xx", 1) // want "label set"

	WritePromHeader(w, "pelican_Bad_Name", "gauge", "Badly named.") // want "naming conventions"
	writeSample(w, "pelican_Bad_Name", 1)

	// Clean histogram; the scrape table below references a derived series.
	WritePromHeader(w, "pelican_test_latency_seconds", "histogram", "Latency.")
	latency.WriteProm(w, "pelican_test_latency_seconds", "")
}

// scrapeTable models a dashboard's family list: every entry must resolve
// to a declared family or a histogram's derived series.
var scrapeTable = []string{
	"pelican_test_requests_total",
	"pelican_test_latency_seconds_count",
	"pelican_test_missing_total", // want "reference to undeclared metric"
}
