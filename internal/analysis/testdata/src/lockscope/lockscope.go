// Package lockscope exercises the serving-plane locking rule: a mutex
// covers in-memory state transitions only, never a blocking operation.
package lockscope

import (
	"net"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
	n  int
}

func badSendUnderLock(g *guarded) {
	g.mu.Lock()
	g.ch <- 1 // want "channel send while holding exclusive lock g.mu"
	g.mu.Unlock()
}

func badRecvUnderLock(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive while holding exclusive lock g.mu"
}

func badRangeUnderLock(g *guarded) {
	g.mu.Lock()
	for v := range g.ch { // want "range over channel while holding exclusive lock g.mu"
		g.n += v
	}
	g.mu.Unlock()
}

func badSleepUnderLock(g *guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding lock g.mu"
	g.mu.Unlock()
}

func badSleepUnderReadLock(g *guarded) {
	g.rw.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding lock g.rw"
	g.rw.RUnlock()
}

func badWaitUnderLock(g *guarded) {
	g.mu.Lock()
	g.wg.Wait() // want "WaitGroup.Wait while holding lock g.mu"
	g.mu.Unlock()
}

func badNetUnderLock(g *guarded, addr string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, _ = net.Dial("tcp", addr) // want "network call net.Dial while holding lock g.mu"
}

func badSelectUnderLock(g *guarded) {
	g.mu.Lock()
	select { // want "select without default while holding exclusive lock g.mu"
	case v := <-g.ch:
		g.n = v
	}
	g.mu.Unlock()
}

// cleanSendUnderReadLock is the batcher's close-safe enqueue pattern:
// channel ops under a read lock are explicitly permitted.
func cleanSendUnderReadLock(g *guarded) {
	g.rw.RLock()
	g.ch <- 1
	g.rw.RUnlock()
}

// cleanEarlyUnlock releases on the fast path before blocking.
func cleanEarlyUnlock(g *guarded) int {
	g.mu.Lock()
	if g.n == 0 {
		g.mu.Unlock()
		return <-g.ch
	}
	g.n++
	g.mu.Unlock()
	return g.n
}

// cleanAfterUnlock blocks only once the lock is released.
func cleanAfterUnlock(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.ch <- g.n
}

// cleanNonBlockingSelect cannot stall: it has a default clause.
func cleanNonBlockingSelect(g *guarded) {
	g.mu.Lock()
	select {
	case g.ch <- 1:
	default:
	}
	g.mu.Unlock()
}
