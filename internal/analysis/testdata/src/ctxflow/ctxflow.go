// Package ctxflow exercises the request-path context discipline rules.
package ctxflow

import (
	"context"
	"sync"
)

func badFreshRoot() context.Context {
	return context.Background() // want "context.Background"
}

func badTodoRoot() context.Context {
	return context.TODO() // want "context.TODO"
}

func badDroppedCtx(ctx context.Context, n int) int { // want "ctx parameter is never used"
	return n * 2
}

func goodThreadedCtx(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

func badGoroutine() {
	go func() { // want "no cancellation or completion discipline"
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

func goodGoroutineWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func goodGoroutineCtxArg(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

func goodGoroutineChannel(done chan struct{}) {
	go func() {
		<-done
	}()
}
