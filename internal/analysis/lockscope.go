package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockScope returns the analyzer enforcing the serving-plane locking rule
// from PRs 1/2: a mutex covers in-memory state transitions only — never a
// blocking operation. While a sync.Mutex or write-locked sync.RWMutex is
// held, the analyzer flags channel sends/receives, selects without a
// default, ranges over channels, time.Sleep, WaitGroup.Wait, and calls
// into the net/net/http packages. Under a *read* lock, channel operations
// are permitted: the batcher's close-safe enqueue deliberately sends on
// its intake channel under closeMu.RLock so a concurrent close (which
// takes the write lock) cannot race the send — the canonical pattern the
// rule must not outlaw. Sleeps, network calls, and WaitGroup.Wait stay
// forbidden under either lock mode. sync.Cond.Wait is exempt (it requires
// the lock by contract and releases it while parked).
//
// The flow analysis is intentionally simple: statements are scanned in
// order, nested blocks see a copy of the held-lock set (so an early-return
// unlock inside an if-body does not leak out), and closure bodies are
// skipped (they run later, usually without the lock).
func LockScope() *Analyzer {
	return &Analyzer{
		Name:  "lockscope",
		Doc:   "no blocking operation while holding a mutex in the serving plane",
		Scope: []string{"internal/serve", "internal/registry", "internal/nids", "internal/wire"},
		Run:   runLockScope,
	}
}

type lockKind int

const (
	lockRead lockKind = iota
	lockWrite
)

// heldLock records one acquired lock and where it was taken.
type heldLock struct {
	kind lockKind
	pos  token.Pos
}

func runLockScope(p *Pass) {
	for _, f := range p.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ls := &lockScopeCheck{p: p}
			ls.walkStmts(fd.Body.List, map[string]heldLock{})
		}
	}
}

type lockScopeCheck struct {
	p *Pass
}

// lockMethod classifies a call as a lock-state transition on a
// sync.Mutex/RWMutex receiver, returning the lock's exprKey.
func (ls *lockScopeCheck) lockMethod(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	m := sel.Sel.Name
	switch m {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	tv, has := ls.p.Pkg.Info.Types[sel.X]
	if !has || (!isSyncType(tv.Type, "Mutex") && !isSyncType(tv.Type, "RWMutex")) {
		return "", "", false
	}
	key = exprKey(sel.X)
	if key == "" {
		key = "<lock>"
	}
	return key, m, true
}

func cloneHeld(held map[string]heldLock) map[string]heldLock {
	c := make(map[string]heldLock, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func anyWrite(held map[string]heldLock) (string, heldLock, bool) {
	for k, h := range held {
		if h.kind == lockWrite {
			return k, h, true
		}
	}
	return "", heldLock{}, false
}

func anyHeld(held map[string]heldLock) (string, heldLock, bool) {
	if k, h, ok := anyWrite(held); ok {
		return k, h, true
	}
	for k, h := range held {
		return k, h, true
	}
	return "", heldLock{}, false
}

// walkStmts scans a statement list in order, mutating held as locks are
// taken and released.
func (ls *lockScopeCheck) walkStmts(stmts []ast.Stmt, held map[string]heldLock) {
	for _, s := range stmts {
		ls.walkStmt(s, held)
	}
}

func (ls *lockScopeCheck) walkStmt(s ast.Stmt, held map[string]heldLock) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, m, ok := ls.lockMethod(call); ok {
				switch m {
				case "Lock":
					held[key] = heldLock{kind: lockWrite, pos: call.Pos()}
				case "RLock":
					held[key] = heldLock{kind: lockRead, pos: call.Pos()}
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		ls.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end — leave
		// state as-is. Deferred closures run after return: skip.
		if _, m, ok := ls.lockMethod(s.Call); ok && (m == "Unlock" || m == "RUnlock") {
			return
		}
	case *ast.AssignStmt:
		// v, ok := mu.TryLock() style and receive-assignments.
		for _, e := range s.Rhs {
			if call, ok := unparen(e).(*ast.CallExpr); ok {
				if key, m, ok := ls.lockMethod(call); ok {
					switch m {
					case "TryLock":
						held[key] = heldLock{kind: lockWrite, pos: call.Pos()}
					case "TryRLock":
						held[key] = heldLock{kind: lockRead, pos: call.Pos()}
					}
					continue
				}
			}
			ls.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			ls.checkExpr(e, held)
		}
	case *ast.BlockStmt:
		ls.walkStmts(s.List, cloneHeld(held))
	case *ast.IfStmt:
		ls.walkStmt(s.Init, held)
		ls.checkExpr(s.Cond, held)
		ls.walkStmts(s.Body.List, cloneHeld(held))
		ls.walkStmt(s.Else, held)
	case *ast.ForStmt:
		ls.walkStmt(s.Init, held)
		ls.checkExpr(s.Cond, held)
		ls.walkStmts(s.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		if tv, ok := ls.p.Pkg.Info.Types[s.X]; ok && isChanType(tv.Type) {
			ls.flagChanOp(s.Pos(), "range over channel", held)
		}
		ls.checkExpr(s.X, held)
		ls.walkStmts(s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		ls.walkStmt(s.Init, held)
		ls.checkExpr(s.Tag, held)
		for _, cc := range s.Body.List {
			ls.walkStmts(cc.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.TypeSwitchStmt:
		ls.walkStmt(s.Init, held)
		for _, cc := range s.Body.List {
			ls.walkStmts(cc.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			ls.flagChanOp(s.Pos(), "select without default", held)
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			inner := cloneHeld(held)
			// The comm clause's own chan op is already covered by the
			// select-level check; still scan nested expressions.
			if clause.Comm != nil {
				switch comm := clause.Comm.(type) {
				case *ast.AssignStmt:
					for _, e := range comm.Rhs {
						ls.checkExprSkipTopRecv(e, inner)
					}
				case *ast.ExprStmt:
					ls.checkExprSkipTopRecv(comm.X, inner)
				}
			}
			ls.walkStmts(clause.Body, inner)
		}
	case *ast.SendStmt:
		ls.flagChanOp(s.Arrow, "channel send", held)
		ls.checkExpr(s.Chan, held)
		ls.checkExpr(s.Value, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.checkExpr(e, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks.
	case *ast.LabeledStmt:
		ls.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ls.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		ls.checkExpr(s.X, held)
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cc.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// flagChanOp reports a channel operation if an exclusive lock is held;
// read locks permit channel ops (the close-safe enqueue pattern).
func (ls *lockScopeCheck) flagChanOp(pos token.Pos, what string, held map[string]heldLock) {
	if key, h, ok := anyWrite(held); ok {
		lockLine := ls.p.Pkg.Fset.Position(h.pos).Line
		ls.p.Reportf(pos, "%s while holding exclusive lock %s (locked at line %d); a blocked sender stalls every waiter", what, key, lockLine)
	}
}

// checkExpr scans an expression tree for blocking operations, skipping
// closure bodies.
func (ls *lockScopeCheck) checkExpr(e ast.Expr, held map[string]heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ls.flagChanOp(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			ls.checkCall(n, held)
		}
		return true
	})
}

// checkExprSkipTopRecv is checkExpr minus a top-level receive (used for
// select comm clauses, whose blocking is attributed to the select itself).
func (ls *lockScopeCheck) checkExprSkipTopRecv(e ast.Expr, held map[string]heldLock) {
	if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		ls.checkExpr(u.X, held)
		return
	}
	ls.checkExpr(e, held)
}

// checkCall flags blocking calls — sleeps, WaitGroup.Wait, and network
// I/O — while any lock is held.
func (ls *lockScopeCheck) checkCall(call *ast.CallExpr, held map[string]heldLock) {
	key, h, isHeld := anyHeld(held)
	if !isHeld {
		return
	}
	info := ls.p.Pkg.Info
	lockLine := ls.p.Pkg.Fset.Position(h.pos).Line
	if isPkgCall(info, call, "time", "Sleep") {
		ls.p.Reportf(call.Pos(), "time.Sleep while holding lock %s (locked at line %d)", key, lockLine)
		return
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
		if tv, has := info.Types[sel.X]; has && isSyncType(tv.Type, "WaitGroup") {
			ls.p.Reportf(call.Pos(), "WaitGroup.Wait while holding lock %s (locked at line %d); waiters may need the lock to finish", key, lockLine)
			return
		}
	}
	if pkg := pkgPathOfCallee(info, call); pkg == "net" || strings.HasPrefix(pkg, "net/") {
		ls.p.Reportf(call.Pos(), "network call %s.%s while holding lock %s (locked at line %d); the lock covers the in-memory pass only", pkg, calleeName(call), key, lockLine)
	}
}
