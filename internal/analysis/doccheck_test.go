package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "SERVING.md")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckMetricsDocClean(t *testing.T) {
	path := writeDoc(t, `# Metrics
<!-- metrics:begin -->
| `+"`pelican_a_total`"+` | counter |
| `+"`pelican_b_depth`"+` | gauge |
<!-- metrics:end -->
`)
	drift, err := CheckMetricsDoc(path, map[string]string{
		"pelican_a_total": "counter",
		"pelican_b_depth": "gauge",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) != 0 {
		t.Fatalf("want no drift, got %v", drift)
	}
}

func TestCheckMetricsDocDrift(t *testing.T) {
	path := writeDoc(t, `<!-- metrics:begin -->
`+"`pelican_stale_total`"+`
`+"`pelican_a_total`"+`
<!-- metrics:end -->
`)
	drift, err := CheckMetricsDoc(path, map[string]string{
		"pelican_a_total":      "counter",
		"pelican_undocumented": "gauge",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) != 2 {
		t.Fatalf("want 2 drift messages, got %d: %v", len(drift), drift)
	}
	if !strings.Contains(drift[0], "pelican_undocumented") || !strings.Contains(drift[0], "not in the catalog") {
		t.Errorf("unexpected first drift message: %s", drift[0])
	}
	if !strings.Contains(drift[1], "pelican_stale_total") || !strings.Contains(drift[1], "no code emits it") {
		t.Errorf("unexpected second drift message: %s", drift[1])
	}
}

func TestCheckMetricsDocMissingMarkers(t *testing.T) {
	path := writeDoc(t, "# Metrics\n\nno markers here\n")
	drift, err := CheckMetricsDoc(path, map[string]string{"pelican_a_total": "counter"})
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) != 1 || !strings.Contains(drift[0], "markers") {
		t.Fatalf("want one marker-drift message, got %v", drift)
	}
}
