// Package analysis is pelican-vet's engine: a stdlib-only static-analysis
// driver (go/parser + go/ast + go/types, no external dependencies — the
// module's zero-dependency stance extends to its tooling) plus the
// project-specific analyzers that machine-check the invariants this
// codebase's performance and robustness story depends on:
//
//   - noalloc:   functions annotated //pelican:noalloc must stay free of
//     steady-state allocating constructs (the hot-path contract
//     from the allocation-free training/inference work).
//   - lockscope: no blocking operation while holding an exclusive mutex in
//     the serving-plane packages ("the lock covers the network
//     pass only").
//   - ctxflow:   request-path code must thread context.Context — no fresh
//     Background/TODO contexts, no dropped ctx parameters, no
//     goroutines without cancellation/completion discipline.
//   - metricreg: every pelican_* metric is declared exactly once, named by
//     Prometheus conventions, and emitted with one consistent
//     label set; doc mode cross-checks the SERVING.md catalog.
//
// Runtime tests only catch an invariant violation on the paths they happen
// to exercise; these analyzers check every path on every build, which is
// what lets the alloc-budget and race tests act as a second line of
// defense instead of the only one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package the analyzers run over.
type Package struct {
	// Path is the import path ("repro/internal/serve").
	Path string
	// Dir is the directory the package's files were parsed from.
	Dir string
	// Fset positions every node in Syntax.
	Fset *token.FileSet
	// Syntax holds the parsed files (tests excluded), comments included.
	Syntax []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the use/def/type maps the analyzers query.
	Info *types.Info
}

// Diagnostic is one analyzer finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one package plus the report sink.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named rule set.
type Analyzer struct {
	// Name is the flag / diagnostic prefix ("noalloc").
	Name string
	// Doc is the one-line description shown by pelican-vet -help.
	Doc string
	// Scope restricts which packages the driver applies the analyzer to:
	// a package is in scope when its import path contains any of these
	// substrings. Empty means every package. Testdata packages (synthetic
	// vet.test/... paths, only ever loaded explicitly) are always in
	// scope, so `pelican-vet <testdata dir>` demonstrates every analyzer.
	Scope []string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// Finish, when set, runs once after every in-scope package has been
	// visited — the hook whole-module analyzers (metricreg) use to report
	// on state accumulated across packages.
	Finish func(report func(Diagnostic))
}

// InScope reports whether the analyzer applies to the given package path.
func (a *Analyzer) InScope(pkgPath string) bool {
	if len(a.Scope) == 0 || strings.HasPrefix(pkgPath, "vet.test/") {
		return true
	}
	for _, s := range a.Scope {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{NoAlloc(), LockScope(), CtxFlow(), MetricReg()}
}

// Run applies each analyzer to each package it is in scope for and returns
// the findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			if !a.InScope(pkg.Path) {
				continue
			}
			RunOne(a, pkg, func(d Diagnostic) { diags = append(diags, d) })
		}
		if a.Finish != nil {
			a.Finish(func(d Diagnostic) { diags = append(diags, d) })
		}
	}
	Sort(diags)
	return diags
}

// RunOne applies a single analyzer to a single package, ignoring scope —
// the entry the golden-file tests use on testdata packages.
func RunOne(a *Analyzer, pkg *Package, report func(Diagnostic)) {
	a.Run(&Pass{Pkg: pkg, analyzer: a, report: report})
}

// Sort orders diagnostics by file, line, column, analyzer.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
