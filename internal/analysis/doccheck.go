package analysis

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// docMetricRE pulls backticked metric names out of the catalog section.
var docMetricRE = regexp.MustCompile("`(pelican[a-z0-9_]*)`")

const (
	docBeginMarker = "<!-- metrics:begin -->"
	docEndMarker   = "<!-- metrics:end -->"
)

// CheckMetricsDoc compares the declared metric families against the
// catalog section of docPath (the region between <!-- metrics:begin -->
// and <!-- metrics:end -->, one backticked family name per row) and
// returns one message per drift: families emitted by the code but missing
// from the catalog, and catalog rows no code emits. An unmarked document
// is itself drift — the catalog contract requires the markers.
func CheckMetricsDoc(docPath string, declared map[string]string) ([]string, error) {
	data, err := os.ReadFile(docPath)
	if err != nil {
		return nil, err
	}
	text := string(data)
	begin := strings.Index(text, docBeginMarker)
	end := strings.Index(text, docEndMarker)
	if begin < 0 || end < 0 || end < begin {
		return []string{fmt.Sprintf("%s: metric catalog markers %s / %s not found", docPath, docBeginMarker, docEndMarker)}, nil
	}
	catalog := text[begin+len(docBeginMarker) : end]

	documented := map[string]bool{}
	for _, m := range docMetricRE.FindAllStringSubmatch(catalog, -1) {
		documented[m[1]] = true
	}

	var drift []string
	var undocumented, stale []string
	for name := range declared {
		if !documented[name] {
			undocumented = append(undocumented, name)
		}
	}
	for name := range documented {
		if _, ok := declared[name]; !ok {
			stale = append(stale, name)
		}
	}
	sort.Strings(undocumented)
	sort.Strings(stale)
	for _, name := range undocumented {
		drift = append(drift, fmt.Sprintf("%s: metric %s (%s) is emitted but not in the catalog", docPath, name, declared[name]))
	}
	for _, name := range stale {
		drift = append(drift, fmt.Sprintf("%s: catalog lists %s but no code emits it", docPath, name))
	}
	return drift, nil
}
