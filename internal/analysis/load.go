package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of one Go module without shelling
// out to the go tool or importing anything beyond the standard library.
// Imports inside the module resolve by walking the module tree from go.mod;
// standard-library imports resolve through go/importer's source importer
// (which type-checks GOROOT packages from source, cached per Loader).
type Loader struct {
	fset    *token.FileSet
	std     types.ImporterFrom
	modPath string
	modRoot string
	// typed caches packages by import path so shared deps check once.
	typed map[string]*Package
	// checking guards against import cycles inside the module.
	checking map[string]bool
	// IncludeTests, when set, also parses _test.go files of the target
	// packages (external test packages excluded). The analyzers default to
	// production code only: test files assert on hot paths, they are not
	// hot paths.
	IncludeTests bool
}

// NewLoader finds the enclosing module of dir (walking up to go.mod) and
// returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		modPath:  modPath,
		modRoot:  root,
		typed:    map[string]*Package{},
		checking: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`)), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// ModulePath returns the loaded module's path.
func (l *Loader) ModulePath() string { return l.modPath }

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves patterns ("./...", "./internal/serve", import paths) into
// parsed, type-checked packages. Directories without non-test .go files are
// skipped; testdata, hidden, and underscore-prefixed directories are never
// walked.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.modRoot, addDir); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			if err := l.walk(base, addDir); err != nil {
				return nil, err
			}
		default:
			addDir(l.resolveDir(pat))
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages matched %v", patterns)
	}
	return pkgs, nil
}

// resolveDir maps a pattern to a directory: module-relative import paths
// and ./-relative paths both land inside the module root.
func (l *Loader) resolveDir(pat string) string {
	if pat == l.modPath {
		return l.modRoot
	}
	if rest, ok := strings.CutPrefix(pat, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, rest)
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(l.modRoot, pat)
}

// walk collects candidate package directories under base.
func (l *Loader) walk(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		add(path)
		return nil
	})
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir. Directories inside
// the module get their real import path (so intra-module imports of them
// are shared); directories outside (testdata trees) are checked as
// stand-alone packages that may import the stdlib only.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	pkgPath := l.importPathFor(dir)
	if pkg, ok := l.typed[pkgPath]; ok {
		return pkg, nil
	}
	return l.check(pkgPath, dir)
}

// importPathFor maps a directory to its import path. Directories outside
// the module root get a synthetic testdata path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") || strings.Contains(rel, "testdata") {
		return "vet.test/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the module tree, everything else falls through to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.modRoot, rel))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// check parses and type-checks one directory.
func (l *Loader) check(pkgPath, dir string) (*Package, error) {
	if l.checking[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
	}
	l.checking[pkgPath] = true
	defer func() { l.checking[pkgPath] = false }()

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") && f.Name.Name != pkgName && pkgName != "" {
			continue // external test package (foo_test): out of scope
		}
		if !strings.HasSuffix(name, "_test.go") {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	pkg := &Package{Path: pkgPath, Dir: dir, Fset: l.fset, Syntax: files, Types: tpkg, Info: info}
	l.typed[pkgPath] = pkg
	return pkg, nil
}
