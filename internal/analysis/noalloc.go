package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAllocDirective marks a function as steady-state allocation-free; the
// noalloc analyzer enforces the contract.
const NoAllocDirective = "//pelican:noalloc"

// NoAlloc returns the analyzer enforcing the //pelican:noalloc contract:
// annotated functions must not contain steady-state allocating constructs.
//
// The contract — matching the hot-path idioms PR 1/4 established — permits:
//
//   - make/new/&T{} guarded by a cap()/len() comparison or nil check (the
//     guarded-grow and pool-miss patterns: they allocate only until
//     capacity converges, then never again);
//   - append whose destination is recycled in the same function (assigned
//     x = x[:n] somewhere, or re-made under a cap/len guard) — growth is
//     amortized away by the recycling;
//   - anything inside panic(...) arguments (the crash path may allocate);
//   - setup statements before a worker's service loop (a top-level
//     `for {` or range-over-channel) — those run once per goroutine, not
//     per item.
//
// Everything else that allocates is flagged: unguarded make/new,
// slice/map/&struct literals, unguarded append, closures and go
// statements, string concatenation, byte/string conversions, fmt calls,
// method values, and interface boxing of non-pointer values at call sites.
func NoAlloc() *Analyzer {
	return &Analyzer{
		Name: "noalloc",
		Doc:  "//pelican:noalloc functions must be free of steady-state allocating constructs",
		Run:  runNoAlloc,
	}
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, NoAllocDirective) {
				continue
			}
			checkNoAllocFunc(p, fd)
		}
	}
}

// noallocCheck carries per-function state for one annotated function.
type noallocCheck struct {
	p    *Pass
	info *types.Info
	// recycled holds exprKeys of storage the function demonstrably
	// recycles: assigned x = x[:n], or re-made under a cap/len/nil guard.
	// Appends into recycled storage are amortized-free.
	recycled map[string]bool
	// prologueEnd bounds the one-time setup region: statements of the
	// function body that end before the first top-level service loop
	// (`for {` or range-over-channel) are exempt. NoPos when the function
	// has no service loop.
	prologueEnd token.Pos
	// callFuns records every expression in CallExpr.Fun position so method
	// values used as call targets are not misflagged as captured closures.
	callFuns map[ast.Expr]bool
}

func checkNoAllocFunc(p *Pass, fd *ast.FuncDecl) {
	c := &noallocCheck{
		p:        p,
		info:     p.Pkg.Info,
		recycled: map[string]bool{},
		callFuns: map[ast.Expr]bool{},
	}
	for _, stmt := range fd.Body.List {
		if isServiceLoop(p.Pkg.Info, stmt) {
			c.prologueEnd = stmt.Pos()
			break
		}
	}
	// Slice parameters follow the append-helper idiom (dst comes in, the
	// appended slice goes back out): the capacity contract is the
	// caller's, so appends into them are the caller's allocation to
	// account for, not this function's.
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.Pkg.Info.Defs[name]; obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Slice); ok {
						c.recycled[name.Name] = true
					}
				}
			}
		}
	}
	c.prescan(fd.Body, false)
	c.walkStmts(fd.Body.List, false)
}

// isServiceLoop reports whether stmt is an unconditional for-loop or a
// range over a channel — the shapes a worker's steady-state loop takes.
func isServiceLoop(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ForStmt:
		return s.Init == nil && s.Cond == nil && s.Post == nil
	case *ast.RangeStmt:
		if tv, ok := info.Types[s.X]; ok {
			return isChanType(tv.Type)
		}
	}
	return false
}

// guardCond reports whether an if-condition establishes an allocation
// guard — a capacity comparison (cap(x) vs anything, len(x) vs len/cap(y),
// len(x) vs a non-constant bound) or a nil check. Plain emptiness tests
// like len(recs) > 0 are control flow, not capacity guards, and do not
// license allocation in their branch.
func guardCond(info *types.Info, cond ast.Expr) bool {
	mentions := func(e ast.Expr, builtin string) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call, builtin) {
				hit = true
			}
			return !hit
		})
		return hit
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.Value != nil
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch b.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		if isNilComparison(b) {
			found = true
			return false
		}
		sideGuards := func(x, y ast.Expr) bool {
			if mentions(x, "cap") {
				return true
			}
			if !mentions(x, "len") {
				return false
			}
			return mentions(y, "len") || mentions(y, "cap") || !isConst(y)
		}
		if sideGuards(b.X, b.Y) || sideGuards(b.Y, b.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// prescan populates the recycled set before flagging starts, so recycling
// after first use still counts.
func (c *noallocCheck) prescan(body ast.Node, guarded bool) {
	var scan func(n ast.Node, guarded bool)
	scanStmt := func(s ast.Stmt, guarded bool) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return
			}
			for i, lhs := range s.Lhs {
				key := exprKey(lhs)
				if key == "" {
					continue
				}
				switch rhs := unparen(s.Rhs[i]).(type) {
				case *ast.SliceExpr:
					if exprKey(rhs.X) == key {
						c.recycled[key] = true
					}
				case *ast.CallExpr:
					if guarded && isBuiltin(c.info, rhs, "make") {
						c.recycled[key] = true
					}
					// x = append(x[:n], ...) truncate-and-refill also
					// recycles x.
					if isBuiltin(c.info, rhs, "append") && len(rhs.Args) > 0 {
						if se, ok := unparen(rhs.Args[0]).(*ast.SliceExpr); ok && exprKey(se.X) == key {
							c.recycled[key] = true
						}
					}
				case *ast.UnaryExpr:
					if guarded && rhs.Op == token.AND {
						c.recycled[key] = true
					}
				}
			}
		}
	}
	scan = func(n ast.Node, g bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			inner := g || guardCond(c.info, n.Cond)
			scan(n.Body, inner)
			scan(n.Else, g)
			return
		case *ast.BlockStmt:
			for _, s := range n.List {
				scanStmt(s, g)
				scan(s, g)
			}
			return
		case *ast.ForStmt:
			scan(n.Body, g)
			return
		case *ast.RangeStmt:
			scan(n.Body, g)
			return
		case *ast.SwitchStmt:
			for _, cc := range n.Body.List {
				for _, s := range cc.(*ast.CaseClause).Body {
					scanStmt(s, g)
					scan(s, g)
				}
			}
			return
		case *ast.SelectStmt:
			for _, cc := range n.Body.List {
				for _, s := range cc.(*ast.CommClause).Body {
					scanStmt(s, g)
					scan(s, g)
				}
			}
			return
		case ast.Stmt:
			scanStmt(n, g)
		}
	}
	scan(body, guarded)
}

// inPrologue reports whether n sits wholly inside the one-time setup
// region before the service loop.
func (c *noallocCheck) inPrologue(n ast.Node) bool {
	return c.prologueEnd.IsValid() && n.End() <= c.prologueEnd
}

func (c *noallocCheck) walkStmts(stmts []ast.Stmt, guarded bool) {
	for _, s := range stmts {
		c.walkStmt(s, guarded)
	}
}

func (c *noallocCheck) walkStmt(s ast.Stmt, guarded bool) {
	if s == nil || c.inPrologue(s) {
		return
	}
	switch s := s.(type) {
	case *ast.IfStmt:
		c.walkStmt(s.Init, guarded)
		c.walkExpr(s.Cond, guarded)
		inner := guarded || guardCond(c.info, s.Cond)
		c.walkStmts(s.Body.List, inner)
		c.walkStmt(s.Else, guarded)
	case *ast.BlockStmt:
		c.walkStmts(s.List, guarded)
	case *ast.ForStmt:
		c.walkStmt(s.Init, guarded)
		c.walkExpr(s.Cond, guarded)
		c.walkStmt(s.Post, guarded)
		c.walkStmts(s.Body.List, guarded)
	case *ast.RangeStmt:
		c.walkExpr(s.X, guarded)
		c.walkStmts(s.Body.List, guarded)
	case *ast.SwitchStmt:
		c.walkStmt(s.Init, guarded)
		c.walkExpr(s.Tag, guarded)
		for _, cc := range s.Body.List {
			c.walkStmts(cc.(*ast.CaseClause).Body, guarded)
		}
	case *ast.TypeSwitchStmt:
		c.walkStmt(s.Init, guarded)
		c.walkStmt(s.Assign, guarded)
		for _, cc := range s.Body.List {
			c.walkStmts(cc.(*ast.CaseClause).Body, guarded)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			c.walkStmt(clause.Comm, guarded)
			c.walkStmts(clause.Body, guarded)
		}
	case *ast.GoStmt:
		c.p.Reportf(s.Pos(), "go statement launches a goroutine (allocates); move the worker start out of the noalloc path")
		c.walkExpr(s.Call, guarded)
	case *ast.DeferStmt:
		c.walkExpr(s.Call, guarded)
	case *ast.AssignStmt:
		for _, e := range s.Lhs {
			c.walkExpr(e, guarded)
		}
		for _, e := range s.Rhs {
			c.walkExpr(e, guarded)
		}
	case *ast.ExprStmt:
		c.walkExpr(s.X, guarded)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.walkExpr(e, guarded)
		}
	case *ast.SendStmt:
		c.walkExpr(s.Chan, guarded)
		c.walkExpr(s.Value, guarded)
	case *ast.IncDecStmt:
		c.walkExpr(s.X, guarded)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.walkExpr(v, guarded)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, guarded)
	}
}

func (c *noallocCheck) walkExpr(e ast.Expr, guarded bool) {
	if e == nil || c.inPrologue(e) {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		c.checkCall(e, guarded)
	case *ast.FuncLit:
		c.p.Reportf(e.Pos(), "closure allocates (captured environment escapes); hoist it out of the noalloc path")
		// Do not descend: one finding per closure is enough.
	case *ast.CompositeLit:
		c.checkComposite(e, guarded, false)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := unparen(e.X).(*ast.CompositeLit); ok {
				c.checkComposite(cl, guarded, true)
				return
			}
		}
		c.walkExpr(e.X, guarded)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if tv, ok := c.info.Types[e]; ok && tv.Type != nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.p.Reportf(e.Pos(), "string concatenation allocates; precompute or use a recycled byte buffer")
				}
			}
		}
		c.walkExpr(e.X, guarded)
		c.walkExpr(e.Y, guarded)
	case *ast.SelectorExpr:
		c.checkMethodValue(e)
		c.walkExpr(e.X, guarded)
	case *ast.ParenExpr:
		c.walkExpr(e.X, guarded)
	case *ast.IndexExpr:
		c.walkExpr(e.X, guarded)
		c.walkExpr(e.Index, guarded)
	case *ast.SliceExpr:
		c.walkExpr(e.X, guarded)
		c.walkExpr(e.Low, guarded)
		c.walkExpr(e.High, guarded)
		c.walkExpr(e.Max, guarded)
	case *ast.StarExpr:
		c.walkExpr(e.X, guarded)
	case *ast.TypeAssertExpr:
		c.walkExpr(e.X, guarded)
	case *ast.KeyValueExpr:
		c.walkExpr(e.Key, guarded)
		c.walkExpr(e.Value, guarded)
	}
}

// checkComposite flags slice/map composite literals always and struct
// literals only when their address is taken (&T{} heap-allocates; a plain
// struct value does not).
func (c *noallocCheck) checkComposite(cl *ast.CompositeLit, guarded, addressed bool) {
	if guarded {
		// Guarded pool-miss / grow path: allowed, but still look inside.
		for _, el := range cl.Elts {
			c.walkExpr(el, guarded)
		}
		return
	}
	tv, ok := c.info.Types[cl]
	if ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			c.p.Reportf(cl.Pos(), "slice literal allocates its backing array; hoist it or recycle a buffer")
		case *types.Map:
			c.p.Reportf(cl.Pos(), "map literal allocates; hoist it to package or struct scope")
		default:
			if addressed {
				c.p.Reportf(cl.Pos(), "&composite literal escapes to the heap; reuse pooled or preallocated storage")
			}
		}
	}
	for _, el := range cl.Elts {
		c.walkExpr(el, guarded)
	}
}

// checkMethodValue flags method values (m := x.Method) which allocate a
// bound-method closure; method *calls* are exempted via callFuns.
func (c *noallocCheck) checkMethodValue(sel *ast.SelectorExpr) {
	if c.callFuns[sel] {
		return
	}
	s, ok := c.info.Selections[sel]
	if ok && s.Kind() == types.MethodVal {
		c.p.Reportf(sel.Pos(), "method value %s allocates a bound closure; call it directly or hoist", sel.Sel.Name)
	}
}

func (c *noallocCheck) checkCall(call *ast.CallExpr, guarded bool) {
	if fun, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		c.callFuns[fun] = true
	}
	// panic(...) may allocate freely: the crash path is not steady state.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isb := c.info.Uses[id].(*types.Builtin); isb {
			return
		}
	}
	switch {
	case isBuiltin(c.info, call, "make"):
		if !guarded {
			c.p.Reportf(call.Pos(), "unguarded make allocates; guard with a cap()/len() check or preallocate")
		}
	case isBuiltin(c.info, call, "new"):
		if !guarded {
			c.p.Reportf(call.Pos(), "unguarded new allocates; guard with a nil check or preallocate")
		}
	case isBuiltin(c.info, call, "append"):
		if !guarded && len(call.Args) > 0 {
			dest := unparen(call.Args[0])
			// append(x[:n], ...) recycles in place.
			if se, ok := dest.(*ast.SliceExpr); ok {
				dest = unparen(se.X)
			}
			key := exprKey(dest)
			if key == "" || !c.recycled[key] {
				c.p.Reportf(call.Pos(), "append may grow its backing array; recycle the destination (x = x[:0]) or cap-guard it")
			}
		}
	default:
		if pkgPathOfCallee(c.info, call) == "fmt" {
			c.p.Reportf(call.Pos(), "fmt.%s allocates (formatting and interface boxing); move it off the hot path", calleeName(call))
		} else {
			c.checkConversion(call)
			c.checkBoxing(call)
		}
	}
	c.walkExpr(call.Fun, guarded)
	for _, a := range call.Args {
		c.walkExpr(a, guarded)
	}
}

// checkConversion flags string<->[]byte/[]rune conversions, which copy.
func (c *noallocCheck) checkConversion(call *ast.CallExpr) {
	tv, ok := c.info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	to := tv.Type.Underlying()
	argTV, ok := c.info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return
	}
	from := argTV.Type.Underlying()
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	_, toSlice := to.(*types.Slice)
	_, fromSlice := from.(*types.Slice)
	if (isStr(to) && fromSlice) || (toSlice && isStr(from)) {
		c.p.Reportf(call.Pos(), "string/slice conversion copies and allocates")
	}
}

// checkBoxing flags call arguments where a concrete non-pointer value is
// passed to an interface parameter — that conversion heap-allocates the
// boxed copy. Pointer, channel, function, map and interface values are
// pointer-shaped and do not box.
func (c *noallocCheck) checkBoxing(call *ast.CallExpr) {
	obj := calleeObject(c.info, call)
	if obj == nil {
		return
	}
	sig, ok := obj.Type().Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := c.info.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		switch atv.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Chan, *types.Signature, *types.Map:
			continue
		}
		c.p.Reportf(arg.Pos(), "passing %s to interface parameter boxes the value (allocates)", atv.Type.String())
	}
}
