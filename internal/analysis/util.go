package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// unparen strips any number of enclosing parentheses (ast.Unparen needs a
// go1.22 language level; the module pins go1.21).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprKey renders an ident/selector chain ("sc.verdicts", "l.steps") into a
// stable textual key, or "" when the expression is anything more exotic.
// The analyzers use it to correlate assignments to the same storage without
// full alias analysis — good enough for the field/local patterns the hot
// paths actually use.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	}
	return ""
}

// calleeObject resolves the function object a call invokes, or nil for
// builtins, type conversions, and computed callees.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeName returns the bare name of the invoked function ("WritePromHeader",
// "Fprintf"), or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	_, isb := obj.(*types.Builtin)
	return isb
}

// isPkgCall reports whether the call resolves to pkgPath.name (e.g.
// "fmt".Fprintf, "time".Sleep).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// pkgPathOfCallee returns the defining package path of the call's target,
// or "" when unresolvable (builtins, conversions, indirect calls).
func pkgPathOfCallee(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// stringLit returns the constant string value of e (string literal or
// typed/untyped string constant), if any.
func stringLit(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// hasDirective reports whether the doc comment group carries the given
// //pelican: directive (exact match after trimming).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// isNilComparison reports whether e compares something against nil.
func isNilComparison(e ast.Expr) bool {
	b, ok := e.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	isNil := func(x ast.Expr) bool {
		id, ok := unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return isNil(b.X) || isNil(b.Y)
}

// receiverNamedType walks to the named type of a method receiver or value,
// unwrapping pointers.
func receiverNamedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isSyncType reports whether t's named type is sync.<name> (Mutex, RWMutex,
// WaitGroup, Cond), looking through pointers.
func isSyncType(t types.Type, name string) bool {
	n := receiverNamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := receiverNamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
