package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// metricNameRE is the Prometheus-convention shape every pelican_* family
// must match: lower-case snake segments, no leading/trailing underscores.
var metricNameRE = regexp.MustCompile(`^pelican(_[a-z][a-z0-9]*)+$`)

// MetricReg returns the analyzer auditing the pelican_* metric surface:
//
//   - every family emitted anywhere is declared (# HELP/# TYPE via
//     WritePromHeader) exactly once, and every declared family is emitted;
//   - names match Prometheus conventions (^pelican(_[a-z][a-z0-9]*)+$),
//     counters end in _total, gauges and histograms do not;
//   - all emit sites of a family agree on the label-key set;
//   - bare pelican_* string literals elsewhere (scrape tables, CLI
//     summaries) resolve to a declared family or a histogram's derived
//     _bucket/_sum/_count series.
//
// Metric names reach the exposition writer through small wrapper closures
// (counter, slotCounter, stageHist, gauge); the analyzer resolves those by
// computing, per function, which parameter carries the family name and
// what declaration/emission effect the body applies to it, then replays
// the effects at every call site with a constant name argument. The
// primitives are recognized by name — WritePromHeader, writeSample, and
// Histogram.WriteProm — so testdata packages can model them without
// importing internal/obs.
func MetricReg() *Analyzer {
	r := newMetricRegistry()
	return &Analyzer{
		Name: "metricreg",
		Doc:  "pelican_* metrics declared exactly once, conventionally named, with consistent labels",
		Run:  func(p *Pass) { r.collect(p) },
		Finish: func(report func(Diagnostic)) {
			for _, d := range r.finish() {
				report(d)
			}
		},
	}
}

type metricDecl struct {
	typ string
	pos token.Position
}

type metricEmit struct {
	labels []string
	pos    token.Position
	hist   bool
}

type metricRegistry struct {
	decls map[string][]metricDecl
	emits map[string][]metricEmit
	refs  map[string][]token.Position
}

func newMetricRegistry() *metricRegistry {
	return &metricRegistry{
		decls: map[string][]metricDecl{},
		emits: map[string][]metricEmit{},
		refs:  map[string][]token.Position{},
	}
}

// effect records what a function does with the metric name arriving in one
// of its string parameters.
type effect struct {
	param   int
	declare bool
	typ     string   // declare: the # TYPE value, when constant
	labels  []string // emit: label keys
	hist    bool     // emit: Histogram.WriteProm (derived _bucket/_sum/_count)
}

// collect scans one package, recording declarations, emissions, and bare
// references into the registry.
func (r *metricRegistry) collect(p *Pass) {
	info := p.Pkg.Info
	consumed := map[token.Pos]bool{}

	// Pass 1: compute name-flow effects for every function declaration, so
	// calls like counter("pelican_x", ...) resolve wherever they appear.
	effects := map[types.Object][]effect{}
	var declParams func(fd *ast.FuncDecl) []types.Object
	declParams = func(fd *ast.FuncDecl) []types.Object {
		var params []types.Object
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					params = append(params, info.Defs[name])
				}
			}
		}
		return params
	}
	litParams := func(fl *ast.FuncLit) []types.Object {
		var params []types.Object
		if fl.Type.Params != nil {
			for _, field := range fl.Type.Params.List {
				for _, name := range field.Names {
					params = append(params, info.Defs[name])
				}
			}
		}
		return params
	}
	for _, f := range p.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isMetricPrimitive(fd) {
				continue
			}
			if obj := info.Defs[fd.Name]; obj != nil {
				effects[obj] = r.computeEffects(info, fd.Body, declParams(fd))
			}
			// Local wrapper closures: name := func(...){...}.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return true
				}
				id, ok := as.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				fl, ok := as.Rhs[0].(*ast.FuncLit)
				if !ok {
					return true
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					effects[obj] = r.computeEffects(info, fl.Body, litParams(fl))
				}
				return true
			})
		}
	}

	// Pass 2: replay effects and primitives at every call site with a
	// constant name, recording registry entries.
	paramObjs := map[types.Object]bool{}
	for _, f := range p.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isMetricPrimitive(fd) {
				continue
			}
			for _, obj := range declParams(fd) {
				paramObjs[obj] = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					for _, obj := range litParams(fl) {
						paramObjs[obj] = true
					}
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				r.recordCall(p, call, effects, paramObjs, consumed)
				return true
			})
		}
	}

	// Pass 3: any remaining pelican_* string literal is a bare reference.
	for _, f := range p.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || consumed[lit.Pos()] {
				return true
			}
			v, okc := stringLit(info, lit)
			if !okc || !strings.HasPrefix(v, "pelican_") {
				return true
			}
			name := v
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			// Only well-formed family names count as references; prose
			// mentioning the pelican_ prefix is not a metric.
			if metricNameRE.MatchString(name) {
				r.refs[name] = append(r.refs[name], p.Pkg.Fset.Position(lit.Pos()))
			}
			return true
		})
	}
}

// isMetricPrimitive reports whether fd is one of the exposition
// primitives whose internals the analyzer models rather than scans.
func isMetricPrimitive(fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "WritePromHeader", "writeSample":
		return fd.Recv == nil
	case "WriteProm":
		return fd.Recv != nil
	}
	return false
}

// computeEffects determines which of fn's parameters carry metric names
// into declaration or emission primitives.
func (r *metricRegistry) computeEffects(info *types.Info, body *ast.BlockStmt, params []types.Object) []effect {
	paramIdx := func(e ast.Expr) int {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		obj := info.Uses[id]
		for i, p := range params {
			if p != nil && p == obj {
				return i
			}
		}
		return -1
	}
	var effs []effect
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case calleeName(call) == "WritePromHeader" && len(call.Args) == 4:
			if i := paramIdx(call.Args[1]); i >= 0 {
				typ, _ := stringLit(info, call.Args[2])
				effs = append(effs, effect{param: i, declare: true, typ: typ})
			}
		case calleeName(call) == "writeSample" && len(call.Args) == 3:
			if i := paramIdx(call.Args[1]); i >= 0 {
				effs = append(effs, effect{param: i})
			}
		case calleeName(call) == "WriteProm" && len(call.Args) == 3:
			if i := paramIdx(call.Args[1]); i >= 0 {
				effs = append(effs, effect{param: i, labels: labelKeysFromArg(info, call.Args[2]), hist: true})
			}
		case isPkgCall(info, call, "fmt", "Fprintf") && len(call.Args) >= 2:
			format, okf := stringLit(info, call.Args[1])
			if okf && strings.HasPrefix(format, "%s") && sampleShaped(format) && len(call.Args) >= 3 {
				if i := paramIdx(call.Args[2]); i >= 0 {
					effs = append(effs, effect{param: i, labels: labelKeysFromFormat(format)})
				}
			}
		}
		return true
	})
	return effs
}

// recordCall records declarations/emissions for one call site.
func (r *metricRegistry) recordCall(p *Pass, call *ast.CallExpr, effects map[types.Object][]effect, paramObjs map[types.Object]bool, consumed map[token.Pos]bool) {
	info := p.Pkg.Info
	pos := func(e ast.Expr) token.Position { return p.Pkg.Fset.Position(e.Pos()) }
	nameOf := func(arg ast.Expr) (string, bool) {
		name, ok := stringLit(info, arg)
		if ok {
			consumed[unparen(arg).Pos()] = true
			return name, true
		}
		// Names flowing through a known wrapper/primitive parameter are
		// accounted for at that wrapper's own call sites.
		if id, isID := unparen(arg).(*ast.Ident); isID && paramObjs[info.Uses[id]] {
			return "", false
		}
		p.Reportf(arg.Pos(), "metric name is not a string constant; the registry cannot audit dynamic names")
		return "", false
	}

	switch {
	case calleeName(call) == "WritePromHeader" && len(call.Args) == 4:
		if name, ok := nameOf(call.Args[1]); ok {
			typ, _ := stringLit(info, call.Args[2])
			r.decls[name] = append(r.decls[name], metricDecl{typ: typ, pos: pos(call.Args[1])})
		}
	case calleeName(call) == "writeSample" && len(call.Args) == 3:
		if name, ok := nameOf(call.Args[1]); ok {
			r.emits[name] = append(r.emits[name], metricEmit{pos: pos(call.Args[1])})
		}
	case calleeName(call) == "WriteProm" && len(call.Args) == 3:
		if name, ok := nameOf(call.Args[1]); ok {
			r.emits[name] = append(r.emits[name], metricEmit{
				labels: labelKeysFromArg(info, call.Args[2]), pos: pos(call.Args[1]), hist: true,
			})
		}
	case isPkgCall(info, call, "fmt", "Fprintf") && len(call.Args) >= 2:
		format, ok := stringLit(info, call.Args[1])
		if !ok {
			return
		}
		if strings.HasPrefix(format, "pelican_") {
			consumed[unparen(call.Args[1]).Pos()] = true
			name := format
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			r.emits[name] = append(r.emits[name], metricEmit{
				labels: labelKeysFromFormat(format), pos: pos(call.Args[1]),
			})
		} else if strings.HasPrefix(format, "%s") && sampleShaped(format) && len(call.Args) >= 3 {
			if name, ok := nameOf(call.Args[2]); ok {
				r.emits[name] = append(r.emits[name], metricEmit{
					labels: labelKeysFromFormat(format), pos: pos(call.Args[2]),
				})
			}
		}
	default:
		obj := calleeObject(info, call)
		if obj == nil {
			return
		}
		for _, eff := range effects[obj] {
			if eff.param >= len(call.Args) {
				continue
			}
			name, ok := nameOf(call.Args[eff.param])
			if !ok {
				continue
			}
			if eff.declare {
				r.decls[name] = append(r.decls[name], metricDecl{typ: eff.typ, pos: pos(call.Args[eff.param])})
			} else {
				r.emits[name] = append(r.emits[name], metricEmit{
					labels: eff.labels, pos: pos(call.Args[eff.param]), hist: eff.hist,
				})
			}
		}
	}
}

// sampleShaped reports whether a "%s"-prefixed format writes a Prometheus
// sample line ("%s 1\n", "%s{a=%q} %d\n", "%s_bucket{...} %d\n") rather
// than arbitrary text.
func sampleShaped(format string) bool {
	rest := strings.TrimPrefix(format, "%s")
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		rest = strings.TrimPrefix(rest, suf)
	}
	if i := strings.IndexByte(rest, '{'); i == 0 {
		j := strings.IndexByte(rest, '}')
		if j < 0 {
			return false
		}
		rest = rest[j+1:]
	}
	return strings.HasPrefix(rest, " %")
}

// labelKeysFromFormat extracts label keys from the {k=…,k2=…} segment of a
// sample format string.
func labelKeysFromFormat(format string) []string {
	i := strings.IndexByte(format, '{')
	if i < 0 {
		return nil
	}
	j := strings.IndexByte(format[i:], '}')
	if j < 0 {
		return nil
	}
	return labelKeysFromList(format[i+1 : i+j])
}

// labelKeysFromList parses `slot=%q,version=%q` / `slot="live"` into keys.
func labelKeysFromList(list string) []string {
	var keys []string
	for _, part := range strings.Split(list, ",") {
		if k, _, ok := strings.Cut(strings.TrimSpace(part), "="); ok && k != "" {
			keys = append(keys, k)
		}
	}
	return keys
}

// labelKeysFromArg resolves a labels argument: a string constant, or
// fmt.Sprintf with a constant format.
func labelKeysFromArg(info *types.Info, arg ast.Expr) []string {
	if s, ok := stringLit(info, arg); ok {
		return labelKeysFromList(s)
	}
	if call, ok := unparen(arg).(*ast.CallExpr); ok && isPkgCall(info, call, "fmt", "Sprintf") && len(call.Args) >= 1 {
		if s, ok := stringLit(info, call.Args[0]); ok {
			return labelKeysFromList(s)
		}
	}
	return nil
}

// finish audits the accumulated registry and returns the findings.
func (r *metricRegistry) finish() []Diagnostic {
	var diags []Diagnostic
	add := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Analyzer: "metricreg", Message: fmt.Sprintf(format, args...),
		})
	}

	names := map[string]bool{}
	for n := range r.decls {
		names[n] = true
	}
	for n := range r.emits {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		decls, emits := r.decls[name], r.emits[name]
		var at token.Position
		if len(decls) > 0 {
			at = decls[0].pos
		} else {
			at = emits[0].pos
		}
		if !metricNameRE.MatchString(name) {
			add(at, "metric %s violates naming conventions (want ^pelican(_[a-z][a-z0-9]*)+$)", name)
		}
		switch {
		case len(decls) == 0:
			add(emits[0].pos, "metric %s is emitted but never declared (missing WritePromHeader)", name)
		case len(decls) > 1:
			for _, d := range decls[1:] {
				add(d.pos, "metric %s declared more than once (first at %s:%d)", name, decls[0].pos.Filename, decls[0].pos.Line)
			}
		}
		if len(decls) > 0 {
			switch typ := decls[0].typ; typ {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					add(decls[0].pos, "counter %s must end in _total", name)
				}
			case "gauge", "histogram", "summary":
				if strings.HasSuffix(name, "_total") {
					add(decls[0].pos, "%s %s must not end in _total (reserved for counters)", typ, name)
				}
			default:
				add(decls[0].pos, "metric %s declares unknown type %q (want counter, gauge, histogram, or summary)", name, typ)
			}
		}
		if len(emits) == 0 {
			add(decls[0].pos, "metric %s is declared but never emitted", name)
		}
		if len(emits) > 1 {
			want := sortedKeys(emits[0].labels)
			for _, e := range emits[1:] {
				if got := sortedKeys(e.labels); got != want {
					add(e.pos, "metric %s emitted with label set {%s}, but {%s} at %s:%d", name, got, want, emits[0].pos.Filename, emits[0].pos.Line)
				}
			}
		}
	}

	refNames := make([]string, 0, len(r.refs))
	for n := range r.refs {
		refNames = append(refNames, n)
	}
	sort.Strings(refNames)
	for _, name := range refNames {
		if names[name] {
			continue
		}
		if base, ok := histBase(name); ok && len(r.decls[base]) > 0 && r.decls[base][0].typ == "histogram" {
			continue
		}
		for _, pos := range r.refs[name] {
			add(pos, "reference to undeclared metric %s", name)
		}
	}

	Sort(diags)
	return diags
}

// histBase strips a derived-histogram suffix, reporting whether one was
// present.
func histBase(name string) (string, bool) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), true
		}
	}
	return name, false
}

func sortedKeys(keys []string) string {
	c := append([]string(nil), keys...)
	sort.Strings(c)
	return strings.Join(c, ",")
}

// Declared exposes the registry's declared families (name → type) for the
// SERVING.md doc-drift check.
func (r *metricRegistry) Declared() map[string]string {
	out := map[string]string{}
	for name, decls := range r.decls {
		if len(decls) > 0 {
			out[name] = decls[0].typ
		}
	}
	return out
}

// CollectMetrics runs the metricreg collection over pkgs and returns the
// declared families (name → type) without reporting diagnostics.
func CollectMetrics(pkgs []*Package) map[string]string {
	r := newMetricRegistry()
	a := &Analyzer{Name: "metricreg"}
	for _, pkg := range pkgs {
		r.collect(&Pass{Pkg: pkg, analyzer: a, report: func(Diagnostic) {}})
	}
	return r.Declared()
}
