package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden tests run each analyzer over its testdata package and compare
// the diagnostics against `// want "substring"` comments: every want must
// be matched by a diagnostic on its line, and every diagnostic must be
// covered by a want. Lines without a want comment are the negative cases —
// idioms the analyzer must accept.

var (
	loaderOnce sync.Once
	goldLoader *Loader
	goldErr    error
)

// testdataLoader shares one Loader (and its stdlib type-check cache)
// across all golden tests.
func testdataLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { goldLoader, goldErr = NewLoader(".") })
	if goldErr != nil {
		t.Fatalf("NewLoader: %v", goldErr)
	}
	return goldLoader
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

type expectation struct {
	file string // base name
	line int
	msg  string // substring the diagnostic message must contain
	hit  bool
}

// collectWants scans the package directory's sources for want comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	var wants []*expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, msg: m[1]})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no // want comments under %s", dir)
	}
	return wants
}

// runGolden loads testdata/src/<name>, applies the analyzer, and matches
// findings against the want comments.
func runGolden(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := testdataLoader(t).LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	RunOne(a, pkg, report)
	if a.Finish != nil {
		a.Finish(report)
	}
	Sort(diags)

	wants := collectWants(t, dir)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.File) && w.line == d.Line && strings.Contains(d.Message, w.msg) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.msg)
		}
	}
}

func TestNoAllocGolden(t *testing.T)   { runGolden(t, NoAlloc(), "noalloc") }
func TestLockScopeGolden(t *testing.T) { runGolden(t, LockScope(), "lockscope") }
func TestCtxFlowGolden(t *testing.T)   { runGolden(t, CtxFlow(), "ctxflow") }
func TestMetricRegGolden(t *testing.T) { runGolden(t, MetricReg(), "metricreg") }
