package synth

import "fmt"

// Feature-name tables for the two dataset shapes. Numeric feature names
// follow the real datasets' flow-statistics vocabulary so examples and CSV
// exports read naturally.

// nslNumericNames are the 38 numeric features of NSL-KDD (the 41 raw
// features minus the 3 categorical ones).
var nslNumericNames = []string{
	"duration", "src_bytes", "dst_bytes", "land", "wrong_fragment",
	"urgent", "hot", "num_failed_logins", "logged_in", "num_compromised",
	"root_shell", "su_attempted", "num_root", "num_file_creations",
	"num_shells", "num_access_files", "num_outbound_cmds", "is_host_login",
	"is_guest_login", "count", "srv_count", "serror_rate",
	"srv_serror_rate", "rerror_rate", "srv_rerror_rate", "same_srv_rate",
	"diff_srv_rate", "srv_diff_host_rate", "dst_host_count",
	"dst_host_srv_count", "dst_host_same_srv_rate",
	"dst_host_diff_srv_rate", "dst_host_same_src_port_rate",
	"dst_host_srv_diff_host_rate", "dst_host_serror_rate",
	"dst_host_srv_serror_rate", "dst_host_rerror_rate",
	"dst_host_srv_rerror_rate",
}

// unswNumericNames are the 39 numeric flow features of UNSW-NB15.
var unswNumericNames = []string{
	"dur", "spkts", "dpkts", "sbytes", "dbytes", "rate", "sttl", "dttl",
	"sload", "dload", "sloss", "dloss", "sinpkt", "dinpkt", "sjit", "djit",
	"swin", "stcpb", "dtcpb", "dwin", "tcprtt", "synack", "ackdat",
	"smean", "dmean", "trans_depth", "response_body_len", "ct_srv_src",
	"ct_state_ttl", "ct_dst_ltm", "ct_src_dport_ltm", "ct_dst_sport_ltm",
	"ct_dst_src_ltm", "is_ftp_login", "ct_ftp_cmd", "ct_flw_http_mthd",
	"ct_src_ltm", "ct_srv_dst", "is_sm_ips_ports",
}

// NSLKDDConfig is the NSL-KDD-shaped generator: 38 numeric + 3 categorical
// raw features (protocol: 3, service: 69, flag: 11) that one-hot encode to
// exactly 121 columns — the paper's NSL-KDD input width — with the 5
// classes and approximate class mix of the real dataset. High separation
// and low label noise reproduce the ≈99% accuracy regime of Table III.
func NSLKDDConfig() Config {
	return Config{
		Name:        "nsl-kdd-synth",
		NumericName: nslNumericNames,
		Cats: []CatSpec{
			{Name: "protocol_type", Card: 3},
			{Name: "service", Card: 69},
			{Name: "flag", Card: 11},
		},
		Classes: []ClassSpec{
			{Name: "normal", Weight: 0.517},
			{Name: "dos", Weight: 0.358},
			{Name: "probe", Weight: 0.089},
			{Name: "r2l", Weight: 0.033},
			{Name: "u2r", Weight: 0.003},
		},
		LatentDim:   16,
		Separation:  1.6,
		NoiseStd:    0.5,
		LabelNoise:  0.004,
		Band:        2,
		QuadTerms:   12,
		ProfileSeed: 20011,
	}
}

// UNSWNB15Config is the UNSW-NB15-shaped generator: 39 numeric + 3
// categorical raw features (proto: 133, service: 13, state: 11) one-hot
// encoding to exactly 196 columns — the paper's UNSW input width — with
// its 10 classes and approximate class mix. Lower separation and heavier
// label noise reproduce the ≈86% accuracy regime of Table IV.
func UNSWNB15Config() Config {
	return Config{
		Name:        "unsw-nb15-synth",
		NumericName: unswNumericNames,
		Cats: []CatSpec{
			{Name: "proto", Card: 133},
			{Name: "service", Card: 13},
			{Name: "state", Card: 11},
		},
		Classes: []ClassSpec{
			{Name: "normal", Weight: 0.361},
			{Name: "generic", Weight: 0.229},
			{Name: "exploits", Weight: 0.173},
			{Name: "fuzzers", Weight: 0.094},
			{Name: "dos", Weight: 0.064},
			{Name: "reconnaissance", Weight: 0.054},
			{Name: "analysis", Weight: 0.010},
			{Name: "backdoor", Weight: 0.009},
			{Name: "shellcode", Weight: 0.006},
			{Name: "worms", Weight: 0.0007},
		},
		LatentDim:   20,
		Separation:  0.75,
		NoiseStd:    1.1,
		LabelNoise:  0.085,
		Band:        2,
		QuadTerms:   24,
		ProfileSeed: 20015,
	}
}

// PaperRecordCount returns the record counts the paper evaluates on
// (§V-A): 148,516 for NSL-KDD and 257,673 for UNSW-NB15.
func PaperRecordCount(name string) (int, error) {
	switch name {
	case "nsl-kdd", "nsl-kdd-synth":
		return 148516, nil
	case "unsw-nb15", "unsw-nb15-synth":
		return 257673, nil
	}
	return 0, fmt.Errorf("synth: unknown dataset %q", name)
}
