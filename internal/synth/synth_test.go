package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

func TestNSLKDDEncodedWidthIs121(t *testing.T) {
	g := MustNew(NSLKDDConfig())
	if w := g.Schema().EncodedWidth(); w != 121 {
		t.Fatalf("NSL-KDD encoded width %d, want 121 (paper §V-C)", w)
	}
	if k := g.Schema().NumClasses(); k != 5 {
		t.Fatalf("NSL-KDD classes %d, want 5", k)
	}
}

func TestUNSWEncodedWidthIs196(t *testing.T) {
	g := MustNew(UNSWNB15Config())
	if w := g.Schema().EncodedWidth(); w != 196 {
		t.Fatalf("UNSW-NB15 encoded width %d, want 196 (paper §V-C)", w)
	}
	if k := g.Schema().NumClasses(); k != 10 {
		t.Fatalf("UNSW-NB15 classes %d, want 10", k)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := MustNew(NSLKDDConfig())
	a := g.Generate(200, 42)
	b := g.Generate(200, 42)
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Label != rb.Label {
			t.Fatalf("record %d label differs across identical seeds", i)
		}
		for j := range ra.Numeric {
			if ra.Numeric[j] != rb.Numeric[j] {
				t.Fatalf("record %d numeric %d differs across identical seeds", i, j)
			}
		}
		for j := range ra.Categorical {
			if ra.Categorical[j] != rb.Categorical[j] {
				t.Fatalf("record %d categorical %d differs", i, j)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	g := MustNew(NSLKDDConfig())
	a := g.Generate(100, 1)
	b := g.Generate(100, 2)
	same := 0
	for i := range a.Records {
		if a.Records[i].Numeric[0] == b.Records[i].Numeric[0] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d/100 identical records across different seeds", same)
	}
}

func TestGeneratedDatasetValidates(t *testing.T) {
	for _, cfg := range []Config{NSLKDDConfig(), UNSWNB15Config()} {
		g := MustNew(cfg)
		ds := g.Generate(500, 7)
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: generated dataset invalid: %v", cfg.Name, err)
		}
	}
}

func TestClassMixApproximatesWeights(t *testing.T) {
	cfg := NSLKDDConfig()
	cfg.LabelNoise = 0
	g := MustNew(cfg)
	ds := g.Generate(40000, 11)
	counts := ds.ClassCounts()
	total := float64(ds.Len())
	wantFrac := []float64{0.517, 0.358, 0.089, 0.033, 0.003}
	for i, w := range wantFrac {
		got := float64(counts[i]) / total
		if math.Abs(got-w) > 0.02 {
			t.Fatalf("class %d fraction %v, want ≈%v", i, got, w)
		}
	}
	// Rare class must still exist.
	if counts[4] == 0 {
		t.Fatal("rarest class (u2r) absent from 40k draw")
	}
}

func TestLabelNoiseRate(t *testing.T) {
	cfg := NSLKDDConfig()
	cfg.LabelNoise = 0.5 // exaggerate for measurement
	g := MustNew(cfg)
	// With 50% label noise, classes become much more uniform than the
	// configured skew; compare normal-class share against the noiseless
	// generator.
	noisy := g.Generate(20000, 3).ClassCounts()
	cfg.LabelNoise = 0
	clean := MustNew(cfg).Generate(20000, 3).ClassCounts()
	if !(float64(noisy[0]) < 0.8*float64(clean[0])) {
		t.Fatalf("label noise did not perturb class mix: noisy=%v clean=%v", noisy, clean)
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A nearest-centroid classifier on the encoded features must beat the
	// majority-class baseline by a wide margin on NSL-KDD-synth: the
	// classes carry real signal.
	g := MustNew(NSLKDDConfig())
	train := g.Generate(4000, 21)
	test := g.Generate(1000, 22)

	enc := data.NewEncoder(g.Schema())
	xTr, yTr := enc.Encode(train)
	sc := data.FitScaler(xTr)
	sc.Transform(xTr)
	xTe, yTe := enc.Encode(test)
	sc.Transform(xTe)

	k := g.Schema().NumClasses()
	w := enc.Width()
	centroids := make([][]float64, k)
	counts := make([]int, k)
	for i := range centroids {
		centroids[i] = make([]float64, w)
	}
	for r := 0; r < xTr.Dim(0); r++ {
		y := yTr[r]
		counts[y]++
		row := xTr.Row(r)
		for c, v := range row {
			centroids[y][c] += v
		}
	}
	for i := range centroids {
		if counts[i] > 0 {
			for c := range centroids[i] {
				centroids[i][c] /= float64(counts[i])
			}
		}
	}
	correct := 0
	for r := 0; r < xTe.Dim(0); r++ {
		row := xTe.Row(r)
		best, bestD := -1, math.Inf(1)
		for ci := range centroids {
			d := 0.0
			for c, v := range row {
				diff := v - centroids[ci][c]
				d += diff * diff
			}
			if d < bestD {
				bestD, best = d, ci
			}
		}
		if best == yTe[r] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(yTe))
	if acc < 0.70 {
		t.Fatalf("nearest-centroid accuracy %.3f; classes not separable enough", acc)
	}
}

func TestUNSWHarderThanNSL(t *testing.T) {
	// The UNSW-like generator must be measurably harder (more overlap +
	// label noise) than the NSL-like one under the same simple classifier.
	acc := func(cfg Config) float64 {
		g := MustNew(cfg)
		train := g.Generate(4000, 31)
		test := g.Generate(1000, 32)
		enc := data.NewEncoder(g.Schema())
		xTr, yTr := enc.Encode(train)
		sc := data.FitScaler(xTr)
		sc.Transform(xTr)
		xTe, yTe := enc.Encode(test)
		sc.Transform(xTe)
		k := g.Schema().NumClasses()
		w := enc.Width()
		cents := make([][]float64, k)
		counts := make([]int, k)
		for i := range cents {
			cents[i] = make([]float64, w)
		}
		for r := 0; r < xTr.Dim(0); r++ {
			counts[yTr[r]]++
			for c, v := range xTr.Row(r) {
				cents[yTr[r]][c] += v
			}
		}
		for i := range cents {
			if counts[i] > 0 {
				for c := range cents[i] {
					cents[i][c] /= float64(counts[i])
				}
			}
		}
		correct := 0
		for r := 0; r < xTe.Dim(0); r++ {
			best, bestD := -1, math.Inf(1)
			for ci := range cents {
				d := 0.0
				for c, v := range xTe.Row(r) {
					diff := v - cents[ci][c]
					d += diff * diff
				}
				if d < bestD {
					bestD, best = d, ci
				}
			}
			if best == yTe[r] {
				correct++
			}
		}
		return float64(correct) / float64(len(yTe))
	}
	nsl := acc(NSLKDDConfig())
	unsw := acc(UNSWNB15Config())
	if unsw >= nsl {
		t.Fatalf("UNSW-synth (%.3f) should be harder than NSL-synth (%.3f)", unsw, nsl)
	}
}

func TestSampleClassProducesRequestedClass(t *testing.T) {
	g := MustNew(UNSWNB15Config())
	rng := rand.New(rand.NewSource(5))
	for class := 0; class < g.Schema().NumClasses(); class++ {
		r := g.SampleClass(rng, class)
		if r.Label != class {
			t.Fatalf("SampleClass(%d) labelled %d", class, r.Label)
		}
		if len(r.Numeric) != g.Schema().NumNumeric() {
			t.Fatalf("wrong numeric width %d", len(r.Numeric))
		}
	}
}

func TestPaperRecordCount(t *testing.T) {
	n, err := PaperRecordCount("nsl-kdd-synth")
	if err != nil || n != 148516 {
		t.Fatalf("nsl count = %d, %v", n, err)
	}
	n, err = PaperRecordCount("unsw-nb15")
	if err != nil || n != 257673 {
		t.Fatalf("unsw count = %d, %v", n, err)
	}
	if _, err := PaperRecordCount("bogus"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	cfg := NSLKDDConfig()
	cfg.LatentDim = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("LatentDim 0 accepted")
	}
	cfg = NSLKDDConfig()
	cfg.Classes = cfg.Classes[:1]
	if _, err := New(cfg); err == nil {
		t.Fatal("single class accepted")
	}
	cfg = NSLKDDConfig()
	cfg.Classes[0].Weight = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestNumericFeaturesAreFinite(t *testing.T) {
	g := MustNew(UNSWNB15Config())
	ds := g.Generate(2000, 13)
	for i, r := range ds.Records {
		for j, v := range r.Numeric {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("record %d feature %d is %v", i, j, v)
			}
		}
	}
}

func TestNewVariantShiftsOnlyListedClasses(t *testing.T) {
	cfg := NSLKDDConfig()
	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	variant, err := NewVariant(cfg, cfg.ProfileSeed+202, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Unlisted classes keep the exact base distribution: same rng stream,
	// same records.
	same := func(class int) bool {
		r1 := rand.New(rand.NewSource(7))
		r2 := rand.New(rand.NewSource(7))
		for i := 0; i < 20; i++ {
			a := base.SampleClass(r1, class)
			b := variant.SampleClass(r2, class)
			for j := range a.Numeric {
				if a.Numeric[j] != b.Numeric[j] {
					return false
				}
			}
		}
		return true
	}
	if !same(0) {
		t.Fatal("variant changed the normal class distribution")
	}
	if same(1) {
		t.Fatal("variant did not change a listed attack class")
	}
	if _, err := NewVariant(cfg, 1, []int{99}); err == nil {
		t.Fatal("out-of-range variant class accepted")
	}
}
