// Package synth generates class-conditional synthetic network-traffic
// datasets shaped like NSL-KDD and UNSW-NB15 — the substitution for the
// real datasets, which cannot be redistributed with an offline module.
//
// Each class is a nonlinear latent-factor model: a latent vector
// z ~ N(0, I) drives (a) numeric features through banded linear loadings
// plus class-specific quadratic interaction terms, and (b) categorical
// features through latent-conditioned softmax logits. This reproduces the
// statistical structure that drives the paper's comparisons:
//
//   - nonlinear class boundaries (quadratic terms) that hurt linear and
//     stump-based learners (SVM, AdaBoost);
//   - correlated feature groups laid out on adjacent columns (banded
//     loadings) that convolutional layers can exploit;
//   - mixed categorical/numeric dependence that favours models able to
//     combine both;
//   - class imbalance matching the real datasets (U2R is 0.3% of NSL-KDD,
//     Worms 0.07% of UNSW-NB15);
//   - controlled class overlap and label noise calibrating the achievable
//     accuracy (≈99% on NSL-KDD-like, ≈86% on UNSW-NB15-like, as in the
//     paper's Tables III and IV).
//
// Everything is deterministic given (Config, seed).
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
)

// CatSpec describes one categorical feature to synthesize.
type CatSpec struct {
	Name string
	Card int // vocabulary size; values are "<name>_v0" ... unless named
}

// ClassSpec describes one traffic class.
type ClassSpec struct {
	Name   string
	Weight float64 // relative frequency (need not sum to 1)
}

// Config parameterizes a generator. Use NSLKDDConfig or UNSWNB15Config for
// the paper's two datasets.
type Config struct {
	Name        string
	NumericName []string
	Cats        []CatSpec
	Classes     []ClassSpec

	// LatentDim is the dimension of the per-record latent factor z.
	LatentDim int
	// Separation scales the between-class differences of the profiles;
	// smaller values yield more class overlap (harder datasets).
	Separation float64
	// NoiseStd is the independent per-feature observation noise.
	NoiseStd float64
	// LabelNoise is the probability a record's label is flipped to a
	// random other class (irreducible error).
	LabelNoise float64
	// Band is the half-width of the banded latent loadings: numeric
	// feature j loads on latent factors near j·L/N, giving adjacent
	// features correlated structure.
	Band int
	// QuadTerms is the number of quadratic latent interactions per class.
	QuadTerms int
	// ProfileSeed derives the per-class profiles; record sampling uses the
	// seed passed to Generate, so profiles stay fixed across draws.
	ProfileSeed int64
}

// quadTerm is one nonlinear interaction: feature fi receives
// coef · z[l1] · z[l2].
type quadTerm struct {
	fi     int
	l1, l2 int
	coef   float64
}

// classProfile holds the generative parameters of one class.
type classProfile struct {
	bias []float64   // per numeric feature
	load [][]float64 // numeric × latent loadings (banded)
	quad []quadTerm
	// catBase[k][v] are class logits per categorical value; catLoad[k][v]
	// is that value's sensitivity to the first latent factors.
	catBase [][]float64
	catLoad [][][]float64
}

// Generator produces records for a fixed config.
type Generator struct {
	cfg      Config
	schema   data.Schema
	profiles []classProfile
	cum      []float64 // cumulative class weights, normalized
}

// New builds a generator: class profiles are derived deterministically from
// cfg.ProfileSeed.
func New(cfg Config) (*Generator, error) {
	if cfg.LatentDim < 1 {
		return nil, fmt.Errorf("synth: LatentDim %d < 1", cfg.LatentDim)
	}
	if len(cfg.Classes) < 2 {
		return nil, fmt.Errorf("synth: need at least 2 classes, got %d", len(cfg.Classes))
	}
	if cfg.Band < 1 {
		cfg.Band = 1
	}
	schema := data.Schema{NumericNames: cfg.NumericName}
	for _, c := range cfg.Cats {
		vals := make([]string, c.Card)
		for i := range vals {
			vals[i] = fmt.Sprintf("%s_v%d", c.Name, i)
		}
		schema.Categorical = append(schema.Categorical, data.CategoricalFeature{Name: c.Name, Values: vals})
	}
	for _, cl := range cfg.Classes {
		schema.ClassNames = append(schema.ClassNames, cl.Name)
	}
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}

	g := &Generator{cfg: cfg, schema: schema}
	prng := rand.New(rand.NewSource(cfg.ProfileSeed))

	// A shared base profile keeps classes overlapping; per-class deltas
	// scaled by Separation pull them apart.
	n := len(cfg.NumericName)
	l := cfg.LatentDim
	baseBias := randSlice(prng, n, 1.0)
	baseLoad := bandedLoadings(prng, n, l, cfg.Band, 1.0)

	total := 0.0
	for ci, cl := range cfg.Classes {
		if cl.Weight <= 0 {
			return nil, fmt.Errorf("synth: class %q weight %v <= 0", cl.Name, cl.Weight)
		}
		total += cl.Weight
		p := classProfile{
			bias: make([]float64, n),
			load: make([][]float64, n),
		}
		deltaBias := randSlice(prng, n, cfg.Separation)
		deltaLoad := bandedLoadings(prng, n, l, cfg.Band, cfg.Separation*0.6)
		for j := 0; j < n; j++ {
			p.bias[j] = baseBias[j] + deltaBias[j]
			p.load[j] = make([]float64, l)
			for q := 0; q < l; q++ {
				p.load[j][q] = baseLoad[j][q] + deltaLoad[j][q]
			}
		}
		for q := 0; q < cfg.QuadTerms; q++ {
			p.quad = append(p.quad, quadTerm{
				fi:   prng.Intn(n),
				l1:   prng.Intn(l),
				l2:   prng.Intn(l),
				coef: (prng.Float64()*2 - 1) * cfg.Separation,
			})
		}
		for _, cs := range cfg.Cats {
			base := make([]float64, cs.Card)
			loads := make([][]float64, cs.Card)
			for v := 0; v < cs.Card; v++ {
				// Class-specific preference for a sparse subset of values:
				// most values get strongly negative logits so each class
				// concentrates on a handful of, e.g., services.
				base[v] = -2 + prng.NormFloat64()
				if prng.Float64() < 4.0/float64(cs.Card) {
					base[v] += cfg.Separation * (1.5 + prng.Float64())
				}
				lv := make([]float64, l)
				for q := 0; q < l && q < 4; q++ {
					lv[q] = prng.NormFloat64() * 0.5
				}
				loads[v] = lv
			}
			p.catBase = append(p.catBase, base)
			p.catLoad = append(p.catLoad, loads)
		}
		g.profiles = append(g.profiles, p)
		_ = ci
	}
	g.cum = make([]float64, len(cfg.Classes))
	acc := 0.0
	for i, cl := range cfg.Classes {
		acc += cl.Weight / total
		g.cum[i] = acc
	}
	return g, nil
}

// NewVariant builds a generator that is cfg's generator with the listed
// classes' generative profiles re-drawn under variantSeed — "new attack
// variants": the named classes change their statistical signature while
// every other class (typically Normal) keeps cfg's exact distribution.
// This is the §VI drift scenario a deployed detector actually faces —
// attacks evolve while background traffic stays put — as opposed to
// shifting ProfileSeed wholesale, which moves the normal class too.
func NewVariant(cfg Config, variantSeed int64, classes []int) (*Generator, error) {
	base, err := New(cfg)
	if err != nil {
		return nil, err
	}
	varCfg := cfg
	varCfg.ProfileSeed = variantSeed
	variant, err := New(varCfg)
	if err != nil {
		return nil, err
	}
	out := *base
	out.profiles = make([]classProfile, len(base.profiles))
	copy(out.profiles, base.profiles)
	for _, c := range classes {
		if c < 0 || c >= len(out.profiles) {
			return nil, fmt.Errorf("synth: variant class %d out of range [0, %d)", c, len(out.profiles))
		}
		out.profiles[c] = variant.profiles[c]
	}
	return &out, nil
}

// MustNew is New but panics on error; for the fixed built-in configs.
func MustNew(cfg Config) *Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Schema returns the generated dataset schema.
func (g *Generator) Schema() data.Schema { return g.schema }

// randSlice draws n samples from N(0, scale²).
func randSlice(rng *rand.Rand, n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * scale
	}
	return out
}

// bandedLoadings builds an n×l loading matrix where feature j loads mainly
// on latent factors within band of center j·l/n — adjacent features share
// factors, giving the data local (convolution-friendly) correlation.
func bandedLoadings(rng *rand.Rand, n, l, band int, scale float64) [][]float64 {
	out := make([][]float64, n)
	for j := 0; j < n; j++ {
		row := make([]float64, l)
		center := j * l / maxInt(n, 1)
		for q := 0; q < l; q++ {
			d := q - center
			if d < 0 {
				d = -d
			}
			// Wrap-around distance keeps the last features structured too.
			if wrap := l - d; wrap < d {
				d = wrap
			}
			if d <= band {
				row[q] = rng.NormFloat64() * scale / float64(1+d)
			}
		}
		out[j] = row
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SampleClass draws one record of the given class.
func (g *Generator) SampleClass(rng *rand.Rand, class int) data.Record {
	p := &g.profiles[class]
	l := g.cfg.LatentDim
	z := make([]float64, l)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	n := len(g.cfg.NumericName)
	num := make([]float64, n)
	for j := 0; j < n; j++ {
		v := p.bias[j]
		for q, w := range p.load[j] {
			if w != 0 {
				v += w * z[q]
			}
		}
		num[j] = v
	}
	for _, qt := range p.quad {
		num[qt.fi] += qt.coef * z[qt.l1] * z[qt.l2]
	}
	for j := 0; j < n; j++ {
		num[j] += rng.NormFloat64() * g.cfg.NoiseStd
		// Traffic-volume style features are non-negative and heavy-tailed:
		// map every other feature through softplus·exp-ish scaling.
		if j%2 == 0 {
			num[j] = softplus(num[j]) * 10
		}
	}
	cats := make([]string, len(g.cfg.Cats))
	for k, cs := range g.cfg.Cats {
		logits := make([]float64, cs.Card)
		for v := 0; v < cs.Card; v++ {
			s := p.catBase[k][v]
			for q, w := range p.catLoad[k][v] {
				s += w * z[q]
			}
			logits[v] = s
		}
		cats[k] = g.schema.Categorical[k].Values[sampleSoftmax(rng, logits)]
	}
	return data.Record{Numeric: num, Categorical: cats, Label: class}
}

func softplus(v float64) float64 {
	if v > 30 {
		return v
	}
	return math.Log1p(math.Exp(v))
}

// sampleSoftmax draws an index proportional to exp(logit).
func sampleSoftmax(rng *rand.Rand, logits []float64) int {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	probs := make([]float64, len(logits))
	for i, v := range logits {
		e := math.Exp(v - maxV)
		probs[i] = e
		sum += e
	}
	u := rng.Float64() * sum
	acc := 0.0
	for i, pv := range probs {
		acc += pv
		if u <= acc {
			return i
		}
	}
	return len(logits) - 1
}

// sampleClassIdx draws a class from the configured weights.
func (g *Generator) sampleClassIdx(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range g.cum {
		if u <= c {
			return i
		}
	}
	return len(g.cum) - 1
}

// Generate draws n records with the configured class mix and label noise,
// deterministically for a given seed.
func (g *Generator) Generate(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &data.Dataset{Schema: g.schema, Records: make([]data.Record, n)}
	k := len(g.cfg.Classes)
	for i := 0; i < n; i++ {
		class := g.sampleClassIdx(rng)
		rec := g.SampleClass(rng, class)
		if g.cfg.LabelNoise > 0 && rng.Float64() < g.cfg.LabelNoise {
			// Flip to a uniformly random *other* class.
			rec.Label = (rec.Label + 1 + rng.Intn(k-1)) % k
		}
		ds.Records[i] = rec
	}
	return ds
}
