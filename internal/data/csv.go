package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes a dataset with a header row: numeric columns first,
// then categorical columns, then "label" holding the class name.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.Schema.NumNumeric()+len(d.Schema.Categorical)+1)
	header = append(header, d.Schema.NumericNames...)
	for _, c := range d.Schema.Categorical {
		header = append(header, c.Name)
	}
	header = append(header, "label")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range d.Records {
		r := &d.Records[i]
		for j, v := range r.Numeric {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		base := len(r.Numeric)
		copy(row[base:], r.Categorical)
		row[len(row)-1] = d.Schema.ClassNames[r.Label]
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. The schema supplies the
// expected layout; the header is validated against it.
func ReadCSV(r io.Reader, schema Schema) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	wantCols := schema.NumNumeric() + len(schema.Categorical) + 1
	if len(header) != wantCols {
		return nil, fmt.Errorf("header has %d columns, schema wants %d", len(header), wantCols)
	}
	for i, n := range schema.NumericNames {
		if header[i] != n {
			return nil, fmt.Errorf("column %d is %q, schema wants %q", i, header[i], n)
		}
	}
	classIdx := make(map[string]int, len(schema.ClassNames))
	for i, c := range schema.ClassNames {
		classIdx[c] = i
	}
	ds := &Dataset{Schema: schema}
	nn := schema.NumNumeric()
	nc := len(schema.Categorical)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		rec := Record{Numeric: make([]float64, nn), Categorical: make([]string, nc)}
		for j := 0; j < nn; j++ {
			v, err := strconv.ParseFloat(row[j], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d column %d: %w", line, j, err)
			}
			rec.Numeric[j] = v
		}
		copy(rec.Categorical, row[nn:nn+nc])
		label, ok := classIdx[row[len(row)-1]]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown class %q", line, row[len(row)-1])
		}
		rec.Label = label
		ds.Records = append(ds.Records, rec)
	}
	return ds, nil
}
