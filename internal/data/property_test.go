package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// randomDataset builds a random dataset against testSchema.
func randomDataset(rng *rand.Rand, n int) *Dataset {
	s := testSchema()
	ds := &Dataset{Schema: s, Records: make([]Record, n)}
	for i := 0; i < n; i++ {
		ds.Records[i] = Record{
			Numeric: []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 100},
			Categorical: []string{
				s.Categorical[0].Values[rng.Intn(3)],
				s.Categorical[1].Values[rng.Intn(2)],
			},
			Label: rng.Intn(3),
		}
	}
	return ds
}

// TestPropOneHotBlocksSumToOne: each categorical block of an encoded row
// has exactly one hot bit (for in-vocabulary values).
func TestPropOneHotBlocksSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 1+rng.Intn(50))
		enc := NewEncoder(ds.Schema)
		x, _ := enc.Encode(ds)
		nn := ds.Schema.NumNumeric()
		for r := 0; r < x.Dim(0); r++ {
			row := x.Row(r)
			// proto block: columns [nn, nn+3); flag block [nn+3, nn+5).
			s1 := row[nn] + row[nn+1] + row[nn+2]
			s2 := row[nn+3] + row[nn+4]
			if s1 != 1 || s2 != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropEncodePreservesNumeric: numeric features pass through
// untouched.
func TestPropEncodePreservesNumeric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 1+rng.Intn(30))
		enc := NewEncoder(ds.Schema)
		x, _ := enc.Encode(ds)
		for r := range ds.Records {
			for j, v := range ds.Records[r].Numeric {
				if x.At(r, j) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropScalerInverse: standardize then un-standardize recovers the
// original matrix.
func TestPropScalerInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 2+rng.Intn(40), 1+rng.Intn(6)
		x := tensor.RandNormal(rng, rng.NormFloat64()*5, 1+rng.Float64()*4, n, d)
		orig := x.Clone()
		s := FitScaler(x)
		s.Transform(x)
		// Invert: x*std + mean.
		for r := 0; r < n; r++ {
			row := x.Row(r)
			for c := range row {
				row[c] = row[c]*s.Std[c] + s.Mean[c]
			}
		}
		return tensor.ApproxEqual(x, orig, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropKFoldTrainTestDisjoint: train and test never overlap and cover
// everything, for any k and n.
func TestPropKFoldTrainTestDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		k := 2 + rng.Intn(8)
		folds := KFold(rng, n, k)
		for _, fd := range folds {
			seen := make(map[int]int, n)
			for _, i := range fd.Train {
				seen[i]++
			}
			for _, i := range fd.Test {
				seen[i] += 10
			}
			if len(seen) != n {
				return false
			}
			for _, v := range seen {
				if v != 1 && v != 10 {
					return false // duplicated or in both sets
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropStratifiedFoldClassBalance: per-fold class proportions stay
// within one record of the ideal share.
func TestPropStratifiedFoldClassBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(300)
		k := 2 + rng.Intn(4)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		classTotal := make([]int, 3)
		for _, y := range labels {
			classTotal[y]++
		}
		folds := StratifiedKFold(rng, labels, k)
		for _, fd := range folds {
			counts := make([]int, 3)
			for _, i := range fd.Test {
				counts[labels[i]]++
			}
			for c := 0; c < 3; c++ {
				ideal := float64(classTotal[c]) / float64(k)
				if math.Abs(float64(counts[c])-ideal) > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
