package data

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func testSchema() Schema {
	return Schema{
		NumericNames: []string{"duration", "bytes"},
		Categorical: []CategoricalFeature{
			{Name: "proto", Values: []string{"tcp", "udp", "icmp"}},
			{Name: "flag", Values: []string{"SF", "S0"}},
		},
		ClassNames: []string{"normal", "dos", "probe"},
	}
}

func testDataset() *Dataset {
	return &Dataset{
		Schema: testSchema(),
		Records: []Record{
			{Numeric: []float64{1.5, 100}, Categorical: []string{"tcp", "SF"}, Label: 0},
			{Numeric: []float64{0.1, 9000}, Categorical: []string{"udp", "S0"}, Label: 1},
			{Numeric: []float64{2.0, 50}, Categorical: []string{"icmp", "SF"}, Label: 2},
			{Numeric: []float64{0.4, 700}, Categorical: []string{"tcp", "S0"}, Label: 1},
		},
	}
}

func TestSchemaEncodedWidth(t *testing.T) {
	s := testSchema()
	if got := s.EncodedWidth(); got != 2+3+2 {
		t.Fatalf("EncodedWidth = %d, want 7", got)
	}
}

// TestSchemaSameFeatures pins the feature-layout comparison used to gate
// live-slot model swaps: identical layouts match, count-preserving
// mutations (renamed columns, swapped vocabulary entries) do not, and
// class renames are ignored.
func TestSchemaSameFeatures(t *testing.T) {
	base := testSchema()
	if !base.SameFeatures(testSchema()) {
		t.Fatal("identical schemas reported different")
	}
	relabeled := testSchema()
	relabeled.ClassNames = []string{"benign", "dos", "probe", "r2l"}
	if !base.SameFeatures(relabeled) {
		t.Fatal("class rename must not change the feature layout")
	}
	mutations := []func(*Schema){
		func(s *Schema) { s.NumericNames[1] = "packets" },
		func(s *Schema) { s.NumericNames = s.NumericNames[:1] },
		func(s *Schema) { s.Categorical[0].Name = "protocol" },
		func(s *Schema) { s.Categorical[0].Values[2] = "sctp" },
		func(s *Schema) { s.Categorical[1].Values = []string{"S0", "SF"} },
		func(s *Schema) { s.Categorical = s.Categorical[:1] },
	}
	for i, mutate := range mutations {
		m := testSchema()
		mutate(&m)
		if base.SameFeatures(m) {
			t.Fatalf("mutation %d preserved SameFeatures: %+v", i, m)
		}
	}
}

func TestSchemaValidateCatchesDuplicates(t *testing.T) {
	s := testSchema()
	s.NumericNames = append(s.NumericNames, "duration")
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate numeric name not caught")
	}
	s2 := testSchema()
	s2.Categorical[0].Values = []string{"tcp", "tcp"}
	if err := s2.Validate(); err == nil {
		t.Fatal("duplicate categorical value not caught")
	}
	s3 := testSchema()
	s3.ClassNames = []string{"only"}
	if err := s3.Validate(); err == nil {
		t.Fatal("single class not caught")
	}
}

func TestDatasetValidate(t *testing.T) {
	ds := testDataset()
	if err := ds.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	ds.Records[0].Label = 7
	if err := ds.Validate(); err == nil {
		t.Fatal("out-of-range label not caught")
	}
	ds2 := testDataset()
	ds2.Records[1].Numeric = []float64{1}
	if err := ds2.Validate(); err == nil {
		t.Fatal("wrong numeric width not caught")
	}
}

func TestClassCounts(t *testing.T) {
	got := testDataset().ClassCounts()
	want := []int{1, 2, 1}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("ClassCounts = %v, want %v", got, want)
		}
	}
}

func TestEncoderOneHotLayout(t *testing.T) {
	ds := testDataset()
	enc := NewEncoder(ds.Schema)
	if enc.Width() != 7 {
		t.Fatalf("Width = %d, want 7", enc.Width())
	}
	x, y := enc.Encode(ds)
	if x.Dim(0) != 4 || x.Dim(1) != 7 {
		t.Fatalf("encoded shape %v, want [4 7]", x.Shape())
	}
	// Record 0: tcp → col 2, SF → col 5.
	wantRow0 := []float64{1.5, 100, 1, 0, 0, 1, 0}
	for c, w := range wantRow0 {
		if x.At(0, c) != w {
			t.Fatalf("row 0 = %v, want %v", x.Row(0), wantRow0)
		}
	}
	// Record 1: udp → col 3, S0 → col 6.
	if x.At(1, 3) != 1 || x.At(1, 6) != 1 || x.At(1, 2) != 0 {
		t.Fatalf("row 1 one-hot wrong: %v", x.Row(1))
	}
	if y[1] != 1 || y[3] != 1 {
		t.Fatalf("labels = %v", y)
	}
}

func TestEncoderUnknownCategoryIsAllZeros(t *testing.T) {
	enc := NewEncoder(testSchema())
	r := Record{Numeric: []float64{1, 2}, Categorical: []string{"gre", "SF"}}
	row := make([]float64, enc.Width())
	enc.EncodeRecord(&r, row)
	if row[2] != 0 || row[3] != 0 || row[4] != 0 {
		t.Fatalf("unknown category should leave block zero: %v", row)
	}
	if row[5] != 1 {
		t.Fatalf("known category lost: %v", row)
	}
}

func TestEncoderFeatureNames(t *testing.T) {
	enc := NewEncoder(testSchema())
	names := enc.FeatureNames()
	if len(names) != 7 {
		t.Fatalf("got %d names, want 7", len(names))
	}
	if names[0] != "duration" || names[2] != "proto=tcp" || names[6] != "flag=S0" {
		t.Fatalf("names = %v", names)
	}
}

func TestScalerStandardizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 7, 3, 500, 4)
	s := FitScaler(x)
	s.Transform(x)
	for c := 0; c < 4; c++ {
		mean, sq := 0.0, 0.0
		for r := 0; r < 500; r++ {
			v := x.At(r, c)
			mean += v
			sq += v * v
		}
		mean /= 500
		std := math.Sqrt(sq/500 - mean*mean)
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean %v after scaling", c, mean)
		}
		if math.Abs(std-1) > 1e-9 {
			t.Fatalf("column %d std %v after scaling", c, std)
		}
	}
}

func TestScalerConstantColumnSafe(t *testing.T) {
	x := tensor.New(10, 2)
	for r := 0; r < 10; r++ {
		x.Set(5, r, 0) // constant column
		x.Set(float64(r), r, 1)
	}
	s := FitScaler(x)
	s.Transform(x)
	if !x.AllFinite() {
		t.Fatal("constant column produced non-finite values")
	}
	if x.At(0, 0) != 0 {
		t.Fatalf("constant column should center to 0, got %v", x.At(0, 0))
	}
}

func TestScalerTransformRecordMatchesMatrix(t *testing.T) {
	ds := testDataset()
	x, _, pipe := Preprocess(ds)
	row := pipe.Apply(&ds.Records[2])
	for c := range row {
		if math.Abs(row[c]-x.At(2, c)) > 1e-12 {
			t.Fatalf("pipeline single-record transform diverges at col %d: %v vs %v", c, row[c], x.At(2, c))
		}
	}
}

func TestKFoldPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, k := 103, 10
	folds := KFold(rng, n, k)
	if len(folds) != k {
		t.Fatalf("got %d folds, want %d", len(folds), k)
	}
	seen := make([]int, n)
	for _, f := range folds {
		if len(f.Train)+len(f.Test) != n {
			t.Fatalf("fold sizes %d+%d != %d", len(f.Train), len(f.Test), n)
		}
		for _, i := range f.Test {
			seen[i]++
		}
		// No overlap between train and test.
		inTest := map[int]bool{}
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatalf("index %d in both train and test", i)
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears in %d test folds, want 1", i, c)
		}
	}
}

func TestStratifiedKFoldPreservesRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := make([]int, 1000)
	for i := range labels {
		switch {
		case i < 700:
			labels[i] = 0
		case i < 950:
			labels[i] = 1
		default:
			labels[i] = 2
		}
	}
	folds := StratifiedKFold(rng, labels, 10)
	for fi, f := range folds {
		counts := [3]int{}
		for _, i := range f.Test {
			counts[labels[i]]++
		}
		if counts[0] != 70 || counts[1] != 25 || counts[2] != 5 {
			t.Fatalf("fold %d class counts %v, want [70 25 5]", fi, counts)
		}
	}
}

func TestStratifiedKFoldEveryIndexTestedOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(4)
		}
		folds := StratifiedKFold(rng, labels, 5)
		seen := make([]int, n)
		for _, fd := range folds {
			for _, i := range fd.Test {
				seen[i]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	labels := make([]int, 100)
	for i := range labels {
		labels[i] = i % 2
	}
	f := TrainTestSplit(rng, labels, 0.2)
	if len(f.Test) != 20 || len(f.Train) != 80 {
		t.Fatalf("split sizes %d/%d, want 80/20", len(f.Train), len(f.Test))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := testDataset()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, ds.Schema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("round trip lost records: %d vs %d", got.Len(), ds.Len())
	}
	for i := range ds.Records {
		a, b := ds.Records[i], got.Records[i]
		if a.Label != b.Label {
			t.Fatalf("record %d label %d vs %d", i, a.Label, b.Label)
		}
		for j := range a.Numeric {
			if a.Numeric[j] != b.Numeric[j] {
				t.Fatalf("record %d numeric %d differs", i, j)
			}
		}
		for j := range a.Categorical {
			if a.Categorical[j] != b.Categorical[j] {
				t.Fatalf("record %d categorical %d differs", i, j)
			}
		}
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	buf := bytes.NewBufferString("x,y,label\n1,2,normal\n")
	if _, err := ReadCSV(buf, testSchema()); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestReadCSVRejectsUnknownClass(t *testing.T) {
	ds := testDataset()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	s := buf.String()
	s = s[:len(s)-len("dos\n")] + "alien\n"
	if _, err := ReadCSV(bytes.NewBufferString(s), ds.Schema); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestSubset(t *testing.T) {
	ds := testDataset()
	sub := ds.Subset([]int{2, 0})
	if sub.Len() != 2 || sub.Records[0].Label != 2 || sub.Records[1].Label != 0 {
		t.Fatalf("Subset wrong: %+v", sub.Records)
	}
}
