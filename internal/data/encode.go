package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Encoder converts raw records into a dense numeric matrix: numeric
// features pass through, categorical features one-hot expand — the
// equivalent of pandas get_dummies the paper uses for Step 1 of
// preprocessing (§V-A).
type Encoder struct {
	schema Schema
	// catOffset[k] is the first encoded column of categorical feature k.
	catOffset []int
	// valueIdx[k][value] is the within-feature column of that value.
	valueIdx []map[string]int
	width    int
}

// NewEncoder builds an encoder for the schema.
func NewEncoder(schema Schema) *Encoder {
	e := &Encoder{
		schema:    schema,
		catOffset: make([]int, len(schema.Categorical)),
		valueIdx:  make([]map[string]int, len(schema.Categorical)),
	}
	off := len(schema.NumericNames)
	for k, c := range schema.Categorical {
		e.catOffset[k] = off
		idx := make(map[string]int, len(c.Values))
		for i, v := range c.Values {
			idx[v] = i
		}
		e.valueIdx[k] = idx
		off += len(c.Values)
	}
	e.width = off
	return e
}

// Width returns the encoded feature count.
func (e *Encoder) Width() int { return e.width }

// FeatureNames returns the encoded column names in order: numeric names,
// then "<feature>=<value>" per one-hot column.
func (e *Encoder) FeatureNames() []string {
	out := make([]string, 0, e.width)
	out = append(out, e.schema.NumericNames...)
	for _, c := range e.schema.Categorical {
		for _, v := range c.Values {
			out = append(out, c.Name+"="+v)
		}
	}
	return out
}

// EncodeRecord writes one record into dst (length Width). Unknown
// categorical values leave their block all-zero.
func (e *Encoder) EncodeRecord(r *Record, dst []float64) {
	if len(dst) != e.width {
		panic(fmt.Sprintf("data: EncodeRecord dst length %d, want %d", len(dst), e.width))
	}
	for i := range dst {
		dst[i] = 0
	}
	copy(dst, r.Numeric)
	for k, v := range r.Categorical {
		if i, ok := e.valueIdx[k][v]; ok {
			dst[e.catOffset[k]+i] = 1
		}
	}
}

// Encode converts a whole dataset into an (N, Width) matrix and its labels.
func (e *Encoder) Encode(d *Dataset) (*tensor.Tensor, []int) {
	x := tensor.New(d.Len(), e.width)
	y := make([]int, d.Len())
	for i := range d.Records {
		e.EncodeRecord(&d.Records[i], x.Row(i))
		y[i] = d.Records[i].Label
	}
	return x, y
}

// Scaler standardizes features to zero mean and unit variance — Step 2 of
// the paper's preprocessing. Constant columns are left unscaled (std
// clamped to 1) so one-hot columns that never vary don't blow up.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-column mean and standard deviation of x.
func FitScaler(x *tensor.Tensor) *Scaler {
	rows, cols := x.Dim(0), x.Dim(1)
	s := &Scaler{Mean: make([]float64, cols), Std: make([]float64, cols)}
	if rows == 0 {
		for c := range s.Std {
			s.Std[c] = 1
		}
		return s
	}
	for r := 0; r < rows; r++ {
		row := x.Row(r)
		for c, v := range row {
			s.Mean[c] += v
		}
	}
	inv := 1.0 / float64(rows)
	for c := range s.Mean {
		s.Mean[c] *= inv
	}
	for r := 0; r < rows; r++ {
		row := x.Row(r)
		for c, v := range row {
			d := v - s.Mean[c]
			s.Std[c] += d * d
		}
	}
	for c := range s.Std {
		s.Std[c] = math.Sqrt(s.Std[c] * inv)
		if s.Std[c] < 1e-9 {
			s.Std[c] = 1
		}
	}
	return s
}

// Transform standardizes x in place using the fitted moments.
func (s *Scaler) Transform(x *tensor.Tensor) {
	rows, cols := x.Dim(0), x.Dim(1)
	if cols != len(s.Mean) {
		panic(fmt.Sprintf("data: Scaler fitted on %d columns, got %d", len(s.Mean), cols))
	}
	for r := 0; r < rows; r++ {
		row := x.Row(r)
		for c := range row {
			row[c] = (row[c] - s.Mean[c]) / s.Std[c]
		}
	}
}

// TransformRecord standardizes a single encoded row in place.
func (s *Scaler) TransformRecord(row []float64) {
	if len(row) != len(s.Mean) {
		panic(fmt.Sprintf("data: Scaler fitted on %d columns, got %d", len(s.Mean), len(row)))
	}
	for c := range row {
		row[c] = (row[c] - s.Mean[c]) / s.Std[c]
	}
}

// Pipeline bundles the fitted encoder and scaler so the exact training
// transform can be replayed on live traffic (used by the nids package).
type Pipeline struct {
	Enc    *Encoder
	Scaler *Scaler
}

// Preprocess runs the paper's full preprocessing on a dataset: one-hot
// encode, then fit a scaler on the encoded matrix and standardize it.
// It returns the matrix, labels and the fitted pipeline.
func Preprocess(d *Dataset) (*tensor.Tensor, []int, *Pipeline) {
	enc := NewEncoder(d.Schema)
	x, y := enc.Encode(d)
	sc := FitScaler(x)
	sc.Transform(x)
	return x, y, &Pipeline{Enc: enc, Scaler: sc}
}

// Width returns the encoded feature width the pipeline produces.
func (p *Pipeline) Width() int { return p.Enc.Width() }

// Apply preprocesses a single record with the fitted pipeline, returning
// its standardized feature vector.
func (p *Pipeline) Apply(r *Record) []float64 {
	row := make([]float64, p.Enc.Width())
	p.ApplyInto(r, row)
	return row
}

// ApplyInto preprocesses r into row (length Width) without allocating —
// the hot-path variant used by batched scoring.
func (p *Pipeline) ApplyInto(r *Record, row []float64) {
	p.Enc.EncodeRecord(r, row)
	p.Scaler.TransformRecord(row)
}
