package data

import (
	"fmt"
	"math/rand"
)

// Fold is one train/test split of record indices.
type Fold struct {
	Train []int
	Test  []int
}

// KFold splits n records into k cross-validation folds (paper §V-A Step 3,
// k = 10): fold i's test set is the i-th shard, its training set the other
// k−1 shards. Indices are shuffled with rng first.
func KFold(rng *rand.Rand, n, k int) []Fold {
	if k < 2 || k > n {
		panic(fmt.Sprintf("data: KFold k=%d invalid for n=%d", k, n))
	}
	idx := rand.Perm(n)
	if rng != nil {
		idx = rng.Perm(n)
	}
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := make([]int, hi-lo)
		copy(test, idx[lo:hi])
		train := make([]int, 0, n-(hi-lo))
		train = append(train, idx[:lo]...)
		train = append(train, idx[hi:]...)
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds
}

// StratifiedKFold splits records into k folds preserving per-class
// proportions, which matters for the rare attack classes (U2R is 0.3% of
// NSL-KDD; Worms is 0.07% of UNSW-NB15).
func StratifiedKFold(rng *rand.Rand, labels []int, k int) []Fold {
	n := len(labels)
	if k < 2 || k > n {
		panic(fmt.Sprintf("data: StratifiedKFold k=%d invalid for n=%d", k, n))
	}
	// Bucket indices by class, shuffle within class, then deal them
	// round-robin into folds.
	byClass := map[int][]int{}
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}
	testOf := make([][]int, k)
	classes := make([]int, 0, len(byClass))
	for y := range byClass {
		classes = append(classes, y)
	}
	// Deterministic class order (map iteration is random).
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			if classes[j] < classes[i] {
				classes[i], classes[j] = classes[j], classes[i]
			}
		}
	}
	for _, y := range classes {
		idx := byClass[y]
		if rng != nil {
			rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		}
		for j, rec := range idx {
			f := j % k
			testOf[f] = append(testOf[f], rec)
		}
	}
	folds := make([]Fold, k)
	inTest := make([]int, n) // fold index + 1, 0 = unassigned
	for f, test := range testOf {
		for _, i := range test {
			inTest[i] = f + 1
		}
	}
	for f := 0; f < k; f++ {
		train := make([]int, 0, n-len(testOf[f]))
		for i := 0; i < n; i++ {
			if inTest[i] != f+1 {
				train = append(train, i)
			}
		}
		folds[f] = Fold{Train: train, Test: testOf[f]}
	}
	return folds
}

// TrainTestSplit returns a single split with the given test fraction,
// stratified by label.
func TrainTestSplit(rng *rand.Rand, labels []int, testFrac float64) Fold {
	if testFrac <= 0 || testFrac >= 1 {
		panic(fmt.Sprintf("data: TrainTestSplit fraction %v outside (0,1)", testFrac))
	}
	k := int(1 / testFrac)
	if k < 2 {
		k = 2
	}
	folds := StratifiedKFold(rng, labels, k)
	return folds[0]
}
