// Package data provides the dataset substrate for the reproduction: raw
// records with mixed numeric/categorical features, the one-hot encoder
// (pandas get_dummies equivalent), standardization, stratified k-fold
// cross-validation, and CSV import/export — the full preprocessing pipeline
// of paper §V-A.
package data

import (
	"fmt"
)

// CategoricalFeature names a categorical column and enumerates its
// vocabulary. Values outside the vocabulary encode as all-zeros (the
// get_dummies behaviour for unseen categories at transform time).
type CategoricalFeature struct {
	Name   string
	Values []string
}

// Schema describes a dataset's raw feature layout and its classes. Class 0
// is, by convention throughout this repository, the Normal (non-attack)
// class.
type Schema struct {
	NumericNames []string
	Categorical  []CategoricalFeature
	ClassNames   []string
}

// NumNumeric returns the count of numeric features.
func (s Schema) NumNumeric() int { return len(s.NumericNames) }

// EncodedWidth returns the feature count after one-hot encoding: numeric
// features plus the sum of categorical vocabulary sizes.
func (s Schema) EncodedWidth() int {
	w := len(s.NumericNames)
	for _, c := range s.Categorical {
		w += len(c.Values)
	}
	return w
}

// NumClasses returns the number of classes.
func (s Schema) NumClasses() int { return len(s.ClassNames) }

// SameFeatures reports whether two schemas describe the identical feature
// layout: the same numeric feature names in the same order, and the same
// categorical features with identical vocabularies in the same order. Two
// schemas that merely agree on feature *counts* can still one-hot encode
// the same record to different vectors (renamed columns, re-ordered or
// re-fitted vocabularies), so shape checks that gate model swaps must use
// this, not NumNumeric/len(Categorical). Class names are deliberately not
// compared: a retrain may relabel classes without changing how records
// encode.
func (s Schema) SameFeatures(o Schema) bool {
	if len(s.NumericNames) != len(o.NumericNames) || len(s.Categorical) != len(o.Categorical) {
		return false
	}
	for i, n := range s.NumericNames {
		if o.NumericNames[i] != n {
			return false
		}
	}
	for i, c := range s.Categorical {
		oc := o.Categorical[i]
		if c.Name != oc.Name || len(c.Values) != len(oc.Values) {
			return false
		}
		for j, v := range c.Values {
			if oc.Values[j] != v {
				return false
			}
		}
	}
	return true
}

// Validate checks internal consistency of the schema.
func (s Schema) Validate() error {
	if len(s.ClassNames) < 2 {
		return fmt.Errorf("schema needs at least 2 classes, has %d", len(s.ClassNames))
	}
	seen := make(map[string]bool, len(s.NumericNames))
	for _, n := range s.NumericNames {
		if seen[n] {
			return fmt.Errorf("duplicate numeric feature %q", n)
		}
		seen[n] = true
	}
	for _, c := range s.Categorical {
		if seen[c.Name] {
			return fmt.Errorf("duplicate feature %q", c.Name)
		}
		seen[c.Name] = true
		if len(c.Values) == 0 {
			return fmt.Errorf("categorical feature %q has empty vocabulary", c.Name)
		}
		vseen := make(map[string]bool, len(c.Values))
		for _, v := range c.Values {
			if vseen[v] {
				return fmt.Errorf("categorical feature %q has duplicate value %q", c.Name, v)
			}
			vseen[v] = true
		}
	}
	return nil
}

// Record is one raw traffic record: numeric feature values, one value per
// categorical feature, and a class label index into Schema.ClassNames.
type Record struct {
	Numeric     []float64
	Categorical []string
	Label       int
}

// Dataset couples a schema with its records.
type Dataset struct {
	Schema  Schema
	Records []Record
}

// Len returns the record count.
func (d *Dataset) Len() int { return len(d.Records) }

// Labels returns a fresh slice of all record labels.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Label
	}
	return out
}

// ClassCounts returns the number of records per class.
func (d *Dataset) ClassCounts() []int {
	out := make([]int, d.Schema.NumClasses())
	for _, r := range d.Records {
		if r.Label >= 0 && r.Label < len(out) {
			out[r.Label]++
		}
	}
	return out
}

// Validate checks every record against the schema.
func (d *Dataset) Validate() error {
	if err := d.Schema.Validate(); err != nil {
		return err
	}
	nn, nc, k := d.Schema.NumNumeric(), len(d.Schema.Categorical), d.Schema.NumClasses()
	for i, r := range d.Records {
		if len(r.Numeric) != nn {
			return fmt.Errorf("record %d: %d numeric values, schema has %d", i, len(r.Numeric), nn)
		}
		if len(r.Categorical) != nc {
			return fmt.Errorf("record %d: %d categorical values, schema has %d", i, len(r.Categorical), nc)
		}
		if r.Label < 0 || r.Label >= k {
			return fmt.Errorf("record %d: label %d out of range [0, %d)", i, r.Label, k)
		}
	}
	return nil
}

// Subset returns a new dataset containing the records at idx (records are
// shared, not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Schema: d.Schema, Records: make([]Record, len(idx))}
	for i, j := range idx {
		out.Records[i] = d.Records[j]
	}
	return out
}
