package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and then
// zeroes the gradients.
type Optimizer interface {
	Step(params []*Param)
}

// paramState keys per-parameter optimizer state by the parameter pointer.
type paramState map[*Param]*tensor.Tensor

func (s paramState) get(p *Param) *tensor.Tensor {
	st, ok := s[p]
	if !ok {
		st = tensor.New(p.Value.Shape()...)
		s[p] = st
	}
	return st
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	MaxNorm  float64 // global gradient-norm clip; <= 0 disables

	base     float64 // construction-time LR, captured for schedules
	velocity paramState
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: paramState{}}
}

var _ Optimizer = (*SGD)(nil)

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	ClipGradNorm(params, o.MaxNorm)
	for _, p := range params {
		if o.Momentum > 0 {
			v := o.velocity.get(p)
			vd, gd, wd := v.Data(), p.Grad.Data(), p.Value.Data()
			for i := range vd {
				vd[i] = o.Momentum*vd[i] - o.LR*gd[i]
				wd[i] += vd[i]
			}
		} else {
			p.Value.Axpy(-o.LR, p.Grad)
		}
		p.ZeroGrad()
	}
}

// RMSprop is the optimizer the paper trains every network with (§V-C,
// Table I: learning rate 0.01). It divides the gradient by a running
// average of its recent magnitude.
type RMSprop struct {
	LR      float64
	Rho     float64
	Eps     float64
	MaxNorm float64 // global gradient-norm clip; <= 0 disables

	base  float64 // construction-time LR, captured for schedules
	cache paramState
}

// NewRMSprop constructs an RMSprop optimizer with Keras defaults
// (rho 0.9, eps 1e-7).
func NewRMSprop(lr float64) *RMSprop {
	return &RMSprop{LR: lr, Rho: 0.9, Eps: 1e-7, cache: paramState{}}
}

var _ Optimizer = (*RMSprop)(nil)

// Step implements Optimizer.
func (o *RMSprop) Step(params []*Param) {
	ClipGradNorm(params, o.MaxNorm)
	for _, p := range params {
		c := o.cache.get(p)
		cd, gd, wd := c.Data(), p.Grad.Data(), p.Value.Data()
		for i := range cd {
			g := gd[i]
			cd[i] = o.Rho*cd[i] + (1-o.Rho)*g*g
			wd[i] -= o.LR * g / (math.Sqrt(cd[i]) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// Adam is the adaptive-moment optimizer, provided for ablations.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	MaxNorm float64

	base float64 // construction-time LR, captured for schedules
	m, v paramState
	t    int
}

// NewAdam constructs an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, m: paramState{}, v: paramState{}}
}

var _ Optimizer = (*Adam)(nil)

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	ClipGradNorm(params, o.MaxNorm)
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m.get(p)
		v := o.v.get(p)
		md, vd, gd, wd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
		for i := range md {
			g := gd[i]
			md[i] = o.Beta1*md[i] + (1-o.Beta1)*g
			vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g*g
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			wd[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// AdaDelta is the parameter-free-learning-rate optimizer mentioned in the
// paper's discussion of gradient-descent algorithms (§III).
type AdaDelta struct {
	Rho     float64
	Eps     float64
	MaxNorm float64

	accGrad  paramState
	accDelta paramState
}

// NewAdaDelta constructs an AdaDelta optimizer with standard defaults.
func NewAdaDelta() *AdaDelta {
	return &AdaDelta{Rho: 0.95, Eps: 1e-6, accGrad: paramState{}, accDelta: paramState{}}
}

var _ Optimizer = (*AdaDelta)(nil)

// Step implements Optimizer.
func (o *AdaDelta) Step(params []*Param) {
	ClipGradNorm(params, o.MaxNorm)
	for _, p := range params {
		ag := o.accGrad.get(p)
		ad := o.accDelta.get(p)
		agd, add, gd, wd := ag.Data(), ad.Data(), p.Grad.Data(), p.Value.Data()
		for i := range agd {
			g := gd[i]
			agd[i] = o.Rho*agd[i] + (1-o.Rho)*g*g
			delta := -math.Sqrt(add[i]+o.Eps) / math.Sqrt(agd[i]+o.Eps) * g
			add[i] = o.Rho*add[i] + (1-o.Rho)*delta*delta
			wd[i] += delta
		}
		p.ZeroGrad()
	}
}
