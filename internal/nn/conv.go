package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Padding selects how Conv1D handles sequence boundaries.
type Padding int

const (
	// PaddingSame zero-pads so the output has the same length as the input
	// (Keras "same"). This is what the paper's blocks require so the
	// residual add shapes line up.
	PaddingSame Padding = iota + 1
	// PaddingValid performs no padding; output length is T − K + 1.
	PaddingValid
)

// Conv1D is a 1-D convolution over (batch, timesteps, channels) inputs with
// stride 1. The kernel has shape (K, inC, outC); bias has shape (outC).
type Conv1D struct {
	InC, OutC, K int
	Pad          Padding

	w *Param // (K, inC, outC), stored as K slabs of (inC, outC)
	b *Param // (outC)

	x *tensor.Tensor // cached input (B, T, inC)

	out *tensor.Tensor // reused output buffer (valid until next Forward)
	dx  *tensor.Tensor // reused gradient buffer

	// Reused view headers for the flattened-GEMM paths.
	wview, gwview *tensor.Tensor // kernel tap views (value / grad)
	xview, oview  *tensor.Tensor
	gview, dxview *tensor.Tensor
}

// NewConv1D constructs a Conv1D layer with Glorot-uniform weights
// (fanIn = K·inC, fanOut = K·outC, matching Keras) and zero bias.
func NewConv1D(rng *rand.Rand, inC, outC, k int, pad Padding) *Conv1D {
	if k < 1 {
		panic(fmt.Sprintf("nn: Conv1D kernel size %d < 1", k))
	}
	return &Conv1D{
		InC: inC, OutC: outC, K: k, Pad: pad,
		w: NewParam(fmt.Sprintf("conv1d_w_%dx%dx%d", k, inC, outC),
			tensor.GlorotUniform(rng, k*inC, k*outC, k, inC, outC)),
		b: NewParam(fmt.Sprintf("conv1d_b_%d", outC), tensor.New(outC)),
	}
}

var _ Layer = (*Conv1D)(nil)

// outLen returns the output sequence length for input length t.
func (l *Conv1D) outLen(t int) int {
	if l.Pad == PaddingSame {
		return t
	}
	out := t - l.K + 1
	if out < 0 {
		out = 0
	}
	return out
}

// leftPad returns the number of (virtual) zero frames prepended under
// "same" padding: the Keras convention floor((K-1)/2).
func (l *Conv1D) leftPad() int {
	if l.Pad == PaddingSame {
		return (l.K - 1) / 2
	}
	return 0
}

// wSlab returns tap k of kernel tensor val as an (inC, outC) matrix view,
// reusing the header at *hdr across calls.
func (l *Conv1D) wSlab(hdr **tensor.Tensor, val *tensor.Tensor, k int) *tensor.Tensor {
	sz := l.InC * l.OutC
	*hdr = tensor.BindView(*hdr, val.Data()[k*sz:(k+1)*sz], l.InC, l.OutC)
	return *hdr
}

// fullTap reports whether tap k is the only contributing tap and covers
// the entire output and input ranges, so the tap's GEMM can read x and
// write out directly with no gather/scatter. This is always the case for
// the paper's T=1 inputs (one tap survives the padding arithmetic).
func (l *Conv1D) fullTap(t, to, pad int) (tap int, ok bool) {
	tap = -1
	for k := 0; k < l.K; k++ {
		t0lo, t0hi := validOutRange(to, t, k, pad)
		if t0lo >= t0hi {
			continue
		}
		if tap >= 0 {
			return -1, false // more than one contributing tap
		}
		if t0lo != 0 || t0hi != to || t0hi-t0lo != t {
			return -1, false // partial coverage
		}
		tap = k
	}
	return tap, tap >= 0
}

// Forward implements Layer.
//
// The convolution is evaluated as a sum over kernel taps of shifted GEMMs:
// out[:, t, :] += x[:, t+k-pad, :] @ W[k]. For each tap the contributing
// rows of every batch item are gathered into one contiguous matrix so the
// whole batch runs through a single parallel GEMM (per-item micro-GEMMs
// are far too small to parallelize). When exactly one tap contributes and
// it spans the full sequence, the GEMM reads x and writes out directly.
func (l *Conv1D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank("Conv1D", x, 3)
	if x.Dim(2) != l.InC {
		panic(fmt.Sprintf("nn: Conv1D expects %d input channels, got shape %v", l.InC, x.Shape()))
	}
	l.x = x
	b, t := x.Dim(0), x.Dim(1)
	to := l.outLen(t)
	out := ensure(&l.out, b, to, l.OutC)
	pad := l.leftPad()

	xd := x.Data()
	od := out.Data()
	if tap, ok := l.fullTap(t, to, pad); ok {
		l.xview = tensor.BindView(l.xview, xd, b*t, l.InC)
		l.oview = tensor.BindView(l.oview, od, b*to, l.OutC)
		tensor.MatMulInto(l.oview, l.xview, l.wSlab(&l.wview, l.w.Value, tap))
		l.oview.AddRowVec(l.b.Value)
		return out
	}

	out.Zero()
	for k := 0; k < l.K; k++ {
		t0lo, t0hi := validOutRange(to, t, k, pad)
		if t0lo >= t0hi {
			continue
		}
		rows := t0hi - t0lo
		tiLo := t0lo + k - pad
		wk := l.wSlab(&l.wview, l.w.Value, k)

		// Gather the contributing input rows of all batch items.
		xin := tensor.Scratch.Get(b*rows, l.InC)
		xind := xin.Data()
		for bi := 0; bi < b; bi++ {
			copy(xind[bi*rows*l.InC:(bi+1)*rows*l.InC],
				xd[(bi*t+tiLo)*l.InC:(bi*t+tiLo+rows)*l.InC])
		}
		part := tensor.Scratch.Get(b*rows, l.OutC)
		tensor.MatMulInto(part, xin, wk)
		// Scatter-add into the output band of each batch item.
		pd := part.Data()
		for bi := 0; bi < b; bi++ {
			dst := od[(bi*to+t0lo)*l.OutC : (bi*to+t0hi)*l.OutC]
			src := pd[bi*rows*l.OutC : (bi+1)*rows*l.OutC]
			for i, v := range src {
				dst[i] += v
			}
		}
		tensor.Scratch.Put(part)
		tensor.Scratch.Put(xin)
	}
	l.oview = tensor.BindView(l.oview, od, b*to, l.OutC)
	l.oview.AddRowVec(l.b.Value)
	return out
}

// validOutRange returns the half-open range of output steps t0 for which
// input step t0+k−pad lies in [0, t).
func validOutRange(to, t, k, pad int) (lo, hi int) {
	lo = pad - k
	if lo < 0 {
		lo = 0
	}
	hi = t - 1 + pad - k
	if hi > to-1 {
		hi = to - 1
	}
	return lo, hi + 1
}

// Backward implements Layer.
func (l *Conv1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	mustRank("Conv1D.Backward", grad, 3)
	b, t := l.x.Dim(0), l.x.Dim(1)
	to := l.outLen(t)
	if grad.Dim(0) != b || grad.Dim(1) != to || grad.Dim(2) != l.OutC {
		panic(fmt.Sprintf("nn: Conv1D.Backward grad shape %v, want [%d %d %d]", grad.Shape(), b, to, l.OutC))
	}
	pad := l.leftPad()
	dx := ensure(&l.dx, b, t, l.InC)

	xd, gd, dxd := l.x.Data(), grad.Data(), dx.Data()

	// Bias gradient: sum over batch and time.
	l.gview = tensor.BindView(l.gview, gd, b*to, l.OutC)
	db := tensor.Scratch.Get(l.OutC)
	tensor.SumRowsInto(db, l.gview)
	l.b.Grad.Axpy(1, db)
	tensor.Scratch.Put(db)

	if tap, ok := l.fullTap(t, to, pad); ok {
		l.xview = tensor.BindView(l.xview, xd, b*t, l.InC)
		l.dxview = tensor.BindView(l.dxview, dxd, b*t, l.InC)

		// dW[tap] += xᵀ @ grad
		dwPart := tensor.Scratch.Get(l.InC, l.OutC)
		tensor.MatMulTransAInto(dwPart, l.xview, l.gview)
		l.wSlab(&l.gwview, l.w.Grad, tap).Axpy(1, dwPart)
		tensor.Scratch.Put(dwPart)

		// dx = grad @ W[tap]ᵀ, written directly (full coverage).
		tensor.MatMulTransBInto(l.dxview, l.gview, l.wSlab(&l.wview, l.w.Value, tap))
		return dx
	}

	dx.Zero()
	for k := 0; k < l.K; k++ {
		t0lo, t0hi := validOutRange(to, t, k, pad)
		if t0lo >= t0hi {
			continue
		}
		rows := t0hi - t0lo
		tiLo := t0lo + k - pad
		wk := l.wSlab(&l.wview, l.w.Value, k)
		dwk := l.wSlab(&l.gwview, l.w.Grad, k)

		// Gather contributing input rows and gradient rows batch-wide.
		xin := tensor.Scratch.Get(b*rows, l.InC)
		gslab := tensor.Scratch.Get(b*rows, l.OutC)
		xind, gsd := xin.Data(), gslab.Data()
		for bi := 0; bi < b; bi++ {
			copy(xind[bi*rows*l.InC:(bi+1)*rows*l.InC],
				xd[(bi*t+tiLo)*l.InC:(bi*t+tiLo+rows)*l.InC])
			copy(gsd[bi*rows*l.OutC:(bi+1)*rows*l.OutC],
				gd[(bi*to+t0lo)*l.OutC:(bi*to+t0hi)*l.OutC])
		}

		// dW[k] += xinᵀ @ gslab
		dwPart := tensor.Scratch.Get(l.InC, l.OutC)
		tensor.MatMulTransAInto(dwPart, xin, gslab)
		dwk.Axpy(1, dwPart)
		tensor.Scratch.Put(dwPart)

		// dx bands += gslab @ W[k]ᵀ
		dxPart := tensor.Scratch.Get(b*rows, l.InC)
		tensor.MatMulTransBInto(dxPart, gslab, wk)
		dpd := dxPart.Data()
		for bi := 0; bi < b; bi++ {
			dst := dxd[(bi*t+tiLo)*l.InC : (bi*t+tiLo+rows)*l.InC]
			src := dpd[bi*rows*l.InC : (bi+1)*rows*l.InC]
			for i, v := range src {
				dst[i] += v
			}
		}
		tensor.Scratch.Put(dxPart)
		tensor.Scratch.Put(gslab)
		tensor.Scratch.Put(xin)
	}
	return dx
}

// Params implements Layer.
func (l *Conv1D) Params() []*Param { return []*Param{l.w, l.b} }

// LayerName implements Named.
func (l *Conv1D) LayerName() string {
	return fmt.Sprintf("Conv1D(k=%d, %d→%d)", l.K, l.InC, l.OutC)
}

// MaxPool1D downsamples (batch, T, C) inputs by taking the max over
// non-overlapping windows of size Pool along the time axis. If T is not a
// multiple of Pool the tail partial window is still pooled (ceil division),
// and if Pool exceeds T the whole sequence is pooled to length 1 — this
// mirrors how the paper's degenerate T=1 inputs behave.
type MaxPool1D struct {
	Pool int

	argmax []int // flat input index chosen for each output element
	inB    int
	inT    int
	inC    int

	out *tensor.Tensor // reused output buffer (valid until next Forward)
	dx  *tensor.Tensor // reused gradient buffer
}

// NewMaxPool1D constructs a MaxPool1D layer with the given window size.
func NewMaxPool1D(pool int) *MaxPool1D {
	if pool < 1 {
		panic(fmt.Sprintf("nn: MaxPool1D pool size %d < 1", pool))
	}
	return &MaxPool1D{Pool: pool}
}

var _ Layer = (*MaxPool1D)(nil)

// outLen returns ceil(t / pool).
func (l *MaxPool1D) outLen(t int) int { return (t + l.Pool - 1) / l.Pool }

// Forward implements Layer.
func (l *MaxPool1D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank("MaxPool1D", x, 3)
	b, t, c := x.Dim(0), x.Dim(1), x.Dim(2)
	to := l.outLen(t)
	l.inB, l.inT, l.inC = b, t, c
	out := ensure(&l.out, b, to, c)
	if cap(l.argmax) < out.Len() {
		l.argmax = make([]int, out.Len())
	}
	l.argmax = l.argmax[:out.Len()]

	xd, od := x.Data(), out.Data()
	for bi := 0; bi < b; bi++ {
		for t0 := 0; t0 < to; t0++ {
			lo := t0 * l.Pool
			hi := lo + l.Pool
			if hi > t {
				hi = t
			}
			for ci := 0; ci < c; ci++ {
				bestIdx := (bi*t+lo)*c + ci
				best := xd[bestIdx]
				for ti := lo + 1; ti < hi; ti++ {
					idx := (bi*t+ti)*c + ci
					if xd[idx] > best {
						best, bestIdx = xd[idx], idx
					}
				}
				oi := (bi*to+t0)*c + ci
				od[oi] = best
				l.argmax[oi] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *MaxPool1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := ensureZeroed(&l.dx, l.inB, l.inT, l.inC)
	dxd, gd := dx.Data(), grad.Data()
	for oi, g := range gd {
		dxd[l.argmax[oi]] += g
	}
	return dx
}

// Params implements Layer.
func (l *MaxPool1D) Params() []*Param { return nil }

// LayerName implements Named.
func (l *MaxPool1D) LayerName() string { return fmt.Sprintf("MaxPool1D(%d)", l.Pool) }

// GlobalAvgPool1D reduces (batch, T, C) to (batch, C) by averaging over the
// time axis — the paper's head layer before the final Dense.
type GlobalAvgPool1D struct {
	inT int
	inB int
	inC int

	out *tensor.Tensor // reused output buffer (valid until next Forward)
	dx  *tensor.Tensor // reused gradient buffer
}

// NewGlobalAvgPool1D constructs a GlobalAvgPool1D layer.
func NewGlobalAvgPool1D() *GlobalAvgPool1D { return &GlobalAvgPool1D{} }

var _ Layer = (*GlobalAvgPool1D)(nil)

// Forward implements Layer.
func (l *GlobalAvgPool1D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank("GlobalAvgPool1D", x, 3)
	b, t, c := x.Dim(0), x.Dim(1), x.Dim(2)
	l.inB, l.inT, l.inC = b, t, c
	out := ensureZeroed(&l.out, b, c)
	xd, od := x.Data(), out.Data()
	inv := 1.0 / float64(t)
	for bi := 0; bi < b; bi++ {
		orow := od[bi*c : (bi+1)*c]
		for ti := 0; ti < t; ti++ {
			xrow := xd[(bi*t+ti)*c : (bi*t+ti+1)*c]
			for ci, v := range xrow {
				orow[ci] += v * inv
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *GlobalAvgPool1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	mustRank("GlobalAvgPool1D.Backward", grad, 2)
	dx := ensure(&l.dx, l.inB, l.inT, l.inC)
	gd, dxd := grad.Data(), dx.Data()
	inv := 1.0 / float64(l.inT)
	for bi := 0; bi < l.inB; bi++ {
		grow := gd[bi*l.inC : (bi+1)*l.inC]
		for ti := 0; ti < l.inT; ti++ {
			drow := dxd[(bi*l.inT+ti)*l.inC : (bi*l.inT+ti+1)*l.inC]
			for ci, g := range grow {
				drow[ci] = g * inv
			}
		}
	}
	return dx
}

// Params implements Layer.
func (l *GlobalAvgPool1D) Params() []*Param { return nil }

// LayerName implements Named.
func (l *GlobalAvgPool1D) LayerName() string { return "GlobalAvgPool1D" }
