package nn

import (
	"math"
)

// LRSchedule maps an epoch (1-based) to a learning-rate multiplier applied
// to the optimizer's base rate. Schedules let the scaled experiment
// profiles converge in few epochs without touching the paper's Table I
// base rate.
type LRSchedule interface {
	// Factor returns the multiplier for the given epoch and total epochs.
	Factor(epoch, totalEpochs int) float64
}

// ConstantLR keeps the base rate throughout.
type ConstantLR struct{}

// Factor implements LRSchedule.
func (ConstantLR) Factor(int, int) float64 { return 1 }

// StepDecay multiplies the rate by Gamma every StepEpochs.
type StepDecay struct {
	StepEpochs int
	Gamma      float64
}

// Factor implements LRSchedule.
func (s StepDecay) Factor(epoch, _ int) float64 {
	if s.StepEpochs <= 0 || s.Gamma <= 0 {
		return 1
	}
	return math.Pow(s.Gamma, float64((epoch-1)/s.StepEpochs))
}

// CosineDecay anneals the rate from 1 to Floor over the full run.
type CosineDecay struct {
	Floor float64
}

// Factor implements LRSchedule.
func (c CosineDecay) Factor(epoch, totalEpochs int) float64 {
	if totalEpochs <= 1 {
		return 1
	}
	progress := float64(epoch-1) / float64(totalEpochs-1)
	return c.Floor + (1-c.Floor)*0.5*(1+math.Cos(math.Pi*progress))
}

// WarmupThenCosine ramps linearly for WarmupEpochs then cosine-anneals.
type WarmupThenCosine struct {
	WarmupEpochs int
	Floor        float64
}

// Factor implements LRSchedule.
func (w WarmupThenCosine) Factor(epoch, totalEpochs int) float64 {
	if w.WarmupEpochs > 0 && epoch <= w.WarmupEpochs {
		return float64(epoch) / float64(w.WarmupEpochs)
	}
	rest := totalEpochs - w.WarmupEpochs
	if rest <= 1 {
		return 1
	}
	progress := float64(epoch-w.WarmupEpochs-1) / float64(rest-1)
	return w.Floor + (1-w.Floor)*0.5*(1+math.Cos(math.Pi*progress))
}

// scalable is implemented by optimizers whose base rate a schedule can
// adjust between epochs.
type scalable interface {
	setLRScale(f float64)
}

// The built-in optimizers store their base rate at construction and apply
// the schedule factor multiplicatively.

func (o *SGD) setLRScale(f float64)     { o.LR = o.baseLR() * f }
func (o *RMSprop) setLRScale(f float64) { o.LR = o.baseLR() * f }
func (o *Adam) setLRScale(f float64)    { o.LR = o.baseLR() * f }

// baseLR lazily captures the construction-time rate.
func (o *SGD) baseLR() float64 {
	if o.base == 0 {
		o.base = o.LR
	}
	return o.base
}

func (o *RMSprop) baseLR() float64 {
	if o.base == 0 {
		o.base = o.LR
	}
	return o.base
}

func (o *Adam) baseLR() float64 {
	if o.base == 0 {
		o.base = o.LR
	}
	return o.base
}
