package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// gradTol is the acceptable relative error between analytic and numeric
// gradients for smooth layers.
const gradTol = 1e-5

// checkLayer runs CheckGradients and fails the test when the analytic
// gradients disagree with finite differences.
func checkLayer(t *testing.T, name string, layer Layer, x *tensor.Tensor, trainMode bool, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := layer.Forward(x, trainMode)
	r := tensor.RandNormal(rng, 0, 1, out.Shape()...)
	res := CheckGradients(layer, x, r, trainMode, 1e-5, 1)
	if res.MaxInputErr > tol {
		t.Errorf("%s: input gradient relative error %.3g > %.3g", name, res.MaxInputErr, tol)
	}
	if res.MaxParamErr > tol {
		t.Errorf("%s: param gradient relative error %.3g > %.3g (param %s)", name, res.MaxParamErr, tol, res.WorstParam)
	}
}

func TestGradDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewDense(rng, 7, 5)
	x := tensor.RandNormal(rng, 0, 1, 4, 7)
	checkLayer(t, "Dense", l, x, false, gradTol)
}

func TestGradDenseNoBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewDenseNoBias(rng, 3, 6)
	x := tensor.RandNormal(rng, 0, 1, 5, 3)
	checkLayer(t, "DenseNoBias", l, x, false, gradTol)
}

func TestGradReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Keep inputs away from the kink at 0.
	x := tensor.RandNormal(rng, 0, 1, 4, 9).Apply(func(v float64) float64 {
		if v > -0.01 && v < 0.01 {
			return v + 0.5
		}
		return v
	})
	checkLayer(t, "ReLU", NewReLU(), x, false, gradTol)
}

func TestGradTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandNormal(rng, 0, 1, 3, 8)
	checkLayer(t, "Tanh", NewTanh(), x, false, gradTol)
}

func TestGradSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandNormal(rng, 0, 1, 3, 8)
	checkLayer(t, "Sigmoid", NewSigmoid(), x, false, gradTol)
}

func TestGradHardSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Stay inside the linear region (-2.5, 2.5) away from the kinks.
	x := tensor.RandUniform(rng, -2.0, 2.0, 3, 8)
	checkLayer(t, "HardSigmoid", NewHardSigmoid(), x, false, gradTol)
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandNormal(rng, 0, 1, 4, 6)
	checkLayer(t, "Softmax", NewSoftmax(), x, false, gradTol)
}

func TestGradConv1DSame(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewConv1D(rng, 3, 4, 3, PaddingSame)
	x := tensor.RandNormal(rng, 0, 1, 2, 7, 3)
	checkLayer(t, "Conv1D-same", l, x, false, gradTol)
}

func TestGradConv1DValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewConv1D(rng, 2, 5, 4, PaddingValid)
	x := tensor.RandNormal(rng, 0, 1, 3, 9, 2)
	checkLayer(t, "Conv1D-valid", l, x, false, gradTol)
}

func TestGradConv1DKernelLargerThanSeq(t *testing.T) {
	// The paper's degenerate case: kernel 10 over a length-1 sequence with
	// "same" padding.
	rng := rand.New(rand.NewSource(10))
	l := NewConv1D(rng, 5, 5, 10, PaddingSame)
	x := tensor.RandNormal(rng, 0, 1, 3, 1, 5)
	checkLayer(t, "Conv1D-k>T", l, x, false, gradTol)
}

func TestGradMaxPool1D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewMaxPool1D(2)
	// Spread values so ties/kinks are unlikely under the 1e-5 perturbation.
	x := tensor.RandNormal(rng, 0, 5, 2, 8, 3)
	checkLayer(t, "MaxPool1D", l, x, false, gradTol)
}

func TestGradMaxPool1DOddLength(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewMaxPool1D(3)
	x := tensor.RandNormal(rng, 0, 5, 2, 7, 2)
	checkLayer(t, "MaxPool1D-odd", l, x, false, gradTol)
}

func TestGradGlobalAvgPool1D(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := tensor.RandNormal(rng, 0, 1, 3, 5, 4)
	checkLayer(t, "GlobalAvgPool1D", NewGlobalAvgPool1D(), x, false, gradTol)
}

func TestGradBatchNormTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := NewBatchNorm(5)
	// Nudge gamma/beta off their init so the test isn't trivially passing.
	l.gamma.Value.Apply(func(float64) float64 { return 1.3 })
	l.beta.Value.Apply(func(float64) float64 { return -0.2 })
	x := tensor.RandNormal(rng, 1, 2, 6, 5)
	checkLayer(t, "BatchNorm-train", l, x, true, 1e-4)
}

func TestGradBatchNormTrainRank3(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := NewBatchNorm(3)
	x := tensor.RandNormal(rng, -1, 1.5, 2, 4, 3)
	checkLayer(t, "BatchNorm-train-NTC", l, x, true, 1e-4)
}

func TestGradBatchNormEval(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	l := NewBatchNorm(4)
	// Populate running stats with one training pass first.
	warm := tensor.RandNormal(rng, 0, 1, 8, 4)
	l.Forward(warm, true)
	x := tensor.RandNormal(rng, 0, 1, 5, 4)
	checkLayer(t, "BatchNorm-eval", l, x, false, gradTol)
}

func TestGradDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := NewDropout(rand.New(rand.NewSource(1)), 0.5)
	x := tensor.RandNormal(rng, 0, 1, 4, 6)
	checkLayer(t, "Dropout-eval", l, x, false, gradTol)
}

func TestGradDropoutTrainPinnedMask(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	l := NewDropout(rand.New(rand.NewSource(2)), 0.4)
	l.PinMask = true
	x := tensor.RandNormal(rng, 0, 1, 4, 6)
	l.Forward(x, true) // generate and pin the mask
	checkLayer(t, "Dropout-train-pinned", l, x, true, gradTol)
}

func TestGradReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	l := NewReshape(2, 6)
	x := tensor.RandNormal(rng, 0, 1, 3, 12)
	checkLayer(t, "Reshape", l, x, false, gradTol)
}

func TestGradFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := tensor.RandNormal(rng, 0, 1, 3, 2, 5)
	checkLayer(t, "Flatten", NewFlatten(), x, false, gradTol)
}

func TestGradGRUSeqFalse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewGRU(rng, 4, 3, false)
	// Small activations keep hard-sigmoid inputs inside the linear region.
	x := tensor.RandNormal(rng, 0, 0.5, 2, 5, 4)
	checkLayer(t, "GRU-last", l, x, false, 1e-4)
}

func TestGradGRUSeqTrue(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	l := NewGRU(rng, 3, 3, true)
	x := tensor.RandNormal(rng, 0, 0.5, 2, 4, 3)
	checkLayer(t, "GRU-seq", l, x, false, 1e-4)
}

func TestGradGRUSingleStep(t *testing.T) {
	// The paper's configuration: T = 1.
	rng := rand.New(rand.NewSource(23))
	l := NewGRU(rng, 6, 6, true)
	x := tensor.RandNormal(rng, 0, 0.5, 3, 1, 6)
	checkLayer(t, "GRU-T1", l, x, false, 1e-4)
}

func TestGradLSTMSeqFalse(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	l := NewLSTM(rng, 4, 3, false)
	x := tensor.RandNormal(rng, 0, 0.5, 2, 5, 4)
	checkLayer(t, "LSTM-last", l, x, false, 1e-4)
}

func TestGradLSTMSeqTrue(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	l := NewLSTM(rng, 3, 4, true)
	x := tensor.RandNormal(rng, 0, 0.5, 2, 4, 3)
	checkLayer(t, "LSTM-seq", l, x, false, 1e-4)
}

func TestGradSequentialStack(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	stack := NewSequential(
		NewDense(rng, 6, 8),
		NewTanh(),
		NewDense(rng, 8, 4),
	)
	x := tensor.RandNormal(rng, 0, 1, 3, 6)
	checkLayer(t, "Sequential", stack, x, false, gradTol)
}

func TestGradResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	res := NewResidual(NewSequential(
		NewDense(rng, 5, 5),
		NewTanh(),
	))
	x := tensor.RandNormal(rng, 0, 1, 4, 5)
	checkLayer(t, "Residual", res, x, false, gradTol)
}

func TestGradPreShortcut(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	ps := NewPreShortcut(
		NewDense(rng, 4, 4),
		NewSequential(NewDense(rng, 4, 4), NewTanh()),
	)
	x := tensor.RandNormal(rng, 0, 1, 3, 4)
	checkLayer(t, "PreShortcut", ps, x, false, gradTol)
}

func TestGradResidualBlockShape(t *testing.T) {
	// A miniature of the paper's ResBlk: BN head, conv+GRU body, shortcut
	// from the BN output (Fig. 4b). F = 6, T = 1, kernel 3.
	rng := rand.New(rand.NewSource(29))
	f := 6
	body := NewSequential(
		NewConv1D(rng, f, f, 3, PaddingSame),
		NewReLU(),
		NewMaxPool1D(2),
		NewBatchNorm(f),
		NewGRU(rng, f, f, true),
		NewDropout(rand.New(rand.NewSource(3)), 0),
	)
	blk := NewPreShortcut(NewBatchNorm(f), body)
	x := tensor.RandNormal(rng, 0, 0.5, 4, 1, f)
	checkLayer(t, "ResBlk-mini", blk, x, true, 2e-4)
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	// Check dLoss/dLogits against finite differences of the loss itself.
	rng := rand.New(rand.NewSource(30))
	logits := tensor.RandNormal(rng, 0, 1, 5, 4)
	labels := []int{0, 3, 2, 1, 3}
	loss := NewSoftmaxCrossEntropy()
	loss.Forward(logits, labels)
	grad := loss.Backward()
	eps := 1e-6
	ld := logits.Data()
	for i := range ld {
		orig := ld[i]
		ld[i] = orig + eps
		lp := loss.Forward(logits, labels)
		ld[i] = orig - eps
		lm := loss.Forward(logits, labels)
		ld[i] = orig
		num := (lp - lm) / (2 * eps)
		if e := relErr(num, grad.Data()[i]); e > 1e-4 {
			t.Fatalf("CE grad at %d: numeric %.8g analytic %.8g (err %.3g)", i, num, grad.Data()[i], e)
		}
	}
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pred := tensor.RandNormal(rng, 0, 1, 4, 3)
	labels := []int{0, 2, 1, 1}
	loss := NewMSE()
	loss.Forward(pred, labels)
	grad := loss.Backward()
	eps := 1e-6
	pd := pred.Data()
	for i := range pd {
		orig := pd[i]
		pd[i] = orig + eps
		lp := loss.Forward(pred, labels)
		pd[i] = orig - eps
		lm := loss.Forward(pred, labels)
		pd[i] = orig
		num := (lp - lm) / (2 * eps)
		if e := relErr(num, grad.Data()[i]); e > 1e-4 {
			t.Fatalf("MSE grad at %d: numeric %.8g analytic %.8g", i, num, grad.Data()[i])
		}
	}
}
