package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Network couples a layer stack with a loss and optimizer and provides the
// training loop used by every experiment in the paper reproduction.
type Network struct {
	Stack *Sequential
	Loss  Loss
	Opt   Optimizer

	params        []*Param // cached parameter list; Params() walks the tree once
	paramsVersion int      // Stack.Version() the cache was built at
}

// NewNetwork constructs a Network.
func NewNetwork(stack *Sequential, loss Loss, opt Optimizer) *Network {
	return &Network{Stack: stack, Loss: loss, Opt: opt}
}

// Params returns the stack's parameters, cached so the per-step optimizer
// update does not rebuild the slice tree. The cache tracks top-level
// Stack.Add calls; mutating nested containers mid-training is not
// supported.
func (n *Network) Params() []*Param {
	if n.params == nil || n.paramsVersion != n.Stack.Version() {
		n.params = n.Stack.Params()
		n.paramsVersion = n.Stack.Version()
	}
	return n.params
}

// TrainBatch runs one optimization step on a batch and returns its loss.
func (n *Network) TrainBatch(x *tensor.Tensor, labels []int) float64 {
	out := n.Stack.Forward(x, true)
	loss := n.Loss.Forward(out, labels)
	n.Stack.Backward(n.Loss.Backward())
	n.Opt.Step(n.Params())
	return loss
}

// EvalLoss computes the mean loss over (x, labels) without training.
func (n *Network) EvalLoss(x *tensor.Tensor, labels []int) float64 {
	out := n.Stack.Forward(x, false)
	return n.Loss.Forward(out, labels)
}

// Predict returns the raw network output (logits) in inference mode.
//
// The returned tensor is a reused layer buffer: it stays valid until the
// next call into this network (Predict, EvalLoss, TrainBatch, ...). Clone
// it to hold the values longer.
func (n *Network) Predict(x *tensor.Tensor) *tensor.Tensor {
	return n.Stack.Forward(x, false)
}

// PredictClasses returns the argmax class per row, evaluating in chunks of
// batchSize to bound memory.
func (n *Network) PredictClasses(x *tensor.Tensor, batchSize int) []int {
	rows := x.Dim(0)
	if batchSize <= 0 || batchSize > rows {
		batchSize = rows
	}
	out := make([]int, 0, rows)
	for lo := 0; lo < rows; lo += batchSize {
		hi := lo + batchSize
		if hi > rows {
			hi = rows
		}
		chunk := sliceBatch(x, lo, hi)
		logits := n.Predict(chunk)
		out = append(out, logits.ArgmaxRow()...)
	}
	return out
}

// sliceBatch returns a zero-copy view of rows [lo, hi) of a rank-2 or
// rank-3 tensor. Batch rows are contiguous along the leading axis, so
// evaluation loops can feed chunks straight from the dataset tensor with no
// gather. Layers only read their inputs, so sharing storage with the
// dataset is safe; TestPredictClassesDoesNotMutateInput pins that contract.
func sliceBatch(x *tensor.Tensor, lo, hi int) *tensor.Tensor {
	switch x.Rank() {
	case 2, 3:
		return x.ViewRows(lo, hi)
	default:
		panic(fmt.Sprintf("nn: sliceBatch on rank-%d tensor", x.Rank()))
	}
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	TestLoss  float64
	TrainAcc  float64
	TestAcc   float64
}

// FitConfig controls Network.Fit.
type FitConfig struct {
	Epochs    int
	BatchSize int
	Shuffle   bool
	RNG       *rand.Rand
	// TestX/TestLabels, when non-nil, are evaluated after each epoch.
	TestX      *tensor.Tensor
	TestLabels []int
	// Verbose, when non-nil, receives per-epoch stats.
	Verbose func(EpochStats)
	// EvalEvery controls how often test metrics are computed (default 1 =
	// every epoch). Train accuracy is computed from the training predictions
	// at the same cadence.
	EvalEvery int
	// Schedule scales the optimizer's learning rate per epoch (nil keeps
	// the base rate).
	Schedule LRSchedule
	// Patience stops training after this many consecutive epochs without
	// test-loss improvement (0 disables). Requires TestX.
	Patience int
}

// Fit trains the network for cfg.Epochs over (x, labels) and returns
// per-epoch statistics. Inputs may be rank-2 or rank-3 (batch-first).
func (n *Network) Fit(x *tensor.Tensor, labels []int, cfg FitConfig) []EpochStats {
	rows := x.Dim(0)
	if cfg.BatchSize <= 0 || cfg.BatchSize > rows {
		cfg.BatchSize = rows
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	order := make([]int, rows)
	for i := range order {
		order[i] = i
	}
	// Work on flattened rank-2 view for row shuffling, restore shape per
	// batch.
	var t, c int
	rank3 := x.Rank() == 3
	if rank3 {
		t, c = x.Dim(1), x.Dim(2)
	}
	flat := x
	if rank3 {
		flat = x.Reshape(rows, t*c)
	}

	stats := make([]EpochStats, 0, cfg.Epochs)
	bestTestLoss := math.Inf(1)
	sinceBest := 0
	// Per-batch gather buffers and view header, reused across batches and
	// epochs.
	var bx, feedHdr *tensor.Tensor
	by := make([]int, 0, cfg.BatchSize)
	for ep := 1; ep <= cfg.Epochs; ep++ {
		if cfg.Schedule != nil {
			if s, ok := n.Opt.(scalable); ok {
				s.setLRScale(cfg.Schedule.Factor(ep, cfg.Epochs))
			}
		}
		if cfg.Shuffle && cfg.RNG != nil {
			shuffleOrder(cfg.RNG, order)
		}
		totalLoss, batches := 0.0, 0
		for lo := 0; lo < rows; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > rows {
				hi = rows
			}
			by = gatherBatchInto(&bx, by[:0], flat, labels, order[lo:hi])
			feed := bx
			if rank3 {
				feedHdr = bx.ReshapeInto(feedHdr, hi-lo, t, c)
				feed = feedHdr
			}
			totalLoss += n.TrainBatch(feed, by)
			batches++
		}
		st := EpochStats{Epoch: ep, TrainLoss: totalLoss / float64(batches)}
		if ep%cfg.EvalEvery == 0 || ep == cfg.Epochs {
			if cfg.TestX != nil {
				st.TestLoss = n.evalLossBatched(cfg.TestX, cfg.TestLabels, cfg.BatchSize)
				st.TestAcc = accuracyOf(n.PredictClasses(cfg.TestX, cfg.BatchSize), cfg.TestLabels)
			}
			st.TrainAcc = accuracyOf(n.PredictClasses(x, cfg.BatchSize), labels)
		}
		if cfg.Verbose != nil {
			cfg.Verbose(st)
		}
		stats = append(stats, st)

		if cfg.Patience > 0 && cfg.TestX != nil {
			// Early stopping tracks test loss at the evaluation cadence.
			if ep%cfg.EvalEvery == 0 || ep == cfg.Epochs {
				if st.TestLoss < bestTestLoss-1e-9 {
					bestTestLoss = st.TestLoss
					sinceBest = 0
				} else {
					sinceBest++
					if sinceBest >= cfg.Patience {
						break
					}
				}
			}
		}
	}
	// A schedule scales the LR per epoch; restore the base rate so the
	// final epoch's decay does not leak into later Fit/PartialFit calls on
	// this network.
	if cfg.Schedule != nil {
		if s, ok := n.Opt.(scalable); ok {
			s.setLRScale(1)
		}
	}
	return stats
}

// PartialFit resumes training from the network's current weights — the
// warm-start entry point for online adaptation. Where the usual retraining
// recipe rebuilds the stack (reinitializing every parameter) and calls
// Fit, PartialFit trains the live network in place: no parameter is
// reinitialized, and optimizer state (RMSprop/Adam moment caches)
// accumulated by earlier Fit or PartialFit calls on this network carries
// over, so successive calls over a sliding window implement incremental
// training rather than a sequence of cold starts. Schedules passed in cfg
// scale the LR within this call only; the base rate is restored for the
// next call.
func (n *Network) PartialFit(x *tensor.Tensor, labels []int, cfg FitConfig) []EpochStats {
	return n.Fit(x, labels, cfg)
}

// evalLossBatched computes mean loss over the dataset in batches, weighted
// by batch size.
func (n *Network) evalLossBatched(x *tensor.Tensor, labels []int, batchSize int) float64 {
	rows := x.Dim(0)
	if batchSize <= 0 || batchSize > rows {
		batchSize = rows
	}
	total, count := 0.0, 0
	for lo := 0; lo < rows; lo += batchSize {
		hi := lo + batchSize
		if hi > rows {
			hi = rows
		}
		chunk := sliceBatch(x, lo, hi)
		total += n.EvalLoss(chunk, labels[lo:hi]) * float64(hi-lo)
		count += hi - lo
	}
	return total / float64(count)
}

func accuracyOf(pred, labels []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

func shuffleOrder(rng *rand.Rand, order []int) {
	for i := len(order) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
}

// gatherBatchInto copies the selected rows (and labels) into reusable
// buffers: *bx is grown/resized in place, and the gathered labels are
// appended to by and returned (callers must use the returned slice).
func gatherBatchInto(bx **tensor.Tensor, by []int, flat *tensor.Tensor, labels []int, idx []int) []int {
	cols := flat.Dim(1)
	dst := ensure(bx, len(idx), cols)
	tensor.GatherRowsInto(dst, flat, idx)
	for _, r := range idx {
		by = append(by, labels[r])
	}
	return by
}

// checkpoint is the gob wire format for saved weights.
type checkpoint struct {
	Names  []string
	Shapes [][]int
	Values [][]float64
	// BNMeans/BNVars hold running statistics for BatchNorm layers in
	// traversal order.
	BNMeans [][]float64
	BNVars  [][]float64
}

// Save serializes all parameter values (and BatchNorm running statistics)
// to w using encoding/gob.
func (n *Network) Save(w io.Writer) error {
	params := n.Stack.Params()
	ck := checkpoint{}
	for _, p := range params {
		ck.Names = append(ck.Names, p.Name)
		ck.Shapes = append(ck.Shapes, p.Value.Shape())
		vals := make([]float64, p.Value.Len())
		copy(vals, p.Value.Data())
		ck.Values = append(ck.Values, vals)
	}
	forEachBatchNorm(n.Stack, func(bn *BatchNorm) {
		mean, variance := bn.RunningStats()
		ck.BNMeans = append(ck.BNMeans, mean.Data())
		ck.BNVars = append(ck.BNVars, variance.Data())
	})
	return gob.NewEncoder(w).Encode(&ck)
}

// Load restores parameter values saved by Save. The network must have the
// same architecture (same parameter order and shapes).
func (n *Network) Load(r io.Reader) error {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("decode checkpoint: %w", err)
	}
	params := n.Stack.Params()
	if len(params) != len(ck.Values) {
		return fmt.Errorf("checkpoint has %d parameters, network has %d", len(ck.Values), len(params))
	}
	for i, p := range params {
		if p.Value.Len() != len(ck.Values[i]) {
			return fmt.Errorf("parameter %q: checkpoint size %d, network size %d", ck.Names[i], len(ck.Values[i]), p.Value.Len())
		}
		copy(p.Value.Data(), ck.Values[i])
	}
	i := 0
	var loadErr error
	forEachBatchNorm(n.Stack, func(bn *BatchNorm) {
		if loadErr != nil || i >= len(ck.BNMeans) {
			return
		}
		if len(ck.BNMeans[i]) != bn.C {
			loadErr = fmt.Errorf("BatchNorm %d: checkpoint channels %d, network %d", i, len(ck.BNMeans[i]), bn.C)
			return
		}
		bn.SetRunningStats(tensor.FromSlice(ck.BNMeans[i], bn.C), tensor.FromSlice(ck.BNVars[i], bn.C))
		i++
	})
	return loadErr
}

// forEachBatchNorm walks the layer tree in deterministic order invoking fn
// on every BatchNorm.
func forEachBatchNorm(l Layer, fn func(*BatchNorm)) {
	switch v := l.(type) {
	case *BatchNorm:
		fn(v)
	case *Sequential:
		for _, c := range v.Layers() {
			forEachBatchNorm(c, fn)
		}
	case *Residual:
		forEachBatchNorm(v.Body, fn)
	case *PreShortcut:
		forEachBatchNorm(v.Head, fn)
		forEachBatchNorm(v.Res, fn)
	}
}
