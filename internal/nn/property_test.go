package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// TestPropSoftmaxShiftInvariant: softmax(x + c) == softmax(x) per row.
func TestPropSoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, c := 1+rng.Intn(6), 2+rng.Intn(6)
		x := tensor.RandNormal(rng, 0, 3, b, c)
		shift := rng.NormFloat64() * 50
		shifted := x.Map(func(v float64) float64 { return v + shift })
		a := NewSoftmax().Forward(x, false)
		bOut := NewSoftmax().Forward(shifted, false)
		return tensor.ApproxEqual(a, bOut, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropReLUIdempotent: relu(relu(x)) == relu(x).
func TestPropReLUIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.RandNormal(rng, 0, 2, 3, 1+rng.Intn(10))
		r1 := NewReLU().Forward(x, false)
		r2 := NewReLU().Forward(r1, false)
		return tensor.ApproxEqual(r1, r2, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropTanhOddFunction: tanh(−x) == −tanh(x).
func TestPropTanhOddFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.RandNormal(rng, 0, 2, 2, 1+rng.Intn(8))
		neg := x.Map(func(v float64) float64 { return -v })
		a := NewTanh().Forward(x, false).Map(func(v float64) float64 { return -v })
		b := NewTanh().Forward(neg, false)
		return tensor.ApproxEqual(a, b, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropDropoutPreservesExpectation: inverted dropout keeps E[x] within
// sampling error.
func TestPropDropoutPreservesExpectation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rate := 0.2 + 0.6*rng.Float64()
		l := NewDropout(rand.New(rand.NewSource(seed+1)), rate)
		x := tensor.Ones(1, 20000)
		out := l.Forward(x, true)
		return math.Abs(out.Mean()-1) < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropMaxPoolDominance: every pooled output is >= the inputs it
// covers' minimum and equals one of them.
func TestPropMaxPoolDominance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, tt, c := 1+rng.Intn(3), 2+rng.Intn(10), 1+rng.Intn(4)
		pool := 1 + rng.Intn(4)
		x := tensor.RandNormal(rng, 0, 5, b, tt, c)
		out := NewMaxPool1D(pool).Forward(x, false)
		to := out.Dim(1)
		for bi := 0; bi < b; bi++ {
			for t0 := 0; t0 < to; t0++ {
				lo := t0 * pool
				hi := lo + pool
				if hi > tt {
					hi = tt
				}
				for ci := 0; ci < c; ci++ {
					v := out.At(bi, t0, ci)
					found := false
					for ti := lo; ti < hi; ti++ {
						in := x.At(bi, ti, ci)
						if in > v {
							return false // output below an input it covers
						}
						if in == v {
							found = true
						}
					}
					if !found {
						return false // output is not any covered input
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropGlobalAvgPoolMeanPreserved: GAP output equals per-channel means.
func TestPropGlobalAvgPoolMeanPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, tt, c := 1+rng.Intn(4), 1+rng.Intn(8), 1+rng.Intn(5)
		x := tensor.RandNormal(rng, 0, 2, b, tt, c)
		out := NewGlobalAvgPool1D().Forward(x, false)
		for bi := 0; bi < b; bi++ {
			for ci := 0; ci < c; ci++ {
				mean := 0.0
				for ti := 0; ti < tt; ti++ {
					mean += x.At(bi, ti, ci)
				}
				mean /= float64(tt)
				if math.Abs(out.At(bi, ci)-mean) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropSequentialEqualsManualChain: Sequential(f, g) == g(f(x)).
func TestPropSequentialEqualsManualChain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		d1 := NewDense(rng, n, n+1)
		d2 := NewDense(rng, n+1, 2)
		seq := NewSequential(d1, NewTanh(), d2)
		x := tensor.RandNormal(rng, 0, 1, 3, n)
		got := seq.Forward(x, false)
		want := d2.Forward(NewTanh().Forward(d1.Forward(x, false), false), false)
		return tensor.ApproxEqual(got, want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropOptimizerReducesConvexLoss: every optimizer decreases ||w||² on
// the quadratic within its first few steps.
func TestPropOptimizerReducesConvexLoss(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := []Optimizer{
			NewSGD(0.05, 0), NewSGD(0.02, 0.9), NewRMSprop(0.02), NewAdam(0.05),
		}
		opt := opts[rng.Intn(len(opts))]
		p := NewParam("w", tensor.RandNormal(rng, 0, 3, 4))
		start := p.Value.Norm2()
		if start == 0 {
			return true
		}
		for i := 0; i < 50; i++ {
			p.Grad.CopyFrom(p.Value)
			opt.Step([]*Param{p})
		}
		return p.Value.Norm2() < start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
