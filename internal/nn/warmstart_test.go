package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// blobs draws a 2-class Gaussian-blob dataset whose class centers sit at
// ±sep along every axis, optionally shifted by drift.
func blobs(rng *rand.Rand, n, dim int, sep, drift float64) (*tensor.Tensor, []int) {
	x := tensor.New(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		y[i] = c
		center := -sep
		if c == 1 {
			center = sep
		}
		row := x.Row(i)
		for j := range row {
			row[j] = center + drift + rng.NormFloat64()*0.8
		}
	}
	return x, y
}

func smallNet(seed int64, dim int) *Network {
	rng := rand.New(rand.NewSource(seed))
	stack := NewSequential(
		NewFlatten(),
		NewDense(rng, dim, 16),
		NewReLU(),
		NewDense(rng, 16, 2),
	)
	return NewNetwork(stack, NewSoftmaxCrossEntropy(), NewRMSprop(0.01))
}

// TestPartialFitWarmStartBeatsScratch pins the point of the warm-start
// entry: after a distribution shift, one PartialFit epoch from trained
// weights reaches a lower loss on the shifted data than one epoch from a
// fresh initialization with the same budget.
func TestPartialFitWarmStartBeatsScratch(t *testing.T) {
	const dim = 6
	rng := rand.New(rand.NewSource(1))
	xBase, yBase := blobs(rng, 600, dim, 1.0, 0)
	xShift, yShift := blobs(rng, 300, dim, 1.0, 0.7)

	warm := smallNet(2, dim)
	warm.Fit(xBase, yBase, FitConfig{Epochs: 6, BatchSize: 64, Shuffle: true, RNG: rand.New(rand.NewSource(3))})
	warm.PartialFit(xShift, yShift, FitConfig{Epochs: 1, BatchSize: 64, Shuffle: true, RNG: rand.New(rand.NewSource(4))})
	warmLoss := warm.EvalLoss(xShift, yShift)

	scratch := smallNet(5, dim)
	scratch.Fit(xShift, yShift, FitConfig{Epochs: 1, BatchSize: 64, Shuffle: true, RNG: rand.New(rand.NewSource(4))})
	scratchLoss := scratch.EvalLoss(xShift, yShift)

	if warmLoss >= scratchLoss {
		t.Fatalf("warm start did not help: warm loss %.4f >= scratch loss %.4f", warmLoss, scratchLoss)
	}
}

// TestPartialFitTrainsInPlace checks PartialFit mutates the live network's
// weights (no hidden rebuild) and successive calls keep improving.
func TestPartialFitTrainsInPlace(t *testing.T) {
	const dim = 4
	rng := rand.New(rand.NewSource(7))
	x, y := blobs(rng, 400, dim, 1.2, 0)

	net := smallNet(8, dim)
	before := net.EvalLoss(x, y)
	var last float64
	for round := 0; round < 3; round++ {
		net.PartialFit(x, y, FitConfig{Epochs: 2, BatchSize: 64, Shuffle: true, RNG: rng})
		last = net.EvalLoss(x, y)
	}
	if last >= before {
		t.Fatalf("3 PartialFit rounds did not reduce loss: %.4f -> %.4f", before, last)
	}
}

// TestPartialFitRestoresScheduledLR pins that a schedule used inside one
// PartialFit call does not leak a scaled learning rate into the next call.
func TestPartialFitRestoresScheduledLR(t *testing.T) {
	const dim = 4
	rng := rand.New(rand.NewSource(9))
	x, y := blobs(rng, 120, dim, 1.0, 0)

	net := smallNet(10, dim)
	opt := net.Opt.(*RMSprop)
	base := opt.LR
	net.PartialFit(x, y, FitConfig{
		Epochs: 3, BatchSize: 64,
		Schedule: StepDecay{StepEpochs: 1, Gamma: 0.1}, // decays hard every epoch
	})
	if opt.LR != base {
		t.Fatalf("LR %v after scheduled PartialFit, want base %v restored", opt.LR, base)
	}
}
