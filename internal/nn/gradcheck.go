package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GradCheckResult reports the worst relative error found by CheckGradients,
// split by where it occurred.
type GradCheckResult struct {
	MaxInputErr float64
	MaxParamErr float64
	WorstParam  string
}

// CheckGradients verifies a layer's analytic gradients against central
// finite differences.
//
// It forms the scalar objective L = Σ (Forward(x) ⊙ R) for a fixed random
// projection R (which must have the layer's output shape), computes
// analytic input and parameter gradients via Backward, then compares each
// against (L(θ+ε) − L(θ−ε)) / 2ε. Layers with many parameters are
// subsampled via stride to keep tests fast.
//
// The layer is always run with train=trainMode; layers whose training
// forward pass is stochastic (Dropout) must be checked in eval mode or with
// a pinned mask.
func CheckGradients(layer Layer, x, r *tensor.Tensor, trainMode bool, eps float64, stride int) GradCheckResult {
	if stride < 1 {
		stride = 1
	}
	loss := func() float64 {
		out := layer.Forward(x, trainMode)
		if out.Len() != r.Len() {
			panic(fmt.Sprintf("nn: gradcheck projection has %d elements, output has %d", r.Len(), out.Len()))
		}
		s := 0.0
		od, rd := out.Data(), r.Data()
		for i, v := range od {
			s += v * rd[i]
		}
		return s
	}

	// Analytic pass.
	ZeroGrads(layer.Params())
	_ = loss()
	dx := layer.Backward(r)

	res := GradCheckResult{}

	// Input gradient check.
	xd := x.Data()
	for i := 0; i < len(xd); i += stride {
		orig := xd[i]
		xd[i] = orig + eps
		lp := loss()
		xd[i] = orig - eps
		lm := loss()
		xd[i] = orig
		num := (lp - lm) / (2 * eps)
		if e := relErr(num, dx.Data()[i]); e > res.MaxInputErr {
			res.MaxInputErr = e
		}
	}

	// Parameter gradient check.
	for _, p := range layer.Params() {
		vd := p.Value.Data()
		gd := p.Grad.Data()
		for i := 0; i < len(vd); i += stride {
			orig := vd[i]
			vd[i] = orig + eps
			lp := loss()
			vd[i] = orig - eps
			lm := loss()
			vd[i] = orig
			num := (lp - lm) / (2 * eps)
			if e := relErr(num, gd[i]); e > res.MaxParamErr {
				res.MaxParamErr = e
				res.WorstParam = p.Name
			}
		}
	}
	return res
}

// relErr is a symmetric relative error that degrades gracefully to absolute
// error for tiny magnitudes.
func relErr(a, b float64) float64 {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-6 {
		return diff
	}
	return diff / scale
}
