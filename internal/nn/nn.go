// Package nn is a from-scratch deep-learning framework: layers with explicit
// forward/backward passes, losses, and gradient-descent optimizers. It
// implements every layer the Pelican paper's networks need — Dense, Conv1D,
// MaxPool1D, GlobalAvgPool1D, BatchNorm, Dropout, GRU, LSTM, activations,
// reshape — plus Sequential and Residual containers.
//
// Data layout conventions:
//   - tabular / dense data: rank-2 tensors (batch, features)
//   - sequence data: rank-3 tensors (batch, timesteps, channels) — "NTC"
//
// Layers cache whatever they need from the last Forward call and consume it
// in Backward; a layer must therefore see Backward at most once per Forward.
// Parameter gradients accumulate into Param.Grad; optimizers zero them after
// each step.
package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Param is a trainable parameter: its value and the gradient accumulated by
// the most recent backward pass.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter wrapping value with a zeroed gradient of
// the same shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable network stage.
//
// Forward computes the layer output for x; train selects training-time
// behaviour (dropout masks, batch statistics). Backward receives dL/d(out)
// and returns dL/d(in), accumulating parameter gradients as a side effect.
// Params returns the trainable parameters (nil for stateless layers).
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Named is implemented by layers that can describe themselves; used in
// network summaries.
type Named interface {
	LayerName() string
}

// ParamCount returns the total number of scalar parameters in params.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Value.Len()
	}
	return n
}

// ZeroGrads clears the gradient of every parameter in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// GlobalGradNorm returns the L2 norm of all gradients in params viewed as
// one flat vector.
func GlobalGradNorm(params []*Param) float64 {
	s := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm. A maxNorm <= 0 disables clipping.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	norm := GlobalGradNorm(params)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// shapeEq reports whether the tensor's shape equals want.
func shapeEq(t *tensor.Tensor, want ...int) bool {
	if t.Rank() != len(want) {
		return false
	}
	for i, d := range want {
		if t.Dim(i) != d {
			return false
		}
	}
	return true
}

// mustRank panics with a descriptive message unless t has the given rank.
func mustRank(layer string, t *tensor.Tensor, rank int) {
	if t.Rank() != rank {
		panic(fmt.Sprintf("nn: %s expects rank-%d input, got shape %v", layer, rank, t.Shape()))
	}
}
