package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Loss computes a scalar training objective and its gradient with respect
// to the network output.
type Loss interface {
	// Forward returns the mean loss over the batch and caches what Backward
	// needs.
	Forward(pred *tensor.Tensor, labels []int) float64
	// Backward returns dLoss/dPred for the most recent Forward.
	Backward() *tensor.Tensor
}

// SoftmaxCrossEntropy fuses a softmax over logits with categorical
// cross-entropy, yielding the numerically-stable gradient
// (softmax(x) − onehot(y)) / batch.
type SoftmaxCrossEntropy struct {
	probs  *tensor.Tensor // reused probability buffer (valid until next Forward)
	grad   *tensor.Tensor // reused gradient buffer
	labels []int
}

// NewSoftmaxCrossEntropy returns the fused softmax + cross-entropy loss.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

var _ Loss = (*SoftmaxCrossEntropy)(nil)

// Forward implements Loss. pred must be rank-2 logits (batch, classes).
func (l *SoftmaxCrossEntropy) Forward(pred *tensor.Tensor, labels []int) float64 {
	mustRank("SoftmaxCrossEntropy", pred, 2)
	rows, cols := pred.Dim(0), pred.Dim(1)
	if len(labels) != rows {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy got %d labels for batch %d", len(labels), rows))
	}
	probs := ensureLike(&l.probs, pred)
	probs.CopyFrom(pred)
	l.labels = labels
	pd := probs.Data()
	loss := 0.0
	for r := 0; r < rows; r++ {
		row := pd[r*cols : (r+1)*cols]
		softmaxRow(row)
		y := labels[r]
		if y < 0 || y >= cols {
			panic(fmt.Sprintf("nn: label %d out of range for %d classes", y, cols))
		}
		p := row[y]
		if p < 1e-15 {
			p = 1e-15
		}
		loss -= math.Log(p)
	}
	return loss / float64(rows)
}

// Backward implements Loss.
func (l *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	rows, cols := l.probs.Dim(0), l.probs.Dim(1)
	grad := ensureLike(&l.grad, l.probs)
	grad.CopyFrom(l.probs)
	gd := grad.Data()
	inv := 1.0 / float64(rows)
	for r := 0; r < rows; r++ {
		row := gd[r*cols : (r+1)*cols]
		row[l.labels[r]] -= 1
		for i := range row {
			row[i] *= inv
		}
	}
	return grad
}

// Probs returns the class probabilities computed by the last Forward.
func (l *SoftmaxCrossEntropy) Probs() *tensor.Tensor { return l.probs }

// MSE is the mean-squared-error loss over one-hot targets; provided for
// regression-style experiments and for testing layers against a smooth
// objective.
type MSE struct {
	diff *tensor.Tensor // reused residual buffer (valid until next Forward)
	grad *tensor.Tensor // reused gradient buffer
	n    int
}

// NewMSE returns a mean-squared-error loss.
func NewMSE() *MSE { return &MSE{} }

// ForwardDense computes mean((pred-target)²) over all elements.
func (l *MSE) ForwardDense(pred, target *tensor.Tensor) float64 {
	diff := ensureLike(&l.diff, pred)
	tensor.SubInto(diff, pred, target)
	l.n = pred.Len()
	s := 0.0
	for _, d := range l.diff.Data() {
		s += d * d
	}
	return s / float64(l.n)
}

// Forward implements Loss by one-hot encoding the labels.
func (l *MSE) Forward(pred *tensor.Tensor, labels []int) float64 {
	mustRank("MSE", pred, 2)
	cols := pred.Dim(1)
	target := tensor.Scratch.GetZeroed(pred.Dim(0), cols)
	td := target.Data()
	for r, y := range labels {
		td[r*cols+y] = 1
	}
	loss := l.ForwardDense(pred, target)
	tensor.Scratch.Put(target)
	return loss
}

// Backward implements Loss.
func (l *MSE) Backward() *tensor.Tensor {
	grad := ensureLike(&l.grad, l.diff)
	grad.CopyFrom(l.diff)
	grad.Scale(2.0 / float64(l.n))
	return grad
}

var _ Loss = (*MSE)(nil)

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := logits.ArgmaxRow()
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}
