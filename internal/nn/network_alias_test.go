package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// aliasNet builds a small but representative stack (BN + Conv1D + GRU +
// Dense) whose layers all exercise the buffer-reuse paths.
func aliasNet(rng *rand.Rand, f, classes int) *Network {
	stack := NewSequential(
		NewBatchNorm(f),
		NewConv1D(rng, f, f, 3, PaddingSame),
		NewReLU(),
		NewGRU(rng, f, f, true),
		NewFlatten(),
		NewDense(rng, f, classes),
	)
	return NewNetwork(stack, NewSoftmaxCrossEntropy(), NewSGD(0.05, 0))
}

// TestSliceBatchIsView pins the zero-copy contract: sliceBatch must share
// storage with its source for both rank-2 and rank-3 tensors.
func TestSliceBatchIsView(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x2 := tensor.RandNormal(rng, 0, 1, 10, 4)
	v2 := sliceBatch(x2, 2, 5)
	v2.Set(42, 0, 0)
	if x2.At(2, 0) != 42 {
		t.Fatal("rank-2 sliceBatch copied instead of viewing")
	}

	x3 := tensor.RandNormal(rng, 0, 1, 6, 3, 2)
	v3 := sliceBatch(x3, 4, 6)
	if v3.Dim(0) != 2 || v3.Dim(1) != 3 || v3.Dim(2) != 2 {
		t.Fatalf("rank-3 sliceBatch shape = %v", v3.Shape())
	}
	v3.Set(7, 0, 0, 0)
	if x3.At(4, 0, 0) != 7 {
		t.Fatal("rank-3 sliceBatch copied instead of viewing")
	}
}

// TestPredictClassesDoesNotMutateInput proves the zero-copy batching has no
// aliasing bugs: chunked evaluation must leave the dataset tensor untouched
// and agree exactly with single-chunk evaluation.
func TestPredictClassesDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, f, classes = 23, 6, 4
	net := aliasNet(rng, f, classes)
	x := tensor.RandNormal(rng, 0, 1, n, 1, f)
	before := x.Clone()

	// Train a step first so BatchNorm has non-trivial running stats and
	// every reuse buffer is warm.
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % classes
	}
	net.TrainBatch(x, labels)
	if !tensor.ApproxEqual(x, before, 0) {
		t.Fatal("TrainBatch mutated its input tensor")
	}

	whole := net.PredictClasses(x, 0)
	chunked := net.PredictClasses(x, 5) // odd chunk size: 23 = 4×5 + 3
	if !tensor.ApproxEqual(x, before, 0) {
		t.Fatal("PredictClasses mutated the dataset it was viewing")
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("row %d: chunked prediction %d != whole-batch prediction %d", i, chunked[i], whole[i])
		}
	}
}

// TestFitReusedGatherBuffers checks that training through Fit (which now
// reuses one gather buffer across batches) matches per-call behaviour: the
// network must still learn separable data to high accuracy.
func TestFitReusedGatherBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, f = 120, 5
	x := tensor.New(n, 1, f)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < f; j++ {
			v := rng.NormFloat64()*0.3 + float64(cls*4-2)
			x.Set(v, i, 0, j)
		}
	}
	net := aliasNet(rng, f, 2)
	net.Fit(x, labels, FitConfig{Epochs: 8, BatchSize: 16, Shuffle: true, RNG: rng})
	acc := accuracyOf(net.PredictClasses(x, 32), labels)
	if acc < 0.95 {
		t.Fatalf("accuracy after Fit = %.3f, want ≥ 0.95", acc)
	}
}
