package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	mask []bool // true where input > 0 in the last forward pass

	out *tensor.Tensor // reused output buffer (valid until next Forward)
	dx  *tensor.Tensor // reused gradient buffer
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

var _ Layer = (*ReLU)(nil)

// Forward implements Layer.
//
//pelican:noalloc
func (l *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := ensureLike(&l.out, x)
	if cap(l.mask) < x.Len() {
		l.mask = make([]bool, x.Len())
	}
	l.mask = l.mask[:x.Len()]
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
			l.mask[i] = true
		} else {
			od[i] = 0
			l.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
//
//pelican:noalloc
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := ensureLike(&l.dx, grad)
	gd, od := grad.Data(), out.Data()
	for i, g := range gd {
		if l.mask[i] {
			od[i] = g
		} else {
			od[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// LayerName implements Named.
func (l *ReLU) LayerName() string { return "ReLU" }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out *tensor.Tensor // reused output, also the backward cache
	dx  *tensor.Tensor
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

var _ Layer = (*Tanh)(nil)

// Forward implements Layer.
//
//pelican:noalloc
func (l *Tanh) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := ensureLike(&l.out, x)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		od[i] = math.Tanh(v)
	}
	return out
}

// Backward implements Layer.
//
//pelican:noalloc
func (l *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := ensureLike(&l.dx, grad)
	gd, od, yd := grad.Data(), out.Data(), l.out.Data()
	for i, g := range gd {
		od[i] = g * (1 - yd[i]*yd[i])
	}
	return out
}

// Params implements Layer.
func (l *Tanh) Params() []*Param { return nil }

// LayerName implements Named.
func (l *Tanh) LayerName() string { return "Tanh" }

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	out *tensor.Tensor // reused output, also the backward cache
	dx  *tensor.Tensor
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

var _ Layer = (*Sigmoid)(nil)

func sigmoid(v float64) float64 { return 1.0 / (1.0 + math.Exp(-v)) }

// Forward implements Layer.
func (l *Sigmoid) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := ensureLike(&l.out, x)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		od[i] = sigmoid(v)
	}
	return out
}

// Backward implements Layer.
func (l *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := ensureLike(&l.dx, grad)
	gd, od, yd := grad.Data(), out.Data(), l.out.Data()
	for i, g := range gd {
		od[i] = g * yd[i] * (1 - yd[i])
	}
	return out
}

// Params implements Layer.
func (l *Sigmoid) Params() []*Param { return nil }

// LayerName implements Named.
func (l *Sigmoid) LayerName() string { return "Sigmoid" }

// HardSigmoid is Keras's piecewise-linear sigmoid approximation,
// max(0, min(1, 0.2x + 0.5)) — the recurrent activation the paper's GRU
// uses.
type HardSigmoid struct {
	in  *tensor.Tensor
	out *tensor.Tensor
	dx  *tensor.Tensor
}

// NewHardSigmoid returns a HardSigmoid activation layer.
func NewHardSigmoid() *HardSigmoid { return &HardSigmoid{} }

var _ Layer = (*HardSigmoid)(nil)

func hardSigmoid(v float64) float64 {
	y := 0.2*v + 0.5
	if y < 0 {
		return 0
	}
	if y > 1 {
		return 1
	}
	return y
}

// hardSigmoidGrad is the derivative of hardSigmoid: 0.2 inside the linear
// region (-2.5, 2.5), 0 outside.
func hardSigmoidGrad(v float64) float64 {
	if v > -2.5 && v < 2.5 {
		return 0.2
	}
	return 0
}

// Forward implements Layer.
func (l *HardSigmoid) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	l.in = x
	out := ensureLike(&l.out, x)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		od[i] = hardSigmoid(v)
	}
	return out
}

// Backward implements Layer.
func (l *HardSigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := ensureLike(&l.dx, grad)
	gd, od, xd := grad.Data(), out.Data(), l.in.Data()
	for i, g := range gd {
		od[i] = g * hardSigmoidGrad(xd[i])
	}
	return out
}

// Params implements Layer.
func (l *HardSigmoid) Params() []*Param { return nil }

// LayerName implements Named.
func (l *HardSigmoid) LayerName() string { return "HardSigmoid" }

// Softmax normalizes each row of a rank-2 input into a probability
// distribution. When training a classifier prefer SoftmaxCrossEntropy,
// which fuses the loss gradient; this standalone layer exists for
// inference-time probability output and for models that need explicit
// probabilities mid-network.
type Softmax struct {
	out *tensor.Tensor // reused output, also the backward cache
	dx  *tensor.Tensor
}

// NewSoftmax returns a Softmax layer.
func NewSoftmax() *Softmax { return &Softmax{} }

var _ Layer = (*Softmax)(nil)

// Forward implements Layer.
func (l *Softmax) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank("Softmax", x, 2)
	out := ensureLike(&l.out, x)
	out.CopyFrom(x)
	rows, cols := out.Dim(0), out.Dim(1)
	od := out.Data()
	for r := 0; r < rows; r++ {
		row := od[r*cols : (r+1)*cols]
		softmaxRow(row)
	}
	return out
}

// softmaxRow computes a numerically-stable softmax in place.
func softmaxRow(row []float64) {
	maxV := math.Inf(-1)
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range row {
		e := math.Exp(v - maxV)
		row[i] = e
		sum += e
	}
	for i := range row {
		row[i] /= sum
	}
}

// Backward implements Layer.
func (l *Softmax) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dx_i = y_i * (g_i - sum_j g_j y_j) per row.
	out := ensureLike(&l.dx, grad)
	rows, cols := grad.Dim(0), grad.Dim(1)
	gd, od, yd := grad.Data(), out.Data(), l.out.Data()
	for r := 0; r < rows; r++ {
		g := gd[r*cols : (r+1)*cols]
		y := yd[r*cols : (r+1)*cols]
		o := od[r*cols : (r+1)*cols]
		dot := 0.0
		for i, gi := range g {
			dot += gi * y[i]
		}
		for i := range o {
			o[i] = y[i] * (g[i] - dot)
		}
	}
	return out
}

// Params implements Layer.
func (l *Softmax) Params() []*Param { return nil }

// LayerName implements Named.
func (l *Softmax) LayerName() string { return "Softmax" }
