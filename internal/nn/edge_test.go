package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Edge-case and failure-injection tests for the training loop and layers:
// degenerate batch sizes, single-class data, rank-3 fitting, and abusive
// inputs that must fail loudly rather than corrupt state.

func TestFitBatchLargerThanDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(NewSequential(NewDense(rng, 3, 2)), NewSoftmaxCrossEntropy(), NewSGD(0.1, 0))
	x := tensor.RandNormal(rng, 0, 1, 5, 3)
	y := []int{0, 1, 0, 1, 0}
	stats := net.Fit(x, y, FitConfig{Epochs: 3, BatchSize: 100})
	if len(stats) != 3 {
		t.Fatalf("ran %d epochs, want 3", len(stats))
	}
}

func TestFitBatchSizeOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(NewSequential(NewDense(rng, 2, 2)), NewSoftmaxCrossEntropy(), NewSGD(0.05, 0))
	x := tensor.RandNormal(rng, 0, 1, 6, 2)
	y := []int{0, 1, 0, 1, 0, 1}
	stats := net.Fit(x, y, FitConfig{Epochs: 2, BatchSize: 1})
	if len(stats) != 2 {
		t.Fatalf("ran %d epochs, want 2", len(stats))
	}
	for _, p := range net.Stack.Params() {
		if !p.Value.AllFinite() {
			t.Fatal("non-finite weights after batch-size-1 training")
		}
	}
}

func TestFitSingleClassLabels(t *testing.T) {
	// Degenerate supervision must not crash or produce NaN.
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(NewSequential(NewDense(rng, 2, 3)), NewSoftmaxCrossEntropy(), NewRMSprop(0.01))
	x := tensor.RandNormal(rng, 0, 1, 8, 2)
	y := make([]int, 8) // all class 0
	net.Fit(x, y, FitConfig{Epochs: 80, BatchSize: 4})
	pred := net.PredictClasses(x, 4)
	for _, p := range pred {
		if p != 0 {
			t.Fatalf("single-class training should predict that class, got %d", p)
		}
	}
}

func TestFitRank3WithShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	stack := NewSequential(NewGRU(rng, 3, 4, false), NewDense(rng, 4, 2))
	net := NewNetwork(stack, NewSoftmaxCrossEntropy(), NewAdam(0.01))
	x := tensor.RandNormal(rng, 0, 1, 12, 2, 3) // (batch, T=2, C=3)
	y := make([]int, 12)
	for i := range y {
		y[i] = i % 2
	}
	stats := net.Fit(x, y, FitConfig{Epochs: 3, BatchSize: 5, Shuffle: true, RNG: rng})
	if len(stats) != 3 {
		t.Fatalf("ran %d epochs, want 3", len(stats))
	}
}

func TestLossRejectsBadLabels(t *testing.T) {
	loss := NewSoftmaxCrossEntropy()
	logits := tensor.New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	loss.Forward(logits, []int{0, 7})
}

func TestLossRejectsMismatchedBatch(t *testing.T) {
	loss := NewSoftmaxCrossEntropy()
	logits := tensor.New(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("label-count mismatch did not panic")
		}
	}()
	loss.Forward(logits, []int{0})
}

func TestBackwardBeforeForwardGRUPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gru := NewGRU(rng, 2, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("GRU.Backward without Forward did not panic")
		}
	}()
	gru.Backward(tensor.New(1, 2))
}

func TestTrainingRecoversFromLargeGradients(t *testing.T) {
	// Inject an extreme input scale; gradient clipping must keep the
	// network finite and trainable.
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(NewSequential(
		NewDense(rng, 2, 8), NewReLU(), NewDense(rng, 8, 2),
	), NewSoftmaxCrossEntropy(), func() Optimizer {
		o := NewRMSprop(0.01)
		o.MaxNorm = 1
		return o
	}())
	x := tensor.RandNormal(rng, 0, 1e6, 16, 2) // absurd scale
	y := make([]int, 16)
	for i := range y {
		y[i] = i % 2
	}
	for i := 0; i < 10; i++ {
		net.TrainBatch(x, y)
	}
	for _, p := range net.Stack.Params() {
		if !p.Value.AllFinite() {
			t.Fatal("weights exploded despite gradient clipping")
		}
	}
}

func TestPredictClassesChunking(t *testing.T) {
	// Chunked prediction must equal single-shot prediction.
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(NewSequential(NewDense(rng, 4, 3)), NewSoftmaxCrossEntropy(), NewSGD(0.1, 0))
	x := tensor.RandNormal(rng, 0, 1, 23, 4) // deliberately not a multiple
	whole := net.PredictClasses(x, 0)
	chunked := net.PredictClasses(x, 7)
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("chunked prediction differs at row %d", i)
		}
	}
}

func TestEvalLossBatchedWeighting(t *testing.T) {
	// Batched eval must equal whole-set eval (weighted by batch size).
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(NewSequential(NewDense(rng, 3, 2)), NewSoftmaxCrossEntropy(), NewSGD(0.1, 0))
	x := tensor.RandNormal(rng, 0, 1, 17, 3)
	y := make([]int, 17)
	for i := range y {
		y[i] = i % 2
	}
	whole := net.EvalLoss(x, y)
	batched := net.evalLossBatched(x, y, 5)
	if diff := whole - batched; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("batched eval loss %v != whole %v", batched, whole)
	}
}
