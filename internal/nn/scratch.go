package nn

import "repro/internal/tensor"

// This file holds the buffer-reuse helpers behind the allocation-free
// steady-state hot path. Two idioms are used throughout the package:
//
//   - ensure/ensureLike manage a layer-owned, grow-only buffer stored in a
//     struct field. They are for tensors whose lifetime extends beyond the
//     current call (layer outputs, backward caches): the buffer stays valid
//     until the layer's next call of the same kind overwrites it.
//   - tensor.Scratch.Get/Put manage call-scoped temporaries (gather slabs,
//     gradient partials) and the variable-count BPTT step caches, which the
//     recurrent layers reclaim at the start of their next Forward.
//
// See PERF.md for the ownership contract.

// ensure returns a tensor of the given shape stored at *buf, reusing its
// backing array when capacity allows. Contents are unspecified; callers
// either overwrite every element or use ensureZeroed.
//
//pelican:noalloc
func ensure(buf **tensor.Tensor, shape ...int) *tensor.Tensor {
	if *buf == nil {
		*buf = tensor.New(shape...)
		return *buf
	}
	return (*buf).Resize(shape...)
}

// ensureZeroed is ensure followed by zero-filling.
//
//pelican:noalloc
func ensureZeroed(buf **tensor.Tensor, shape ...int) *tensor.Tensor {
	t := ensure(buf, shape...)
	t.Zero()
	return t
}

// ensureLike is ensure with the shape of like; it avoids the variadic
// shape-slice allocation on the common same-rank path.
//
//pelican:noalloc
func ensureLike(buf **tensor.Tensor, like *tensor.Tensor) *tensor.Tensor {
	if *buf == nil {
		*buf = tensor.New(like.Shape()...)
		return *buf
	}
	return (*buf).ResizeLike(like)
}

// appendShape appends t's dimensions to dst without the copy that
// t.Shape() would allocate.
//
//pelican:noalloc
func appendShape(dst []int, t *tensor.Tensor) []int {
	for i := 0; i < t.Rank(); i++ {
		dst = append(dst, t.Dim(i))
	}
	return dst
}
