package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dropout randomly zeroes a fraction Rate of activations during training
// and rescales the survivors by 1/(1−Rate) (inverted dropout), so inference
// is the identity. The paper uses Rate = 0.6.
type Dropout struct {
	Rate float64

	rng      *rand.Rand
	mask     []float64
	lastLive bool // whether the last forward applied a mask

	// PinMask, when true, freezes the current mask so repeated forward
	// passes are deterministic. Used by gradient-checking tests only.
	PinMask bool
	pinned  bool

	out *tensor.Tensor // reused output buffer (valid until next Forward)
	dx  *tensor.Tensor // reused gradient buffer
}

// NewDropout constructs a Dropout layer with the given drop rate in [0, 1).
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: Dropout rate %v outside [0, 1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

var _ Layer = (*Dropout)(nil)

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.Rate == 0 {
		l.lastLive = false
		return x
	}
	l.lastLive = true
	n := x.Len()
	regenerate := !(l.PinMask && l.pinned && len(l.mask) == n)
	if cap(l.mask) < n {
		l.mask = make([]float64, n)
	}
	l.mask = l.mask[:n]
	if regenerate {
		keep := 1 - l.Rate
		scale := 1 / keep
		for i := range l.mask {
			if l.rng.Float64() < keep {
				l.mask[i] = scale
			} else {
				l.mask[i] = 0
			}
		}
		l.pinned = l.PinMask
	}
	out := ensureLike(&l.out, x)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		od[i] = v * l.mask[i]
	}
	return out
}

// Backward implements Layer.
func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !l.lastLive {
		return grad
	}
	out := ensureLike(&l.dx, grad)
	gd, od := grad.Data(), out.Data()
	for i, g := range gd {
		od[i] = g * l.mask[i]
	}
	return out
}

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// LayerName implements Named.
func (l *Dropout) LayerName() string { return fmt.Sprintf("Dropout(%.2f)", l.Rate) }

// Reshape reinterprets the input with a new shape whose leading dimension
// is the batch; the remaining dimensions are fixed at construction. The
// paper's blocks use it to restore the (batch, T, C) layout after a GRU.
type Reshape struct {
	// Dims are the per-example dimensions (excluding batch). One entry may
	// be -1 to be inferred.
	Dims []int

	inShape  []int
	outShape []int          // reused [batch, Dims...] scratch
	view     *tensor.Tensor // reused forward view header
	gview    *tensor.Tensor // reused backward view header
}

// NewReshape constructs a Reshape to (batch, dims...).
func NewReshape(dims ...int) *Reshape {
	out := make([]int, len(dims))
	copy(out, dims)
	return &Reshape{Dims: out}
}

var _ Layer = (*Reshape)(nil)

// Forward implements Layer.
func (l *Reshape) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	l.inShape = appendShape(l.inShape[:0], x)
	l.outShape = append(append(l.outShape[:0], x.Dim(0)), l.Dims...)
	l.view = x.ReshapeInto(l.view, l.outShape...)
	return l.view
}

// Backward implements Layer.
func (l *Reshape) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.gview = grad.ReshapeInto(l.gview, l.inShape...)
	return l.gview
}

// Params implements Layer.
func (l *Reshape) Params() []*Param { return nil }

// LayerName implements Named.
func (l *Reshape) LayerName() string { return fmt.Sprintf("Reshape%v", l.Dims) }

// Flatten collapses (batch, ...) to (batch, features).
type Flatten struct {
	inShape []int
	view    *tensor.Tensor // reused forward view header
	gview   *tensor.Tensor // reused backward view header
}

// NewFlatten constructs a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

var _ Layer = (*Flatten)(nil)

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	l.inShape = appendShape(l.inShape[:0], x)
	l.view = x.ReshapeInto(l.view, x.Dim(0), -1)
	return l.view
}

// Backward implements Layer.
func (l *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.gview = grad.ReshapeInto(l.gview, l.inShape...)
	return l.gview
}

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// LayerName implements Named.
func (l *Flatten) LayerName() string { return "Flatten" }
