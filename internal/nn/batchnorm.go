package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalizes activations per channel (the last axis), matching
// Keras BatchNormalization with axis=-1. It accepts rank-2 (batch, C) or
// rank-3 (batch, T, C) inputs; rank-3 inputs are normalized over batch×time.
//
// During training it uses batch statistics and updates exponential running
// moments; during inference it uses the running moments.
type BatchNorm struct {
	C        int
	Eps      float64
	Momentum float64

	gamma *Param // scale (C)
	beta  *Param // shift (C)

	runMean *tensor.Tensor // running mean (C)
	runVar  *tensor.Tensor // running variance (C)

	// Cached from the forward pass for Backward.
	xhat    *tensor.Tensor // normalized input, flattened (N, C); train mode
	evalX   *tensor.Tensor // raw input; eval mode
	invStd  []float64      // 1/sqrt(var+eps) per channel
	n       int            // rows normalized over (batch×time)
	trained bool           // whether the last forward used batch statistics

	out   *tensor.Tensor // reused output buffer (valid until next Forward)
	dx    *tensor.Tensor // reused gradient buffer
	chBuf []float64      // per-channel scratch: means, then scale/shift pairs
}

// NewBatchNorm constructs a BatchNorm over c channels with Keras defaults
// (eps 1e-3, momentum 0.99, gamma=1, beta=0).
func NewBatchNorm(c int) *BatchNorm {
	return &BatchNorm{
		C:        c,
		Eps:      1e-3,
		Momentum: 0.99,
		gamma:    NewParam(fmt.Sprintf("bn_gamma_%d", c), tensor.Ones(c)),
		beta:     NewParam(fmt.Sprintf("bn_beta_%d", c), tensor.New(c)),
		runMean:  tensor.New(c),
		runVar:   tensor.Ones(c),
	}
}

var _ Layer = (*BatchNorm)(nil)

// rows validates x's channel axis and returns the number of (batch×time)
// rows it normalizes over.
func (l *BatchNorm) rows(x *tensor.Tensor) int {
	switch x.Rank() {
	case 2, 3:
		if x.Dim(x.Rank()-1) != l.C {
			panic(fmt.Sprintf("nn: BatchNorm expects %d channels, got shape %v", l.C, x.Shape()))
		}
		return x.Len() / l.C
	default:
		panic(fmt.Sprintf("nn: BatchNorm expects rank-2 or rank-3 input, got shape %v", x.Shape()))
	}
}

// scratch returns two per-channel float64 slices backed by one reusable
// allocation.
func (l *BatchNorm) scratch() (s0, s1 []float64) {
	s0, s1, _ = l.scratch3()
	return s0, s1
}

// scratch3 returns three per-channel float64 slices backed by one reusable
// allocation.
func (l *BatchNorm) scratch3() (s0, s1, s2 []float64) {
	if cap(l.chBuf) < 3*l.C {
		l.chBuf = make([]float64, 3*l.C)
	}
	l.chBuf = l.chBuf[:3*l.C]
	return l.chBuf[:l.C], l.chBuf[l.C : 2*l.C], l.chBuf[2*l.C : 3*l.C]
}

// Forward implements Layer. All passes are row-major so the input streams
// through cache once per pass instead of once per channel.
func (l *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c := l.rows(x), l.C
	out := ensureLike(&l.out, x)
	xd, od := x.Data(), out.Data()
	g, b := l.gamma.Value.Data(), l.beta.Value.Data()

	if !train {
		l.trained = false
		l.evalX = x
		rm, rv := l.runMean.Data(), l.runVar.Data()
		scale, shift := l.scratch()
		for ci := 0; ci < c; ci++ {
			inv := 1.0 / math.Sqrt(rv[ci]+l.Eps)
			scale[ci] = inv * g[ci]
			shift[ci] = b[ci] - rm[ci]*inv*g[ci]
		}
		for r := 0; r < n; r++ {
			xrow, orow := xd[r*c:(r+1)*c], od[r*c:(r+1)*c]
			for ci, v := range xrow {
				orow[ci] = v*scale[ci] + shift[ci]
			}
		}
		return out
	}

	l.trained = true
	l.n = n
	if cap(l.invStd) < c {
		l.invStd = make([]float64, c)
	}
	l.invStd = l.invStd[:c]
	xhat := ensure(&l.xhat, n, c)
	xh := xhat.Data()
	rm, rv := l.runMean.Data(), l.runVar.Data()
	invN := 1.0 / float64(n)

	mean, variance := l.scratch()
	for ci := range mean {
		mean[ci], variance[ci] = 0, 0
	}
	for r := 0; r < n; r++ {
		xrow := xd[r*c : (r+1)*c]
		for ci, v := range xrow {
			mean[ci] += v
		}
	}
	for ci := range mean {
		mean[ci] *= invN
	}
	for r := 0; r < n; r++ {
		xrow := xd[r*c : (r+1)*c]
		for ci, v := range xrow {
			d := v - mean[ci]
			variance[ci] += d * d
		}
	}
	for ci := range variance {
		variance[ci] *= invN // biased variance, as Keras uses in normalization
		l.invStd[ci] = 1.0 / math.Sqrt(variance[ci]+l.Eps)
	}
	for r := 0; r < n; r++ {
		xrow := xd[r*c : (r+1)*c]
		hrow := xh[r*c : (r+1)*c]
		orow := od[r*c : (r+1)*c]
		for ci, v := range xrow {
			h := (v - mean[ci]) * l.invStd[ci]
			hrow[ci] = h
			orow[ci] = h*g[ci] + b[ci]
		}
	}
	for ci := 0; ci < c; ci++ {
		rm[ci] = l.Momentum*rm[ci] + (1-l.Momentum)*mean[ci]
		rv[ci] = l.Momentum*rv[ci] + (1-l.Momentum)*variance[ci]
	}
	return out
}

// Backward implements Layer. It assumes the preceding Forward ran in
// training mode (batch statistics); inference-mode backward treats the
// moments as constants.
func (l *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := l.rows(grad), l.C
	dx := ensureLike(&l.dx, grad)
	gd, dxd := grad.Data(), dx.Data()
	gamma := l.gamma.Value.Data()
	dgamma := l.gamma.Grad.Data()
	dbeta := l.beta.Grad.Data()

	if !l.trained {
		// Inference-mode: y = (x − μ_run)·invStd·γ + β. The moments are
		// constants, but γ and β still receive gradients.
		rm, rv := l.runMean.Data(), l.runVar.Data()
		xd := l.evalX.Data()
		inv, _ := l.scratch()
		for ci := 0; ci < c; ci++ {
			inv[ci] = 1.0 / math.Sqrt(rv[ci]+l.Eps)
		}
		for r := 0; r < n; r++ {
			grow := gd[r*c : (r+1)*c]
			xrow := xd[r*c : (r+1)*c]
			drow := dxd[r*c : (r+1)*c]
			for ci, dy := range grow {
				dgamma[ci] += dy * (xrow[ci] - rm[ci]) * inv[ci]
				dbeta[ci] += dy
				drow[ci] = dy * gamma[ci] * inv[ci]
			}
		}
		return dx
	}

	xh := l.xhat.Data()
	invN := 1.0 / float64(n)
	sumDy, sumDyXh, k := l.scratch3()
	for ci := 0; ci < c; ci++ {
		sumDy[ci], sumDyXh[ci] = 0, 0
	}
	for r := 0; r < n; r++ {
		grow := gd[r*c : (r+1)*c]
		hrow := xh[r*c : (r+1)*c]
		for ci, dy := range grow {
			sumDy[ci] += dy
			sumDyXh[ci] += dy * hrow[ci]
		}
	}
	for ci := 0; ci < c; ci++ {
		dgamma[ci] += sumDyXh[ci]
		dbeta[ci] += sumDy[ci]
		k[ci] = gamma[ci] * l.invStd[ci]
	}
	for r := 0; r < n; r++ {
		grow := gd[r*c : (r+1)*c]
		hrow := xh[r*c : (r+1)*c]
		drow := dxd[r*c : (r+1)*c]
		for ci, dy := range grow {
			drow[ci] = k[ci] * (dy - invN*sumDy[ci] - hrow[ci]*invN*sumDyXh[ci])
		}
	}
	return dx
}

// Params implements Layer.
func (l *BatchNorm) Params() []*Param { return []*Param{l.gamma, l.beta} }

// RunningStats returns copies of the running mean and variance, exposed for
// tests and checkpointing.
func (l *BatchNorm) RunningStats() (mean, variance *tensor.Tensor) {
	return l.runMean.Clone(), l.runVar.Clone()
}

// SetRunningStats overwrites the running moments (used when loading
// checkpoints).
func (l *BatchNorm) SetRunningStats(mean, variance *tensor.Tensor) {
	l.runMean.CopyFrom(mean)
	l.runVar.CopyFrom(variance)
}

// LayerName implements Named.
func (l *BatchNorm) LayerName() string { return fmt.Sprintf("BatchNorm(%d)", l.C) }
