package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalizes activations per channel (the last axis), matching
// Keras BatchNormalization with axis=-1. It accepts rank-2 (batch, C) or
// rank-3 (batch, T, C) inputs; rank-3 inputs are normalized over batch×time.
//
// During training it uses batch statistics and updates exponential running
// moments; during inference it uses the running moments.
type BatchNorm struct {
	C        int
	Eps      float64
	Momentum float64

	gamma *Param // scale (C)
	beta  *Param // shift (C)

	runMean *tensor.Tensor // running mean (C)
	runVar  *tensor.Tensor // running variance (C)

	// Cached from the forward pass for Backward.
	xhat    *tensor.Tensor // normalized input, flattened (N, C); train mode
	evalX   *tensor.Tensor // raw input, flattened (N, C); eval mode
	invStd  []float64      // 1/sqrt(var+eps) per channel
	n       int            // rows normalized over (batch×time)
	inShape []int
	trained bool // whether the last forward used batch statistics
}

// NewBatchNorm constructs a BatchNorm over c channels with Keras defaults
// (eps 1e-3, momentum 0.99, gamma=1, beta=0).
func NewBatchNorm(c int) *BatchNorm {
	return &BatchNorm{
		C:        c,
		Eps:      1e-3,
		Momentum: 0.99,
		gamma:    NewParam(fmt.Sprintf("bn_gamma_%d", c), tensor.Ones(c)),
		beta:     NewParam(fmt.Sprintf("bn_beta_%d", c), tensor.New(c)),
		runMean:  tensor.New(c),
		runVar:   tensor.Ones(c),
	}
}

var _ Layer = (*BatchNorm)(nil)

// flatten2 views x as (N, C) rows regardless of rank-2/rank-3 input.
func (l *BatchNorm) flatten2(x *tensor.Tensor) *tensor.Tensor {
	switch x.Rank() {
	case 2:
		if x.Dim(1) != l.C {
			panic(fmt.Sprintf("nn: BatchNorm expects %d channels, got shape %v", l.C, x.Shape()))
		}
		return x
	case 3:
		if x.Dim(2) != l.C {
			panic(fmt.Sprintf("nn: BatchNorm expects %d channels, got shape %v", l.C, x.Shape()))
		}
		return x.Reshape(x.Dim(0)*x.Dim(1), l.C)
	default:
		panic(fmt.Sprintf("nn: BatchNorm expects rank-2 or rank-3 input, got shape %v", x.Shape()))
	}
}

// Forward implements Layer.
func (l *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.inShape = x.Shape()
	x2 := l.flatten2(x)
	n, c := x2.Dim(0), l.C
	out2 := tensor.New(n, c)
	xd, od := x2.Data(), out2.Data()
	g, b := l.gamma.Value.Data(), l.beta.Value.Data()

	if !train {
		l.trained = false
		l.evalX = x2
		rm, rv := l.runMean.Data(), l.runVar.Data()
		for ci := 0; ci < c; ci++ {
			inv := 1.0 / math.Sqrt(rv[ci]+l.Eps)
			mean := rm[ci]
			gi, bi := g[ci], b[ci]
			for r := 0; r < n; r++ {
				od[r*c+ci] = (xd[r*c+ci]-mean)*inv*gi + bi
			}
		}
		return out2.Reshape(l.inShape...)
	}

	l.trained = true
	l.n = n
	if l.invStd == nil || len(l.invStd) != c {
		l.invStd = make([]float64, c)
	}
	l.xhat = tensor.New(n, c)
	xh := l.xhat.Data()
	rm, rv := l.runMean.Data(), l.runVar.Data()
	invN := 1.0 / float64(n)
	for ci := 0; ci < c; ci++ {
		mean := 0.0
		for r := 0; r < n; r++ {
			mean += xd[r*c+ci]
		}
		mean *= invN
		variance := 0.0
		for r := 0; r < n; r++ {
			d := xd[r*c+ci] - mean
			variance += d * d
		}
		variance *= invN // biased variance, as Keras uses in normalization
		inv := 1.0 / math.Sqrt(variance+l.Eps)
		l.invStd[ci] = inv
		gi, bi := g[ci], b[ci]
		for r := 0; r < n; r++ {
			h := (xd[r*c+ci] - mean) * inv
			xh[r*c+ci] = h
			od[r*c+ci] = h*gi + bi
		}
		rm[ci] = l.Momentum*rm[ci] + (1-l.Momentum)*mean
		rv[ci] = l.Momentum*rv[ci] + (1-l.Momentum)*variance
	}
	return out2.Reshape(l.inShape...)
}

// Backward implements Layer. It assumes the preceding Forward ran in
// training mode (batch statistics); inference-mode backward treats the
// moments as constants.
func (l *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g2 := l.flatten2(grad)
	n, c := g2.Dim(0), l.C
	dx2 := tensor.New(n, c)
	gd, dxd := g2.Data(), dx2.Data()
	gamma := l.gamma.Value.Data()
	dgamma := l.gamma.Grad.Data()
	dbeta := l.beta.Grad.Data()

	if !l.trained {
		// Inference-mode: y = (x − μ_run)·invStd·γ + β. The moments are
		// constants, but γ and β still receive gradients.
		rm, rv := l.runMean.Data(), l.runVar.Data()
		xd := l.evalX.Data()
		for ci := 0; ci < c; ci++ {
			inv := 1.0 / math.Sqrt(rv[ci]+l.Eps)
			for r := 0; r < n; r++ {
				dy := gd[r*c+ci]
				xh := (xd[r*c+ci] - rm[ci]) * inv
				dgamma[ci] += dy * xh
				dbeta[ci] += dy
				dxd[r*c+ci] = dy * gamma[ci] * inv
			}
		}
		return dx2.Reshape(l.inShape...)
	}

	xh := l.xhat.Data()
	invN := 1.0 / float64(n)
	for ci := 0; ci < c; ci++ {
		// Accumulate per-channel sums needed by the BN backward formula.
		sumDy, sumDyXh := 0.0, 0.0
		for r := 0; r < n; r++ {
			dy := gd[r*c+ci]
			sumDy += dy
			sumDyXh += dy * xh[r*c+ci]
		}
		dgamma[ci] += sumDyXh
		dbeta[ci] += sumDy
		k := gamma[ci] * l.invStd[ci]
		for r := 0; r < n; r++ {
			dy := gd[r*c+ci]
			dxd[r*c+ci] = k * (dy - invN*sumDy - xh[r*c+ci]*invN*sumDyXh)
		}
	}
	return dx2.Reshape(l.inShape...)
}

// Params implements Layer.
func (l *BatchNorm) Params() []*Param { return []*Param{l.gamma, l.beta} }

// RunningStats returns copies of the running mean and variance, exposed for
// tests and checkpointing.
func (l *BatchNorm) RunningStats() (mean, variance *tensor.Tensor) {
	return l.runMean.Clone(), l.runVar.Clone()
}

// SetRunningStats overwrites the running moments (used when loading
// checkpoints).
func (l *BatchNorm) SetRunningStats(mean, variance *tensor.Tensor) {
	l.runMean.CopyFrom(mean)
	l.runVar.CopyFrom(variance)
}

// LayerName implements Named.
func (l *BatchNorm) LayerName() string { return fmt.Sprintf("BatchNorm(%d)", l.C) }
