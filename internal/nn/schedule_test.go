package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestConstantLR(t *testing.T) {
	var s ConstantLR
	if s.Factor(1, 10) != 1 || s.Factor(10, 10) != 1 {
		t.Fatal("ConstantLR must always return 1")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{StepEpochs: 3, Gamma: 0.5}
	cases := []struct {
		epoch int
		want  float64
	}{
		{1, 1}, {3, 1}, {4, 0.5}, {6, 0.5}, {7, 0.25}, {10, 0.125},
	}
	for _, c := range cases {
		if got := s.Factor(c.epoch, 10); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("StepDecay.Factor(%d) = %v, want %v", c.epoch, got, c.want)
		}
	}
	// Degenerate config is a no-op.
	if (StepDecay{}).Factor(5, 10) != 1 {
		t.Fatal("zero StepDecay should be identity")
	}
}

func TestCosineDecayEndpoints(t *testing.T) {
	s := CosineDecay{Floor: 0.1}
	if got := s.Factor(1, 20); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine start %v, want 1", got)
	}
	if got := s.Factor(20, 20); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("cosine end %v, want 0.1", got)
	}
	mid := s.Factor(10, 20)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("cosine midpoint %v outside (0.1, 1)", mid)
	}
	// Monotone decreasing.
	prev := 2.0
	for ep := 1; ep <= 20; ep++ {
		f := s.Factor(ep, 20)
		if f > prev+1e-12 {
			t.Fatalf("cosine not monotone at epoch %d", ep)
		}
		prev = f
	}
}

func TestWarmupThenCosine(t *testing.T) {
	s := WarmupThenCosine{WarmupEpochs: 4, Floor: 0.05}
	if got := s.Factor(2, 20); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("warmup factor at epoch 2 = %v, want 0.5", got)
	}
	if got := s.Factor(4, 20); math.Abs(got-1) > 1e-12 {
		t.Fatalf("warmup factor at epoch 4 = %v, want 1", got)
	}
	if got := s.Factor(20, 20); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("final factor %v, want 0.05", got)
	}
}

func TestScheduleAppliedDuringFit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	stack := NewSequential(NewDense(rng, 2, 2))
	opt := NewRMSprop(0.01)
	net := NewNetwork(stack, NewSoftmaxCrossEntropy(), opt)
	x := tensor.RandNormal(rng, 0, 1, 8, 2)
	y := []int{0, 1, 0, 1, 0, 1, 0, 1}
	var perEpochLR []float64
	net.Fit(x, y, FitConfig{
		Epochs: 4, BatchSize: 8,
		Schedule: StepDecay{StepEpochs: 2, Gamma: 0.1},
		Verbose:  func(EpochStats) { perEpochLR = append(perEpochLR, opt.LR) },
	})
	// Epochs 1-2 run at factor 1, epochs 3-4 at factor 0.1.
	want := []float64{0.01, 0.01, 0.001, 0.001}
	for i, w := range want {
		if math.Abs(perEpochLR[i]-w) > 1e-12 {
			t.Fatalf("epoch %d ran at LR %v, want %v", i+1, perEpochLR[i], w)
		}
	}
	// The decay must not leak past Fit: the base rate is restored for
	// subsequent Fit/PartialFit calls.
	if math.Abs(opt.LR-0.01) > 1e-12 {
		t.Fatalf("LR %v after Fit, want base 0.01 restored", opt.LR)
	}
}

func TestEarlyStoppingHalts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stack := NewSequential(NewDense(rng, 3, 2))
	net := NewNetwork(stack, NewSoftmaxCrossEntropy(), NewSGD(0, 0)) // LR 0: no progress
	x := tensor.RandNormal(rng, 0, 1, 16, 3)
	y := make([]int, 16)
	stats := net.Fit(x, y, FitConfig{
		Epochs: 50, BatchSize: 8,
		TestX: x, TestLabels: y,
		Patience: 3,
	})
	// Loss never improves after the first epoch, so training stops after
	// 1 + Patience epochs.
	if len(stats) > 5 {
		t.Fatalf("early stopping did not halt: ran %d epochs", len(stats))
	}
}

func TestEarlyStoppingDisabledWithoutTestSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stack := NewSequential(NewDense(rng, 2, 2))
	net := NewNetwork(stack, NewSoftmaxCrossEntropy(), NewSGD(0, 0))
	x := tensor.RandNormal(rng, 0, 1, 8, 2)
	y := make([]int, 8)
	stats := net.Fit(x, y, FitConfig{Epochs: 10, BatchSize: 8, Patience: 2})
	if len(stats) != 10 {
		t.Fatalf("patience without TestX should not stop: ran %d epochs", len(stats))
	}
}
