package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestDenseKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewDense(rng, 2, 2)
	l.w.Value.CopyFrom(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2))
	l.b.Value.CopyFrom(tensor.FromSlice([]float64{10, 20}, 2))
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	out := l.Forward(x, false)
	// [1 1] @ [[1 2][3 4]] + [10 20] = [14 26]
	if out.At(0, 0) != 14 || out.At(0, 1) != 26 {
		t.Fatalf("Dense forward = %v, want [14 26]", out.Data())
	}
}

func TestDensePanicsOnWrongWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewDense(rng, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Dense with wrong input width did not panic")
		}
	}()
	l.Forward(tensor.New(1, 4), false)
}

func TestReLUForward(t *testing.T) {
	x := tensor.FromSlice([]float64{-1, 0, 2}, 1, 3)
	out := NewReLU().Forward(x, false)
	if out.At(0, 0) != 0 || out.At(0, 1) != 0 || out.At(0, 2) != 2 {
		t.Fatalf("ReLU = %v", out.Data())
	}
}

func TestHardSigmoidValues(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-3, 0}, {-2.5, 0}, {0, 0.5}, {1, 0.7}, {2.5, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := hardSigmoid(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("hardSigmoid(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandNormal(rng, 0, 10, 6, 9)
	out := NewSoftmax().Forward(x, false)
	for r := 0; r < 6; r++ {
		s := 0.0
		for c := 0; c < 9; c++ {
			v := out.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax output %v outside [0,1]", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("softmax row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := tensor.FromSlice([]float64{1000, 1001, 999}, 1, 3)
	out := NewSoftmax().Forward(x, false)
	if !out.AllFinite() {
		t.Fatal("softmax overflowed on large logits")
	}
}

func TestConv1DSamePreservesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewConv1D(rng, 4, 6, 5, PaddingSame)
	out := l.Forward(tensor.RandNormal(rng, 0, 1, 2, 9, 4), false)
	if !shapeEq(out, 2, 9, 6) {
		t.Fatalf("same-conv output shape %v, want [2 9 6]", out.Shape())
	}
}

func TestConv1DValidShrinksLength(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewConv1D(rng, 4, 6, 5, PaddingValid)
	out := l.Forward(tensor.RandNormal(rng, 0, 1, 2, 9, 4), false)
	if !shapeEq(out, 2, 5, 6) {
		t.Fatalf("valid-conv output shape %v, want [2 5 6]", out.Shape())
	}
}

func TestConv1DKnownValues(t *testing.T) {
	// Single channel, kernel [1, 2, 3] ("same", left pad 1), input [1, 2, 3].
	rng := rand.New(rand.NewSource(5))
	l := NewConv1D(rng, 1, 1, 3, PaddingSame)
	l.w.Value.CopyFrom(tensor.FromSlice([]float64{1, 2, 3}, 3, 1, 1))
	l.b.Value.Zero()
	x := tensor.FromSlice([]float64{1, 2, 3}, 1, 3, 1)
	out := l.Forward(x, false)
	// out[t] = Σ_k w[k]·x[t+k−1]:
	// t0: w1·x0 + w2·x1 = 2·1+3·2 = 8
	// t1: w0·x0 + w1·x1 + w2·x2 = 1+4+9 = 14
	// t2: w0·x1 + w1·x2 = 2+6 = 8
	want := []float64{8, 14, 8}
	for i, w := range want {
		if math.Abs(out.Data()[i]-w) > 1e-12 {
			t.Fatalf("conv known values = %v, want %v", out.Data(), want)
		}
	}
}

func TestMaxPool1DKnownValues(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 5, 3, 2, 9, 0}, 1, 6, 1)
	out := NewMaxPool1D(2).Forward(x, false)
	want := []float64{5, 3, 9}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("maxpool = %v, want %v", out.Data(), want)
		}
	}
}

func TestMaxPool1DPoolLargerThanSeq(t *testing.T) {
	x := tensor.FromSlice([]float64{3, 7}, 1, 1, 2)
	out := NewMaxPool1D(4).Forward(x, false)
	if !shapeEq(out, 1, 1, 2) {
		t.Fatalf("pool>T output shape %v, want [1 1 2]", out.Shape())
	}
	if out.At(0, 0, 0) != 3 || out.At(0, 0, 1) != 7 {
		t.Fatalf("pool>T should be identity for T=1: %v", out.Data())
	}
}

func TestGlobalAvgPoolKnownValues(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 1, 3, 2)
	out := NewGlobalAvgPool1D().Forward(x, false)
	if out.At(0, 0) != 3 || out.At(0, 1) != 4 {
		t.Fatalf("GAP = %v, want [3 4]", out.Data())
	}
}

func TestBatchNormNormalizesTrainBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewBatchNorm(3)
	x := tensor.RandNormal(rng, 5, 3, 200, 3)
	out := l.Forward(x, true)
	// With default gamma=1, beta=0 the output per channel should be ~N(0,1).
	for c := 0; c < 3; c++ {
		mean, sq := 0.0, 0.0
		for r := 0; r < 200; r++ {
			v := out.At(r, c)
			mean += v
			sq += v * v
		}
		mean /= 200
		std := math.Sqrt(sq/200 - mean*mean)
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("BN channel %d mean %v, want 0", c, mean)
		}
		if math.Abs(std-1) > 0.01 {
			t.Fatalf("BN channel %d std %v, want ~1", c, std)
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewBatchNorm(2)
	l.Momentum = 0.5 // converge fast for the test
	for i := 0; i < 60; i++ {
		l.Forward(tensor.RandNormal(rng, 4, 2, 512, 2), true)
	}
	mean, variance := l.RunningStats()
	for c := 0; c < 2; c++ {
		if math.Abs(mean.At(c)-4) > 0.3 {
			t.Fatalf("running mean[%d] = %v, want ≈4", c, mean.At(c))
		}
		if math.Abs(variance.At(c)-4) > 0.6 {
			t.Fatalf("running var[%d] = %v, want ≈4", c, variance.At(c))
		}
	}
	// Inference must use running stats: a batch at the same distribution
	// should come out roughly standardized.
	out := l.Forward(tensor.RandNormal(rng, 4, 2, 256, 2), false)
	if math.Abs(out.Mean()) > 0.2 {
		t.Fatalf("inference BN output mean %v, want ≈0", out.Mean())
	}
}

func TestDropoutEvalIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewDropout(rand.New(rand.NewSource(9)), 0.7)
	x := tensor.RandNormal(rng, 0, 1, 4, 5)
	out := l.Forward(x, false)
	if !tensor.ApproxEqual(out, x, 0) {
		t.Fatal("eval-mode dropout is not identity")
	}
}

func TestDropoutTrainDropsAndRescales(t *testing.T) {
	l := NewDropout(rand.New(rand.NewSource(10)), 0.5)
	x := tensor.Ones(1, 10000)
	out := l.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range out.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // 1/(1-0.5)
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	frac := float64(zeros) / 10000
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("dropped fraction %v, want ≈0.5", frac)
	}
	// Expectation preserved.
	if m := out.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("dropout mean %v, want ≈1 (inverted dropout)", m)
	}
}

func TestDropoutZeroRateIsIdentityInTrain(t *testing.T) {
	l := NewDropout(rand.New(rand.NewSource(11)), 0)
	x := tensor.Ones(2, 3)
	out := l.Forward(x, true)
	if !tensor.ApproxEqual(out, x, 0) {
		t.Fatal("rate-0 dropout altered input")
	}
}

func TestGRUOutputShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	seq := NewGRU(rng, 4, 7, true)
	out := seq.Forward(tensor.RandNormal(rng, 0, 1, 3, 5, 4), false)
	if !shapeEq(out, 3, 5, 7) {
		t.Fatalf("GRU seq output %v, want [3 5 7]", out.Shape())
	}
	last := NewGRU(rng, 4, 7, false)
	out2 := last.Forward(tensor.RandNormal(rng, 0, 1, 3, 5, 4), false)
	if !shapeEq(out2, 3, 7) {
		t.Fatalf("GRU last output %v, want [3 7]", out2.Shape())
	}
}

func TestGRUSeqLastStepMatchesNonSeq(t *testing.T) {
	// With identical weights, the last frame of a return-sequences GRU must
	// equal the non-sequence output.
	rngA := rand.New(rand.NewSource(13))
	a := NewGRU(rngA, 3, 4, true)
	rngB := rand.New(rand.NewSource(13))
	b := NewGRU(rngB, 3, 4, false)
	x := tensor.RandNormal(rand.New(rand.NewSource(14)), 0, 1, 2, 6, 3)
	outA := a.Forward(x, false)
	outB := b.Forward(x, false)
	for bi := 0; bi < 2; bi++ {
		for h := 0; h < 4; h++ {
			if math.Abs(outA.At(bi, 5, h)-outB.At(bi, h)) > 1e-12 {
				t.Fatalf("seq last step %v != non-seq %v", outA.At(bi, 5, h), outB.At(bi, h))
			}
		}
	}
}

func TestLSTMOutputShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	seq := NewLSTM(rng, 4, 6, true)
	out := seq.Forward(tensor.RandNormal(rng, 0, 1, 2, 5, 4), false)
	if !shapeEq(out, 2, 5, 6) {
		t.Fatalf("LSTM seq output %v, want [2 5 6]", out.Shape())
	}
	last := NewLSTM(rng, 4, 6, false)
	out2 := last.Forward(tensor.RandNormal(rng, 0, 1, 2, 5, 4), false)
	if !shapeEq(out2, 2, 6) {
		t.Fatalf("LSTM last output %v, want [2 6]", out2.Shape())
	}
}

func TestOrthogonalSquareIsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	q := orthogonalSquare(rng, 8, 1)
	qt := q.Transpose2D()
	prod := tensor.MatMul(q, qt)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatalf("QQᵀ[%d][%d] = %v, want %v", i, j, prod.At(i, j), want)
			}
		}
	}
}

func TestResidualPanicsOnShapeChange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	res := NewResidual(NewDense(rng, 4, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("shape-changing Residual body did not panic")
		}
	}()
	res.Forward(tensor.New(2, 4), false)
}

func TestSequentialSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	s := NewSequential(NewDense(rng, 3, 4), NewReLU(), NewDense(rng, 4, 2))
	sum := s.Summary()
	if sum == "" {
		t.Fatal("empty summary")
	}
	// 3*4+4 + 4*2+2 = 26 total params.
	if got := ParamCount(s.Params()); got != 26 {
		t.Fatalf("ParamCount = %d, want 26", got)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(4))
	p.Grad.CopyFrom(tensor.FromSlice([]float64{3, 4, 0, 0}, 4))
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", pre)
	}
	if post := GlobalGradNorm([]*Param{p}); math.Abs(post-1) > 1e-9 {
		t.Fatalf("post-clip norm %v, want 1", post)
	}
	// maxNorm <= 0 disables clipping.
	p.Grad.CopyFrom(tensor.FromSlice([]float64{3, 4, 0, 0}, 4))
	ClipGradNorm([]*Param{p}, 0)
	if n := GlobalGradNorm([]*Param{p}); math.Abs(n-5) > 1e-12 {
		t.Fatalf("clip with maxNorm=0 altered grads: %v", n)
	}
}

func TestSGDStepAndZeroGrad(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float64{1, 1}, 2))
	p.Grad.CopyFrom(tensor.FromSlice([]float64{1, -1}, 2))
	opt := NewSGD(0.1, 0)
	opt.Step([]*Param{p})
	if p.Value.At(0) != 0.9 || p.Value.At(1) != 1.1 {
		t.Fatalf("SGD step wrong: %v", p.Value.Data())
	}
	if p.Grad.MaxAbs() != 0 {
		t.Fatal("optimizer did not zero gradients")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := NewParam("w", tensor.New(1))
	opt := NewSGD(1, 0.9)
	for i := 0; i < 3; i++ {
		p.Grad.Fill(1)
		opt.Step([]*Param{p})
	}
	// v1=-1, v2=-1.9, v3=-2.71 → w = -(1+1.9+2.71) = -5.61
	if math.Abs(p.Value.At(0)+5.61) > 1e-9 {
		t.Fatalf("momentum value %v, want -5.61", p.Value.At(0))
	}
}

func TestRMSpropNormalizesScale(t *testing.T) {
	// Two parameters with gradients of very different magnitude should
	// receive nearly equal first-step updates (scale invariance).
	p1 := NewParam("a", tensor.New(1))
	p2 := NewParam("b", tensor.New(1))
	p1.Grad.Fill(100)
	p2.Grad.Fill(0.01)
	opt := NewRMSprop(0.01)
	opt.Step([]*Param{p1, p2})
	d1 := math.Abs(p1.Value.At(0))
	d2 := math.Abs(p2.Value.At(0))
	if math.Abs(d1-d2)/d1 > 1e-3 {
		t.Fatalf("RMSprop updates not scale-normalized: %v vs %v", d1, d2)
	}
}

// optimizers must reduce a simple convex quadratic.
func TestOptimizersConvergeOnQuadratic(t *testing.T) {
	opts := map[string]Optimizer{
		"sgd":      NewSGD(0.1, 0),
		"sgd-mom":  NewSGD(0.05, 0.9),
		"rmsprop":  NewRMSprop(0.05),
		"adam":     NewAdam(0.1),
		"adadelta": NewAdaDelta(),
	}
	// AdaDelta's effective step size bootstraps from eps, so it needs far
	// more iterations on the same quadratic.
	iters := map[string]int{"adadelta": 20000}
	for name, opt := range opts {
		p := NewParam("w", tensor.FromSlice([]float64{5, -3}, 2))
		n := iters[name]
		if n == 0 {
			n = 500
		}
		for i := 0; i < n; i++ {
			// L = ||w||²/2, dL/dw = w
			p.Grad.CopyFrom(p.Value)
			opt.Step([]*Param{p})
		}
		if got := p.Value.Norm2(); got > 0.1 {
			t.Errorf("%s failed to converge: ||w|| = %v", name, got)
		}
	}
}

func TestNetworkLearnsXOR(t *testing.T) {
	// End-to-end sanity: a 2-layer MLP must learn XOR.
	rng := rand.New(rand.NewSource(19))
	stack := NewSequential(
		NewDense(rng, 2, 16),
		NewTanh(),
		NewDense(rng, 16, 2),
	)
	net := NewNetwork(stack, NewSoftmaxCrossEntropy(), NewAdam(0.05))
	x := tensor.FromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	y := []int{0, 1, 1, 0}
	var last float64
	for i := 0; i < 400; i++ {
		last = net.TrainBatch(x, y)
	}
	if last > 0.05 {
		t.Fatalf("XOR loss %v after training, want < 0.05", last)
	}
	pred := net.PredictClasses(x, 0)
	for i, p := range pred {
		if p != y[i] {
			t.Fatalf("XOR misclassified input %d: got %d want %d", i, p, y[i])
		}
	}
}

func TestNetworkFitReportsStats(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	stack := NewSequential(NewDense(rng, 3, 8), NewReLU(), NewDense(rng, 8, 2))
	net := NewNetwork(stack, NewSoftmaxCrossEntropy(), NewSGD(0.1, 0.9))
	x := tensor.RandNormal(rng, 0, 1, 64, 3)
	y := make([]int, 64)
	for i := 0; i < 64; i++ {
		if x.At(i, 0)+x.At(i, 1) > 0 {
			y[i] = 1
		}
	}
	stats := net.Fit(x, y, FitConfig{
		Epochs: 30, BatchSize: 16, Shuffle: true, RNG: rng,
		TestX: x, TestLabels: y,
	})
	if len(stats) != 30 {
		t.Fatalf("got %d epoch stats, want 30", len(stats))
	}
	first, last := stats[0], stats[len(stats)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Fatalf("training loss did not decrease: %v → %v", first.TrainLoss, last.TrainLoss)
	}
	if last.TestAcc < 0.85 {
		t.Fatalf("linearly-separable accuracy %v, want > 0.85", last.TestAcc)
	}
}

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	build := func(seed int64) *Network {
		r := rand.New(rand.NewSource(seed))
		return NewNetwork(NewSequential(
			NewDense(r, 4, 6),
			NewBatchNorm(6),
			NewTanh(),
			NewDense(r, 6, 3),
		), NewSoftmaxCrossEntropy(), NewSGD(0.1, 0))
	}
	src := build(1)
	// Train briefly so weights and BN running stats are non-trivial.
	x := tensor.RandNormal(rng, 0, 1, 32, 4)
	y := make([]int, 32)
	for i := range y {
		y[i] = i % 3
	}
	for i := 0; i < 5; i++ {
		src.TrainBatch(x, y)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	dst := build(2) // different init
	if err := dst.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	want := src.Predict(x)
	got := dst.Predict(x)
	if !tensor.ApproxEqual(want, got, 1e-12) {
		t.Fatal("loaded network predictions differ from source")
	}
}

func TestNetworkLoadRejectsMismatchedArch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	src := NewNetwork(NewSequential(NewDense(rng, 4, 6)), NewSoftmaxCrossEntropy(), NewSGD(0.1, 0))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	dst := NewNetwork(NewSequential(NewDense(rng, 4, 7)), NewSoftmaxCrossEntropy(), NewSGD(0.1, 0))
	if err := dst.Load(&buf); err == nil {
		t.Fatal("Load accepted a mismatched architecture")
	}
}

func TestAccuracyHelper(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		2, 1, 0,
		0, 2, 1,
		1, 0, 2,
		2, 1, 0,
	}, 4, 3)
	labels := []int{0, 1, 2, 1}
	if got := Accuracy(logits, labels); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 0.75", got)
	}
}

// --- property-based tests -------------------------------------------------

// TestPropResidualForwardIsBodyPlusInput holds for any input.
func TestPropResidualForwardIsBodyPlusInput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		body := NewDense(rng, n, n)
		res := NewResidual(body)
		x := tensor.RandNormal(rng, 0, 1, 3, n)
		got := res.Forward(x, false)
		want := tensor.Add(body.Forward(x, false), x)
		return tensor.ApproxEqual(got, want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropSoftmaxCEPositive: cross-entropy loss is always positive.
func TestPropSoftmaxCEPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, c := 1+rng.Intn(8), 2+rng.Intn(6)
		logits := tensor.RandNormal(rng, 0, 3, b, c)
		labels := make([]int, b)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		loss := NewSoftmaxCrossEntropy()
		return loss.Forward(logits, labels) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropCEGradientRowsSumToZero: each row of d(CE)/d(logits) sums to 0
// (softmax minus one-hot).
func TestPropCEGradientRowsSumToZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, c := 1+rng.Intn(8), 2+rng.Intn(6)
		logits := tensor.RandNormal(rng, 0, 3, b, c)
		labels := make([]int, b)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		loss := NewSoftmaxCrossEntropy()
		loss.Forward(logits, labels)
		grad := loss.Backward()
		for r := 0; r < b; r++ {
			s := 0.0
			for cc := 0; cc < c; cc++ {
				s += grad.At(r, cc)
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropBatchNormOutputMoments: training-mode BN always standardizes.
func TestPropBatchNormOutputMoments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(5)
		n := 16 + rng.Intn(64)
		bn := NewBatchNorm(c)
		mean := rng.NormFloat64() * 10
		std := 0.5 + rng.Float64()*5
		out := bn.Forward(tensor.RandNormal(rng, mean, std, n, c), true)
		for ci := 0; ci < c; ci++ {
			m, sq := 0.0, 0.0
			for r := 0; r < n; r++ {
				v := out.At(r, ci)
				m += v
				sq += v * v
			}
			m /= float64(n)
			if math.Abs(m) > 1e-7 {
				return false
			}
			variance := sq/float64(n) - m*m
			// Allow the eps slack: var = σ²/(σ²+eps) ≤ 1.
			if variance > 1.0001 || variance < 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
