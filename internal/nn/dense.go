package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully-connected layer: y = xW + b for rank-2 inputs
// (batch, in) producing (batch, out).
type Dense struct {
	In, Out int
	w       *Param // (in, out)
	b       *Param // (out)
	useBias bool

	x   *tensor.Tensor // cached input
	out *tensor.Tensor // reused output buffer (valid until next Forward)
	dx  *tensor.Tensor // reused input-gradient buffer
}

// NewDense constructs a Dense layer with Glorot-uniform weights and zero
// bias, matching Keras defaults.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		In: in, Out: out,
		w:       NewParam(fmt.Sprintf("dense_w_%dx%d", in, out), tensor.GlorotUniform(rng, in, out, in, out)),
		b:       NewParam(fmt.Sprintf("dense_b_%d", out), tensor.New(out)),
		useBias: true,
	}
}

// NewDenseNoBias constructs a Dense layer without a bias term.
func NewDenseNoBias(rng *rand.Rand, in, out int) *Dense {
	d := NewDense(rng, in, out)
	d.useBias = false
	return d
}

var _ Layer = (*Dense)(nil)

// Forward implements Layer.
//
//pelican:noalloc
func (l *Dense) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank("Dense", x, 2)
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Dense expects %d input features, got shape %v", l.In, x.Shape()))
	}
	l.x = x
	out := ensure(&l.out, x.Dim(0), l.Out)
	tensor.MatMulInto(out, x, l.w.Value)
	if l.useBias {
		out.AddRowVec(l.b.Value)
	}
	return out
}

// Backward implements Layer.
//
//pelican:noalloc
func (l *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	mustRank("Dense.Backward", grad, 2)
	// dW += xᵀ @ grad
	dw := tensor.Scratch.Get(l.In, l.Out)
	tensor.MatMulTransAInto(dw, l.x, grad)
	l.w.Grad.Axpy(1, dw)
	tensor.Scratch.Put(dw)
	if l.useBias {
		db := tensor.Scratch.Get(l.Out)
		tensor.SumRowsInto(db, grad)
		l.b.Grad.Axpy(1, db)
		tensor.Scratch.Put(db)
	}
	// dx = grad @ Wᵀ
	dx := ensure(&l.dx, grad.Dim(0), l.In)
	tensor.MatMulTransBInto(dx, grad, l.w.Value)
	return dx
}

// Params implements Layer.
func (l *Dense) Params() []*Param {
	if l.useBias {
		return []*Param{l.w, l.b}
	}
	return []*Param{l.w}
}

// LayerName implements Named.
func (l *Dense) LayerName() string { return fmt.Sprintf("Dense(%d→%d)", l.In, l.Out) }
