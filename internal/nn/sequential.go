package nn

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// Sequential chains layers: forward runs them in order, backward in
// reverse.
type Sequential struct {
	layers []Layer
	// version increments on Add so parameter-list caches (Network.Params)
	// know to rebuild after the stack is mutated.
	version int
}

// NewSequential constructs a Sequential container over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: layers}
}

var _ Layer = (*Sequential)(nil)

// Add appends a layer and invalidates parameter-list caches.
func (s *Sequential) Add(l Layer) {
	s.layers = append(s.layers, l)
	s.version++
}

// Version returns a counter that changes whenever the top-level layer list
// is mutated via Add. Mutating nested containers directly is not tracked.
func (s *Sequential) Version() int { return s.version }

// Layers returns the contained layers (shared slice; do not mutate).
func (s *Sequential) Layers() []Layer { return s.layers }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// LayerName implements Named.
func (s *Sequential) LayerName() string { return fmt.Sprintf("Sequential(%d layers)", len(s.layers)) }

// Summary renders a human-readable description of the stack, one line per
// layer, with parameter counts.
func (s *Sequential) Summary() string {
	var b strings.Builder
	total := 0
	for i, l := range s.layers {
		name := fmt.Sprintf("%T", l)
		if n, ok := l.(Named); ok {
			name = n.LayerName()
		}
		np := ParamCount(l.Params())
		total += np
		fmt.Fprintf(&b, "%3d  %-40s params=%d\n", i, name, np)
	}
	fmt.Fprintf(&b, "total params: %d\n", total)
	return b.String()
}

// Residual wraps a body with an identity shortcut: out = body(x) + x.
// The body's output shape must equal its input shape — the reason the
// paper sets filters = recurrent units = feature count (§V-C).
type Residual struct {
	Body Layer

	out *tensor.Tensor // reused output buffer (valid until next Forward)
	dx  *tensor.Tensor // reused gradient buffer
}

// NewResidual constructs a Residual wrapper around body.
func NewResidual(body Layer) *Residual { return &Residual{Body: body} }

var _ Layer = (*Residual)(nil)

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := r.Body.Forward(x, train)
	if !out.SameShape(x) {
		panic(fmt.Sprintf("nn: Residual body changed shape %v → %v; shortcut add impossible", x.Shape(), out.Shape()))
	}
	sum := ensureLike(&r.out, out)
	tensor.AddInto(sum, out, x)
	return sum
}

// Backward implements Layer.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dBody := r.Body.Backward(grad)
	// Shortcut contributes the upstream gradient unchanged.
	dx := ensureLike(&r.dx, grad)
	tensor.AddInto(dx, dBody, grad)
	return dx
}

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.Body.Params() }

// LayerName implements Named.
func (r *Residual) LayerName() string {
	if n, ok := r.Body.(Named); ok {
		return fmt.Sprintf("Residual(%s)", n.LayerName())
	}
	return "Residual"
}

// PreShortcut composes head → Residual(body): out = body(head(x)) + head(x).
// This is exactly the paper's ResBlk wiring (Fig. 4b), where head is the
// leading BatchNorm and body is the remainder of the block, with the
// shortcut taken from the BN output.
type PreShortcut struct {
	Head Layer
	Res  *Residual
}

// NewPreShortcut builds the paper's shortcut-from-BN-output composite.
func NewPreShortcut(head, body Layer) *PreShortcut {
	return &PreShortcut{Head: head, Res: NewResidual(body)}
}

var _ Layer = (*PreShortcut)(nil)

// Forward implements Layer.
func (p *PreShortcut) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return p.Res.Forward(p.Head.Forward(x, train), train)
}

// Backward implements Layer.
func (p *PreShortcut) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return p.Head.Backward(p.Res.Backward(grad))
}

// Params implements Layer.
func (p *PreShortcut) Params() []*Param {
	return append(p.Head.Params(), p.Res.Params()...)
}

// LayerName implements Named.
func (p *PreShortcut) LayerName() string { return "PreShortcut" }
