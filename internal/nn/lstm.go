package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// lstmStep caches one timestep's intermediates for backpropagation through
// time.
type lstmStep struct {
	hPrev *tensor.Tensor
	cPrev *tensor.Tensor
	i     *tensor.Tensor // input gate
	f     *tensor.Tensor // forget gate
	g     *tensor.Tensor // candidate (tanh)
	o     *tensor.Tensor // output gate
	c     *tensor.Tensor // new cell state
	tc    *tensor.Tensor // tanh(c)
}

// LSTM is a long short-term memory layer over (batch, T, inC) inputs with H
// units: the classical baseline the paper compares against (§V-H). Gates use
// the logistic sigmoid; candidate and output use tanh. The forget-gate bias
// is initialized to 1 (Keras unit_forget_bias).
//
// With ReturnSequences the output is (batch, T, H); otherwise the final
// hidden state (batch, H).
type LSTM struct {
	InC, H          int
	ReturnSequences bool

	w *Param // (inC, 4H): [i | f | g | o]
	u *Param // (H, 4H)
	b *Param // (4H)

	x     *tensor.Tensor
	steps []lstmStep
}

// NewLSTM constructs an LSTM with Glorot-uniform input kernel, orthogonal
// recurrent kernel, zero bias except forget gate = 1.
func NewLSTM(rng *rand.Rand, inC, h int, returnSequences bool) *LSTM {
	u := tensor.New(h, 4*h)
	for g := 0; g < 4; g++ {
		q := orthogonalSquare(rng, h, 1)
		for i := 0; i < h; i++ {
			copy(u.Data()[i*4*h+g*h:i*4*h+(g+1)*h], q.Data()[i*h:(i+1)*h])
		}
	}
	b := tensor.New(4 * h)
	for j := h; j < 2*h; j++ {
		b.Data()[j] = 1 // forget gate bias
	}
	return &LSTM{
		InC: inC, H: h, ReturnSequences: returnSequences,
		w: NewParam(fmt.Sprintf("lstm_w_%dx%d", inC, 4*h), tensor.GlorotUniform(rng, inC, h, inC, 4*h)),
		u: NewParam(fmt.Sprintf("lstm_u_%dx%d", h, 4*h), u),
		b: NewParam(fmt.Sprintf("lstm_b_%d", 4*h), b),
	}
}

var _ Layer = (*LSTM)(nil)

// uGate returns gate g's recurrent kernel as a contiguous (H, H) matrix.
func (l *LSTM) uGate(g int) *tensor.Tensor {
	h := l.H
	out := tensor.New(h, h)
	ud, od := l.u.Value.Data(), out.Data()
	for i := 0; i < h; i++ {
		copy(od[i*h:(i+1)*h], ud[i*4*h+g*h:i*4*h+(g+1)*h])
	}
	return out
}

func (l *LSTM) addUGateGrad(g int, dU *tensor.Tensor) {
	h := l.H
	gd, dd := l.u.Grad.Data(), dU.Data()
	for i := 0; i < h; i++ {
		row := gd[i*4*h+g*h : i*4*h+(g+1)*h]
		src := dd[i*h : (i+1)*h]
		for j, v := range src {
			row[j] += v
		}
	}
}

// gateCols4 returns a (B, H) copy of gate g's columns from a (B, 4H) matrix.
func gateCols4(m *tensor.Tensor, g, h int) *tensor.Tensor {
	b := m.Dim(0)
	out := tensor.New(b, h)
	md, od := m.Data(), out.Data()
	w := m.Dim(1)
	for r := 0; r < b; r++ {
		copy(od[r*h:(r+1)*h], md[r*w+g*h:r*w+(g+1)*h])
	}
	return out
}

func addGateCols4(dst *tensor.Tensor, src *tensor.Tensor, g, h int) {
	b := dst.Dim(0)
	w := dst.Dim(1)
	dd, sd := dst.Data(), src.Data()
	for r := 0; r < b; r++ {
		drow := dd[r*w+g*h : r*w+(g+1)*h]
		srow := sd[r*h : (r+1)*h]
		for i, v := range srow {
			drow[i] += v
		}
	}
}

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank("LSTM", x, 3)
	if x.Dim(2) != l.InC {
		panic(fmt.Sprintf("nn: LSTM expects %d input channels, got shape %v", l.InC, x.Shape()))
	}
	l.x = x
	b, t := x.Dim(0), x.Dim(1)
	h := l.H
	l.steps = make([]lstmStep, t)

	hPrev := tensor.New(b, h)
	cPrev := tensor.New(b, h)
	var outSeq *tensor.Tensor
	if l.ReturnSequences {
		outSeq = tensor.New(b, t, h)
	}

	xd := x.Data()
	for ti := 0; ti < t; ti++ {
		xt := tensor.New(b, l.InC)
		for bi := 0; bi < b; bi++ {
			copy(xt.Row(bi), xd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC])
		}
		a := tensor.MatMul(xt, l.w.Value) // (B, 4H)
		a.AddRowVec(l.b.Value)
		p := tensor.MatMul(hPrev, l.u.Value)
		a.Axpy(1, p)

		ig := gateCols4(a, 0, h).Apply(sigmoid)
		fg := gateCols4(a, 1, h).Apply(sigmoid)
		gg := gateCols4(a, 2, h).Apply(math.Tanh)
		og := gateCols4(a, 3, h).Apply(sigmoid)

		c := tensor.New(b, h)
		cd, fd, cpd, id, gd2 := c.Data(), fg.Data(), cPrev.Data(), ig.Data(), gg.Data()
		for i := range cd {
			cd[i] = fd[i]*cpd[i] + id[i]*gd2[i]
		}
		tc := c.Map(math.Tanh)
		hNew := tensor.Mul(og, tc)

		l.steps[ti] = lstmStep{hPrev: hPrev, cPrev: cPrev, i: ig, f: fg, g: gg, o: og, c: c, tc: tc}
		if l.ReturnSequences {
			od := outSeq.Data()
			hd := hNew.Data()
			for bi := 0; bi < b; bi++ {
				copy(od[(bi*t+ti)*h:(bi*t+ti+1)*h], hd[bi*h:(bi+1)*h])
			}
		}
		hPrev, cPrev = hNew, c
	}
	if l.ReturnSequences {
		return outSeq
	}
	return hPrev
}

// Backward implements Layer.
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b, t := l.x.Dim(0), l.x.Dim(1)
	h := l.H
	dx := tensor.New(b, t, l.InC)
	dh := tensor.New(b, h)
	dc := tensor.New(b, h)

	gd := grad.Data()
	xd, dxd := l.x.Data(), dx.Data()

	for ti := t - 1; ti >= 0; ti-- {
		st := &l.steps[ti]
		if l.ReturnSequences {
			dhd := dh.Data()
			for bi := 0; bi < b; bi++ {
				src := gd[(bi*t+ti)*h : (bi*t+ti+1)*h]
				dst := dhd[bi*h : (bi+1)*h]
				for i, v := range src {
					dst[i] += v
				}
			}
		} else if ti == t-1 {
			dh.Axpy(1, grad)
		}

		// h = o ⊙ tanh(c)
		do := tensor.Mul(dh, st.tc)
		dhd, od2, tcd, dcd := dh.Data(), st.o.Data(), st.tc.Data(), dc.Data()
		for i := range dcd {
			dcd[i] += dhd[i] * od2[i] * (1 - tcd[i]*tcd[i])
		}

		// c = f ⊙ cPrev + i ⊙ g
		di := tensor.Mul(dc, st.g)
		df := tensor.Mul(dc, st.cPrev)
		dg := tensor.Mul(dc, st.i)
		dcPrev := tensor.Mul(dc, st.f)

		// Through gate nonlinearities to pre-activations.
		dai := tensor.New(b, h)
		daf := tensor.New(b, h)
		dag := tensor.New(b, h)
		dao := tensor.New(b, h)
		id, fd, gd2, dod := st.i.Data(), st.f.Data(), st.g.Data(), do.Data()
		daid, dafd, dagd, daod := dai.Data(), daf.Data(), dag.Data(), dao.Data()
		did, dfd, dgd := di.Data(), df.Data(), dg.Data()
		for i := range daid {
			daid[i] = did[i] * id[i] * (1 - id[i])
			dafd[i] = dfd[i] * fd[i] * (1 - fd[i])
			dagd[i] = dgd[i] * (1 - gd2[i]*gd2[i])
			daod[i] = dod[i] * od2[i] * (1 - od2[i])
		}

		da := tensor.New(b, 4*h)
		addGateCols4(da, dai, 0, h)
		addGateCols4(da, daf, 1, h)
		addGateCols4(da, dag, 2, h)
		addGateCols4(da, dao, 3, h)

		xt := tensor.New(b, l.InC)
		for bi := 0; bi < b; bi++ {
			copy(xt.Row(bi), xd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC])
		}
		dW := tensor.New(l.InC, 4*h)
		tensor.MatMulTransAInto(dW, xt, da)
		l.w.Grad.Axpy(1, dW)
		dU := tensor.New(h, 4*h)
		tensor.MatMulTransAInto(dU, st.hPrev, da)
		l.u.Grad.Axpy(1, dU)
		dbVec := tensor.New(4 * h)
		tensor.SumRowsInto(dbVec, da)
		l.b.Grad.Axpy(1, dbVec)

		dxt := tensor.New(b, l.InC)
		tensor.MatMulTransBInto(dxt, da, l.w.Value)
		for bi := 0; bi < b; bi++ {
			copy(dxd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC], dxt.Row(bi))
		}

		dhPrev := tensor.New(b, h)
		tensor.MatMulTransBInto(dhPrev, da, l.u.Value)
		dh = dhPrev
		dc = dcPrev
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.w, l.u, l.b} }

// LayerName implements Named.
func (l *LSTM) LayerName() string {
	return fmt.Sprintf("LSTM(%d→%d, seq=%v)", l.InC, l.H, l.ReturnSequences)
}
