package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// lstmStep caches one timestep's intermediates for backpropagation through
// time. All tensors are workspace checkouts owned by the layer; they stay
// valid through the matching Backward and are reclaimed at the start of the
// next Forward.
type lstmStep struct {
	hPrev *tensor.Tensor
	cPrev *tensor.Tensor
	i     *tensor.Tensor // input gate
	f     *tensor.Tensor // forget gate
	g     *tensor.Tensor // candidate (tanh)
	o     *tensor.Tensor // output gate
	c     *tensor.Tensor // new cell state
	tc    *tensor.Tensor // tanh(c)
}

// LSTM is a long short-term memory layer over (batch, T, inC) inputs with H
// units: the classical baseline the paper compares against (§V-H). Gates use
// the logistic sigmoid; candidate and output use tanh. The forget-gate bias
// is initialized to 1 (Keras unit_forget_bias).
//
// With ReturnSequences the output is (batch, T, H); otherwise the final
// hidden state (batch, H).
type LSTM struct {
	InC, H          int
	ReturnSequences bool

	w *Param // (inC, 4H): [i | f | g | o]
	u *Param // (H, 4H)
	b *Param // (4H)

	x     *tensor.Tensor
	steps []lstmStep
	lastH *tensor.Tensor // final hidden state of the last pass (workspace)

	outSeq *tensor.Tensor // reused sequence output (valid until next Forward)
	dx     *tensor.Tensor // reused gradient buffer
}

// NewLSTM constructs an LSTM with Glorot-uniform input kernel, orthogonal
// recurrent kernel, zero bias except forget gate = 1.
func NewLSTM(rng *rand.Rand, inC, h int, returnSequences bool) *LSTM {
	u := tensor.New(h, 4*h)
	for g := 0; g < 4; g++ {
		q := orthogonalSquare(rng, h, 1)
		for i := 0; i < h; i++ {
			copy(u.Data()[i*4*h+g*h:i*4*h+(g+1)*h], q.Data()[i*h:(i+1)*h])
		}
	}
	b := tensor.New(4 * h)
	for j := h; j < 2*h; j++ {
		b.Data()[j] = 1 // forget gate bias
	}
	return &LSTM{
		InC: inC, H: h, ReturnSequences: returnSequences,
		w: NewParam(fmt.Sprintf("lstm_w_%dx%d", inC, 4*h), tensor.GlorotUniform(rng, inC, h, inC, 4*h)),
		u: NewParam(fmt.Sprintf("lstm_u_%dx%d", h, 4*h), u),
		b: NewParam(fmt.Sprintf("lstm_b_%d", 4*h), b),
	}
}

var _ Layer = (*LSTM)(nil)

func (l *LSTM) addUGateGrad(g int, dU *tensor.Tensor) {
	h := l.H
	gd, dd := l.u.Grad.Data(), dU.Data()
	for i := 0; i < h; i++ {
		row := gd[i*4*h+g*h : i*4*h+(g+1)*h]
		src := dd[i*h : (i+1)*h]
		for j, v := range src {
			row[j] += v
		}
	}
}

// The gate-column helpers (gateColsInto, setGateCols) are shared with the
// GRU: they read the gate count from the matrix width at runtime.

// reclaimSteps returns the previous pass's step caches to the workspace.
// hPrev/cPrev of step i alias h/c of step i−1, so only step 0's initial
// states and the final hidden state are returned separately.
//
//pelican:noalloc
func (l *LSTM) reclaimSteps() {
	for i := range l.steps {
		st := &l.steps[i]
		if i == 0 {
			tensor.Scratch.Put(st.hPrev)
			tensor.Scratch.Put(st.cPrev)
		} else {
			tensor.Scratch.Put(st.hPrev) // h of step i−1
		}
		tensor.Scratch.Put(st.i)
		tensor.Scratch.Put(st.f)
		tensor.Scratch.Put(st.g)
		tensor.Scratch.Put(st.o)
		tensor.Scratch.Put(st.c)
		tensor.Scratch.Put(st.tc)
	}
	l.steps = l.steps[:0]
	if l.lastH != nil {
		tensor.Scratch.Put(l.lastH)
		l.lastH = nil
	}
}

// Forward implements Layer.
//
//pelican:noalloc
func (l *LSTM) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank("LSTM", x, 3)
	if x.Dim(2) != l.InC {
		panic(fmt.Sprintf("nn: LSTM expects %d input channels, got shape %v", l.InC, x.Shape()))
	}
	l.x = x
	b, t := x.Dim(0), x.Dim(1)
	h := l.H
	l.reclaimSteps()
	if cap(l.steps) < t {
		l.steps = make([]lstmStep, 0, t)
	}

	hPrev := tensor.Scratch.GetZeroed(b, h)
	cPrev := tensor.Scratch.GetZeroed(b, h)
	var outSeq *tensor.Tensor
	if l.ReturnSequences {
		outSeq = ensure(&l.outSeq, b, t, h)
	}

	// Step-scoped temporaries, reused across timesteps.
	xt := tensor.Scratch.Get(b, l.InC)
	a := tensor.Scratch.Get(b, 4*h)
	p := tensor.Scratch.Get(b, 4*h)

	xd := x.Data()
	for ti := 0; ti < t; ti++ {
		for bi := 0; bi < b; bi++ {
			copy(xt.Row(bi), xd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC])
		}
		tensor.MatMulInto(a, xt, l.w.Value) // (B, 4H)
		a.AddRowVec(l.b.Value)
		tensor.MatMulInto(p, hPrev, l.u.Value)
		a.Axpy(1, p)

		ig := tensor.Scratch.Get(b, h)
		fg := tensor.Scratch.Get(b, h)
		gg := tensor.Scratch.Get(b, h)
		og := tensor.Scratch.Get(b, h)
		gateColsInto(ig, a, 0, h)
		gateColsInto(fg, a, 1, h)
		gateColsInto(gg, a, 2, h)
		gateColsInto(og, a, 3, h)
		ig.Apply(sigmoid)
		fg.Apply(sigmoid)
		gg.Apply(math.Tanh)
		og.Apply(sigmoid)

		c := tensor.Scratch.Get(b, h)
		cd, fd, cpd, id, gd2 := c.Data(), fg.Data(), cPrev.Data(), ig.Data(), gg.Data()
		for i := range cd {
			cd[i] = fd[i]*cpd[i] + id[i]*gd2[i]
		}
		tc := tensor.Scratch.Get(b, h)
		tcd := tc.Data()
		for i := range tcd {
			tcd[i] = math.Tanh(cd[i])
		}
		hNew := tensor.Scratch.Get(b, h)
		tensor.MulInto(hNew, og, tc)

		l.steps = append(l.steps, lstmStep{hPrev: hPrev, cPrev: cPrev, i: ig, f: fg, g: gg, o: og, c: c, tc: tc})
		if l.ReturnSequences {
			od := outSeq.Data()
			hd := hNew.Data()
			for bi := 0; bi < b; bi++ {
				copy(od[(bi*t+ti)*h:(bi*t+ti+1)*h], hd[bi*h:(bi+1)*h])
			}
		}
		hPrev, cPrev = hNew, c
	}
	tensor.Scratch.Put(xt)
	tensor.Scratch.Put(a)
	tensor.Scratch.Put(p)
	l.lastH = hPrev
	if l.ReturnSequences {
		return outSeq
	}
	return hPrev
}

// Backward implements Layer.
//
//pelican:noalloc
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b, t := l.x.Dim(0), l.x.Dim(1)
	h := l.H
	dx := ensure(&l.dx, b, t, l.InC)
	dh := tensor.Scratch.GetZeroed(b, h)
	dc := tensor.Scratch.GetZeroed(b, h)
	dhPrev := tensor.Scratch.Get(b, h)
	dcPrev := tensor.Scratch.Get(b, h)

	// Step-scoped temporaries, reused across timesteps.
	do := tensor.Scratch.Get(b, h)
	di := tensor.Scratch.Get(b, h)
	df := tensor.Scratch.Get(b, h)
	dg := tensor.Scratch.Get(b, h)
	dai := tensor.Scratch.Get(b, h)
	daf := tensor.Scratch.Get(b, h)
	dag := tensor.Scratch.Get(b, h)
	dao := tensor.Scratch.Get(b, h)
	da := tensor.Scratch.Get(b, 4*h)
	dW := tensor.Scratch.Get(l.InC, 4*h)
	dU := tensor.Scratch.Get(h, 4*h)
	dbVec := tensor.Scratch.Get(4 * h)
	xt := tensor.Scratch.Get(b, l.InC)
	dxt := tensor.Scratch.Get(b, l.InC)

	gd := grad.Data()
	xd, dxd := l.x.Data(), dx.Data()

	for ti := t - 1; ti >= 0; ti-- {
		st := &l.steps[ti]
		if l.ReturnSequences {
			dhd := dh.Data()
			for bi := 0; bi < b; bi++ {
				src := gd[(bi*t+ti)*h : (bi*t+ti+1)*h]
				dst := dhd[bi*h : (bi+1)*h]
				for i, v := range src {
					dst[i] += v
				}
			}
		} else if ti == t-1 {
			dh.Axpy(1, grad)
		}

		// h = o ⊙ tanh(c)
		tensor.MulInto(do, dh, st.tc)
		dhd, od2, tcd, dcd := dh.Data(), st.o.Data(), st.tc.Data(), dc.Data()
		for i := range dcd {
			dcd[i] += dhd[i] * od2[i] * (1 - tcd[i]*tcd[i])
		}

		// c = f ⊙ cPrev + i ⊙ g
		tensor.MulInto(di, dc, st.g)
		tensor.MulInto(df, dc, st.cPrev)
		tensor.MulInto(dg, dc, st.i)
		tensor.MulInto(dcPrev, dc, st.f)

		// Through gate nonlinearities to pre-activations.
		id, fd, gd2, dod := st.i.Data(), st.f.Data(), st.g.Data(), do.Data()
		daid, dafd, dagd, daod := dai.Data(), daf.Data(), dag.Data(), dao.Data()
		did, dfd, dgd := di.Data(), df.Data(), dg.Data()
		for i := range daid {
			daid[i] = did[i] * id[i] * (1 - id[i])
			dafd[i] = dfd[i] * fd[i] * (1 - fd[i])
			dagd[i] = dgd[i] * (1 - gd2[i]*gd2[i])
			daod[i] = dod[i] * od2[i] * (1 - od2[i])
		}

		setGateCols(da, dai, 0, h)
		setGateCols(da, daf, 1, h)
		setGateCols(da, dag, 2, h)
		setGateCols(da, dao, 3, h)

		for bi := 0; bi < b; bi++ {
			copy(xt.Row(bi), xd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC])
		}
		tensor.MatMulTransAInto(dW, xt, da)
		l.w.Grad.Axpy(1, dW)
		tensor.MatMulTransAInto(dU, st.hPrev, da)
		l.u.Grad.Axpy(1, dU)
		tensor.SumRowsInto(dbVec, da)
		l.b.Grad.Axpy(1, dbVec)

		tensor.MatMulTransBInto(dxt, da, l.w.Value)
		for bi := 0; bi < b; bi++ {
			copy(dxd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC], dxt.Row(bi))
		}

		tensor.MatMulTransBInto(dhPrev, da, l.u.Value)
		dh, dhPrev = dhPrev, dh
		dc, dcPrev = dcPrev, dc
	}

	tensor.Scratch.Put(dh)
	tensor.Scratch.Put(dc)
	tensor.Scratch.Put(dhPrev)
	tensor.Scratch.Put(dcPrev)
	tensor.Scratch.Put(do)
	tensor.Scratch.Put(di)
	tensor.Scratch.Put(df)
	tensor.Scratch.Put(dg)
	tensor.Scratch.Put(dai)
	tensor.Scratch.Put(daf)
	tensor.Scratch.Put(dag)
	tensor.Scratch.Put(dao)
	tensor.Scratch.Put(da)
	tensor.Scratch.Put(dW)
	tensor.Scratch.Put(dU)
	tensor.Scratch.Put(dbVec)
	tensor.Scratch.Put(xt)
	tensor.Scratch.Put(dxt)
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.w, l.u, l.b} }

// LayerName implements Named.
func (l *LSTM) LayerName() string {
	return fmt.Sprintf("LSTM(%d→%d, seq=%v)", l.InC, l.H, l.ReturnSequences)
}
