package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// orthogonalSquare returns an n×n matrix with orthonormal rows/columns,
// built by modified Gram–Schmidt on a random normal matrix and scaled by
// gain. Keras initializes recurrent kernels orthogonally; we do the same
// per gate.
func orthogonalSquare(rng *rand.Rand, n int, gain float64) *tensor.Tensor {
	m := tensor.RandNormal(rng, 0, 1, n, n)
	d := m.Data()
	for i := 0; i < n; i++ {
		ri := d[i*n : (i+1)*n]
		// Subtract projections onto previous rows.
		for j := 0; j < i; j++ {
			rj := d[j*n : (j+1)*n]
			dot := 0.0
			for k := range ri {
				dot += ri[k] * rj[k]
			}
			for k := range ri {
				ri[k] -= dot * rj[k]
			}
		}
		norm := 0.0
		for _, v := range ri {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate draw; re-randomize this row deterministically.
			for k := range ri {
				ri[k] = rng.NormFloat64()
			}
			i-- // redo orthogonalization for this row
			continue
		}
		for k := range ri {
			ri[k] = ri[k] / norm * gain
		}
	}
	return m
}

// gruStep caches one timestep's intermediate values for backpropagation
// through time. All tensors are workspace checkouts owned by the layer;
// they stay valid through the matching Backward and are reclaimed at the
// start of the next Forward.
type gruStep struct {
	hPrev *tensor.Tensor // (B, H)
	z     *tensor.Tensor // update gate output
	r     *tensor.Tensor // reset gate output
	hc    *tensor.Tensor // candidate (tanh output)
	az    *tensor.Tensor // update gate pre-activation
	ar    *tensor.Tensor // reset gate pre-activation
	rh    *tensor.Tensor // r ⊙ hPrev
	h     *tensor.Tensor // step output
}

// GRU is a gated recurrent unit over (batch, T, inC) inputs with H hidden
// units, using tanh candidate activation and hard-sigmoid gate activation —
// exactly the configuration the paper specifies (§IV.4). The candidate uses
// the reset_after=False formulation tanh(xW + (r⊙h)U + b), the Keras
// default of the paper's era.
//
// With ReturnSequences the output is (batch, T, H); otherwise it is the
// final hidden state (batch, H).
type GRU struct {
	InC, H          int
	ReturnSequences bool

	w *Param // (inC, 3H): [z | r | h]
	u *Param // (H, 3H)
	b *Param // (3H)

	x     *tensor.Tensor
	steps []gruStep

	outSeq *tensor.Tensor // reused sequence output (valid until next Forward)
	dx     *tensor.Tensor // reused gradient buffer
	uh     *tensor.Tensor // gate-2 recurrent kernel, materialized per pass
	uzr    *tensor.Tensor // gate-0/1 recurrent kernels, materialized per pass
}

// NewGRU constructs a GRU with Glorot-uniform input kernel, orthogonal
// recurrent kernel and zero bias (Keras defaults).
func NewGRU(rng *rand.Rand, inC, h int, returnSequences bool) *GRU {
	u := tensor.New(h, 3*h)
	for g := 0; g < 3; g++ {
		q := orthogonalSquare(rng, h, 1)
		for i := 0; i < h; i++ {
			copy(u.Data()[i*3*h+g*h:i*3*h+(g+1)*h], q.Data()[i*h:(i+1)*h])
		}
	}
	return &GRU{
		InC: inC, H: h, ReturnSequences: returnSequences,
		w: NewParam(fmt.Sprintf("gru_w_%dx%d", inC, 3*h), tensor.GlorotUniform(rng, inC, h, inC, 3*h)),
		u: NewParam(fmt.Sprintf("gru_u_%dx%d", h, 3*h), u),
		b: NewParam(fmt.Sprintf("gru_b_%d", 3*h), tensor.New(3*h)),
	}
}

var _ Layer = (*GRU)(nil)

// gateColsInto copies columns [g*H, (g+1)*H) of a (B, 3H) matrix into dst
// (B, H).
func gateColsInto(dst, m *tensor.Tensor, g, h int) {
	b := m.Dim(0)
	md, od := m.Data(), dst.Data()
	w := m.Dim(1)
	for r := 0; r < b; r++ {
		copy(od[r*h:(r+1)*h], md[r*w+g*h:r*w+(g+1)*h])
	}
}

// gateColsSumInto writes dst = a_gate + p_gate where dst is (B, H) and a
// and p are gate-blocked matrices of possibly different widths (a is
// (B, 3H); p is (B, 2H), holding only the z and r blocks) — the fused
// per-gate pre-activation assembly.
func gateColsSumInto(dst, a, p *tensor.Tensor, g, h int) {
	b := a.Dim(0)
	wa, wp := a.Dim(1), p.Dim(1)
	ad, pd, od := a.Data(), p.Data(), dst.Data()
	for r := 0; r < b; r++ {
		arow := ad[r*wa+g*h : r*wa+(g+1)*h]
		prow := pd[r*wp+g*h : r*wp+(g+1)*h]
		orow := od[r*h : (r+1)*h]
		for i := range orow {
			orow[i] = arow[i] + prow[i]
		}
	}
}

// setGateCols overwrites columns [g*H, (g+1)*H) of dst (B, 3H) with src
// (B, H).
func setGateCols(dst *tensor.Tensor, src *tensor.Tensor, g, h int) {
	b := dst.Dim(0)
	w := dst.Dim(1)
	dd, sd := dst.Data(), src.Data()
	for r := 0; r < b; r++ {
		copy(dd[r*w+g*h:r*w+(g+1)*h], sd[r*h:(r+1)*h])
	}
}

// reclaimSteps returns the previous pass's step caches to the workspace.
// Each step owns its gate tensors and its output h; hPrev of step i aliases
// h of step i−1, so only step 0's initial state is returned separately.
//
//pelican:noalloc
func (l *GRU) reclaimSteps() {
	for i := range l.steps {
		st := &l.steps[i]
		if i == 0 {
			tensor.Scratch.Put(st.hPrev)
		}
		tensor.Scratch.Put(st.z)
		tensor.Scratch.Put(st.r)
		tensor.Scratch.Put(st.hc)
		tensor.Scratch.Put(st.az)
		tensor.Scratch.Put(st.ar)
		tensor.Scratch.Put(st.rh)
		tensor.Scratch.Put(st.h)
	}
	l.steps = l.steps[:0]
}

// uGateInto materializes gate g's recurrent kernel as a contiguous (H, H)
// matrix in dst.
//
//pelican:noalloc
func (l *GRU) uGateInto(dst *tensor.Tensor, g int) *tensor.Tensor {
	h := l.H
	ud, od := l.u.Value.Data(), dst.Data()
	for i := 0; i < h; i++ {
		copy(od[i*h:(i+1)*h], ud[i*3*h+g*h:i*3*h+(g+1)*h])
	}
	return dst
}

// Forward implements Layer.
//
//pelican:noalloc
func (l *GRU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank("GRU", x, 3)
	if x.Dim(2) != l.InC {
		panic(fmt.Sprintf("nn: GRU expects %d input channels, got shape %v", l.InC, x.Shape()))
	}
	l.x = x
	b, t := x.Dim(0), x.Dim(1)
	h := l.H
	l.reclaimSteps()
	if cap(l.steps) < t {
		l.steps = make([]gruStep, 0, t)
	}

	// The candidate's recurrent kernel is used every timestep; materialize
	// it once per pass instead of once per step. The z/r gate blocks are
	// the leading 2H columns of each recurrent-kernel row, materialized as
	// one (H, 2H) matrix so the per-step recurrent GEMM skips the unused
	// candidate block (its recurrent path goes through rh @ U_h instead).
	uh := l.uGateInto(ensure(&l.uh, h, h), 2)
	uzr := ensure(&l.uzr, h, 2*h)
	ud, uzrd := l.u.Value.Data(), uzr.Data()
	for i := 0; i < h; i++ {
		copy(uzrd[i*2*h:(i+1)*2*h], ud[i*3*h:i*3*h+2*h])
	}

	hPrev := tensor.Scratch.GetZeroed(b, h)
	var outSeq *tensor.Tensor
	if l.ReturnSequences {
		outSeq = ensure(&l.outSeq, b, t, h)
	}

	// Step-scoped temporaries, reused across timesteps.
	xt := tensor.Scratch.Get(b, l.InC)
	a := tensor.Scratch.Get(b, 3*h)
	p := tensor.Scratch.Get(b, 2*h)
	ah := tensor.Scratch.Get(b, h)
	ahRec := tensor.Scratch.Get(b, h)

	xd := x.Data()
	for ti := 0; ti < t; ti++ {
		// xt is a strided view: rows are b slices at stride t*inC. Copy into
		// a contiguous (B, inC) matrix for GEMM.
		for bi := 0; bi < b; bi++ {
			copy(xt.Row(bi), xd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC])
		}
		tensor.MatMulInto(a, xt, l.w.Value) // (B, 3H)
		a.AddRowVec(l.b.Value)
		tensor.MatMulInto(p, hPrev, uzr) // (B, 2H): z and r gates only

		az := tensor.Scratch.Get(b, h)
		gateColsSumInto(az, a, p, 0, h)
		ar := tensor.Scratch.Get(b, h)
		gateColsSumInto(ar, a, p, 1, h)

		z := tensor.Scratch.Get(b, h)
		r := tensor.Scratch.Get(b, h)
		azd, ard, zd, rd := az.Data(), ar.Data(), z.Data(), r.Data()
		for i := range zd {
			zd[i] = hardSigmoid(azd[i])
			rd[i] = hardSigmoid(ard[i])
		}

		rh := tensor.Scratch.Get(b, h)
		tensor.MulInto(rh, r, hPrev)
		gateColsInto(ah, a, 2, h)
		// (r⊙hPrev) @ U_h: U_h is the last gate block of the recurrent kernel.
		tensor.MatMulInto(ahRec, rh, uh)
		ah.Axpy(1, ahRec)
		hc := tensor.Scratch.Get(b, h)
		ahd, hcd := ah.Data(), hc.Data()
		for i := range hcd {
			hcd[i] = math.Tanh(ahd[i])
		}

		// h = z⊙hPrev + (1−z)⊙hc
		hNew := tensor.Scratch.Get(b, h)
		hd, hpd := hNew.Data(), hPrev.Data()
		for i := range hd {
			hd[i] = zd[i]*hpd[i] + (1-zd[i])*hcd[i]
		}

		l.steps = append(l.steps, gruStep{hPrev: hPrev, z: z, r: r, hc: hc, az: az, ar: ar, rh: rh, h: hNew})
		if l.ReturnSequences {
			od := outSeq.Data()
			for bi := 0; bi < b; bi++ {
				copy(od[(bi*t+ti)*h:(bi*t+ti+1)*h], hd[bi*h:(bi+1)*h])
			}
		}
		hPrev = hNew
	}
	tensor.Scratch.Put(xt)
	tensor.Scratch.Put(a)
	tensor.Scratch.Put(p)
	tensor.Scratch.Put(ah)
	tensor.Scratch.Put(ahRec)
	if l.ReturnSequences {
		return outSeq
	}
	return hPrev
}

// addUGateGrad accumulates a (H, H) gradient into gate g's block of the
// recurrent kernel gradient.
func (l *GRU) addUGateGrad(g int, dU *tensor.Tensor) {
	h := l.H
	gd, dd := l.u.Grad.Data(), dU.Data()
	for i := 0; i < h; i++ {
		row := gd[i*3*h+g*h : i*3*h+(g+1)*h]
		src := dd[i*h : (i+1)*h]
		for j, v := range src {
			row[j] += v
		}
	}
}

// Backward implements Layer.
//
//pelican:noalloc
func (l *GRU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b, t := l.x.Dim(0), l.x.Dim(1)
	h := l.H
	dx := ensure(&l.dx, b, t, l.InC)
	dh := tensor.Scratch.GetZeroed(b, h) // carry into step ti (dL/dh_ti from future steps)
	dhPrev := tensor.Scratch.Get(b, h)

	// Materialized per-gate recurrent kernels. The candidate kernel l.uh was
	// filled by the preceding Forward and l.u.Value cannot have changed since
	// (the optimizer only steps after Backward), so it is reused as-is; the
	// z/r kernels are only needed here and are materialized per pass.
	uz := l.uGateInto(tensor.Scratch.Get(h, h), 0)
	ur := l.uGateInto(tensor.Scratch.Get(h, h), 1)
	uh := l.uh

	// Step-scoped temporaries, reused across timesteps.
	dz := tensor.Scratch.Get(b, h)
	dhc := tensor.Scratch.Get(b, h)
	dah := tensor.Scratch.Get(b, h)
	drh := tensor.Scratch.Get(b, h)
	dr := tensor.Scratch.Get(b, h)
	daz := tensor.Scratch.Get(b, h)
	dar := tensor.Scratch.Get(b, h)
	rec := tensor.Scratch.Get(b, h)
	da := tensor.Scratch.Get(b, 3*h)
	dU := tensor.Scratch.Get(h, h)
	dW := tensor.Scratch.Get(l.InC, 3*h)
	dbVec := tensor.Scratch.Get(3 * h)
	xt := tensor.Scratch.Get(b, l.InC)
	dxt := tensor.Scratch.Get(b, l.InC)

	gd := grad.Data()
	xd, dxd := l.x.Data(), dx.Data()

	for ti := t - 1; ti >= 0; ti-- {
		st := &l.steps[ti]
		// Add upstream gradient for this step's output.
		if l.ReturnSequences {
			dhd := dh.Data()
			for bi := 0; bi < b; bi++ {
				src := gd[(bi*t+ti)*h : (bi*t+ti+1)*h]
				dst := dhd[bi*h : (bi+1)*h]
				for i, v := range src {
					dst[i] += v
				}
			}
		} else if ti == t-1 {
			dh.Axpy(1, grad)
		}

		// Gate gradients.
		dzd, dhcd, dhpd := dz.Data(), dhc.Data(), dhPrev.Data()
		dhd, zd, hpd, hcd := dh.Data(), st.z.Data(), st.hPrev.Data(), st.hc.Data()
		for i := range dhd {
			dzd[i] = dhd[i] * (hpd[i] - hcd[i])
			dhcd[i] = dhd[i] * (1 - zd[i])
			dhpd[i] = dhd[i] * zd[i]
		}

		// Candidate pre-activation.
		dahd := dah.Data()
		for i := range dahd {
			dahd[i] = dhcd[i] * (1 - hcd[i]*hcd[i])
		}
		// drh = dah @ U_hᵀ ; dU_h += rhᵀ @ dah
		tensor.MatMulTransBInto(drh, dah, uh)
		tensor.MatMulTransAInto(dU, st.rh, dah)
		l.addUGateGrad(2, dU)

		tensor.MulInto(dr, drh, st.hPrev)
		// dhPrev += drh ⊙ r
		drhd, rd := drh.Data(), st.r.Data()
		for i := range dhpd {
			dhpd[i] += drhd[i] * rd[i]
		}

		// Gate pre-activations through hard sigmoid.
		dazd, dard := daz.Data(), dar.Data()
		azd, ard, drd := st.az.Data(), st.ar.Data(), dr.Data()
		for i := range dazd {
			dazd[i] = dzd[i] * hardSigmoidGrad(azd[i])
			dard[i] = drd[i] * hardSigmoidGrad(ard[i])
		}

		// Assemble (B, 3H) pre-activation gradient da = [daz | dar | dah].
		setGateCols(da, daz, 0, h)
		setGateCols(da, dar, 1, h)
		setGateCols(da, dah, 2, h)

		// Input kernel and bias gradients; dx_t = da @ Wᵀ.
		for bi := 0; bi < b; bi++ {
			copy(xt.Row(bi), xd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC])
		}
		tensor.MatMulTransAInto(dW, xt, da)
		l.w.Grad.Axpy(1, dW)
		tensor.SumRowsInto(dbVec, da)
		l.b.Grad.Axpy(1, dbVec)

		tensor.MatMulTransBInto(dxt, da, l.w.Value)
		for bi := 0; bi < b; bi++ {
			copy(dxd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC], dxt.Row(bi))
		}

		// Recurrent contributions to dhPrev from the z and r gates, and
		// recurrent kernel gradients for those gates. Note the candidate
		// gate's recurrent path went through rh (handled above).
		tensor.MatMulTransBInto(rec, daz, uz)
		dhPrev.Axpy(1, rec)
		tensor.MatMulTransAInto(dU, st.hPrev, daz)
		l.addUGateGrad(0, dU)

		tensor.MatMulTransBInto(rec, dar, ur)
		dhPrev.Axpy(1, rec)
		tensor.MatMulTransAInto(dU, st.hPrev, dar)
		l.addUGateGrad(1, dU)

		dh, dhPrev = dhPrev, dh
	}

	tensor.Scratch.Put(dh)
	tensor.Scratch.Put(dhPrev)
	tensor.Scratch.Put(uz)
	tensor.Scratch.Put(ur)
	tensor.Scratch.Put(dz)
	tensor.Scratch.Put(dhc)
	tensor.Scratch.Put(dah)
	tensor.Scratch.Put(drh)
	tensor.Scratch.Put(dr)
	tensor.Scratch.Put(daz)
	tensor.Scratch.Put(dar)
	tensor.Scratch.Put(rec)
	tensor.Scratch.Put(da)
	tensor.Scratch.Put(dU)
	tensor.Scratch.Put(dW)
	tensor.Scratch.Put(dbVec)
	tensor.Scratch.Put(xt)
	tensor.Scratch.Put(dxt)
	return dx
}

// Params implements Layer.
func (l *GRU) Params() []*Param { return []*Param{l.w, l.u, l.b} }

// LayerName implements Named.
func (l *GRU) LayerName() string {
	return fmt.Sprintf("GRU(%d→%d, seq=%v)", l.InC, l.H, l.ReturnSequences)
}
