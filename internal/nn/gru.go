package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// orthogonalSquare returns an n×n matrix with orthonormal rows/columns,
// built by modified Gram–Schmidt on a random normal matrix and scaled by
// gain. Keras initializes recurrent kernels orthogonally; we do the same
// per gate.
func orthogonalSquare(rng *rand.Rand, n int, gain float64) *tensor.Tensor {
	m := tensor.RandNormal(rng, 0, 1, n, n)
	d := m.Data()
	for i := 0; i < n; i++ {
		ri := d[i*n : (i+1)*n]
		// Subtract projections onto previous rows.
		for j := 0; j < i; j++ {
			rj := d[j*n : (j+1)*n]
			dot := 0.0
			for k := range ri {
				dot += ri[k] * rj[k]
			}
			for k := range ri {
				ri[k] -= dot * rj[k]
			}
		}
		norm := 0.0
		for _, v := range ri {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate draw; re-randomize this row deterministically.
			for k := range ri {
				ri[k] = rng.NormFloat64()
			}
			i-- // redo orthogonalization for this row
			continue
		}
		for k := range ri {
			ri[k] = ri[k] / norm * gain
		}
	}
	return m
}

// gruStep caches one timestep's intermediate values for backpropagation
// through time.
type gruStep struct {
	hPrev *tensor.Tensor // (B, H)
	z     *tensor.Tensor // update gate output
	r     *tensor.Tensor // reset gate output
	hc    *tensor.Tensor // candidate (tanh output)
	az    *tensor.Tensor // update gate pre-activation
	ar    *tensor.Tensor // reset gate pre-activation
	rh    *tensor.Tensor // r ⊙ hPrev
	h     *tensor.Tensor // step output
}

// GRU is a gated recurrent unit over (batch, T, inC) inputs with H hidden
// units, using tanh candidate activation and hard-sigmoid gate activation —
// exactly the configuration the paper specifies (§IV.4). The candidate uses
// the reset_after=False formulation tanh(xW + (r⊙h)U + b), the Keras
// default of the paper's era.
//
// With ReturnSequences the output is (batch, T, H); otherwise it is the
// final hidden state (batch, H).
type GRU struct {
	InC, H          int
	ReturnSequences bool

	w *Param // (inC, 3H): [z | r | h]
	u *Param // (H, 3H)
	b *Param // (3H)

	x     *tensor.Tensor
	steps []gruStep
}

// NewGRU constructs a GRU with Glorot-uniform input kernel, orthogonal
// recurrent kernel and zero bias (Keras defaults).
func NewGRU(rng *rand.Rand, inC, h int, returnSequences bool) *GRU {
	u := tensor.New(h, 3*h)
	for g := 0; g < 3; g++ {
		q := orthogonalSquare(rng, h, 1)
		for i := 0; i < h; i++ {
			copy(u.Data()[i*3*h+g*h:i*3*h+(g+1)*h], q.Data()[i*h:(i+1)*h])
		}
	}
	return &GRU{
		InC: inC, H: h, ReturnSequences: returnSequences,
		w: NewParam(fmt.Sprintf("gru_w_%dx%d", inC, 3*h), tensor.GlorotUniform(rng, inC, h, inC, 3*h)),
		u: NewParam(fmt.Sprintf("gru_u_%dx%d", h, 3*h), u),
		b: NewParam(fmt.Sprintf("gru_b_%d", 3*h), tensor.New(3*h)),
	}
}

var _ Layer = (*GRU)(nil)

// cols returns a (B, H) copy of columns [g*H, (g+1)*H) of a (B, 3H) matrix.
func gateCols(m *tensor.Tensor, g, h int) *tensor.Tensor {
	b := m.Dim(0)
	out := tensor.New(b, h)
	md, od := m.Data(), out.Data()
	w := m.Dim(1)
	for r := 0; r < b; r++ {
		copy(od[r*h:(r+1)*h], md[r*w+g*h:r*w+(g+1)*h])
	}
	return out
}

// addGateCols accumulates src (B, H) into columns [g*H, (g+1)*H) of dst
// (B, 3H).
func addGateCols(dst *tensor.Tensor, src *tensor.Tensor, g, h int) {
	b := dst.Dim(0)
	w := dst.Dim(1)
	dd, sd := dst.Data(), src.Data()
	for r := 0; r < b; r++ {
		drow := dd[r*w+g*h : r*w+(g+1)*h]
		srow := sd[r*h : (r+1)*h]
		for i, v := range srow {
			drow[i] += v
		}
	}
}

// Forward implements Layer.
func (l *GRU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank("GRU", x, 3)
	if x.Dim(2) != l.InC {
		panic(fmt.Sprintf("nn: GRU expects %d input channels, got shape %v", l.InC, x.Shape()))
	}
	l.x = x
	b, t := x.Dim(0), x.Dim(1)
	h := l.H
	l.steps = make([]gruStep, t)

	hPrev := tensor.New(b, h)
	var outSeq *tensor.Tensor
	if l.ReturnSequences {
		outSeq = tensor.New(b, t, h)
	}

	xd := x.Data()
	for ti := 0; ti < t; ti++ {
		// xt is a strided view: rows are b slices at stride t*inC. Copy into
		// a contiguous (B, inC) matrix for GEMM.
		xt := tensor.New(b, l.InC)
		for bi := 0; bi < b; bi++ {
			copy(xt.Row(bi), xd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC])
		}
		a := tensor.MatMul(xt, l.w.Value) // (B, 3H)
		a.AddRowVec(l.b.Value)
		p := tensor.MatMul(hPrev, l.u.Value) // (B, 3H)

		az := gateCols(a, 0, h)
		az.Axpy(1, gateCols(p, 0, h))
		ar := gateCols(a, 1, h)
		ar.Axpy(1, gateCols(p, 1, h))

		z := az.Map(hardSigmoid)
		r := ar.Map(hardSigmoid)

		rh := tensor.Mul(r, hPrev)
		ah := gateCols(a, 2, h)
		// (r⊙hPrev) @ U_h: U_h is the last gate block of the recurrent kernel.
		ahRec := tensor.New(b, h)
		tensor.MatMulInto(ahRec, rh, l.uGate(2))
		ah.Axpy(1, ahRec)
		hc := ah.Map(math.Tanh)

		// h = z⊙hPrev + (1−z)⊙hc
		hNew := tensor.New(b, h)
		hd, zd, hpd, hcd := hNew.Data(), z.Data(), hPrev.Data(), hc.Data()
		for i := range hd {
			hd[i] = zd[i]*hpd[i] + (1-zd[i])*hcd[i]
		}

		l.steps[ti] = gruStep{hPrev: hPrev, z: z, r: r, hc: hc, az: az, ar: ar, rh: rh, h: hNew}
		if l.ReturnSequences {
			od := outSeq.Data()
			for bi := 0; bi < b; bi++ {
				copy(od[(bi*t+ti)*h:(bi*t+ti+1)*h], hd[bi*h:(bi+1)*h])
			}
		}
		hPrev = hNew
	}
	if l.ReturnSequences {
		return outSeq
	}
	return hPrev
}

// uGate returns gate g's recurrent kernel as a contiguous (H, H) matrix.
func (l *GRU) uGate(g int) *tensor.Tensor {
	h := l.H
	out := tensor.New(h, h)
	ud, od := l.u.Value.Data(), out.Data()
	for i := 0; i < h; i++ {
		copy(od[i*h:(i+1)*h], ud[i*3*h+g*h:i*3*h+(g+1)*h])
	}
	return out
}

// addUGateGrad accumulates a (H, H) gradient into gate g's block of the
// recurrent kernel gradient.
func (l *GRU) addUGateGrad(g int, dU *tensor.Tensor) {
	h := l.H
	gd, dd := l.u.Grad.Data(), dU.Data()
	for i := 0; i < h; i++ {
		row := gd[i*3*h+g*h : i*3*h+(g+1)*h]
		src := dd[i*h : (i+1)*h]
		for j, v := range src {
			row[j] += v
		}
	}
}

// Backward implements Layer.
func (l *GRU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b, t := l.x.Dim(0), l.x.Dim(1)
	h := l.H
	dx := tensor.New(b, t, l.InC)
	dh := tensor.New(b, h) // carry into step ti (dL/dh_ti from future steps)

	gd := grad.Data()
	xd, dxd := l.x.Data(), dx.Data()

	for ti := t - 1; ti >= 0; ti-- {
		st := &l.steps[ti]
		// Add upstream gradient for this step's output.
		if l.ReturnSequences {
			dhd := dh.Data()
			for bi := 0; bi < b; bi++ {
				src := gd[(bi*t+ti)*h : (bi*t+ti+1)*h]
				dst := dhd[bi*h : (bi+1)*h]
				for i, v := range src {
					dst[i] += v
				}
			}
		} else if ti == t-1 {
			dh.Axpy(1, grad)
		}

		// Gate gradients.
		dz := tensor.New(b, h)
		dhc := tensor.New(b, h)
		dhPrev := tensor.New(b, h)
		dzd, dhcd, dhpd := dz.Data(), dhc.Data(), dhPrev.Data()
		dhd, zd, hpd, hcd := dh.Data(), st.z.Data(), st.hPrev.Data(), st.hc.Data()
		for i := range dhd {
			dzd[i] = dhd[i] * (hpd[i] - hcd[i])
			dhcd[i] = dhd[i] * (1 - zd[i])
			dhpd[i] = dhd[i] * zd[i]
		}

		// Candidate pre-activation.
		dah := tensor.New(b, h)
		dahd := dah.Data()
		for i := range dahd {
			dahd[i] = dhcd[i] * (1 - hcd[i]*hcd[i])
		}
		// drh = dah @ U_hᵀ ; dU_h += rhᵀ @ dah
		drh := tensor.New(b, h)
		tensor.MatMulTransBInto(drh, dah, l.uGate(2))
		dUh := tensor.New(h, h)
		tensor.MatMulTransAInto(dUh, st.rh, dah)
		l.addUGateGrad(2, dUh)

		dr := tensor.Mul(drh, st.hPrev)
		// dhPrev += drh ⊙ r
		drhd, rd := drh.Data(), st.r.Data()
		for i := range dhpd {
			dhpd[i] += drhd[i] * rd[i]
		}

		// Gate pre-activations through hard sigmoid.
		daz := tensor.New(b, h)
		dar := tensor.New(b, h)
		dazd, dard := daz.Data(), dar.Data()
		azd, ard, drd := st.az.Data(), st.ar.Data(), dr.Data()
		for i := range dazd {
			dazd[i] = dzd[i] * hardSigmoidGrad(azd[i])
			dard[i] = drd[i] * hardSigmoidGrad(ard[i])
		}

		// Assemble (B, 3H) pre-activation gradient da = [daz | dar | dah].
		da := tensor.New(b, 3*h)
		addGateCols(da, daz, 0, h)
		addGateCols(da, dar, 1, h)
		addGateCols(da, dah, 2, h)

		// Input kernel and bias gradients; dx_t = da @ Wᵀ.
		xt := tensor.New(b, l.InC)
		for bi := 0; bi < b; bi++ {
			copy(xt.Row(bi), xd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC])
		}
		dW := tensor.New(l.InC, 3*h)
		tensor.MatMulTransAInto(dW, xt, da)
		l.w.Grad.Axpy(1, dW)
		dbVec := tensor.New(3 * h)
		tensor.SumRowsInto(dbVec, da)
		l.b.Grad.Axpy(1, dbVec)

		dxt := tensor.New(b, l.InC)
		tensor.MatMulTransBInto(dxt, da, l.w.Value)
		for bi := 0; bi < b; bi++ {
			copy(dxd[(bi*t+ti)*l.InC:(bi*t+ti+1)*l.InC], dxt.Row(bi))
		}

		// Recurrent contributions to dhPrev from the z and r gates, and
		// recurrent kernel gradients for those gates. Note the candidate
		// gate's recurrent path went through rh (handled above).
		dazRec := tensor.New(b, h)
		tensor.MatMulTransBInto(dazRec, daz, l.uGate(0))
		dhPrev.Axpy(1, dazRec)
		dUz := tensor.New(h, h)
		tensor.MatMulTransAInto(dUz, st.hPrev, daz)
		l.addUGateGrad(0, dUz)

		darRec := tensor.New(b, h)
		tensor.MatMulTransBInto(darRec, dar, l.uGate(1))
		dhPrev.Axpy(1, darRec)
		dUr := tensor.New(h, h)
		tensor.MatMulTransAInto(dUr, st.hPrev, dar)
		l.addUGateGrad(1, dUr)

		dh = dhPrev
	}
	return dx
}

// Params implements Layer.
func (l *GRU) Params() []*Param { return []*Param{l.w, l.u, l.b} }

// LayerName implements Named.
func (l *GRU) LayerName() string {
	return fmt.Sprintf("GRU(%d→%d, seq=%v)", l.InC, l.H, l.ReturnSequences)
}
