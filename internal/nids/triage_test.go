package nids

import (
	"testing"
	"time"

	"repro/internal/flow"
)

func alertAt(src string, class int, at time.Time, score float64) Alert {
	return Alert{
		Flow:    flow.Flow{SrcIP: src},
		Verdict: Verdict{IsAttack: true, Class: class, Score: score},
		At:      at,
	}
}

func TestTriageAggregatesBursts(t *testing.T) {
	tr := NewTriage(10 * time.Second)
	base := time.Unix(1000, 0)
	// Five alerts from one source within the window → one incident.
	for i := 0; i < 5; i++ {
		tr.Observe(alertAt("203.0.1.1", 1, base.Add(time.Duration(i)*time.Second), float64(i)))
	}
	incidents := tr.Flush()
	if len(incidents) != 1 {
		t.Fatalf("got %d incidents, want 1", len(incidents))
	}
	inc := incidents[0]
	if inc.AlertCount != 5 {
		t.Fatalf("incident has %d alerts, want 5", inc.AlertCount)
	}
	if inc.MaxScore != 4 {
		t.Fatalf("MaxScore %v, want 4", inc.MaxScore)
	}
	if !inc.LastSeen.Equal(base.Add(4 * time.Second)) {
		t.Fatalf("LastSeen %v wrong", inc.LastSeen)
	}
}

func TestTriageSplitsByGap(t *testing.T) {
	tr := NewTriage(5 * time.Second)
	base := time.Unix(2000, 0)
	tr.Observe(alertAt("10.0.0.1", 1, base, 1))
	tr.Observe(alertAt("10.0.0.1", 1, base.Add(3*time.Second), 1))
	// 20s gap exceeds the window: a new incident must open.
	tr.Observe(alertAt("10.0.0.1", 1, base.Add(23*time.Second), 1))
	incidents := tr.Flush()
	if len(incidents) != 2 {
		t.Fatalf("got %d incidents, want 2", len(incidents))
	}
	if incidents[0].AlertCount != 2 || incidents[1].AlertCount != 1 {
		t.Fatalf("alert counts %d/%d, want 2/1", incidents[0].AlertCount, incidents[1].AlertCount)
	}
}

func TestTriageSplitsBySourceAndClass(t *testing.T) {
	tr := NewTriage(time.Minute)
	base := time.Unix(3000, 0)
	tr.Observe(alertAt("a", 1, base, 1))
	tr.Observe(alertAt("b", 1, base.Add(time.Second), 1))
	tr.Observe(alertAt("a", 2, base.Add(2*time.Second), 1))
	incidents := tr.Flush()
	if len(incidents) != 3 {
		t.Fatalf("got %d incidents, want 3 (distinct src/class pairs)", len(incidents))
	}
}

func TestTriageFlushOrdersByFirstSeen(t *testing.T) {
	tr := NewTriage(time.Second)
	base := time.Unix(4000, 0)
	tr.Observe(alertAt("late", 1, base.Add(time.Hour), 1))
	tr.Observe(alertAt("early", 1, base, 1))
	incidents := tr.Flush()
	if incidents[0].SrcIP != "early" || incidents[1].SrcIP != "late" {
		t.Fatalf("incidents not ordered by FirstSeen: %+v", incidents)
	}
	if tr.OpenCount() != 0 {
		t.Fatalf("OpenCount %d after Flush, want 0", tr.OpenCount())
	}
}

func TestCompressionRatio(t *testing.T) {
	incidents := []Incident{{AlertCount: 8}, {AlertCount: 2}}
	if got := CompressionRatio(incidents); got != 5 {
		t.Fatalf("CompressionRatio = %v, want 5", got)
	}
	if got := CompressionRatio(nil); got != 0 {
		t.Fatalf("empty CompressionRatio = %v, want 0", got)
	}
}

func TestTriageEndToEndWithPipeline(t *testing.T) {
	// Stream a bursty source through a signature detector and confirm
	// triage compresses campaign alerts substantially.
	g := tinyGen(t)
	det := &SignatureDetector{Engine: mustEngine(t, g)}
	cfg := flow.DefaultSourceConfig()
	cfg.EpisodeEvery = 120
	cfg.EpisodeLen = 50
	cfg.EpisodeAttackRate = 0.9
	src, err := flow.NewSource(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := New(det, Config{Workers: 1}) // single worker keeps alert order sane
	triage := NewTriage(2 * time.Minute)
	flows := make(chan flow.Flow, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1500; i++ {
			flows <- src.Next()
		}
		close(flows)
	}()
	if err := p.Run(t.Context(), flows, triage.Observe); err != nil {
		t.Fatal(err)
	}
	<-done
	incidents := triage.Flush()
	st := p.Stats()
	if st.Alerts == 0 {
		t.Skip("no alerts fired; nothing to triage")
	}
	if int64(len(incidents)) > st.Alerts {
		t.Fatalf("more incidents (%d) than alerts (%d)", len(incidents), st.Alerts)
	}
	total := 0
	for _, inc := range incidents {
		total += inc.AlertCount
	}
	if int64(total) != st.Alerts {
		t.Fatalf("incident alerts %d != pipeline alerts %d", total, st.Alerts)
	}
}
