package nids

import (
	"fmt"
	"sort"
	"time"
)

// Incident is a group of related alerts the security team reviews as one
// case — the paper's Fig. 1 shows alerts flowing to a human team, and raw
// per-flow alerts during an attack campaign would swamp it (§VI: false
// alarms "adding unnecessary workload to the security team").
type Incident struct {
	ID         int
	SrcIP      string
	Class      int
	FirstSeen  time.Time
	LastSeen   time.Time
	AlertCount int
	// MaxScore is the strongest detector score observed.
	MaxScore float64
}

// Triage aggregates alerts into incidents: consecutive alerts from the
// same source IP and predicted class within Window collapse into one
// incident. It is not safe for concurrent use; feed it from the pipeline's
// single alert collector.
type Triage struct {
	// Window is the maximum gap between alerts of one incident.
	Window time.Duration

	nextID int
	open   map[string]*Incident // keyed by srcIP/class
	closed []Incident
}

// NewTriage constructs a Triage with the given aggregation window.
func NewTriage(window time.Duration) *Triage {
	if window <= 0 {
		window = 30 * time.Second
	}
	return &Triage{Window: window, open: make(map[string]*Incident)}
}

// Observe folds one alert into the incident state.
func (t *Triage) Observe(a Alert) {
	key := fmt.Sprintf("%s/%d", a.Flow.SrcIP, a.Verdict.Class)
	inc, ok := t.open[key]
	if ok && a.At.Sub(inc.LastSeen) <= t.Window {
		inc.LastSeen = a.At
		inc.AlertCount++
		if a.Verdict.Score > inc.MaxScore {
			inc.MaxScore = a.Verdict.Score
		}
		return
	}
	if ok {
		// Stale: close it out and open a fresh incident.
		t.closed = append(t.closed, *inc)
	}
	t.nextID++
	t.open[key] = &Incident{
		ID:         t.nextID,
		SrcIP:      a.Flow.SrcIP,
		Class:      a.Verdict.Class,
		FirstSeen:  a.At,
		LastSeen:   a.At,
		AlertCount: 1,
		MaxScore:   a.Verdict.Score,
	}
}

// Flush closes all open incidents and returns the full incident list,
// ordered by first-seen time.
func (t *Triage) Flush() []Incident {
	for _, inc := range t.open {
		t.closed = append(t.closed, *inc)
	}
	t.open = make(map[string]*Incident)
	out := make([]Incident, len(t.closed))
	copy(out, t.closed)
	sort.Slice(out, func(a, b int) bool { return out[a].FirstSeen.Before(out[b].FirstSeen) })
	return out
}

// OpenCount returns the number of currently-open incidents.
func (t *Triage) OpenCount() int { return len(t.open) }

// CompressionRatio reports how many raw alerts were folded per incident —
// the workload reduction delivered to the security team.
func CompressionRatio(incidents []Incident) float64 {
	if len(incidents) == 0 {
		return 0
	}
	alerts := 0
	for _, inc := range incidents {
		alerts += inc.AlertCount
	}
	return float64(alerts) / float64(len(incidents))
}
