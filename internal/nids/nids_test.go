package nids

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/data"
	"repro/internal/flow"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/signature"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// tinyGen is a small dataset shape so detector training stays fast.
func tinyGen(t *testing.T) *synth.Generator {
	t.Helper()
	cfg := synth.NSLKDDConfig()
	cfg.Name = "nsl-tiny"
	cfg.NumericName = cfg.NumericName[:8]
	cfg.Cats = []synth.CatSpec{{Name: "proto", Card: 3}, {Name: "flag", Card: 4}}
	cfg.Classes = []synth.ClassSpec{
		{Name: "normal", Weight: 0.6},
		{Name: "dos", Weight: 0.25},
		{Name: "probe", Weight: 0.15},
	}
	cfg.LatentDim = 6
	cfg.QuadTerms = 4
	g, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// trainTinyModel fits a small MLP detector on generator traffic.
func trainTinyModel(t *testing.T, g *synth.Generator) *ModelDetector {
	t.Helper()
	ds := g.Generate(1200, 71)
	x, y, pipe := data.Preprocess(ds)
	rng := rand.New(rand.NewSource(1))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(2)), g.Schema().EncodedWidth(), g.Schema().NumClasses())
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.005))
	x3 := x.Reshape(x.Dim(0), 1, x.Dim(1))
	net.Fit(x3, y, nn.FitConfig{Epochs: 8, BatchSize: 128, Shuffle: true, RNG: rng})
	return &ModelDetector{ModelName: "mlp", Net: net, Pipe: pipe}
}

func TestModelDetectorOnPipeline(t *testing.T) {
	g := tinyGen(t)
	det := trainTinyModel(t, g)

	src, err := flow.NewSource(g, flow.DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := New(det, Config{Workers: 4})
	flows := make(chan flow.Flow, 1)
	go src.Run(context.Background(), flows, 800)

	var mu sync.Mutex
	var alerts []Alert
	if err := p.Run(context.Background(), flows, func(a Alert) {
		mu.Lock()
		alerts = append(alerts, a)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := p.Stats()
	if st.Processed != 800 {
		t.Fatalf("processed %d flows, want 800", st.Processed)
	}
	if int64(len(alerts)) != st.Alerts {
		t.Fatalf("alert callback count %d != counter %d", len(alerts), st.Alerts)
	}
	if st.TruePos+st.FalseAlarms+st.Missed+st.TrueNeg != st.Processed {
		t.Fatalf("counters inconsistent: %+v", st)
	}
	// A trained detector must beat coin-flipping on this easy shape.
	if st.DR() < 0.5 {
		t.Fatalf("trained detector DR %.2f < 0.5", st.DR())
	}
	if st.FAR() > 0.3 {
		t.Fatalf("trained detector FAR %.2f > 0.3", st.FAR())
	}
}

// TestDetectBatchMatchesDetect proves micro-batched scoring and per-flow
// scoring agree verdict-for-verdict.
func TestDetectBatchMatchesDetect(t *testing.T) {
	g := tinyGen(t)
	det := trainTinyModel(t, g)
	ds := g.Generate(64, 75)

	recs := make([]*data.Record, len(ds.Records))
	for i := range ds.Records {
		recs[i] = &ds.Records[i]
	}
	batched := make([]Verdict, len(recs))
	det.DetectBatch(recs, batched)
	for i, rec := range recs {
		single := det.Detect(rec)
		if single != batched[i] {
			t.Fatalf("record %d: batch verdict %+v != single verdict %+v", i, batched[i], single)
		}
	}
}

// TestDetectBatchConcurrent hammers a shared ModelDetector from several
// goroutines (meaningful under -race): the internal mutex must serialize
// access to the reused network buffers without corrupting verdicts.
func TestDetectBatchConcurrent(t *testing.T) {
	g := tinyGen(t)
	det := trainTinyModel(t, g)
	ds := g.Generate(32, 76)
	recs := make([]*data.Record, len(ds.Records))
	for i := range ds.Records {
		recs[i] = &ds.Records[i]
	}
	want := make([]Verdict, len(recs))
	det.DetectBatch(recs, want)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make([]Verdict, len(recs))
			for it := 0; it < 10; it++ {
				det.DetectBatch(recs, got)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("concurrent DetectBatch diverged at record %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestModelDetectorMicroBatchPipeline runs the full pipeline with an
// explicit micro-batch size and checks the counters stay exact.
func TestModelDetectorMicroBatchPipeline(t *testing.T) {
	g := tinyGen(t)
	det := trainTinyModel(t, g)

	src, err := flow.NewSource(g, flow.DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := New(det, Config{Workers: 2, MicroBatch: 16})
	flows := make(chan flow.Flow, 64) // deep queue so batches actually form
	go src.Run(context.Background(), flows, 500)
	if err := p.Run(context.Background(), flows, nil); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Processed != 500 {
		t.Fatalf("processed %d flows, want 500", st.Processed)
	}
	if st.TruePos+st.FalseAlarms+st.Missed+st.TrueNeg != st.Processed {
		t.Fatalf("counters inconsistent: %+v", st)
	}
	if st.DR() < 0.5 {
		t.Fatalf("micro-batched detector DR %.2f < 0.5", st.DR())
	}
}

func TestSignatureDetectorOnPipeline(t *testing.T) {
	g := tinyGen(t)
	train := g.Generate(2500, 72)
	rules, err := signature.MineRules(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := signature.NewEngine(train.Schema, rules)
	if err != nil {
		t.Fatal(err)
	}
	det := &SignatureDetector{Engine: eng}

	src, err := flow.NewSource(g, flow.DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := New(det, Config{Workers: 2})
	flows := make(chan flow.Flow, 1)
	go src.Run(context.Background(), flows, 600)
	if err := p.Run(context.Background(), flows, nil); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Processed != 600 {
		t.Fatalf("processed %d, want 600", st.Processed)
	}
	if st.Alerts == 0 {
		t.Fatal("signature engine produced no alerts at all")
	}
}

func TestAnomalyDetectorOnPipeline(t *testing.T) {
	g := tinyGen(t)
	train := g.Generate(1500, 73)
	x, y, pipe := data.Preprocess(train)
	// Profile on normal rows only.
	var normalRows []int
	for i, yi := range y {
		if yi == 0 {
			normalRows = append(normalRows, i)
		}
	}
	normal := tensor.New(len(normalRows), x.Dim(1))
	for i, r := range normalRows {
		copy(normal.Row(i), x.Row(r))
	}
	th, err := anomaly.Calibrate(anomaly.NewGaussian(), normal, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	det := &AnomalyDetector{Profile: th, Pipe: pipe}

	src, err := flow.NewSource(g, flow.DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := New(det, Config{Workers: 3})
	flows := make(chan flow.Flow, 1)
	go src.Run(context.Background(), flows, 600)
	if err := p.Run(context.Background(), flows, nil); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Processed != 600 {
		t.Fatalf("processed %d, want 600", st.Processed)
	}
	if st.TruePos == 0 {
		t.Fatal("anomaly detector caught nothing")
	}
}

func TestPipelineCancellation(t *testing.T) {
	g := tinyGen(t)
	det := &SignatureDetector{Engine: mustEngine(t, g)}
	p := New(det, Config{Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	src, err := flow.NewSource(g, flow.DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	flows := make(chan flow.Flow)
	go src.Run(ctx, flows, 0) // unbounded stream

	done := make(chan error, 1)
	go func() { done <- p.Run(ctx, flows, nil) }()
	// Let it process a bit, then cancel; Run must return promptly.
	for p.Stats().Processed < 50 {
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestAlertCountedOnlyAfterDelivery pins the cancellation-accounting fix:
// an alert abandoned because the context died mid-enqueue must not be
// counted as delivered — it lands in DroppedAlerts instead.
func TestAlertCountedOnlyAfterDelivery(t *testing.T) {
	g := tinyGen(t)
	det := &SignatureDetector{Engine: mustEngine(t, g)}
	p := New(det, Config{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()                   // already dead: every enqueue on a full channel must abandon
	alerts := make(chan Alert) // unbuffered and never read
	f := flow.Flow{TrueClass: 1}
	p.record(ctx, &f, Verdict{IsAttack: true, Class: 1}, alerts)

	st := p.Stats()
	if st.Alerts != 0 {
		t.Fatalf("undelivered alert was counted: Alerts=%d", st.Alerts)
	}
	if st.DroppedAlerts != 1 {
		t.Fatalf("DroppedAlerts=%d, want 1", st.DroppedAlerts)
	}
	if st.TruePos != 1 || st.Processed != 1 {
		t.Fatalf("detection counters must still move: %+v", st)
	}
}

// TestCancelledRunAlertAccounting runs a real pipeline with a slow alert
// consumer, cancels it mid-stream, and checks the invariant the fix
// establishes: the delivered-alert counter never exceeds what onAlert
// observed, and every attack verdict is either delivered or dropped.
// Meaningful under -race.
func TestCancelledRunAlertAccounting(t *testing.T) {
	g := tinyGen(t)
	det := &SignatureDetector{Engine: mustEngine(t, g)}
	p := New(det, Config{Workers: 4, QueueDepth: 1})

	ctx, cancel := context.WithCancel(context.Background())
	src, err := flow.NewSource(g, flow.DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	flows := make(chan flow.Flow)
	go src.Run(ctx, flows, 0)

	var delivered atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- p.Run(ctx, flows, func(Alert) {
			delivered.Add(1)
			time.Sleep(100 * time.Microsecond) // consumer lags: queue backs up
		})
	}()
	for p.Stats().Alerts < 5 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	st := p.Stats()
	if st.Alerts != delivered.Load() {
		t.Fatalf("alert counter %d != delivered callbacks %d", st.Alerts, delivered.Load())
	}
	if got := st.TruePos + st.FalseAlarms; st.Alerts+st.DroppedAlerts != got {
		t.Fatalf("alerts %d + dropped %d != attack verdicts %d", st.Alerts, st.DroppedAlerts, got)
	}
}

// TestTapSeesEveryScoredFlow wires a concurrent tap and checks it observes
// exactly the processed flows with their verdicts, across batched workers.
func TestTapSeesEveryScoredFlow(t *testing.T) {
	g := tinyGen(t)
	det := trainTinyModel(t, g)

	var tapped atomic.Int64
	var tapAttacks atomic.Int64
	p := New(det, Config{Workers: 3, MicroBatch: 8, Tap: func(f *flow.Flow, v Verdict) {
		if f == nil {
			t.Error("tap got nil flow")
			return
		}
		tapped.Add(1)
		if v.IsAttack {
			tapAttacks.Add(1)
		}
	}})

	src, err := flow.NewSource(g, flow.DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	flows := make(chan flow.Flow, 32)
	go src.Run(context.Background(), flows, 700)
	if err := p.Run(context.Background(), flows, nil); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if tapped.Load() != st.Processed {
		t.Fatalf("tap saw %d flows, pipeline processed %d", tapped.Load(), st.Processed)
	}
	if tapAttacks.Load() != st.TruePos+st.FalseAlarms {
		t.Fatalf("tap saw %d attack verdicts, counters say %d", tapAttacks.Load(), st.TruePos+st.FalseAlarms)
	}
}

// TestFailedVerdictsExcludedFromCounters pins the no-information rule: a
// Failed verdict (remote scorer outage) moves Processed and ScoreFailures
// but no detection counter, and never raises an alert.
func TestFailedVerdictsExcludedFromCounters(t *testing.T) {
	g := tinyGen(t)
	det := &SignatureDetector{Engine: mustEngine(t, g)}
	p := New(det, Config{Workers: 1})
	alerts := make(chan Alert, 4)
	f := flow.Flow{TrueClass: 1}
	p.record(context.Background(), &f, Verdict{IsAttack: true, Failed: true}, alerts)

	st := p.Stats()
	if st.Processed != 1 || st.ScoreFailures != 1 {
		t.Fatalf("processed=%d failures=%d, want 1/1", st.Processed, st.ScoreFailures)
	}
	if st.TruePos+st.FalseAlarms+st.Missed+st.TrueNeg != 0 {
		t.Fatalf("failed verdict moved detection counters: %+v", st)
	}
	if st.Alerts != 0 || len(alerts) != 0 {
		t.Fatal("failed verdict raised an alert")
	}
}

func mustEngine(t *testing.T, g *synth.Generator) *signature.Engine {
	t.Helper()
	train := g.Generate(2000, 74)
	rules, err := signature.MineRules(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := signature.NewEngine(train.Schema, rules)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestStatsSnapshotMath(t *testing.T) {
	var s Stats
	s.truePos.Store(80)
	s.missed.Store(20)
	s.falseAlarm.Store(5)
	s.trueNeg.Store(95)
	snap := s.Snapshot()
	if snap.DR() != 0.8 {
		t.Fatalf("DR = %v, want 0.8", snap.DR())
	}
	if snap.FAR() != 0.05 {
		t.Fatalf("FAR = %v, want 0.05", snap.FAR())
	}
	if snap.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestStatsEmptyNoNaN(t *testing.T) {
	var s Stats
	snap := s.Snapshot()
	if snap.DR() != 0 || snap.FAR() != 0 {
		t.Fatal("empty stats should be zero, not NaN")
	}
}
