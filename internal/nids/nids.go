// Package nids assembles the full intrusion-detection pipeline of the
// paper's Fig. 1: a traffic source feeding a detector whose alerts land in
// a security-team queue. Detectors are hot-swappable — the Pelican network,
// any other trained model, the signature engine of §VI, or an anomaly
// profile — so the paper's supervised-vs-signature-vs-anomaly arguments
// can be measured on identical traffic.
//
// The pipeline is a bounded-channel goroutine graph with clean shutdown:
// Source → [workers × (preprocess + detect)] → alert collector. Workers
// score flows in micro-batches (Config.MicroBatch) so batch-capable
// detectors amortize one network pass over several queued flows.
package nids

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anomaly"
	"repro/internal/data"
	"repro/internal/flow"
	"repro/internal/nn"
	"repro/internal/signature"
	"repro/internal/tensor"
)

// Verdict is one detector decision.
type Verdict struct {
	IsAttack bool
	// Class is the predicted class (0 = normal) when the detector is
	// class-aware; -1 when it only flags anomalies.
	Class int
	// RuleID is the matching signature for signature-based detectors.
	RuleID int
	// Score is a detector-specific confidence/anomaly value.
	Score float64
	// Failed marks a verdict that carries no information because the
	// detector could not score the flow (e.g. a remote scoring request
	// errored). Failed verdicts are excluded from detection counters and
	// never raise alerts; they are tallied separately.
	Failed bool
}

// Detector classifies a raw flow record.
type Detector interface {
	Name() string
	Detect(rec *data.Record) Verdict
}

// BatchDetector is implemented by detectors that can amortize work over a
// small batch of flows — one GEMM per batch instead of one matvec per flow.
// DetectBatch writes verdicts[i] for recs[i]; len(verdicts) == len(recs).
type BatchDetector interface {
	Detector
	DetectBatch(recs []*data.Record, verdicts []Verdict)
}

// ModelDetector wraps a trained network plus its preprocessing pipeline.
// Its methods are safe for concurrent use: per-record feature encoding runs
// on pooled caller-owned slabs outside any lock (so it scales with the
// number of calling workers), and only the network pass itself — whose
// layer buffers are shared — is serialized behind a mutex. Workers should
// prefer DetectBatch, which amortizes one network pass (and one lock
// acquisition) over a whole flow batch.
type ModelDetector struct {
	ModelName string
	Net       *nn.Network
	Pipe      *data.Pipeline

	mu    sync.Mutex // serializes network passes only
	slabs sync.Pool  // *detectSlab encode buffers, one checked out per call
}

// detectSlab is one concurrent caller's encode buffer: a (B, F) input slab
// plus the (B, 1, F) view header fed to the network.
type detectSlab struct {
	x    *tensor.Tensor
	view *tensor.Tensor
}

var _ BatchDetector = (*ModelDetector)(nil)

// Name implements Detector.
func (d *ModelDetector) Name() string { return d.ModelName }

// Detect implements Detector: preprocess, run the network, argmax.
func (d *ModelDetector) Detect(rec *data.Record) Verdict {
	var v [1]Verdict
	d.DetectBatch([]*data.Record{rec}, v[:])
	return v[0]
}

// DetectBatch implements BatchDetector: the batch's feature rows are packed
// into one contiguous tensor and scored in a single network pass. Encoding
// happens on a pooled slab before the lock is taken, so concurrent callers
// only contend for the network pass itself.
//
//pelican:noalloc
func (d *ModelDetector) DetectBatch(recs []*data.Record, verdicts []Verdict) {
	rows := len(recs)
	if rows == 0 {
		return
	}
	f := d.Pipe.Width()
	s, _ := d.slabs.Get().(*detectSlab)
	if s == nil {
		s = &detectSlab{x: tensor.New(rows, f)}
	} else {
		s.x.Resize(rows, f)
	}
	for i, rec := range recs {
		d.Pipe.ApplyInto(rec, s.x.Row(i))
	}
	s.view = s.x.ReshapeInto(s.view, rows, 1, f)

	d.mu.Lock()
	logits := d.Net.Predict(s.view)
	// The argmax readout also runs under the lock: logits is a reused layer
	// buffer that the next Predict overwrites.
	for i := 0; i < rows; i++ {
		row := logits.Row(i)
		cls := 0
		for c := 1; c < len(row); c++ {
			if row[c] > row[cls] {
				cls = c
			}
		}
		verdicts[i] = Verdict{IsAttack: cls != 0, Class: cls, Score: row[cls]}
	}
	d.mu.Unlock()
	d.slabs.Put(s)
}

// SignatureDetector wraps the Snort-style engine.
type SignatureDetector struct {
	Engine *signature.Engine
}

var _ Detector = (*SignatureDetector)(nil)

// Name implements Detector.
func (d *SignatureDetector) Name() string { return "signature" }

// Detect implements Detector.
func (d *SignatureDetector) Detect(rec *data.Record) Verdict {
	if rule, ok := d.Engine.Match(rec); ok {
		return Verdict{IsAttack: true, Class: rule.Class, RuleID: rule.ID, Score: 1}
	}
	return Verdict{Class: 0}
}

// AnomalyDetector wraps a calibrated anomaly profile; it is class-blind.
type AnomalyDetector struct {
	Profile *anomaly.Thresholded
	Pipe    *data.Pipeline
}

var _ Detector = (*AnomalyDetector)(nil)

// Name implements Detector.
func (d *AnomalyDetector) Name() string { return d.Profile.D.Name() }

// Detect implements Detector.
func (d *AnomalyDetector) Detect(rec *data.Record) Verdict {
	row := d.Pipe.Apply(rec)
	score := d.Profile.D.Score(row)
	return Verdict{IsAttack: score > d.Profile.Threshold, Class: -1, Score: score}
}

// Alert is one entry in the security team's queue.
type Alert struct {
	Flow    flow.Flow
	Verdict Verdict
	At      time.Time
}

// Stats counts pipeline outcomes; all fields are atomically updated and
// safe to read concurrently via the Snapshot method.
type Stats struct {
	processed     atomic.Int64
	alerts        atomic.Int64
	dropped       atomic.Int64
	scoreFailures atomic.Int64
	truePos       atomic.Int64
	falseAlarm    atomic.Int64
	missed        atomic.Int64
	trueNeg       atomic.Int64
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	Processed int64
	// Alerts counts alerts actually delivered to the queue; DroppedAlerts
	// counts attack verdicts whose alert could not be enqueued because the
	// pipeline was cancelled mid-delivery. The two never overlap.
	Alerts        int64
	DroppedAlerts int64
	// ScoreFailures counts flows whose verdict was marked Failed (the
	// detector could not score them); they appear in Processed but in no
	// detection counter.
	ScoreFailures int64
	TruePos       int64
	FalseAlarms   int64
	Missed        int64
	TrueNeg       int64
}

// Snapshot returns a consistent-enough copy for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Processed:     s.processed.Load(),
		Alerts:        s.alerts.Load(),
		DroppedAlerts: s.dropped.Load(),
		ScoreFailures: s.scoreFailures.Load(),
		TruePos:       s.truePos.Load(),
		FalseAlarms:   s.falseAlarm.Load(),
		Missed:        s.missed.Load(),
		TrueNeg:       s.trueNeg.Load(),
	}
}

// DR returns the realized detection rate.
func (s StatsSnapshot) DR() float64 {
	n := s.TruePos + s.Missed
	if n == 0 {
		return 0
	}
	return float64(s.TruePos) / float64(n)
}

// FAR returns the realized false-alarm rate.
func (s StatsSnapshot) FAR() float64 {
	n := s.FalseAlarms + s.TrueNeg
	if n == 0 {
		return 0
	}
	return float64(s.FalseAlarms) / float64(n)
}

// String renders a one-line summary.
func (s StatsSnapshot) String() string {
	out := fmt.Sprintf("processed=%d alerts=%d DR=%.2f%% FAR=%.2f%%",
		s.Processed, s.Alerts, s.DR()*100, s.FAR()*100)
	if s.DroppedAlerts > 0 {
		out += fmt.Sprintf(" dropped=%d", s.DroppedAlerts)
	}
	if s.ScoreFailures > 0 {
		out += fmt.Sprintf(" score-failures=%d", s.ScoreFailures)
	}
	return out
}

// Config controls the pipeline.
type Config struct {
	// Workers is the number of concurrent detector goroutines (default 4).
	Workers int
	// QueueDepth bounds the alert queue (default 1; alerts block when the
	// security team falls behind, which is deliberate backpressure).
	QueueDepth int
	// MicroBatch caps how many queued flows a worker drains into one
	// detector call. Batching amortizes one network pass (one GEMM) over
	// the batch instead of a per-flow matvec; the first flow of a batch is
	// never delayed — workers only gather flows that are already waiting.
	// Defaults to 32 for detectors implementing BatchDetector (the serve
	// path's measured sweet spot: its dynamic batcher sustained ~2.5× the
	// records/s of unbatched scoring at flush size 32), 1 otherwise.
	// The tradeoff: larger batches amortize the GEMM further only while
	// flows are actually queuing, and every flow in a batch waits for the
	// whole batch's verdicts — raise it for throughput under sustained
	// overload, lower it when per-flow alert latency on bursty traffic
	// matters more.
	MicroBatch int
	// Tap, when non-nil, observes every scored flow and its verdict — the
	// feedback stream a drift monitor or adaptation loop consumes (alerts
	// only carry attack verdicts; a monitor needs the full distribution).
	// It is invoked concurrently from all worker goroutines and on the
	// scoring hot path, so it must be safe for concurrent use and cheap.
	// The *flow.Flow points into a reused worker batch buffer: it is valid
	// only for the duration of the call — copy what must be retained
	// (the Record's slices are per-flow and safe to reference).
	Tap func(f *flow.Flow, v Verdict)
}

// Pipeline is a running NIDS instance.
type Pipeline struct {
	det   Detector
	cfg   Config
	stats Stats
}

// New constructs a pipeline around a detector.
func New(det Detector, cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	if cfg.MicroBatch <= 0 {
		if _, ok := det.(BatchDetector); ok {
			cfg.MicroBatch = 32
		} else {
			cfg.MicroBatch = 1
		}
	}
	return &Pipeline{det: det, cfg: cfg}
}

// Stats exposes the live counters.
func (p *Pipeline) Stats() StatsSnapshot { return p.stats.Snapshot() }

// Detector returns the wrapped detector.
func (p *Pipeline) Detector() Detector { return p.det }

// Run consumes flows until in closes or ctx is cancelled, invoking onAlert
// for every alert (from the single collector goroutine — onAlert needs no
// locking). It blocks until all workers have drained.
func (p *Pipeline) Run(ctx context.Context, in <-chan flow.Flow, onAlert func(Alert)) error {
	alerts := make(chan Alert, p.cfg.QueueDepth)

	var wg sync.WaitGroup
	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker-owned scoring buffers, reused across batches.
			var ws workerScratch
			batch := make([]flow.Flow, 0, p.cfg.MicroBatch)
			for {
				select {
				case f, ok := <-in:
					if !ok {
						return
					}
					batch = append(batch[:0], f)
					// Gather flows that are already queued — never wait
					// for traffic to fill a batch.
				gather:
					for len(batch) < p.cfg.MicroBatch {
						select {
						case f2, ok := <-in:
							if !ok {
								p.handleBatch(ctx, batch, &ws, alerts)
								return
							}
							batch = append(batch, f2)
						default:
							break gather
						}
					}
					p.handleBatch(ctx, batch, &ws, alerts)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range alerts {
			if onAlert != nil {
				onAlert(a)
			}
		}
	}()

	wg.Wait()
	close(alerts)
	<-done
	return ctx.Err()
}

// workerScratch holds one worker's reusable scoring buffers.
type workerScratch struct {
	recs     []*data.Record
	verdicts []Verdict
}

// handleBatch scores a batch of flows — one detector call when the
// detector supports batching, per-flow calls otherwise — and updates the
// counters.
func (p *Pipeline) handleBatch(ctx context.Context, batch []flow.Flow, ws *workerScratch, alerts chan<- Alert) {
	bd, ok := p.det.(BatchDetector)
	if !ok || len(batch) == 1 {
		for i := range batch {
			p.record(ctx, &batch[i], p.det.Detect(&batch[i].Record), alerts)
		}
		return
	}
	ws.recs = ws.recs[:0]
	for i := range batch {
		ws.recs = append(ws.recs, &batch[i].Record)
	}
	if cap(ws.verdicts) < len(batch) {
		ws.verdicts = make([]Verdict, len(batch))
	}
	verdicts := ws.verdicts[:len(batch)]
	bd.DetectBatch(ws.recs, verdicts)
	for i := range batch {
		p.record(ctx, &batch[i], verdicts[i], alerts)
	}
}

// record updates the counters for one scored flow and enqueues its alert.
func (p *Pipeline) record(ctx context.Context, f *flow.Flow, v Verdict, alerts chan<- Alert) {
	p.stats.processed.Add(1)
	if v.Failed {
		// No information: counting this as a negative would silently skew
		// DR/FAR whenever a remote scorer hiccups.
		p.stats.scoreFailures.Add(1)
		if p.cfg.Tap != nil {
			p.cfg.Tap(f, v)
		}
		return
	}
	actualAttack := f.TrueClass != 0
	switch {
	case v.IsAttack && actualAttack:
		p.stats.truePos.Add(1)
	case v.IsAttack && !actualAttack:
		p.stats.falseAlarm.Add(1)
	case !v.IsAttack && actualAttack:
		p.stats.missed.Add(1)
	default:
		p.stats.trueNeg.Add(1)
	}
	if p.cfg.Tap != nil {
		p.cfg.Tap(f, v)
	}
	if v.IsAttack {
		// Count only after the alert is actually delivered: on cancellation
		// the enqueue is abandoned, and counting it as an alert would make
		// the counter disagree with what onAlert ever observes. Abandoned
		// deliveries are accounted separately as drops.
		select {
		case alerts <- Alert{Flow: *f, Verdict: v, At: f.Timestamp}:
			p.stats.alerts.Add(1)
		case <-ctx.Done():
			p.stats.dropped.Add(1)
		}
	}
}
