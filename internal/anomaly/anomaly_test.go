package anomaly

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func normalSample(rng *rand.Rand, n, d int) *tensor.Tensor {
	return tensor.RandNormal(rng, 0, 1, n, d)
}

func outlierRow(d int, magnitude float64) []float64 {
	row := make([]float64, d)
	for i := range row {
		row[i] = magnitude
	}
	return row
}

func TestGaussianScoresOutliersHigher(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGaussian()
	if err := g.Fit(normalSample(rng, 500, 8)); err != nil {
		t.Fatal(err)
	}
	inlier := make([]float64, 8)
	if in, out := g.Score(inlier), g.Score(outlierRow(8, 6)); out <= in {
		t.Fatalf("outlier score %v <= inlier score %v", out, in)
	}
}

func TestGaussianRequiresRows(t *testing.T) {
	if err := NewGaussian().Fit(tensor.New(1, 4)); err == nil {
		t.Fatal("fit on 1 row accepted")
	}
}

func TestGaussianScoreBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Score before Fit did not panic")
		}
	}()
	NewGaussian().Score([]float64{1})
}

func TestKNNScoresOutliersHigher(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := NewKNN(5)
	if err := k.Fit(normalSample(rng, 400, 6)); err != nil {
		t.Fatal(err)
	}
	inlier := make([]float64, 6)
	if in, out := k.Score(inlier), k.Score(outlierRow(6, 8)); out <= in {
		t.Fatalf("outlier score %v <= inlier score %v", out, in)
	}
}

func TestKNNMaxRefSubsamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := NewKNN(3)
	k.MaxRef = 50
	if err := k.Fit(normalSample(rng, 500, 4)); err != nil {
		t.Fatal(err)
	}
	if k.ref.Dim(0) != 50 {
		t.Fatalf("reference size %d, want 50", k.ref.Dim(0))
	}
}

func TestKNNNeedsMoreRowsThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := NewKNN(10)
	if err := k.Fit(normalSample(rng, 10, 3)); err == nil {
		t.Fatal("n == k accepted")
	}
}

func TestCalibrateTargetsQuantileFAR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := normalSample(rng, 2000, 5)
	th, err := Calibrate(NewGaussian(), train, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// On fresh data from the SAME distribution, the false-alarm rate should
	// be near 5%.
	test := normalSample(rng, 2000, 5)
	alarms := 0
	for i := 0; i < test.Dim(0); i++ {
		if th.IsAttack(test.Row(i)) {
			alarms++
		}
	}
	far := float64(alarms) / float64(test.Dim(0))
	if far < 0.02 || far > 0.10 {
		t.Fatalf("calibrated FAR %v, want ≈0.05", far)
	}
}

func TestCalibrateDetectsShiftedTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	th, err := Calibrate(NewGaussian(), normalSample(rng, 1000, 6), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// Strongly shifted records must alarm.
	detected := 0
	for i := 0; i < 100; i++ {
		row := make([]float64, 6)
		for j := range row {
			row[j] = 5 + rng.NormFloat64()
		}
		if th.IsAttack(row) {
			detected++
		}
	}
	if detected < 95 {
		t.Fatalf("only %d/100 shifted records detected", detected)
	}
}

func TestCalibrateRejectsBadQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := Calibrate(NewGaussian(), normalSample(rng, 100, 3), 1.5); err == nil {
		t.Fatal("quantile > 1 accepted")
	}
}

func TestDetectorNames(t *testing.T) {
	if NewGaussian().Name() != "gaussian-profile" {
		t.Fatal("gaussian name")
	}
	if NewKNN(7).Name() != "knn-7" {
		t.Fatal("knn name")
	}
}
