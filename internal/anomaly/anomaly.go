// Package anomaly implements the anomaly-detection baselines discussed in
// the paper's Background (§VI): detectors that learn a profile of normal
// traffic only and flag outliers as attacks. The paper argues this
// approach "often leads to a high false alarm rate" compared with
// supervised learning — the ext-anomaly experiment quantifies that claim
// against Pelican on the same traffic.
package anomaly

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Detector scores how anomalous a feature vector is; higher is more
// anomalous. Fit sees ONLY normal traffic (that is the whole point of the
// approach).
type Detector interface {
	Fit(normal *tensor.Tensor) error
	Score(row []float64) float64
	Name() string
}

// Thresholded wraps a detector with a decision threshold calibrated on
// the training scores.
type Thresholded struct {
	D         Detector
	Threshold float64
}

// Calibrate fits the detector and sets the threshold at the q-quantile of
// the training scores — e.g. q = 0.99 targets a 1% false-alarm rate on
// traffic identical to the profile. Distribution drift in live traffic is
// what inflates the realized FAR.
func Calibrate(d Detector, normal *tensor.Tensor, q float64) (*Thresholded, error) {
	if q <= 0 || q >= 1 {
		return nil, fmt.Errorf("anomaly: quantile %v outside (0,1)", q)
	}
	if err := d.Fit(normal); err != nil {
		return nil, err
	}
	n := normal.Dim(0)
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = d.Score(normal.Row(i))
	}
	sort.Float64s(scores)
	idx := int(q * float64(n-1))
	return &Thresholded{D: d, Threshold: scores[idx]}, nil
}

// IsAttack reports whether the row scores above the threshold.
func (t *Thresholded) IsAttack(row []float64) bool {
	return t.D.Score(row) > t.Threshold
}

// Gaussian is the classical statistical profile: per-feature mean and
// variance on normal traffic; the score is the mean squared z-score.
type Gaussian struct {
	mean []float64
	std  []float64
}

// NewGaussian constructs an unfitted Gaussian profile detector.
func NewGaussian() *Gaussian { return &Gaussian{} }

var _ Detector = (*Gaussian)(nil)

// Name implements Detector.
func (g *Gaussian) Name() string { return "gaussian-profile" }

// Fit implements Detector.
func (g *Gaussian) Fit(normal *tensor.Tensor) error {
	n, d := normal.Dim(0), normal.Dim(1)
	if n < 2 {
		return fmt.Errorf("anomaly: need >= 2 normal rows, got %d", n)
	}
	g.mean = make([]float64, d)
	g.std = make([]float64, d)
	for i := 0; i < n; i++ {
		row := normal.Row(i)
		for j, v := range row {
			g.mean[j] += v
		}
	}
	inv := 1.0 / float64(n)
	for j := range g.mean {
		g.mean[j] *= inv
	}
	for i := 0; i < n; i++ {
		row := normal.Row(i)
		for j, v := range row {
			dv := v - g.mean[j]
			g.std[j] += dv * dv
		}
	}
	for j := range g.std {
		g.std[j] = math.Sqrt(g.std[j] * inv)
		if g.std[j] < 1e-9 {
			g.std[j] = 1e-9
		}
	}
	return nil
}

// Score implements Detector: mean squared z-score across features.
func (g *Gaussian) Score(row []float64) float64 {
	if g.mean == nil {
		panic("anomaly: Gaussian.Score before Fit")
	}
	s := 0.0
	for j, v := range row {
		z := (v - g.mean[j]) / g.std[j]
		s += z * z
	}
	return s / float64(len(row))
}

// KNN scores a point by its distance to the k-th nearest neighbour in a
// reference sample of normal traffic (the unsupervised-clustering style of
// [35]–[37] in the paper).
type KNN struct {
	K int
	// MaxRef caps the retained reference sample; 0 keeps everything.
	MaxRef int
	ref    *tensor.Tensor
}

// NewKNN constructs a k-NN detector (k defaults to 5).
func NewKNN(k int) *KNN {
	if k < 1 {
		k = 5
	}
	return &KNN{K: k}
}

var _ Detector = (*KNN)(nil)

// Name implements Detector.
func (k *KNN) Name() string { return fmt.Sprintf("knn-%d", k.K) }

// Fit implements Detector.
func (k *KNN) Fit(normal *tensor.Tensor) error {
	n := normal.Dim(0)
	if n <= k.K {
		return fmt.Errorf("anomaly: need > %d normal rows, got %d", k.K, n)
	}
	if k.MaxRef > 0 && n > k.MaxRef {
		// Deterministic stride subsample keeps memory bounded.
		d := normal.Dim(1)
		sub := tensor.New(k.MaxRef, d)
		stride := n / k.MaxRef
		for i := 0; i < k.MaxRef; i++ {
			copy(sub.Row(i), normal.Row(i*stride))
		}
		k.ref = sub
		return nil
	}
	k.ref = normal.Clone()
	return nil
}

// Score implements Detector: squared distance to the K-th nearest
// reference point.
func (k *KNN) Score(row []float64) float64 {
	if k.ref == nil {
		panic("anomaly: KNN.Score before Fit")
	}
	n := k.ref.Dim(0)
	// Maintain the K smallest distances in a small max-heap-ish array.
	best := make([]float64, k.K)
	for i := range best {
		best[i] = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		ref := k.ref.Row(i)
		d := 0.0
		for j, v := range row {
			diff := v - ref[j]
			d += diff * diff
			if d >= best[k.K-1] {
				break // early exit: already beyond the current k-th best
			}
		}
		if d < best[k.K-1] {
			// Insertion into the sorted best list.
			pos := k.K - 1
			for pos > 0 && best[pos-1] > d {
				best[pos] = best[pos-1]
				pos--
			}
			best[pos] = d
		}
	}
	return best[k.K-1]
}
