package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one exposition sample line: a metric name, its label set,
// and the value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for key ("" when absent).
func (s PromSample) Label(key string) string { return s.Labels[key] }

// PromFamily groups the samples of one metric family with its HELP/TYPE
// metadata. Histogram families hold their _bucket/_sum/_count series.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParseProm parses the Prometheus text exposition format (version 0.0.4):
// the producer side is WritePromHeader/Histogram.WriteProm, and this is
// its verifying consumer — the loadgen's stage scrape and the exposition
// round-trip tests. It returns families keyed by base name (histogram
// _bucket/_sum/_count series fold into their family) and errors on
// malformed lines, duplicate HELP/TYPE, or samples whose family was
// declared with a conflicting type.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	get := func(name string) *PromFamily {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &PromFamily{Name: name}
		fams[name] = f
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP without a metric name", lineNo)
			}
			f := get(name)
			if f.Help != "" {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			f.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			f := get(parts[0])
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, parts[0])
			}
			f.Type = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := get(promFamilyName(sample.Name, fams))
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// promFamilyName folds a histogram series name onto its declared family:
// x_bucket/x_sum/x_count belong to family x when x was TYPEd histogram.
func promFamilyName(name string, fams map[string]*PromFamily) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && f.Type == "histogram" {
			return base
		}
	}
	return name
}

// parsePromSample parses `name{k="v",...} value` (labels optional).
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for s != "" {
		eq := strings.Index(s, "=")
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		key := s[:eq]
		rest := s[eq+2:]
		// Find the closing quote, honoring \" escapes.
		end, esc := -1, false
		for i := 0; i < len(rest); i++ {
			if esc {
				esc = false
				continue
			}
			switch rest[i] {
			case '\\':
				esc = true
			case '"':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		val := strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n").Replace(rest[:end])
		labels[key] = val
		s = rest[end+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}

// PromHist is one parsed histogram series (one label set of a histogram
// family): cumulative bucket counts by upper bound, plus sum and count.
type PromHist struct {
	Bounds []float64 // finite upper bounds, ascending; +Inf is implicit
	Counts []int64   // cumulative, aligned with Bounds
	Inf    int64     // the +Inf bucket (== total count)
	Sum    float64
	Count  int64
}

// Histogram extracts the histogram series whose labels include match
// (ignoring le). Returns nil when the family holds no such series.
func (f *PromFamily) Histogram(match map[string]string) *PromHist {
	if f == nil || f.Type != "histogram" {
		return nil
	}
	matches := func(s PromSample) bool {
		for k, v := range match {
			if s.Labels[k] != v {
				return false
			}
		}
		return true
	}
	type bkt struct {
		le float64
		n  int64
	}
	var (
		bkts  []bkt
		h     PromHist
		found bool
	)
	for _, s := range f.Samples {
		if !matches(s) {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				if s.Labels["le"] == "+Inf" {
					le = math.Inf(1)
				} else {
					continue
				}
			}
			bkts = append(bkts, bkt{le: le, n: int64(s.Value)})
			found = true
		case strings.HasSuffix(s.Name, "_sum"):
			h.Sum = s.Value
			found = true
		case strings.HasSuffix(s.Name, "_count"):
			h.Count = int64(s.Value)
			found = true
		}
	}
	if !found {
		return nil
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	for _, b := range bkts {
		if math.IsInf(b.le, 1) {
			h.Inf = b.n
			continue
		}
		h.Bounds = append(h.Bounds, b.le)
		h.Counts = append(h.Counts, b.n)
	}
	return &h
}

// Sub returns the histogram delta h - prev (bucket-wise, sum, count) —
// how the distribution moved between two scrapes. prev may be nil (no
// earlier scrape), which returns h unchanged.
func (h *PromHist) Sub(prev *PromHist) *PromHist {
	if h == nil {
		return nil
	}
	if prev == nil {
		return h
	}
	out := &PromHist{
		Bounds: h.Bounds,
		Counts: append([]int64(nil), h.Counts...),
		Inf:    h.Inf - prev.Inf,
		Sum:    h.Sum - prev.Sum,
		Count:  h.Count - prev.Count,
	}
	for i := range out.Counts {
		if i < len(prev.Counts) {
			out.Counts[i] -= prev.Counts[i]
		}
	}
	return out
}

// Mean returns the average observation (0 when empty).
func (h *PromHist) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile from the cumulative buckets with
// linear interpolation (the same estimate Prometheus's histogram_quantile
// computes). Returns 0 on an empty histogram.
func (h *PromHist) Quantile(q float64) float64 {
	if h == nil || h.Inf == 0 {
		return 0
	}
	rank := q * float64(h.Inf)
	prevN, prevBound := int64(0), 0.0
	for i, n := range h.Counts {
		if float64(n) >= rank {
			width := h.Bounds[i] - prevBound
			inBucket := float64(n - prevN)
			if inBucket == 0 {
				return h.Bounds[i]
			}
			return prevBound + width*(rank-float64(prevN))/inBucket
		}
		prevN, prevBound = n, h.Bounds[i]
	}
	if len(h.Bounds) > 0 {
		return h.Bounds[len(h.Bounds)-1]
	}
	return 0
}
