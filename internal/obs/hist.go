// Package obs is the serving plane's observability layer: lock-free
// fixed-bucket histograms, request traces with stage-level spans kept in a
// bounded ring (the /debug/traces source), a leveled JSON logger, request
// IDs, and process runtime telemetry. It is dependency-free (stdlib only)
// and deliberately knows nothing about serving: the serve, adapt, and cmd
// layers thread its primitives through their own seams.
package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the request-latency histogram upper bounds in
// seconds, spanning sub-millisecond in-process scoring to multi-second
// overload tails.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// StageBuckets resolve the per-stage latency components, whose interesting
// range starts well below the request buckets: queue wait and batch
// assembly sit in the tens of microseconds when the plane is healthy, and
// only an overload or an injected stall pushes a stage past a millisecond.
var StageBuckets = []float64{
	0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// BatchSizeBuckets cover the dynamic batcher's flush sizes (records per
// flushed batch).
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Histogram is a fixed-bucket Prometheus-style histogram with lock-free
// observation. Bounds are cumulative upper bounds in the observed unit
// (seconds for latencies, records for sizes); one implicit +Inf bucket is
// always appended.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	total   atomic.Int64
}

// NewHistogram builds a histogram over bounds. The bounds slice is
// retained and must be ascending and never mutated.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.total.Add(1)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns how many values have been observed.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// WritePromHeader writes one metric family's # HELP and # TYPE lines.
// Call it exactly once per family, before any sample lines — including
// when several label sets (e.g. per-slot histograms) share the family.
func WritePromHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteProm writes the histogram's sample lines (cumulative buckets, sum,
// count) for one label set. labels is the pre-rendered inner label list
// (e.g. `slot="live"`), empty for an unlabeled family; the caller has
// already written the family header via WritePromHeader.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, ub, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.total.Load())
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.Sum(), name, labels, h.total.Load())
}

// Quantile estimates the q-quantile (0..1) from the bucket counts by
// linear interpolation within the winning bucket — the same estimate
// Prometheus's histogram_quantile computes. Returns 0 with no
// observations; values in the +Inf bucket clamp to the largest bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, ub := range h.bounds {
		c := h.counts[i].Load()
		cum += c
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if c == 0 {
				return ub
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (ub-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}
