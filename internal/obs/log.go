package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. Records below a logger's level are dropped
// before any encoding work.
type Level int32

// Severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a flag value to a Level (unknown values mean info).
func ParseLevel(s string) Level {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger emits one JSON object per record: {"ts":...,"level":...,
// "msg":..., <base fields>, <record fields>}. Fields are alternating
// key, value pairs; values are encoded with encoding/json (errors render
// as their Error() string). A nil *Logger is valid and silent, so every
// layer can take a logger without nil checks on the hot path.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	base  []byte // pre-encoded `,"k":v` prefix from With
}

// NewLogger builds a logger writing JSON lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level}
}

// Enabled reports whether records at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// With returns a logger that prepends the given fields to every record —
// the carrier for request ID, slot, and version context.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	nl := &Logger{mu: l.mu, w: l.w, level: l.level}
	nl.base = appendFields(append([]byte(nil), l.base...), kv)
	return nl
}

func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":"`...)
	buf = time.Now().UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSON(buf, msg)
	buf = append(buf, l.base...)
	buf = appendFields(buf, kv)
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

// appendFields encodes alternating key, value pairs as `,"k":v`. A
// trailing odd value is recorded under "!missing-key" rather than lost.
func appendFields(buf []byte, kv []any) []byte {
	for i := 0; i < len(kv); i += 2 {
		key, ok := "!missing-key", false
		var val any
		if i+1 < len(kv) {
			key, ok = kv[i].(string), true
			val = kv[i+1]
		} else {
			val = kv[i]
		}
		if !ok && i+1 < len(kv) {
			key = fmt.Sprint(kv[i])
		}
		buf = append(buf, ',')
		buf = appendJSON(buf, key)
		buf = append(buf, ':')
		buf = appendJSON(buf, val)
	}
	return buf
}

// appendJSON encodes v, falling back to its string rendering when it
// cannot be marshaled (channels, functions) — a log line must never fail.
func appendJSON(buf []byte, v any) []byte {
	if err, isErr := v.(error); isErr && err != nil {
		v = err.Error()
	}
	if d, isDur := v.(time.Duration); isDur {
		v = d.String()
	}
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(buf, b...)
}
