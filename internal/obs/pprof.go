package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PprofHandler returns a mux serving the net/http/pprof endpoints
// (/debug/pprof/, .../profile, .../heap, ...) without touching
// http.DefaultServeMux — profiling stays off the serving port and off any
// mux the application registers its own handlers on.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartPprof serves the pprof handlers on a side listener at addr
// (e.g. "127.0.0.1:6060"; port 0 picks a free port). It returns the bound
// address and a stop function; the listener runs until stopped. Profiling
// on its own port keeps CPU/heap capture available even when the serving
// port is saturated, and keeps it off any publicly exposed address.
func StartPprof(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: PprofHandler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
