package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const promFixture = `# HELP x_seconds A histogram.
# TYPE x_seconds histogram
x_seconds_bucket{slot="live",le="0.001"} 3
x_seconds_bucket{slot="live",le="0.01"} 7
x_seconds_bucket{slot="live",le="+Inf"} 9
x_seconds_sum{slot="live"} 0.042
x_seconds_count{slot="live"} 9
# HELP y_total A counter.
# TYPE y_total counter
y_total{code="4xx"} 2
y_total{code="5xx"} 0
`

func TestParsePromFoldsHistogramSeries(t *testing.T) {
	fams, err := ParseProm(strings.NewReader(promFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("%d families, want 2 (histogram series must fold into their family)", len(fams))
	}
	f := fams["x_seconds"]
	if f == nil || f.Type != "histogram" || f.Help != "A histogram." {
		t.Fatalf("x_seconds family = %+v", f)
	}
	if len(f.Samples) != 5 {
		t.Fatalf("x_seconds holds %d samples, want 5", len(f.Samples))
	}
	h := f.Histogram(map[string]string{"slot": "live"})
	if h == nil {
		t.Fatal("Histogram(slot=live) = nil")
	}
	if len(h.Bounds) != 2 || h.Bounds[0] != 0.001 || h.Bounds[1] != 0.01 {
		t.Fatalf("bounds %v", h.Bounds)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 7 || h.Inf != 9 || h.Count != 9 || h.Sum != 0.042 {
		t.Fatalf("parsed histogram %+v", h)
	}
	if f.Histogram(map[string]string{"slot": "shadow"}) != nil {
		t.Fatal("Histogram matched a label set that has no series")
	}
	c := fams["y_total"]
	if c == nil || c.Type != "counter" || len(c.Samples) != 2 {
		t.Fatalf("y_total family = %+v", c)
	}
	if c.Samples[0].Label("code") != "4xx" || c.Samples[0].Value != 2 {
		t.Fatalf("first counter sample = %+v", c.Samples[0])
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"duplicate HELP": "# HELP a b\n# HELP a c\n",
		"duplicate TYPE": "# TYPE a counter\n# TYPE a gauge\n",
		"nameless HELP":  "# HELP  missing the metric name\n",
		"malformed TYPE": "# TYPE a\n",
		"no value":       "a{k=\"v\"}\n",
		"bad value":      "a xyz\n",
		"open labels":    "a{k=\"v\" 1\n",
		"bad label":      "a{k} 1\n",
	}
	for name, in := range cases {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParsePromLabelEscapes(t *testing.T) {
	in := `m{msg="a \"quoted\" value, with \\ and comma"} 1` + "\n"
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got := fams["m"].Samples[0].Label("msg")
	if want := `a "quoted" value, with \ and comma`; got != want {
		t.Fatalf("unescaped label = %q, want %q", got, want)
	}
}

// TestParsePromRoundTrip pins producer/consumer agreement: what
// Histogram.WriteProm emits, ParseProm must read back exactly.
func TestParsePromRoundTrip(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	WritePromHeader(&buf, "rt_seconds", "histogram", "Round-trip fixture.")
	h.WriteProm(&buf, "rt_seconds", `slot="live"`)

	fams, err := ParseProm(&buf)
	if err != nil {
		t.Fatalf("own output does not parse: %v", err)
	}
	got := fams["rt_seconds"].Histogram(map[string]string{"slot": "live"})
	if got == nil {
		t.Fatal("round-tripped histogram series missing")
	}
	if got.Count != 4 || got.Inf != 4 {
		t.Fatalf("count %d inf %d, want 4", got.Count, got.Inf)
	}
	if want := []int64{1, 2, 3}; len(got.Counts) != 3 || got.Counts[0] != want[0] || got.Counts[1] != want[1] || got.Counts[2] != want[2] {
		t.Fatalf("cumulative counts %v, want %v", got.Counts, want)
	}
	if math.Abs(got.Sum-55.55) > 1e-9 {
		t.Fatalf("sum %g, want 55.55", got.Sum)
	}
}

func TestPromHistSubMeanQuantile(t *testing.T) {
	prev := &PromHist{Bounds: []float64{1, 2}, Counts: []int64{1, 2}, Inf: 2, Sum: 3, Count: 2}
	cur := &PromHist{Bounds: []float64{1, 2}, Counts: []int64{3, 8}, Inf: 10, Sum: 15, Count: 10}
	d := cur.Sub(prev)
	if d.Counts[0] != 2 || d.Counts[1] != 6 || d.Inf != 8 || d.Sum != 12 || d.Count != 8 {
		t.Fatalf("delta %+v", d)
	}
	if m := d.Mean(); m != 1.5 {
		t.Fatalf("mean %g, want 1.5", m)
	}
	// Sub must not mutate its receiver (the loadgen reuses the scrape).
	if cur.Counts[0] != 3 {
		t.Fatal("Sub mutated the receiver's buckets")
	}
	if cur.Sub(nil) != cur {
		t.Fatal("Sub(nil) must return the receiver unchanged")
	}
	var nilH *PromHist
	if nilH.Sub(prev) != nil || nilH.Mean() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil PromHist helpers must be safe no-ops")
	}

	// Quantile: 10 observations, 3 at or under 1, 8 at or under 2.
	// rank(0.5) = 5 lands in the (1, 2] bucket with 5 in-bucket entries.
	q := cur.Quantile(0.5)
	if want := 1 + (5.0-3.0)/5.0; math.Abs(q-want) > 1e-9 {
		t.Fatalf("p50 = %g, want %g", q, want)
	}
	if q := cur.Quantile(0.99); q < 2 {
		// Rank beyond the last finite bucket clamps to the top bound.
		t.Fatalf("p99 = %g, want clamped to top bound 2", q)
	}
}
