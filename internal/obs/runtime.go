package obs

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// WriteRuntimeProm renders process runtime telemetry in the Prometheus
// text format: goroutine count, heap usage, cumulative GC pause time and
// cycle count, and uptime since start. It reads runtime.MemStats without
// forcing a GC, so it is cheap enough for every /metrics scrape.
func WriteRuntimeProm(w io.Writer, start time.Time) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge := func(name, help string, v float64) {
		WritePromHeader(w, name, "gauge", help)
		writeSample(w, name, v)
	}
	counter := func(name, help string, v float64) {
		WritePromHeader(w, name, "counter", help)
		writeSample(w, name, v)
	}
	gauge("pelican_runtime_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	gauge("pelican_runtime_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	gauge("pelican_runtime_heap_sys_bytes", "Heap memory obtained from the OS.", float64(ms.HeapSys))
	counter("pelican_runtime_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)
	counter("pelican_runtime_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	gauge("pelican_runtime_uptime_seconds", "Seconds since the process started serving.", time.Since(start).Seconds())
}

func writeSample(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "%s %g\n", name, v)
}
