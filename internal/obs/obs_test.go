package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 0.0005+0.002+0.05+5; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var buf bytes.Buffer
	h.WriteProm(&buf, "x_seconds", `slot="live"`)
	s := buf.String()
	for _, want := range []string{
		`x_seconds_bucket{slot="live",le="0.001"} 1`,
		`x_seconds_bucket{slot="live",le="0.01"} 2`,
		`x_seconds_bucket{slot="live",le="0.1"} 3`,
		`x_seconds_bucket{slot="live",le="+Inf"} 4`,
		`x_seconds_count{slot="live"} 4`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("exposition missing %q:\n%s", want, s)
		}
	}
}

// TestHistogramConcurrentSum proves the CAS-accumulated sum loses nothing
// under contention (run with -race).
func TestHistogramConcurrentSum(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got < 7.999 || got > 8.001 {
		t.Fatalf("sum = %g, want ~8", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if q := h.Quantile(0.5); q > 0.01 {
		t.Fatalf("p50 = %g, want <= 0.01", q)
	}
	if q := h.Quantile(0.99); q < 0.1 || q > 1 {
		t.Fatalf("p99 = %g, want in (0.1, 1]", q)
	}
}

func TestTraceSpansAndFinish(t *testing.T) {
	tr := NewTrace("abc123", "/v1/detect-batch")
	tr.SetSlot("live", "v1")
	start := tr.Start
	tr.Span("infer", start.Add(2*time.Millisecond), 5*time.Millisecond, "replica", "0")
	tr.Span("admit", start, time.Millisecond)
	tr.Finish(200, "")
	if tr.Spans[0].Name != "admit" || tr.Spans[1].Name != "infer" {
		t.Fatalf("spans not ordered by start: %+v", tr.Spans)
	}
	if tr.Spans[1].Attrs["replica"] != "0" {
		t.Fatalf("span attrs lost: %+v", tr.Spans[1])
	}
	if got := tr.StageDur("infer"); got != 5*time.Millisecond {
		t.Fatalf("StageDur(infer) = %s", got)
	}
	// Post-finish appends must be dropped, not race with readers.
	tr.Span("late", start, time.Second)
	if len(tr.Spans) != 2 {
		t.Fatalf("post-finish span was appended")
	}
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// Nil traces are safe everywhere.
	var nilT *Trace
	nilT.Span("x", start, 0)
	nilT.SetSlot("a", "b")
	nilT.Finish(0, "")
}

func TestTraceRingOverwritesOldest(t *testing.T) {
	r := NewTraceRing(16)
	for i := 0; i < 40; i++ {
		tr := NewTrace(NewID(), "/x")
		tr.Finish(200, "")
		r.Put(tr)
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("ring holds %d traces, want 16", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Start.After(snap[i-1].Start) {
			t.Fatalf("snapshot not newest-first at %d", i)
		}
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace(NewID(), "/x")
				tr.Finish(200, "")
				r.Put(tr)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestLoggerJSONShape(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelInfo).With("slot", "live", "version", "v1")
	log.Debug("dropped")
	log.Info("published", "retrains", 3, "dur", 1500*time.Millisecond, "err", error(nil))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 line (debug filtered), got %d:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[0])
	}
	if rec["level"] != "info" || rec["msg"] != "published" {
		t.Fatalf("bad level/msg: %v", rec)
	}
	if rec["slot"] != "live" || rec["version"] != "v1" {
		t.Fatalf("With fields missing: %v", rec)
	}
	if rec["retrains"] != float64(3) || rec["dur"] != "1.5s" {
		t.Fatalf("record fields wrong: %v", rec)
	}
	if _, ok := rec["ts"]; !ok {
		t.Fatalf("no timestamp: %v", rec)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var log *Logger
	log.Info("x", "k", "v")
	log.With("a", 1).Error("y")
	if log.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				log.Info("m", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("interleaved/corrupt line: %q", ln)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo,
	} {
		if got := ParseLevel(s); got != want {
			t.Fatalf("ParseLevel(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestWriteRuntimeProm(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntimeProm(&buf, time.Now().Add(-time.Minute))
	s := buf.String()
	for _, want := range []string{
		"pelican_runtime_goroutines", "pelican_runtime_heap_alloc_bytes",
		"pelican_runtime_gc_pause_seconds_total", "pelican_runtime_uptime_seconds",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("runtime exposition missing %q:\n%s", want, s)
		}
	}
}
