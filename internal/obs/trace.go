package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the HTTP header that carries a request's trace ID.
// The server honors an incoming value (callers correlate their own logs),
// generates one when absent, and echoes it on every response — including
// error bodies.
const RequestIDHeader = "X-Request-Id"

// NewID returns a 16-hex-char random ID for traces and requests. It
// prefers crypto/rand and degrades to math/rand if the entropy source
// fails — an ID is a correlation handle, not a secret.
func NewID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[:], rand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

// Span is one timed stage inside a trace. Offsets and durations are
// microseconds relative to the trace start — coarse enough to render, fine
// enough to attribute a sub-millisecond stage.
type Span struct {
	// Name is the stage: admit, queue_wait, batch_assembly, infer, encode.
	Name string `json:"name"`
	// StartUS is the offset from the trace's start, in microseconds.
	StartUS int64 `json:"start_us"`
	// DurUS is the span's duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// Attrs carry span-scoped facts (replica index, batch size, injected
	// chaos delay, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace is one request's journey through the serving plane: identity,
// outcome, and the stage spans recorded along the way. A trace is mutable
// (mutex-guarded span appends from handler and worker goroutines) until
// Finish, after which it is immutable — the ring stores only finished
// traces, so readers marshal them without locks.
type Trace struct {
	ID string `json:"id"`
	// ParentID links an async child (a shadow-mirror trace) to the live
	// request that spawned it.
	ParentID string `json:"parent_id,omitempty"`
	// Endpoint is the serving endpoint the request entered through.
	Endpoint string `json:"endpoint"`
	// Slot and Version identify the model generation that answered.
	Slot    string `json:"slot,omitempty"`
	Version string `json:"version,omitempty"`
	// Records is how many flow records the request carried.
	Records int `json:"records"`
	// Status is the HTTP status answered; Error the error body's message.
	Status int       `json:"status"`
	Error  string    `json:"error,omitempty"`
	Start  time.Time `json:"start"`
	// DurUS is the end-to-end duration in microseconds.
	DurUS int64  `json:"dur_us"`
	Spans []Span `json:"spans"`

	mu   sync.Mutex
	done bool
}

// NewTrace starts a trace for endpoint with the given ID.
func NewTrace(id, endpoint string) *Trace {
	return &Trace{ID: id, Endpoint: endpoint, Start: time.Now()}
}

// SetSlot records which model generation answered. Safe to call
// concurrently with span appends.
func (t *Trace) SetSlot(slot, version string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Slot, t.Version = slot, version
	t.mu.Unlock()
}

// Span appends one stage span. attrs are alternating key, value pairs.
// Nil traces and finished traces drop the span — a worker finishing a
// straggler batch after the request answered must not mutate a published
// trace.
func (t *Trace) Span(name string, start time.Time, d time.Duration, attrs ...string) {
	if t == nil {
		return
	}
	sp := Span{Name: name, StartUS: start.Sub(t.Start).Microseconds(), DurUS: d.Microseconds()}
	if len(attrs) >= 2 {
		sp.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			sp.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	t.mu.Lock()
	if !t.done {
		t.Spans = append(t.Spans, sp)
	}
	t.mu.Unlock()
}

// Finish seals the trace with its outcome and orders its spans by start
// offset. After Finish the trace is immutable and safe to publish.
func (t *Trace) Finish(status int, errMsg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done = true
	t.Status = status
	t.Error = errMsg
	t.DurUS = time.Since(t.Start).Microseconds()
	sort.SliceStable(t.Spans, func(i, j int) bool { return t.Spans[i].StartUS < t.Spans[j].StartUS })
	t.mu.Unlock()
}

// StageDur sums the durations of the named spans — how much of the trace
// the stage accounts for.
func (t *Trace) StageDur(name string) time.Duration {
	var us int64
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			us += t.Spans[i].DurUS
		}
	}
	return time.Duration(us) * time.Microsecond
}

// TraceRing is a bounded lock-free ring of finished traces: Put overwrites
// the oldest entry once full, Snapshot reads whatever is currently held.
// Writers never block and never allocate beyond the trace itself.
type TraceRing struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// NewTraceRing builds a ring holding up to n traces (n is rounded up to a
// power of two; minimum 16).
func NewTraceRing(n int) *TraceRing {
	capacity := 16
	for capacity < n {
		capacity <<= 1
	}
	return &TraceRing{slots: make([]atomic.Pointer[Trace], capacity)}
}

// Put publishes a finished trace, displacing the oldest entry when full.
func (r *TraceRing) Put(t *Trace) {
	if r == nil || t == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i&uint64(len(r.slots)-1)].Store(t)
}

// Len reports how many traces the ring currently holds.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	n := int(r.next.Load())
	if n > len(r.slots) {
		n = len(r.slots)
	}
	return n
}

// Snapshot returns the held traces, newest first.
func (r *TraceRing) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	out := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}
