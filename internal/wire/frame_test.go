package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frameBytes encodes one frame into a byte slice via FrameWriter.
func frameBytes(ft FrameType, payload []byte) []byte {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.Write(ft, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x42},
		bytes.Repeat([]byte{0xAB}, 1000),
		bytes.Repeat([]byte("pelican"), 4096),
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	types := []FrameType{FrameHello, FrameSchema, FrameScore, FrameResult, FrameError, FrameGoAway}
	for i, p := range payloads {
		if err := fw.Write(types[i%len(types)], p); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, p := range payloads {
		ft, got, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != types[i%len(types)] {
			t.Fatalf("frame %d: type %d, want %d", i, ft, types[i%len(types)])
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch (%d bytes vs %d)", i, len(got), len(p))
		}
	}
	if _, _, err := fr.Read(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	if fr.Frames() != int64(len(payloads)) || fw.Frames() != int64(len(payloads)) {
		t.Fatalf("frame counts: read %d written %d, want %d", fr.Frames(), fw.Frames(), len(payloads))
	}
	if fr.Bytes() != fw.Bytes() {
		t.Fatalf("byte counts differ: read %d, written %d", fr.Bytes(), fw.Bytes())
	}
}

// TestTruncationAtEveryOffset mirrors the store journal's torn-tail fuzz:
// a stream cut at every possible byte offset must yield either a clean
// io.EOF (cut exactly on a frame boundary) or io.ErrUnexpectedEOF — and
// every successfully decoded prefix frame must be intact. Never a panic,
// never a hang, never garbage accepted.
func TestTruncationAtEveryOffset(t *testing.T) {
	var full bytes.Buffer
	fw := NewFrameWriter(&full)
	payloads := [][]byte{
		[]byte("alpha"),
		{},
		bytes.Repeat([]byte{0x5A}, 300),
		[]byte("tail"),
	}
	boundaries := map[int]bool{0: true}
	for _, p := range payloads {
		if err := fw.Write(FrameScore, p); err != nil {
			t.Fatal(err)
		}
		boundaries[full.Len()] = true
	}
	stream := full.Bytes()
	for cut := 0; cut <= len(stream); cut++ {
		fr := NewFrameReader(bytes.NewReader(stream[:cut]))
		frames := 0
		for {
			_, p, err := fr.Read()
			if err == nil {
				if !bytes.Equal(p, payloads[frames]) {
					t.Fatalf("cut %d: frame %d corrupted", cut, frames)
				}
				frames++
				continue
			}
			if err == io.EOF {
				if !boundaries[cut] {
					t.Fatalf("cut %d: clean EOF mid-frame", cut)
				}
			} else if err == io.ErrUnexpectedEOF {
				if boundaries[cut] {
					t.Fatalf("cut %d: ErrUnexpectedEOF at a frame boundary", cut)
				}
				if !IsProtocolError(err) {
					t.Fatalf("cut %d: truncation not a protocol error", cut)
				}
			} else {
				t.Fatalf("cut %d: unexpected error %v", cut, err)
			}
			break
		}
	}
}

func TestCorruptCRC(t *testing.T) {
	raw := frameBytes(FrameScore, []byte("payload under test"))
	// Flip one bit in every payload byte position in turn; each must
	// surface as ErrChecksum.
	for off := HeaderSize; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x01
		_, _, err := NewFrameReader(bytes.NewReader(mut)).Read()
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("payload bit flip at %d: %v, want ErrChecksum", off, err)
		}
		if !IsProtocolError(err) {
			t.Fatalf("ErrChecksum not a protocol error")
		}
	}
}

func TestHeaderViolations(t *testing.T) {
	good := frameBytes(FrameScore, []byte("x"))
	mutate := func(off int, val byte) []byte {
		m := append([]byte(nil), good...)
		m[off] = val
		return m
	}
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"bad magic", mutate(0, 'X'), ErrBadMagic},
		{"bad version", mutate(4, 99), ErrBadVersion},
		{"zero frame type", mutate(5, 0), ErrUnknownFrame},
		{"frame type past GoAway", mutate(5, byte(FrameGoAway)+1), ErrUnknownFrame},
		{"reserved byte 6", mutate(6, 1), ErrBadReserved},
		{"reserved byte 7", mutate(7, 0xFF), ErrBadReserved},
	}
	for _, tc := range cases {
		_, _, err := NewFrameReader(bytes.NewReader(tc.raw)).Read()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: %v, want %v", tc.name, err, tc.want)
		}
		if !IsProtocolError(err) {
			t.Errorf("%s: not classified as protocol error", tc.name)
		}
	}
}

// TestOversizedLengthPrefix pins the allocation bound: a hostile length
// prefix past MaxPayload is rejected from the header alone, without
// allocating or reading the claimed payload.
func TestOversizedLengthPrefix(t *testing.T) {
	raw := frameBytes(FrameScore, []byte("x"))[:HeaderSize]
	binary.LittleEndian.PutUint32(raw[8:12], MaxPayload+1)
	_, _, err := NewFrameReader(bytes.NewReader(raw)).Read()
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized prefix: %v, want ErrFrameTooBig", err)
	}
	huge := frameBytes(FrameScore, nil)[:HeaderSize]
	binary.LittleEndian.PutUint32(huge[8:12], 0xFFFFFFFF)
	_, _, err = NewFrameReader(bytes.NewReader(huge)).Read()
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("4GiB prefix: %v, want ErrFrameTooBig", err)
	}
}

func TestWriterRejectsOversizedPayload(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	if err := fw.Write(FrameScore, make([]byte, MaxPayload+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized write: %v, want ErrFrameTooBig", err)
	}
}

// TestGarbageStream feeds interleaved garbage after a valid frame: the
// valid prefix decodes, the garbage surfaces as a protocol error.
func TestGarbageStream(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.Write(FrameResult, []byte("good")); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("GARBAGE GARBAGE GARBAGE!")
	fr := NewFrameReader(&buf)
	if _, p, err := fr.Read(); err != nil || string(p) != "good" {
		t.Fatalf("valid prefix frame: %q, %v", p, err)
	}
	_, _, err := fr.Read()
	if err == nil || !IsProtocolError(err) {
		t.Fatalf("garbage tail: %v, want a protocol error", err)
	}
}

// TestReadSteadyStateAllocs pins the pooled-buffer contract: once the
// reader's payload buffer has grown to the workload's frame size,
// decoding allocates nothing.
func TestReadSteadyStateAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0x77}, 2048)
	raw := frameBytes(FrameScore, payload)
	r := bytes.NewReader(raw)
	fr := NewFrameReader(r)
	if _, _, err := fr.Read(); err != nil { // warm the payload buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(raw)
		if _, _, err := fr.Read(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("FrameReader.Read allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestWriteSteadyStateAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0x33}, 2048)
	var buf bytes.Buffer
	buf.Grow(len(payload) * 2)
	fw := NewFrameWriter(&buf)
	if err := fw.Write(FrameScore, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf.Reset()
		if err := fw.Write(FrameScore, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("FrameWriter.Write allocates %.1f/op in steady state, want 0", allocs)
	}
}

// FuzzReadFrame is the satellite's decoder fuzz: arbitrary bytes must
// decode or fail with a classified protocol error / clean EOF — never
// panic, never hang, never report success with an inconsistent payload.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(frameBytes(FrameHello, nil))
	f.Add(frameBytes(FrameScore, []byte("seed payload")))
	f.Add(frameBytes(FrameGoAway, bytes.Repeat([]byte{1}, 64)))
	// Torn and corrupt seeds.
	whole := frameBytes(FrameResult, []byte("torn"))
	f.Add(whole[:len(whole)-2])
	f.Add(whole[:HeaderSize-3])
	crc := append([]byte(nil), whole...)
	crc[len(crc)-1] ^= 0xFF
	f.Add(crc)
	big := append([]byte(nil), whole[:HeaderSize]...)
	binary.LittleEndian.PutUint32(big[8:12], 0x7FFFFFFF)
	f.Add(big)
	f.Add([]byte("PLWF garbage that is not a frame at all ..........."))

	f.Fuzz(func(t *testing.T, in []byte) {
		fr := NewFrameReader(bytes.NewReader(in))
		for {
			ft, p, err := fr.Read()
			if err != nil {
				if err != io.EOF && !IsProtocolError(err) {
					t.Fatalf("unclassified error from pure byte input: %v", err)
				}
				return
			}
			if ft < FrameHello || ft > FrameGoAway {
				t.Fatalf("accepted out-of-range frame type %d", ft)
			}
			if len(p) > MaxPayload {
				t.Fatalf("accepted payload of %d bytes past MaxPayload", len(p))
			}
		}
	})
}
