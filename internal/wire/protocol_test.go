package wire

import (
	"errors"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/nids"
)

// testSchema builds a small schema with two numeric and two categorical
// features, enough to exercise every packing path.
func testSchema() data.Schema {
	return data.Schema{
		NumericNames: []string{"duration", "src_bytes"},
		Categorical: []data.CategoricalFeature{
			{Name: "protocol_type", Values: []string{"tcp", "udp", "icmp"}},
			{Name: "flag", Values: []string{"SF", "REJ"}},
		},
		ClassNames: []string{"normal", "dos"},
	}
}

func testRecords() []*data.Record {
	return []*data.Record{
		{Numeric: []float64{1.5, 42}, Categorical: []string{"tcp", "SF"}},
		{Numeric: []float64{0, -3.25}, Categorical: []string{"icmp", "REJ"}},
		{Numeric: []float64{9e6, 0.125}, Categorical: []string{"not-in-vocab", "SF"}},
	}
}

func TestScoreRequestRoundTrip(t *testing.T) {
	schema := testSchema()
	enc := NewRecordEncoder(schema)
	recs := testRecords()
	payload, err := enc.AppendScoreRequest(nil, 7, 250, "canary", recs)
	if err != nil {
		t.Fatal(err)
	}
	var rb RecordBuffer
	req, err := rb.SetPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.ID != 7 || req.DeadlineMS != 250 || string(req.Tag) != "canary" {
		t.Fatalf("header mismatch: %+v", req)
	}
	if req.Fingerprint != Fingerprint(schema) || req.Fingerprint != enc.Fingerprint() {
		t.Fatalf("fingerprint mismatch")
	}
	if req.Count != len(recs) || req.NumNumeric != 2 || req.NumCat != 2 {
		t.Fatalf("shape mismatch: %+v", req)
	}
	got, err := rb.Decode(&req, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		for j, v := range r.Numeric {
			want := float64(float32(v)) // f32 narrowing is part of the contract
			if got[i].Numeric[j] != want {
				t.Fatalf("rec %d numeric %d: %v, want %v", i, j, got[i].Numeric[j], want)
			}
		}
		for j, v := range r.Categorical {
			want := v
			if _, ok := map[string]bool{"tcp": true, "udp": true, "icmp": true, "SF": true, "REJ": true}[v]; !ok {
				want = "" // out-of-vocabulary → UnknownIndex → empty string
			}
			if got[i].Categorical[j] != want {
				t.Fatalf("rec %d cat %d: %q, want %q", i, j, got[i].Categorical[j], want)
			}
		}
	}
}

func TestScoreRequestRejects(t *testing.T) {
	schema := testSchema()
	enc := NewRecordEncoder(schema)
	ok := testRecords()
	if _, err := enc.AppendScoreRequest(nil, 0, 0, "", ok); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("zero id: %v, want ErrBadPayload", err)
	}
	if _, err := enc.AppendScoreRequest(nil, 1, 0, "", nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty batch: %v, want ErrBadPayload", err)
	}
	bad := []*data.Record{{Numeric: []float64{1}, Categorical: []string{"tcp", "SF"}}}
	if _, err := enc.AppendScoreRequest(nil, 1, 0, "", bad); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short numeric row: %v, want ErrBadPayload", err)
	}
	if _, err := enc.AppendScoreRequest(nil, 1, 0, string(make([]byte, 256)), ok); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("overlong tag: %v, want ErrBadPayload", err)
	}
}

func TestParseScoreRequestTruncation(t *testing.T) {
	enc := NewRecordEncoder(testSchema())
	payload, err := enc.AppendScoreRequest(nil, 3, 0, "t", testRecords())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := ParseScoreRequest(payload[:cut]); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("cut %d: %v, want ErrBadPayload", cut, err)
		}
	}
	// One extra byte breaks the exact-size invariant too.
	if _, err := ParseScoreRequest(append(append([]byte(nil), payload...), 0)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("trailing byte: %v, want ErrBadPayload", err)
	}
}

func TestDecodeRejectsHostileVocabIndex(t *testing.T) {
	schema := testSchema()
	enc := NewRecordEncoder(schema)
	payload, err := enc.AppendScoreRequest(nil, 5, 0, "", testRecords()[:1])
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the first categorical index (right after the two f32
	// numerics of record 0) with an in-range-looking but out-of-vocab
	// value: 3 with only 3 vocabulary entries (valid: 0..2, UnknownIndex).
	off := len(payload) - 4 // 2 cats × 2 bytes from the end
	payload[off] = 3
	payload[off+1] = 0
	var rb RecordBuffer
	req, err := rb.SetPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Decode(&req, schema); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("hostile vocab index: %v, want ErrBadPayload", err)
	}
}

func TestDecodeRejectsShapeMismatch(t *testing.T) {
	schema := testSchema()
	enc := NewRecordEncoder(schema)
	payload, err := enc.AppendScoreRequest(nil, 5, 0, "", testRecords()[:1])
	if err != nil {
		t.Fatal(err)
	}
	var rb RecordBuffer
	req, err := rb.SetPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	other := testSchema()
	other.NumericNames = other.NumericNames[:1]
	if _, err := rb.Decode(&req, other); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("schema shape mismatch: %v, want ErrBadPayload", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(testSchema())
	if base != Fingerprint(testSchema()) {
		t.Fatal("fingerprint not deterministic")
	}
	vocab := testSchema()
	vocab.Categorical[0].Values = append(vocab.Categorical[0].Values, "sctp")
	if Fingerprint(vocab) == base {
		t.Fatal("vocabulary change did not change the fingerprint")
	}
	renamed := testSchema()
	renamed.NumericNames[0] = "Duration"
	if Fingerprint(renamed) == base {
		t.Fatal("numeric rename did not change the fingerprint")
	}
	classes := testSchema()
	classes.ClassNames = []string{"normal", "dos", "probe"}
	if Fingerprint(classes) != base {
		t.Fatal("class-name change altered the fingerprint (SameFeatures excludes classes)")
	}
	// Moving a name across the numeric/categorical boundary must not
	// collide: the domain separators exist exactly for this.
	a := data.Schema{NumericNames: []string{"x"}, Categorical: nil}
	b := data.Schema{NumericNames: nil, Categorical: []data.CategoricalFeature{{Name: "x"}}}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("numeric vs categorical domains collide")
	}
}

func TestScoreResponseRoundTrip(t *testing.T) {
	verdicts := []nids.Verdict{
		{IsAttack: true, Class: 3, Score: 0.875},
		{IsAttack: false, Class: 0, Score: 0.0625},
		{Failed: true, Class: -1, Score: 0},
	}
	payload, err := AppendScoreResponse(nil, 99, "v12", verdicts)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseScoreResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 99 || string(resp.Version) != "v12" || resp.Count != len(verdicts) {
		t.Fatalf("header mismatch: %+v", resp)
	}
	got := make([]nids.Verdict, resp.Count)
	if err := resp.DecodeVerdicts(got); err != nil {
		t.Fatal(err)
	}
	for i, w := range verdicts {
		g := got[i]
		if g.IsAttack != w.IsAttack || g.Failed != w.Failed || g.Class != w.Class {
			t.Fatalf("verdict %d: %+v, want %+v", i, g, w)
		}
		if g.Score != float64(float32(w.Score)) {
			t.Fatalf("verdict %d score: %v, want %v", i, g.Score, float64(float32(w.Score)))
		}
		if g.RuleID != 0 {
			t.Fatalf("verdict %d: RuleID %d leaked over the wire", i, g.RuleID)
		}
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := ParseScoreResponse(payload[:cut]); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("cut %d: %v, want ErrBadPayload", cut, err)
		}
	}
	if err := resp.DecodeVerdicts(make([]nids.Verdict, resp.Count-1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short verdict slice: %v, want ErrBadPayload", err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	payload := AppendError(nil, 12, 429, "shed: queue full")
	we, err := ParseError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if we.ID != 12 || we.Status != 429 || we.Msg != "shed: queue full" {
		t.Fatalf("round trip mismatch: %+v", we)
	}
	if we.Error() == "" {
		t.Fatal("empty Error() string")
	}
	conn := AppendError(nil, 0, 400, "bad frame")
	if we, err = ParseError(conn); err != nil || we.ID != 0 {
		t.Fatalf("connection-level error: %+v, %v", we, err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := ParseError(payload[:cut]); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("cut %d: %v, want ErrBadPayload", cut, err)
		}
	}
}

func TestSchemaInfoRoundTrip(t *testing.T) {
	info := SchemaInfo{
		ModelVersion: "20260807-120000-abcd",
		Fingerprint:  Fingerprint(testSchema()),
		Schema:       testSchema(),
	}
	p, err := EncodeSchemaInfo(info)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchemaInfo(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelVersion != info.ModelVersion || got.Fingerprint != info.Fingerprint {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.Schema.SameFeatures(info.Schema) {
		t.Fatal("schema features did not survive the round trip")
	}
	if _, err := DecodeSchemaInfo([]byte("{not json")); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("bad JSON: %v, want ErrBadPayload", err)
	}
}

// TestCodecSteadyStateAllocs pins the hot-path codec budget: encoding a
// request into a reused buffer, parsing it, and decoding records into a
// warm RecordBuffer must all be allocation-free.
func TestCodecSteadyStateAllocs(t *testing.T) {
	schema := testSchema()
	enc := NewRecordEncoder(schema)
	recs := testRecords()
	var rb RecordBuffer
	buf := make([]byte, 0, 4096)
	// Warm the slabs once.
	p, err := enc.AppendScoreRequest(buf, 1, 0, "", recs)
	if err != nil {
		t.Fatal(err)
	}
	req, err := rb.SetPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Decode(&req, schema); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		p, err := enc.AppendScoreRequest(buf[:0], 1, 0, "", recs)
		if err != nil {
			t.Fatal(err)
		}
		req, err := rb.SetPayload(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rb.Decode(&req, schema); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("request codec allocates %.1f/op in steady state, want 0", allocs)
	}

	verdicts := []nids.Verdict{{IsAttack: true, Class: 1, Score: 0.5}, {Class: 0, Score: 0.25}}
	out := make([]nids.Verdict, len(verdicts))
	allocs = testing.AllocsPerRun(100, func() {
		p, err := AppendScoreResponse(buf[:0], 2, "v1", verdicts)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ParseScoreResponse(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.DecodeVerdicts(out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("response codec allocates %.1f/op in steady state, want 0", allocs)
	}
}

// FuzzParseScoreRequest drives the request parser and record decoder with
// arbitrary payloads: every outcome must be a clean parse or ErrBadPayload,
// never a panic or out-of-range read.
func FuzzParseScoreRequest(f *testing.F) {
	enc := NewRecordEncoder(testSchema())
	if seed, err := enc.AppendScoreRequest(nil, 9, 100, "fuzz", testRecords()); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-3])
		f.Add(append(append([]byte(nil), seed...), 0xFF))
	}
	f.Add([]byte{})
	f.Add(make([]byte, 27))
	schema := testSchema()
	f.Fuzz(func(t *testing.T, in []byte) {
		var rb RecordBuffer
		req, err := rb.SetPayload(in)
		if err != nil {
			if !errors.Is(err, ErrBadPayload) {
				t.Fatalf("unclassified parse error: %v", err)
			}
			return
		}
		recs, err := rb.Decode(&req, schema)
		if err != nil {
			if !errors.Is(err, ErrBadPayload) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if len(recs) != req.Count {
			t.Fatalf("decoded %d records for count %d", len(recs), req.Count)
		}
		for _, r := range recs {
			for _, v := range r.Numeric {
				if math.IsInf(v, 0) {
					// f32 payloads may legitimately carry ±Inf; just touch
					// the value to prove the slab is readable.
					_ = v
				}
			}
		}
	})
}
