package wire

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"math"

	"repro/internal/data"
	"repro/internal/nids"
)

// Payload layouts (all integers little-endian). The handshake frames
// (Hello, Schema) carry JSON — they happen once per connection and never
// touch the hot path. Score/Result/Error payloads are packed binary.
//
// ScoreRequest payload:
//
//	offset size field
//	0      8    request id (uint64, non-zero)
//	8      4    deadline in ms (uint32; 0 = server default; shorten-only,
//	            exactly like the HTTP plane's X-Timeout-Ms)
//	12     8    schema fingerprint (uint64 FNV-1a, see Fingerprint)
//	20     1    tag length L (0 = live slot, like the HTTP plane)
//	21     L    tag bytes
//	21+L   2    record count R
//	23+L   2    numeric feature count NN
//	25+L   2    categorical feature count NC
//	27+L   R×(NN×4 + NC×2) packed records: NN little-endian f32 numerics
//	            (the infer engine's native layout) then NC uint16 vocabulary
//	            indices (UnknownIndex = out-of-vocabulary → one-hot all-zeros)
//
// ScoreResponse payload:
//
//	0      8    request id
//	8      1    model version length L
//	9      L    model version bytes
//	9+L    2    verdict count R
//	11+L   R×7  packed verdicts: 1 flags byte (bit0 attack, bit1 failed),
//	            int16 class, f32 score
//
// Error payload:
//
//	0      8    request id (0 = connection-level fault)
//	8      2    status (HTTP-mapped: 400, 429, 503, ...)
//	10     2    message length L
//	12     L    message bytes

// UnknownIndex is the categorical wire index meaning "value not in the
// vocabulary"; the server decodes it to the empty string, which one-hot
// encodes as all-zeros (data's get_dummies behaviour for unseen values).
const UnknownIndex = 0xFFFF

// maxRecordsPerFrame bounds the declared record count of one score
// request; combined with MaxPayload it keeps a hostile count field from
// sizing huge decode slabs.
const maxRecordsPerFrame = 1 << 15

// SchemaInfo is the Schema frame's JSON payload: everything a client
// needs to build a RecordEncoder and verify it agrees with the server on
// the feature layout.
type SchemaInfo struct {
	ModelVersion string      `json:"model_version"`
	Fingerprint  uint64      `json:"fingerprint"`
	Schema       data.Schema `json:"schema"`
}

// EncodeSchemaInfo marshals the Schema frame payload (handshake only).
func EncodeSchemaInfo(info SchemaInfo) ([]byte, error) { return json.Marshal(info) }

// DecodeSchemaInfo unmarshals the Schema frame payload (handshake only).
func DecodeSchemaInfo(p []byte) (SchemaInfo, error) {
	var info SchemaInfo
	if err := json.Unmarshal(p, &info); err != nil {
		return SchemaInfo{}, ErrBadPayload
	}
	return info, nil
}

// Fingerprint hashes a schema's feature layout (numeric names, categorical
// names and vocabularies, in order — exactly the fields SameFeatures
// compares) with FNV-1a 64. Every score request carries it so a model
// promote that changes the vocabulary can never silently mis-decode
// in-flight indices: the server rejects the mismatch and the client
// re-handshakes. Class names are excluded, as in SameFeatures.
func Fingerprint(s data.Schema) uint64 {
	h := fnv.New64a()
	sep := [1]byte{0}
	for _, n := range s.NumericNames {
		h.Write([]byte(n))
		h.Write(sep[:])
	}
	sep[0] = 1
	h.Write(sep[:])
	sep[0] = 0
	for _, c := range s.Categorical {
		h.Write([]byte(c.Name))
		h.Write(sep[:])
		for _, v := range c.Values {
			h.Write([]byte(v))
			h.Write(sep[:])
		}
		sep[0] = 2
		h.Write(sep[:])
		sep[0] = 0
	}
	return h.Sum64()
}

// ScoreRequest is the parsed view of a score request payload. Tag and
// records alias the frame payload buffer — valid only as long as it is.
type ScoreRequest struct {
	ID          uint64
	DeadlineMS  uint32
	Fingerprint uint64
	Tag         []byte
	Count       int
	NumNumeric  int
	NumCat      int
	records     []byte
}

// recordSize returns the packed byte size of one record.
func (r *ScoreRequest) recordSize() int { return r.NumNumeric*4 + r.NumCat*2 }

// ParseScoreRequest decodes a score request payload header and validates
// the packed-record region's size. The returned views alias p.
//
//pelican:noalloc
func ParseScoreRequest(p []byte) (ScoreRequest, error) {
	var req ScoreRequest
	if len(p) < 21 {
		return req, ErrBadPayload
	}
	req.ID = binary.LittleEndian.Uint64(p[0:8])
	req.DeadlineMS = binary.LittleEndian.Uint32(p[8:12])
	req.Fingerprint = binary.LittleEndian.Uint64(p[12:20])
	tl := int(p[20])
	if len(p) < 21+tl+6 {
		return req, ErrBadPayload
	}
	req.Tag = p[21 : 21+tl]
	off := 21 + tl
	req.Count = int(binary.LittleEndian.Uint16(p[off : off+2]))
	req.NumNumeric = int(binary.LittleEndian.Uint16(p[off+2 : off+4]))
	req.NumCat = int(binary.LittleEndian.Uint16(p[off+4 : off+6]))
	if req.ID == 0 || req.Count == 0 || req.Count > maxRecordsPerFrame {
		return req, ErrBadPayload
	}
	req.records = p[off+6:]
	if len(req.records) != req.Count*req.recordSize() {
		return req, ErrBadPayload
	}
	return req, nil
}

// RecordBuffer owns the pooled slabs a connection decodes score requests
// into. One buffer per in-flight request slot; after the first few frames
// the slabs are warm and Decode allocates nothing.
type RecordBuffer struct {
	payload  []byte
	recs     []data.Record
	numerics []float64
	cats     []string
}

// SetPayload copies a frame payload into the buffer's own storage, so the
// request survives the FrameReader recycling its buffer on the next Read.
// Returns the parsed request re-pointed at the copy.
//
//pelican:noalloc
func (b *RecordBuffer) SetPayload(p []byte) (ScoreRequest, error) {
	if cap(b.payload) < len(p) {
		b.payload = make([]byte, len(p))
	}
	b.payload = b.payload[:len(p)]
	copy(b.payload, p)
	return ParseScoreRequest(b.payload)
}

// Decode materializes req's packed records against schema into the
// buffer's pooled slabs. The returned records and their backing storage
// are owned by the buffer and recycled on the next Decode. A vocabulary
// index outside the schema (other than UnknownIndex) is a protocol error:
// it means client and server disagree on the vocabulary despite the
// fingerprint check, and decoding it would score garbage.
//
//pelican:noalloc
func (b *RecordBuffer) Decode(req *ScoreRequest, schema data.Schema) ([]data.Record, error) {
	if req.NumNumeric != schema.NumNumeric() || req.NumCat != len(schema.Categorical) {
		return nil, ErrBadPayload
	}
	n, nn, nc := req.Count, req.NumNumeric, req.NumCat
	if cap(b.recs) < n {
		b.recs = make([]data.Record, n)
	}
	if cap(b.numerics) < n*nn {
		b.numerics = make([]float64, n*nn)
	}
	if cap(b.cats) < n*nc {
		b.cats = make([]string, n*nc)
	}
	recs := b.recs[:n]
	nums := b.numerics[:n*nn]
	cats := b.cats[:n*nc]
	src := req.records
	rs := req.recordSize()
	for i := 0; i < n; i++ {
		p := src[i*rs : (i+1)*rs]
		rn := nums[i*nn : (i+1)*nn : (i+1)*nn]
		rc := cats[i*nc : (i+1)*nc : (i+1)*nc]
		for j := 0; j < nn; j++ {
			rn[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[j*4:])))
		}
		p = p[nn*4:]
		for j := 0; j < nc; j++ {
			idx := binary.LittleEndian.Uint16(p[j*2:])
			if idx == UnknownIndex {
				rc[j] = ""
				continue
			}
			if int(idx) >= len(schema.Categorical[j].Values) {
				return nil, ErrBadPayload
			}
			rc[j] = schema.Categorical[j].Values[idx]
		}
		recs[i] = data.Record{Numeric: rn, Categorical: rc}
	}
	return recs, nil
}

// RecordEncoder packs records for the wire against a fixed schema. Built
// once per handshake; the vocabulary maps make categorical encoding one
// hash lookup per feature.
type RecordEncoder struct {
	fingerprint uint64
	numNumeric  int
	vocab       []map[string]uint16
}

// NewRecordEncoder builds an encoder for schema.
func NewRecordEncoder(schema data.Schema) *RecordEncoder {
	e := &RecordEncoder{
		fingerprint: Fingerprint(schema),
		numNumeric:  schema.NumNumeric(),
		vocab:       make([]map[string]uint16, len(schema.Categorical)),
	}
	for i, c := range schema.Categorical {
		m := make(map[string]uint16, len(c.Values))
		for j, v := range c.Values {
			m[v] = uint16(j)
		}
		e.vocab[i] = m
	}
	return e
}

// Fingerprint returns the schema fingerprint stamped into every request.
func (e *RecordEncoder) Fingerprint() uint64 { return e.fingerprint }

// AppendScoreRequest appends a packed score request payload to dst and
// returns the extended slice. Records whose feature counts don't match
// the schema, or batches past the per-frame cap, return ErrBadPayload.
// Numeric features are narrowed to f32 — the precision the serving
// engine's default f32 path computes in anyway.
//
//pelican:noalloc
func (e *RecordEncoder) AppendScoreRequest(dst []byte, id uint64, deadlineMS uint32, tag string, recs []*data.Record) ([]byte, error) {
	if id == 0 || len(recs) == 0 || len(recs) > maxRecordsPerFrame || len(tag) > 255 {
		return dst, ErrBadPayload
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], id)
	dst = append(dst, scratch[:8]...)
	binary.LittleEndian.PutUint32(scratch[:4], deadlineMS)
	dst = append(dst, scratch[:4]...)
	binary.LittleEndian.PutUint64(scratch[:], e.fingerprint)
	dst = append(dst, scratch[:8]...)
	dst = append(dst, byte(len(tag)))
	dst = append(dst, tag...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(recs)))
	dst = append(dst, scratch[:2]...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(e.numNumeric))
	dst = append(dst, scratch[:2]...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(e.vocab)))
	dst = append(dst, scratch[:2]...)
	for _, r := range recs {
		if len(r.Numeric) != e.numNumeric || len(r.Categorical) != len(e.vocab) {
			return dst, ErrBadPayload
		}
		for _, v := range r.Numeric {
			binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(float32(v)))
			dst = append(dst, scratch[:4]...)
		}
		for j, v := range r.Categorical {
			idx, ok := e.vocab[j][v]
			if !ok {
				idx = UnknownIndex
			}
			binary.LittleEndian.PutUint16(scratch[:2], idx)
			dst = append(dst, scratch[:2]...)
		}
	}
	return dst, nil
}

// ScoreResponse is the parsed view of a score response payload. Version
// and the verdict region alias the frame payload buffer.
type ScoreResponse struct {
	ID      uint64
	Version []byte
	Count   int
	body    []byte
}

const verdictSize = 7

// AppendScoreResponse appends a packed score response payload to dst.
// RuleID is not carried: the scoring plane serves model detectors, whose
// verdicts never set it (the HTTP plane omits it the same way).
//
//pelican:noalloc
func AppendScoreResponse(dst []byte, id uint64, version string, verdicts []nids.Verdict) ([]byte, error) {
	if len(version) > 255 || len(verdicts) > maxRecordsPerFrame {
		return dst, ErrBadPayload
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], id)
	dst = append(dst, scratch[:8]...)
	dst = append(dst, byte(len(version)))
	dst = append(dst, version...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(verdicts)))
	dst = append(dst, scratch[:2]...)
	for i := range verdicts {
		v := &verdicts[i]
		var flags byte
		if v.IsAttack {
			flags |= 1
		}
		if v.Failed {
			flags |= 2
		}
		dst = append(dst, flags)
		binary.LittleEndian.PutUint16(scratch[:2], uint16(int16(v.Class)))
		dst = append(dst, scratch[:2]...)
		binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(float32(v.Score)))
		dst = append(dst, scratch[:4]...)
	}
	return dst, nil
}

// ParseScoreResponse decodes a score response payload header and
// validates the verdict region's size. The returned views alias p.
//
//pelican:noalloc
func ParseScoreResponse(p []byte) (ScoreResponse, error) {
	var resp ScoreResponse
	if len(p) < 9 {
		return resp, ErrBadPayload
	}
	resp.ID = binary.LittleEndian.Uint64(p[0:8])
	vl := int(p[8])
	if len(p) < 9+vl+2 {
		return resp, ErrBadPayload
	}
	resp.Version = p[9 : 9+vl]
	resp.Count = int(binary.LittleEndian.Uint16(p[9+vl : 9+vl+2]))
	resp.body = p[9+vl+2:]
	if resp.Count > maxRecordsPerFrame || len(resp.body) != resp.Count*verdictSize {
		return resp, ErrBadPayload
	}
	return resp, nil
}

// DecodeVerdicts unpacks resp's verdicts into the caller-sized slice
// (len(verdicts) must equal resp.Count).
//
//pelican:noalloc
func (resp *ScoreResponse) DecodeVerdicts(verdicts []nids.Verdict) error {
	if len(verdicts) != resp.Count {
		return ErrBadPayload
	}
	for i := 0; i < resp.Count; i++ {
		p := resp.body[i*verdictSize : (i+1)*verdictSize]
		v := &verdicts[i]
		v.IsAttack = p[0]&1 != 0
		v.Failed = p[0]&2 != 0
		v.Class = int(int16(binary.LittleEndian.Uint16(p[1:3])))
		v.RuleID = 0
		v.Score = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[3:7])))
	}
	return nil
}

// AppendError appends an error payload (id 0 = connection-level) to dst.
//
//pelican:noalloc
func AppendError(dst []byte, id uint64, status int, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], id)
	dst = append(dst, scratch[:8]...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(status))
	dst = append(dst, scratch[:2]...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(msg)))
	dst = append(dst, scratch[:2]...)
	dst = append(dst, msg...)
	return dst
}

// WireError is a decoded Error frame. The scoring plane maps statuses
// exactly as its HTTP twin does: 429 shed, 503 expired/draining, 400
// malformed, 409 schema fingerprint mismatch.
type WireError struct {
	ID     uint64
	Status int
	Msg    string
}

// Error implements error.
func (e *WireError) Error() string { return "wire: remote error " + e.Msg }

// ParseError decodes an error payload. The message is copied (error
// frames are off the hot path — something already went wrong).
func ParseError(p []byte) (WireError, error) {
	if len(p) < 12 {
		return WireError{}, ErrBadPayload
	}
	id := binary.LittleEndian.Uint64(p[0:8])
	status := int(binary.LittleEndian.Uint16(p[8:10]))
	ml := int(binary.LittleEndian.Uint16(p[10:12]))
	if len(p) != 12+ml {
		return WireError{}, ErrBadPayload
	}
	return WireError{ID: id, Status: status, Msg: string(p[12 : 12+ml])}, nil
}
