// Package wire is the scoring plane's binary streaming transport: a
// length-prefixed, CRC-protected framing protocol over persistent TCP
// connections, with client-side streaming of flow records, pipelined
// out-of-order responses correlated by request id, and connection
// multiplexing. It exists because HTTP/JSON pays a per-record
// encode/decode and per-request framing tax that, at millions-of-users
// QPS, dwarfs the network pass itself: a wire score request carries each
// numeric feature as 4 little-endian bytes (the infer engine's native f32
// layout) and each categorical feature as a 2-byte vocabulary index,
// against ~15× that in JSON decimal text.
//
// The package is stdlib-only and deliberately knows nothing about the
// serving plane: internal/serve owns the listener that bridges decoded
// score requests onto its per-slot batcher/scorer path (inheriting
// admission control, deadlines, tracing, and graceful drain), and the
// Client here implements nids.BatchDetector so a pipeline can swap
// transports without touching scoring code.
//
// Frame layout (all integers little-endian):
//
//	offset size field
//	0      4    magic "PLWF"
//	4      1    protocol version (1)
//	5      1    frame type
//	6      2    reserved (must be 0)
//	8      4    payload length N (max 16 MiB)
//	12     4    CRC-32 (IEEE) of the payload
//	16     N    payload
//
// A decoder that sees a bad magic, an unknown version, a non-zero
// reserved field, an oversized length, or a CRC mismatch reports a
// protocol error; the connection owner counts it and closes the
// connection — framing is not resynchronizable mid-stream by design.
package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// Protocol constants.
const (
	// Version is the protocol version this package speaks. A server
	// answers a Hello carrying an unsupported version with an Error frame
	// and closes; adding frame types or appending payload fields bumps
	// this only when an old peer could misparse the bytes.
	Version = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 16
	// MaxPayload bounds a frame's payload so a corrupt or hostile length
	// prefix cannot make a peer allocate unbounded memory. 16 MiB fits
	// ~25k NSL-KDD-shaped records per frame — far past any sane batch.
	MaxPayload = 16 << 20
)

// magic identifies a Pelican wire frame ("PLWF").
var magic = [4]byte{'P', 'L', 'W', 'F'}

// FrameType discriminates frame payloads.
type FrameType uint8

// Frame types. Hello/Schema are the connection handshake, Score/Result
// the pipelined request/response pair, Error a request- or
// connection-scoped failure, GoAway the server's drain notice.
const (
	// FrameHello (client → server) opens a connection: the client
	// announces its protocol version and asks for the serving schema.
	FrameHello FrameType = 1
	// FrameSchema (server → client) answers a Hello with the live model's
	// schema, version, and schema fingerprint (JSON payload — handshake
	// only, never on the hot path).
	FrameSchema FrameType = 2
	// FrameScore (client → server) is one scoring request: request id,
	// deadline, schema fingerprint, tag, and packed flow records.
	FrameScore FrameType = 3
	// FrameResult (server → client) is one scoring response: request id,
	// answering model version, and packed verdicts. Results may arrive in
	// any order relative to their requests (pipelining).
	FrameResult FrameType = 4
	// FrameError (server → client) reports a failed request (id != 0) or
	// a connection-level fault (id == 0) with an HTTP-mapped status.
	FrameError FrameType = 5
	// FrameGoAway (server → client) announces a drain: in-flight requests
	// will still be answered, new ones are rejected, and the server
	// closes the connection once the last in-flight response is written.
	FrameGoAway FrameType = 6
)

// Protocol errors a decoder reports. All of them mean "close the
// connection and count a protocol error" to the connection owner.
var (
	ErrBadMagic     = errors.New("wire: bad frame magic")
	ErrBadVersion   = errors.New("wire: unsupported protocol version")
	ErrBadReserved  = errors.New("wire: non-zero reserved header field")
	ErrFrameTooBig  = errors.New("wire: frame payload exceeds MaxPayload")
	ErrChecksum     = errors.New("wire: frame CRC mismatch")
	ErrBadPayload   = errors.New("wire: malformed frame payload")
	ErrUnknownFrame = errors.New("wire: unknown frame type")
)

// IsProtocolError reports whether err is a framing/payload protocol
// violation (as opposed to an I/O error like a closed connection). A
// truncated stream surfaces as io.ErrUnexpectedEOF, which also counts:
// a peer that stops mid-frame left the stream unparseable.
func IsProtocolError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion) ||
		errors.Is(err, ErrBadReserved) || errors.Is(err, ErrFrameTooBig) ||
		errors.Is(err, ErrChecksum) || errors.Is(err, ErrBadPayload) ||
		errors.Is(err, ErrUnknownFrame) || errors.Is(err, io.ErrUnexpectedEOF)
}

// FrameReader decodes frames from a stream. The payload buffer is owned
// by the reader and recycled across Read calls: a caller that needs the
// payload past the next Read must copy it. Not safe for concurrent use —
// each connection has exactly one reader goroutine.
type FrameReader struct {
	r       io.Reader
	hdr     [HeaderSize]byte
	payload []byte
	// frames and bytes count everything successfully read, for the
	// connection owner's metrics.
	frames int64
	bytes  int64
}

// NewFrameReader wraps r. Callers hand in a buffered reader when the
// underlying stream is a raw connection.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Frames returns how many frames have been read.
func (fr *FrameReader) Frames() int64 { return fr.frames }

// Bytes returns how many frame bytes (headers + payloads) have been read.
func (fr *FrameReader) Bytes() int64 { return fr.bytes }

// Read decodes the next frame, returning its type and payload. The
// payload slice aliases the reader's recycled buffer — valid only until
// the next Read. io.EOF is returned only on a clean boundary (no bytes of
// a next frame read); a stream that ends mid-frame returns
// io.ErrUnexpectedEOF.
//
//pelican:noalloc
func (fr *FrameReader) Read() (FrameType, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, io.ErrUnexpectedEOF
	}
	if fr.hdr[0] != magic[0] || fr.hdr[1] != magic[1] || fr.hdr[2] != magic[2] || fr.hdr[3] != magic[3] {
		return 0, nil, ErrBadMagic
	}
	if fr.hdr[4] != Version {
		return 0, nil, ErrBadVersion
	}
	if fr.hdr[6] != 0 || fr.hdr[7] != 0 {
		return 0, nil, ErrBadReserved
	}
	ft := FrameType(fr.hdr[5])
	if ft < FrameHello || ft > FrameGoAway {
		return 0, nil, ErrUnknownFrame
	}
	n := binary.LittleEndian.Uint32(fr.hdr[8:12])
	if n > MaxPayload {
		return 0, nil, ErrFrameTooBig
	}
	want := binary.LittleEndian.Uint32(fr.hdr[12:16])
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	p := fr.payload[:n]
	if _, err := io.ReadFull(fr.r, p); err != nil {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(p) != want {
		return 0, nil, ErrChecksum
	}
	fr.frames++
	fr.bytes += int64(HeaderSize) + int64(n)
	return ft, p, nil
}

// FrameWriter encodes frames onto a stream. Not safe for concurrent use —
// each connection has exactly one writer goroutine, which serializes the
// pipelined responses.
type FrameWriter struct {
	w      io.Writer
	hdr    [HeaderSize]byte
	frames int64
	bytes  int64
}

// NewFrameWriter wraps w. Callers hand in a buffered writer when the
// underlying stream is a raw connection, and must flush it themselves.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// Frames returns how many frames have been written.
func (fw *FrameWriter) Frames() int64 { return fw.frames }

// Bytes returns how many frame bytes (headers + payloads) have been written.
func (fw *FrameWriter) Bytes() int64 { return fw.bytes }

// Write frames payload as one frame of type ft.
//
//pelican:noalloc
func (fw *FrameWriter) Write(ft FrameType, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrFrameTooBig
	}
	fw.hdr[0], fw.hdr[1], fw.hdr[2], fw.hdr[3] = magic[0], magic[1], magic[2], magic[3]
	fw.hdr[4] = Version
	fw.hdr[5] = byte(ft)
	fw.hdr[6], fw.hdr[7] = 0, 0
	binary.LittleEndian.PutUint32(fw.hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fw.hdr[12:16], crc32.ChecksumIEEE(payload))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	fw.frames++
	fw.bytes += int64(HeaderSize) + int64(len(payload))
	return nil
}
